package fpgaflow

// Golden QoR regression suite: every committed example netlist has a
// testdata/golden/<name>.json recording the quality-of-results the flow
// must reproduce — minimum channel width, routed wire cost, critical-path
// delay and routed-net count. The suite pins routing QoR the way the
// bench gate pins the tier-1 metrics: an algorithm change that moves any
// value outside its tolerance band fails tier-1 until the goldens are
// regenerated deliberately with
//
//	go test -run TestGoldenQoR -update .

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden QoR files")

// GoldenQoR is the committed quality-of-results record for one design
// under one set of flow options.
type GoldenQoR struct {
	// ChannelWidth is the routed channel width (the minimum found by the
	// binary search when the options request it, the architecture's fixed
	// width otherwise).
	ChannelWidth int `json:"channel_width"`
	// Wirelength is the number of wire segments the routing uses at that W.
	Wirelength int `json:"wirelength"`
	// CriticalPathNS is the post-route critical path in nanoseconds.
	CriticalPathNS float64 `json:"critical_path_ns"`
	// EnergyPJ is the estimated energy per clock cycle in picojoules.
	EnergyPJ float64 `json:"energy_pj"`
	// RoutedNets is the number of signal nets carried by the fabric.
	RoutedNets int `json:"routed_nets"`
}

// GoldenRecord is one design's committed QoR file: the baseline (balanced
// flow with minimum-channel-width search, the historical golden record)
// plus one record per optimization profile.
type GoldenRecord struct {
	GoldenQoR
	// Profiles records min-delay, min-energy and min-area QoR. The delay
	// and energy profiles route at the architecture's fixed channel width
	// (router freedom is the point of those objectives); min-area runs the
	// width search.
	Profiles map[string]GoldenQoR `json:"profiles"`
}

// goldenProfiles are the optimization profiles every golden file records.
var goldenProfiles = []Profile{ProfileMinDelay, ProfileMinEnergy, ProfileMinArea}

// goldenExamples returns the committed example netlists covered by the
// golden suite: every .blif under examples/netlists except the
// deliberately-broken lint fixtures.
func goldenExamples(t testing.TB) map[string]string {
	t.Helper()
	paths, err := filepath.Glob("examples/netlists/*.blif")
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, p := range paths {
		name := strings.TrimSuffix(filepath.Base(p), ".blif")
		if name == "multidriven" {
			continue // negative fixture: multi-driven net, must not compile
		}
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = string(b)
	}
	if len(out) < 3 {
		t.Fatalf("only %d example netlists found; expected fulladder, count2, rand64", len(out))
	}
	return out
}

// runQoR compiles one example with the golden-suite baseline options (min
// channel width search, fixed seed) and extracts its QoR record.
func runQoR(t testing.TB, src string, workers int) (*Result, GoldenQoR) {
	t.Helper()
	return runQoRWith(t, src, Options{Seed: 1, MinChannelWidth: true, SkipVerify: true, RouteWorkers: workers})
}

// runQoRWith compiles one example under arbitrary flow options and
// extracts its QoR record.
func runQoRWith(t testing.TB, src string, opts Options) (*Result, GoldenQoR) {
	t.Helper()
	res, err := Run(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	routed := 0
	for _, nr := range res.Routed.Routes {
		if nr != nil && len(nr.Paths) > 0 {
			routed++
		}
	}
	return res, GoldenQoR{
		ChannelWidth:   res.Metrics.ChannelWidth,
		Wirelength:     res.Metrics.WirelengthUsed,
		CriticalPathNS: res.Metrics.CriticalPath * 1e9,
		EnergyPJ:       res.Metrics.EnergyPJ,
		RoutedNets:     routed,
	}
}

// profileOptions are the golden-suite options for one optimization
// profile: fixed seed, the profile's own channel-width policy (min-area
// searches; min-delay and min-energy route at the architecture width).
func profileOptions(prof Profile) Options {
	return Options{Seed: 1, Profile: prof, SkipVerify: true}
}

func TestGoldenQoR(t *testing.T) {
	for name, src := range goldenExamples(t) {
		t.Run(name, func(t *testing.T) {
			_, base := runQoR(t, src, 0)
			got := GoldenRecord{GoldenQoR: base, Profiles: map[string]GoldenQoR{}}
			for _, prof := range goldenProfiles {
				_, q := runQoRWith(t, src, profileOptions(prof))
				got.Profiles[string(prof)] = q
			}
			path := filepath.Join("testdata", "golden", name+".json")
			if *updateGolden {
				b, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s: %+v", path, got)
				return
			}
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			var want GoldenRecord
			if err := json.Unmarshal(b, &want); err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			compareQoR(t, "baseline", got.GoldenQoR, want.GoldenQoR)
			for _, prof := range goldenProfiles {
				w, ok := want.Profiles[string(prof)]
				if !ok {
					t.Errorf("golden file has no %q record (regenerate with -update)", prof)
					continue
				}
				compareQoR(t, string(prof), got.Profiles[string(prof)], w)
			}
			if t.Failed() {
				t.Logf("after an intentional QoR change: go test -run TestGoldenQoR -update .")
			}
		})
	}
}

// compareQoR holds one QoR record against its golden value: structural
// counts are exact; wire cost, delay and energy get a small tolerance band
// so harmless cost-function tweaks do not churn the goldens.
func compareQoR(t *testing.T, label string, got, want GoldenQoR) {
	t.Helper()
	if got.ChannelWidth != want.ChannelWidth {
		t.Errorf("%s: channel width = %d, want %d", label, got.ChannelWidth, want.ChannelWidth)
	}
	if got.RoutedNets != want.RoutedNets {
		t.Errorf("%s: routed nets = %d, want %d", label, got.RoutedNets, want.RoutedNets)
	}
	if drift(float64(got.Wirelength), float64(want.Wirelength)) > 0.05 {
		t.Errorf("%s: wirelength = %d, want %d (±5%%)", label, got.Wirelength, want.Wirelength)
	}
	if drift(got.CriticalPathNS, want.CriticalPathNS) > 0.05 {
		t.Errorf("%s: critical path = %.3f ns, want %.3f ns (±5%%)", label, got.CriticalPathNS, want.CriticalPathNS)
	}
	if drift(got.EnergyPJ, want.EnergyPJ) > 0.05 {
		t.Errorf("%s: energy = %.3f pJ, want %.3f pJ (±5%%)", label, got.EnergyPJ, want.EnergyPJ)
	}
}

// TestMinDelayProfileImprovesCriticalPath is the acceptance property of
// the timing-driven stack: at the architecture's fixed channel width, the
// min-delay profile must beat (strictly) the balanced flow's critical path
// on at least half of the committed examples and never lose on the rest by
// more than a small fraction.
func TestMinDelayProfileImprovesCriticalPath(t *testing.T) {
	examples := goldenExamples(t)
	improved := 0
	for name, src := range examples {
		_, base := runQoRWith(t, src, Options{Seed: 1, SkipVerify: true})
		_, fast := runQoRWith(t, src, profileOptions(ProfileMinDelay))
		t.Logf("%s: balanced %.3f ns -> min-delay %.3f ns", name, base.CriticalPathNS, fast.CriticalPathNS)
		if fast.CriticalPathNS < base.CriticalPathNS {
			improved++
		} else if fast.CriticalPathNS > base.CriticalPathNS*1.10 {
			t.Errorf("%s: min-delay regressed the critical path %.3f -> %.3f ns (> 10%%)",
				name, base.CriticalPathNS, fast.CriticalPathNS)
		}
	}
	if improved*2 < len(examples) {
		t.Errorf("min-delay improved only %d of %d examples; want at least half", improved, len(examples))
	}
}

// drift is the relative difference of got vs want (0 when both zero).
func drift(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}
