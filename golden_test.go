package fpgaflow

// Golden QoR regression suite: every committed example netlist has a
// testdata/golden/<name>.json recording the quality-of-results the flow
// must reproduce — minimum channel width, routed wire cost, critical-path
// delay and routed-net count. The suite pins routing QoR the way the
// bench gate pins the tier-1 metrics: an algorithm change that moves any
// value outside its tolerance band fails tier-1 until the goldens are
// regenerated deliberately with
//
//	go test -run TestGoldenQoR -update .

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden QoR files")

// GoldenQoR is the committed quality-of-results record for one design.
type GoldenQoR struct {
	// ChannelWidth is the minimum routable W found by the binary search.
	ChannelWidth int `json:"channel_width"`
	// Wirelength is the number of wire segments the routing uses at that W.
	Wirelength int `json:"wirelength"`
	// CriticalPathNS is the post-route critical path in nanoseconds.
	CriticalPathNS float64 `json:"critical_path_ns"`
	// RoutedNets is the number of signal nets carried by the fabric.
	RoutedNets int `json:"routed_nets"`
}

// goldenExamples returns the committed example netlists covered by the
// golden suite: every .blif under examples/netlists except the
// deliberately-broken lint fixtures.
func goldenExamples(t testing.TB) map[string]string {
	t.Helper()
	paths, err := filepath.Glob("examples/netlists/*.blif")
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]string{}
	for _, p := range paths {
		name := strings.TrimSuffix(filepath.Base(p), ".blif")
		if name == "multidriven" {
			continue // negative fixture: multi-driven net, must not compile
		}
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		out[name] = string(b)
	}
	if len(out) < 3 {
		t.Fatalf("only %d example netlists found; expected fulladder, count2, rand64", len(out))
	}
	return out
}

// runQoR compiles one example with the golden-suite options (min channel
// width search, fixed seed) and extracts its QoR record.
func runQoR(t testing.TB, src string, workers int) (*Result, GoldenQoR) {
	t.Helper()
	res, err := Run(src, Options{Seed: 1, MinChannelWidth: true, SkipVerify: true, RouteWorkers: workers})
	if err != nil {
		t.Fatal(err)
	}
	routed := 0
	for _, nr := range res.Routed.Routes {
		if nr != nil && len(nr.Paths) > 0 {
			routed++
		}
	}
	return res, GoldenQoR{
		ChannelWidth:   res.Metrics.ChannelWidth,
		Wirelength:     res.Metrics.WirelengthUsed,
		CriticalPathNS: res.Metrics.CriticalPath * 1e9,
		RoutedNets:     routed,
	}
}

func TestGoldenQoR(t *testing.T) {
	for name, src := range goldenExamples(t) {
		t.Run(name, func(t *testing.T) {
			_, got := runQoR(t, src, 0)
			path := filepath.Join("testdata", "golden", name+".json")
			if *updateGolden {
				b, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(b, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("updated %s: %+v", path, got)
				return
			}
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (regenerate with -update): %v", err)
			}
			var want GoldenQoR
			if err := json.Unmarshal(b, &want); err != nil {
				t.Fatalf("%s: %v", path, err)
			}
			// Structural counts are exact; wire cost and delay get a small
			// tolerance band so harmless cost-function tweaks do not churn
			// the goldens.
			if got.ChannelWidth != want.ChannelWidth {
				t.Errorf("channel width = %d, want %d", got.ChannelWidth, want.ChannelWidth)
			}
			if got.RoutedNets != want.RoutedNets {
				t.Errorf("routed nets = %d, want %d", got.RoutedNets, want.RoutedNets)
			}
			if drift(float64(got.Wirelength), float64(want.Wirelength)) > 0.05 {
				t.Errorf("wirelength = %d, want %d (±5%%)", got.Wirelength, want.Wirelength)
			}
			if drift(got.CriticalPathNS, want.CriticalPathNS) > 0.05 {
				t.Errorf("critical path = %.3f ns, want %.3f ns (±5%%)", got.CriticalPathNS, want.CriticalPathNS)
			}
			if t.Failed() {
				t.Logf("after an intentional QoR change: go test -run TestGoldenQoR -update .")
			}
		})
	}
}

// drift is the relative difference of got vs want (0 when both zero).
func drift(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}
