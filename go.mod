module fpgaflow

go 1.22
