// Package fault is the flow's fault-injection harness: deterministic,
// seedable defect maps over the FPGA fabric (dead channel wires, dead
// switch points, defective CLB/IO sites, stuck LUT configuration bits) and
// corruption injectors for on-disk artifacts (bit flips, truncation,
// garbled text). Yu et al. ("FPGA with Improved Routability and Robustness
// in 130nm CMOS") treat routability under imperfect fabric as an
// architectural property; this package lets the reproduction's CAD stack be
// exercised — and regression-tested — against exactly that kind of fabric.
//
// A DefectMap is pure data (JSON-serializable, produced by cmd/faultgen or
// Generate) and is applied to concrete artifacts by the flow:
//
//   - place avoids sites in BadSiteSet (Options.Bad),
//   - route masks dead wires and removes dead switch edges via Apply
//     (re-applied at every channel-width escalation through route.Options.Mask),
//   - check verifies no configured resource lands on a defect
//     (place/defective-site, route/dead-resource, bitstream/stuck-bit).
//
// Everything is deterministic in (architecture, Seed), so a failing fabric
// is perfectly reproducible from its defect-map file or its generation seed.
package fault

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/rrgraph"
)

// WireRef identifies one channel wire segment by structural coordinates:
// the low tile coordinate of the segment (as built by rrgraph) and its
// track. The reference survives RR-graph rebuilds of the same architecture
// and stays meaningful when the channel width grows (new tracks are simply
// defect-free).
type WireRef struct {
	// Vertical selects a ChanY wire; false means ChanX.
	Vertical bool `json:"vertical"`
	X        int  `json:"x"`
	Y        int  `json:"y"`
	Track    int  `json:"track"`
}

// SwitchRef identifies one switch point of the disjoint switch box: every
// programmable wire-wire connection among the track's wires incident at
// (X, Y) is defective.
type SwitchRef struct {
	X     int `json:"x"`
	Y     int `json:"y"`
	Track int `json:"track"`
}

// SiteRef identifies a defective grid site; all of its sub-slots are
// unusable for placement.
type SiteRef struct {
	X int `json:"x"`
	Y int `json:"y"`
}

// StuckBit is one LUT configuration bit frozen at Value in the BLE at the
// given logic site. The site remains placeable; the bitstream stage
// verifies that the configured truth table agrees with the stuck value
// (and the flow runner re-seeds placement when it does not).
type StuckBit struct {
	X     int  `json:"x"`
	Y     int  `json:"y"`
	BLE   int  `json:"ble"`
	Bit   int  `json:"bit"`
	Value bool `json:"value"`
}

// DefectMap is a complete description of one imperfect fabric.
type DefectMap struct {
	// Seed reproduces the map through Generate; purely informational once
	// the defect lists are materialized.
	Seed int64 `json:"seed"`
	// Cols, Rows and ChannelWidth record the fabric the map was generated
	// for. Coordinates are absolute, so a map applies to any fabric of at
	// least this extent; out-of-range references are silently inert.
	Cols         int `json:"cols"`
	Rows         int `json:"rows"`
	ChannelWidth int `json:"channel_width"`

	DeadWires    []WireRef   `json:"dead_wires,omitempty"`
	DeadSwitches []SwitchRef `json:"dead_switches,omitempty"`
	BadCLBs      []SiteRef   `json:"bad_clbs,omitempty"`
	BadIOs       []SiteRef   `json:"bad_ios,omitempty"`
	StuckBits    []StuckBit  `json:"stuck_bits,omitempty"`
}

// Rates sets per-class defect probabilities for Generate, each in [0, 1]:
// the fraction of wires, switch points, logic sites, pad sites and LUT
// bits that are defective.
type Rates struct {
	DeadWire   float64
	DeadSwitch float64
	BadCLB     float64
	BadIO      float64
	StuckBit   float64
}

// zero reports whether no class has a positive rate.
func (r Rates) zero() bool {
	return r.DeadWire <= 0 && r.DeadSwitch <= 0 && r.BadCLB <= 0 && r.BadIO <= 0 && r.StuckBit <= 0
}

// Generate draws a defect map for the architecture: every structural
// element is kept or killed by an independent coin flip from a single
// seeded stream, so the map is a deterministic function of (a, seed, rates).
func Generate(a *arch.Arch, seed int64, rates Rates) (*DefectMap, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	dm := &DefectMap{Seed: seed, Cols: a.Cols, Rows: a.Rows, ChannelWidth: a.Routing.ChannelWidth}
	if rates.zero() {
		return dm, nil
	}
	rng := rand.New(rand.NewSource(seed))
	hit := func(rate float64) bool { return rate > 0 && rng.Float64() < rate }

	// Wires: enumerate the real segments by building the graph once, so the
	// references match rrgraph's staggered segment starts exactly.
	g, err := rrgraph.Build(a)
	if err != nil {
		return nil, err
	}
	for _, n := range g.Nodes {
		if n.Type != rrgraph.ChanX && n.Type != rrgraph.ChanY {
			continue
		}
		if hit(rates.DeadWire) {
			dm.DeadWires = append(dm.DeadWires, WireRef{
				Vertical: n.Type == rrgraph.ChanY, X: n.X, Y: n.Y, Track: n.Track,
			})
		}
	}
	// Switch points: x in 0..Cols, y in 0..Rows, one per track.
	for x := 0; x <= a.Cols; x++ {
		for y := 0; y <= a.Rows; y++ {
			for t := 0; t < a.Routing.ChannelWidth; t++ {
				if hit(rates.DeadSwitch) {
					dm.DeadSwitches = append(dm.DeadSwitches, SwitchRef{X: x, Y: y, Track: t})
				}
			}
		}
	}
	// Logic sites.
	for x := 1; x <= a.Cols; x++ {
		for y := 1; y <= a.Rows; y++ {
			if hit(rates.BadCLB) {
				dm.BadCLBs = append(dm.BadCLBs, SiteRef{X: x, Y: y})
			}
		}
	}
	// Pad sites on the perimeter ring.
	for x := 0; x < a.Cols+2; x++ {
		for y := 0; y < a.Rows+2; y++ {
			onX := x == 0 || x == a.Cols+1
			onY := y == 0 || y == a.Rows+1
			if onX != onY && hit(rates.BadIO) {
				dm.BadIOs = append(dm.BadIOs, SiteRef{X: x, Y: y})
			}
		}
	}
	// Stuck LUT bits over healthy logic sites (a stuck bit on an already
	// dead site adds nothing).
	bad := make(map[SiteRef]bool, len(dm.BadCLBs))
	for _, s := range dm.BadCLBs {
		bad[s] = true
	}
	lutBits := 1 << uint(a.CLB.K)
	for x := 1; x <= a.Cols; x++ {
		for y := 1; y <= a.Rows; y++ {
			if bad[SiteRef{X: x, Y: y}] {
				continue
			}
			for b := 0; b < a.CLB.N; b++ {
				for bit := 0; bit < lutBits; bit++ {
					if hit(rates.StuckBit) {
						dm.StuckBits = append(dm.StuckBits, StuckBit{
							X: x, Y: y, BLE: b, Bit: bit, Value: rng.Intn(2) == 1,
						})
					}
				}
			}
		}
	}
	return dm, nil
}

// Count returns the total number of injected defects across all classes.
func (dm *DefectMap) Count() int {
	if dm == nil {
		return 0
	}
	return len(dm.DeadWires) + len(dm.DeadSwitches) + len(dm.BadCLBs) + len(dm.BadIOs) + len(dm.StuckBits)
}

// Summary renders per-class defect counts on one line.
func (dm *DefectMap) Summary() string {
	if dm == nil {
		return "no defects"
	}
	return fmt.Sprintf("%d defects (%d dead wires, %d dead switches, %d bad CLBs, %d bad IOs, %d stuck bits) on %dx%d W=%d",
		dm.Count(), len(dm.DeadWires), len(dm.DeadSwitches), len(dm.BadCLBs), len(dm.BadIOs), len(dm.StuckBits),
		dm.Cols, dm.Rows, dm.ChannelWidth)
}

// ApplyStats reports what an Apply call actually masked on a concrete
// graph (out-of-range references are skipped, so applied counts can be
// lower than the map's totals).
type ApplyStats struct {
	DeadWires    int
	DeadSwitches int
	EdgesRemoved int
}

// Apply masks the map onto a routing-resource graph: dead wires are marked
// unusable and dead switch points lose every wire-wire edge among their
// incident wires. Apply is idempotent and safe on a nil map.
func (dm *DefectMap) Apply(g *rrgraph.Graph) ApplyStats {
	var st ApplyStats
	if dm == nil {
		return st
	}
	for _, w := range dm.DeadWires {
		if id, ok := g.WireID(w.Vertical, w.X, w.Y, w.Track); ok {
			g.MarkDead(id)
			st.DeadWires++
		}
	}
	for _, sw := range dm.DeadSwitches {
		ids := g.SwitchPointWires(sw.X, sw.Y, sw.Track)
		if len(ids) < 2 {
			continue
		}
		st.DeadSwitches++
		for i := 0; i < len(ids); i++ {
			for j := 0; j < len(ids); j++ {
				if i != j && g.RemoveEdge(ids[i], ids[j]) {
					st.EdgesRemoved++
				}
			}
		}
	}
	return st
}

// BadSiteSet returns the placement exclusion set: every defective CLB and
// IO site as (x, y) grid coordinates (the shape place.Options.Bad takes).
// Nil when the map holds no site defects.
func (dm *DefectMap) BadSiteSet() map[[2]int]bool {
	if dm == nil || (len(dm.BadCLBs) == 0 && len(dm.BadIOs) == 0) {
		return nil
	}
	set := make(map[[2]int]bool, len(dm.BadCLBs)+len(dm.BadIOs))
	for _, s := range dm.BadCLBs {
		set[[2]int{s.X, s.Y}] = true
	}
	for _, s := range dm.BadIOs {
		set[[2]int{s.X, s.Y}] = true
	}
	return set
}

// StuckBitsAt returns the stuck LUT bits recorded for logic site (x, y).
func (dm *DefectMap) StuckBitsAt(x, y int) []StuckBit {
	if dm == nil {
		return nil
	}
	var out []StuckBit
	for _, sb := range dm.StuckBits {
		if sb.X == x && sb.Y == y {
			out = append(out, sb)
		}
	}
	return out
}

// Marshal serializes the map as indented JSON.
func (dm *DefectMap) Marshal() ([]byte, error) {
	return json.MarshalIndent(dm, "", "  ")
}

// Unmarshal parses a defect map from JSON, validating coordinates are
// non-negative and rates of the referenced fabric make sense.
func Unmarshal(data []byte) (*DefectMap, error) {
	dm := &DefectMap{}
	if err := json.Unmarshal(data, dm); err != nil {
		return nil, fmt.Errorf("fault: defect map: %w", err)
	}
	if dm.Cols < 0 || dm.Rows < 0 || dm.ChannelWidth < 0 {
		return nil, fmt.Errorf("fault: defect map has negative fabric extent %dx%d W=%d",
			dm.Cols, dm.Rows, dm.ChannelWidth)
	}
	for _, w := range dm.DeadWires {
		if w.X < 0 || w.Y < 0 || w.Track < 0 {
			return nil, fmt.Errorf("fault: dead wire with negative coordinates %+v", w)
		}
	}
	for _, s := range dm.DeadSwitches {
		if s.X < 0 || s.Y < 0 || s.Track < 0 {
			return nil, fmt.Errorf("fault: dead switch with negative coordinates %+v", s)
		}
	}
	for _, sb := range dm.StuckBits {
		if sb.X < 0 || sb.Y < 0 || sb.BLE < 0 || sb.Bit < 0 {
			return nil, fmt.Errorf("fault: stuck bit with negative coordinates %+v", sb)
		}
	}
	return dm, nil
}

// Load reads a defect map file written by Save or cmd/faultgen.
func Load(path string) (*DefectMap, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}

// Save writes the map as JSON to path.
func (dm *DefectMap) Save(path string) error {
	data, err := dm.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
