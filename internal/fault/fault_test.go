package fault

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/rrgraph"
)

func testArch() *arch.Arch {
	a := arch.Paper()
	a.Rows, a.Cols = 4, 4
	a.Routing.ChannelWidth = 8
	return a
}

func TestGenerateDeterministic(t *testing.T) {
	a := testArch()
	rates := Rates{DeadWire: 0.05, DeadSwitch: 0.05, BadCLB: 0.1, BadIO: 0.1, StuckBit: 0.002}
	m1, err := Generate(a, 42, rates)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Generate(a, 42, rates)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Error("same seed produced different defect maps")
	}
	m3, err := Generate(a, 43, rates)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(m1, m3) {
		t.Error("different seeds produced identical defect maps")
	}
	if m1.Count() == 0 {
		t.Error("positive rates produced an empty defect map")
	}
	if m1.Cols != a.Cols || m1.Rows != a.Rows || m1.ChannelWidth != a.Routing.ChannelWidth {
		t.Errorf("fabric extent not recorded: %s", m1.Summary())
	}
}

func TestGenerateZeroRatesIsClean(t *testing.T) {
	dm, err := Generate(testArch(), 7, Rates{})
	if err != nil {
		t.Fatal(err)
	}
	if dm.Count() != 0 {
		t.Errorf("zero rates produced %d defects", dm.Count())
	}
}

// TestEveryDefectClassApplies verifies, class by class, that an injected
// defect lands where the flow will see it: wire/switch defects mask the RR
// graph, site defects populate the placement exclusion set, and stuck bits
// are retrievable per site.
func TestEveryDefectClassApplies(t *testing.T) {
	a := testArch()
	cases := []struct {
		name  string
		rates Rates
		check func(t *testing.T, dm *DefectMap, g *rrgraph.Graph, st ApplyStats)
	}{
		{"dead-wire", Rates{DeadWire: 0.1}, func(t *testing.T, dm *DefectMap, g *rrgraph.Graph, st ApplyStats) {
			if st.DeadWires != len(dm.DeadWires) || g.DeadCount() != st.DeadWires {
				t.Errorf("applied %d of %d dead wires (graph reports %d)",
					st.DeadWires, len(dm.DeadWires), g.DeadCount())
			}
		}},
		{"dead-switch", Rates{DeadSwitch: 0.1}, func(t *testing.T, dm *DefectMap, g *rrgraph.Graph, st ApplyStats) {
			if st.EdgesRemoved == 0 {
				t.Errorf("%d dead switches removed no edges", len(dm.DeadSwitches))
			}
		}},
		{"bad-clb", Rates{BadCLB: 0.3}, func(t *testing.T, dm *DefectMap, g *rrgraph.Graph, st ApplyStats) {
			set := dm.BadSiteSet()
			if len(set) != len(dm.BadCLBs) {
				t.Errorf("BadSiteSet has %d entries for %d bad CLBs", len(set), len(dm.BadCLBs))
			}
			for _, s := range dm.BadCLBs {
				if !set[[2]int{s.X, s.Y}] {
					t.Errorf("bad CLB %+v missing from exclusion set", s)
				}
			}
		}},
		{"bad-io", Rates{BadIO: 0.3}, func(t *testing.T, dm *DefectMap, g *rrgraph.Graph, st ApplyStats) {
			set := dm.BadSiteSet()
			for _, s := range dm.BadIOs {
				if !set[[2]int{s.X, s.Y}] {
					t.Errorf("bad IO %+v missing from exclusion set", s)
				}
			}
		}},
		{"stuck-bit", Rates{StuckBit: 0.01}, func(t *testing.T, dm *DefectMap, g *rrgraph.Graph, st ApplyStats) {
			if len(dm.StuckBits) == 0 {
				t.Fatal("no stuck bits generated")
			}
			sb := dm.StuckBits[0]
			found := false
			for _, got := range dm.StuckBitsAt(sb.X, sb.Y) {
				if got == sb {
					found = true
				}
			}
			if !found {
				t.Errorf("StuckBitsAt(%d,%d) lost %+v", sb.X, sb.Y, sb)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dm, err := Generate(a, 11, tc.rates)
			if err != nil {
				t.Fatal(err)
			}
			if dm.Count() == 0 {
				t.Fatalf("rate %+v injected nothing", tc.rates)
			}
			g, err := rrgraph.Build(a)
			if err != nil {
				t.Fatal(err)
			}
			st := dm.Apply(g)
			tc.check(t, dm, g, st)
		})
	}
}

func TestApplyIsIdempotent(t *testing.T) {
	a := testArch()
	dm, err := Generate(a, 3, Rates{DeadWire: 0.1, DeadSwitch: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := rrgraph.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	first := dm.Apply(g)
	edges := g.NumEdges()
	second := dm.Apply(g)
	if second.EdgesRemoved != 0 {
		t.Errorf("second Apply removed %d more edges", second.EdgesRemoved)
	}
	if g.NumEdges() != edges {
		t.Errorf("edge count drifted %d -> %d on re-apply", edges, g.NumEdges())
	}
	if g.DeadCount() != first.DeadWires {
		t.Errorf("dead count %d != applied wires %d", g.DeadCount(), first.DeadWires)
	}
}

func TestApplyNilMapIsNoop(t *testing.T) {
	g, err := rrgraph.Build(testArch())
	if err != nil {
		t.Fatal(err)
	}
	var dm *DefectMap
	if st := dm.Apply(g); st != (ApplyStats{}) {
		t.Errorf("nil map applied defects: %+v", st)
	}
	if dm.Count() != 0 || dm.BadSiteSet() != nil || dm.StuckBitsAt(1, 1) != nil {
		t.Error("nil map accessors not inert")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	dm, err := Generate(testArch(), 9, Rates{DeadWire: 0.05, DeadSwitch: 0.05, BadCLB: 0.1, StuckBit: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "defects.json")
	if err := dm.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dm, back) {
		t.Error("defect map changed across Save/Load")
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"{", // syntax
		`{"cols": -1}`,
		`{"dead_wires": [{"x": -3}]}`,
		`{"dead_switches": [{"track": -1}]}`,
		`{"stuck_bits": [{"ble": -1}]}`,
	} {
		if _, err := Unmarshal([]byte(bad)); err == nil {
			t.Errorf("Unmarshal(%q) accepted invalid input", bad)
		}
	}
}

func TestFlipBits(t *testing.T) {
	data := bytes.Repeat([]byte{0xAA}, 64)
	out1 := FlipBits(data, 16, 5)
	out2 := FlipBits(data, 16, 5)
	if !bytes.Equal(out1, out2) {
		t.Error("FlipBits not deterministic")
	}
	if bytes.Equal(out1, data) {
		t.Error("FlipBits changed nothing")
	}
	if len(out1) != len(data) {
		t.Errorf("FlipBits changed length %d -> %d", len(data), len(out1))
	}
	if !bytes.Equal(data, bytes.Repeat([]byte{0xAA}, 64)) {
		t.Error("FlipBits mutated its input")
	}
	if out := FlipBits(nil, 4, 1); len(out) != 0 {
		t.Error("FlipBits on empty input grew data")
	}
}

func TestTruncate(t *testing.T) {
	data := []byte("0123456789")
	if got := Truncate(data, 0.5); string(got) != "01234" {
		t.Errorf("Truncate(0.5) = %q", got)
	}
	if got := Truncate(data, -1); len(got) != 0 {
		t.Errorf("Truncate(-1) kept %d bytes", len(got))
	}
	if got := Truncate(data, 2); len(got) != len(data) {
		t.Errorf("Truncate(2) kept %d bytes", len(got))
	}
}

func TestGarbleText(t *testing.T) {
	const text = ".model top\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n"
	g1 := GarbleText(text, 10, 21)
	g2 := GarbleText(text, 10, 21)
	if g1 != g2 {
		t.Error("GarbleText not deterministic")
	}
	if g1 == text {
		t.Error("GarbleText changed nothing")
	}
	if GarbleText("", 5, 1) != "" {
		t.Error("GarbleText invented text from nothing")
	}
}
