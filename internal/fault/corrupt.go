package fault

import (
	"math/rand"
)

// Corruption injectors for on-disk flow artifacts. Each is a pure,
// deterministic function of (input, seed) and never mutates its input, so
// a corruption found to expose a bug is reproducible from the seed alone.

// FlipBits returns a copy of data with n random bit flips (storage or
// transfer corruption of a binary artifact such as a .bit stream). Flip
// positions are drawn with replacement, so fewer than n distinct bits may
// change. Empty data or n <= 0 returns an unmodified copy.
func FlipBits(data []byte, n int, seed int64) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 || n <= 0 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		pos := rng.Intn(len(out) * 8)
		out[pos/8] ^= 1 << uint(pos%8)
	}
	return out
}

// Truncate returns the leading frac of data (a partial write / interrupted
// transfer). frac is clamped to [0, 1].
func Truncate(data []byte, frac float64) []byte {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(float64(len(data)) * frac)
	return append([]byte(nil), data[:n]...)
}

// GarbleText corrupts a textual artifact (BLIF, EDIF, VHDL) with n random
// edits: character substitution, deletion, duplication, or a swap of two
// adjacent characters — the classic shapes of editor/transfer mangling.
// The result is deterministic in (text, seed).
func GarbleText(text string, n int, seed int64) string {
	if len(text) == 0 || n <= 0 {
		return text
	}
	rng := rand.New(rand.NewSource(seed))
	buf := []byte(text)
	for i := 0; i < n && len(buf) > 0; i++ {
		pos := rng.Intn(len(buf))
		switch rng.Intn(4) {
		case 0: // substitute with a printable byte
			buf[pos] = byte(33 + rng.Intn(94))
		case 1: // delete
			buf = append(buf[:pos], buf[pos+1:]...)
		case 2: // duplicate
			buf = append(buf[:pos+1], buf[pos:]...)
		default: // swap with the next character
			if pos+1 < len(buf) {
				buf[pos], buf[pos+1] = buf[pos+1], buf[pos]
			}
		}
	}
	return string(buf)
}
