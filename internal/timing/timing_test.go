package timing

import (
	"testing"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/pack"
	"fpgaflow/internal/place"
	"fpgaflow/internal/route"
	"fpgaflow/internal/rrgraph"
)

const seqBLIF = `
.model seq
.inputs a b
.outputs o q
.names a b x
11 1
.names x b y
10 1
01 1
.names y q o
1- 1
-1 1
.names o a dq
11 1
.latch dq q re clk 0
.end
`

type flow struct {
	pk *pack.Packing
	p  *place.Problem
	pl *place.Placement
	r  *route.Result
}

func routeDesign(t *testing.T, blif string, params pack.Params, detff bool) *flow {
	t.Helper()
	nl, err := netlist.ParseBLIF(blif)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := pack.Pack(nl, params)
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Paper()
	a.CLB.N, a.CLB.K, a.CLB.I = params.N, params.K, params.I
	a.CLB.DoubleEdgeFF = detff
	a.Routing.ChannelWidth = 10
	p, err := place.NewProblem(a, pk)
	if err != nil {
		t.Fatal(err)
	}
	p.AutoSize()
	pl, err := place.Place(p, place.Options{Seed: 2, InnerNum: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := rrgraph.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	r, err := route.Route(p, pl, g, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Success {
		t.Fatal("routing failed")
	}
	return &flow{pk, p, pl, r}
}

func TestAnalyzeBasics(t *testing.T) {
	f := routeDesign(t, seqBLIF, pack.Params{N: 2, K: 4, I: 10}, true)
	an, err := Analyze(f.pk, f.p, f.pl, f.r)
	if err != nil {
		t.Fatal(err)
	}
	if an.CriticalPath <= 0 || an.MinPeriod != an.CriticalPath {
		t.Fatalf("critical path %v", an.CriticalPath)
	}
	// Sanity: with pads, muxes and LUTs on the path, the period must exceed
	// the raw LUT delay and stay below a microsecond for this toy design.
	tech := f.p.Arch.Tech
	if an.CriticalPath < tech.LUTDelay {
		t.Errorf("critical path %v below one LUT delay", an.CriticalPath)
	}
	if an.CriticalPath > 1e-6 {
		t.Errorf("critical path %v implausibly long", an.CriticalPath)
	}
	if an.CriticalSignal == "" {
		t.Error("no critical signal reported")
	}
}

func TestDETFFDoublesDataRate(t *testing.T) {
	f := routeDesign(t, seqBLIF, pack.Params{N: 2, K: 4, I: 10}, true)
	an, err := Analyze(f.pk, f.p, f.pl, f.r)
	if err != nil {
		t.Fatal(err)
	}
	if an.MaxDataRateHz != 2*an.MaxClockHz {
		t.Errorf("DETFF data rate %v != 2x clock %v", an.MaxDataRateHz, an.MaxClockHz)
	}
	f2 := routeDesign(t, seqBLIF, pack.Params{N: 2, K: 4, I: 10}, false)
	an2, err := Analyze(f2.pk, f2.p, f2.pl, f2.r)
	if err != nil {
		t.Fatal(err)
	}
	if an2.MaxDataRateHz != an2.MaxClockHz {
		t.Errorf("SETFF data rate %v != clock %v", an2.MaxDataRateHz, an2.MaxClockHz)
	}
}

func TestConnectionDelaysPositive(t *testing.T) {
	f := routeDesign(t, seqBLIF, pack.Params{N: 1, K: 4, I: 4}, true)
	ds := ConnectionDelays(f.r)
	count := 0
	for ni, nd := range ds {
		for si, d := range nd {
			if d <= 0 {
				t.Errorf("net %d sink %d delay %v", ni, si, d)
			}
			count++
		}
	}
	if count == 0 {
		t.Fatal("no connections analyzed")
	}
}

func TestLongerWirePathHasMoreDelay(t *testing.T) {
	// Direct model check: two synthetic paths through the same graph, one a
	// prefix of the other, must have increasing Elmore delay.
	a := arch.Paper()
	a.Rows, a.Cols = 4, 4
	a.Routing.ChannelWidth = 4
	g, err := rrgraph.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	// Find a chain of three wires connected via switch boxes.
	var w0, w1, w2 int = -1, -1, -1
	for _, n := range g.Nodes {
		if n.Type != rrgraph.ChanX {
			continue
		}
		for _, e := range n.Edges {
			if g.Nodes[e].Type != rrgraph.ChanX && g.Nodes[e].Type != rrgraph.ChanY {
				continue
			}
			for _, e2 := range g.Nodes[e].Edges {
				if e2 == n.ID || (g.Nodes[e2].Type != rrgraph.ChanX && g.Nodes[e2].Type != rrgraph.ChanY) {
					continue
				}
				w0, w1, w2 = n.ID, e, e2
				break
			}
			if w0 >= 0 {
				break
			}
		}
		if w0 >= 0 {
			break
		}
	}
	if w0 < 0 {
		t.Fatal("no wire chain found")
	}
	short := &route.Result{Graph: g, Routes: []*route.NetRoute{{Paths: [][]int{{w0, w1}}}}}
	long := &route.Result{Graph: g, Routes: []*route.NetRoute{{Paths: [][]int{{w0, w1, w2}}}}}
	ds, dl := ConnectionDelays(short)[0][0], ConnectionDelays(long)[0][0]
	if dl <= ds {
		t.Errorf("3-wire delay %v <= 2-wire delay %v", dl, ds)
	}
}

func TestAnalyzeCombinationalOnly(t *testing.T) {
	f := routeDesign(t, `
.model c
.inputs a b
.outputs o
.names a b o
11 1
.end`, pack.Params{N: 1, K: 4, I: 4}, true)
	an, err := Analyze(f.pk, f.p, f.pl, f.r)
	if err != nil {
		t.Fatal(err)
	}
	tech := f.p.Arch.Tech
	min := tech.InPadDelay + tech.LocalMuxDelay + tech.LUTDelay + tech.OutPadDelay
	if an.CriticalPath < min {
		t.Errorf("pad-to-pad path %v below floor %v", an.CriticalPath, min)
	}
}

func TestCriticalPathTrace(t *testing.T) {
	f := routeDesign(t, seqBLIF, pack.Params{N: 2, K: 4, I: 10}, true)
	an, err := Analyze(f.pk, f.p, f.pl, f.r)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.CriticalNodes) == 0 {
		t.Fatal("no critical path trace")
	}
	// The trace must be a real fanin chain with non-decreasing arrivals.
	prev := -1.0
	for _, name := range an.CriticalNodes {
		at, ok := an.ArrivalAt[name]
		if !ok {
			t.Fatalf("trace node %q has no arrival", name)
		}
		if at < prev {
			t.Fatalf("arrival decreases along trace at %q: %v < %v", name, at, prev)
		}
		prev = at
	}
	// Consecutive nodes must be connected in the netlist.
	for i := 1; i < len(an.CriticalNodes); i++ {
		n := f.pk.Netlist.Node(an.CriticalNodes[i])
		if n == nil {
			t.Fatalf("trace node %q missing", an.CriticalNodes[i])
		}
		found := false
		for _, fin := range n.Fanin {
			if fin.Name == an.CriticalNodes[i-1] {
				found = true
			}
		}
		if !found {
			t.Errorf("trace edge %q -> %q is not a netlist edge",
				an.CriticalNodes[i-1], an.CriticalNodes[i])
		}
	}
}
