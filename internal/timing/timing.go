// Package timing performs static timing analysis on a placed-and-routed
// design: logic delays from the architecture's cell timing, interconnect
// delays from an Elmore RC model over the routed paths, and the resulting
// minimum clock period. With the paper's double-edge-triggered flip-flops
// the data rate is twice the clock frequency, so the achievable data rate
// is reported separately.
package timing

import (
	"fmt"
	"math"

	"fpgaflow/internal/netlist"
	"fpgaflow/internal/pack"
	"fpgaflow/internal/place"
	"fpgaflow/internal/route"
	"fpgaflow/internal/rrgraph"
)

// Analysis is the result of timing analysis.
type Analysis struct {
	// CriticalPath is the longest register-to-register / pad-to-pad delay
	// including flip-flop setup where applicable, in seconds.
	CriticalPath float64
	// CriticalSignal names the endpoint of the critical path.
	CriticalSignal string
	// MinPeriod is the minimum clock period (== CriticalPath).
	MinPeriod float64
	// MaxClockHz is 1/MinPeriod.
	MaxClockHz float64
	// MaxDataRateHz is the achievable data rate: 2x clock for DETFF
	// architectures, 1x otherwise.
	MaxDataRateHz float64
	// NetDelay maps "signal->sinkBlockName" to the routed interconnect
	// delay of that connection.
	NetDelay map[string]float64
	// ArrivalAt gives the arrival time of every signal.
	ArrivalAt map[string]float64
	// RequiredAt gives the latest time each signal may arrive without
	// stretching the critical path (backward pass from the endpoints).
	// Signals that reach no timing endpoint are absent; SlackAt treats
	// them as fully relaxed.
	RequiredAt map[string]float64
	// CriticalNodes lists the signals along the critical path, source
	// first.
	CriticalNodes []string
}

// SlackAt returns the signal's timing slack: how much later it could
// arrive without degrading the critical path. Signals on the critical
// path have (floating-point) zero slack; signals feeding no endpoint are
// fully relaxed (slack == CriticalPath). Never negative.
func (an *Analysis) SlackAt(signal string) float64 {
	req, ok := an.RequiredAt[signal]
	if !ok {
		return an.CriticalPath
	}
	s := req - an.ArrivalAt[signal]
	if s < 0 {
		return 0 // float drift on the critical path itself
	}
	if s > an.CriticalPath {
		return an.CriticalPath
	}
	return s
}

// ConnectionDelays computes the Elmore delay of every routed connection,
// keyed by net index then sink index (matching Problem.Nets order).
func ConnectionDelays(r *route.Result) [][]float64 {
	g := r.Graph
	a := g.Arch
	swRon := a.Tech.SwitchRon(a.Routing.SwitchWidthMult)
	swCd := a.Tech.SwitchCDiff(a.Routing.SwitchWidthMult)
	out := make([][]float64, len(r.Routes))
	for ni, nr := range r.Routes {
		if nr == nil {
			continue
		}
		out[ni] = make([]float64, len(nr.Paths))
		for si, path := range nr.Paths {
			// RC ladder: delay = sum_i C_i * R_upstream(i). Wire-to-wire
			// hops insert a routing switch (R and diffusion C); the source
			// OPin contributes its driver resistance.
			rUp := 0.0
			delay := 0.0
			var prevType rrgraph.NodeType
			for idx, id := range path {
				n := g.Nodes[id]
				isWire := n.Type == rrgraph.ChanX || n.Type == rrgraph.ChanY
				if idx > 0 {
					wasWire := prevType == rrgraph.ChanX || prevType == rrgraph.ChanY
					if isWire && wasWire {
						rUp += swRon
						delay += rUp * swCd // switch diffusion on the junction
					}
				}
				rUp += n.R
				delay += rUp * n.C
				prevType = n.Type
			}
			out[ni][si] = delay
		}
	}
	return out
}

// Analyze computes the critical path of a packed, placed and routed design.
func Analyze(pk *pack.Packing, p *place.Problem, pl *place.Placement, r *route.Result) (*Analysis, error) {
	nl := pk.Netlist
	tech := p.Arch.Tech
	connDelay := ConnectionDelays(r)

	// Map (signal, sink block) -> routed delay.
	type connKey struct {
		signal string
		block  int
	}
	routed := make(map[connKey]float64)
	netDelay := make(map[string]float64)
	for ni, n := range p.Nets {
		for si, b := range n.Blocks[1:] {
			if connDelay[ni] == nil || si >= len(connDelay[ni]) {
				return nil, fmt.Errorf("timing: net %s sink %d unrouted", n.Signal, si)
			}
			d := connDelay[ni][si]
			routed[connKey{n.Signal, b}] = d
			netDelay[n.Signal+"->"+p.Blocks[b].Name] = d
		}
	}

	clusterBlockID := make(map[*pack.Cluster]int)
	for _, b := range p.Blocks {
		if b.Kind == place.BlockCLB {
			clusterBlockID[b.Cluster] = b.ID
		}
	}

	// interconnect returns the delay from signal src into the cluster of
	// consumer node n (0 for cluster-local feedback).
	interconnect := func(src string, consumer *pack.Cluster) float64 {
		if pk.ClusterOf(src) == consumer && consumer != nil {
			return 0 // local feedback through the cluster crossbar only
		}
		d, ok := routed[connKey{src, clusterBlockID[consumer]}]
		if !ok {
			return 0 // constant or optimized-away connection
		}
		return d
	}

	arrival := make(map[string]float64, nl.NumNodes())
	pred := make(map[string]string, nl.NumNodes())
	topo, err := nl.TopoSort()
	if err != nil {
		return nil, err
	}
	for _, n := range topo {
		switch n.Kind {
		case netlist.KindInput:
			arrival[n.Name] = tech.InPadDelay
		case netlist.KindLatch:
			arrival[n.Name] = tech.FFClkToQ
		case netlist.KindLogic:
			cl := pk.ClusterOf(n.Name)
			at := 0.0
			for _, f := range n.Fanin {
				t := arrival[f.Name] + interconnect(f.Name, cl)
				if t > at {
					at = t
					pred[n.Name] = f.Name
				}
			}
			arrival[n.Name] = at + tech.LocalMuxDelay + tech.LUTDelay
		}
	}

	an := &Analysis{NetDelay: netDelay, ArrivalAt: arrival}
	criticalStart := ""
	consider := func(t float64, name string) {
		if t > an.CriticalPath {
			an.CriticalPath = t
			an.CriticalSignal = name
		}
	}
	considerFrom := func(t float64, name, via string) {
		if t > an.CriticalPath {
			criticalStart = via
		}
		consider(t, name)
	}
	// Endpoints: latch D pins (+ setup, + interconnect into the latch's
	// cluster) and primary outputs (+ pad delay + routed delay to the pad).
	for _, n := range nl.Nodes() {
		if n.Kind != netlist.KindLatch {
			continue
		}
		d := n.Fanin[0]
		cl := pk.ClusterOf(n.Name)
		considerFrom(arrival[d.Name]+interconnect(d.Name, cl)+tech.FFSetup, n.Name+".D", d.Name)
	}
	for _, o := range nl.Outputs {
		padBlock := p.BlockByName("out:" + o)
		t := arrival[o]
		if padBlock >= 0 {
			if d, ok := routed[connKey{o, padBlock}]; ok {
				t += d
			}
		}
		considerFrom(t+tech.OutPadDelay, o, o)
	}
	if an.CriticalPath <= 0 {
		return nil, fmt.Errorf("timing: empty design (no endpoints)")
	}
	// Backward required-time pass: endpoints must close by the critical
	// path; each signal's required time is the min over its consumers of
	// (consumer requirement - consumer logic delay - interconnect). The
	// slack req - arrival is what NetCriticalities maps into [0,1].
	T := an.CriticalPath
	req := make(map[string]float64, nl.NumNodes())
	lower := func(name string, t float64) {
		if cur, ok := req[name]; !ok || t < cur {
			req[name] = t
		}
	}
	for _, n := range nl.Nodes() {
		if n.Kind != netlist.KindLatch {
			continue
		}
		d := n.Fanin[0]
		lower(d.Name, T-tech.FFSetup-interconnect(d.Name, pk.ClusterOf(n.Name)))
	}
	for _, o := range nl.Outputs {
		t := T - tech.OutPadDelay
		if padBlock := p.BlockByName("out:" + o); padBlock >= 0 {
			if d, ok := routed[connKey{o, padBlock}]; ok {
				t -= d
			}
		}
		lower(o, t)
	}
	for i := len(topo) - 1; i >= 0; i-- {
		n := topo[i]
		if n.Kind != netlist.KindLogic {
			continue
		}
		r, ok := req[n.Name]
		if !ok {
			continue // feeds no endpoint: fully relaxed
		}
		r -= tech.LocalMuxDelay + tech.LUTDelay
		cl := pk.ClusterOf(n.Name)
		for _, f := range n.Fanin {
			lower(f.Name, r-interconnect(f.Name, cl))
		}
	}
	an.RequiredAt = req
	// Backtrace the critical path, source first.
	for at := criticalStart; at != ""; at = pred[at] {
		an.CriticalNodes = append(an.CriticalNodes, at)
		if len(an.CriticalNodes) > nl.NumNodes() {
			break // defensive against cycles
		}
	}
	for i, j := 0, len(an.CriticalNodes)-1; i < j; i, j = i+1, j-1 {
		an.CriticalNodes[i], an.CriticalNodes[j] = an.CriticalNodes[j], an.CriticalNodes[i]
	}
	an.MinPeriod = an.CriticalPath
	an.MaxClockHz = 1 / an.MinPeriod
	an.MaxDataRateHz = an.MaxClockHz
	if p.Arch.CLB.DoubleEdgeFF {
		an.MaxDataRateHz *= 2
	}
	if math.IsInf(an.MaxClockHz, 0) || math.IsNaN(an.MaxClockHz) {
		return nil, fmt.Errorf("timing: non-finite clock frequency")
	}
	return an, nil
}
