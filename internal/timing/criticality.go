package timing

import (
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/pack"
	"fpgaflow/internal/place"
	"fpgaflow/internal/route"
)

// Criticality turns timing slack into the [0,1] weight the timing-driven
// placer and router cost functions consume: zero-slack (critical path)
// connections map to 1, fully relaxed connections to 0, linearly in
// between. The mapping is monotone non-increasing in slack, and out-of-
// range inputs clamp, so downstream cost blends never see a weight
// outside [0,1].
func Criticality(slack, dmax float64) float64 {
	if dmax <= 0 {
		return 0
	}
	c := 1 - slack/dmax
	if c < 0 {
		return 0
	}
	if c > 1 {
		return 1
	}
	return c
}

// NetCriticalities derives a per-net criticality vector (parallel to
// p.Nets) from a completed analysis: each net inherits the criticality of
// its driving signal, Criticality(SlackAt(signal), CriticalPath). The
// router recomputes this after every PathFinder iteration so critical
// nets chase fast paths while relaxed nets absorb the congestion.
func NetCriticalities(an *Analysis, p *place.Problem) []float64 {
	out := make([]float64, len(p.Nets))
	for i, n := range p.Nets {
		out[i] = Criticality(an.SlackAt(n.Signal), an.CriticalPath)
	}
	return out
}

// AnalyzeNetCriticalities runs the full timing analysis on a routed
// design and returns its per-net criticality vector. It is the
// per-iteration recompute hook the router's Options.Criticality callback
// wraps; the result is a pure function of the committed routing, so the
// timing-driven router stays bit-identical at every worker count.
func AnalyzeNetCriticalities(pk *pack.Packing, p *place.Problem, pl *place.Placement, r *route.Result) ([]float64, error) {
	an, err := Analyze(pk, p, pl, r)
	if err != nil {
		return nil, err
	}
	return NetCriticalities(an, p), nil
}

// StaticNetCriticalities estimates per-net criticality before any routing
// exists, from combinational depth through the mapped netlist alone: a
// net's driver on the deepest input-to-output path gets criticality 1,
// off-path drivers proportionally less. It seeds the router's first
// iteration (which has no routed delays to analyze yet) and mirrors the
// depth estimate place.CriticalityWeights builds its annealer weights
// from.
func StaticNetCriticalities(pk *pack.Packing, p *place.Problem) []float64 {
	nl := pk.Netlist
	depth := make(map[*netlist.Node]int, nl.NumNodes())
	topo, err := nl.TopoSort()
	if err != nil {
		topo = nl.Nodes()
	}
	for _, n := range topo {
		if n.Kind != netlist.KindLogic {
			continue
		}
		d := 0
		for _, f := range n.Fanin {
			if depth[f] > d {
				d = depth[f]
			}
		}
		depth[n] = d + 1
	}
	// Height: longest remaining combinational path (walk topo backwards).
	height := make(map[*netlist.Node]int, nl.NumNodes())
	for i := len(topo) - 1; i >= 0; i-- {
		n := topo[i]
		if n.Kind != netlist.KindLogic {
			continue
		}
		for _, f := range n.Fanin {
			if h := height[n] + 1; h > height[f] {
				height[f] = h
			}
		}
	}
	dmax := 0
	for _, n := range topo {
		if t := depth[n] + height[n]; t > dmax {
			dmax = t
		}
	}
	out := make([]float64, len(p.Nets))
	for i, net := range p.Nets {
		if dmax == 0 {
			continue
		}
		if n := nl.Node(net.Signal); n != nil {
			out[i] = float64(depth[n]+height[n]) / float64(dmax)
		}
	}
	return out
}
