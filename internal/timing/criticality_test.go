package timing

import (
	"math/rand"
	"testing"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/pack"
	"fpgaflow/internal/place"
	"fpgaflow/internal/route"
	"fpgaflow/internal/rrgraph"
)

// TestCriticalityRangeAndMonotonicity is the property suite on the pure
// slack-to-criticality mapping: every output lies in [0,1], the mapping
// never increases with slack, zero slack is fully critical and slack >=
// dmax fully relaxed — for randomized (slack, dmax) pairs including
// out-of-range and degenerate inputs.
func TestCriticalityRangeAndMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 2000; trial++ {
		dmax := rng.Float64() * 1e-8
		s1 := (rng.Float64()*2 - 0.5) * dmax // includes negative and > dmax
		s2 := (rng.Float64()*2 - 0.5) * dmax
		c1, c2 := Criticality(s1, dmax), Criticality(s2, dmax)
		for _, c := range []float64{c1, c2} {
			if c < 0 || c > 1 {
				t.Fatalf("criticality %v out of [0,1] (slack %v dmax %v)", c, s1, dmax)
			}
		}
		if s1 < s2 && c1 < c2 {
			t.Fatalf("criticality not monotone: slack %v -> %v but crit %v -> %v", s1, s2, c1, c2)
		}
	}
	if c := Criticality(0, 1e-9); c != 1 {
		t.Errorf("zero slack => criticality %v, want 1", c)
	}
	if c := Criticality(2e-9, 1e-9); c != 0 {
		t.Errorf("slack beyond dmax => criticality %v, want 0", c)
	}
	if c := Criticality(1e-9, 0); c != 0 {
		t.Errorf("degenerate dmax => criticality %v, want 0", c)
	}
}

// compileRandom packs, places and routes a small seeded-random netlist on
// the paper architecture (the same layered generator shape the route
// property suite uses).
func compileRandom(t *testing.T, seed int64) (*pack.Packing, *place.Problem, *place.Placement, *route.Result) {
	t.Helper()
	src := randomLayeredBLIF(seed)
	nl, err := netlist.ParseBLIF(src)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	a := arch.Paper()
	pk, err := pack.Pack(nl, pack.Params{N: a.CLB.N, K: a.CLB.K, I: a.CLB.I})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	p, err := place.NewProblem(a, pk)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	p.AutoSize()
	pl, err := place.Place(p, place.Options{Seed: seed, InnerNum: 1})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	g, err := rrgraph.Build(p.Arch)
	if err != nil {
		t.Fatal(err)
	}
	r, err := route.Route(p, pl, g, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Success {
		t.Fatalf("seed %d unroutable", seed)
	}
	return pk, p, pl, r
}

func randomLayeredBLIF(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	b := ".model crit\n.inputs a b c d\n.outputs x y\n"
	names := []string{"a", "b", "c", "d"}
	for l := 0; l < 4; l++ {
		for g := 0; g < 3; g++ {
			out := string(rune('e'+l*3+g)) + "w"
			in1 := names[len(names)-1-g%2]
			in2 := names[rng.Intn(len(names))]
			for in2 == in1 {
				in2 = names[rng.Intn(len(names))]
			}
			b += ".names " + in1 + " " + in2 + " " + out + "\n11 1\n00 1\n"
			names = append(names, out)
		}
	}
	b += ".names " + names[len(names)-1] + " " + names[len(names)-2] + " x\n10 1\n"
	b += ".names " + names[len(names)-3] + " " + names[0] + " y\n01 1\n"
	b += ".end\n"
	return b
}

// TestNetCriticalitiesProperties checks the analyzed criticality vector on
// random compiled designs: one value per net, all in [0,1], the critical
// path's driving nets fully critical, and every value consistent with the
// slack it was derived from (recomputing Criticality(SlackAt) reproduces
// the vector).
func TestNetCriticalitiesProperties(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		pk, p, pl, r := compileRandom(t, seed)
		an, err := Analyze(pk, p, pl, r)
		if err != nil {
			t.Fatal(err)
		}
		crit := NetCriticalities(an, p)
		if len(crit) != len(p.Nets) {
			t.Fatalf("seed %d: %d criticalities for %d nets", seed, len(crit), len(p.Nets))
		}
		maxC := 0.0
		for i, c := range crit {
			if c < 0 || c > 1 {
				t.Errorf("seed %d: net %s criticality %v out of [0,1]", seed, p.Nets[i].Signal, c)
			}
			if want := Criticality(an.SlackAt(p.Nets[i].Signal), an.CriticalPath); c != want {
				t.Errorf("seed %d: net %s criticality %v != Criticality(slack) %v", seed, p.Nets[i].Signal, c, want)
			}
			if c > maxC {
				maxC = c
			}
		}
		// Slack on the critical path must be ~zero: its signals' criticality 1.
		for _, sig := range an.CriticalNodes {
			if s := an.SlackAt(sig); s > 1e-12 {
				t.Errorf("seed %d: critical-path signal %s has slack %v", seed, sig, s)
			}
		}
		// Static estimate obeys the same range contract.
		for i, c := range StaticNetCriticalities(pk, p) {
			if c < 0 || c > 1 {
				t.Errorf("seed %d: static criticality[%d] = %v out of [0,1]", seed, i, c)
			}
		}
	}
}

// TestRequiredTimesNeverBelowArrivalMinusCritical asserts the backward
// pass invariant that slack is non-negative everywhere and bounded by the
// critical path.
func TestRequiredTimesNeverBelowArrivalMinusCritical(t *testing.T) {
	pk, p, pl, r := compileRandom(t, 7)
	an, err := Analyze(pk, p, pl, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(an.RequiredAt) == 0 {
		t.Fatal("backward pass produced no required times")
	}
	for sig := range an.ArrivalAt {
		s := an.SlackAt(sig)
		if s < 0 || s > an.CriticalPath {
			t.Errorf("signal %s slack %v outside [0, %v]", sig, s, an.CriticalPath)
		}
	}
}
