// Package power implements the PowerModel stage of the flow, following the
// structure of Poon/Yan/Wilton's flexible FPGA power model: switched-
// capacitance dynamic power over the routed interconnect and the CLB
// internals, short-circuit power as a fraction of dynamic, and subthreshold
// leakage from the fabric's transistor inventory. Switching activities come
// from functional simulation (internal/sim).
package power

import (
	"fmt"
	"sort"

	"fpgaflow/internal/pack"
	"fpgaflow/internal/place"
	"fpgaflow/internal/route"
	"fpgaflow/internal/rrgraph"
	"fpgaflow/internal/sim"
)

// Report is a power estimate breakdown in watts.
type Report struct {
	DynamicRouting float64
	DynamicLogic   float64
	DynamicClock   float64
	ShortCircuit   float64
	Leakage        float64
	Total          float64
	// ClockHz is the clock frequency the estimate was made at.
	ClockHz float64
	// PerNet is the routing power per external net signal.
	PerNet map[string]float64
	// GatedClockSaving is the clock power that gating removed (0 when the
	// architecture has no gated clock).
	GatedClockSaving float64
}

// TopNets returns the n highest-power nets for reporting.
func (r *Report) TopNets(n int) []string {
	names := make([]string, 0, len(r.PerNet))
	for s := range r.PerNet {
		names = append(names, s)
	}
	sort.Slice(names, func(i, j int) bool {
		if r.PerNet[names[i]] != r.PerNet[names[j]] {
			return r.PerNet[names[i]] > r.PerNet[names[j]]
		}
		return names[i] < names[j]
	})
	if len(names) > n {
		names = names[:n]
	}
	return names
}

// Estimate computes the power report for a placed-and-routed design running
// at clockHz with the given switching activity.
func Estimate(pk *pack.Packing, p *place.Problem, pl *place.Placement, r *route.Result,
	act *sim.Activity, clockHz float64) (*Report, error) {
	if clockHz <= 0 {
		return nil, fmt.Errorf("power: clock %v Hz", clockHz)
	}
	a := p.Arch
	tech := a.Tech
	g := r.Graph
	rep := &Report{ClockHz: clockHz, PerNet: make(map[string]float64)}

	density := func(signal string) float64 {
		if act == nil {
			return 0.25 // default uncorrelated estimate
		}
		if d, ok := act.Density[signal]; ok {
			return d
		}
		return 0.25
	}

	// Dynamic routing power: per net, the switched capacitance of every
	// occupied resource: wire C, switch diffusion at wire junctions, input
	// pin loads.
	swCd := tech.SwitchCDiff(a.Routing.SwitchWidthMult)
	for ni, nr := range r.Routes {
		if nr == nil {
			continue
		}
		cTotal := 0.0
		seen := map[int]bool{}
		for _, path := range nr.Paths {
			var prev rrgraph.NodeType
			for idx, id := range path {
				n := g.Nodes[id]
				isWire := n.Type == rrgraph.ChanX || n.Type == rrgraph.ChanY
				if idx > 0 && isWire && (prev == rrgraph.ChanX || prev == rrgraph.ChanY) {
					cTotal += swCd // junction switch loads the net once per hop
				}
				prev = n.Type
				if seen[id] {
					continue
				}
				seen[id] = true
				cTotal += n.C
			}
		}
		sigName := p.Nets[ni].Signal
		pw := 0.5 * density(sigName) * clockHz * tech.SwitchEnergy(cTotal)
		rep.PerNet[sigName] = pw
		rep.DynamicRouting += pw
	}

	// Dynamic logic power: per BLE, the LUT internal mux tree and the local
	// input muxes switch with their input/output activity.
	lutBits := 1 << uint(a.CLB.K)
	cLUTInternal := float64(2*(lutBits-1)) * tech.CDiffMin
	cLocalMux := float64(a.CLB.I+a.CLB.N)*tech.CDiffMin + tech.CGateMin
	for _, c := range pk.Clusters {
		for _, b := range c.BLEs {
			outD := density(b.Name())
			inD := 0.0
			ins := b.InputSignals()
			for _, in := range ins {
				inD += density(in)
			}
			if len(ins) > 0 {
				inD /= float64(len(ins))
			}
			// LUT tree switches with input changes; output load with output.
			pLUT := 0.5 * clockHz * (inD*tech.SwitchEnergy(cLUTInternal) + outD*tech.SwitchEnergy(tech.CGateMin*2))
			pMux := 0.5 * clockHz * inD * float64(len(ins)) * tech.SwitchEnergy(cLocalMux)
			rep.DynamicLogic += pLUT + pMux
		}
	}

	// Clock power: global spine across the grid + per-cluster local network
	// + per-FF clock loads. DETFF needs only clockHz/2 for the same data
	// rate; gating silences idle clusters and BLEs.
	fClk := clockHz
	if a.CLB.DoubleEdgeFF {
		fClk = clockHz / 2
	}
	spineC := tech.WireCap(float64(a.Rows*a.Cols), 1, 2) * 0.25 // H-tree estimate
	localClkC := tech.WireCap(0.5, 1, 2)                        // intra-CLB wiring
	ffClkC := 4 * tech.CGateMin                                 // clocked transistor gates per FF
	pClock := fClk * tech.SwitchEnergy(spineC)                  // spine always toggles (2 transitions/cycle * 1/2)
	ungated := pClock
	for _, c := range pk.Clusters {
		nFF := 0
		active := 0.0
		for _, b := range c.BLEs {
			if b.Registered() {
				nFF++
				d := density(b.Name())
				if d > active {
					active = d
				}
			}
		}
		if nFF == 0 {
			continue
		}
		cCluster := localClkC + float64(nFF)*ffClkC
		full := fClk * tech.SwitchEnergy(cCluster)
		ungated += full
		if a.CLB.GatedClock {
			// Gate overhead: the CLB NAND always sees the clock; the local
			// network and FFs only when the cluster is active. Activity of
			// the busiest FF approximates the cluster enable probability.
			gateC := 2 * tech.CGateMin
			pClock += fClk * (tech.SwitchEnergy(gateC) + active*tech.SwitchEnergy(cCluster))
		} else {
			pClock += full
		}
	}
	rep.DynamicClock = pClock
	if a.CLB.GatedClock {
		rep.GatedClockSaving = ungated - pClock
	}

	dynamic := rep.DynamicRouting + rep.DynamicLogic + rep.DynamicClock
	rep.ShortCircuit = tech.ShortCircuitFrac * dynamic

	// Leakage: every fabric transistor leaks; only half conduct per state
	// on average.
	rep.Leakage = 0.5 * float64(FabricTransistors(a)) * tech.LeakMin * tech.Vdd

	rep.Total = dynamic + rep.ShortCircuit + rep.Leakage
	return rep, nil
}
