package power

import (
	"testing"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/circuit"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/pack"
	"fpgaflow/internal/place"
	"fpgaflow/internal/route"
	"fpgaflow/internal/rrgraph"
	"fpgaflow/internal/sim"
)

const seqBLIF = `
.model seq
.inputs a b
.outputs o q
.names a b x
11 1
.names x b y
10 1
01 1
.names y q o
1- 1
-1 1
.names o a dq
11 1
.latch dq q re clk 0
.end
`

type flow struct {
	nl  *netlist.Netlist
	pk  *pack.Packing
	p   *place.Problem
	pl  *place.Placement
	r   *route.Result
	act *sim.Activity
}

func build(t *testing.T, gated, detff bool) *flow {
	t.Helper()
	nl, err := netlist.ParseBLIF(seqBLIF)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := pack.Pack(nl, pack.Params{N: 2, K: 4, I: 10})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Paper()
	a.CLB.N, a.CLB.I = 2, 10
	a.CLB.GatedClock = gated
	a.CLB.DoubleEdgeFF = detff
	a.Routing.ChannelWidth = 10
	p, err := place.NewProblem(a, pk)
	if err != nil {
		t.Fatal(err)
	}
	p.AutoSize()
	pl, err := place.Place(p, place.Options{Seed: 3, InnerNum: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := rrgraph.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	r, err := route.Route(p, pl, g, route.Options{})
	if err != nil || !r.Success {
		t.Fatalf("route: %v", err)
	}
	act, err := sim.EstimateActivity(nl, 1000, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	return &flow{nl, pk, p, pl, r, act}
}

func TestEstimateBreakdown(t *testing.T) {
	f := build(t, true, true)
	rep, err := Estimate(f.pk, f.p, f.pl, f.r, f.act, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total <= 0 {
		t.Fatal("zero power")
	}
	for name, v := range map[string]float64{
		"routing": rep.DynamicRouting, "logic": rep.DynamicLogic,
		"clock": rep.DynamicClock, "sc": rep.ShortCircuit, "leak": rep.Leakage,
	} {
		if v < 0 {
			t.Errorf("%s power negative: %v", name, v)
		}
	}
	sum := rep.DynamicRouting + rep.DynamicLogic + rep.DynamicClock + rep.ShortCircuit + rep.Leakage
	if diff := rep.Total - sum; diff > 1e-18 || diff < -1e-18 {
		t.Errorf("total %v != sum %v", rep.Total, sum)
	}
	// Plausibility at 0.18um, 100 MHz, tiny design: between 1 uW and 1 W.
	if rep.Total < 1e-6 || rep.Total > 1 {
		t.Errorf("total power implausible: %v W", rep.Total)
	}
}

func TestPowerScalesWithClock(t *testing.T) {
	f := build(t, true, true)
	r1, err := Estimate(f.pk, f.p, f.pl, f.r, f.act, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Estimate(f.pk, f.p, f.pl, f.r, f.act, 200e6)
	if err != nil {
		t.Fatal(err)
	}
	if r2.DynamicRouting <= r1.DynamicRouting || r2.DynamicClock <= r1.DynamicClock {
		t.Error("dynamic power did not grow with clock")
	}
	if r2.Leakage != r1.Leakage {
		t.Error("leakage should not depend on clock")
	}
}

func TestGatedClockSavesPower(t *testing.T) {
	gated := build(t, true, true)
	plain := build(t, false, true)
	rg, err := Estimate(gated.pk, gated.p, gated.pl, gated.r, gated.act, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := Estimate(plain.pk, plain.p, plain.pl, plain.r, plain.act, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if rg.GatedClockSaving <= 0 {
		t.Errorf("gated clock saving %v", rg.GatedClockSaving)
	}
	if rp.GatedClockSaving != 0 {
		t.Errorf("ungated arch reports saving %v", rp.GatedClockSaving)
	}
	if rg.DynamicClock >= rp.DynamicClock {
		t.Errorf("gating did not reduce clock power: %v vs %v", rg.DynamicClock, rp.DynamicClock)
	}
}

func TestDETFFHalvesClockPower(t *testing.T) {
	detff := build(t, false, true)
	setff := build(t, false, false)
	rd, err := Estimate(detff.pk, detff.p, detff.pl, detff.r, detff.act, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := Estimate(setff.pk, setff.p, setff.pl, setff.r, setff.act, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if rd.DynamicClock >= rs.DynamicClock {
		t.Errorf("DETFF clock power %v >= SETFF %v", rd.DynamicClock, rs.DynamicClock)
	}
}

func TestEstimateRejectsBadClock(t *testing.T) {
	f := build(t, true, true)
	if _, err := Estimate(f.pk, f.p, f.pl, f.r, f.act, 0); err == nil {
		t.Fatal("zero clock accepted")
	}
}

func TestNilActivityUsesDefault(t *testing.T) {
	f := build(t, true, true)
	rep, err := Estimate(f.pk, f.p, f.pl, f.r, nil, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DynamicRouting <= 0 {
		t.Error("default activity gave zero routing power")
	}
}

func TestTopNets(t *testing.T) {
	f := build(t, true, true)
	rep, err := Estimate(f.pk, f.p, f.pl, f.r, f.act, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	top := rep.TopNets(3)
	if len(top) == 0 {
		t.Fatal("no nets")
	}
	for i := 1; i < len(top); i++ {
		if rep.PerNet[top[i]] > rep.PerNet[top[i-1]] {
			t.Error("TopNets not sorted")
		}
	}
}

func TestTransistorCounts(t *testing.T) {
	a := arch.Paper()
	n := CLBTransistors(a)
	// 5 BLEs with 16-bit LUTs, DETFFs, 17:1 muxes: order of thousands.
	if n < 500 || n > 20000 {
		t.Errorf("CLB transistors = %d", n)
	}
	rt := TileRoutingTransistors(a)
	if rt <= 0 {
		t.Errorf("tile routing transistors = %d", rt)
	}
	// Bigger K means a bigger CLB.
	b := arch.Paper()
	b.CLB.K = 6
	if CLBTransistors(b) <= n {
		t.Error("K=6 CLB not larger than K=4")
	}
	// Fabric scales with grid.
	small, big := arch.Paper(), arch.Paper()
	small.Rows, small.Cols = 2, 2
	big.Rows, big.Cols = 4, 4
	if FabricTransistors(big) != 4*FabricTransistors(small) {
		t.Error("fabric transistor count not proportional to tiles")
	}
}

func TestFabricAreaGrowsWithSwitchWidth(t *testing.T) {
	a := arch.Paper()
	b := arch.Paper()
	b.Routing.SwitchWidthMult = 64
	if FabricAreaMinWidthUnits(b) <= FabricAreaMinWidthUnits(a) {
		t.Error("64x switches should cost more area than 10x")
	}
}

func TestClockPowerConsistentWithCircuitSubstrate(t *testing.T) {
	// Cross-check the architectural clock-power model against the
	// transistor-level Table 3 measurement: the per-cycle clock energy the
	// power model assigns to one active 5-FF cluster must agree with the
	// circuit substrate's measured single-clock CLB energy within an order
	// of magnitude (they model the same structure at different abstraction
	// levels).
	tech := arch.STM018()
	rows, err := circuit.Table3(tech, 5)
	if err != nil {
		t.Fatal(err)
	}
	var allOn float64
	for _, r := range rows {
		if r.ActiveFFs == 5 {
			allOn = r.SingleClock
		}
	}
	if allOn <= 0 {
		t.Fatal("no all-on row")
	}
	// The power model's per-cluster clock capacitance (local wire + 5 FF
	// clock loads), per cycle.
	localClkC := tech.WireCap(0.5, 1, 2)
	ffClkC := 4 * tech.CGateMin
	modelE := tech.SwitchEnergy(localClkC + 5*ffClkC)
	ratio := allOn / modelE
	if ratio < 0.5 || ratio > 20 {
		t.Errorf("circuit CLB clock energy %.1f fJ vs model %.1f fJ (ratio %.1f outside [0.5,20])",
			allOn*1e15, modelE*1e15, ratio)
	}
}
