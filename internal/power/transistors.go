package power

import "fpgaflow/internal/arch"

// Transistor inventory of the fabric, used for the leakage estimate and the
// area model. The counts follow the paper's circuit structures: LUTs built
// as SRAM-driven pass-transistor mux trees (Fig. 2), fully connected local
// interconnect ((I+N)-to-1 mux per LUT input), one DETFF and one 2:1 output
// mux per BLE, NAND clock gates at BLE and CLB level (Figs. 5-6), and
// SRAM-configured pass-transistor routing switches.

const (
	sramCell = 6 // 6T SRAM bit
	nandGate = 4
	inverter = 2
	// detffTransistors matches the Llopis-1 DETFF selected in the paper
	// (two C2MOS latch branches plus output mux).
	detffTransistors = 20
	// setffTransistors is a master-slave single-edge FF for comparison.
	setffTransistors = 24
)

// CLBTransistors counts the transistors in one CLB.
func CLBTransistors(a *arch.Arch) int {
	c := a.CLB
	lutBits := 1 << uint(c.K)
	// LUT: SRAM bits + mux tree (2*(2^K - 1) pass transistors) + output buffer.
	lut := lutBits*sramCell + 2*(lutBits-1) + inverter
	ff := setffTransistors
	if c.DoubleEdgeFF {
		ff = detffTransistors
	}
	// BLE: LUT + FF + 2:1 output mux (2 pass + 1 config bit).
	ble := lut + ff + 2 + sramCell
	if c.GatedClock {
		ble += nandGate + sramCell // per-BLE clock gate + enable bit
	}
	// Local interconnect: one (I+N):1 mux per LUT input per BLE,
	// pass-transistor tree with binary-encoded SRAM select.
	muxIn := c.I + c.N
	selBits := bitsFor(muxIn)
	localMux := muxIn + selBits*sramCell + inverter
	cluster := c.N*(ble+c.K*localMux) + inverter // + clock root buffer
	if c.GatedClock {
		cluster += nandGate + sramCell // CLB-level clock gate
	}
	return cluster
}

// TileRoutingTransistors counts the routing transistors associated with one
// logic tile: switch-box switches for the two adjacent channels plus the
// connection-box switches for the tile's pins.
func TileRoutingTransistors(a *arch.Arch) int {
	r := a.Routing
	w := r.ChannelWidth
	// Disjoint switch box: per track, the 4 incident wire ends interconnect
	// with 6 pass transistors; one switch box per tile.
	sb := w * 6
	sbBits := w * 6 * sramCell // one config bit per switch
	// Connection boxes: each input pin connects to Fc_in*W tracks, each
	// output pin to Fc_out*W tracks, one pass transistor + bit each.
	inConn := int(float64(a.CLB.I)*r.FcIn*float64(w) + 0.5)
	outConn := int(float64(a.CLB.Outputs())*r.FcOut*float64(w) + 0.5)
	cb := inConn + outConn
	cbBits := cb * sramCell
	return sb + sbBits + cb + cbBits
}

// FabricTransistors counts the whole fabric.
func FabricTransistors(a *arch.Arch) int {
	perTile := CLBTransistors(a) + TileRoutingTransistors(a)
	return perTile * a.Rows * a.Cols
}

// FabricAreaMinWidthUnits estimates total layout area in units of
// minimum-width transistor areas (the VPR area model), accounting for the
// wider routing switches.
func FabricAreaMinWidthUnits(a *arch.Arch) float64 {
	logic := float64(CLBTransistors(a)) * arch.TransistorArea(1)
	r := a.Routing
	w := float64(r.ChannelWidth)
	switchArea := arch.TransistorArea(r.SwitchWidthMult)
	sb := w * 6 * switchArea
	sbBits := w * 6 * float64(sramCell) * arch.TransistorArea(1)
	inConn := float64(a.CLB.I) * r.FcIn * w
	outConn := float64(a.CLB.Outputs()) * r.FcOut * w
	cb := (inConn + outConn) * switchArea
	cbBits := (inConn + outConn) * float64(sramCell) * arch.TransistorArea(1)
	perTile := logic + sb + sbBits + cb + cbBits
	return perTile * float64(a.Rows*a.Cols)
}

func bitsFor(n int) int {
	b := 0
	for 1<<uint(b) < n {
		b++
	}
	return b
}
