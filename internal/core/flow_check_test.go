package core

import (
	"strings"
	"testing"

	"fpgaflow/internal/obs"
)

// The stage-boundary checker must fail the flow with a named rule ID when a
// corrupt artifact is injected (ISSUE.md acceptance criterion).

const multiDrivenBLIF = `
.model dup
.inputs a b
.outputs y
.names a y
1 1
.names b y
1 1
.end
`

func TestFlowRejectsMultiDrivenNet(t *testing.T) {
	_, err := RunBLIF(multiDrivenBLIF, Options{})
	if err == nil {
		t.Fatal("flow accepted a multi-driven net")
	}
	if !strings.Contains(err.Error(), "net/multi-driven") {
		t.Fatalf("error %q does not name rule net/multi-driven", err)
	}
}

func TestFlowSkipChecks(t *testing.T) {
	// With checks disabled the multi-driven BLIF reaches the parser, which
	// has its own (rule-less) duplicate-driver error.
	_, err := RunBLIF(multiDrivenBLIF, Options{SkipChecks: true})
	if err == nil {
		t.Fatal("parser accepted a multi-driven net")
	}
	if strings.Contains(err.Error(), "net/multi-driven") {
		t.Fatalf("SkipChecks still ran the checker: %v", err)
	}
}

func TestFlowDisableChecks(t *testing.T) {
	_, err := RunBLIF(multiDrivenBLIF, Options{
		DisableChecks: []string{"net/multi-driven"},
	})
	if err == nil {
		t.Fatal("parser accepted a multi-driven net")
	}
	if strings.Contains(err.Error(), "net/multi-driven") {
		t.Fatalf("disabled rule still fired: %v", err)
	}
}

func TestFlowChecksRecordCounters(t *testing.T) {
	blif := `
.model clean
.inputs a b c
.outputs y
.names a b t
11 1
.names t c y
1- 1
-1 1
.end
`
	tr := obs.New("check-flow-test")
	_, err := RunBLIF(blif, Options{Seed: 3, Obs: tr})
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Counters()
	if c["check.rules_run"] == 0 {
		t.Error("check.rules_run counter missing from the flow trace")
	}
	if c["check.errors"] != 0 {
		t.Errorf("clean flow recorded %d check errors", c["check.errors"])
	}
}
