package core

import (
	"context"
	"errors"
	"fmt"
	"time"

	"fpgaflow/internal/obs/events"
	"fpgaflow/internal/place"
	"fpgaflow/internal/route"
	"fpgaflow/internal/rrgraph"
)

// StageError is the structured failure of one flow stage: which tool
// failed, on which attempt, why, and what partial artifacts the run had
// produced by then. Every error out of RunVHDLContext/RunBLIFContext is a
// *StageError (errors.As) wrapping the stage's cause (errors.Is), so
// callers can classify failures — route.ErrUnroutable, place.ErrNoSpace,
// context.DeadlineExceeded, a *PanicError — without string matching.
type StageError struct {
	// Stage is the flow tool that failed ("VPR route", "DAGGER", ...).
	Stage string
	// Attempt is the 1-based flow attempt that produced the error (0 when
	// the error escaped the retry wrapper, e.g. from a direct stage call).
	Attempt int
	// Err is the cause.
	Err error
	// Partial holds the artifacts built before the failure (never nil from
	// the public Run entry points; its later fields are simply unset).
	Partial *Result

	retryable bool
}

// Error keeps the historical "<stage>: <cause>" rendering.
func (e *StageError) Error() string { return fmt.Sprintf("%s: %v", e.Stage, e.Err) }

// Unwrap exposes the cause to errors.Is/errors.As.
func (e *StageError) Unwrap() error { return e.Err }

// Retryable reports whether re-running the flow with a different placement
// seed could plausibly change the outcome: the failing stage is downstream
// of placement and the cause is not deterministic (capacity, cancellation,
// a panic).
func (e *StageError) Retryable() bool { return e.retryable }

// PanicError wraps a panic recovered inside a flow stage, preserving the
// panic value and the goroutine stack at the point of the panic.
type PanicError struct {
	Value interface{}
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// seedDependentStages are the stages whose outcome depends on the
// placement seed; failures there are worth retrying re-seeded. Everything
// upstream (parsing, synthesis, mapping, packing) is deterministic in the
// input alone.
var seedDependentStages = map[string]bool{
	"VPR place":  true,
	"VPR route":  true,
	"Timing":     true,
	"PowerModel": true,
	"DAGGER":     true,
	"Verify":     true,
}

// retryableCause classifies a stage failure for the retry policy.
func retryableCause(stage string, err error) bool {
	if !seedDependentStages[stage] {
		return false
	}
	var pe *PanicError
	switch {
	case errors.Is(err, place.ErrNoSpace): // deterministic capacity failure
		return false
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return false
	case errors.As(err, &pe): // a bug, not bad luck: surface it
		return false
	}
	return true
}

// RetryPolicy configures the hardened runner's recovery behavior. The zero
// value runs the flow exactly once with no degradation.
type RetryPolicy struct {
	// MaxAttempts bounds total flow attempts (values below 1 mean 1).
	MaxAttempts int
	// ReseedPlacement retries seed-dependent stage failures (unroutable
	// placements, stuck-bit conflicts, equivalence misses) with a new
	// placement seed.
	ReseedPlacement bool
	// EscalateChannelWidth degrades gracefully after an unroutable failure
	// at the architecture's fixed channel width: the retry switches to the
	// MinChannelWidth search, which widens the channel until the design
	// routes. The escalation is counted on the flow.degraded counter.
	EscalateChannelWidth bool
	// Backoff is the wait before the first retry, doubling on every
	// further retry up to MaxBackoff; zero retries immediately.
	Backoff time.Duration
	// MaxBackoff caps the exponential backoff (0 = uncapped).
	MaxBackoff time.Duration
}

// DefaultRetryPolicy is a sensible hardened configuration: up to three
// attempts, re-seeding and channel-width escalation on, no backoff (the
// flow is CPU-bound, not contended).
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, ReseedPlacement: true, EscalateChannelWidth: true}
}

// reseedStep offsets the placement seed between retry attempts. It is a
// prime distinct from the 7919 stride PlaceBest uses for its parallel
// seeds, so retried runs never replay a seed the multi-start placer
// already tried.
const reseedStep = 104729

// runRetry is the hardened runner: it executes attempt under the options'
// retry policy, mutating the options between attempts (new seed, escalated
// channel width) per the classification of the previous failure. Every
// attempt, retry and degradation is counted on the run's trace; the
// counters exist (at zero) even for clean first-attempt runs so metrics
// consumers can rely on them.
func runRetry(ctx context.Context, opts Options, attempt func(context.Context, Options) (*Result, error)) (*Result, error) {
	opts.fill()
	if opts.RRCache == nil {
		// One cache per hardened run: re-seeded retries and channel-width
		// escalation revisit the same (arch, W) graphs, and each trial gets a
		// private clone so per-attempt defect masks never cross-contaminate.
		opts.RRCache = rrgraph.NewCache(0)
	}
	tr := opts.trace()
	tr.Counter("flow.attempts")
	tr.Counter("flow.retries")
	tr.Counter("flow.degraded")
	pol := opts.Retry
	if pol.MaxAttempts < 1 {
		pol.MaxAttempts = 1
	}
	backoff := pol.Backoff
	for try := 1; ; try++ {
		if opts.Events.Enabled() {
			opts.Events.Publish(events.Event{Kind: events.KindFlow,
				Flow: &events.FlowEvent{Action: "attempt", Attempt: try, Seed: opts.Seed}})
		}
		// Each attempt is a span of its own, so a retried job's trace shows
		// every attempt (with the flow stages nested under it) on one
		// timeline instead of a flat stage list that silently restarts.
		asp := tr.Start(fmt.Sprintf("attempt %d", try))
		asp.SetDetail("seed=%d", opts.Seed)
		res, err := attempt(ctx, opts)
		tr.Add("flow.attempts", 1)
		if err == nil {
			asp.End()
			return res, nil
		}
		se := asStageError(err, try, res)
		asp.SetDetail("seed=%d err=%v", opts.Seed, se)
		if try >= pol.MaxAttempts || ctx.Err() != nil {
			asp.End()
			return res, se
		}
		action := ""
		switch {
		case pol.EscalateChannelWidth && !opts.MinChannelWidth && errors.Is(se, route.ErrUnroutable):
			opts.MinChannelWidth = true
			tr.Add("flow.degraded", 1)
			action = "escalate"
		case pol.ReseedPlacement && se.Retryable():
			opts.Seed += reseedStep
			action = "retry"
		default:
			asp.End()
			return res, se
		}
		asp.SetDetail("seed=%d %s: %v", opts.Seed, action, se)
		asp.End()
		tr.Add("flow.retries", 1)
		if opts.Events.Enabled() {
			opts.Events.Publish(events.Event{Kind: events.KindFlow, Flow: &events.FlowEvent{
				Action: action, Attempt: try + 1, Seed: opts.Seed, Reason: se.Error()}})
		}
		if backoff > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				// A caller cancelling during backoff must get back promptly
				// and see the cancellation (errors.Is(err, context.Canceled))
				// alongside the stage failure that triggered the retry — and
				// no further attempt may run.
				t.Stop()
				return res, &StageError{Stage: se.Stage, Attempt: se.Attempt,
					Partial: se.Partial, Err: errors.Join(se.Err, context.Cause(ctx))}
			case <-t.C:
			}
			backoff *= 2
			if pol.MaxBackoff > 0 && backoff > pol.MaxBackoff {
				backoff = pol.MaxBackoff
			}
		}
	}
}

// asStageError guarantees the flow's error contract: every failure leaving
// the retry wrapper is a *StageError stamped with its attempt and partial
// result.
func asStageError(err error, attempt int, res *Result) *StageError {
	var se *StageError
	if !errors.As(err, &se) {
		se = &StageError{Stage: "flow", Err: err}
	}
	se.Attempt = attempt
	se.Partial = res
	return se
}
