// Package core implements the paper's primary contribution: the integrated
// design framework that chains every tool of the flow (Fig. 11) from a VHDL
// description down to the FPGA configuration bitstream:
//
//	VHDL Parser -> DIVINER (synthesis) -> DRUID (EDIF normalization) ->
//	E2FMT (EDIF to BLIF) -> SIS (logic optimization, LUT mapping) ->
//	T-VPack (packing) -> DUTYS (architecture file) -> VPR (placement and
//	routing) -> PowerModel -> DAGGER (bitstream)
//
// Each stage can also be driven standalone through the cmd/ tools; this
// package provides the end-to-end orchestration, per-stage metrics, and the
// closing verification that extracts the netlist back out of the bitstream
// and checks functional equivalence against the elaborated source.
package core

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/bitstream"
	"fpgaflow/internal/check"
	"fpgaflow/internal/edif"
	"fpgaflow/internal/fault"
	"fpgaflow/internal/logic"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/obs"
	"fpgaflow/internal/obs/events"
	"fpgaflow/internal/pack"
	"fpgaflow/internal/place"
	"fpgaflow/internal/power"
	"fpgaflow/internal/route"
	"fpgaflow/internal/rrgraph"
	"fpgaflow/internal/sim"
	"fpgaflow/internal/techmap"
	"fpgaflow/internal/timing"
	"fpgaflow/internal/vhdl"
)

// MapperKind selects the LUT mapping algorithm.
type MapperKind int

const (
	// MapFlowMap is depth-optimal FlowMap (default).
	MapFlowMap MapperKind = iota
	// MapGreedy is the area-oriented greedy baseline.
	MapGreedy
)

// Options configures a flow run.
type Options struct {
	// Arch is the target platform; nil selects the paper architecture with
	// an auto-sized grid. A non-nil Arch keeps its grid exactly (placement
	// fails if the design does not fit) unless AutoSizeGrid is set.
	Arch *arch.Arch
	// AutoSizeGrid resizes a provided Arch's grid to fit the design.
	AutoSizeGrid bool
	// Top names the top VHDL entity ("" = auto).
	Top string
	// Mapper selects the LUT mapper.
	Mapper MapperKind
	// Seed drives placement and activity estimation.
	Seed int64
	// PlaceEffort scales annealing moves (VPR inner_num; default 1 for
	// speed, 10 for quality).
	PlaceEffort float64
	// RouteMaxIters bounds PathFinder iterations.
	RouteMaxIters int
	// MinChannelWidth binary-searches the smallest routable W instead of
	// using the architecture's fixed width.
	MinChannelWidth bool
	// Profile selects a named QoR objective (min-delay, min-energy,
	// min-area) that turns on the matching option flags below; see
	// ParseProfile. The zero value is the balanced wirelength-driven flow.
	Profile Profile
	// TimingDrivenPlace weights placement cost by net criticality (depth
	// through the mapped netlist), trading wirelength for critical path.
	TimingDrivenPlace bool
	// TimingDrivenRoute weights routing base costs by resource RC delay.
	TimingDrivenRoute bool
	// CriticalityDrivenRoute closes the timing loop inside the router:
	// per-net criticalities (static depth estimate before the first
	// PathFinder iteration, slack-derived from the committed routing after
	// every iteration) blend into the congestion cost so critical nets take
	// fast paths while relaxed nets absorb detours. Implies
	// TimingDrivenRoute. Bit-identical for every worker count: the
	// recompute is a pure function of the committed routing.
	CriticalityDrivenRoute bool
	// EnergyDrivenRoute weights routing base costs by node capacitance so
	// nets prefer low-C resources. Ignored when a timing-driven route mode
	// is on.
	EnergyDrivenRoute bool
	// PowerAwarePack groups registered BLEs into shared clusters so gated
	// clock trees cover fewer CLBs (pack.Params.GroupGated).
	PowerAwarePack bool
	// PlaceCritAlpha is the timing-driven placement trade-off between
	// wirelength and criticality weighting (place.CriticalityWeights
	// alpha); 0 selects the default of 8.
	PlaceCritAlpha float64
	// PlaceSeeds runs that many independent annealing seeds in parallel and
	// keeps the cheapest placement (0/1 = single seed).
	PlaceSeeds int
	// PlaceWorkers is the number of concurrent annealer move-evaluation
	// workers (the CLI -j knob): 0 uses GOMAXPROCS, 1 evaluates serially.
	// The placement is bit-identical for every value — see
	// place.Options.Workers.
	PlaceWorkers int
	// RouteWorkers is the number of concurrent net-routing workers inside
	// each PathFinder iteration (the CLI -j knob): 0 uses GOMAXPROCS, 1
	// routes serially. The routing result is identical for every value —
	// see route.Options.Workers.
	RouteWorkers int
	// RRCache, when set, memoizes routing-resource graphs across channel
	// width trials and flow attempts (keyed by the full architecture
	// fingerprint; defect masks are re-applied to a private clone per
	// trial). The hardened runner installs a shared cache automatically, so
	// this only needs setting to share a cache across independent runs.
	RRCache *rrgraph.Cache
	// FixedPads pins primary input pads ("a") and output pads ("out:a") to
	// grid locations, keeping the pinout stable across compilations.
	FixedPads map[string]place.Location
	// ClockHz is the power-estimation clock; 0 uses the maximum frequency
	// from timing analysis.
	ClockHz float64
	// ActivityCycles controls the simulation length for switching
	// activities (default 500).
	ActivityCycles int
	// SkipVerify disables the closing bitstream-extraction equivalence
	// check (it is the most expensive step on large designs).
	SkipVerify bool
	// SkipChecks disables the stage-boundary static verification
	// (internal/check) that otherwise runs after every stage and fails
	// fast on error-severity diagnostics.
	SkipChecks bool
	// DisableChecks suppresses individual check rules by ID
	// (see docs/CHECKS.md for the rule list and suppression policy).
	DisableChecks []string
	// OptimizeOptions tunes the SIS stage.
	OptimizeOptions logic.Options
	// Defects injects an imperfect fabric (see internal/fault): placement
	// avoids defective sites, routing masks dead wires and switches
	// (re-applied at every channel-width escalation), and the stage-boundary
	// checks verify no configured resource lands on a defect. Injection
	// totals are reported on fault.* counters.
	Defects *fault.DefectMap
	// StageTimeout bounds each stage's wall time (0 = unbounded). A stage
	// that overruns fails with a StageError wrapping
	// context.DeadlineExceeded; placement and routing cancel cooperatively,
	// other stages are abandoned after a short grace period.
	StageTimeout time.Duration
	// Retry configures the hardened runner: re-seeded attempts, channel
	// width escalation and backoff (see RetryPolicy). Zero value = one
	// attempt, no degradation.
	Retry RetryPolicy
	// StageStart, when set, is invoked at the entry of every stage with the
	// tool name (GUI progress reporting; fault-injection tests use it to
	// simulate stuck or crashing stages).
	StageStart func(stage string)
	// Obs receives per-stage spans and stage-specific counters for the run.
	// nil falls back to the process-global trace (obs.Global), which is
	// itself a no-op unless a main installed one.
	Obs *obs.Trace
	// Events receives the iteration-level telemetry stream: stage
	// boundaries, hardened-runner decisions (attempts, retries,
	// escalations), one event per annealing temperature step and per
	// PathFinder iteration, and the final fabric occupancy/congestion maps
	// the heatmap artifact derives from. nil disables the stream at the
	// cost of one atomic load per publish site (see internal/obs/events).
	Events *events.Bus
}

// trace resolves the effective observability trace for the run.
func (o *Options) trace() *obs.Trace {
	if o.Obs != nil {
		return o.Obs
	}
	return obs.Global()
}

func (o *Options) fill() {
	o.Profile.apply(o)
	if o.CriticalityDrivenRoute {
		o.TimingDrivenRoute = true
	}
	if o.TimingDrivenRoute {
		o.EnergyDrivenRoute = false
	}
	if o.PlaceEffort == 0 {
		o.PlaceEffort = 1
	}
	if o.PlaceCritAlpha == 0 {
		o.PlaceCritAlpha = 8
	}
	if o.ActivityCycles == 0 {
		o.ActivityCycles = 500
	}
}

// Stage records one tool invocation. Duration is the stage's own wall
// time, measured by its observability span (every stage records its own
// timing; nothing is stamped at flow end).
type Stage struct {
	Tool     string
	Detail   string
	Duration time.Duration
	// CPU is the process CPU time consumed during the stage (may exceed
	// Duration for parallel stages); zero when unavailable.
	CPU time.Duration
	// AllocBytes is the heap allocated during the stage
	// (runtime.MemStats.TotalAlloc delta).
	AllocBytes uint64
}

// Result is the complete output of a flow run.
type Result struct {
	Stages []Stage

	// tr is the observability trace for this run (possibly nil).
	tr *obs.Trace

	// Source is the elaborated (pre-optimization) netlist, the reference
	// for all equivalence checks.
	Source *netlist.Netlist
	// EDIF is the DIVINER output after DRUID normalization.
	EDIF string
	// OptimizedBLIF is the netlist after the SIS stage.
	OptimizedBLIF string
	// Mapped is the K-LUT network.
	Mapped *techmap.Result
	// ArchFile is the DUTYS architecture description used.
	ArchFile string
	Arch     *arch.Arch
	Packing  *pack.Packing
	Problem  *place.Problem
	Placed   *place.Placement
	Routed   *route.Result
	Timing   *timing.Analysis
	Power    *power.Report
	Bits     *bitstream.Bitstream
	// Encoded is the binary bitstream.
	Encoded []byte
	// Verified is true when the bitstream extraction matched the source.
	Verified bool

	Metrics Metrics
}

// Metrics summarizes the run for tables.
type Metrics struct {
	Name           string
	SourceGates    int
	LUTs           int
	Depth          int
	CLBs           int
	GridW, GridH   int
	ChannelWidth   int
	WirelengthUsed int
	CriticalPath   float64
	MaxClockMHz    float64
	DataRateMbps   float64
	PowerTotalMW   float64
	// EnergyPJ is the energy per clock cycle in picojoules: total power at
	// the power-model clock divided by that clock. The min-energy profile
	// and benchgate's -energy-tol gate optimize and police this number.
	EnergyPJ      float64
	BitstreamBits int
	Utilization   float64
	// AreaUnits is the fabric area in minimum-width transistor areas
	// (the VPR area model over the sized grid).
	AreaUnits float64
}

// RunVHDL executes the full flow on VHDL source.
func RunVHDL(src string, opts Options) (*Result, error) {
	return RunVHDLContext(context.Background(), src, opts)
}

// RunVHDLContext executes the full flow on VHDL source under a context:
// cancellation and deadlines propagate into every stage, stage panics come
// back as structured *StageError values, and the options' RetryPolicy
// governs re-seeded attempts and graceful degradation.
func RunVHDLContext(ctx context.Context, src string, opts Options) (*Result, error) {
	return runRetry(ctx, opts, func(ctx context.Context, o Options) (*Result, error) {
		return runVHDLOnce(ctx, src, o)
	})
}

// RunBLIF enters the flow at the SIS stage with a BLIF netlist.
func RunBLIF(blifText string, opts Options) (*Result, error) {
	return RunBLIFContext(context.Background(), blifText, opts)
}

// RunBLIFContext is RunBLIF under a context and the hardened runner (see
// RunVHDLContext).
func RunBLIFContext(ctx context.Context, blifText string, opts Options) (*Result, error) {
	return runRetry(ctx, opts, func(ctx context.Context, o Options) (*Result, error) {
		return runBLIFOnce(ctx, blifText, o)
	})
}

// runVHDLOnce is a single flow attempt from VHDL source.
func runVHDLOnce(ctx context.Context, src string, opts Options) (*Result, error) {
	opts.fill()
	res := &Result{tr: opts.trace()}
	var design *vhdl.Design

	// Stage 1: VHDL Parser.
	err := res.stage(ctx, &opts, "VHDL Parser", func(context.Context) error {
		var err error
		design, err = vhdl.Parse(src)
		if err != nil {
			return err
		}
		res.Stages[len(res.Stages)-1].Detail = fmt.Sprintf("%d entities", len(design.Entities))
		return nil
	})
	if err != nil {
		return res, err
	}

	// Stage 2: DIVINER synthesis.
	err = res.stage(ctx, &opts, "DIVINER", func(context.Context) error {
		nl, err := vhdl.Elaborate(design, opts.Top)
		if err != nil {
			return err
		}
		res.Source = nl
		st := nl.Stats()
		res.tr.Add("synth.gates", int64(st.Logic))
		res.tr.Add("synth.ffs", int64(st.Latches))
		res.Stages[len(res.Stages)-1].Detail = fmt.Sprintf("%d gates, %d FFs", st.Logic, st.Latches)
		return nil
	})
	if err != nil {
		return res, err
	}

	// Stage 3+4: EDIF out, DRUID, E2FMT back to BLIF.
	var blif string
	err = res.stage(ctx, &opts, "DRUID", func(context.Context) error {
		text, err := edif.Write(res.Source)
		if err != nil {
			return err
		}
		res.EDIF, err = edif.Druid(text)
		return err
	})
	if err != nil {
		return res, err
	}
	err = res.stage(ctx, &opts, "E2FMT", func(context.Context) error {
		var err error
		blif, err = edif.E2FMT(res.EDIF)
		if err != nil {
			return err
		}
		// Lint the produced BLIF at the stage boundary: a multi-driven net
		// here is an E2FMT bug, not a SIS one.
		return res.runChecks(&opts, check.StageNetlist, &check.Artifacts{BLIF: blif})
	})
	if err != nil {
		return res, err
	}
	return res.continueFromBLIF(ctx, blif, opts)
}

// runBLIFOnce is a single flow attempt from a BLIF netlist.
func runBLIFOnce(ctx context.Context, blifText string, opts Options) (*Result, error) {
	opts.fill()
	res := &Result{tr: opts.trace()}
	// Text-level lint runs before the parser so a multi-driven net surfaces
	// as a named rule violation, not a parse error. Failures here are typed
	// StageErrors like every other flow failure (corrupted input must fail
	// fast, not crash or propagate shapeless).
	if err := res.runChecks(&opts, check.StageNetlist, &check.Artifacts{BLIF: blifText}); err != nil {
		return res, &StageError{Stage: "BLIF", Err: err}
	}
	nl, err := netlist.ParseBLIF(blifText)
	if err != nil {
		return res, &StageError{Stage: "BLIF", Err: err}
	}
	res.Source = nl
	return res.continueFromBLIF(ctx, blifText, opts)
}

func (res *Result) continueFromBLIF(ctx context.Context, blifText string, opts Options) (*Result, error) {
	a := opts.Arch
	if a == nil {
		a = arch.Paper()
	}
	a = a.Clone()
	res.Arch = a
	res.Metrics.Name = res.Source.Name
	res.Metrics.SourceGates = res.Source.Stats().Logic
	res.tr.Counter("fault.injected")
	if dm := opts.Defects; dm != nil {
		res.tr.Add("fault.injected", int64(dm.Count()))
		res.tr.Add("fault.dead_wires", int64(len(dm.DeadWires)))
		res.tr.Add("fault.dead_switches", int64(len(dm.DeadSwitches)))
		res.tr.Add("fault.bad_sites", int64(len(dm.BadCLBs)+len(dm.BadIOs)))
		res.tr.Add("fault.stuck_bits", int64(len(dm.StuckBits)))
	}

	// Stage 5: SIS (technology-independent optimization + decomposition +
	// LUT mapping).
	var working *netlist.Netlist
	err := res.stage(ctx, &opts, "SIS", func(context.Context) error {
		nl, err := netlist.ParseBLIF(blifText)
		if err != nil {
			return err
		}
		if err := logic.Optimize(nl, opts.OptimizeOptions); err != nil {
			return err
		}
		if err := logic.Decompose(nl); err != nil {
			return err
		}
		working = nl
		res.OptimizedBLIF = netlist.FormatBLIF(nl)
		res.Stages[len(res.Stages)-1].Detail = fmt.Sprintf("%d gates after optimization", nl.Stats().Logic)
		return res.runChecks(&opts, check.StageNetlist, &check.Artifacts{Netlist: nl})
	})
	if err != nil {
		return res, err
	}
	err = res.stage(ctx, &opts, "LUT map", func(context.Context) error {
		var mapped *techmap.Result
		var err error
		if opts.Mapper == MapGreedy {
			mapped, err = techmap.MapGreedy(working, a.CLB.K)
		} else {
			mapped, err = techmap.FlowMap(working, a.CLB.K)
		}
		if err != nil {
			return err
		}
		res.Mapped = mapped
		res.Metrics.LUTs = mapped.LUTs
		res.Metrics.Depth = mapped.Depth
		res.tr.Add("flow.luts", int64(mapped.LUTs))
		res.tr.SetGauge("lutmap.depth", float64(mapped.Depth))
		res.Stages[len(res.Stages)-1].Detail = fmt.Sprintf("%d LUTs, depth %d", mapped.LUTs, mapped.Depth)
		return res.runChecks(&opts, check.StageNetlist, &check.Artifacts{Netlist: mapped.Netlist, K: a.CLB.K})
	})
	if err != nil {
		return res, err
	}

	// Stage 6: T-VPack.
	err = res.stage(ctx, &opts, "T-VPack", func(context.Context) error {
		pk, err := pack.Pack(res.Mapped.Netlist, pack.Params{
			N: a.CLB.N, K: a.CLB.K, I: a.CLB.I, GroupGated: opts.PowerAwarePack})
		if err != nil {
			return err
		}
		res.Packing = pk
		pk.Record(res.tr)
		res.Metrics.CLBs = len(pk.Clusters)
		res.Metrics.Utilization = pk.Utilization()
		res.tr.Add("flow.clbs", int64(len(pk.Clusters)))
		detail := fmt.Sprintf("%d CLBs, %.0f%% BLE utilization", len(pk.Clusters), 100*pk.Utilization())
		if opts.PowerAwarePack {
			detail += fmt.Sprintf(", %d clocked", pk.ClockedClusters())
		}
		res.Stages[len(res.Stages)-1].Detail = detail
		return res.runChecks(&opts, check.StagePack, &check.Artifacts{Packing: pk})
	})
	if err != nil {
		return res, err
	}

	// Stage 7: DUTYS architecture file.
	autoSize := opts.Arch == nil || opts.AutoSizeGrid
	err = res.stage(ctx, &opts, "DUTYS", func(context.Context) error {
		p, err := place.NewProblem(a, res.Packing)
		if err != nil {
			return err
		}
		if autoSize {
			p.AutoSize()
		} else {
			clbs, pads := p.CountKinds()
			if clbs > a.LogicCapacity() || pads > a.IOCapacity() {
				return fmt.Errorf("core: design needs %d CLBs / %d pads; fixed %dx%d grid offers %d / %d",
					clbs, pads, a.Cols, a.Rows, a.LogicCapacity(), a.IOCapacity())
			}
		}
		res.Problem = p
		res.ArchFile = arch.Format(a)
		res.Metrics.GridW, res.Metrics.GridH = a.Cols, a.Rows
		res.Stages[len(res.Stages)-1].Detail = fmt.Sprintf("%dx%d grid", a.Cols, a.Rows)
		return nil
	})
	if err != nil {
		return res, err
	}

	// Stage 8: VPR placement.
	err = res.stage(ctx, &opts, "VPR place", func(sctx context.Context) error {
		popts := place.Options{Seed: opts.Seed, InnerNum: opts.PlaceEffort, Fixed: opts.FixedPads, Obs: res.tr,
			Ctx: sctx, Bad: opts.Defects.BadSiteSet(), Events: opts.Events, Workers: opts.PlaceWorkers}
		mode := "wirelength-driven"
		if opts.TimingDrivenPlace {
			// Recomputed here (inside the stage closure) so every hardened-
			// runner attempt weights against the attempt's own packing.
			popts.Weights = place.CriticalityWeights(res.Packing, res.Problem, opts.PlaceCritAlpha)
			mode = "timing-driven"
		}
		var pl *place.Placement
		var err error
		if opts.PlaceSeeds > 1 {
			pl, err = place.PlaceBest(res.Problem, popts, opts.PlaceSeeds)
			mode = fmt.Sprintf("%s, best of %d seeds", mode, opts.PlaceSeeds)
		} else {
			pl, err = place.Place(res.Problem, popts)
		}
		if err != nil {
			return err
		}
		res.Placed = pl
		res.Stages[len(res.Stages)-1].Detail = fmt.Sprintf("cost %.1f (%s)", pl.Cost, mode)
		return res.runChecks(&opts, check.StagePlace, &check.Artifacts{Problem: res.Problem, Placement: pl})
	})
	if err != nil {
		return res, err
	}

	// Stage 9: VPR routing.
	err = res.stage(ctx, &opts, "VPR route", func(sctx context.Context) error {
		ropts := route.Options{MaxIters: opts.RouteMaxIters, DelayDriven: opts.TimingDrivenRoute,
			EnergyDriven: opts.EnergyDrivenRoute, Obs: res.tr, Ctx: sctx,
			Workers: opts.RouteWorkers, Cache: opts.RRCache, Events: opts.Events}
		if opts.CriticalityDrivenRoute {
			pk, p, pl := res.Packing, res.Problem, res.Placed
			ropts.Criticality = func(g *rrgraph.Graph, routes []*route.NetRoute) []float64 {
				if routes == nil {
					// First iteration: no routed delays yet; seed with the
					// combinational-depth estimate.
					return timing.StaticNetCriticalities(pk, p)
				}
				nc, err := timing.AnalyzeNetCriticalities(pk, p, pl, &route.Result{Routes: routes, Graph: g})
				if err != nil {
					return nil // keep last criticalities on a mid-route analysis failure
				}
				return nc
			}
		}
		if opts.Defects != nil {
			// Re-applied at every channel-width trial: defects are keyed by
			// structural coordinates, so they survive RR-graph rebuilds and
			// any tracks added by escalation are defect-free.
			ropts.Mask = func(g *rrgraph.Graph) {
				st := opts.Defects.Apply(g)
				res.tr.Add("fault.rr_dead_nodes", int64(st.DeadWires))
				res.tr.Add("fault.rr_edges_removed", int64(st.EdgesRemoved))
			}
		}
		if opts.MinChannelWidth {
			w, r, err := route.MinChannelWidth(res.Problem, res.Placed, 1, a.Routing.ChannelWidth, ropts)
			if err != nil {
				return err
			}
			a.Routing.ChannelWidth = w
			res.Routed = r
		} else {
			g, err := opts.RRCache.Get(a, res.tr)
			if err != nil {
				return err
			}
			if ropts.Mask != nil {
				ropts.Mask(g)
			}
			r, err := route.Route(res.Problem, res.Placed, g, ropts)
			if err != nil {
				return err
			}
			if !r.Success {
				return fmt.Errorf("core: %w at W=%d (%d overused)", route.ErrUnroutable, a.Routing.ChannelWidth, r.Overused)
			}
			res.Routed = r
		}
		if err := res.Routed.Validate(res.Problem, res.Placed); err != nil {
			return err
		}
		res.Metrics.ChannelWidth = res.Routed.Graph.W
		res.Metrics.WirelengthUsed = res.Routed.WirelengthUsed()
		res.tr.Add("flow.channel_width", int64(res.Routed.Graph.W))
		res.tr.Add("route.wirelength", int64(res.Metrics.WirelengthUsed))
		res.tr.Add("flow.nets", int64(len(res.Routed.Routes)))
		res.Stages[len(res.Stages)-1].Detail = fmt.Sprintf("W=%d, %d wire segments",
			res.Routed.Graph.W, res.Routed.WirelengthUsed())
		return res.runChecks(&opts, check.StageRoute, &check.Artifacts{
			Graph: res.Routed.Graph, Routing: res.Routed,
			Problem: res.Problem, Placement: res.Placed,
		})
	})
	if err != nil {
		return res, err
	}

	// Timing analysis (feeds the power model's default clock).
	err = res.stage(ctx, &opts, "Timing", func(context.Context) error {
		an, err := timing.Analyze(res.Packing, res.Problem, res.Placed, res.Routed)
		if err != nil {
			return err
		}
		res.Timing = an
		res.Metrics.CriticalPath = an.CriticalPath
		res.Metrics.MaxClockMHz = an.MaxClockHz / 1e6
		res.Metrics.DataRateMbps = an.MaxDataRateHz / 1e6
		res.tr.SetGauge("timing.critical_path_ns", an.CriticalPath*1e9)
		res.tr.SetGauge("timing.fmax_mhz", an.MaxClockHz/1e6)
		res.Stages[len(res.Stages)-1].Detail = fmt.Sprintf("%.2f ns critical path", an.CriticalPath*1e9)
		return nil
	})
	if err != nil {
		return res, err
	}

	// Stage 10: PowerModel.
	err = res.stage(ctx, &opts, "PowerModel", func(context.Context) error {
		clock := opts.ClockHz
		if clock == 0 {
			clock = res.Timing.MaxClockHz
		}
		act, err := sim.EstimateActivityObs(res.Mapped.Netlist, opts.ActivityCycles, 0.5, opts.Seed, res.tr)
		if err != nil {
			return err
		}
		rep, err := power.Estimate(res.Packing, res.Problem, res.Placed, res.Routed, act, clock)
		if err != nil {
			return err
		}
		res.Power = rep
		res.Metrics.PowerTotalMW = rep.Total * 1e3
		res.Metrics.EnergyPJ = rep.Total / clock * 1e12
		res.tr.SetGauge("power.total_mw", rep.Total*1e3)
		res.tr.SetGauge("power.energy_pj", res.Metrics.EnergyPJ)
		res.Metrics.AreaUnits = power.FabricAreaMinWidthUnits(a)
		res.Stages[len(res.Stages)-1].Detail = fmt.Sprintf("%.3f mW at %.0f MHz", rep.Total*1e3, clock/1e6)
		return nil
	})
	if err != nil {
		return res, err
	}

	// Publish the per-design QoR record: the delay/energy numbers the
	// golden suite and benchgate gate on, tagged with the profile that
	// produced them.
	if opts.Events.Enabled() {
		opts.Events.Publish(events.Event{Kind: events.KindQoR, QoR: &events.QoREvent{
			Design:         res.Metrics.Name,
			Profile:        string(opts.Profile),
			ChannelWidth:   res.Metrics.ChannelWidth,
			Wirelength:     res.Metrics.WirelengthUsed,
			CriticalPathNS: res.Metrics.CriticalPath * 1e9,
			PowerMW:        res.Metrics.PowerTotalMW,
			EnergyPJ:       res.Metrics.EnergyPJ,
		}})
	}

	// Stage 11: DAGGER bitstream.
	err = res.stage(ctx, &opts, "DAGGER", func(context.Context) error {
		bs, err := bitstream.Generate(res.Packing, res.Problem, res.Placed, res.Routed)
		if err != nil {
			return err
		}
		res.Bits = bs
		res.Encoded, err = bitstream.Encode(bs)
		if err != nil {
			return err
		}
		res.Metrics.BitstreamBits = len(res.Encoded) * 8
		res.tr.Add("flow.bitstream_bits", int64(res.Metrics.BitstreamBits))
		res.Stages[len(res.Stages)-1].Detail = fmt.Sprintf("%d bytes", len(res.Encoded))
		return res.runChecks(&opts, check.StageBitstream, &check.Artifacts{
			Encoded: res.Encoded, Arch: a, Packing: res.Packing,
			Problem: res.Problem, Placement: res.Placed,
			Graph: res.Routed.Graph, Routing: res.Routed,
			Bitstream: bs,
		})
	})
	if err != nil {
		return res, err
	}

	// Closing verification: decode + extract + equivalence.
	if !opts.SkipVerify {
		err = res.stage(ctx, &opts, "Verify", func(context.Context) error {
			bs, err := bitstream.Decode(res.Encoded)
			if err != nil {
				return err
			}
			extracted, err := bitstream.Extract(bs)
			if err != nil {
				return err
			}
			if err := sim.CheckEquivalent(res.Source, extracted, 12, 400, opts.Seed+1); err != nil {
				return fmt.Errorf("core: bitstream does not implement the source design: %w", err)
			}
			res.Verified = true
			res.tr.Add("verify.equivalence_checks", 1)
			res.Stages[len(res.Stages)-1].Detail = "bitstream equivalent to source"
			return nil
		})
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

// runChecks executes the stage-boundary rule set for one flow stage,
// records diagnostic counts on the run's trace and fails fast when any
// error-severity diagnostic fired. It runs inside the stage closure so the
// returned error carries the stage tag.
func (res *Result) runChecks(opts *Options, stage check.Stage, arts *check.Artifacts) error {
	if opts.SkipChecks {
		return nil
	}
	arts.Disable = opts.DisableChecks
	arts.Defects = opts.Defects
	rep := check.RunStage(stage, arts)
	rep.Record(res.tr)
	return rep.Err()
}

// stageAbandonGrace is how long a deadline-exceeded stage gets to notice
// the cancellation before the runner abandons its goroutine and reports
// the timeout. Placement and routing cancel cooperatively well within
// this; CPU-bound stages without cancellation points are left to finish
// in the background (their writes target the already-recorded Stage slot).
const stageAbandonGrace = 250 * time.Millisecond

func (res *Result) stage(ctx context.Context, opts *Options, tool string, fn func(context.Context) error) error {
	if opts.StageStart != nil {
		opts.StageStart(tool)
	}
	if opts.Events.Enabled() {
		opts.Events.Publish(events.Event{Kind: events.KindStage,
			Stage: &events.StageEvent{Stage: tool, Phase: "start"}})
	}
	if err := ctx.Err(); err != nil {
		return &StageError{Stage: tool, Err: err}
	}
	sctx := ctx
	cancel := context.CancelFunc(func() {})
	if opts.StageTimeout > 0 {
		sctx, cancel = context.WithTimeout(ctx, opts.StageTimeout)
	}
	defer cancel()
	sp := res.tr.Start(tool)
	//fpgavet:ignore walltime stage wall-clock is telemetry only and never feeds QoR decisions
	start := time.Now()
	res.Stages = append(res.Stages, Stage{Tool: tool})
	var err error
	if sctx.Done() == nil {
		// No deadline and no cancellable parent: run inline, no goroutine.
		err = runShielded(sctx, fn)
	} else {
		done := make(chan error, 1)
		go func() { done <- runShielded(sctx, fn) }()
		select {
		case err = <-done:
		case <-sctx.Done():
			select {
			case err = <-done:
			case <-time.After(stageAbandonGrace):
				err = sctx.Err()
				res.tr.Add("flow.stage_abandoned", 1)
			}
		}
	}
	st := &res.Stages[len(res.Stages)-1]
	sp.SetDetail("%s", st.Detail)
	sp.End()
	if sp != nil {
		// The span is the source of truth for the stage's own timing.
		st.Duration = sp.Wall
		st.CPU = sp.CPU
		st.AllocBytes = sp.AllocBytes
		// Stage wall time feeds the farm's latency distribution, labeled by
		// stage (bounded: the stage set is fixed). The span already carries
		// the measurement, so no extra clock read happens here.
		res.tr.HistogramVec("flow.stage_seconds", "stage").Observe(tool, sp.Wall.Seconds())
	} else {
		//fpgavet:ignore walltime fallback duration telemetry when spans are disabled; reporting only
		st.Duration = time.Since(start)
	}
	res.tr.Add("flow.stages", 1)
	if opts.Events.Enabled() {
		end := &events.StageEvent{Stage: tool, Phase: "end", WallNS: st.Duration.Nanoseconds()}
		if err != nil {
			end.Err = err.Error()
		}
		opts.Events.Publish(events.Event{Kind: events.KindStage, Stage: end})
	}
	if err != nil {
		res.tr.Add("flow.stage_errors", 1)
		return &StageError{Stage: tool, Err: err, retryable: retryableCause(tool, err)}
	}
	return nil
}

// runShielded executes a stage body, converting a panic into a
// *PanicError so one buggy stage cannot take down the whole runner (or
// the GUI server driving it).
func runShielded(ctx context.Context, fn func(context.Context) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx)
}

// Summary renders the per-stage report like the GUI's log pane.
func (res *Result) Summary() string {
	out := fmt.Sprintf("design %s\n", res.Metrics.Name)
	for _, s := range res.Stages {
		out += fmt.Sprintf("  %-12s %-40s %8.2fms\n", s.Tool, s.Detail, float64(s.Duration.Microseconds())/1000)
	}
	m := res.Metrics
	out += fmt.Sprintf("  LUTs=%d depth=%d CLBs=%d grid=%dx%d W=%d crit=%.2fns fmax=%.1fMHz power=%.3fmW bits=%d\n",
		m.LUTs, m.Depth, m.CLBs, m.GridW, m.GridH, m.ChannelWidth,
		m.CriticalPath*1e9, m.MaxClockMHz, m.PowerTotalMW, m.BitstreamBits)
	return out
}
