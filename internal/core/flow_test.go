package core

import (
	"strings"
	"testing"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/circuits"
	"fpgaflow/internal/place"
)

func TestFullFlowCombinational(t *testing.T) {
	b := circuits.RippleAdder(4)
	res, err := RunVHDL(b.VHDL, Options{Seed: 1})
	if err != nil {
		t.Fatalf("%v\n%s", err, res.Summary())
	}
	if !res.Verified {
		t.Fatal("flow did not verify the bitstream")
	}
	m := res.Metrics
	if m.LUTs == 0 || m.CLBs == 0 || m.ChannelWidth == 0 || m.BitstreamBits == 0 {
		t.Errorf("metrics incomplete: %+v", m)
	}
	if m.CriticalPath <= 0 || m.PowerTotalMW <= 0 {
		t.Errorf("timing/power missing: %+v", m)
	}
	// All eleven paper stages plus timing and verify must have run.
	wantTools := []string{"VHDL Parser", "DIVINER", "DRUID", "E2FMT", "SIS",
		"LUT map", "T-VPack", "DUTYS", "VPR place", "VPR route", "PowerModel", "DAGGER", "Verify"}
	got := map[string]bool{}
	for _, s := range res.Stages {
		got[s.Tool] = true
	}
	for _, w := range wantTools {
		if !got[w] {
			t.Errorf("stage %q missing", w)
		}
	}
}

func TestFullFlowSequential(t *testing.T) {
	b := circuits.Counter(4)
	res, err := RunVHDL(b.VHDL, Options{Seed: 2})
	if err != nil {
		t.Fatalf("%v\n%s", err, res.Summary())
	}
	if !res.Verified {
		t.Fatal("sequential design did not verify")
	}
	// DETFF architecture: data rate is twice the clock.
	if res.Timing.MaxDataRateHz != 2*res.Timing.MaxClockHz {
		t.Error("DETFF data-rate doubling lost in flow")
	}
}

func TestFlowWithMinChannelWidth(t *testing.T) {
	b := circuits.ParityTree(8)
	res, err := RunVHDL(b.VHDL, Options{Seed: 3, MinChannelWidth: true})
	if err != nil {
		t.Fatalf("%v\n%s", err, res.Summary())
	}
	fixed, err := RunVHDL(b.VHDL, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ChannelWidth > fixed.Metrics.ChannelWidth {
		t.Errorf("min-W search found W=%d > fixed %d",
			res.Metrics.ChannelWidth, fixed.Metrics.ChannelWidth)
	}
}

func TestFlowGreedyMapper(t *testing.T) {
	b := circuits.RandomLogic(8, 25, 1)
	fm, err := RunVHDL(b.VHDL, Options{Seed: 1, Mapper: MapFlowMap})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := RunVHDL(b.VHDL, Options{Seed: 1, Mapper: MapGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if fm.Metrics.Depth > gr.Metrics.Depth {
		t.Errorf("FlowMap depth %d > greedy %d", fm.Metrics.Depth, gr.Metrics.Depth)
	}
	if !fm.Verified || !gr.Verified {
		t.Error("a mapper produced an unverified bitstream")
	}
}

func TestRunBLIFEntry(t *testing.T) {
	blif := `
.model midflow
.inputs a b c
.outputs y
.names a b t
11 1
.names t c y
1- 1
-1 1
.end
`
	res, err := RunBLIF(blif, Options{Seed: 4})
	if err != nil {
		t.Fatalf("%v\n%s", err, res.Summary())
	}
	if !res.Verified {
		t.Fatal("BLIF entry did not verify")
	}
	// The VHDL stages must be absent.
	for _, s := range res.Stages {
		if s.Tool == "VHDL Parser" || s.Tool == "DIVINER" {
			t.Errorf("unexpected stage %s for BLIF entry", s.Tool)
		}
	}
}

func TestFlowErrorsAreStageTagged(t *testing.T) {
	_, err := RunVHDL("entity broken is port (a : in std_logic)", Options{})
	if err == nil {
		t.Fatal("broken source accepted")
	}
	if !strings.Contains(err.Error(), "VHDL Parser") {
		t.Errorf("error not tagged with stage: %v", err)
	}
}

func TestFlowCustomArch(t *testing.T) {
	a := arch.Paper()
	a.CLB.N, a.CLB.K, a.CLB.I = 2, 3, 5
	a.Routing.ChannelWidth = 14
	b := circuits.RippleAdder(4)
	res, err := RunVHDL(b.VHDL, Options{Seed: 5, Arch: a, AutoSizeGrid: true})
	if err != nil {
		t.Fatalf("%v\n%s", err, res.Summary())
	}
	if !res.Verified {
		t.Fatal("custom arch did not verify")
	}
	for _, n := range res.Mapped.Netlist.Nodes() {
		if len(n.Fanin) > 3 {
			t.Fatalf("LUT wider than K=3")
		}
	}
}

func TestSummaryContainsAllStages(t *testing.T) {
	b := circuits.ParityTree(8)
	res, err := RunVHDL(b.VHDL, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary()
	for _, tool := range []string{"DIVINER", "DAGGER", "T-VPack"} {
		if !strings.Contains(s, tool) {
			t.Errorf("summary missing %s:\n%s", tool, s)
		}
	}
}

func TestArchFileRoundTripsThroughFlow(t *testing.T) {
	b := circuits.ParityTree(8)
	res, err := RunVHDL(b.VHDL, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := arch.Parse(res.ArchFile)
	if err != nil {
		t.Fatalf("DUTYS output unparseable: %v", err)
	}
	if parsed.CLB != res.Arch.CLB {
		t.Errorf("arch file CLB mismatch: %+v vs %+v", parsed.CLB, res.Arch.CLB)
	}
}

func TestFlowSegmentLengths(t *testing.T) {
	// The interconnect exploration (Figs 8-10) sweeps wire lengths; the
	// fabric supports length-1/2/4 segments end to end, bitstream included.
	b := circuits.RippleAdder(4)
	for _, seg := range []int{1, 2, 4} {
		a := arch.Paper()
		a.Routing.SegmentLength = seg
		res, err := RunVHDL(b.VHDL, Options{Seed: 6, Arch: a, AutoSizeGrid: true})
		if err != nil {
			t.Fatalf("seg=%d: %v\n%s", seg, err, res.Summary())
		}
		if !res.Verified {
			t.Fatalf("seg=%d: not verified", seg)
		}
	}
}

func TestTimingDrivenPlaceFlow(t *testing.T) {
	b := circuits.RippleAdder(8)
	td, err := RunVHDL(b.VHDL, Options{Seed: 4, TimingDrivenPlace: true})
	if err != nil {
		t.Fatalf("%v\n%s", err, td.Summary())
	}
	if !td.Verified {
		t.Fatal("timing-driven flow not verified")
	}
	if !strings.Contains(td.Summary(), "timing-driven") {
		t.Error("placement mode not reported")
	}
}

func TestFlowWithGenerics(t *testing.T) {
	res, err := RunVHDL(circuits.Accumulator(4).VHDL, Options{Seed: 7})
	if err != nil {
		t.Fatalf("%v\n%s", err, res.Summary())
	}
	if !res.Verified {
		t.Fatal("generic design not verified")
	}
}

func TestFlowScalesToLargerDesigns(t *testing.T) {
	if testing.Short() {
		t.Skip("large design")
	}
	// A few hundred gates of Rent-like random logic: tens of CLBs, a
	// double-digit grid, still fully verified through the bitstream.
	b := circuits.RandomLogic(24, 400, 13)
	res, err := RunVHDL(b.VHDL, Options{Seed: 9, MinChannelWidth: true})
	if err != nil {
		t.Fatalf("%v\n%s", err, res.Summary())
	}
	if !res.Verified {
		t.Fatal("large design not verified")
	}
	if res.Metrics.CLBs < 10 {
		t.Errorf("expected a multi-CLB design, got %d CLBs", res.Metrics.CLBs)
	}
	t.Logf("large design: %s", res.Summary())
}

func TestFlowErrorPaths(t *testing.T) {
	// Fixed grid too small for the design: placement must fail with a
	// stage-tagged error.
	a := arch.Paper()
	a.Rows, a.Cols = 1, 1
	a.IORate = 1
	b := circuits.RippleAdder(8)
	_, err := RunVHDL(b.VHDL, Options{Seed: 1, Arch: a})
	if err == nil {
		t.Fatal("overfull fixed grid accepted")
	}
	if !strings.Contains(err.Error(), "VPR place") && !strings.Contains(err.Error(), "DUTYS") {
		t.Errorf("error not stage-tagged: %v", err)
	}

	// Unroutably narrow fixed channel: routing must fail honestly.
	n := arch.Paper()
	n.Routing.ChannelWidth = 1
	_, err = RunVHDL(circuits.RippleAdder(8).VHDL, Options{Seed: 1, Arch: n, RouteMaxIters: 5})
	if err == nil {
		t.Skip("W=1 routed this design; nothing to assert")
	}
	if !strings.Contains(err.Error(), "VPR route") {
		t.Errorf("route failure not tagged: %v", err)
	}

	// K-LUT wider than arch K after custom map entry: pack must catch it.
	blif := ".model w\n.inputs a b c d e\n.outputs y\n.names a b c d e y\n11111 1\n.end\n"
	k3 := arch.Paper()
	k3.CLB.K = 3
	k3.CLB.I = 8
	if _, err := RunBLIF(blif, Options{Seed: 1, Arch: k3}); err != nil {
		// Acceptable: SIS/decompose keeps fanin <= 2, so mapping succeeds;
		// only a direct over-wide LUT would fail. Either way no panic.
		t.Logf("flow reported: %v", err)
	}
}

func TestFlowWithFixedPads(t *testing.T) {
	a := arch.Paper()
	a.Rows, a.Cols = 3, 3
	fixed := map[string]place.Location{
		"a[0]": {X: 0, Y: 1, Sub: 0}, "a[1]": {X: 0, Y: 2, Sub: 0}, "cin": {X: 0, Y: 3, Sub: 0},
		"out:cout": {X: 4, Y: 2, Sub: 0},
	}
	b := circuits.RippleAdder(4)
	res, err := RunVHDL(b.VHDL, Options{Seed: 2, Arch: a, FixedPads: fixed})
	if err != nil {
		t.Fatalf("%v\n%s", err, res.Summary())
	}
	if !res.Verified {
		t.Fatal("fixed-pad flow not verified")
	}
	for name, want := range fixed {
		id := res.Problem.BlockByName(name)
		if id < 0 || res.Placed.Loc[id] != want {
			t.Errorf("%s not at %v", name, want)
		}
	}
	// The bitstream pad table must reflect the pinned location.
	padCfg := res.Bits.Pads[[3]int{0, 1, 0}]
	if padCfg == nil || padCfg.Name != "a[0]" {
		t.Errorf("pad table does not pin a[0] at (0,1,0): %+v", padCfg)
	}
}

func TestFlowDeterministic(t *testing.T) {
	// Identical options must produce a byte-identical bitstream: the flow
	// is fully reproducible.
	b := circuits.Counter(4)
	r1, err := RunVHDL(b.VHDL, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunVHDL(b.VHDL, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if string(r1.Encoded) != string(r2.Encoded) {
		t.Fatal("same seed produced different bitstreams")
	}
	r3, err := RunVHDL(b.VHDL, Options{Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if string(r1.Encoded) == string(r3.Encoded) && r1.Metrics.CLBs > 1 {
		t.Log("different seeds produced identical bitstreams (tiny design; acceptable)")
	}
}
