package core

import (
	"testing"

	"fpgaflow/internal/circuits"
	"fpgaflow/internal/obs/events"
)

func TestParseProfile(t *testing.T) {
	for in, want := range map[string]Profile{
		"": ProfileBalanced, "balanced": ProfileBalanced,
		"min-delay": ProfileMinDelay, "min-energy": ProfileMinEnergy, "min-area": ProfileMinArea,
	} {
		got, err := ParseProfile(in)
		if err != nil || got != want {
			t.Errorf("ParseProfile(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParseProfile("fastest"); err == nil {
		t.Error("unknown profile accepted")
	}
}

func TestProfileAppliesFlags(t *testing.T) {
	d := Options{Profile: ProfileMinDelay}
	d.fill()
	if !d.TimingDrivenPlace || !d.TimingDrivenRoute || !d.CriticalityDrivenRoute {
		t.Errorf("min-delay flags not applied: %+v", d)
	}
	if d.EnergyDrivenRoute {
		t.Error("min-delay must not leave energy-driven routing on")
	}
	e := Options{Profile: ProfileMinEnergy}
	e.fill()
	if !e.PowerAwarePack || !e.EnergyDrivenRoute {
		t.Errorf("min-energy flags not applied: %+v", e)
	}
	a := Options{Profile: ProfileMinArea}
	a.fill()
	if !a.MinChannelWidth {
		t.Error("min-area did not enable the channel-width search")
	}
	// Criticality-driven routing implies delay-driven and suppresses the
	// energy base (the two cost models are mutually exclusive).
	c := Options{CriticalityDrivenRoute: true, EnergyDrivenRoute: true}
	c.fill()
	if !c.TimingDrivenRoute || c.EnergyDrivenRoute {
		t.Errorf("criticality-driven coupling wrong: %+v", c)
	}
}

// TestProfileFlowsEmitQoR runs a sequential design under every profile and
// checks each flow completes, reports a positive per-cycle energy, and
// publishes exactly one tagged QoR event carrying the metrics the gates
// compare.
func TestProfileFlowsEmitQoR(t *testing.T) {
	b := circuits.Counter(4)
	for _, prof := range []Profile{ProfileBalanced, ProfileMinDelay, ProfileMinEnergy, ProfileMinArea} {
		bus := events.NewBus(256)
		bus.SetEnabled(true)
		res, err := RunVHDL(b.VHDL, Options{Seed: 2, Profile: prof, SkipVerify: true, Events: bus})
		if err != nil {
			t.Fatalf("profile %q: %v\n%s", prof, err, res.Summary())
		}
		if res.Metrics.EnergyPJ <= 0 {
			t.Errorf("profile %q: EnergyPJ = %v, want > 0", prof, res.Metrics.EnergyPJ)
		}
		if res.Metrics.CriticalPath <= 0 {
			t.Errorf("profile %q: no critical path", prof)
		}
		var qor []*events.QoREvent
		for _, ev := range bus.Snapshot() {
			if ev.Kind == events.KindQoR {
				if err := ev.Validate(); err != nil {
					t.Errorf("profile %q: invalid QoR event: %v", prof, err)
				}
				qor = append(qor, ev.QoR)
			}
		}
		if len(qor) != 1 {
			t.Fatalf("profile %q: %d QoR events, want 1", prof, len(qor))
		}
		q := qor[0]
		if q.Profile != string(prof) {
			t.Errorf("QoR event profile %q, want %q", q.Profile, prof)
		}
		if q.CriticalPathNS != res.Metrics.CriticalPath*1e9 || q.EnergyPJ != res.Metrics.EnergyPJ ||
			q.ChannelWidth != res.Metrics.ChannelWidth || q.Wirelength != res.Metrics.WirelengthUsed {
			t.Errorf("profile %q: QoR event diverges from metrics: %+v vs %+v", prof, q, res.Metrics)
		}
	}
}
