package core

import (
	"bytes"
	"strings"
	"testing"

	"fpgaflow/internal/circuits"
	"fpgaflow/internal/obs"
)

// TestFlowEmitsSpanPerStage runs the complete flow with an explicit trace
// and checks the observability contract: the attempt is the single
// top-level span, every stage appears exactly once nested under it with a
// nonzero duration, and the stage tools contribute at least six distinct
// counters.
func TestFlowEmitsSpanPerStage(t *testing.T) {
	tr := obs.New("flow-test")
	res, err := RunVHDL(circuits.RippleAdder(4).VHDL, Options{
		Seed:    1,
		ClockHz: 100e6,
		Obs:     tr,
	})
	if err != nil {
		t.Fatal(err)
	}

	sum := tr.Summary()
	if sum == nil {
		t.Fatal("nil summary from a live trace")
	}

	// A clean run is one attempt span at the top level, with one stage span
	// per stage nested under it, in the same order as Result.Stages.
	var attempts, stages []string
	for _, sp := range sum.Spans {
		switch sp.Depth {
		case 0:
			attempts = append(attempts, sp.Name)
		case 1:
			stages = append(stages, sp.Name)
			if sp.WallNS <= 0 {
				t.Errorf("stage span %q has non-positive wall time %d", sp.Name, sp.WallNS)
			}
		}
	}
	if len(attempts) != 1 || attempts[0] != "attempt 1" {
		t.Fatalf("top-level spans = %v, want exactly [attempt 1]", attempts)
	}
	if len(stages) != len(res.Stages) {
		t.Fatalf("got %d stage spans %v, want %d (one per stage)",
			len(stages), stages, len(res.Stages))
	}
	seen := map[string]int{}
	for i, st := range res.Stages {
		if stages[i] != st.Tool {
			t.Errorf("span %d is %q, want stage %q", i, stages[i], st.Tool)
		}
		seen[st.Tool]++
		if st.Duration <= 0 {
			t.Errorf("stage %q Duration = %v, want > 0", st.Tool, st.Duration)
		}
	}
	for tool, n := range seen {
		if n != 1 {
			t.Errorf("stage %q appears %d times, want exactly once", tool, n)
		}
	}

	// Every stage's wall time must land in the flow.stage_seconds histogram
	// vec, keyed by the stage tool.
	hv := sum.HistogramVecs["flow.stage_seconds"]
	for _, st := range res.Stages {
		h, ok := hv.Values[st.Tool]
		if !ok || h.Count != 1 {
			t.Errorf("flow.stage_seconds[%q]: got %+v, want exactly one observation", st.Tool, h)
		}
	}

	// The span count accounting must agree with the stage counter.
	if got := sum.Counters["flow.stages"]; got != int64(len(res.Stages)) {
		t.Errorf("flow.stages = %d, want %d", got, len(res.Stages))
	}

	// At least six distinct stage-specific counter families must report.
	prefixes := []string{"synth.", "pack.", "place.", "route.", "sim.", "flow.", "verify."}
	present := map[string]bool{}
	for name := range sum.Counters {
		for _, p := range prefixes {
			if strings.HasPrefix(name, p) {
				present[p] = true
			}
		}
	}
	if len(present) < 6 {
		t.Errorf("only %d counter families present (%v), want >= 6; counters: %v",
			len(present), present, sum.Counters)
	}

	// Tier-1 QoR metrics must be populated and coherent with the result.
	if sum.Counters["flow.luts"] != int64(res.Metrics.LUTs) {
		t.Errorf("flow.luts = %d, result says %d", sum.Counters["flow.luts"], res.Metrics.LUTs)
	}
	if sum.Counters["flow.clbs"] != int64(res.Metrics.CLBs) {
		t.Errorf("flow.clbs = %d, result says %d", sum.Counters["flow.clbs"], res.Metrics.CLBs)
	}
	if sum.Counters["flow.bitstream_bits"] <= 0 {
		t.Error("flow.bitstream_bits not recorded")
	}

	// The machine-readable form must survive a round-trip.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ParseSummary(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Spans) != len(sum.Spans) || back.Counters["flow.stages"] != sum.Counters["flow.stages"] {
		t.Error("metrics JSON round-trip lost spans or counters")
	}
}

// TestFlowWithoutTraceStillTimesStages checks the no-observability path:
// a flow run with no trace installed must still stamp per-stage durations.
func TestFlowWithoutTraceStillTimesStages(t *testing.T) {
	obs.SetGlobal(nil)
	res, err := RunVHDL(circuits.ParityTree(4).VHDL, Options{Seed: 1, SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Stages {
		if st.Duration <= 0 {
			t.Errorf("stage %q Duration = %v without a trace, want > 0", st.Tool, st.Duration)
		}
	}
}
