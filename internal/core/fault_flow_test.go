package core

import (
	"context"
	"errors"
	"os"
	"testing"
	"time"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/circuits"
	"fpgaflow/internal/fault"
	"fpgaflow/internal/obs"
	"fpgaflow/internal/place"
	"fpgaflow/internal/route"
)

// The hardened-runner contract under fault injection: the flow either
// recovers (routing around defects, re-seeding, escalating channel width)
// or fails fast with a typed *StageError — it never panics and never
// hangs. Every test runs under a deadline to enforce the last point.

func faultTestCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	t.Cleanup(cancel)
	return ctx
}

// TestFlowRoutesAroundDeadSwitches is the headline acceptance: with a
// seeded defect map disabling ~2% of switch points (plus some dead wires),
// a committed example netlist still completes the full flow, and the run
// reports its injection and recovery counters.
func TestFlowRoutesAroundDeadSwitches(t *testing.T) {
	blif, err := os.ReadFile("../../examples/netlists/count2.blif")
	if err != nil {
		t.Fatal(err)
	}
	dm, err := fault.Generate(arch.Paper(), 42, fault.Rates{DeadSwitch: 0.02, DeadWire: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if dm.Count() == 0 {
		t.Fatal("defect map empty; raise the rates")
	}
	tr := obs.New("fault-acceptance")
	// Fixed paper fabric so the whole defect map is in range (an auto-sized
	// grid would shrink under the map's 8x8 extent).
	res, err := RunBLIFContext(faultTestCtx(t), string(blif), Options{
		Seed:    1,
		Arch:    arch.Paper(),
		Defects: dm,
		Retry:   DefaultRetryPolicy(),
		Obs:     tr,
	})
	if err != nil {
		t.Fatalf("flow did not survive %s: %v\n%s", dm.Summary(), err, res.Summary())
	}
	if !res.Verified {
		t.Fatal("defective-fabric run produced an unverified bitstream")
	}
	c := tr.Counters()
	if c["fault.injected"] != int64(dm.Count()) {
		t.Errorf("fault.injected = %d, want %d", c["fault.injected"], dm.Count())
	}
	if c["fault.rr_dead_nodes"] == 0 && c["fault.rr_edges_removed"] == 0 {
		t.Error("defect map applied nothing to the RR graph")
	}
	if c["flow.attempts"] < 1 {
		t.Errorf("flow.attempts = %d", c["flow.attempts"])
	}
	// The recovery counters must exist even when the first attempt wins.
	for _, name := range []string{"flow.retries", "flow.degraded"} {
		if _, ok := c[name]; !ok {
			t.Errorf("counter %s not materialized", name)
		}
	}
}

// TestFlowAvoidsDefectiveSites checks every defect class end to end on a
// generated design: bad sites never receive blocks, dead resources never
// appear in route trees (the stage-boundary rules fail the run otherwise),
// and stuck bits either match the configuration or fail typed.
func TestFlowAvoidsDefectiveSites(t *testing.T) {
	cases := []struct {
		name  string
		rates fault.Rates
	}{
		{"bad-sites", fault.Rates{BadCLB: 0.15, BadIO: 0.15}},
		{"dead-wires", fault.Rates{DeadWire: 0.03}},
		{"dead-switches", fault.Rates{DeadSwitch: 0.03}},
		{"mixed", fault.Rates{DeadWire: 0.01, DeadSwitch: 0.01, BadCLB: 0.1, BadIO: 0.1}},
	}
	src := circuits.RippleAdder(4).VHDL
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dm, err := fault.Generate(arch.Paper(), 7, tc.rates)
			if err != nil {
				t.Fatal(err)
			}
			res, err := RunVHDLContext(faultTestCtx(t), src, Options{
				Seed:    2,
				Arch:    arch.Paper(),
				Defects: dm,
				Retry:   DefaultRetryPolicy(),
			})
			if err != nil {
				var se *StageError
				if !errors.As(err, &se) {
					t.Fatalf("untyped flow error: %v", err)
				}
				t.Fatalf("flow failed under %s: %v", dm.Summary(), err)
			}
			bad := dm.BadSiteSet()
			for _, b := range res.Problem.Blocks {
				l := res.Placed.Loc[b.ID]
				if bad[[2]int{l.X, l.Y}] {
					t.Errorf("block %q placed on defective site (%d,%d)", b.Name, l.X, l.Y)
				}
			}
			for _, nr := range res.Routed.Routes {
				if nr == nil {
					continue
				}
				for id := range nr.Nodes() {
					if res.Routed.Graph.Dead(id) {
						t.Errorf("route uses dead RR node %d", id)
					}
				}
			}
		})
	}
}

// TestFlowStuckBitsRecoverOrFailTyped: stuck LUT bits conflict with the
// configuration only for particular placements, so the hardened runner
// either lands a clean placement (possibly after re-seeding) or reports a
// typed stage failure. Either way: no panic, no hang, no silent success
// with a violated fabric.
func TestFlowStuckBitsRecoverOrFailTyped(t *testing.T) {
	dm, err := fault.Generate(arch.Paper(), 5, fault.Rates{StuckBit: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	if len(dm.StuckBits) == 0 {
		t.Fatal("no stuck bits generated")
	}
	res, err := RunVHDLContext(faultTestCtx(t), circuits.Counter(4).VHDL, Options{
		Seed:    3,
		Arch:    arch.Paper(),
		Defects: dm,
		Retry:   DefaultRetryPolicy(),
	})
	if err != nil {
		var se *StageError
		if !errors.As(err, &se) {
			t.Fatalf("untyped flow error: %v", err)
		}
		if se.Stage != "DAGGER" {
			t.Errorf("stuck-bit conflict surfaced at stage %q, want DAGGER", se.Stage)
		}
		return
	}
	// Success must mean the configuration actually agrees with the fabric.
	for _, b := range res.Problem.Blocks {
		if b.Kind != place.BlockCLB || b.Cluster == nil {
			continue
		}
		l := res.Placed.Loc[b.ID]
		cfg, cerr := res.Bits.CLBAt(l.X, l.Y)
		if cerr != nil {
			t.Fatal(cerr)
		}
		for _, sb := range dm.StuckBitsAt(l.X, l.Y) {
			if sb.BLE < len(b.Cluster.BLEs) && sb.Bit < len(cfg.BLEs[sb.BLE].LUT) &&
				cfg.BLEs[sb.BLE].LUT[sb.Bit] != sb.Value {
				t.Errorf("accepted configuration fights stuck bit %+v", sb)
			}
		}
	}
}

// TestFlowEscalatesChannelWidth: at a hopeless fixed channel width the
// first attempt fails with route.ErrUnroutable and the retry degrades to
// the min-channel-width search, which widens until the design routes.
func TestFlowEscalatesChannelWidth(t *testing.T) {
	a := arch.Paper()
	a.Routing.ChannelWidth = 1
	tr := obs.New("escalation")
	res, err := RunVHDLContext(faultTestCtx(t), circuits.ParityTree(8).VHDL, Options{
		Seed:  4,
		Arch:  a,
		Retry: DefaultRetryPolicy(),
		Obs:   tr,
	})
	if err != nil {
		t.Fatalf("escalation did not rescue W=1: %v\n%s", err, res.Summary())
	}
	c := tr.Counters()
	if c["flow.degraded"] != 1 {
		t.Errorf("flow.degraded = %d, want 1 (unroutable -> min-W escalation)", c["flow.degraded"])
	}
	if c["flow.retries"] < 1 {
		t.Errorf("flow.retries = %d, want >= 1", c["flow.retries"])
	}
	if res.Metrics.ChannelWidth <= 1 {
		t.Errorf("escalated run reports W=%d", res.Metrics.ChannelWidth)
	}
}

// TestFlowCorruptedInputsFailTyped feeds the flow artifacts mangled by the
// fault package's corruption injectors. Every outcome must be a typed
// *StageError (or, rarely, a clean run if the corruption hit whitespace) —
// delivered promptly, with no panic escaping the runner.
func TestFlowCorruptedInputsFailTyped(t *testing.T) {
	blif, err := os.ReadFile("../../examples/netlists/count2.blif")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		text string
	}{
		{"garbled", fault.GarbleText(string(blif), 40, 99)},
		{"truncated", string(fault.Truncate(blif, 0.4))},
		{"binary-as-text", string(fault.FlipBits(blif, 200, 3))},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunBLIFContext(faultTestCtx(t), tc.text, Options{
				Seed:  1,
				Retry: DefaultRetryPolicy(),
			})
			if err == nil {
				if !res.Verified {
					t.Error("corrupted input ran to completion unverified")
				}
				return
			}
			var se *StageError
			if !errors.As(err, &se) {
				t.Fatalf("corruption produced an untyped error: %v", err)
			}
			if se.Stage == "" {
				t.Error("StageError with empty stage")
			}
			if se.Attempt < 1 {
				t.Errorf("StageError.Attempt = %d", se.Attempt)
			}
			if se.Partial == nil {
				t.Error("StageError.Partial not stamped")
			}
		})
	}
}

// TestFlowCancelledContextFailsFast: a pre-cancelled context aborts before
// any stage work and surfaces as a typed error wrapping context.Canceled.
func TestFlowCancelledContextFailsFast(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunVHDLContext(ctx, circuits.RippleAdder(4).VHDL, Options{Seed: 1})
	if err == nil {
		t.Fatal("cancelled context ran the flow")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("untyped cancellation error: %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cause is %v, want context.Canceled", se.Err)
	}
}

// TestStageTimeoutCooperative: a stage that honors its context is cut off
// at the configured deadline and reports context.DeadlineExceeded.
func TestStageTimeoutCooperative(t *testing.T) {
	res := &Result{tr: obs.New("timeout")}
	opts := &Options{StageTimeout: 20 * time.Millisecond}
	start := time.Now()
	err := res.stage(context.Background(), opts, "VPR place", func(sctx context.Context) error {
		<-sctx.Done()
		return sctx.Err()
	})
	if time.Since(start) > 5*time.Second {
		t.Fatal("stage timeout did not bound the stage")
	}
	var se *StageError
	if !errors.As(err, &se) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want StageError wrapping DeadlineExceeded", err)
	}
	if se.Retryable() {
		t.Error("a deadline failure must not be retryable")
	}
}

// TestStageTimeoutAbandonsStuckStage: a stage that ignores cancellation
// entirely is abandoned after the grace period — the flow still returns.
func TestStageTimeoutAbandonsStuckStage(t *testing.T) {
	tr := obs.New("stuck")
	res := &Result{tr: tr}
	opts := &Options{StageTimeout: 10 * time.Millisecond}
	release := make(chan struct{})
	defer close(release)
	err := res.stage(context.Background(), opts, "SIS", func(context.Context) error {
		<-release // simulates a wedged, non-cooperative stage
		return nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stuck stage returned %v, want DeadlineExceeded", err)
	}
	if tr.Counters()["flow.stage_abandoned"] != 1 {
		t.Error("abandonment not counted")
	}
}

// TestStagePanicBecomesStructuredError: a panicking stage neither crashes
// the process nor loses the panic — it comes back as a *PanicError with a
// stack, wrapped in the stage's *StageError, and is never retried.
func TestStagePanicBecomesStructuredError(t *testing.T) {
	res := &Result{tr: obs.New("panic")}
	err := res.stage(context.Background(), &Options{}, "DAGGER", func(context.Context) error {
		panic("bitstream generator bug")
	})
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("panic produced untyped error: %v", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("cause is %T, want *PanicError", se.Err)
	}
	if pe.Value != "bitstream generator bug" || len(pe.Stack) == 0 {
		t.Errorf("panic details lost: %+v", pe)
	}
	if se.Retryable() {
		t.Error("a panic must not be retryable")
	}
}

// TestRunRetryReseedsAndStops exercises the retry loop in isolation:
// retryable failures are re-attempted with a shifted seed up to the
// bound, then the last typed error is returned.
func TestRunRetryReseedsAndStops(t *testing.T) {
	tr := obs.New("retry")
	var seeds []int64
	_, err := runRetry(context.Background(), Options{
		Seed: 100,
		Obs:  tr,
		Retry: RetryPolicy{
			MaxAttempts:     3,
			ReseedPlacement: true,
			Backoff:         time.Microsecond,
		},
	}, func(_ context.Context, o Options) (*Result, error) {
		seeds = append(seeds, o.Seed)
		return &Result{}, &StageError{Stage: "VPR route", Err: errors.New("transient"), retryable: true}
	})
	if err == nil {
		t.Fatal("exhausted retries reported success")
	}
	var se *StageError
	if !errors.As(err, &se) {
		t.Fatalf("untyped error after retries: %v", err)
	}
	if se.Attempt != 3 {
		t.Errorf("final attempt %d, want 3", se.Attempt)
	}
	want := []int64{100, 100 + reseedStep, 100 + 2*reseedStep}
	if len(seeds) != len(want) {
		t.Fatalf("attempted seeds %v, want %v", seeds, want)
	}
	for i := range want {
		if seeds[i] != want[i] {
			t.Fatalf("attempted seeds %v, want %v", seeds, want)
		}
	}
	if c := tr.Counters(); c["flow.attempts"] != 3 || c["flow.retries"] != 2 {
		t.Errorf("attempts=%d retries=%d, want 3/2", c["flow.attempts"], c["flow.retries"])
	}
}

// TestRunRetryDoesNotRetryDeterministicFailures: capacity errors and
// upstream (seed-independent) stages fail on the first attempt.
func TestRunRetryDoesNotRetryDeterministicFailures(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  *StageError
	}{
		{"no-space", &StageError{Stage: "VPR place", Err: place.ErrNoSpace}},
		{"upstream", &StageError{Stage: "SIS", Err: errors.New("bad netlist")}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			calls := 0
			_, err := runRetry(context.Background(), Options{Retry: DefaultRetryPolicy()},
				func(context.Context, Options) (*Result, error) {
					calls++
					tc.err.retryable = retryableCause(tc.err.Stage, tc.err.Err)
					return nil, tc.err
				})
			if err == nil || calls != 1 {
				t.Errorf("deterministic failure attempted %d times (err=%v)", calls, err)
			}
		})
	}
}

// TestRunRetryEscalatesOnce: an unroutable failure flips the options to
// the min-channel-width search exactly once; a second unroutable result
// (now inherent to the design) ends the run.
func TestRunRetryEscalatesOnce(t *testing.T) {
	tr := obs.New("escalate")
	var minW []bool
	_, err := runRetry(context.Background(), Options{
		Obs:   tr,
		Retry: RetryPolicy{MaxAttempts: 5, EscalateChannelWidth: true},
	}, func(_ context.Context, o Options) (*Result, error) {
		minW = append(minW, o.MinChannelWidth)
		return nil, &StageError{Stage: "VPR route",
			Err: route.ErrUnroutable, retryable: retryableCause("VPR route", route.ErrUnroutable)}
	})
	if err == nil {
		t.Fatal("still-unroutable run reported success")
	}
	if len(minW) != 2 || minW[0] || !minW[1] {
		t.Errorf("attempt MinChannelWidth sequence %v, want [false true]", minW)
	}
	if c := tr.Counters(); c["flow.degraded"] != 1 {
		t.Errorf("flow.degraded = %d, want 1", c["flow.degraded"])
	}
}
