package core

import "fmt"

// Profile is a named QoR objective that configures the whole CAD stack at
// once — the fpgaflow -profile knob. Profiles only ever turn optimizations
// on; explicitly-set Options fields keep their values.
type Profile string

const (
	// ProfileBalanced is the default wirelength-driven flow.
	ProfileBalanced Profile = ""
	// ProfileMinDelay optimizes the critical path: timing-driven placement
	// (criticality-weighted bounding boxes), delay-driven routing base
	// costs, and the criticality-aware PathFinder blend that recomputes
	// per-net slack after every rip-up-and-reroute iteration.
	ProfileMinDelay Profile = "min-delay"
	// ProfileMinEnergy optimizes energy per cycle: power-aware packing
	// (registers concentrated so gated clock trees stay dark) and
	// capacitance-weighted routing base costs.
	ProfileMinEnergy Profile = "min-energy"
	// ProfileMinArea optimizes fabric area: binary-search the minimum
	// routable channel width instead of routing at the architecture's
	// fixed width.
	ProfileMinArea Profile = "min-area"
)

// ParseProfile validates a -profile flag value ("balanced" and "" both
// select the default).
func ParseProfile(s string) (Profile, error) {
	switch s {
	case "", "balanced":
		return ProfileBalanced, nil
	case string(ProfileMinDelay):
		return ProfileMinDelay, nil
	case string(ProfileMinEnergy):
		return ProfileMinEnergy, nil
	case string(ProfileMinArea):
		return ProfileMinArea, nil
	}
	return "", fmt.Errorf("core: unknown profile %q (want balanced, min-delay, min-energy or min-area)", s)
}

// apply folds the profile into the option flags it implies.
func (p Profile) apply(o *Options) {
	switch p {
	case ProfileMinDelay:
		o.TimingDrivenPlace = true
		o.TimingDrivenRoute = true
		o.CriticalityDrivenRoute = true
	case ProfileMinEnergy:
		o.PowerAwarePack = true
		o.EnergyDrivenRoute = true
	case ProfileMinArea:
		o.MinChannelWidth = true
	}
}
