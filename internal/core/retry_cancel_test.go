package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestRetryBackoffCancelReturnsPromptly pins the RetryPolicy x cancellation
// contract: a caller cancelling while the runner sits in its between-attempt
// backoff must get control back immediately (not after the backoff), the
// error must expose context.Canceled to errors.Is, and no further attempt
// may run.
func TestRetryBackoffCancelReturnsPromptly(t *testing.T) {
	attempts := 0
	fail := &StageError{Stage: "VPR route", Err: errors.New("synthetic retryable failure"), retryable: true}
	attempt := func(context.Context, Options) (*Result, error) {
		attempts++
		return &Result{}, fail
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()

	opts := Options{Retry: RetryPolicy{
		MaxAttempts:     5,
		ReseedPlacement: true,
		Backoff:         30 * time.Second, // far beyond the test deadline: a prompt return proves the select
	}}
	start := time.Now()
	_, err := runRetry(ctx, opts, attempt)
	elapsed := time.Since(start)

	if attempts != 1 {
		t.Fatalf("ran %d attempts; cancellation during backoff must not start another", attempts)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("runRetry took %v to notice cancellation during a 30s backoff", elapsed)
	}
	if err == nil {
		t.Fatal("runRetry returned nil error after a failed, cancelled run")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	// The original stage failure stays diagnosable next to the cancellation.
	var se *StageError
	if !errors.As(err, &se) || se.Stage != "VPR route" {
		t.Fatalf("error lost its StageError identity: %v", err)
	}
}

// TestRetryBackoffRunsWhenNotCancelled is the control: with no
// cancellation, backoff delays but does not prevent the retry.
func TestRetryBackoffRunsWhenNotCancelled(t *testing.T) {
	attempts := 0
	attempt := func(context.Context, Options) (*Result, error) {
		attempts++
		if attempts == 1 {
			return &Result{}, &StageError{Stage: "VPR route", Err: errors.New("transient"), retryable: true}
		}
		return &Result{}, nil
	}
	opts := Options{Retry: RetryPolicy{MaxAttempts: 3, ReseedPlacement: true, Backoff: time.Millisecond}}
	if _, err := runRetry(context.Background(), opts, attempt); err != nil {
		t.Fatalf("retry after backoff failed: %v", err)
	}
	if attempts != 2 {
		t.Fatalf("attempts = %d, want 2", attempts)
	}
}
