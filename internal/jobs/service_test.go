package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"fpgaflow/internal/core"
)

// instantRunner completes immediately with a deterministic fake bitstream.
func instantRunner(ctx context.Context, spec Spec) (*core.Result, error) {
	return &core.Result{Encoded: []byte("bitstream:" + spec.Fingerprint())}, nil
}

// gateRunner blocks each job until released; started receives the job's
// tenant when the runner begins. Cancellation unblocks it.
func gateRunner(started chan string, release chan struct{}) Runner {
	return func(ctx context.Context, spec Spec) (*core.Result, error) {
		if started != nil {
			started <- spec.Tenant
		}
		select {
		case <-release:
			return &core.Result{Encoded: []byte("ok")}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

func openService(t *testing.T, mod func(*Config)) *Service {
	t.Helper()
	cfg := Config{Dir: t.TempDir(), Workers: 2, Runner: instantRunner}
	if mod != nil {
		mod(&cfg)
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s
}

func waitTerminal(t *testing.T, s *Service, id string) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := s.Wait(ctx, id)
	if err != nil {
		t.Fatalf("Wait(%s): %v", id, err)
	}
	return st
}

func TestSubmitRunWaitArtifacts(t *testing.T) {
	s := openService(t, nil)
	st, err := s.Submit(context.Background(), specFixture("alice"))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.ID == "" || st.State != StateQueued || st.Tenant != "alice" {
		t.Fatalf("submit status = %+v", st)
	}

	final := waitTerminal(t, s, st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("final state = %s (%s)", final.State, final.Error)
	}
	if final.Artifact == "" {
		t.Fatal("succeeded job has no artifact digest")
	}
	if final.Attempt != 1 {
		t.Fatalf("attempt = %d, want 1", final.Attempt)
	}

	names, err := s.ArtifactNames(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"design.bit", "result.json", "trace.json"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Fatalf("artifacts = %v, want %v", names, want)
	}
	p, err := s.ArtifactPath(st.ID, "design.bit")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "bitstream:") {
		t.Fatalf("artifact content %q", data)
	}
}

func TestSubmitRejectsInvalidSpec(t *testing.T) {
	s := openService(t, nil)
	for _, spec := range []Spec{
		{},
		{Tenant: "Bad Tenant", Source: "x"},
		{Tenant: "ok", Source: ""},
		{Tenant: "ok", Source: "x", Options: FlowOptions{Retries: 99}},
	} {
		if _, err := s.Submit(context.Background(), spec); !errors.Is(err, ErrBadSpec) {
			t.Fatalf("Submit(%+v) err = %v, want ErrBadSpec", spec, err)
		}
	}
}

// TestSubmitDedupCoalesces: resubmitting an identical (tenant, source,
// options) spec while the original is in flight returns the original job;
// after the original completes, a resubmission is a fresh job.
func TestSubmitDedupCoalesces(t *testing.T) {
	release := make(chan struct{})
	s := openService(t, func(c *Config) {
		c.Workers = 1
		c.Runner = gateRunner(nil, release)
	})
	spec := specFixture("alice")
	first, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	again, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != first.ID {
		t.Fatalf("duplicate submit got job %s, want coalesced %s", again.ID, first.ID)
	}
	// A different tenant with the same source is NOT coalesced.
	other := spec
	other.Tenant = "bob"
	st, err := s.Submit(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == first.ID {
		t.Fatal("cross-tenant submit coalesced")
	}

	close(release)
	waitTerminal(t, s, first.ID)
	waitTerminal(t, s, st.ID)

	fresh, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID == first.ID {
		t.Fatal("submit after completion reused the finished job")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	s := openService(t, func(c *Config) {
		c.Workers = 1
		c.Runner = gateRunner(started, release)
	})
	blocker, err := s.Submit(context.Background(), specFixture("alice"))
	if err != nil {
		t.Fatal(err)
	}
	<-started // the single worker is now occupied

	spec := specFixture("bob")
	queued, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := s.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("canceled queued job state = %s", st.State)
	}
	// Canceling a terminal job is an idempotent no-op.
	st2, err := s.Cancel(queued.ID)
	if err != nil || st2.State != StateCanceled {
		t.Fatalf("second cancel: %+v, %v", st2, err)
	}

	close(release)
	if got := waitTerminal(t, s, blocker.ID); got.State != StateSucceeded {
		t.Fatalf("blocker finished %s", got.State)
	}
}

func TestCancelRunningJob(t *testing.T) {
	started := make(chan string, 1)
	s := openService(t, func(c *Config) {
		c.Workers = 1
		c.Runner = gateRunner(started, make(chan struct{})) // never released: only ctx ends it
	})
	st, err := s.Submit(context.Background(), specFixture("alice"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := s.Cancel(st.ID); err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, st.ID)
	if final.State != StateCanceled {
		t.Fatalf("state after cancel-while-running = %s (%s)", final.State, final.Error)
	}
}

func TestCancelUnknownJob(t *testing.T) {
	s := openService(t, nil)
	if _, err := s.Cancel("j999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if _, err := s.Get("j999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

// TestQuotaRejectionIsolatesTenants: a tenant burning through its bucket is
// rejected with a rate QuotaError while another tenant submits freely.
func TestQuotaRejectionIsolatesTenants(t *testing.T) {
	s := openService(t, func(c *Config) {
		c.TenantRate = 0.001 // effectively no refill within the test
		c.TenantBurst = 2
	})
	mkSpec := func(tenant string, seed int64) Spec {
		sp := specFixture(tenant)
		sp.Options.Seed = seed // distinct fingerprints: dedup must not mask quota
		return sp
	}
	for i := int64(0); i < 2; i++ {
		if _, err := s.Submit(context.Background(), mkSpec("noisy", i)); err != nil {
			t.Fatalf("burst submit %d: %v", i, err)
		}
	}
	_, err := s.Submit(context.Background(), mkSpec("noisy", 99))
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Reason != "rate" {
		t.Fatalf("over-quota submit err = %v, want rate QuotaError", err)
	}
	if qe.RetryAfter <= 0 {
		t.Fatalf("RetryAfter = %v, want positive", qe.RetryAfter)
	}
	if _, err := s.Submit(context.Background(), mkSpec("quiet", 1)); err != nil {
		t.Fatalf("quiet tenant rejected alongside noisy one: %v", err)
	}
}

// TestBacklogBackpressure: with the queue full, any tenant's submission is
// rejected with a backlog QuotaError carrying a Retry-After hint.
func TestBacklogBackpressure(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	s := openService(t, func(c *Config) {
		c.Workers = 1
		c.QueueLimit = 1
		c.Runner = gateRunner(started, release)
	})
	mkSpec := func(seed int64) Spec {
		sp := specFixture("alice")
		sp.Options.Seed = seed
		return sp
	}
	if _, err := s.Submit(context.Background(), mkSpec(1)); err != nil {
		t.Fatal(err)
	}
	<-started // worker busy; the queue is empty again
	if _, err := s.Submit(context.Background(), mkSpec(2)); err != nil {
		t.Fatal(err) // fills the queue to its limit of 1
	}
	_, err := s.Submit(context.Background(), mkSpec(3))
	var qe *QuotaError
	if !errors.As(err, &qe) || qe.Reason != "backlog" {
		t.Fatalf("submit into full queue err = %v, want backlog QuotaError", err)
	}
	if qe.RetryAfter <= 0 {
		t.Fatalf("backlog RetryAfter = %v", qe.RetryAfter)
	}
	close(release)
}

func TestCloseDrainsAndRejectsNewWork(t *testing.T) {
	started := make(chan string, 1)
	release := make(chan struct{})
	s := openService(t, func(c *Config) { c.Runner = gateRunner(started, release) })
	st, err := s.Submit(context.Background(), specFixture("alice"))
	if err != nil {
		t.Fatal(err)
	}
	<-started // the job is running when the drain begins

	closed := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	go func() { closed <- s.Close(ctx) }()
	time.Sleep(20 * time.Millisecond) // let the drain settle in
	close(release)                    // the running job now finishes
	if err := <-closed; err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The in-flight job completed during the drain.
	final, err := s.Get(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateSucceeded {
		t.Fatalf("job state after drain = %s", final.State)
	}
	if _, err := s.Submit(context.Background(), specFixture("bob")); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after Close err = %v, want ErrDraining", err)
	}
	// Close is idempotent.
	if err := s.Close(ctx); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestPanickingRunnerRequeuesThenGivesUp: a runner that panics tears down
// the attempt, the job is re-queued like a crash, and after MaxAttempts the
// job fails terminally instead of looping forever.
func TestPanickingRunnerRequeuesThenGivesUp(t *testing.T) {
	s := openService(t, func(c *Config) {
		c.Workers = 1
		c.MaxAttempts = 2
		c.Runner = func(ctx context.Context, spec Spec) (*core.Result, error) {
			panic("chaos: runner exploded")
		}
	})
	st, err := s.Submit(context.Background(), specFixture("alice"))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, st.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if !strings.Contains(final.Error, "gave up") {
		t.Fatalf("error = %q, want a gave-up message", final.Error)
	}
	if final.Attempt != 2 {
		t.Fatalf("attempt = %d, want MaxAttempts=2", final.Attempt)
	}
}

func TestFailingRunnerFailsJob(t *testing.T) {
	s := openService(t, func(c *Config) {
		c.Runner = func(ctx context.Context, spec Spec) (*core.Result, error) {
			return nil, errors.New("synthesis rejected the design")
		}
	})
	st, err := s.Submit(context.Background(), specFixture("alice"))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, st.ID)
	if final.State != StateFailed || !strings.Contains(final.Error, "synthesis rejected") {
		t.Fatalf("final = %+v", final)
	}
}

func TestWaitHonorsContext(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	s := openService(t, func(c *Config) { c.Runner = gateRunner(nil, release) })
	st, err := s.Submit(context.Background(), specFixture("alice"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := s.Wait(ctx, st.ID); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait err = %v, want DeadlineExceeded", err)
	}
}

func TestArtifactPathRefusesEscapes(t *testing.T) {
	s := openService(t, nil)
	st, err := s.Submit(context.Background(), specFixture("alice"))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, st.ID)
	for _, name := range []string{"../wal.jsonl", "..", ".", ".hidden", "a/b", ""} {
		if _, err := s.ArtifactPath(st.ID, name); !errors.Is(err, ErrNotFound) {
			t.Fatalf("ArtifactPath(%q) err = %v, want ErrNotFound", name, err)
		}
	}
}

func TestListFiltersByTenant(t *testing.T) {
	s := openService(t, nil)
	a, _ := s.Submit(context.Background(), specFixture("alice"))
	b, _ := s.Submit(context.Background(), specFixture("bob"))
	waitTerminal(t, s, a.ID)
	waitTerminal(t, s, b.ID)
	if got := s.List(""); len(got) != 2 {
		t.Fatalf("List all = %d jobs", len(got))
	}
	got := s.List("bob")
	if len(got) != 1 || got[0].ID != b.ID {
		t.Fatalf("List(bob) = %+v", got)
	}
}

func TestSnapshotCountsStates(t *testing.T) {
	s := openService(t, nil)
	st, _ := s.Submit(context.Background(), specFixture("alice"))
	waitTerminal(t, s, st.ID)
	snap := s.Snapshot()
	if snap.Succeeded != 1 || snap.Queued != 0 || snap.Running != 0 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestRealFlowEndToEnd drives one job through the actual hardened core
// runner (no injected Runner): the full place/route/bitstream flow on a
// tiny BLIF design.
func TestRealFlowEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("real flow in -short mode")
	}
	s := openService(t, func(c *Config) {
		c.Workers = 1
		c.Runner = nil // the production coreRunner
	})
	spec := specFixture("alice")
	spec.Options.SkipVerify = false
	st, err := s.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("real flow finished %s: %s", final.State, final.Error)
	}
	if final.Metrics == nil || final.Metrics.BitstreamB == 0 {
		t.Fatalf("metrics = %+v", final.Metrics)
	}
	p, err := s.ArtifactPath(st.ID, "design.bit")
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(p)
	if err != nil || fi.Size() == 0 {
		t.Fatalf("bitstream artifact: %v size=%d", err, fi.Size())
	}
	if _, err := os.Stat(filepath.Join(filepath.Dir(p), "result.json")); err != nil {
		t.Fatalf("result.json: %v", err)
	}
}
