package jobs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// The write-ahead log is the service's only durable state: one JSON object
// per line, append-only, fsynced before the write is acknowledged to the
// caller. A killed process replays the log on startup and rebuilds the job
// table; a record that made it to the log is never lost, and a record that
// did not is as if the transition never happened — the job simply re-runs.
//
// Tail corruption (a crash mid-write, a torn sector, garbage appended by a
// failing disk) is expected, not exceptional: replay accepts every valid
// record up to the first damaged line, reports the damage as a typed
// *TailError, and recovery truncates the file back to the last valid
// record before appending again.

// RecordKind discriminates WAL records.
type RecordKind string

const (
	// RecSubmit acknowledges a job: the spec is durable from here on.
	RecSubmit RecordKind = "submit"
	// RecStart marks a worker picking the job up (one per attempt).
	RecStart RecordKind = "start"
	// RecDone commits the job's terminal state (exactly one effective per
	// job; duplicates from replayed tails are ignored idempotently).
	RecDone RecordKind = "done"
	// RecCancel records a cancellation request (the terminal state still
	// arrives as a RecDone with StateCanceled).
	RecCancel RecordKind = "cancel"
)

// Record is one WAL entry. Exactly the fields for its Kind are set.
type Record struct {
	// Seq is the 1-based log sequence number, strictly increasing within
	// one file.
	Seq uint64 `json:"seq"`
	// TNS is the wall-clock stamp in nanoseconds since the Unix epoch
	// (observability only; replay never depends on it).
	TNS int64 `json:"t_ns,omitempty"`
	// Kind selects the record type.
	Kind RecordKind `json:"kind"`
	// Job is the subject job ID.
	Job string `json:"job"`

	// Spec is the submitted job (RecSubmit only).
	Spec *Spec `json:"spec,omitempty"`
	// Fingerprint is the spec's content identity (RecSubmit only).
	Fingerprint string `json:"fp,omitempty"`
	// Attempt is the 1-based execution attempt (RecStart only).
	Attempt int `json:"attempt,omitempty"`
	// State is the terminal state (RecDone only).
	State State `json:"state,omitempty"`
	// Error is the failure detail (RecDone with StateFailed).
	Error string `json:"error,omitempty"`
	// Artifact is the hex SHA-256 of the encoded bitstream (RecDone with
	// StateSucceeded and a bitstream present).
	Artifact string `json:"artifact,omitempty"`
}

// ErrCorruptWAL is the sentinel wrapped by every WAL parse failure.
var ErrCorruptWAL = errors.New("jobs: corrupt WAL record")

// RecordError reports one undecodable or invalid WAL record. It wraps
// ErrCorruptWAL.
type RecordError struct {
	// Line is the 1-based line number in the log file (0 when parsing a
	// standalone record).
	Line   int
	Reason string
}

func (e *RecordError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("jobs: corrupt WAL record at line %d: %s", e.Line, e.Reason)
	}
	return fmt.Sprintf("jobs: corrupt WAL record: %s", e.Reason)
}

// Unwrap ties every RecordError to the ErrCorruptWAL class.
func (e *RecordError) Unwrap() error { return ErrCorruptWAL }

// TailError reports a damaged WAL tail discovered during replay: every
// record before Line was recovered; the file content from Offset on is
// unusable and recovery truncates it away. It wraps the underlying
// *RecordError (and therefore ErrCorruptWAL).
type TailError struct {
	// Offset is the byte offset of the first damaged line.
	Offset int64
	// Lost is how many non-empty lines were discarded.
	Lost int
	// Cause is the parse failure on the first damaged line.
	Cause error
}

func (e *TailError) Error() string {
	return fmt.Sprintf("jobs: WAL tail damaged at byte %d (%d lines dropped): %v", e.Offset, e.Lost, e.Cause)
}

func (e *TailError) Unwrap() error { return e.Cause }

// ParseRecord decodes and validates one WAL line. Arbitrary input —
// truncated, duplicated, garbage — must come back as a *RecordError, never
// a panic (the FuzzParseRecord target enforces this).
func ParseRecord(data []byte) (Record, error) {
	var r Record
	if err := json.Unmarshal(data, &r); err != nil {
		return Record{}, &RecordError{Reason: err.Error()}
	}
	if err := r.validate(); err != nil {
		return Record{}, err
	}
	return r, nil
}

func (r *Record) validate() error {
	if r.Seq == 0 {
		return &RecordError{Reason: "seq 0 (records are 1-based)"}
	}
	if r.Job == "" {
		return &RecordError{Reason: "empty job ID"}
	}
	switch r.Kind {
	case RecSubmit:
		if r.Spec == nil {
			return &RecordError{Reason: "submit record without spec"}
		}
		if err := r.Spec.Validate(); err != nil {
			return &RecordError{Reason: fmt.Sprintf("submit spec: %v", err)}
		}
	case RecStart:
		if r.Attempt < 1 {
			return &RecordError{Reason: fmt.Sprintf("start record with attempt %d", r.Attempt)}
		}
	case RecDone:
		switch r.State {
		case StateSucceeded, StateFailed, StateCanceled:
		default:
			return &RecordError{Reason: fmt.Sprintf("done record with non-terminal state %q", r.State)}
		}
	case RecCancel:
	default:
		return &RecordError{Reason: fmt.Sprintf("unknown record kind %q", r.Kind)}
	}
	return nil
}

// wal is the append side of the log: exclusive, fsync-on-commit.
type wal struct {
	mu   sync.Mutex
	f    *os.File
	seq  uint64
	path string
}

// replayWAL reads every valid record from the log at path. A missing file
// is an empty log. Damage is split from data: records holds everything
// recoverable, and tail (non-nil only when the file ends in garbage)
// describes what recovery must truncate. Any other error (I/O) is fatal.
func replayWAL(path string) (records []Record, validOff int64, tail *TailError, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil, nil
	}
	if err != nil {
		return nil, 0, nil, fmt.Errorf("jobs: reading WAL: %w", err)
	}
	var off int64
	line := 0
	for len(data) > 0 {
		line++
		var row []byte
		nl := bytes.IndexByte(data, '\n')
		rowLen := 0
		if nl < 0 {
			// A final line without its newline is by definition a torn
			// append: even if it happens to parse, the fsync for it never
			// completed, so it was never acknowledged. Drop it.
			row, rowLen = data, len(data)
			lost := 1
			if len(bytes.TrimSpace(row)) == 0 {
				lost = 0
			}
			return records, off, &TailError{Offset: off, Lost: lost,
				Cause: &RecordError{Line: line, Reason: "torn final record (no trailing newline)"}}, nil
		}
		row, rowLen = data[:nl], nl+1
		if len(bytes.TrimSpace(row)) != 0 {
			rec, perr := ParseRecord(row)
			if perr != nil {
				lost := 1 + countLines(data[rowLen:])
				var re *RecordError
				if errors.As(perr, &re) {
					re.Line = line
				}
				return records, off, &TailError{Offset: off, Lost: lost, Cause: perr}, nil
			}
			records = append(records, rec)
		}
		data = data[rowLen:]
		off += int64(rowLen)
	}
	return records, off, nil, nil
}

func countLines(data []byte) int {
	n := 0
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		if nl < 0 {
			if len(bytes.TrimSpace(data)) != 0 {
				n++
			}
			break
		}
		if len(bytes.TrimSpace(data[:nl])) != 0 {
			n++
		}
		data = data[nl+1:]
	}
	return n
}

// openWAL opens the log for appending, truncating to validOff first (the
// replay-certified prefix) so a damaged tail can never be re-read, and
// fsyncing both the file and its directory so the truncation itself is
// durable. lastSeq seeds the sequence counter.
func openWAL(path string, validOff int64, lastSeq uint64) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("jobs: opening WAL: %w", err)
	}
	if err := f.Truncate(validOff); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("jobs: truncating damaged WAL tail: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("jobs: seeking WAL: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("jobs: syncing WAL: %w", err)
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		_ = dir.Sync() // directory fsync is best-effort (not all filesystems support it)
		_ = dir.Close()
	}
	return &wal{f: f, seq: lastSeq, path: path}, nil
}

// append commits one record: stamp the sequence number, write the JSON
// line, fsync. The record is acknowledged (and its side effects may be
// admitted) only after append returns nil.
func (w *wal) append(rec *Record) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return errors.New("jobs: WAL closed")
	}
	w.seq++
	rec.Seq = w.seq
	data, err := json.Marshal(rec)
	if err != nil {
		w.seq--
		return fmt.Errorf("jobs: encoding WAL record: %w", err)
	}
	data = append(data, '\n')
	if _, err := w.f.Write(data); err != nil {
		return fmt.Errorf("jobs: appending WAL record: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("jobs: fsyncing WAL: %w", err)
	}
	return nil
}

// close flushes and closes the log file.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}
