// Chaos harness for the job service: simulated SIGKILLs mid-stage, WAL
// tail corruption, and a multi-tenant soak with random kill/restart cycles.
// Each scenario re-opens the service on the surviving state directory and
// asserts the recovery invariants the package promises:
//
//  1. no lost acked job — every Submit that returned success reaches a
//     terminal state on some later generation of the service;
//  2. no double-completed job — at most one terminal (done) WAL record
//     per job across all generations;
//  3. no orphaned goroutines — every generation's workers exit.
package jobs

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"fpgaflow/internal/core"
)

var (
	soakTenants = flag.Int("soak-tenants", 3, "tenants in TestFarmSoak")
	soakJobs    = flag.Int("soak-jobs", 4, "jobs per tenant in TestFarmSoak")
	soakKills   = flag.Int("soak-kills", 2, "kill/restart cycles in TestFarmSoak")
)

// soakSpec builds a unique spec per (tenant, index): the seed feeds the
// fingerprint, so no two soak jobs coalesce.
func soakSpec(tenant string, seed int64) Spec {
	sp := specFixture(tenant)
	sp.Options.Seed = seed
	return sp
}

// countDoneRecords replays a WAL file and tallies terminal records per job.
func countDoneRecords(t *testing.T, path string) map[string]int {
	t.Helper()
	records, _, _, err := replayWAL(path)
	if err != nil {
		t.Fatalf("replaying WAL for invariant check: %v", err)
	}
	done := map[string]int{}
	for _, rec := range records {
		if rec.Kind == RecDone {
			done[rec.Job]++
		}
	}
	return done
}

// TestKillMidStageRecovery kills the service while workers are inside the
// flow, then reopens the state directory and verifies every acked job still
// reaches exactly one terminal state.
func TestKillMidStageRecovery(t *testing.T) {
	dir := t.TempDir()
	started := make(chan string, 4)
	cfg := Config{Dir: dir, Workers: 2,
		Runner: gateRunner(started, make(chan struct{}))} // blocks until killed
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var acked []string
	for i := int64(0); i < 3; i++ {
		st, err := s.Submit(context.Background(), soakSpec("alice", i))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		acked = append(acked, st.ID)
	}
	<-started
	<-started // both workers are mid-stage
	s.Kill()

	// The "dead" service refuses new work like a dead process would.
	if _, err := s.Submit(context.Background(), soakSpec("alice", 99)); err == nil {
		t.Fatal("killed service accepted a submission")
	}

	// Restart: recovery replays the WAL and re-queues all three jobs (two
	// were mid-flight with start records, one still queued).
	s2, err := Open(Config{Dir: dir, Workers: 2, Runner: instantRunner})
	if err != nil {
		t.Fatalf("reopen after kill: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Close(ctx)
	}()
	if s2.TailDamage != nil {
		t.Fatalf("clean kill reported tail damage: %v", s2.TailDamage)
	}
	for _, id := range acked {
		st := waitTerminal(t, s2, id)
		if st.State != StateSucceeded {
			t.Fatalf("recovered job %s finished %s (%s)", id, st.State, st.Error)
		}
		if st.Attempt < 1 {
			t.Fatalf("recovered job %s has attempt %d", id, st.Attempt)
		}
	}
	for id, n := range countDoneRecords(t, s2.walPath()) {
		if n != 1 {
			t.Fatalf("job %s has %d terminal records; exactly one allowed", id, n)
		}
	}
}

// TestKillBeforeTerminalCommit crashes the service the instant a job's flow
// finishes, before its terminal record can be written. On restart the job
// must re-run (the flow is deterministic) and land exactly one terminal
// record — the no-lost-ack and no-double-complete invariants together.
func TestKillBeforeTerminalCommit(t *testing.T) {
	dir := t.TempDir()
	var svc *Service
	cfg := Config{Dir: dir, Workers: 1,
		Runner: func(ctx context.Context, spec Spec) (*core.Result, error) {
			// The "process" dies as the stage returns: flip the kill switch
			// directly (Kill() would self-deadlock waiting on this worker)
			// so the terminal append right after us is suppressed.
			svc.killed.Store(true)
			svc.qcond.Broadcast()
			return &core.Result{Encoded: []byte("doomed")}, nil
		}}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc = s
	st, err := s.Submit(context.Background(), soakSpec("alice", 1))
	if err != nil {
		t.Fatal(err)
	}
	s.wg.Wait() // workers observe the kill and exit
	_ = s.wal.close()

	s2, err := Open(Config{Dir: dir, Workers: 1, Runner: instantRunner})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Close(ctx)
	}()
	final := waitTerminal(t, s2, st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("job finished %s after crash-before-commit", final.State)
	}
	if n := countDoneRecords(t, s2.walPath())[st.ID]; n != 1 {
		t.Fatalf("%d terminal records for %s, want exactly 1", n, st.ID)
	}
}

// TestWALTailCorruptionRecovery completes jobs, then corrupts the WAL tail
// (garbage bytes and a torn record, as a crashed disk would leave) and
// reopens. Terminal jobs stay terminal exactly once; a job whose terminal
// record was destroyed is re-run, not lost.
func TestWALTailCorruptionRecovery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Config{Dir: dir, Workers: 1, Runner: instantRunner})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Submit(context.Background(), soakSpec("alice", 1))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, a.ID)
	b, err := s.Submit(context.Background(), soakSpec("alice", 2))
	if err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, s, b.ID)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	s.Close(ctx)
	cancel()

	// Corrupt the tail: garbage over the final bytes plus a torn record.
	// Job b's done record is the last line, so the damage destroys it.
	wal := s.walPath()
	data, err := os.ReadFile(wal)
	if err != nil {
		t.Fatal(err)
	}
	cut := len(data) - 20
	corrupted := append(append([]byte{}, data[:cut]...), []byte("\x00\xfe garbage {\"seq\":")...)
	if err := os.WriteFile(wal, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(Config{Dir: dir, Workers: 1, Runner: instantRunner})
	if err != nil {
		t.Fatalf("reopen over corrupt tail: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Close(ctx)
	}()
	if s2.TailDamage == nil {
		t.Fatal("tail corruption not reported")
	}
	// Job a (fully before the damage) is still terminal; job b re-runs.
	sta, err := s2.Get(a.ID)
	if err != nil || sta.State != StateSucceeded {
		t.Fatalf("job a after corruption: %+v, %v", sta, err)
	}
	stb := waitTerminal(t, s2, b.ID)
	if stb.State != StateSucceeded {
		t.Fatalf("job b after corruption finished %s", stb.State)
	}
	for id, n := range countDoneRecords(t, wal) {
		if n != 1 {
			t.Fatalf("job %s has %d terminal records after repair", id, n)
		}
	}
}

// TestNoOrphanedGoroutines: opening, working and closing a service leaves
// no worker or runner goroutines behind.
func TestNoOrphanedGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for cycle := 0; cycle < 3; cycle++ {
		s, err := Open(Config{Dir: t.TempDir(), Workers: 4, Runner: instantRunner})
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 4; i++ {
			st, err := s.Submit(context.Background(), soakSpec("alice", i))
			if err != nil {
				t.Fatal(err)
			}
			waitTerminal(t, s, st.ID)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		err = s.Close(ctx)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
	}
	// Goroutine counts settle asynchronously; poll with a deadline.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+1 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked: %d -> %d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFarmSoak is the randomized multi-tenant farm soak: N tenants submit M
// jobs each across several service generations, with a simulated SIGKILL
// between generations at a random moment, and a final drained generation.
// Scale it up with -soak-tenants/-soak-jobs/-soak-kills (CI's farm-soak job
// and `make soak` do).
func TestFarmSoak(t *testing.T) {
	dir := t.TempDir()
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("soak seed %d: %d tenants x %d jobs, %d kill cycles",
		seed, *soakTenants, *soakJobs, *soakKills)

	// The soak runner sleeps a random few milliseconds (so kills land at
	// arbitrary points of the flow) and then succeeds.
	runner := func(ctx context.Context, spec Spec) (*core.Result, error) {
		d := time.Duration(1+spec.Options.Seed%7) * time.Millisecond
		select {
		case <-time.After(d):
			return &core.Result{Encoded: []byte("soak:" + spec.Fingerprint())}, nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	acked := map[string]string{} // job ID -> tenant
	next := 0                    // next global job index to submit
	total := *soakTenants * *soakJobs
	generations := *soakKills + 1

	for g := 0; g < generations; g++ {
		s, err := Open(Config{Dir: dir, Workers: 3, MaxAttempts: generations + 2, Runner: runner})
		if err != nil {
			t.Fatalf("generation %d: Open: %v", g, err)
		}
		// Submit this generation's share of the job matrix, round-robin
		// over tenants.
		share := total/generations + 1
		for n := 0; n < share && next < total; n, next = n+1, next+1 {
			tenant := fmt.Sprintf("tenant%d", next%*soakTenants)
			st, err := s.Submit(context.Background(), soakSpec(tenant, int64(next)))
			if err != nil {
				t.Fatalf("generation %d: submit %d: %v", g, next, err)
			}
			acked[st.ID] = tenant
		}
		if g < *soakKills {
			// Let the farm run for a random slice, then pull the plug.
			time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
			s.Kill()
			continue
		}
		// Final generation: every acked job must reach a terminal state.
		for id := range acked {
			st := waitTerminal(t, s, id)
			if st.State != StateSucceeded {
				t.Fatalf("job %s (%s) finished %s: %s", id, acked[id], st.State, st.Error)
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err = s.Close(ctx)
		cancel()
		if err != nil {
			t.Fatalf("final drain: %v", err)
		}
		if len(acked) != total {
			t.Fatalf("acked %d jobs, want %d", len(acked), total)
		}
		done := countDoneRecords(t, s.walPath())
		for id := range acked {
			if done[id] != 1 {
				t.Fatalf("job %s has %d terminal records, want exactly 1", id, done[id])
			}
		}
	}
}
