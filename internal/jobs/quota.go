package jobs

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Admission control: a token bucket per tenant bounds the submit rate, and
// a global queue-depth bound provides backpressure when the farm is behind.
// Both failure modes surface as a *QuotaError carrying a Retry-After hint,
// which the HTTP layer maps to 429; one tenant hammering the service
// drains only its own bucket, so other tenants' submissions are unaffected
// until the shared queue itself is full.

// ErrOverQuota is the sentinel wrapped by every admission rejection.
var ErrOverQuota = errors.New("jobs: over quota")

// QuotaError is a rejected submission: which tenant, why, and when a retry
// can succeed. It wraps ErrOverQuota.
type QuotaError struct {
	Tenant string
	// Reason is "rate" (the tenant's token bucket is empty) or "backlog"
	// (the shared queue is full).
	Reason string
	// RetryAfter is the earliest useful retry delay.
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("jobs: tenant %q over quota (%s): retry after %s", e.Tenant, e.Reason, e.RetryAfter)
}

// Unwrap ties every QuotaError to the ErrOverQuota class.
func (e *QuotaError) Unwrap() error { return ErrOverQuota }

// tokenBucket is one tenant's admission budget: capacity burst, refilled
// at rate tokens per second. Time is passed in, never read, so the bucket
// is a pure function of its call sequence (the service owns the single
// wall-clock read; tests drive a fake clock).
type tokenBucket struct {
	rate   float64 // tokens per second
	burst  float64
	tokens float64
	last   time.Time
}

// take spends one token if available, refilling for the elapsed time
// first. On failure it reports how long until a full token accumulates.
func (b *tokenBucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	if !b.last.IsZero() && now.After(b.last) {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if b.rate <= 0 {
		return false, time.Hour
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / b.rate * float64(time.Second))
}

// quotas is the per-tenant bucket table.
type quotas struct {
	mu      sync.Mutex
	rate    float64
	burst   int
	buckets map[string]*tokenBucket
}

func newQuotas(rate float64, burst int) *quotas {
	return &quotas{rate: rate, burst: burst, buckets: make(map[string]*tokenBucket)}
}

// admit charges one submission to the tenant's bucket. A non-positive
// configured rate disables rate limiting entirely.
func (q *quotas) admit(tenant string, now time.Time) error {
	if q.rate <= 0 {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	b := q.buckets[tenant]
	if b == nil {
		b = &tokenBucket{rate: q.rate, burst: float64(q.burst), tokens: float64(q.burst)}
		if b.burst < 1 {
			b.burst, b.tokens = 1, 1
		}
		q.buckets[tenant] = b
	}
	ok, retry := b.take(now)
	if !ok {
		return &QuotaError{Tenant: tenant, Reason: "rate", RetryAfter: retry}
	}
	return nil
}

// tenants returns the tenants with buckets, sorted (introspection only).
func (q *quotas) tenants() []string {
	q.mu.Lock()
	defer q.mu.Unlock()
	names := make([]string, 0, len(q.buckets))
	for t := range q.buckets {
		names = append(names, t)
	}
	sort.Strings(names)
	return names
}
