package jobs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"fpgaflow/internal/core"
	"fpgaflow/internal/obs"
	"fpgaflow/internal/obs/events"
)

// State is a job's lifecycle position. The machine is strictly forward:
//
//	queued -> running -> succeeded | failed | canceled
//	   \--------------------------------^ (cancel before start)
//	running -> queued (worker crash requeue, bounded by MaxAttempts)
//
// Exactly one terminal transition ever takes effect per job — a duplicate
// terminal record in a replayed WAL, or a second worker racing a
// cancellation, is ignored idempotently.
type State string

const (
	// StateQueued: durably acknowledged, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is executing the flow.
	StateRunning State = "running"
	// StateSucceeded: terminal; artifacts are on disk.
	StateSucceeded State = "succeeded"
	// StateFailed: terminal; Error holds the cause.
	StateFailed State = "failed"
	// StateCanceled: terminal; the tenant asked for it to stop.
	StateCanceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateSucceeded || s == StateFailed || s == StateCanceled
}

// ErrNotFound is returned for an unknown job ID.
var ErrNotFound = errors.New("jobs: no such job")

// ErrDraining is returned by Submit once shutdown has begun: the service
// no longer admits work (HTTP maps it to 503).
var ErrDraining = errors.New("jobs: service is draining")

// errKilled marks operations refused after a simulated crash (chaos
// harness only; a real SIGKILL needs no bookkeeping).
var errKilled = errors.New("jobs: service killed")

// Runner executes one job's flow. The default runner drives the hardened
// core runner; tests inject crashy, slow or instant runners.
type Runner func(ctx context.Context, spec Spec) (*core.Result, error)

// Config configures a Service.
type Config struct {
	// Dir is the service's state directory: Dir/wal.jsonl plus one
	// artifact directory per job under Dir/jobs/.
	Dir string
	// Workers is the worker-pool size (default 2).
	Workers int
	// QueueLimit bounds jobs waiting for a worker; submissions beyond it
	// are rejected with a backlog QuotaError (default 64).
	QueueLimit int
	// TenantRate is each tenant's sustained submissions/second; 0 disables
	// rate limiting.
	TenantRate float64
	// TenantBurst is the token-bucket capacity (default 4 when rated).
	TenantBurst int
	// MaxAttempts bounds executions of one job across worker crashes and
	// process restarts; a job exceeding it fails terminally (default 3).
	MaxAttempts int
	// Runner overrides the flow executor (tests; nil = the real flow).
	Runner Runner
	// Obs receives the jobs.* counters and queue gauges (nil = none).
	Obs *obs.Trace
	// Events receives job lifecycle events (KindJob) alongside the flow
	// telemetry of the jobs themselves.
	Events *events.Bus
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueLimit <= 0 {
		c.QueueLimit = 64
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.TenantBurst <= 0 {
		c.TenantBurst = 4
	}
}

// Status is the externally visible snapshot of one job.
type Status struct {
	ID          string  `json:"id"`
	Tenant      string  `json:"tenant"`
	Name        string  `json:"name,omitempty"`
	State       State   `json:"state"`
	Attempt     int     `json:"attempt,omitempty"`
	Error       string  `json:"error,omitempty"`
	Fingerprint string  `json:"fingerprint"`
	TraceID     string  `json:"trace_id,omitempty"`
	Artifact    string  `json:"artifact,omitempty"`
	Metrics     *Result `json:"metrics,omitempty"`
}

// Result is the small metrics summary persisted with a succeeded job.
type Result struct {
	LUTs         int     `json:"luts"`
	CLBs         int     `json:"clbs"`
	ChannelWidth int     `json:"channel_width"`
	Wirelength   int     `json:"wirelength"`
	CriticalPath float64 `json:"critical_path_ns"`
	PowerMW      float64 `json:"power_mw"`
	BitstreamB   int     `json:"bitstream_bytes"`
	Verified     bool    `json:"verified"`
}

// job is the in-memory record; all fields are guarded by Service.mu.
type job struct {
	id        string
	spec      Spec
	fp        string
	state     State
	attempt   int
	errText   string
	artifact  string // hex digest of the encoded bitstream
	metrics   *Result
	canceled  bool               // cancel requested
	finishing bool               // a finisher has claimed the terminal commit
	cancel    context.CancelFunc // live while running
	done      chan struct{}      // closed on terminal transition

	// tr is the per-job trace: one deterministic trace ID per submission,
	// carried via context through admission, queue, worker and the hardened
	// runner, persisted as the trace.json artifact at the terminal
	// transition. qspan is the open queue-wait span while the job sits in
	// the FIFO.
	tr      *obs.Trace
	traceID string
	qspan   *obs.Span
}

// Service is the crash-safe job queue: durable admission, a worker pool
// over the hardened flow runner, per-tenant quotas, and WAL-replay
// recovery. All methods are safe for concurrent use.
type Service struct {
	cfg    Config
	dir    string
	wal    *wal
	tr     *obs.Trace
	bus    *events.Bus
	clock  func() time.Time
	quotas *quotas

	runCtx    context.Context
	runCancel context.CancelFunc

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string          // submission order (for List)
	active   map[string]string // tenant+fp -> non-terminal job ID (idempotent resubmit)
	nextID   uint64
	draining bool

	qmu   sync.Mutex
	q     []string
	qcond *sync.Cond

	killed atomic.Bool
	wg     sync.WaitGroup

	// TailDamage records WAL tail corruption found during recovery (nil
	// when the log replayed cleanly). The damage is already repaired —
	// the tail was truncated before the service started appending.
	TailDamage *TailError
}

// Open loads (or creates) the service state under cfg.Dir, replays the
// WAL, repairs a damaged tail, re-queues every job that had been
// acknowledged but had not reached a terminal state, and starts the worker
// pool. The returned service is serving immediately.
func Open(cfg Config) (*Service, error) {
	cfg.fill()
	if cfg.Dir == "" {
		return nil, errors.New("jobs: Config.Dir is required")
	}
	if err := os.MkdirAll(filepath.Join(cfg.Dir, "jobs"), 0o755); err != nil {
		return nil, fmt.Errorf("jobs: creating state dir: %w", err)
	}
	s := &Service{
		cfg:    cfg,
		dir:    cfg.Dir,
		tr:     cfg.Obs,
		bus:    cfg.Events,
		quotas: newQuotas(cfg.TenantRate, cfg.TenantBurst),
		jobs:   make(map[string]*job),
		active: make(map[string]string),
	}
	//fpgavet:ignore walltime the job service's single wall-clock source: WAL timestamps and quota refill are operational time, never QoR-affecting; tests inject a fake clock here
	s.clock = time.Now
	s.qcond = sync.NewCond(&s.qmu)
	s.runCtx, s.runCancel = context.WithCancel(context.Background())

	// Materialize every counter at zero so metrics consumers can rely on
	// the full jobs.* namespace existing even on an idle service.
	for _, c := range []string{
		"jobs.submitted", "jobs.deduped", "jobs.completed", "jobs.failed",
		"jobs.canceled", "jobs.requeued", "jobs.recovered",
		"jobs.rejected_quota", "jobs.rejected_backlog",
		"jobs.wal_records", "jobs.wal_tail_dropped", "jobs.wal_dup_terminal",
		"jobs.trace_write_errors",
	} {
		s.tr.Counter(c)
	}
	s.tr.SetGauge("jobs.queue_depth", 0)
	s.tr.SetGauge("jobs.running", 0)

	if err := s.recover(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// recover replays the WAL into the job table and re-queues interrupted
// jobs. Replay is idempotent over duplicated records: a second terminal
// record for a job is counted and ignored, never applied.
func (s *Service) recover() error {
	path := s.walPath()
	records, validOff, tail, err := replayWAL(path)
	if err != nil {
		return err
	}
	if tail != nil {
		s.TailDamage = tail
		s.tr.Add("jobs.wal_tail_dropped", int64(tail.Lost))
	}
	var lastSeq uint64
	for i := range records {
		rec := &records[i]
		if rec.Seq > lastSeq {
			lastSeq = rec.Seq
		}
		j := s.jobs[rec.Job]
		switch rec.Kind {
		case RecSubmit:
			if j != nil {
				continue // duplicate submit (replayed tail): first wins
			}
			j = &job{id: rec.Job, spec: *rec.Spec, fp: rec.Fingerprint,
				state: StateQueued, done: make(chan struct{})}
			if j.fp == "" {
				j.fp = rec.Spec.Fingerprint()
			}
			s.jobs[j.id] = j
			s.order = append(s.order, j.id)
			if n, ok := numericSuffix(j.id); ok && n >= s.nextID {
				s.nextID = n
			}
		case RecStart:
			if j == nil || j.state.Terminal() {
				continue
			}
			if rec.Attempt > j.attempt {
				j.attempt = rec.Attempt
			}
			j.state = StateRunning
		case RecCancel:
			if j == nil || j.state.Terminal() {
				continue
			}
			j.canceled = true
		case RecDone:
			if j == nil {
				continue
			}
			if j.state.Terminal() {
				s.tr.Add("jobs.wal_dup_terminal", 1)
				continue
			}
			j.state = rec.State
			j.errText = rec.Error
			j.artifact = rec.Artifact
			close(j.done)
		}
	}
	s.wal, err = openWAL(path, validOff, lastSeq)
	if err != nil {
		return err
	}
	// Re-queue in submission order: anything acknowledged but not terminal
	// runs (again). A crash between artifact write and the done record
	// re-runs the job; the flow is deterministic in (source, options), so
	// the rewritten artifacts are identical — this is what makes replay
	// idempotent.
	for _, id := range s.order {
		j := s.jobs[id]
		if j.state.Terminal() {
			continue
		}
		j.state = StateQueued
		s.active[j.spec.Tenant+"/"+j.fp] = j.id
		s.tr.Add("jobs.recovered", 1)
		s.startJobTrace(j)
		s.markQueued(j)
		s.enqueue(j.id)
		s.publishJobEvent(j, "recovered")
	}
	return nil
}

// startJobTrace creates the job's trace with its deterministic trace ID
// (sha256 of job ID + spec fingerprint — a replayed submission carries the
// same ID across process restarts).
func (s *Service) startJobTrace(j *job) {
	j.traceID = obs.DeriveTraceID(j.id, j.fp)
	j.tr = obs.New("job " + j.id)
	j.tr.SetTraceID(j.traceID)
}

// markQueued opens the job's queue-wait span; call just before enqueue.
// Callers either hold Service.mu or own the job exclusively (recovery).
func (s *Service) markQueued(j *job) {
	j.qspan = j.tr.Start("queue wait")
}

// endQueueWait closes the queue-wait span (if one is open) and feeds the
// service-wide queue-wait distribution. Callers hold Service.mu.
func (s *Service) endQueueWait(j *job) {
	if j.qspan == nil {
		return
	}
	j.qspan.End()
	s.tr.Histogram("jobs.queue_wait_seconds").Observe(j.qspan.Wall.Seconds())
	j.qspan = nil
}

// numericSuffix extracts the numeric part of a "j000042" job ID.
func numericSuffix(id string) (uint64, bool) {
	if !strings.HasPrefix(id, "j") {
		return 0, false
	}
	var n uint64
	for _, r := range id[1:] {
		if r < '0' || r > '9' {
			return 0, false
		}
		n = n*10 + uint64(r-'0')
	}
	return n, true
}

func (s *Service) walPath() string { return filepath.Join(s.dir, "wal.jsonl") }

// jobDir is the artifact directory for one job.
func (s *Service) jobDir(id string) string { return filepath.Join(s.dir, "jobs", id) }

// append commits a WAL record unless the service has been chaos-killed
// (in which case the write is suppressed, exactly as if the process had
// died before reaching the syscall).
func (s *Service) append(rec *Record) error {
	if s.killed.Load() {
		return errKilled
	}
	t0 := s.clock()
	rec.TNS = t0.UnixNano()
	if err := s.wal.append(rec); err != nil {
		return err
	}
	// append marshals, writes and fsyncs under the WAL lock; its latency is
	// the floor under every admission and terminal commit, so it gets its
	// own distribution. s.clock is the service's sanctioned wall-clock
	// source; fake clocks may stand still or jump, so only forward deltas
	// are observed.
	if d := s.clock().Sub(t0); d >= 0 {
		s.tr.Histogram("jobs.wal_sync_seconds").Observe(d.Seconds())
	}
	s.tr.Add("jobs.wal_records", 1)
	return nil
}

// Submit validates, rate-limits and durably enqueues a job. On success the
// job is acknowledged: its spec has been fsynced to the WAL and it will
// reach a terminal state exactly once, even across process crashes. A
// resubmission of an identical (tenant, source, options) spec while the
// original is still in flight coalesces onto the existing job.
func (s *Service) Submit(ctx context.Context, spec Spec) (Status, error) {
	if err := ctx.Err(); err != nil {
		return Status{}, err
	}
	if s.killed.Load() {
		return Status{}, errKilled
	}
	if err := spec.Validate(); err != nil {
		return Status{}, err
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return Status{}, ErrDraining
	}
	fp := spec.Fingerprint()
	if id, ok := s.active[spec.Tenant+"/"+fp]; ok {
		st := s.jobs[id].status()
		s.mu.Unlock()
		s.tr.Add("jobs.deduped", 1)
		return st, nil
	}
	s.mu.Unlock()

	// Admission: the tenant's token bucket first (one tenant's burst only
	// drains its own budget), then the shared queue-depth backpressure.
	if err := s.quotas.admit(spec.Tenant, s.clock()); err != nil {
		s.tr.Add("jobs.rejected_quota", 1)
		return Status{}, err
	}
	if depth := s.queueDepth(); depth >= s.cfg.QueueLimit {
		s.tr.Add("jobs.rejected_backlog", 1)
		return Status{}, &QuotaError{Tenant: spec.Tenant, Reason: "backlog",
			RetryAfter: time.Duration(depth/s.cfg.Workers+1) * time.Second}
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return Status{}, ErrDraining
	}
	s.nextID++
	j := &job{
		id:    fmt.Sprintf("j%06d", s.nextID),
		spec:  spec,
		fp:    fp,
		state: StateQueued,
		done:  make(chan struct{}),
	}
	s.startJobTrace(j)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.active[spec.Tenant+"/"+fp] = j.id
	s.mu.Unlock()

	// Durable ack: the submit record is fsynced before the job is queued
	// or the caller told anything. Failure unwinds the reservation.
	if err := s.append(&Record{Kind: RecSubmit, Job: j.id, Spec: &spec, Fingerprint: fp}); err != nil {
		s.mu.Lock()
		delete(s.jobs, j.id)
		delete(s.active, spec.Tenant+"/"+fp)
		s.order = s.order[:len(s.order)-1]
		s.mu.Unlock()
		return Status{}, err
	}
	s.tr.Add("jobs.submitted", 1)
	// Per-tenant admission counters are labeled and cardinality-capped: a
	// hostile tenant set collapses into the vec's overflow bucket instead
	// of growing the metric space without bound.
	s.tr.CounterVec("jobs.submitted_by_tenant", "tenant").Add(spec.Tenant, 1)
	s.mu.Lock()
	s.markQueued(j)
	st := j.status()
	s.mu.Unlock()
	s.enqueue(j.id)
	s.publishJobEvent(j, "submitted")
	return st, nil
}

// enqueue appends a job ID to the FIFO and wakes one worker.
func (s *Service) enqueue(id string) {
	s.qmu.Lock()
	s.q = append(s.q, id)
	s.tr.SetGauge("jobs.queue_depth", float64(len(s.q)))
	s.qmu.Unlock()
	s.qcond.Signal()
}

// queueDepth reports how many jobs are waiting for a worker.
func (s *Service) queueDepth() int {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return len(s.q)
}

// nextJob blocks until work is available or the service drains.
func (s *Service) nextJob() (string, bool) {
	s.qmu.Lock()
	defer s.qmu.Unlock()
	for len(s.q) == 0 && !s.stopWorkers() {
		s.qcond.Wait()
	}
	if s.stopWorkers() {
		return "", false
	}
	id := s.q[0]
	s.q = s.q[1:]
	s.tr.SetGauge("jobs.queue_depth", float64(len(s.q)))
	return id, true
}

// stopWorkers reports whether workers should exit instead of picking up
// more work (drain or chaos kill). Queued jobs stay in the WAL and resume
// on the next Open.
func (s *Service) stopWorkers() bool {
	if s.killed.Load() {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// worker is one pool goroutine: pull, run, commit, repeat. It never writes
// captured state directly — every mutation goes through the locked job
// table — and it never exits with a job half-committed except when the
// process (or the chaos harness) kills it.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		id, ok := s.nextJob()
		if !ok {
			return
		}
		s.runJob(id)
	}
}

// runJob executes one attempt of one job.
func (s *Service) runJob(id string) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil || j.state.Terminal() {
		s.mu.Unlock()
		return
	}
	s.endQueueWait(j)
	if j.canceled {
		s.mu.Unlock()
		s.finish(j, StateCanceled, "canceled before start", "", nil)
		return
	}
	if j.attempt >= s.cfg.MaxAttempts {
		att := j.attempt
		s.mu.Unlock()
		s.finish(j, StateFailed, fmt.Sprintf("gave up after %d interrupted attempts", att), "", nil)
		return
	}
	j.attempt++
	j.state = StateRunning
	rctx, cancel := context.WithCancel(s.runCtx)
	j.cancel = cancel
	attempt := j.attempt
	// The per-job trace rides the context from here on: the hardened core
	// runner and every flow stage report their spans into it, all under the
	// job's single trace ID.
	rctx = obs.ContextWithTrace(rctx, j.tr)
	s.mu.Unlock()
	defer cancel()

	s.tr.SetGauge("jobs.running", float64(s.runningCount()))
	defer func() { s.tr.SetGauge("jobs.running", float64(s.runningCount())) }()

	if err := s.append(&Record{Kind: RecStart, Job: id, Attempt: attempt}); err != nil {
		return // killed mid-commit: the job replays as queued on restart
	}
	s.publishJobEvent(j, "start")

	runStart := s.clock()
	res, err := s.runShielded(rctx, j.spec)
	if d := s.clock().Sub(runStart); d >= 0 {
		s.tr.Histogram("jobs.run_seconds").Observe(d.Seconds())
	}
	if s.killed.Load() {
		return // crashed mid-stage: no terminal record, recovery re-queues
	}
	switch {
	case err == nil:
		digest, metrics, aerr := s.writeArtifacts(id, j.spec, res)
		if aerr != nil {
			s.finish(j, StateFailed, fmt.Sprintf("artifact write: %v", aerr), "", nil)
			return
		}
		s.finish(j, StateSucceeded, "", digest, metrics)
	case errors.Is(err, context.Canceled) && s.isCanceled(j):
		s.finish(j, StateCanceled, "canceled while running", "", nil)
	case errors.Is(err, context.Canceled) && s.runCtx.Err() != nil:
		// Service-side hard cancellation (drain deadline): the tenant did
		// not ask for this, so the job must not go terminal. Leave it
		// checkpointed as queued; the next Open's recovery re-runs it.
		s.mu.Lock()
		j.state = StateQueued
		j.cancel = nil
		s.mu.Unlock()
	case isWorkerCrash(err):
		// The stage (or an injected chaos runner) tore down the worker's
		// execution. The job itself may be fine: re-queue it, bounded by
		// MaxAttempts, exactly like a process-level crash recovery would.
		s.tr.Add("jobs.requeued", 1)
		s.mu.Lock()
		j.state = StateQueued
		j.cancel = nil
		s.markQueued(j)
		s.mu.Unlock()
		s.publishJobEvent(j, "requeued")
		s.enqueue(id)
	default:
		s.finish(j, StateFailed, err.Error(), "", nil)
	}
}

// runShielded runs the configured runner, converting a panic into an error
// so one crashing job cannot take the worker pool down. The hardened core
// runner shields its own stages already; this guards injected runners and
// the glue between them.
func (s *Service) runShielded(ctx context.Context, spec Spec) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("%w: %v", errWorkerPanic, r)
		}
	}()
	runner := s.cfg.Runner
	if runner == nil {
		runner = s.coreRunner
	}
	return runner(ctx, spec)
}

// errWorkerPanic classifies a panic that escaped a job runner.
var errWorkerPanic = errors.New("jobs: worker panic")

// isWorkerCrash reports whether the failure was the worker's execution
// being torn down (panic) rather than the job itself failing.
func isWorkerCrash(err error) bool {
	if errors.Is(err, errWorkerPanic) {
		return true
	}
	var pe *core.PanicError
	return errors.As(err, &pe)
}

// coreRunner is the production runner: the full hardened flow. The flow
// reports into the job's own trace (from the context) when one is
// attached; its metrics merge into the service-wide trace at the terminal
// transition, so service totals still accumulate exactly as before.
func (s *Service) coreRunner(ctx context.Context, spec Spec) (*core.Result, error) {
	opts := spec.coreOptions()
	opts.Obs = obs.TraceFromContext(ctx)
	if opts.Obs == nil {
		opts.Obs = s.tr
	}
	opts.Events = s.bus
	if spec.IsBLIF() {
		return core.RunBLIFContext(ctx, spec.Source, opts)
	}
	return core.RunVHDLContext(ctx, spec.Source, opts)
}

func (s *Service) isCanceled(j *job) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return j.canceled
}

func (s *Service) runningCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, id := range s.order {
		if s.jobs[id].state == StateRunning {
			n++
		}
	}
	return n
}

// finish commits a job's terminal state: WAL first (fsynced), then the
// in-memory transition. A job already terminal is left untouched — this is
// the no-double-completion guard — and a suppressed WAL write (chaos kill)
// aborts the transition entirely, exactly like a crash before the commit.
func (s *Service) finish(j *job, state State, errText, digest string, metrics *Result) {
	s.mu.Lock()
	if j.state.Terminal() || j.finishing {
		s.mu.Unlock()
		return
	}
	j.finishing = true
	s.mu.Unlock()
	rec := &Record{Kind: RecDone, Job: j.id, State: state, Error: errText, Artifact: digest}
	if err := s.append(rec); err != nil {
		return // killed mid-commit: no terminal record hit the disk, so the
		// job is still open from the WAL's point of view and replays
	}
	s.mu.Lock()
	j.state = state
	j.errText = errText
	j.artifact = digest
	j.metrics = metrics
	j.cancel = nil
	s.endQueueWait(j) // canceled-while-queued jobs go terminal with the span open
	tenant := j.spec.Tenant
	delete(s.active, j.spec.Tenant+"/"+j.fp)
	s.mu.Unlock()
	switch state {
	case StateSucceeded:
		s.tr.Add("jobs.completed", 1)
	case StateFailed:
		s.tr.Add("jobs.failed", 1)
	case StateCanceled:
		s.tr.Add("jobs.canceled", 1)
	}
	s.tr.CounterVec("jobs.finished_by_tenant", "tenant").Add(tenant, 1)
	// Persist the job's span tree as an artifact, then fold its metrics
	// into the service totals. Both are best-effort telemetry: a failed
	// trace write is counted, never turns a finished job into a failure.
	// The trace must be on disk before j.done wakes waiters, so a client
	// that Waits and then lists artifacts always sees trace.json.
	s.writeTrace(j)
	s.tr.MergeFrom(j.tr)
	s.mu.Lock()
	close(j.done)
	s.mu.Unlock()
	s.publishJobEvent(j, "done")
}

// writeTrace persists the job's span tree (queue wait, every attempt,
// every flow stage — one trace ID) as Dir/jobs/<id>/trace.json.
func (s *Service) writeTrace(j *job) {
	if j.tr == nil {
		return
	}
	dir := s.jobDir(j.id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		s.tr.Add("jobs.trace_write_errors", 1)
		return
	}
	data, err := json.MarshalIndent(j.tr.Summary(), "", "  ")
	if err != nil {
		s.tr.Add("jobs.trace_write_errors", 1)
		return
	}
	if err := atomicWrite(filepath.Join(dir, "trace.json"), data); err != nil {
		s.tr.Add("jobs.trace_write_errors", 1)
	}
}

// writeArtifacts persists the job's outputs under Dir/jobs/<id>/ —
// design.bit (the encoded bitstream) and result.json (the metrics
// summary) — atomically (temp file + rename) and before the terminal WAL
// record, so a crash in between simply re-runs the deterministic flow and
// rewrites identical bytes.
func (s *Service) writeArtifacts(id string, spec Spec, res *core.Result) (digest string, metrics *Result, err error) {
	dir := s.jobDir(id)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", nil, err
	}
	if res != nil && len(res.Encoded) > 0 {
		sum := sha256.Sum256(res.Encoded)
		digest = hex.EncodeToString(sum[:])
		if err := atomicWrite(filepath.Join(dir, "design.bit"), res.Encoded); err != nil {
			return "", nil, err
		}
	}
	if res != nil {
		m := res.Metrics
		metrics = &Result{
			LUTs: m.LUTs, CLBs: m.CLBs, ChannelWidth: m.ChannelWidth,
			Wirelength: m.WirelengthUsed, CriticalPath: m.CriticalPath * 1e9,
			PowerMW: m.PowerTotalMW, BitstreamB: len(res.Encoded), Verified: res.Verified,
		}
		data, jerr := json.MarshalIndent(struct {
			ID      string  `json:"id"`
			Name    string  `json:"name,omitempty"`
			Tenant  string  `json:"tenant"`
			Digest  string  `json:"bitstream_sha256,omitempty"`
			Metrics *Result `json:"metrics"`
		}{ID: id, Name: spec.Name, Tenant: spec.Tenant, Digest: digest, Metrics: metrics}, "", "  ")
		if jerr != nil {
			return "", nil, jerr
		}
		if err := atomicWrite(filepath.Join(dir, "result.json"), data); err != nil {
			return "", nil, err
		}
	}
	return digest, metrics, nil
}

// atomicWrite lands data at path via a temp file, fsync and rename.
func atomicWrite(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// Get returns a job's status snapshot.
func (s *Service) Get(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return Status{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return j.status(), nil
}

// List returns every job's status in submission order, optionally
// filtered by tenant.
func (s *Service) List(tenant string) []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		j := s.jobs[id]
		if tenant != "" && j.spec.Tenant != tenant {
			continue
		}
		out = append(out, j.status())
	}
	return out
}

// Cancel requests a job stop: a queued job goes terminal immediately, a
// running job's context is canceled and the worker commits the canceled
// state. Canceling a terminal job is a no-op returning its final status.
func (s *Service) Cancel(id string) (Status, error) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return Status{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	if j.state.Terminal() {
		st := j.status()
		s.mu.Unlock()
		return st, nil
	}
	j.canceled = true
	cancel := j.cancel
	state := j.state
	s.mu.Unlock()

	if err := s.append(&Record{Kind: RecCancel, Job: id}); err != nil {
		return Status{}, err
	}
	s.publishJobEvent(j, "cancel")
	if state == StateRunning && cancel != nil {
		cancel() // the worker observes context.Canceled and finishes the job
	} else if state == StateQueued {
		s.finish(j, StateCanceled, "canceled while queued", "", nil)
	}
	s.mu.Lock()
	st := j.status()
	s.mu.Unlock()
	return st, nil
}

// Wait blocks until the job reaches a terminal state or ctx expires.
func (s *Service) Wait(ctx context.Context, id string) (Status, error) {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return Status{}, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	select {
	case <-j.done:
		return s.Get(id)
	case <-ctx.Done():
		return Status{}, ctx.Err()
	}
}

// ArtifactNames lists the artifact files available for a job (sorted).
func (s *Service) ArtifactNames(id string) ([]string, error) {
	if _, err := s.Get(id); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(s.jobDir(id))
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && !strings.HasSuffix(e.Name(), ".tmp") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// ArtifactPath resolves one artifact file for a job, refusing path
// escapes.
func (s *Service) ArtifactPath(id, name string) (string, error) {
	if name == "" || name != filepath.Base(name) || strings.HasPrefix(name, ".") {
		return "", fmt.Errorf("%w: artifact %q", ErrNotFound, name)
	}
	names, err := s.ArtifactNames(id)
	if err != nil {
		return "", err
	}
	for _, n := range names {
		if n == name {
			return filepath.Join(s.jobDir(id), name), nil
		}
	}
	return "", fmt.Errorf("%w: artifact %q of job %q", ErrNotFound, name, id)
}

// Stats is the introspection snapshot /metrics serves.
type Stats struct {
	Queued    int      `json:"queued"`
	Running   int      `json:"running"`
	Succeeded int      `json:"succeeded"`
	Failed    int      `json:"failed"`
	Canceled  int      `json:"canceled"`
	Tenants   []string `json:"tenants,omitempty"`
}

// Snapshot summarizes the job table by state.
func (s *Service) Snapshot() Stats {
	s.mu.Lock()
	st := Stats{}
	for _, id := range s.order {
		switch s.jobs[id].state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateSucceeded:
			st.Succeeded++
		case StateFailed:
			st.Failed++
		case StateCanceled:
			st.Canceled++
		}
	}
	s.mu.Unlock()
	st.Tenants = s.quotas.tenants()
	return st
}

// status snapshots a job; callers hold Service.mu.
func (j *job) status() Status {
	return Status{
		ID: j.id, Tenant: j.spec.Tenant, Name: j.spec.Name, State: j.state,
		Attempt: j.attempt, Error: j.errText, Fingerprint: j.fp,
		TraceID: j.traceID, Artifact: j.artifact, Metrics: j.metrics,
	}
}

// publishJobEvent emits one lifecycle event on the bus (nil-safe).
func (s *Service) publishJobEvent(j *job, action string) {
	if !s.bus.Enabled() {
		return
	}
	s.mu.Lock()
	ev := &events.JobEvent{
		ID: j.id, Tenant: j.spec.Tenant, Action: action,
		State: string(j.state), Attempt: j.attempt, Reason: j.errText,
	}
	s.mu.Unlock()
	s.bus.Publish(events.Event{Kind: events.KindJob, Job: ev})
}

// Close drains the service: admission stops immediately, workers finish
// their current jobs within ctx's deadline (running jobs are hard-canceled
// once it expires; their requeue is the next process's recovery), and the
// WAL is flushed and closed. Close is idempotent.
func (s *Service) Close(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.draining = true
	s.mu.Unlock()
	s.qcond.Broadcast()

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-ctx.Done():
		// Out of patience: hard-cancel running flows (they poll their
		// contexts) and give them a moment to observe it.
		s.runCancel()
		select {
		case <-done:
		case <-time.After(2 * time.Second):
		}
	}
	s.runCancel()
	if s.killed.Load() {
		return nil // chaos kill: the WAL handle dies with the "process"
	}
	return s.wal.close()
}

// Kill simulates SIGKILL for the chaos harness: every subsequent WAL
// append, admission and worker pickup is suppressed as if the process had
// died, the in-memory state is abandoned, and running runners are
// canceled so their goroutines exit. The state directory is left exactly
// as a real crash would leave it; Open on the same directory performs
// recovery.
func (s *Service) Kill() {
	s.killed.Store(true)
	s.qcond.Broadcast()
	s.runCancel()
	s.wg.Wait()
	_ = s.wal.close()
}
