package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"fpgaflow/internal/core"
	"fpgaflow/internal/obs"
)

// TestJobTraceArtifact checks the per-job tracing contract end to end at
// the service layer: every finished job exposes a deterministic trace ID
// in its status and a trace.json artifact whose span tree covers the
// queue wait under that one ID.
func TestJobTraceArtifact(t *testing.T) {
	svcTr := obs.New("svc")
	s := openService(t, func(c *Config) { c.Obs = svcTr })
	st, err := s.Submit(context.Background(), specFixture("alice"))
	if err != nil {
		t.Fatal(err)
	}
	if st.TraceID == "" {
		t.Fatal("submit status has no trace ID")
	}
	final := waitTerminal(t, s, st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("final state = %s (%s)", final.State, final.Error)
	}
	if final.TraceID != st.TraceID {
		t.Fatalf("trace ID changed across the job's life: %s -> %s", st.TraceID, final.TraceID)
	}

	p, err := s.ArtifactPath(st.ID, "trace.json")
	if err != nil {
		t.Fatalf("trace.json artifact: %v", err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := obs.ParseSummary(data)
	if err != nil {
		t.Fatalf("trace.json does not parse as a summary: %v", err)
	}
	if sum.TraceID != st.TraceID {
		t.Fatalf("trace.json carries ID %q, status says %q", sum.TraceID, st.TraceID)
	}
	var sawQueueWait bool
	for _, sp := range sum.Spans {
		if sp.Name == "queue wait" && sp.Depth == 0 {
			sawQueueWait = true
		}
	}
	if !sawQueueWait {
		t.Errorf("trace has no top-level queue-wait span; spans: %+v", sum.Spans)
	}
	if n := svcTr.Histograms()["jobs.queue_wait_seconds"].Count; n == 0 {
		t.Error("queue wait not observed into the service histogram")
	}
	if got := svcTr.CounterVecs()["jobs.finished_by_tenant"].Values["alice"]; got != 1 {
		t.Errorf("jobs.finished_by_tenant[alice] = %d, want 1", got)
	}
}

// TestJobTraceCoversRetries crashes a job's first execution and checks the
// persisted trace shows both executions — spans recorded into the
// per-job trace from the runner's context — with stages nested under their
// attempt and a queue-wait span per enqueue.
func TestJobTraceCoversRetries(t *testing.T) {
	fails := make(chan struct{}, 1)
	fails <- struct{}{}
	s := openService(t, func(c *Config) {
		c.Runner = func(ctx context.Context, spec Spec) (*core.Result, error) {
			tr := obs.TraceFromContext(ctx)
			if tr == nil {
				return nil, errors.New("runner got no trace in its context")
			}
			sp := tr.Start("attempt span")
			tr.Start("fake stage").End()
			sp.End()
			select {
			case <-fails:
				panic("transient worker crash") // requeue path, not terminal failure
			default:
				return &core.Result{Encoded: []byte("ok")}, nil
			}
		}
		c.MaxAttempts = 2
	})
	st, err := s.Submit(context.Background(), specFixture("bob"))
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, s, st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("final state = %s (%s)", final.State, final.Error)
	}
	p, err := s.ArtifactPath(st.ID, "trace.json")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	var sum obs.Summary
	if err := json.Unmarshal(data, &sum); err != nil {
		t.Fatal(err)
	}
	var attempts, nested int
	for _, sp := range sum.Spans {
		switch sp.Name {
		case "attempt span":
			attempts++
		case "fake stage":
			nested++
			if sp.Depth != 1 {
				t.Errorf("stage span depth = %d, want 1 (nested under its attempt)", sp.Depth)
			}
		}
	}
	if attempts != 2 || nested != 2 {
		t.Errorf("trace shows %d attempts / %d stages, want 2 / 2; spans: %+v",
			attempts, nested, sum.Spans)
	}
	var queueWaits int
	for _, sp := range sum.Spans {
		if sp.Name == "queue wait" {
			queueWaits++
		}
	}
	if queueWaits != 2 {
		t.Errorf("trace shows %d queue-wait spans, want 2 (initial + requeue)", queueWaits)
	}
}

// TestTraceWriteFailureDoesNotFailJob makes the trace unwritable and
// checks the job still succeeds, with the error counted.
func TestTraceWriteFailureDoesNotFailJob(t *testing.T) {
	svcTr := obs.New("svc")
	started := make(chan string, 1)
	release := make(chan struct{})
	s := openService(t, func(c *Config) {
		c.Obs = svcTr
		c.Runner = gateRunner(started, release)
	})
	st, err := s.Submit(context.Background(), specFixture("alice"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	// With the job gated mid-run, occupy the trace.json path with a
	// directory so the finish-time atomic write's rename must fail (works
	// regardless of test-runner privileges, unlike chmod).
	dir := s.jobDir(st.ID)
	if err := os.MkdirAll(filepath.Join(dir, "trace.json"), 0o755); err != nil {
		t.Fatal(err)
	}
	close(release)
	final := waitTerminal(t, s, st.ID)
	if final.State != StateSucceeded {
		t.Fatalf("job failed because its trace could not be written: %s (%s)", final.State, final.Error)
	}
	if svcTr.Counters()["jobs.trace_write_errors"] == 0 {
		t.Error("trace write failure not counted")
	}
}
