package jobs

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzDecodeSpec: arbitrary bytes through the job-spec decoder must never
// panic; every rejection is a typed error wrapping ErrBadSpec, and every
// accepted spec is internally consistent (re-validates, fingerprints).
func FuzzDecodeSpec(f *testing.F) {
	valid, _ := json.Marshal(specFixture("alice"))
	f.Add(valid)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"tenant":"a","source":".model m\n.end\n"}`))
	f.Add([]byte(`{"tenant":"a","source":"x","options":{"seed":-1,"retries":16}}`))
	f.Add([]byte(`{"tenant":"UPPER","source":"x"}`))
	f.Add([]byte(`{"tenant":"a","source":"x","options":{"place_effort":1e308}}`))
	f.Add([]byte(`[`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte("\x00\xff\xfe"))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeSpec(data)
		if err != nil {
			if !errors.Is(err, ErrBadSpec) {
				t.Fatalf("DecodeSpec error %v does not wrap ErrBadSpec", err)
			}
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("DecodeSpec error %T is not a *SpecError", err)
			}
			return
		}
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("accepted spec fails Validate: %v", verr)
		}
		if fp := spec.Fingerprint(); len(fp) != 64 {
			t.Fatalf("fingerprint %q is not a hex SHA-256", fp)
		}
	})
}

// FuzzParseRecord: arbitrary WAL lines — truncated, duplicated fields,
// garbage — must never panic the record parser; every rejection wraps
// ErrCorruptWAL with a *RecordError, and every accepted record passes its
// own validation.
func FuzzParseRecord(f *testing.F) {
	spec := specFixture("alice")
	sub, _ := json.Marshal(Record{Seq: 1, Kind: RecSubmit, Job: "j000001", Spec: &spec})
	f.Add(sub)
	f.Add([]byte(`{"seq":2,"kind":"start","job":"j000001","attempt":1}`))
	f.Add([]byte(`{"seq":3,"kind":"done","job":"j000001","state":"succeeded","artifact":"ab"}`))
	f.Add([]byte(`{"seq":4,"kind":"cancel","job":"j000001"}`))
	f.Add(sub[:len(sub)/2]) // truncated mid-record
	f.Add(append(append([]byte{}, sub...), sub...))
	f.Add([]byte(`{"seq":"one","kind":"start"}`))
	f.Add([]byte(`{"seq":18446744073709551615,"kind":"done","job":"j1","state":"failed"}`))
	f.Add([]byte(``))
	f.Add([]byte("\xff\x00 not json"))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := ParseRecord(data)
		if err != nil {
			if !errors.Is(err, ErrCorruptWAL) {
				t.Fatalf("ParseRecord error %v does not wrap ErrCorruptWAL", err)
			}
			var re *RecordError
			if !errors.As(err, &re) {
				t.Fatalf("ParseRecord error %T is not a *RecordError", err)
			}
			return
		}
		if rec.Seq == 0 || rec.Job == "" {
			t.Fatalf("accepted record is invalid: %+v", rec)
		}
		if verr := rec.validate(); verr != nil {
			t.Fatalf("accepted record fails validate: %v", verr)
		}
	})
}
