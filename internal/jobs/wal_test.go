package jobs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func specFixture(tenant string) Spec {
	return Spec{Tenant: tenant, Name: "adder",
		Source: ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n"}
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	w, err := openWAL(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := specFixture("alice")
	in := []Record{
		{Kind: RecSubmit, Job: "j000001", Spec: &spec, Fingerprint: spec.Fingerprint()},
		{Kind: RecStart, Job: "j000001", Attempt: 1},
		{Kind: RecDone, Job: "j000001", State: StateSucceeded, Artifact: "abc123"},
	}
	for i := range in {
		if err := w.append(&in[i]); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}

	out, off, tail, err := replayWAL(path)
	if err != nil || tail != nil {
		t.Fatalf("replay: err=%v tail=%v", err, tail)
	}
	if len(out) != len(in) {
		t.Fatalf("replayed %d records, want %d", len(out), len(in))
	}
	for i, rec := range out {
		if rec.Seq != uint64(i+1) {
			t.Errorf("record %d: seq %d", i, rec.Seq)
		}
		if rec.Kind != in[i].Kind || rec.Job != in[i].Job {
			t.Errorf("record %d: %+v != %+v", i, rec, in[i])
		}
	}
	fi, _ := os.Stat(path)
	if off != fi.Size() {
		t.Errorf("valid offset %d != file size %d", off, fi.Size())
	}
	if out[0].Spec == nil || out[0].Spec.Tenant != "alice" {
		t.Error("submit record lost its spec")
	}
}

func TestWALReplayMissingFileIsEmpty(t *testing.T) {
	recs, off, tail, err := replayWAL(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || tail != nil || off != 0 || len(recs) != 0 {
		t.Fatalf("missing WAL: recs=%d off=%d tail=%v err=%v", len(recs), off, tail, err)
	}
}

// TestWALTornTail covers the crash-mid-append case: the final line lacks
// its newline. Even a syntactically complete JSON object there was never
// acknowledged (its fsync did not complete), so replay must drop it and
// report a typed TailError; recovery truncates and the log accepts new
// appends.
func TestWALTornTail(t *testing.T) {
	for _, tc := range []struct {
		name, tail string
	}{
		{"half-record", `{"seq":3,"kind":"done","job":"j00`},
		{"complete-but-unterminated", `{"seq":3,"kind":"start","job":"j000001","attempt":2}`},
		{"binary-garbage", "\x00\xff\x13garbage"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "wal.jsonl")
			w, err := openWAL(path, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			spec := specFixture("bob")
			if err := w.append(&Record{Kind: RecSubmit, Job: "j000001", Spec: &spec}); err != nil {
				t.Fatal(err)
			}
			if err := w.append(&Record{Kind: RecStart, Job: "j000001", Attempt: 1}); err != nil {
				t.Fatal(err)
			}
			if err := w.close(); err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.WriteString(tc.tail); err != nil {
				t.Fatal(err)
			}
			f.Close()

			recs, off, tail, err := replayWAL(path)
			if err != nil {
				t.Fatalf("replay must recover from a torn tail, got fatal: %v", err)
			}
			if tail == nil {
				t.Fatal("torn tail not reported")
			}
			if !errors.Is(tail, ErrCorruptWAL) {
				t.Fatalf("tail error %v does not wrap ErrCorruptWAL", tail)
			}
			if len(recs) != 2 {
				t.Fatalf("recovered %d records, want the 2 acked ones", len(recs))
			}

			// Recovery truncates to the certified prefix and appends cleanly.
			w2, err := openWAL(path, off, recs[len(recs)-1].Seq)
			if err != nil {
				t.Fatal(err)
			}
			if err := w2.append(&Record{Kind: RecDone, Job: "j000001", State: StateFailed, Error: "x"}); err != nil {
				t.Fatal(err)
			}
			if err := w2.close(); err != nil {
				t.Fatal(err)
			}
			recs2, _, tail2, err := replayWAL(path)
			if err != nil || tail2 != nil {
				t.Fatalf("post-repair replay: err=%v tail=%v", err, tail2)
			}
			if len(recs2) != 3 || recs2[2].Seq != 3 {
				t.Fatalf("post-repair log wrong: %+v", recs2)
			}
		})
	}
}

// TestWALGarbageTailMultiline: damage spanning several lines is all
// attributed to the tail and dropped as a unit.
func TestWALGarbageTailMultiline(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.jsonl")
	w, err := openWAL(path, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	spec := specFixture("carol")
	if err := w.append(&Record{Kind: RecSubmit, Job: "j000001", Spec: &spec}); err != nil {
		t.Fatal(err)
	}
	w.close()
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	f.WriteString("not json at all\n{\"seq\":9,\"kind\":\"done\"\nmore trash")
	f.Close()

	recs, _, tail, err := replayWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if tail == nil || tail.Lost != 3 {
		t.Fatalf("tail = %+v, want 3 lost lines", tail)
	}
	if len(recs) != 1 {
		t.Fatalf("recovered %d records, want 1", len(recs))
	}
}

func TestParseRecordTypedErrors(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"not-json":         "hello",
		"wrong-type":       `[1,2,3]`,
		"zero-seq":         `{"seq":0,"kind":"start","job":"j1","attempt":1}`,
		"no-job":           `{"seq":1,"kind":"start","attempt":1}`,
		"unknown-kind":     `{"seq":1,"kind":"frobnicate","job":"j1"}`,
		"submit-no-spec":   `{"seq":1,"kind":"submit","job":"j1"}`,
		"submit-bad-spec":  `{"seq":1,"kind":"submit","job":"j1","spec":{"tenant":"UPPER","source":"x"}}`,
		"start-no-attempt": `{"seq":1,"kind":"start","job":"j1"}`,
		"done-no-state":    `{"seq":1,"kind":"done","job":"j1"}`,
		"done-nonterminal": `{"seq":1,"kind":"done","job":"j1","state":"running"}`,
	}
	for name, line := range cases {
		t.Run(name, func(t *testing.T) {
			_, err := ParseRecord([]byte(line))
			if err == nil {
				t.Fatalf("ParseRecord(%q) accepted", line)
			}
			if !errors.Is(err, ErrCorruptWAL) {
				t.Fatalf("error %v does not wrap ErrCorruptWAL", err)
			}
			var re *RecordError
			if !errors.As(err, &re) {
				t.Fatalf("error %T is not a *RecordError", err)
			}
		})
	}
}

func TestRecordErrorMentionsLine(t *testing.T) {
	e := &RecordError{Line: 7, Reason: "boom"}
	if !strings.Contains(e.Error(), "line 7") {
		t.Fatalf("error %q does not mention the line", e.Error())
	}
}
