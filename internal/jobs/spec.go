// Package jobs is the crash-safe multi-tenant job service layered on the
// hardened flow runner (internal/core): a durable queue whose every state
// transition is committed to an append-only write-ahead log with
// fsync-on-commit, a worker pool running jobs through the retrying runner,
// per-tenant token-bucket admission control with queue-depth backpressure,
// and replay-on-startup recovery so a process killed mid-job resumes with
// no acked job lost and no job completed twice.
//
// The package is the service half of the ROADMAP's compile-farm item: the
// fpgaweb job lifecycle API (POST /jobs, GET /jobs/{id}, DELETE /jobs/{id},
// GET /jobs/{id}/artifacts) is a thin HTTP veneer over Service, and every
// recovery invariant is enforced by the chaos suite in chaos_test.go.
// See docs/ROBUSTNESS.md for the state machine, WAL format and guarantees.
package jobs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"strings"

	"fpgaflow/internal/core"
)

// MaxSourceBytes bounds the design source accepted in a job spec. It
// matches the HTTP-side http.MaxBytesReader limit so a spec that decodes
// here is also submittable over the wire.
const MaxSourceBytes = 4 << 20

// ErrBadSpec is the sentinel wrapped by every spec validation failure, so
// transports can map the whole class to one status code (HTTP 400).
var ErrBadSpec = errors.New("jobs: invalid job spec")

// SpecError reports which field of a submitted spec is unacceptable and
// why. It wraps ErrBadSpec.
type SpecError struct {
	Field  string
	Reason string
}

func (e *SpecError) Error() string {
	return fmt.Sprintf("jobs: invalid job spec: %s: %s", e.Field, e.Reason)
}

// Unwrap ties every SpecError to the ErrBadSpec class.
func (e *SpecError) Unwrap() error { return ErrBadSpec }

// FlowOptions is the serializable subset of core.Options a tenant may set
// per job. It is deliberately pure data: everything here participates in
// the job fingerprint, and replaying a spec with equal options must drive
// an identical flow.
type FlowOptions struct {
	// Seed drives placement and activity estimation (0 is a valid seed).
	Seed int64 `json:"seed,omitempty"`
	// PlaceEffort scales annealing moves (0 selects the flow default).
	PlaceEffort float64 `json:"place_effort,omitempty"`
	// MinChannelWidth searches the smallest routable channel width.
	MinChannelWidth bool `json:"min_channel_width,omitempty"`
	// TimingDrivenPlace weights placement cost by net criticality.
	TimingDrivenPlace bool `json:"timing_driven_place,omitempty"`
	// TimingDrivenRoute weights routing base costs by RC delay.
	TimingDrivenRoute bool `json:"timing_driven_route,omitempty"`
	// SkipVerify disables the closing bitstream equivalence check.
	SkipVerify bool `json:"skip_verify,omitempty"`
	// Retries bounds hardened-runner attempts (0 selects the default
	// policy's three attempts; 1 disables retrying).
	Retries int `json:"retries,omitempty"`
}

// Spec is one submitted compile job: who wants it, what source to compile,
// and how. The zero value is invalid; Validate (or DecodeSpec) gates every
// entry point.
type Spec struct {
	// Tenant is the submitting principal; quotas and fairness are keyed by
	// it. Lowercase letters, digits, '-' and '_' only, 1..64 bytes.
	Tenant string `json:"tenant"`
	// Name labels the design (optional, informational).
	Name string `json:"name,omitempty"`
	// Source is the design text: VHDL or BLIF, detected like the GUI does.
	Source string `json:"source"`
	// Options tunes the flow run.
	Options FlowOptions `json:"options,omitempty"`
}

// DecodeSpec parses and validates a JSON job spec. Any failure — malformed
// JSON, unknown shape, or an invalid field — comes back as a typed error
// wrapping ErrBadSpec; DecodeSpec never panics on arbitrary input (the
// FuzzDecodeSpec target enforces this).
func DecodeSpec(data []byte) (Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return Spec{}, &SpecError{Field: "body", Reason: err.Error()}
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// Validate checks the spec's field constraints.
func (s *Spec) Validate() error {
	if s.Tenant == "" {
		return &SpecError{Field: "tenant", Reason: "must be non-empty"}
	}
	if len(s.Tenant) > 64 {
		return &SpecError{Field: "tenant", Reason: "longer than 64 bytes"}
	}
	for _, r := range s.Tenant {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' && r != '_' {
			return &SpecError{Field: "tenant", Reason: fmt.Sprintf("character %q not in [a-z0-9_-]", r)}
		}
	}
	if strings.TrimSpace(s.Source) == "" {
		return &SpecError{Field: "source", Reason: "must be non-empty"}
	}
	if len(s.Source) > MaxSourceBytes {
		return &SpecError{Field: "source", Reason: fmt.Sprintf("%d bytes exceeds the %d-byte limit", len(s.Source), MaxSourceBytes)}
	}
	if len(s.Name) > 256 {
		return &SpecError{Field: "name", Reason: "longer than 256 bytes"}
	}
	o := s.Options
	if o.Retries < 0 || o.Retries > 16 {
		return &SpecError{Field: "options.retries", Reason: "must be in [0, 16]"}
	}
	if o.PlaceEffort < 0 || o.PlaceEffort > 100 {
		return &SpecError{Field: "options.place_effort", Reason: "must be in [0, 100]"}
	}
	return nil
}

// Fingerprint is the job's content identity: a hex SHA-256 over the source
// text and every flow-affecting option, length-prefixed so field
// boundaries cannot alias. Two specs with equal fingerprints describe the
// same deterministic compilation (the tenant and display name are
// intentionally excluded), which is what makes crash-replay idempotent:
// re-running a recovered job reproduces the same artifacts — the same
// input+options keying idea rrgraph.Cache uses for RR graphs.
func (s *Spec) Fingerprint() string {
	h := sha256.New()
	put := func(field string) {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(field)))
		_, _ = h.Write(n[:]) // hash.Hash writes never fail
		_, _ = h.Write([]byte(field))
	}
	put("v1")
	put(s.Source)
	o := s.Options
	put(fmt.Sprintf("%d|%g|%t|%t|%t|%t|%d",
		o.Seed, o.PlaceEffort, o.MinChannelWidth, o.TimingDrivenPlace,
		o.TimingDrivenRoute, o.SkipVerify, o.Retries))
	return hex.EncodeToString(h.Sum(nil))
}

// coreOptions maps the spec onto the hardened runner's options. The
// returned options carry no observability or event wiring; the service
// attaches its own per-run trace and bus.
func (s *Spec) coreOptions() core.Options {
	o := core.Options{
		Seed:              s.Options.Seed,
		PlaceEffort:       s.Options.PlaceEffort,
		MinChannelWidth:   s.Options.MinChannelWidth,
		TimingDrivenPlace: s.Options.TimingDrivenPlace,
		TimingDrivenRoute: s.Options.TimingDrivenRoute,
		SkipVerify:        s.Options.SkipVerify,
		Retry:             core.DefaultRetryPolicy(),
	}
	if s.Options.Retries > 0 {
		o.Retry.MaxAttempts = s.Options.Retries
	}
	return o
}

// IsBLIF reports whether the source enters the flow at the BLIF stage
// (same sniff the GUI uses: a BLIF file leads with .model).
func (s *Spec) IsBLIF() bool {
	return strings.HasPrefix(strings.TrimSpace(s.Source), ".model")
}
