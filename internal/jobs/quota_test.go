package jobs

import (
	"errors"
	"testing"
	"time"
)

func TestTokenBucketBurstThenRefill(t *testing.T) {
	q := newQuotas(1, 2) // 1 token/s, burst of 2
	t0 := time.Unix(1000, 0)

	// The burst is available immediately.
	if err := q.admit("alice", t0); err != nil {
		t.Fatalf("first admit: %v", err)
	}
	if err := q.admit("alice", t0); err != nil {
		t.Fatalf("second admit (burst): %v", err)
	}

	// The third at the same instant is rejected with a useful hint.
	err := q.admit("alice", t0)
	if err == nil {
		t.Fatal("third admit at t0 accepted; burst is 2")
	}
	if !errors.Is(err, ErrOverQuota) {
		t.Fatalf("rejection %v does not wrap ErrOverQuota", err)
	}
	var qe *QuotaError
	if !errors.As(err, &qe) {
		t.Fatalf("rejection %T is not a *QuotaError", err)
	}
	if qe.Tenant != "alice" || qe.Reason != "rate" {
		t.Fatalf("rejection = %+v", qe)
	}
	if qe.RetryAfter <= 0 || qe.RetryAfter > 2*time.Second {
		t.Fatalf("RetryAfter = %v, want (0, 2s] at 1 token/s", qe.RetryAfter)
	}

	// After the hinted wait, a token has accumulated.
	if err := q.admit("alice", t0.Add(qe.RetryAfter)); err != nil {
		t.Fatalf("admit after RetryAfter: %v", err)
	}
}

func TestTokenBucketRefillCapsAtBurst(t *testing.T) {
	q := newQuotas(10, 3)
	t0 := time.Unix(1000, 0)
	if err := q.admit("bob", t0); err != nil {
		t.Fatal(err)
	}
	// An hour idle refills to burst (3), not rate*3600.
	late := t0.Add(time.Hour)
	for i := 0; i < 3; i++ {
		if err := q.admit("bob", late); err != nil {
			t.Fatalf("admit %d after idle: %v", i, err)
		}
	}
	if err := q.admit("bob", late); err == nil {
		t.Fatal("4th admit accepted: refill exceeded burst")
	}
}

// TestQuotaTenantIsolation: one tenant exhausting its bucket must not
// affect another tenant's admissions at the same instant.
func TestQuotaTenantIsolation(t *testing.T) {
	q := newQuotas(1, 1)
	t0 := time.Unix(1000, 0)
	if err := q.admit("noisy", t0); err != nil {
		t.Fatal(err)
	}
	if err := q.admit("noisy", t0); err == nil {
		t.Fatal("noisy tenant's second admit accepted")
	}
	if err := q.admit("quiet", t0); err != nil {
		t.Fatalf("quiet tenant rejected because of noisy tenant: %v", err)
	}
}

func TestQuotaDisabledWhenRateZero(t *testing.T) {
	q := newQuotas(0, 1)
	t0 := time.Unix(1000, 0)
	for i := 0; i < 100; i++ {
		if err := q.admit("anyone", t0); err != nil {
			t.Fatalf("admit %d with rate 0: %v", i, err)
		}
	}
	if got := q.tenants(); len(got) != 0 {
		t.Fatalf("disabled quotas tracked tenants: %v", got)
	}
}

func TestQuotaClockGoingBackwardIsSafe(t *testing.T) {
	q := newQuotas(1, 1)
	t0 := time.Unix(1000, 0)
	if err := q.admit("carol", t0); err != nil {
		t.Fatal(err)
	}
	// A clock step backwards must not mint tokens or panic.
	if err := q.admit("carol", t0.Add(-time.Hour)); err == nil {
		t.Fatal("backwards clock minted a token")
	}
}

func TestQuotaTenantsSorted(t *testing.T) {
	q := newQuotas(1, 1)
	t0 := time.Unix(1000, 0)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		q.admit(name, t0)
	}
	got := q.tenants()
	want := []string{"alpha", "mid", "zeta"}
	if len(got) != len(want) {
		t.Fatalf("tenants = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tenants = %v, want %v", got, want)
		}
	}
}
