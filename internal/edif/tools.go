package edif

import (
	"fmt"
	"strings"

	"fpgaflow/internal/netlist"
)

// Druid is the DRUID tool: it takes EDIF as produced by a synthesizer,
// verifies the structure the downstream tools rely on (single library, a
// unique top cell with contents, resolvable cell references), normalizes
// identifier renames, and emits canonical EDIF. Foreign EDIF with illegal
// identifiers is repaired via (rename ...) forms.
func Druid(text string) (string, error) {
	root, err := ParseSExpr(text)
	if err != nil {
		return "", err
	}
	if root.Head() != "edif" {
		return "", fmt.Errorf("druid: not an EDIF file (top form %q)", root.Head())
	}
	libs := root.FindAll("library")
	if len(libs) == 0 {
		return "", fmt.Errorf("druid: no library in EDIF")
	}
	if len(libs) > 1 {
		return "", fmt.Errorf("druid: %d libraries; flatten to one before mapping", len(libs))
	}
	lib := libs[0]
	topCount := 0
	for _, cell := range lib.FindAll("cell") {
		view := cell.Find("view")
		if view == nil {
			return "", fmt.Errorf("druid: cell %q has no view", safeName(cell.Arg(0)))
		}
		if view.Find("contents") != nil {
			topCount++
		}
	}
	if topCount == 0 {
		return "", fmt.Errorf("druid: no cell with contents (empty design)")
	}
	if topCount > 1 && root.Find("design") == nil {
		return "", fmt.Errorf("druid: %d candidate top cells and no (design ...) form", topCount)
	}
	normalizeNames(root)
	return Format(root), nil
}

// normalizeNames repairs identifiers: any defining atom that is not a legal
// EDIF identifier becomes a (rename ...) form.
func normalizeNames(e *SExpr) {
	if !e.IsList() {
		return
	}
	head := e.Head()
	defPos := -1
	switch head {
	case "cell", "view", "port", "instance", "net", "design", "edif", "library", "property":
		defPos = 1
	}
	if defPos > 0 && defPos < len(e.List) {
		d := e.List[defPos]
		if !d.IsList() && !d.Str {
			if safe := sanitizeID(d.Atom); safe != d.Atom {
				e.List[defPos] = list("rename", atom(safe), strAtom(d.Atom))
			}
		}
	}
	for _, c := range e.List {
		normalizeNames(c)
	}
}

// E2FMT is the EDIF-to-BLIF format translator: EDIF text in, BLIF text out.
func E2FMT(edifText string) (string, error) {
	nl, err := Read(edifText)
	if err != nil {
		return "", fmt.Errorf("e2fmt: %w", err)
	}
	return netlist.FormatBLIF(nl), nil
}

// BLIFToEDIF is the reverse translation, useful for tests and for feeding
// externally produced BLIF back into EDIF-based tools.
func BLIFToEDIF(blifText string) (string, error) {
	nl, err := netlist.ParseBLIF(blifText)
	if err != nil {
		return "", err
	}
	return Write(nl)
}

// IsEDIF sniffs whether text looks like EDIF.
func IsEDIF(text string) bool {
	trimmed := strings.TrimSpace(text)
	return strings.HasPrefix(strings.ToLower(trimmed), "(edif")
}
