package edif

import (
	"fmt"
	"sort"
	"strings"

	"fpgaflow/internal/netlist"
)

// Read parses EDIF text (as produced by Write, or any structurally similar
// netlist EDIF) back into a netlist.
func Read(text string) (*netlist.Netlist, error) {
	root, err := ParseSExpr(text)
	if err != nil {
		return nil, err
	}
	if root.Head() != "edif" {
		return nil, fmt.Errorf("edif: top form is %q, want edif", root.Head())
	}
	lib := root.Find("library")
	if lib == nil {
		return nil, fmt.Errorf("edif: no library")
	}

	// Index cells.
	type leaf struct {
		fanins int
		cover  netlist.Cover
		isDFF  bool
	}
	leafs := make(map[string]*leaf)
	var topCell *SExpr
	topName := ""
	design := root.Find("design")
	wantTop := ""
	if design != nil {
		if cr := design.Find("cellref"); cr != nil {
			wantTop = cr.AtomArg(0)
		}
	}
	for _, cell := range lib.FindAll("cell") {
		cname, _ := defName(cell.Arg(0))
		view := cell.Find("view")
		if view == nil {
			return nil, fmt.Errorf("edif: cell %q has no view", cname)
		}
		iface := view.Find("interface")
		if iface == nil {
			return nil, fmt.Errorf("edif: cell %q has no interface", cname)
		}
		if view.Find("contents") != nil {
			if wantTop == "" || safeName(cell.Arg(0)) == wantTop {
				topCell = cell
				_, topName = defName(cell.Arg(0))
			}
			continue
		}
		// Leaf cell.
		lf := &leaf{}
		for _, p := range iface.FindAll("port") {
			name, _ := defName(p.Arg(0))
			dir := ""
			if d := p.Find("direction"); d != nil {
				dir = strings.ToUpper(d.AtomArg(0))
			}
			if dir == "INPUT" {
				lf.fanins++
			}
			_ = name
		}
		if prop := findProperty(view, "cover"); prop != "" {
			cover, err := parseCoverString(prop, lf.fanins)
			if err != nil {
				return nil, fmt.Errorf("edif: cell %q: %w", cname, err)
			}
			lf.cover = cover
		} else if cname == "dff" {
			lf.isDFF = true
		} else {
			return nil, fmt.Errorf("edif: leaf cell %q lacks a cover property", cname)
		}
		leafs[safeName(cell.Arg(0))] = lf
	}
	if topCell == nil {
		return nil, fmt.Errorf("edif: no top cell with contents")
	}

	view := topCell.Find("view")
	iface := view.Find("interface")
	contents := view.Find("contents")
	nl := netlist.New(topName)

	// Ports.
	type portInfo struct {
		orig string
		dir  string
	}
	ports := make(map[string]portInfo)
	var portOrder []string
	for _, p := range iface.FindAll("port") {
		safe, orig := safeName(p.Arg(0)), ""
		_, orig = defName(p.Arg(0))
		dir := "INPUT"
		if d := p.Find("direction"); d != nil {
			dir = strings.ToUpper(d.AtomArg(0))
		}
		ports[safe] = portInfo{orig, dir}
		portOrder = append(portOrder, safe)
	}

	// Instances.
	type instInfo struct {
		orig string
		leaf *leaf
		sexp *SExpr
	}
	insts := make(map[string]*instInfo)
	for _, in := range contents.FindAll("instance") {
		safe := safeName(in.Arg(0))
		_, orig := defName(in.Arg(0))
		vr := in.Find("viewref")
		if vr == nil {
			return nil, fmt.Errorf("edif: instance %q has no viewRef", safe)
		}
		cr := vr.Find("cellref")
		if cr == nil {
			return nil, fmt.Errorf("edif: instance %q has no cellRef", safe)
		}
		lf := leafs[cr.AtomArg(0)]
		if lf == nil {
			return nil, fmt.Errorf("edif: instance %q references unknown cell %q (hierarchical EDIF is not supported)",
				safe, cr.AtomArg(0))
		}
		insts[safe] = &instInfo{orig: orig, leaf: lf, sexp: in}
	}

	// Nets: find driver and sinks.
	type pinRef struct {
		inst string // "" = top port
		pin  string
	}
	netDriver := make(map[string]pinRef) // net safe-name -> driver
	pinNet := make(map[pinRef]string)    // consumer pin -> net safe-name
	netOrig := make(map[string]string)
	var netOrder []string
	for _, net := range contents.FindAll("net") {
		safe := safeName(net.Arg(0))
		_, orig := defName(net.Arg(0))
		netOrig[safe] = orig
		netOrder = append(netOrder, safe)
		joined := net.Find("joined")
		if joined == nil {
			return nil, fmt.Errorf("edif: net %q has no joined", safe)
		}
		for _, pr := range joined.FindAll("portref") {
			pin := pr.AtomArg(0)
			instRef := ""
			if ir := pr.Find("instanceref"); ir != nil {
				instRef = ir.AtomArg(0)
			}
			ref := pinRef{instRef, pin}
			isDriver := false
			if instRef == "" {
				pi, ok := ports[pin]
				if !ok {
					return nil, fmt.Errorf("edif: net %q references unknown port %q", safe, pin)
				}
				isDriver = pi.dir == "INPUT"
			} else {
				if insts[instRef] == nil {
					return nil, fmt.Errorf("edif: net %q references unknown instance %q", safe, instRef)
				}
				isDriver = pin == "o" || pin == "q"
			}
			if isDriver {
				if prev, dup := netDriver[safe]; dup && prev != ref {
					return nil, fmt.Errorf("edif: net %q has two drivers", safe)
				}
				netDriver[safe] = ref
			} else {
				if prev, dup := pinNet[ref]; dup && prev != safe {
					return nil, fmt.Errorf("edif: pin %v on two nets", ref)
				}
				pinNet[ref] = safe
			}
		}
	}

	// Build nodes. Signal name of a net = driver's identity: top input port
	// name, or the net's original name for instance outputs.
	netSignal := make(map[string]string)
	for _, safe := range netOrder {
		drv, ok := netDriver[safe]
		if !ok {
			return nil, fmt.Errorf("edif: net %q has no driver", netOrig[safe])
		}
		if drv.inst == "" {
			netSignal[safe] = ports[drv.pin].orig
		} else {
			netSignal[safe] = netOrig[safe]
		}
	}
	// Primary inputs in port order.
	for _, safe := range portOrder {
		if ports[safe].dir == "INPUT" {
			if _, err := nl.AddInput(ports[safe].orig); err != nil {
				return nil, err
			}
		}
	}
	// Placeholders for instance outputs.
	instNet := make(map[string]string) // instance -> output net
	for _, safe := range netOrder {
		drv := netDriver[safe]
		if drv.inst == "" {
			continue
		}
		instNet[drv.inst] = safe
	}
	instOrder := make([]string, 0, len(insts))
	for inst := range insts {
		instOrder = append(instOrder, inst)
	}
	sort.Strings(instOrder)
	for _, inst := range instOrder {
		info := insts[inst]
		outNet, ok := instNet[inst]
		if !ok {
			continue // output dangles: instance is dead
		}
		sig := netSignal[outNet]
		if info.leaf.isDFF {
			init := byte('3')
			if p := findProperty(info.sexp, "init"); p != "" {
				init = p[0]
			}
			clock := findProperty(info.sexp, "clock")
			q, err := nl.AddLatch(sig, nil, init, clock)
			if err != nil {
				return nil, err
			}
			q.Fanin = nil
		} else {
			if _, err := nl.AddLogic(sig, nil, netlist.Cover{Value: netlist.LitOne}); err != nil {
				return nil, err
			}
		}
	}
	// Connect fanins.
	for _, inst := range instOrder {
		info := insts[inst]
		outNet, ok := instNet[inst]
		if !ok {
			continue
		}
		node := nl.Node(netSignal[outNet])
		if info.leaf.isDFF {
			dNet, ok := pinNet[pinRef{inst, "d"}]
			if !ok {
				return nil, fmt.Errorf("edif: dff %q has unconnected d", inst)
			}
			d := nl.Node(netSignal[dNet])
			if d == nil {
				return nil, fmt.Errorf("edif: dff %q: driver of %q missing", inst, netSignal[dNet])
			}
			node.Fanin = []*netlist.Node{d}
			continue
		}
		fanin := make([]*netlist.Node, info.leaf.fanins)
		for i := 0; i < info.leaf.fanins; i++ {
			netName, ok := pinNet[pinRef{inst, fmt.Sprintf("i%d", i)}]
			if !ok {
				return nil, fmt.Errorf("edif: instance %q pin i%d unconnected", inst, i)
			}
			f := nl.Node(netSignal[netName])
			if f == nil {
				return nil, fmt.Errorf("edif: instance %q: driver of %q missing", inst, netSignal[netName])
			}
			fanin[i] = f
		}
		node.Fanin = fanin
		node.Cover = info.leaf.cover.Clone()
	}
	// Outputs.
	for _, safe := range portOrder {
		pi := ports[safe]
		if pi.dir != "OUTPUT" {
			continue
		}
		netName, ok := pinNet[pinRef{"", safe}]
		if !ok {
			return nil, fmt.Errorf("edif: output port %q unconnected", pi.orig)
		}
		sig := netSignal[netName]
		src := nl.Node(sig)
		if src == nil {
			return nil, fmt.Errorf("edif: output %q: no driver node %q", pi.orig, sig)
		}
		if sig != pi.orig {
			if _, err := nl.AddLogic(pi.orig, []*netlist.Node{src},
				netlist.Cover{Cubes: []netlist.Cube{{netlist.LitOne}}, Value: netlist.LitOne}); err != nil {
				return nil, err
			}
		}
		nl.MarkOutput(pi.orig)
	}
	if err := nl.Check(); err != nil {
		return nil, fmt.Errorf("edif: reconstructed netlist invalid: %w", err)
	}
	return nl, nil
}

// defName extracts (safe, original) from a name position: either a bare
// atom or (rename safe "orig").
func defName(e *SExpr) (safe, orig string) {
	if e == nil {
		return "", ""
	}
	if e.IsList() && e.Head() == "rename" {
		return e.AtomArg(0), e.AtomArg(1)
	}
	return e.Atom, e.Atom
}

func safeName(e *SExpr) string {
	s, _ := defName(e)
	return s
}

// findProperty returns the string value of a named property under a form.
func findProperty(form *SExpr, name string) string {
	for _, p := range form.FindAll("property") {
		if strings.ToLower(safeName(p.Arg(0))) != strings.ToLower(name) {
			continue
		}
		if s := p.Find("string"); s != nil {
			return s.AtomArg(0)
		}
	}
	return ""
}
