package edif

import (
	"strings"
	"testing"

	"fpgaflow/internal/netlist"
	"fpgaflow/internal/sim"
	"fpgaflow/internal/vhdl"
)

const seqBLIF = `
.model seq
.inputs a b cin
.outputs sum q
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b t
11 1
.names t q dq
10 1
01 1
.latch dq q re clk 1
.end
`

func TestSExprRoundTrip(t *testing.T) {
	src := `(edif top (edifVersion 2 0 0) (library L (cell c (view v (interface (port p (direction INPUT)))))) (design d (cellRef c)))`
	e, err := ParseSExpr(src)
	if err != nil {
		t.Fatal(err)
	}
	if e.Head() != "edif" {
		t.Fatalf("head = %q", e.Head())
	}
	text := Format(e)
	e2, err := ParseSExpr(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if Format(e2) != text {
		t.Fatal("formatting not canonical")
	}
}

func TestSExprErrors(t *testing.T) {
	for _, src := range []string{"(a (b)", "a)", `(a "unterminated)`, "", "(a) trailing"} {
		if _, err := ParseSExpr(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	nl, err := netlist.ParseBLIF(seqBLIF)
	if err != nil {
		t.Fatal(err)
	}
	text, err := Write(nl)
	if err != nil {
		t.Fatal(err)
	}
	if !IsEDIF(text) {
		t.Fatal("output does not sniff as EDIF")
	}
	back, err := Read(text)
	if err != nil {
		t.Fatalf("read: %v\n%s", err, text)
	}
	if err := sim.CheckEquivalent(nl, back, 10, 300, 1); err != nil {
		t.Fatalf("roundtrip changed function: %v", err)
	}
	// Latch init must survive.
	q := back.Node("q")
	if q == nil || q.Kind != netlist.KindLatch || q.Init != '1' {
		t.Fatalf("latch lost: %+v", q)
	}
}

func TestWriteReadWithBracketNames(t *testing.T) {
	// Vector bit names like v[3] require (rename ...) forms.
	nl := netlist.New("vec")
	a, _ := nl.AddInput("a[0]")
	b, _ := nl.AddInput("a[1]")
	nl.AddLogic("y[0]", []*netlist.Node{a, b},
		netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("11")}, Value: netlist.LitOne})
	nl.MarkOutput("y[0]")
	text, err := Write(nl)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "rename") {
		t.Error("no rename forms for bracketed names")
	}
	back, err := Read(text)
	if err != nil {
		t.Fatal(err)
	}
	if back.Node("y[0]") == nil {
		t.Fatalf("original name lost: %v", back.SortedNodeNames())
	}
	if err := sim.CheckEquivalent(nl, back, 10, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestE2FMT(t *testing.T) {
	nl, _ := netlist.ParseBLIF(seqBLIF)
	text, err := Write(nl)
	if err != nil {
		t.Fatal(err)
	}
	blif, err := E2FMT(text)
	if err != nil {
		t.Fatal(err)
	}
	back, err := netlist.ParseBLIF(blif)
	if err != nil {
		t.Fatalf("E2FMT output not BLIF: %v\n%s", err, blif)
	}
	if err := sim.CheckEquivalent(nl, back, 10, 300, 2); err != nil {
		t.Fatal(err)
	}
}

func TestBLIFToEDIF(t *testing.T) {
	text, err := BLIFToEDIF(seqBLIF)
	if err != nil {
		t.Fatal(err)
	}
	if !IsEDIF(text) {
		t.Fatal("not EDIF")
	}
}

func TestDruidAcceptsAndNormalizes(t *testing.T) {
	nl, _ := netlist.ParseBLIF(seqBLIF)
	text, err := Write(nl)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Druid(text)
	if err != nil {
		t.Fatal(err)
	}
	// Druid output must still read correctly.
	back, err := Read(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckEquivalent(nl, back, 10, 300, 3); err != nil {
		t.Fatal(err)
	}
}

func TestDruidRejectsBroken(t *testing.T) {
	cases := []string{
		"(notedif x)",
		"(edif x (edifVersion 2 0 0))", // no library
		"(edif x (library L (cell c (cellType GENERIC))))", // cell without view
	}
	for _, src := range cases {
		if _, err := Druid(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestReadRejectsContention(t *testing.T) {
	nl, _ := netlist.ParseBLIF(seqBLIF)
	text, _ := Write(nl)
	// Corrupt: give a second driver to a net by swapping an i0 pin to o.
	bad := strings.Replace(text, "(portRef i0", "(portRef o", 1)
	if _, err := Read(bad); err == nil {
		t.Fatal("two-driver net accepted")
	}
}

func TestVHDLToEDIFToBLIF(t *testing.T) {
	// The real DIVINER path: VHDL -> netlist -> EDIF -> (DRUID) -> BLIF.
	src := `
entity majority is
  port (a, b, c : in std_logic; y : out std_logic);
end majority;
architecture rtl of majority is
begin
  y <= (a and b) or (a and c) or (b and c);
end rtl;
`
	d, err := vhdl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := vhdl.Elaborate(d, "")
	if err != nil {
		t.Fatal(err)
	}
	ed, err := Write(nl)
	if err != nil {
		t.Fatal(err)
	}
	normalized, err := Druid(ed)
	if err != nil {
		t.Fatal(err)
	}
	blif, err := E2FMT(normalized)
	if err != nil {
		t.Fatal(err)
	}
	back, err := netlist.ParseBLIF(blif)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckEquivalent(nl, back, 10, 0, 4); err != nil {
		t.Fatal(err)
	}
}

func TestConstantsSurviveRoundTrip(t *testing.T) {
	// Regression: constant-0 (empty cover) and constant-1 (tautology cube)
	// cells must stay distinct through the cover encoding.
	nl := netlist.New("consts")
	one, _ := nl.AddLogic("one", nil, netlist.Cover{Cubes: []netlist.Cube{{}}, Value: netlist.LitOne})
	zero, _ := nl.AddLogic("zero", nil, netlist.Cover{Value: netlist.LitOne})
	a, _ := nl.AddInput("a")
	nl.AddLogic("y1", []*netlist.Node{a, one},
		netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("11")}, Value: netlist.LitOne})
	nl.AddLogic("y0", []*netlist.Node{a, zero},
		netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("1-"), netlist.Cube("-1")}, Value: netlist.LitOne})
	nl.MarkOutput("y1")
	nl.MarkOutput("y0")
	text, err := Write(nl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Read(text)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckEquivalent(nl, back, 10, 0, 9); err != nil {
		t.Fatalf("constants corrupted: %v", err)
	}
}
