// Package edif implements the EDIF 2.0.0 subset used between the flow's
// front-end tools: DIVINER emits the synthesized netlist as EDIF, DRUID
// normalizes foreign EDIF (name sanitization, single-top check), and E2FMT
// converts EDIF to BLIF via the netlist IR.
package edif

import (
	"fmt"
	"strings"
	"unicode"
)

// SExpr is an EDIF s-expression: either an atom or a list.
type SExpr struct {
	// Atom is the token text for leaves ("" for lists). Quoted strings keep
	// their quotes stripped with Str=true.
	Atom string
	Str  bool
	List []*SExpr
}

// IsList reports whether the node is a list.
func (s *SExpr) IsList() bool { return s.Atom == "" && !s.Str }

// Head returns the first atom of a list (the form's keyword), or "".
func (s *SExpr) Head() string {
	if s.IsList() && len(s.List) > 0 && !s.List[0].IsList() {
		return strings.ToLower(s.List[0].Atom)
	}
	return ""
}

// Find returns the first child list whose head matches key.
func (s *SExpr) Find(key string) *SExpr {
	for _, c := range s.List {
		if c.IsList() && c.Head() == key {
			return c
		}
	}
	return nil
}

// FindAll returns all child lists with the given head.
func (s *SExpr) FindAll(key string) []*SExpr {
	var out []*SExpr
	for _, c := range s.List {
		if c.IsList() && c.Head() == key {
			out = append(out, c)
		}
	}
	return out
}

// Arg returns the i-th argument (after the head) or nil.
func (s *SExpr) Arg(i int) *SExpr {
	if i+1 < len(s.List) {
		return s.List[i+1]
	}
	return nil
}

// AtomArg returns the i-th argument's atom text.
func (s *SExpr) AtomArg(i int) string {
	a := s.Arg(i)
	if a == nil {
		return ""
	}
	return a.Atom
}

// ParseSExpr parses a single s-expression from EDIF text.
func ParseSExpr(text string) (*SExpr, error) {
	p := &sparser{src: text}
	p.skipSpace()
	e, err := p.parse()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("edif: trailing input at offset %d", p.pos)
	}
	return e, nil
}

type sparser struct {
	src string
	pos int
}

func (p *sparser) skipSpace() {
	for p.pos < len(p.src) && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

func (p *sparser) parse() (*SExpr, error) {
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("edif: unexpected end of input")
	}
	switch c := p.src[p.pos]; {
	case c == '(':
		p.pos++
		node := &SExpr{}
		for {
			p.skipSpace()
			if p.pos >= len(p.src) {
				return nil, fmt.Errorf("edif: unterminated list")
			}
			if p.src[p.pos] == ')' {
				p.pos++
				return node, nil
			}
			child, err := p.parse()
			if err != nil {
				return nil, err
			}
			node.List = append(node.List, child)
		}
	case c == ')':
		return nil, fmt.Errorf("edif: unexpected ')' at offset %d", p.pos)
	case c == '"':
		p.pos++
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] != '"' {
			p.pos++
		}
		if p.pos >= len(p.src) {
			return nil, fmt.Errorf("edif: unterminated string")
		}
		s := p.src[start:p.pos]
		p.pos++
		return &SExpr{Atom: s, Str: true}, nil
	default:
		start := p.pos
		for p.pos < len(p.src) {
			c := p.src[p.pos]
			if unicode.IsSpace(rune(c)) || c == '(' || c == ')' || c == '"' {
				break
			}
			p.pos++
		}
		if start == p.pos {
			return nil, fmt.Errorf("edif: empty atom at offset %d", start)
		}
		return &SExpr{Atom: p.src[start:p.pos]}, nil
	}
}

// Format renders an s-expression with indentation.
func Format(s *SExpr) string {
	var sb strings.Builder
	writeSExpr(&sb, s, 0)
	sb.WriteByte('\n')
	return sb.String()
}

func writeSExpr(sb *strings.Builder, s *SExpr, depth int) {
	if !s.IsList() {
		if s.Str {
			sb.WriteByte('"')
			sb.WriteString(s.Atom)
			sb.WriteByte('"')
		} else {
			sb.WriteString(s.Atom)
		}
		return
	}
	sb.WriteByte('(')
	flat := true
	for _, c := range s.List {
		if c.IsList() {
			flat = false
		}
	}
	if flat || totalAtoms(s) < 6 {
		for i, c := range s.List {
			if i > 0 {
				sb.WriteByte(' ')
			}
			writeSExpr(sb, c, depth+1)
		}
	} else {
		for i, c := range s.List {
			if i == 0 {
				writeSExpr(sb, c, depth+1)
				continue
			}
			sb.WriteByte('\n')
			sb.WriteString(strings.Repeat("  ", depth+1))
			writeSExpr(sb, c, depth+1)
		}
	}
	sb.WriteByte(')')
}

func totalAtoms(s *SExpr) int {
	if !s.IsList() {
		return 1
	}
	n := 0
	for _, c := range s.List {
		n += totalAtoms(c)
	}
	return n
}

// list builds a list node from a head atom and children.
func list(head string, children ...*SExpr) *SExpr {
	node := &SExpr{List: []*SExpr{{Atom: head}}}
	node.List = append(node.List, children...)
	return node
}

func atom(a string) *SExpr    { return &SExpr{Atom: a} }
func strAtom(a string) *SExpr { return &SExpr{Atom: a, Str: true} }
