package edif

import (
	"fmt"
	"sort"
	"strings"

	"fpgaflow/internal/logic"
	"fpgaflow/internal/netlist"
)

// Write serializes a netlist as EDIF 2.0.0: one leaf cell per distinct
// logic function (with its cover carried as a "cover" property), a dff cell
// for latches, and a single top cell whose contents instantiate them and
// join the nets.
func Write(nl *netlist.Netlist) (string, error) {
	names := newNamer()

	// Collect leaf cells.
	type leafCell struct {
		name   string
		fanins int
		cover  string
	}
	cellOf := make(map[string]*leafCell) // canonical cover -> cell
	var leafs []*leafCell
	usesDFF := false
	for _, n := range nl.Nodes() {
		switch n.Kind {
		case netlist.KindLogic:
			key := fmt.Sprintf("%d;%s", len(n.Fanin), logic.CanonicalCover(n.Cover))
			if cellOf[key] == nil {
				c := &leafCell{name: fmt.Sprintf("f%d", len(leafs)), fanins: len(n.Fanin),
					cover: coverString(n.Cover)}
				cellOf[key] = c
				leafs = append(leafs, c)
			}
		case netlist.KindLatch:
			usesDFF = true
		}
	}

	lib := list("library", atom("DESIGNS"), list("edifLevel", atom("0")),
		list("technology", list("numberDefinition")))
	for _, c := range leafs {
		iface := list("interface")
		for i := 0; i < c.fanins; i++ {
			iface.List = append(iface.List,
				list("port", atom(fmt.Sprintf("i%d", i)), list("direction", atom("INPUT"))))
		}
		iface.List = append(iface.List, list("port", atom("o"), list("direction", atom("OUTPUT"))))
		view := list("view", atom("netlist"), list("viewType", atom("NETLIST")), iface,
			list("property", atom("cover"), list("string", strAtom(c.cover))))
		lib.List = append(lib.List, list("cell", atom(c.name),
			list("cellType", atom("GENERIC")), view))
	}
	if usesDFF {
		iface := list("interface",
			list("port", atom("d"), list("direction", atom("INPUT"))),
			list("port", atom("q"), list("direction", atom("OUTPUT"))))
		lib.List = append(lib.List, list("cell", atom("dff"),
			list("cellType", atom("GENERIC")),
			list("view", atom("netlist"), list("viewType", atom("NETLIST")), iface)))
	}

	// Top cell.
	iface := list("interface")
	for _, in := range nl.Inputs {
		iface.List = append(iface.List,
			list("port", names.ref(in.Name), list("direction", atom("INPUT"))))
	}
	for _, o := range nl.Outputs {
		iface.List = append(iface.List,
			list("port", names.ref("po:"+o), list("direction", atom("OUTPUT"))))
	}
	contents := list("contents")
	for _, n := range nl.Nodes() {
		switch n.Kind {
		case netlist.KindLogic:
			key := fmt.Sprintf("%d;%s", len(n.Fanin), logic.CanonicalCover(n.Cover))
			inst := list("instance", names.ref("inst:"+n.Name),
				list("viewRef", atom("netlist"), list("cellRef", atom(cellOf[key].name))))
			contents.List = append(contents.List, inst)
		case netlist.KindLatch:
			inst := list("instance", names.ref("inst:"+n.Name),
				list("viewRef", atom("netlist"), list("cellRef", atom("dff"))))
			inst.List = append(inst.List,
				list("property", atom("init"), list("string", strAtom(string(n.Init)))))
			if n.Clock != "" {
				inst.List = append(inst.List,
					list("property", atom("clock"), list("string", strAtom(n.Clock))))
			}
			contents.List = append(contents.List, inst)
		}
	}
	// Nets: one per driving signal.
	for _, n := range nl.Nodes() {
		joined := list("joined")
		switch n.Kind {
		case netlist.KindInput:
			joined.List = append(joined.List, list("portRef", names.refPlain(n.Name)))
		case netlist.KindLogic:
			joined.List = append(joined.List, list("portRef", atom("o"),
				list("instanceRef", names.refPlain("inst:"+n.Name))))
		case netlist.KindLatch:
			joined.List = append(joined.List, list("portRef", atom("q"),
				list("instanceRef", names.refPlain("inst:"+n.Name))))
		}
		// Sinks: every consumer pin.
		for _, consumer := range nl.Nodes() {
			for i, f := range consumer.Fanin {
				if f != n {
					continue
				}
				pin := fmt.Sprintf("i%d", i)
				if consumer.Kind == netlist.KindLatch {
					pin = "d"
				}
				joined.List = append(joined.List, list("portRef", atom(pin),
					list("instanceRef", names.refPlain("inst:"+consumer.Name))))
			}
		}
		if nl.IsOutput(n.Name) {
			joined.List = append(joined.List, list("portRef", names.refPlain("po:"+n.Name)))
		}
		if len(joined.List) < 2 {
			continue // dangling net: no sinks
		}
		contents.List = append(contents.List, list("net", names.ref("net:"+n.Name), joined))
	}
	topView := list("view", atom("netlist"), list("viewType", atom("NETLIST")), iface, contents)
	topName := names.ref("cell:" + nl.Name)
	lib.List = append(lib.List, list("cell", topName, list("cellType", atom("GENERIC")), topView))

	root := list("edif", names.ref("design:"+nl.Name),
		list("edifVersion", atom("2"), atom("0"), atom("0")),
		list("edifLevel", atom("0")),
		list("keywordMap", list("keywordLevel", atom("0"))),
		lib,
		list("design", names.ref("d:"+nl.Name),
			list("cellRef", plainOf(topName), list("libraryRef", atom("DESIGNS")))))
	return Format(root), nil
}

// coverString encodes a cover as "phase|cube|cube". The zero-width cube of
// a constant-1 cell is written as "T" so constant 0 (no cubes) and constant
// 1 (one tautology cube) stay distinct.
func coverString(c netlist.Cover) string {
	cubes := make([]string, len(c.Cubes))
	for i, cube := range c.Cubes {
		if len(cube) == 0 {
			cubes[i] = "T"
		} else {
			cubes[i] = string(cube)
		}
	}
	sort.Strings(cubes)
	phase := "1"
	if !c.OnSet() {
		phase = "0"
	}
	if len(cubes) == 0 {
		return phase
	}
	return phase + "|" + strings.Join(cubes, "|")
}

// parseCoverString inverts coverString.
func parseCoverString(s string, fanins int) (netlist.Cover, error) {
	parts := strings.Split(s, "|")
	if len(parts) < 1 {
		return netlist.Cover{}, fmt.Errorf("edif: empty cover")
	}
	var c netlist.Cover
	switch parts[0] {
	case "1":
		c.Value = netlist.LitOne
	case "0":
		c.Value = netlist.LitZero
	default:
		return netlist.Cover{}, fmt.Errorf("edif: bad cover phase %q", parts[0])
	}
	for _, cube := range parts[1:] {
		if cube == "" {
			continue
		}
		if cube == "T" {
			// Tautology row of a constant-1 cell.
			if fanins != 0 {
				return netlist.Cover{}, fmt.Errorf("edif: tautology cube on %d-input cell", fanins)
			}
			c.Cubes = append(c.Cubes, netlist.Cube{})
			continue
		}
		if len(cube) != fanins {
			return netlist.Cover{}, fmt.Errorf("edif: cube %q width != %d", cube, fanins)
		}
		for _, ch := range cube {
			if ch != '0' && ch != '1' && ch != '-' {
				return netlist.Cover{}, fmt.Errorf("edif: bad cube %q", cube)
			}
		}
		c.Cubes = append(c.Cubes, netlist.Cube(cube))
	}
	return c, nil
}

// namer maps arbitrary signal names to EDIF-safe identifiers, emitting
// (rename safe "original") where needed. Keys carry a namespace prefix
// ("inst:x") so instances, nets and ports cannot collide.
type namer struct {
	byKey map[string]*SExpr
	used  map[string]bool
}

func newNamer() *namer {
	return &namer{byKey: make(map[string]*SExpr), used: make(map[string]bool)}
}

// ref returns the defining occurrence (possibly a rename form).
func (nm *namer) ref(key string) *SExpr {
	if e, ok := nm.byKey[key]; ok {
		return cloneSExpr(e)
	}
	orig := key
	if i := strings.IndexByte(key, ':'); i >= 0 {
		orig = key[i+1:]
	}
	safe := sanitizeID(orig)
	base := safe
	for i := 2; nm.used[safe]; i++ {
		safe = fmt.Sprintf("%s_%d", base, i)
	}
	nm.used[safe] = true
	var e *SExpr
	if safe == orig {
		e = atom(safe)
	} else {
		e = list("rename", atom(safe), strAtom(orig))
	}
	nm.byKey[key] = e
	return cloneSExpr(e)
}

// refPlain returns just the safe identifier for reference positions.
func (nm *namer) refPlain(key string) *SExpr {
	return plainOf(nm.ref(key))
}

func plainOf(e *SExpr) *SExpr {
	if e.IsList() && e.Head() == "rename" {
		return atom(e.AtomArg(0))
	}
	return atom(e.Atom)
}

func cloneSExpr(e *SExpr) *SExpr {
	c := &SExpr{Atom: e.Atom, Str: e.Str}
	for _, ch := range e.List {
		c.List = append(c.List, cloneSExpr(ch))
	}
	return c
}

// sanitizeID maps a string to a legal EDIF identifier.
func sanitizeID(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	out := sb.String()
	if out == "" || (out[0] >= '0' && out[0] <= '9') {
		out = "n" + out
	}
	return out
}
