package edif

import (
	"os"
	"testing"
)

// FuzzRead exercises the whole EDIF ingestion path (s-expression parser
// plus netlist construction) on arbitrary text: it must reject garbage
// with an error, never panic or hang.
func FuzzRead(f *testing.F) {
	if blif, err := os.ReadFile("../../examples/netlists/count2.blif"); err == nil {
		if text, err := BLIFToEDIF(string(blif)); err == nil {
			f.Add(text)
		}
	}
	f.Add("(edif top (library work))")
	f.Add("(edif (unclosed")
	f.Add("))) (")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 64<<10 {
			t.Skip("oversized input")
		}
		nl, err := Read(src)
		if err == nil && nl == nil {
			t.Fatal("Read returned nil netlist with nil error")
		}
	})
}
