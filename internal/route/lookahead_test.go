package route

import (
	"container/heap"
	"testing"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/rrgraph"
)

type dbgItem struct {
	node int
	cost float64
}
type dbgPQ []dbgItem

func (q dbgPQ) Len() int            { return len(q) }
func (q dbgPQ) Less(i, j int) bool  { return q[i].cost < q[j].cost }
func (q dbgPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *dbgPQ) Push(x interface{}) { *q = append(*q, x.(dbgItem)) }
func (q *dbgPQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// TestLookaheadAdmissible proves the A* bound admissible: for every RR
// node and every sink of a paper-architecture fabric, h(node) must not
// exceed the true uncongested base cost of the cheapest node->sink path
// (computed by reverse Dijkstra over base costs). Admissibility is what
// makes the lookahead QoR-neutral — the first pop of the target then
// always carries an optimal cost, so A* and plain Dijkstra return routes
// of identical cost.
func TestLookaheadAdmissible(t *testing.T) {
	a := arch.Paper()
	a.Cols, a.Rows = 6, 5
	a.Routing.ChannelWidth = 4
	g, err := rrgraph.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	base := func(id int) float64 {
		n := g.Nodes[id]
		if n.Type == rrgraph.Sink {
			return 0.1
		}
		return 1.0
	}
	// reverse adjacency
	radj := make([][]int32, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, e := range n.Edges {
			radj[e] = append(radj[e], int32(n.ID))
		}
	}
	hr := newHeur(g, false, 0, true)
	bad := 0
	for _, tn := range g.Nodes {
		if tn.Type != rrgraph.Sink {
			continue
		}
		// reverse dijkstra: dist[n] = min cost of nodes AFTER n on a path
		// n -> ... -> sink, i.e. sum of base costs of successors incl sink.
		dist := make([]float64, len(g.Nodes))
		seen := make([]bool, len(g.Nodes))
		for i := range dist {
			dist[i] = -1
		}
		var q dbgPQ
		dist[tn.ID] = 0
		heap.Push(&q, dbgItem{tn.ID, 0})
		for q.Len() > 0 {
			it := heap.Pop(&q).(dbgItem)
			if seen[it.node] {
				continue
			}
			seen[it.node] = true
			for _, pr := range radj[it.node] {
				c := it.cost + base(it.node)
				if dist[pr] < 0 || c < dist[pr] {
					dist[pr] = c
					heap.Push(&q, dbgItem{int(pr), c})
				}
			}
		}
		hf := hr.to(tn.ID)
		for _, n := range g.Nodes {
			if dist[n.ID] < 0 || n.ID == tn.ID {
				continue
			}
			if h := hf(n.ID); h > dist[n.ID]+1e-9 {
				bad++
				if bad <= 12 {
					t.Errorf("h(%s@(%d,%d)#%d -> sink@(%d,%d)) = %.3f > true %.3f",
						n.Type, n.X, n.Y, n.ID, tn.X, tn.Y, h, dist[n.ID])
				}
			}
		}
	}
	if bad > 0 {
		t.Fatalf("%d inadmissible bounds", bad)
	}
}
