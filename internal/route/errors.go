package route

import "errors"

// Typed sentinel errors so callers can classify routing failures with
// errors.Is instead of string matching. The hardened flow runner
// (internal/core) keys its retry/degradation policy off these.
var (
	// ErrUnroutable marks congestion-driven failure: PathFinder converged
	// out of iterations (or channel-width search out of widths) with
	// resources still overused. Escalating channel width may recover.
	ErrUnroutable = errors.New("unroutable")
	// ErrNoPath marks a structural failure: the routing graph holds no
	// path at all from a net's source to one of its sinks (disconnected
	// fabric, e.g. too many defective wires or switches). No amount of
	// congestion relief helps; only a different placement or fabric can.
	ErrNoPath = errors.New("no path")
)
