package route_test

// Property tests for the timing- and energy-driven router modes. The
// criticality callback is exercised exactly the way the flow wires it:
// static depth estimate before the first iteration, full slack-derived
// recompute on the committed routing after every iteration. Each random
// instance is audited with the route-stage check rules (no overused or
// illegal resource may survive a successful route) and the worker-count
// invariance contract is asserted under both modes.

import (
	"encoding/json"
	"fmt"
	"testing"

	"fpgaflow/internal/check"
	"fpgaflow/internal/route"
	"fpgaflow/internal/rrgraph"
	"fpgaflow/internal/timing"
)

func TestPropertyTimingDrivenRouteLegalAndDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			pk, p, pl := packPlaceRandom(t, seed)
			calls := 0
			crit := func(g *rrgraph.Graph, routes []*route.NetRoute) []float64 {
				calls++
				var nc []float64
				if routes == nil {
					nc = timing.StaticNetCriticalities(pk, p)
				} else {
					var err error
					nc, err = timing.AnalyzeNetCriticalities(pk, p, pl, &route.Result{Routes: routes, Graph: g})
					if err != nil {
						t.Errorf("seed %d: criticality recompute: %v", seed, err)
						return nil
					}
				}
				for i, c := range nc {
					if c < 0 || c > 1 {
						t.Errorf("seed %d: callback criticality[%d] = %v out of [0,1]", seed, i, c)
					}
				}
				return nc
			}
			g, err := rrgraph.Build(p.Arch)
			if err != nil {
				t.Fatal(err)
			}
			r, err := route.Route(p, pl, g, route.Options{Workers: 4, Criticality: crit})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Success {
				t.Fatalf("seed %d: timing-driven route failed: %d iterations, %d overused", seed, r.Iterations, r.Overused)
			}
			if r.Overused != 0 {
				t.Fatalf("seed %d: successful routing reports %d overused nodes", seed, r.Overused)
			}
			if calls < 2 {
				t.Errorf("seed %d: criticality callback ran %d times; want static seed + per-iteration recompute", seed, calls)
			}
			// The route-stage rules audit capacity, connectivity and
			// RR-graph legality on the final routing.
			rep := check.RunStage(check.StageRoute, &check.Artifacts{
				Graph: g, Routing: r, Problem: p, Placement: pl,
			})
			if rep.RulesRun == 0 {
				t.Fatal("no route-stage rules ran")
			}
			for _, d := range rep.Diags {
				if d.Severity == check.Error {
					t.Errorf("seed %d: check %s: %s", seed, d.Rule, d.Message)
				}
			}
			// Bit-identical across worker counts under the timing-driven
			// cost blend.
			g1, err := rrgraph.Build(p.Arch)
			if err != nil {
				t.Fatal(err)
			}
			r1, err := route.Route(p, pl, g1, route.Options{Workers: 1, Criticality: crit})
			if err != nil {
				t.Fatal(err)
			}
			j1, _ := json.Marshal(r1.Routes)
			jN, _ := json.Marshal(r.Routes)
			if string(j1) != string(jN) {
				t.Errorf("seed %d: timing-driven route trees differ between -j 1 and -j 4", seed)
			}
		})
	}
}

func TestPropertyEnergyDrivenRouteLegalAndDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p, pl := placeRandom(t, seed)
			g, err := rrgraph.Build(p.Arch)
			if err != nil {
				t.Fatal(err)
			}
			r, err := route.Route(p, pl, g, route.Options{Workers: 4, EnergyDriven: true})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Success {
				t.Fatalf("seed %d: energy-driven route failed: %d iterations, %d overused", seed, r.Iterations, r.Overused)
			}
			rep := check.RunStage(check.StageRoute, &check.Artifacts{
				Graph: g, Routing: r, Problem: p, Placement: pl,
			})
			for _, d := range rep.Diags {
				if d.Severity == check.Error {
					t.Errorf("seed %d: check %s: %s", seed, d.Rule, d.Message)
				}
			}
			g1, err := rrgraph.Build(p.Arch)
			if err != nil {
				t.Fatal(err)
			}
			r1, err := route.Route(p, pl, g1, route.Options{Workers: 1, EnergyDriven: true})
			if err != nil {
				t.Fatal(err)
			}
			j1, _ := json.Marshal(r1.Routes)
			jN, _ := json.Marshal(r.Routes)
			if string(j1) != string(jN) {
				t.Errorf("seed %d: energy-driven route trees differ between -j 1 and -j 4", seed)
			}
		})
	}
}
