package route

import (
	"testing"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/pack"
	"fpgaflow/internal/place"
	"fpgaflow/internal/rrgraph"
)

const testBLIF = `
.model t
.inputs a b c d
.outputs o1 o2
.names a b x1
11 1
.names c d x2
10 1
01 1
.names x1 x2 o1
1- 1
-1 1
.names x1 c o2
11 1
.end
`

func placed(t *testing.T, w int) (*place.Problem, *place.Placement) {
	t.Helper()
	nl, err := netlist.ParseBLIF(testBLIF)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := pack.Pack(nl, pack.Params{N: 1, K: 4, I: 4})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Paper()
	a.CLB.N, a.CLB.I = 1, 4
	a.Routing.ChannelWidth = w
	p, err := place.NewProblem(a, pk)
	if err != nil {
		t.Fatal(err)
	}
	p.AutoSize()
	pl, err := place.Place(p, place.Options{Seed: 1, InnerNum: 1})
	if err != nil {
		t.Fatal(err)
	}
	return p, pl
}

func TestRouteSucceeds(t *testing.T) {
	p, pl := placed(t, 8)
	g, err := rrgraph.Build(p.Arch)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Route(p, pl, g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Success {
		t.Fatalf("routing failed after %d iterations, %d overused", r.Iterations, r.Overused)
	}
	if err := r.Validate(p, pl); err != nil {
		t.Fatal(err)
	}
	if r.WirelengthUsed() == 0 {
		t.Error("no wires used")
	}
}

func TestRouteNarrowChannelCongests(t *testing.T) {
	// W=1 with Fc=1 should either fail or take many iterations; the point
	// is that the router terminates and reports honestly.
	p, pl := placed(t, 1)
	g, err := rrgraph.Build(p.Arch)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Route(p, pl, g, Options{MaxIters: 10})
	if err != nil {
		t.Fatal(err)
	}
	if r.Success {
		if err := r.Validate(p, pl); err != nil {
			t.Fatal(err)
		}
	} else if r.Overused == 0 {
		t.Error("failure reported with zero overuse")
	}
}

func TestMinChannelWidth(t *testing.T) {
	p, pl := placed(t, 8)
	w, r, err := MinChannelWidth(p, pl, 1, 8, Options{MaxIters: 15})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Success {
		t.Fatal("binary search returned failed routing")
	}
	if w < 1 || w > 8 {
		t.Fatalf("W = %d", w)
	}
	// The returned routing must be valid for a graph of width w.
	if r.Graph.W != w {
		t.Errorf("result graph W = %d, want %d", r.Graph.W, w)
	}
	if err := r.Validate(p, pl); err != nil {
		t.Fatal(err)
	}
	// One track below the minimum must fail.
	if w > 1 {
		a := p.Arch.Clone()
		a.Routing.ChannelWidth = w - 1
		g, err := rrgraph.Build(a)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Route(p, pl, g, Options{MaxIters: 15})
		if err != nil {
			t.Fatal(err)
		}
		if r2.Success {
			t.Errorf("W=%d routed but binary search said min is %d", w-1, w)
		}
	}
}

func TestRouteTreeSharing(t *testing.T) {
	// Multi-sink nets must form a connected tree, not disjoint paths.
	p, pl := placed(t, 8)
	g, err := rrgraph.Build(p.Arch)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Route(p, pl, g, Options{})
	if err != nil || !r.Success {
		t.Fatalf("route: %v success=%v", err, r != nil && r.Success)
	}
	for ni, nr := range r.Routes {
		if len(nr.Paths) < 2 {
			continue
		}
		// Later paths must start from a node already in the tree of
		// earlier paths.
		seen := map[int]bool{}
		for _, n := range nr.Paths[0] {
			seen[n] = true
		}
		for si := 1; si < len(nr.Paths); si++ {
			if !seen[nr.Paths[si][0]] {
				t.Errorf("net %s path %d starts outside tree", p.Nets[ni].Signal, si)
			}
			for _, n := range nr.Paths[si] {
				seen[n] = true
			}
		}
	}
}

func TestRouteSingleOutputPinPerNet(t *testing.T) {
	p, pl := placed(t, 8)
	g, err := rrgraph.Build(p.Arch)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Route(p, pl, g, Options{})
	if err != nil || !r.Success {
		t.Fatal("route failed")
	}
	for ni, nr := range r.Routes {
		opins := map[int]bool{}
		for _, path := range nr.Paths {
			for _, n := range path {
				if g.Nodes[n].Type == rrgraph.OPin {
					opins[n] = true
				}
			}
		}
		if len(opins) > 1 {
			t.Errorf("net %s uses %d output pins", p.Nets[ni].Signal, len(opins))
		}
	}
}

func TestValidateCatchesCorruptPath(t *testing.T) {
	p, pl := placed(t, 8)
	g, err := rrgraph.Build(p.Arch)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Route(p, pl, g, Options{})
	if err != nil || !r.Success {
		t.Fatal("route failed")
	}
	// Truncate one path: must be caught.
	for _, nr := range r.Routes {
		if len(nr.Paths) > 0 && len(nr.Paths[0]) > 1 {
			nr.Paths[0] = nr.Paths[0][:len(nr.Paths[0])-1]
			break
		}
	}
	if err := r.Validate(p, pl); err == nil {
		t.Fatal("corrupt path not detected")
	}
}

func TestDelayDrivenRouting(t *testing.T) {
	p, pl := placed(t, 8)
	g, err := rrgraph.Build(p.Arch)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Route(p, pl, g, Options{DelayDriven: true})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Success {
		t.Fatal("delay-driven routing failed")
	}
	if err := r.Validate(p, pl); err != nil {
		t.Fatal(err)
	}
}
