package route

// The router's search core: a non-boxing binary heap, epoch-stamped flat
// node state reused across nets, the admissible A* cost lookahead derived
// from rrgraph.Lookahead, and the per-net tree search with incremental
// route-tree reuse. Everything here is a pure function of (graph, frozen
// congestion state, net), so the parallel batches in route.go stay
// bit-identical at every worker count.

import (
	"fmt"
	"sort"

	"fpgaflow/internal/rrgraph"
)

// pqItem is one frontier entry: f is the heap priority (the cost from the
// tree plus the admissible cost-to-target bound), g the cost from the
// tree alone (compared against dist to drop stale entries).
type pqItem struct {
	f, g float64
	node int32
}

// pq is a plain binary min-heap ordered by f. It deliberately avoids
// container/heap: the interface-based API boxes every item, and the
// router pushes millions of entries per run — heap traffic is the
// routing hot path.
type pq []pqItem

func (q *pq) push(it pqItem) {
	*q = append(*q, it)
	s := *q
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent].f <= s[i].f {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (q *pq) pop() pqItem {
	s := *q
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	*q = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && s[l].f < s[small].f {
			small = l
		}
		if r < n && s[r].f < s[small].f {
			small = r
		}
		if small == i {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	return top
}

// scratch holds per-worker search state over flat slice-indexed RR-node
// arrays, generation-stamped so clearing between nets and searches is
// O(1): no per-net allocation and no clearing loops over the node array.
type scratch struct {
	// dist/prev/gen are the per-search Dijkstra/A* state: cost from the
	// tree, predecessor node, and the visit epoch that invalidates both.
	dist []float64
	prev []int32
	gen  []uint32
	cur  uint32

	// own marks the net's previous route (own[i] == ownCur): its usage is
	// subtracted during cost evaluation so the net is not repelled by the
	// congestion it itself caused last iteration.
	own    []uint32
	ownCur uint32

	// tree marks route-tree membership while one net is routed
	// (tree[i] == treeCur); treeList keeps the deterministic insertion
	// order the searches seed their frontier from.
	tree     []uint32
	treeCur  uint32
	treeList []int

	// q is the frontier heap, reused across searches.
	q pq
	// pops counts priority-queue pops across searches (search effort);
	// reused counts sinks whose route-tree paths survived a rip-up.
	pops   int64
	reused int64
}

func newScratch(n int) *scratch {
	return &scratch{
		dist: make([]float64, n), prev: make([]int32, n), gen: make([]uint32, n),
		own: make([]uint32, n), tree: make([]uint32, n),
	}
}

func (s *scratch) reset() { s.cur++ }

func (s *scratch) seen(n int) bool { return s.gen[n] == s.cur }

func (s *scratch) set(n int, d float64, p int32) {
	s.gen[n] = s.cur
	s.dist[n] = d
	s.prev[n] = p
}

// setOwn stamps the node set of the net's previous route (nil = none).
func (s *scratch) setOwn(nr *NetRoute) {
	s.ownCur++
	if nr == nil {
		return
	}
	for _, n := range nr.NodeList() {
		s.own[n] = s.ownCur
	}
}

func (s *scratch) isOwn(n int) bool { return s.own[n] == s.ownCur }

func (s *scratch) resetTree() {
	s.treeCur++
	s.treeList = s.treeList[:0]
}

func (s *scratch) addTree(n int) {
	if s.tree[n] != s.treeCur {
		s.tree[n] = s.treeCur
		s.treeList = append(s.treeList, n)
	}
}

func (s *scratch) inTree(n int) bool { return s.tree[n] == s.treeCur }

// heur turns the graph's precomputed rrgraph.Lookahead into admissible
// cost-to-target lower bounds for the A* search. Every bound is derived
// from floors of the PathFinder node-cost function: base costs are
// multiplied by a present factor >= 1 and have history >= 0 added, so a
// node never costs less than its base, and masking defects only removes
// options. The bounds therefore never overestimate, which is the whole
// correctness requirement — A* returns exactly the paths Dijkstra would.
type heur struct {
	g *rrgraph.Graph
	// lk carries the graph's precomputed lookahead, including the exact
	// wire-hop tables on unit-segment fabrics.
	lk *rrgraph.Lookahead
	// minHop is the smallest possible cost of one wire node.
	minHop float64
	// minTile is the smallest possible wire cost per tile advanced
	// (min over segment types of base cost / span).
	minTile float64
	// pinTail is the unavoidable IPin+Sink tail cost of finishing a path.
	pinTail float64
	// opinCost is the minimum cost of the output pin a Source still has to
	// traverse (pins carry no RC, so this is the bare base cost).
	opinCost float64
	// sinkCost is the minimum cost of the final sink node alone.
	sinkCost float64
	maxSpan  int
	enabled  bool
}

// newHeur builds the per-run heuristic from the graph's lookahead and the
// run's cost options. enabled=false (Options.NoLookahead) yields nil
// bound functions, turning the search into plain Dijkstra.
func newHeur(g *rrgraph.Graph, delayDriven bool, delayNorm float64, enabled bool) *heur {
	h := &heur{g: g, enabled: enabled, sinkCost: 0.1}
	lk := g.Lookahead()
	if lk == nil || lk.Wires == 0 || lk.MaxSpan < 1 {
		h.enabled = false
		return h
	}
	wireBase := func(rc float64) float64 {
		if delayDriven && delayNorm > 0 {
			return 0.3 + 2*rc/delayNorm
		}
		return 1.0
	}
	h.lk = lk
	h.maxSpan = lk.MaxSpan
	h.minHop = wireBase(lk.MinWireRC)
	h.minTile = h.minHop / float64(lk.MaxSpan)
	for span, rc := range lk.MinRCBySpan {
		if pt := wireBase(rc) / float64(span); pt < h.minTile {
			h.minTile = pt
		}
	}
	// Pin base costs: 1.0 flat, or 0.3 delay-driven (pins have no RC, so
	// their R*C term vanishes).
	if delayDriven && delayNorm > 0 {
		h.opinCost = 0.3
		h.pinTail = 0.3 + h.sinkCost
	} else {
		h.opinCost = 1.0
		h.pinTail = 1.0 + h.sinkCost
	}
	return h
}

// to returns the admissible lower-bound function for one target sink, or
// nil when the lookahead is disabled.
//
// The wire bound is the max of two admissible floors over the remaining
// distance (dx, dy) from the node's tile extent to the target block:
//
//   - hop bound: covering one axis takes at least ceil((d-2)/maxSpan)
//     wires of that orientation (2 tiles of slack absorb switch-point
//     overhang and the one free column/row of cross-orientation block
//     adjacency), each costing at least minHop;
//   - per-tile bound: a wire of span s costs at least s*minTile, so
//     covering dx+dy tiles (minus the same slack per axis) costs at
//     least (dx+dy-4)*minTile.
//
// Both orientations' wires are disjoint node sets, so the per-axis hop
// counts add. A node that is not the target still needs an IPin and the
// sink itself (connection boxes only reach sinks through input pins),
// which is the pinTail term.
func (h *heur) to(target int) func(int) float64 {
	if !h.enabled {
		return nil
	}
	t := h.g.Nodes[target]
	tx, ty := t.X, t.Y
	nodes := h.g.Nodes
	return func(id int) float64 {
		if id == target {
			return 0
		}
		n := nodes[id]
		var dx, dy int
		srcTail := 0.0
		switch n.Type {
		case rrgraph.ChanX:
			if hops, ok := h.lk.WireHops(false, n.X-tx, n.Y-ty); ok {
				return float64(hops)*h.minHop + h.pinTail
			}
			dx = axisDist(n.X, n.X+n.Span-1, tx)
			dy = minInt(absInt(n.Y-ty), absInt(n.Y+1-ty))
		case rrgraph.ChanY:
			if hops, ok := h.lk.WireHops(true, n.X-tx, n.Y-ty); ok {
				return float64(hops)*h.minHop + h.pinTail
			}
			dy = axisDist(n.Y, n.Y+n.Span-1, ty)
			dx = minInt(absInt(n.X-tx), absInt(n.X+1-tx))
		case rrgraph.IPin:
			// An input pin's only successor is its own sink.
			return h.sinkCost
		case rrgraph.Sink:
			return 0
		default: // OPin, Source
			if n.Type == rrgraph.Source {
				// A source still has to traverse an output pin.
				srcTail = h.opinCost
			}
			if hops, ok := h.lk.BlockHops(n.X-tx, n.Y-ty); ok {
				return float64(hops)*h.minHop + h.pinTail + srcTail
			}
			dx = absInt(n.X - tx)
			dy = absInt(n.Y - ty)
		}
		wires := float64(hopsLB(dx, h.maxSpan)+hopsLB(dy, h.maxSpan)) * h.minHop
		if alt := float64(dx+dy-4) * h.minTile; alt > wires {
			wires = alt
		}
		return wires + h.pinTail + srcTail
	}
}

// hopsLB lower-bounds the same-orientation wires needed to cover d tiles
// on one axis: 2 tiles of slack, each wire advances at most maxSpan.
func hopsLB(d, maxSpan int) int {
	d -= 2
	if d <= 0 {
		return 0
	}
	return (d + maxSpan - 1) / maxSpan
}

func axisDist(lo, hi, t int) int {
	if t < lo {
		return lo - t
	}
	if t > hi {
		return t - hi
	}
	return 0
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// search finds the cheapest path from the current tree (sc.treeList) to
// target. With a non-nil bound function hf this is A* ordered by
// g + hf(node); with nil it is plain Dijkstra. Tree nodes cost nothing to
// reuse. When sourceLocked, expansion out of the source node is forbidden
// (the output pin is already chosen).
//
// hf never overestimates, so the first pop of the target carries an
// optimal cost: every other frontier entry has f >= the popped f, and any
// path through it costs at least its f. (The relaxation re-pushes a node
// whenever a cheaper g is found, so this holds even for bounds that are
// admissible but not consistent.)
//
// The tree seeds are expanded eagerly, in treeList order, instead of
// going through the heap: every seed has cost 0, so this is exactly what
// the pop loop would do — except that when two seeds reach a neighbor at
// identical cost, the winner is now fixed by tree insertion order rather
// than by how the heap happens to order equal keys. That keeps the routed
// tree identical whether the frontier is ordered by g (Dijkstra) or by
// g + h (A*), which is what the lookahead equivalence test asserts.
func (sc *scratch) search(g *rrgraph.Graph, target, source int, sourceLocked bool, nodeCost func(int) float64, hf func(int) float64) ([]int, error) {
	const unseen = -1
	sc.reset()
	sc.q = sc.q[:0]
	q := &sc.q
	for _, n := range sc.treeList {
		if sourceLocked && n == source {
			continue
		}
		sc.set(n, 0, unseen)
	}
	if sc.seen(target) {
		// The target is already part of the tree (two sink blocks packed
		// into the same cluster share a sink node): a single-node path.
		return []int{target}, nil
	}
	for _, n := range sc.treeList {
		if sourceLocked && n == source {
			continue
		}
		for _, e := range g.Nodes[n].Edges {
			if g.Dead(e) || sc.seen(e) {
				continue
			}
			c := nodeCost(e)
			sc.set(e, c, int32(n))
			f := c
			if hf != nil {
				f += hf(e)
			}
			q.push(pqItem{f: f, g: c, node: int32(e)})
		}
	}
	reached := false
	//fpga:hotloop
	for len(*q) > 0 {
		it := q.pop()
		sc.pops++
		id := int(it.node)
		if it.g > sc.dist[id] {
			continue
		}
		if id == target {
			reached = true
			break
		}
		for _, e := range g.Nodes[id].Edges {
			if g.Dead(e) {
				continue // defective resource: route around it
			}
			c := it.g + nodeCost(e)
			if !sc.seen(e) || c < sc.dist[e] {
				sc.set(e, c, it.node)
				f := c
				if hf != nil {
					f += hf(e)
				}
				q.push(pqItem{f: f, g: c, node: int32(e)})
			}
		}
	}
	if !reached {
		return nil, fmt.Errorf("%w to node %d (%s at %d,%d)",
			ErrNoPath, target, g.Nodes[target].Type, g.Nodes[target].X, g.Nodes[target].Y)
	}
	var path []int
	for n := target; n != unseen; n = int(sc.prev[n]) {
		path = append(path, n)
	}
	// Reverse to source->sink order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// reuseMinFanout is the sink count at which a dirty net switches from
// full rip-up to incremental route-tree reuse. High-fanout nets are the
// ones whose trees are expensive to rebuild and mostly untouched by any
// one congestion hotspot; low-fanout nets reroute whole, which keeps
// their convergence behavior identical to the classic algorithm.
const reuseMinFanout = 4

// routeNet routes one net: sequential cheapest paths, each seeded with
// the tree built so far. The net's Source node is only usable for the
// first path, pinning the net to a single output pin choice thereafter.
//
// When prev is the net's previous route and the net has at least
// reuseMinFanout sinks, a previous path that touches no overused (or
// defective) node and still attaches to the tree built from the
// earlier-indexed paths is kept verbatim: only the congested subtrees
// are ripped up and re-searched, and the searches seed their frontier
// from the kept tree. Sinks are processed strictly in index order for
// keep and search alike, preserving the DRC invariant that every path
// starts inside the tree of the paths before it. The keep decision
// depends only on prev and the overused predicate — both frozen per
// batch — so reuse is deterministic at every worker count.
func routeNet(g *rrgraph.Graph, source int, sinks []int, prev *NetRoute, overused func(int) bool,
	nodeCost func(int) float64, hr *heur, sc *scratch) (*NetRoute, error) {
	nr := &NetRoute{Paths: make([][]int, len(sinks))}
	sc.resetTree()
	sc.addTree(source)
	sourceLocked := false
	reuse := prev != nil && len(prev.Paths) == len(sinks) && len(sinks) >= reuseMinFanout
	for i, sink := range sinks {
		if reuse {
			path := prev.Paths[i]
			keep := len(path) > 0 && sc.inTree(path[0])
			if keep {
				for _, n := range path {
					if overused(n) || g.Dead(n) {
						keep = false
						break
					}
				}
			}
			if keep {
				nr.Paths[i] = path
				for _, n := range path {
					sc.addTree(n)
				}
				sourceLocked = true
				sc.reused++
				continue
			}
		}
		path, err := sc.search(g, sink, source, sourceLocked, nodeCost, hr.to(sink))
		if err != nil {
			return nil, err
		}
		nr.Paths[i] = path
		for _, n := range path {
			sc.addTree(n)
		}
		sourceLocked = true
	}
	return nr, nil
}

// NodeList returns the distinct RR nodes of the net in ascending ID
// order, computed once and cached (a route tree is never mutated after
// construction). The flat list replaces the per-call map allocations the
// occupancy and overuse scans used to pay on every iteration.
func (nr *NetRoute) NodeList() []int {
	if nr.nodes != nil {
		return nr.nodes
	}
	total := 0
	for _, p := range nr.Paths {
		total += len(p)
	}
	nodes := make([]int, 0, total)
	for _, p := range nr.Paths {
		nodes = append(nodes, p...)
	}
	sort.Ints(nodes)
	w := 0
	for _, n := range nodes {
		if w == 0 || n != nodes[w-1] {
			nodes[w] = n
			w++
		}
	}
	nr.nodes = nodes[:w]
	return nr.nodes
}
