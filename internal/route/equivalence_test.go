package route

import (
	"bytes"
	"encoding/json"
	"testing"

	"fpgaflow/internal/rrgraph"
)

// TestLookaheadEquivalence routes the same placed design with the A*
// lookahead and with plain Dijkstra and requires bit-identical route
// trees: the tree-seed expansion order is fixed by route-tree insertion
// order (see scratch.search), so an admissible heuristic may reorder heap
// pops but never change which path wins.
func TestLookaheadEquivalence(t *testing.T) {
	p, pl := placed(t, 8)
	g1, err := rrgraph.Build(p.Arch)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := rrgraph.Build(p.Arch)
	r1, err := Route(p, pl, g1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Route(p, pl, g2, Options{NoLookahead: true})
	if err != nil {
		t.Fatal(err)
	}
	for ni := range r1.Routes {
		b1, _ := json.Marshal(r1.Routes[ni].Paths)
		b2, _ := json.Marshal(r2.Routes[ni].Paths)
		if !bytes.Equal(b1, b2) {
			t.Errorf("net %d differs:\n  astar: %s\n  dijk:  %s", ni, b1, b2)
		}
	}
}
