// Package route implements the routing half of the paper's VPR stage: the
// PathFinder negotiated-congestion algorithm over the routing-resource
// graph, plus a binary search for the minimum feasible channel width.
//
// Nets are routed in fixed-size batches: every net in a batch searches
// against a read-only snapshot of the congestion state, concurrently
// across Options.Workers goroutines, and the finished route trees are
// committed in net order. Because the batch boundaries and the per-net
// searches are independent of the worker count, the routing — and with it
// the bitstream — is bit-identical at every -j setting (see
// docs/PERFORMANCE.md for the determinism argument).
package route

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"fpgaflow/internal/obs"
	"fpgaflow/internal/obs/events"
	"fpgaflow/internal/place"
	"fpgaflow/internal/rrgraph"
)

// Options tunes the router.
type Options struct {
	// MaxIters bounds the rip-up-and-reroute iterations (default 40).
	MaxIters int
	// PresFacInit is the initial present-congestion factor (default 0.5).
	PresFacInit float64
	// PresFacMult grows the present factor each iteration (default 1.3).
	PresFacMult float64
	// HistFac accumulates history cost on overused nodes (default 1.0).
	HistFac float64
	// DelayDriven weights base costs by each resource's intrinsic RC delay
	// so paths prefer electrically fast routes, not just few hops.
	DelayDriven bool
	// EnergyDriven weights base costs by each resource's capacitance so
	// paths prefer low switched-capacitance routes (the min-energy
	// profile's cost axis). Mutually exclusive with DelayDriven; the A*
	// lookahead tables assume hop- or RC-floored costs, so energy-driven
	// searches run as plain Dijkstra (identical results, more heap pops).
	EnergyDriven bool
	// Criticality makes the router timing-driven: it is called with nil
	// routes before the first iteration (a static pre-routing estimate)
	// and with the complete committed routing after every iteration, and
	// must return one value in [0,1] per net — see timing.NetCriticalities.
	// A net with criticality c searches with the blended node cost
	//
	//	(1-c) * congestion_cost + c * base_cost
	//
	// so critical nets chase the cheapest (with DelayDriven, the fastest)
	// path and shed congestion avoidance, while relaxed nets detour around
	// contention. c is clamped to CritMax so the present/history terms can
	// always resolve conflicts. The callback must be a pure function of
	// its arguments; committed routings are identical at every worker
	// count, so the recomputed criticalities — and the routing — stay
	// bit-identical under any -j. Setting Criticality forces DelayDriven
	// (the blend needs a delay-shaped base cost, and the delay-driven A*
	// floors remain admissible under it; see docs/PERFORMANCE.md).
	Criticality func(g *rrgraph.Graph, routes []*NetRoute) []float64
	// NoLookahead disables the A* cost lookahead and falls back to plain
	// Dijkstra. The routed result is identical either way (the lookahead
	// is an admissible lower bound, so A* pops the same optimal paths);
	// the flag exists so the equivalence test can prove exactly that, and
	// as an escape hatch for debugging search behavior.
	NoLookahead bool
	// NoFailurePredictor disables the early abort of hopeless width
	// trials (see predictStall); every unroutable attempt then burns the
	// full MaxIters budget. Useful when studying long-tail convergence.
	NoFailurePredictor bool
	// Ctx cancels routing cooperatively: the router checks it at every
	// rip-up-and-reroute iteration and returns the context's error. nil
	// means no cancellation.
	Ctx context.Context
	// Mask is applied to every routing graph the router builds itself
	// (MinChannelWidth builds one per width trial). Fault injection uses it
	// to carry a defect map across channel-width escalation; nil is a no-op.
	Mask func(*rrgraph.Graph)
	// Workers is the number of concurrent net-routing workers per batch
	// (the CLI -j knob): 0 uses GOMAXPROCS, 1 routes serially. The routing
	// result is identical for every value; Workers trades only wall time.
	Workers int
	// Cache, when set, supplies routing-resource graphs to MinChannelWidth
	// width trials instead of rebuilding them. Every trial receives a
	// private clone of the cached pristine graph, and Mask is re-applied to
	// that clone, so defect masks never leak between trials or runs.
	Cache *rrgraph.Cache
	// Obs receives PathFinder counters (route.iterations, route.nets_routed,
	// route.overuse_sum, route.heap_pops); nil disables reporting.
	Obs *obs.Trace
	// Events receives one route_iter event per PathFinder iteration and a
	// final route_congestion map keyed by structural wire coordinates
	// (convergence telemetry; see internal/obs/events). nil or disabled
	// costs one atomic load per iteration.
	Events *events.Bus
}

// ctxErr returns the options context's error, nil when no context is set.
func (o *Options) ctxErr() error {
	if o.Ctx == nil {
		return nil
	}
	return o.Ctx.Err()
}

func (o *Options) fill() {
	if o.Criticality != nil {
		// The criticality blend mixes congestion cost with a bare base
		// cost; with flat unit bases the blend would only wash out the
		// negotiation, so timing-driven routing implies delay-shaped bases.
		o.DelayDriven = true
	}
	if o.DelayDriven {
		o.EnergyDriven = false
	}
	if o.MaxIters == 0 {
		o.MaxIters = 40
	}
	if o.PresFacInit == 0 {
		o.PresFacInit = 0.5
	}
	if o.PresFacMult == 0 {
		o.PresFacMult = 1.3
	}
	if o.HistFac == 0 {
		o.HistFac = 1.0
	}
}

// NetRoute is the routing of one net: one node path per sink, each running
// from the net's source node to that sink's sink node.
type NetRoute struct {
	// Paths[i] is the path for sink i of the net (problem order).
	Paths [][]int

	// nodes caches the deduplicated sorted node list (see NodeList). It is
	// unexported so the JSON shape of route trees is unchanged.
	nodes []int
}

// Nodes returns the set of RR nodes the net occupies. Hot paths use
// NodeList instead; the map form remains for callers that want set
// membership.
func (nr *NetRoute) Nodes() map[int]bool {
	set := make(map[int]bool, len(nr.NodeList()))
	for _, n := range nr.NodeList() {
		set[n] = true
	}
	return set
}

// Result is a complete routing.
type Result struct {
	Graph  *rrgraph.Graph
	Routes []*NetRoute // parallel to Problem.Nets
	// Success is true when no resource is overused.
	Success    bool
	Iterations int
	// Overused counts nodes above capacity (0 on success).
	Overused int
}

// Route runs PathFinder. The placement must be legal for the graph's arch.
func Route(p *place.Problem, pl *place.Placement, g *rrgraph.Graph, opts Options) (*Result, error) {
	opts.fill()
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	type conn struct {
		source int
		sinks  []int
	}
	conns := make([]conn, len(p.Nets))
	for i, n := range p.Nets {
		srcLoc := pl.Loc[n.Blocks[0]]
		src := g.SourceAt(srcLoc.X, srcLoc.Y)
		if src < 0 {
			return nil, fmt.Errorf("route: net %s: no source node at (%d,%d)", n.Signal, srcLoc.X, srcLoc.Y)
		}
		c := conn{source: src}
		for _, b := range n.Blocks[1:] {
			l := pl.Loc[b]
			snk := g.SinkAt(l.X, l.Y)
			if snk < 0 {
				return nil, fmt.Errorf("route: net %s: no sink node at (%d,%d)", n.Signal, l.X, l.Y)
			}
			c.sinks = append(c.sinks, snk)
		}
		conns[i] = c
	}

	nNodes := len(g.Nodes)
	usage := make([]int, nNodes) // nets per node
	history := make([]float64, nNodes)
	routes := make([]*NetRoute, len(p.Nets))

	occupy := func(nr *NetRoute, delta int) {
		if nr == nil {
			return
		}
		for _, n := range nr.NodeList() {
			usage[n] += delta
		}
	}
	presFac := opts.PresFacInit

	// Delay-driven base costs: normalize each wire's R*C against the worst
	// so costs stay comparable to the unit hop cost. Energy-driven bases
	// normalize capacitance alone the same way.
	var delayNorm, capNorm float64
	if opts.DelayDriven {
		for _, n := range g.Nodes {
			if d := n.R * n.C; d > delayNorm {
				delayNorm = d
			}
		}
	}
	if opts.EnergyDriven {
		for _, n := range g.Nodes {
			if n.C > capNorm {
				capNorm = n.C
			}
		}
	}
	// Per-net criticality for the timing-driven blend: seeded from the
	// pre-routing estimate, replaced by the callback's recompute over the
	// committed routing after every iteration. nil means pure congestion
	// cost. critMax keeps a sliver of congestion cost on even the most
	// critical net so present/history pressure can always separate two
	// fully-critical nets contending for one resource.
	const critMax = 0.99
	var crit []float64
	setCrit := func(nc []float64) {
		if len(nc) != len(conns) {
			return // contract violation: keep the previous estimate
		}
		for i, c := range nc {
			if c < 0 {
				nc[i] = 0
			} else if c > critMax {
				nc[i] = critMax
			}
		}
		crit = nc
	}
	if opts.Criticality != nil {
		setCrit(opts.Criticality(g, nil))
	}
	// The A* lookahead: admissible cost-to-sink lower bounds derived from
	// the graph's per-segment-type summary (built once per RR-graph and
	// shared by every cache clone). See search.go for the admissibility
	// argument; NoLookahead degrades to plain Dijkstra, and energy-driven
	// bases (no RC floor in the tables) always search undirected.
	hr := newHeur(g, opts.DelayDriven, delayNorm, !opts.NoLookahead && !opts.EnergyDriven)
	// costFor is the node-cost function net ni searches with. usage and
	// history are frozen while a batch is in flight, so concurrent reads
	// are safe; own excludes the net's own previous route so a net is not
	// repelled by the congestion it itself caused last iteration.
	//
	// The tieBreak term is essential to convergence: nets in one batch see
	// identical congestion, so two nets contending for the same resource
	// would otherwise compute identical cost landscapes and herd together
	// from alternative to alternative forever. A tiny per-(net, node)
	// deterministic perturbation (< 1e-4, orders of magnitude below any
	// real cost difference) makes tied nets prefer different alternatives,
	// which is exactly the symmetry breaking the serial one-net-at-a-time
	// order used to provide.
	costFor := func(sc *scratch, ni int) func(int) float64 {
		seed := uint32(ni+1) * 2654435761
		c := 0.0
		if crit != nil {
			c = crit[ni]
		}
		return func(id int) float64 {
			n := g.Nodes[id]
			u := usage[id]
			if sc.isOwn(id) {
				u--
			}
			over := u + 1 - n.Capacity
			pres := 1.0
			if over > 0 {
				pres += presFac * float64(over)
			}
			base := 1.0
			if n.Type == rrgraph.Sink {
				base = 0.1
			} else if opts.DelayDriven && delayNorm > 0 {
				base = 0.3 + 2*(n.R*n.C)/delayNorm
			} else if opts.EnergyDriven && capNorm > 0 {
				base = 0.3 + 2*n.C/capNorm
			}
			congest := (base + history[id]) * pres
			if c > 0 {
				// Timing-driven blend: congestion cost fades with net
				// criticality; the base (delay) term never does. congest >=
				// base, so the blend stays >= base and the delay-driven A*
				// floors remain admissible.
				congest = (1-c)*congest + c*base
			}
			return congest + tieBreak(seed, id)
		}
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > netBatchSize {
		workers = netBatchSize
	}
	if n := len(conns); workers > n && n > 0 {
		workers = n
	}

	res := &Result{Graph: g, Routes: routes}
	scratches := make([]*scratch, workers)
	for i := range scratches {
		scratches[i] = newScratch(nNodes)
	}
	var netsRouted, netsParallel, overuseSum, critUpdates int64
	defer func() {
		var pops, reused int64
		for _, sc := range scratches {
			pops += sc.pops
			reused += sc.reused
		}
		opts.Obs.SetGauge("route.workers", float64(workers))
		opts.Obs.Add("route.iterations", int64(res.Iterations))
		opts.Obs.Add("route.nets_routed", netsRouted)
		opts.Obs.Add("route.nets_parallel", netsParallel)
		opts.Obs.Add("route.overuse_sum", overuseSum)
		opts.Obs.Add("route.heap_pops", pops)
		opts.Obs.Add("route.sinks_reused", reused)
		opts.Obs.Add("route.crit_updates", critUpdates)
		opts.Obs.Gauge("route.overused_final").Set(float64(res.Overused))
	}()
	// overused reports whether one node is above capacity under the current
	// usage array; touchesOveruse lifts it to a whole committed route
	// (nil = not yet routed). Both read usage, which is frozen while a
	// batch of workers is in flight.
	overused := func(n int) bool { return usage[n] > g.Nodes[n].Capacity }
	touchesOveruse := func(nr *NetRoute) bool {
		if nr == nil {
			return true
		}
		for _, n := range nr.NodeList() {
			if overused(n) {
				return true
			}
		}
		return false
	}

	batchRoutes := make([]*NetRoute, netBatchSize)
	batchErrs := make([]error, netBatchSize)
	dirty := make([]int, 0, len(conns))
	// Route-tree reuse is only a win during the early high-churn
	// iterations, where most nets are dirty and most heap pops happen.
	// Past that window — or as soon as an iteration fails to reduce the
	// overused-node count — frozen subtrees stop paying the rising history
	// costs and distort the negotiation, so reuse switches off for the
	// rest of the run and every dirty net rips up fully, restoring the
	// classic PathFinder endgame (and its QoR) at tight channel widths.
	reuseOK := true
	prevOver := 1 << 30
	reusePrev := func(nr *NetRoute) *NetRoute {
		if !reuseOK {
			return nil
		}
		return nr
	}
	// Failure predictor state: the best (lowest) overused-node count seen
	// so far and the iteration that achieved it.
	bestOver, bestIter := 1<<30, 0
	// prevPops and prevRouted delta the cumulative effort counters into
	// per-iteration telemetry; only maintained while events are flowing.
	var prevPops, prevRouted int64
	// iterHist feeds the per-iteration latency distribution; hoisted so the
	// loop pays one nil check per iteration (nil Obs = inert timers, no
	// clock reads).
	iterHist := opts.Obs.Histogram("route.iter_seconds")
	for iter := 1; iter <= opts.MaxIters; iter++ {
		if err := opts.ctxErr(); err != nil {
			return nil, fmt.Errorf("route: %w", err)
		}
		res.Iterations = iter
		iterTimer := iterHist.StartTimer()

		// Phase 1 — parallel search. Only dirty nets (unrouted, or routed
		// through congestion) are rerouted; clean nets keep their trees.
		// Each batch searches against the congestion state frozen at batch
		// entry, then commits in net order.
		dirty = dirty[:0]
		for ni := range conns {
			if touchesOveruse(routes[ni]) {
				dirty = append(dirty, ni)
			}
		}
		for lo := 0; lo < len(dirty); lo += netBatchSize {
			hi := lo + netBatchSize
			if hi > len(dirty) {
				hi = len(dirty)
			}
			if err := opts.ctxErr(); err != nil {
				return nil, fmt.Errorf("route: %w", err)
			}
			// Worker k takes the batch indices congruent to k mod w; the
			// assignment affects only which goroutine does the work, never
			// the result.
			w := workers
			if w > hi-lo {
				w = hi - lo
			}
			if w <= 1 {
				sc := scratches[0]
				for bi := lo; bi < hi; bi++ {
					ni := dirty[bi]
					sc.setOwn(routes[ni])
					batchRoutes[bi-lo], batchErrs[bi-lo] = routeNet(
						g, conns[ni].source, conns[ni].sinks, reusePrev(routes[ni]), overused, costFor(sc, ni), hr, sc)
				}
			} else {
				var wg sync.WaitGroup
				for k := 0; k < w; k++ {
					wg.Add(1)
					go func(k int) {
						defer wg.Done()
						sc := scratches[k]
						for bi := lo + k; bi < hi; bi += w {
							ni := dirty[bi]
							sc.setOwn(routes[ni])
							batchRoutes[bi-lo], batchErrs[bi-lo] = routeNet(
								g, conns[ni].source, conns[ni].sinks, reusePrev(routes[ni]), overused, costFor(sc, ni), hr, sc)
						}
					}(k)
				}
				wg.Wait()
				netsParallel += int64(hi - lo)
			}
			// Commit in net order: the lowest-indexed failure is the one
			// reported, independent of scheduling.
			for bi := lo; bi < hi; bi++ {
				if err := batchErrs[bi-lo]; err != nil {
					return nil, fmt.Errorf("route: net %s: %w", p.Nets[dirty[bi]].Signal, err)
				}
			}
			for bi := lo; bi < hi; bi++ {
				ni := dirty[bi]
				occupy(routes[ni], -1)
				routes[ni] = batchRoutes[bi-lo]
				occupy(routes[ni], +1)
				netsRouted++
			}
		}

		// Phase 2 — serial conflict repair. Nets that still share an
		// overused resource after the parallel commits are rerouted one at
		// a time against live usage, in net order. This is the classic
		// PathFinder step restricted to the conflict set: it is what
		// actually breaks symmetric contention (two nets herding between
		// the same two alternatives see each other's choice here), so the
		// parallel phase cannot live-lock the iteration. The repair order
		// is fixed, so the result stays worker-count independent.
		for ni := range conns {
			if err := opts.ctxErr(); err != nil {
				return nil, fmt.Errorf("route: %w", err)
			}
			if !touchesOveruse(routes[ni]) {
				continue
			}
			occupy(routes[ni], -1)
			// The net's own usage was just removed, so a kept path would put
			// it back: a node survives only if re-adding one user stays
			// within capacity. The live usage also makes own-exclusion moot
			// (setOwn(nil) clears it).
			sc := scratches[0]
			sc.setOwn(nil)
			wouldOveruse := func(n int) bool { return usage[n]+1 > g.Nodes[n].Capacity }
			nr, err := routeNet(g, conns[ni].source, conns[ni].sinks, reusePrev(routes[ni]), wouldOveruse, costFor(sc, ni), hr, sc)
			if err != nil {
				return nil, fmt.Errorf("route: net %s: %w", p.Nets[ni].Signal, err)
			}
			routes[ni] = nr
			netsRouted++
			occupy(nr, +1)
		}

		over, overUnits := 0, 0
		//fpga:hotloop
		for id, n := range g.Nodes {
			if usage[id] > n.Capacity {
				over++
				overUnits += usage[id] - n.Capacity
				history[id] += opts.HistFac * float64(usage[id]-n.Capacity)
			}
		}
		res.Overused = over
		overuseSum += int64(over)
		// Both exits below (success return and next iteration) pass through
		// here, so every completed iteration lands one observation.
		iterTimer.ObserveDuration()
		if over >= prevOver || iter >= reuseMaxIter {
			reuseOK = false
		}
		prevOver = over
		if opts.Events.Enabled() {
			var pops int64
			for _, sc := range scratches {
				pops += sc.pops
			}
			opts.Events.Publish(events.Event{Kind: events.KindRouteIter, RouteIter: &events.RouteIter{
				Iter: iter, Overused: over, OveruseSum: overUnits, PresFac: presFac,
				Wirelength: res.WirelengthUsed(), HeapPops: pops - prevPops,
				DirtyNets: int(netsRouted - prevRouted),
			}})
			prevPops, prevRouted = pops, netsRouted
		}
		if over == 0 {
			res.Success = true
			publishCongestion(g, usage, res, &opts)
			return res, nil
		}
		if over < bestOver {
			bestOver, bestIter = over, iter
		}
		// Failure predictor: a converging negotiation keeps setting new
		// overuse lows every iteration or two (rising present/history costs
		// steadily squeeze the conflict set), while an unroutable width
		// oscillates around a floor. Once no new low has appeared for
		// predictStall iterations AND the best low is still far from zero,
		// declare the width unroutable instead of burning the rest of the
		// MaxIters budget — failing trials dominate the min-channel-width
		// search's cost by an order of magnitude.
		if !opts.NoFailurePredictor && iter-bestIter >= predictStall && bestOver >= predictMinOver {
			break
		}
		// Timing-driven recompute: every net now has a committed route, so
		// the callback can extract real routed delays. The committed routing
		// is identical at every worker count, hence so is the criticality
		// vector the next iteration searches with.
		if opts.Criticality != nil {
			setCrit(opts.Criticality(g, routes))
			critUpdates++
		}
		presFac *= opts.PresFacMult
	}
	publishCongestion(g, usage, res, &opts)
	return res, nil
}

// predictStall and predictMinOver gate the routing failure predictor: a
// trial is abandoned once predictStall consecutive iterations fail to set
// a new overused-node low while that low is still at least predictMinOver.
// Both margins are deliberately generous — observed successful trials
// never go more than ~3 iterations without a new low, and near-converged
// endgames (a handful of overused nodes) are always allowed to run to
// MaxIters — so the predictor only fires on trials that oscillate far
// from closure.
const (
	predictStall   = 12
	predictMinOver = 10
)

// publishCongestion emits the final per-channel-segment usage map as a
// route_congestion event — the heatmap's congestion half, also emitted for
// failed routings (an unroutable map shows where the pressure is).
// Segments are keyed by the same structural coordinates
// internal/fault.WireRef uses and listed in node-ID order, so the derived
// artifact is byte-stable.
func publishCongestion(g *rrgraph.Graph, usage []int, res *Result, opts *Options) {
	if !opts.Events.Enabled() {
		return
	}
	rc := &events.RouteCongestion{Width: g.W, Iterations: res.Iterations, Success: res.Success}
	for id, n := range g.Nodes {
		if (n.Type != rrgraph.ChanX && n.Type != rrgraph.ChanY) || usage[id] == 0 {
			continue
		}
		rc.Segments = append(rc.Segments, events.Segment{
			Vertical: n.Type == rrgraph.ChanY, X: n.X, Y: n.Y, Track: n.Track,
			Usage: usage[id], Capacity: n.Capacity,
		})
	}
	opts.Events.Publish(events.Event{Kind: events.KindRouteCongestion, RouteCongestion: rc})
}

// netBatchSize is the number of nets that share one congestion snapshot.
// It is a fixed constant — never derived from Workers or GOMAXPROCS — so
// batch boundaries, and therefore the routing, are identical at every
// parallelism level. Smaller batches track congestion more closely
// (approaching the classic one-net-at-a-time PathFinder as the size goes
// to 1); larger batches expose more parallelism per synchronization.
const netBatchSize = 32

// reuseMaxIter is the last PathFinder iteration whose routes may be
// reused incrementally in the next one. The early iterations carry the
// bulk of the rip-up churn (and heap pops); bounding reuse to them keeps
// the endgame — where minimum-width feasibility is decided — identical in
// character to the classic algorithm.
const reuseMaxIter = 2

// tieBreak is the deterministic per-(net, node) cost perturbation in
// [0, 1e-4): a xorshift-style mix of the net's seed and the node ID. It is
// a pure function, so the routing stays identical across worker counts.
func tieBreak(seed uint32, id int) float64 {
	h := seed ^ uint32(id)*0x9E3779B9
	h ^= h >> 16
	h *= 0x45d9f3b
	h ^= h >> 16
	return float64(h&0xffff) * (1e-4 / 65536)
}

// Validate checks a successful routing: every path connected in the graph,
// starting at the net's source and ending at each sink, with no node over
// capacity.
func (r *Result) Validate(p *place.Problem, pl *place.Placement) error {
	usage := make([]int, len(r.Graph.Nodes))
	for ni, nr := range r.Routes {
		if nr == nil {
			return fmt.Errorf("route: net %s unrouted", p.Nets[ni].Signal)
		}
		srcLoc := pl.Loc[p.Nets[ni].Blocks[0]]
		wantSrc := r.Graph.SourceAt(srcLoc.X, srcLoc.Y)
		for si, path := range nr.Paths {
			if len(path) == 0 {
				return fmt.Errorf("route: net %s sink %d empty path", p.Nets[ni].Signal, si)
			}
			sinkLoc := pl.Loc[p.Nets[ni].Blocks[si+1]]
			wantSink := r.Graph.SinkAt(sinkLoc.X, sinkLoc.Y)
			if path[len(path)-1] != wantSink {
				return fmt.Errorf("route: net %s sink %d ends at node %d, want %d",
					p.Nets[ni].Signal, si, path[len(path)-1], wantSink)
			}
			// Path must start in the tree built from the source.
			if si == 0 && path[0] != wantSrc {
				return fmt.Errorf("route: net %s first path starts at %d, want source %d",
					p.Nets[ni].Signal, path[0], wantSrc)
			}
			for _, n := range path {
				if r.Graph.Dead(n) {
					return fmt.Errorf("route: net %s uses defective node %d (%s at %d,%d)",
						p.Nets[ni].Signal, n, r.Graph.Nodes[n].Type, r.Graph.Nodes[n].X, r.Graph.Nodes[n].Y)
				}
			}
			for i := 0; i+1 < len(path); i++ {
				if !r.Graph.HasEdge(path[i], path[i+1]) {
					return fmt.Errorf("route: net %s uses missing edge %d->%d",
						p.Nets[ni].Signal, path[i], path[i+1])
				}
			}
		}
		treeNodes := nr.Nodes()
		for si, path := range nr.Paths {
			if si > 0 && !treeNodes[path[0]] {
				return fmt.Errorf("route: net %s sink %d path detached", p.Nets[ni].Signal, si)
			}
		}
		for _, n := range nr.NodeList() {
			usage[n]++
		}
	}
	for id, u := range usage {
		if u > r.Graph.Nodes[id].Capacity {
			return fmt.Errorf("route: node %d (%s) used %d > capacity %d",
				id, r.Graph.Nodes[id].Type, u, r.Graph.Nodes[id].Capacity)
		}
	}
	return nil
}

// WirelengthUsed counts the wire segments occupied across all nets.
func (r *Result) WirelengthUsed() int {
	total := 0
	for _, nr := range r.Routes {
		if nr == nil {
			continue
		}
		for _, n := range nr.NodeList() {
			t := r.Graph.Nodes[n].Type
			if t == rrgraph.ChanX || t == rrgraph.ChanY {
				total += r.Graph.Nodes[n].Span
			}
		}
	}
	return total
}

// MinChannelWidth binary-searches the smallest channel width that routes
// successfully, returning that width and its routing.
func MinChannelWidth(p *place.Problem, pl *place.Placement, lo, hi int, opts Options) (int, *Result, error) {
	if lo < 1 {
		lo = 1
	}
	build := func(w int) (*Result, error) {
		a := p.Arch.Clone()
		a.Routing.ChannelWidth = w
		// A nil cache falls back to a plain Build; a real cache serves a
		// private clone, so the Mask below never contaminates other trials.
		g, err := opts.Cache.Get(a, opts.Obs)
		if err != nil {
			return nil, err
		}
		if opts.Mask != nil {
			opts.Mask(g)
		}
		return Route(p, pl, g, opts)
	}
	// Ensure hi is routable, growing if needed.
	var best *Result
	bestW := -1
	trials := 0
	defer func() { opts.Obs.Add("route.width_trials", int64(trials)) }()
	for {
		if err := opts.ctxErr(); err != nil {
			return 0, nil, fmt.Errorf("route: %w", err)
		}
		trials++
		r, err := build(hi)
		if err == nil && r.Success {
			best, bestW = r, hi
			break
		}
		// Cancellation is not congestion; wider channels cannot fix it.
		// ErrNoPath, by contrast, may clear up: extra tracks can restore
		// connectivity through a defect-riddled channel.
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return 0, nil, err
		}
		if hi > 512 {
			return 0, nil, fmt.Errorf("route: %w even at W=%d", ErrUnroutable, hi)
		}
		hi *= 2
	}
	for lo < bestW {
		if err := opts.ctxErr(); err != nil {
			return 0, nil, fmt.Errorf("route: %w", err)
		}
		mid := (lo + bestW) / 2
		trials++
		r, err := build(mid)
		if err == nil && r.Success {
			best, bestW = r, mid
		} else {
			lo = mid + 1
		}
	}
	return bestW, best, nil
}
