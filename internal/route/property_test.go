package route_test

// Property-based routing tests (external test package: the check engine
// imports route, so these live outside the package to avoid the cycle).
// Seeded-random netlists are packed, placed and routed, then the result is
// audited with the flow's own stage-boundary rules: the RR-graph audit
// (route/rr-*), per-net connectivity (route/connectivity) and the
// defect-aware route/dead-resource rule. Every random stream is explicitly
// seeded (rand.New(rand.NewSource(seed))), as the seededrand analyzer
// requires.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/check"
	"fpgaflow/internal/fault"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/pack"
	"fpgaflow/internal/place"
	"fpgaflow/internal/route"
	"fpgaflow/internal/rrgraph"
)

// randomBLIF builds a layered random combinational netlist: nIn primary
// inputs, layers×perLayer two-input gates with random non-constant truth
// tables, and collector outputs covering the last layer. Deterministic in
// seed.
func randomBLIF(seed int64, nIn, layers, perLayer, nOut int) string {
	rng := rand.New(rand.NewSource(seed))
	var b strings.Builder
	fmt.Fprintf(&b, ".model rnd%d\n.inputs", seed)
	pool := make([]string, 0, nIn+layers*perLayer)
	for i := 0; i < nIn; i++ {
		s := fmt.Sprintf("i%d", i)
		pool = append(pool, s)
		b.WriteString(" " + s)
	}
	b.WriteString("\n.outputs")
	for i := 0; i < nOut; i++ {
		fmt.Fprintf(&b, " o%d", i)
	}
	b.WriteString("\n")
	gate := func(a, c, out string) {
		mask := 1 + rng.Intn(14) // non-constant 2-input truth table
		fmt.Fprintf(&b, ".names %s %s %s\n", a, c, out)
		for m := 0; m < 4; m++ {
			if mask&(1<<m) != 0 {
				fmt.Fprintf(&b, "%d%d 1\n", m>>1&1, m&1)
			}
		}
	}
	prev := pool
	for l := 0; l < layers; l++ {
		var cur []string
		for g := 0; g < perLayer; g++ {
			name := fmt.Sprintf("n%d_%d", l, g)
			a := prev[g%len(prev)] // cover the previous layer: no dead gates
			c := pool[rng.Intn(len(pool))]
			for c == a {
				c = pool[rng.Intn(len(pool))]
			}
			gate(a, c, name)
			cur = append(cur, name)
		}
		pool = append(pool, cur...)
		prev = cur
	}
	for i := 0; i < nOut; i++ {
		a := prev[(2*i)%len(prev)]
		c := prev[(2*i+1)%len(prev)]
		gate(a, c, fmt.Sprintf("o%d", i))
	}
	b.WriteString(".end\n")
	return b.String()
}

// placeRandom packs and places a random netlist on the paper architecture.
func placeRandom(t *testing.T, seed int64) (*place.Problem, *place.Placement) {
	t.Helper()
	_, p, pl := packPlaceRandom(t, seed)
	return p, pl
}

// packPlaceRandom is placeRandom keeping the packing (the timing-driven
// property suite needs it to recompute criticalities).
func packPlaceRandom(t *testing.T, seed int64) (*pack.Packing, *place.Problem, *place.Placement) {
	t.Helper()
	src := randomBLIF(seed, 6, 3, 6, 3)
	nl, err := netlist.ParseBLIF(src)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	a := arch.Paper()
	pk, err := pack.Pack(nl, pack.Params{N: a.CLB.N, K: a.CLB.K, I: a.CLB.I})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	p, err := place.NewProblem(a, pk)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	p.AutoSize()
	pl, err := place.Place(p, place.Options{Seed: seed, InnerNum: 1})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return pk, p, pl
}

// TestPropertyRandomNetlistsRouteClean routes a family of seeded-random
// netlists in parallel mode and audits every result with the route-stage
// check rules; it also asserts the worker-count invariance property on each
// instance (serial and parallel route trees must be identical).
func TestPropertyRandomNetlistsRouteClean(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			p, pl := placeRandom(t, seed)
			g, err := rrgraph.Build(p.Arch)
			if err != nil {
				t.Fatal(err)
			}
			r, err := route.Route(p, pl, g, route.Options{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !r.Success {
				t.Fatalf("unroutable: %d iterations, %d overused", r.Iterations, r.Overused)
			}
			rep := check.RunStage(check.StageRoute, &check.Artifacts{
				Graph: g, Routing: r, Problem: p, Placement: pl,
			})
			if rep.RulesRun == 0 {
				t.Fatal("no route-stage rules ran")
			}
			for _, d := range rep.Diags {
				if d.Severity == check.Error {
					t.Errorf("check %s: %s", d.Rule, d.Message)
				}
			}
			// Worker-count invariance on this instance.
			g2, err := rrgraph.Build(p.Arch)
			if err != nil {
				t.Fatal(err)
			}
			r1, err := route.Route(p, pl, g2, route.Options{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			j1, _ := json.Marshal(r1.Routes)
			jN, _ := json.Marshal(r.Routes)
			if string(j1) != string(jN) {
				t.Error("route trees differ between -j 1 and -j 4")
			}
		})
	}
}

// TestDefectMaskReappliedAtEscalatedWidthFromCache is the regression test
// for Options.Mask + Options.Cache: every channel-width trial of the binary
// search must receive a private clone with the defect map re-applied, and
// the mask of one trial (or one whole search) must never leak into graphs
// the cache serves later.
func TestDefectMaskReappliedAtEscalatedWidthFromCache(t *testing.T) {
	p, pl := placeRandom(t, 3)
	dm, err := fault.Generate(p.Arch, 7, fault.Rates{DeadWire: 0.08, DeadSwitch: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if dm.Count() == 0 {
		t.Fatal("defect map empty; raise rates")
	}
	cache := rrgraph.NewCache(0)
	maskApplied := 0
	masked := route.Options{Cache: cache, Mask: func(g *rrgraph.Graph) {
		st := dm.Apply(g)
		if st.DeadWires == 0 {
			t.Error("trial graph had no wire to mask")
		}
		maskApplied++
	}}
	w1, r1, err := route.MinChannelWidth(p, pl, 1, p.Arch.Routing.ChannelWidth, masked)
	if err != nil {
		t.Fatal(err)
	}
	if maskApplied < 2 {
		t.Fatalf("mask applied %d times; the binary search must re-mask every trial", maskApplied)
	}
	if r1.Graph.DeadCount() == 0 {
		t.Fatal("final trial graph lost its defect mask")
	}
	// The routing must not use a defective resource (the flow's
	// route/dead-resource rule, here on a defect-carrying artifact set).
	rep := check.RunStage(check.StageRoute, &check.Artifacts{
		Graph: r1.Graph, Routing: r1, Problem: p, Placement: pl, Defects: dm,
	})
	for _, d := range rep.Diags {
		if d.Severity == check.Error {
			t.Errorf("masked search: check %s: %s", d.Rule, d.Message)
		}
	}

	// A second search from the SAME cache without a mask must see pristine
	// graphs at every width — including the widths the masked search
	// already populated (cache hits).
	pristine := route.Options{Cache: cache}
	w2, r2, err := route.MinChannelWidth(p, pl, 1, p.Arch.Routing.ChannelWidth, pristine)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Graph.DeadCount() != 0 {
		t.Fatalf("defect mask leaked through the cache: %d dead nodes in unmasked trial", r2.Graph.DeadCount())
	}
	hits, misses := cache.Stats()
	if hits == 0 {
		t.Fatalf("second search never hit the cache (hits=%d misses=%d)", hits, misses)
	}
	// Masking wires can only cost channel width, never gain it.
	if w1 < w2 {
		t.Errorf("masked min width %d < pristine min width %d", w1, w2)
	}
}
