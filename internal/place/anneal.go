package place

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"fpgaflow/internal/obs"
	"fpgaflow/internal/obs/events"
)

// Location is a grid site plus sub-slot (pads share sites up to IORate).
type Location struct {
	X, Y, Sub int
}

// Placement assigns every block a location.
type Placement struct {
	Problem *Problem
	Loc     []Location
	// Cost is the final (possibly criticality-weighted) bounding-box cost.
	Cost float64
	// Moves and Accepted count annealing statistics.
	Moves, Accepted int

	weights []float64
}

// Options tunes the annealer.
type Options struct {
	Seed int64
	// InnerNum scales moves per temperature: moves = InnerNum * nBlocks^(4/3)
	// (VPR default 10; use 1 for fast mode).
	InnerNum float64
	// FixedSeedOnly disables annealing and keeps the initial placement
	// (for tests and debugging).
	FixedSeedOnly bool
	// Weights are per-net cost multipliers (timing-driven placement; see
	// CriticalityWeights). nil means uniform.
	Weights []float64
	// Fixed pins blocks (by name) to locations; fixed blocks never move
	// (pad constraint files / stable pinout across reconfigurations).
	Fixed map[string]Location
	// Bad marks grid sites (x, y) as defective: no block is placed there
	// and a Fixed block pinned there is an error. An IO coordinate in Bad
	// removes every pad sub-slot of that site.
	Bad map[[2]int]bool
	// Workers is the number of concurrent move-evaluation workers (the CLI
	// -j knob): 0 uses GOMAXPROCS, 1 evaluates serially. Every worker
	// count produces the bit-identical placement: moves are proposed
	// serially from the main RNG against the state frozen at batch entry,
	// their cost deltas are evaluated in parallel (pure reads of the
	// frozen state), and commits happen serially in proposal order — a
	// proposal invalidated by an earlier commit in its batch is re-evaluated
	// against live state at commit time. Each proposal's Metropolis
	// acceptance draw is taken at proposal time, so the random stream never
	// depends on evaluation scheduling.
	Workers int
	// Ctx cancels annealing cooperatively: checked once per temperature
	// step; the annealer returns the context's error. nil disables.
	Ctx context.Context
	// Obs receives annealer counters (place.moves, place.accepted,
	// place.temperature_steps); nil disables reporting. Counters are
	// atomic, so parallel multi-seed runs aggregate safely.
	Obs *obs.Trace
	// Events receives one place_step event per temperature step and a
	// final place_map occupancy event (convergence telemetry; see
	// internal/obs/events). nil or disabled costs one atomic load per
	// temperature step. PlaceBest seeds share one bus; events carry the
	// seed to tell the streams apart.
	Events *events.Bus
}

// site is an indexable placement site.
type site struct{ x, y, sub int }

// Place runs the annealer and returns a legal placement.
func Place(p *Problem, opts Options) (*Placement, error) {
	if opts.InnerNum == 0 {
		opts.InnerNum = 10
	}
	a := p.Arch
	clbs, pads := p.CountKinds()
	rng := rand.New(rand.NewSource(opts.Seed))

	var clbSites, ioSites []site
	for x := 1; x <= a.Cols; x++ {
		for y := 1; y <= a.Rows; y++ {
			if opts.Bad[[2]int{x, y}] {
				continue // defective logic site
			}
			clbSites = append(clbSites, site{x, y, 0})
		}
	}
	for x := 0; x < a.Cols+2; x++ {
		for y := 0; y < a.Rows+2; y++ {
			onX := x == 0 || x == a.Cols+1
			onY := y == 0 || y == a.Rows+1
			if onX != onY {
				if opts.Bad[[2]int{x, y}] {
					continue // defective pad site
				}
				for s := 0; s < a.IORate; s++ {
					ioSites = append(ioSites, site{x, y, s})
				}
			}
		}
	}
	if clbs > len(clbSites) {
		return nil, fmt.Errorf("place: %d CLBs exceed %d usable sites (capacity %d, %d defective): %w",
			clbs, len(clbSites), a.LogicCapacity(), a.LogicCapacity()-len(clbSites), ErrNoSpace)
	}
	if pads > len(ioSites) {
		return nil, fmt.Errorf("place: %d pads exceed %d usable pad slots (capacity %d, %d defective): %w",
			pads, len(ioSites), a.IOCapacity(), a.IOCapacity()-len(ioSites), ErrNoSpace)
	}

	if opts.Weights != nil && len(opts.Weights) != len(p.Nets) {
		return nil, fmt.Errorf("place: %d weights for %d nets", len(opts.Weights), len(p.Nets))
	}
	pl := &Placement{Problem: p, Loc: make([]Location, len(p.Blocks)), weights: opts.Weights}
	// occupant maps a site to the block there (-1 empty), separate per class.
	occ := make(map[site]int, len(clbSites)+len(ioSites))
	for _, s := range clbSites {
		occ[s] = -1
	}
	for _, s := range ioSites {
		occ[s] = -1
	}
	// Fixed blocks claim their sites first, in sorted-name order: which
	// conflict is reported (and therefore the whole error path) must not
	// depend on map iteration order.
	fixed := make([]bool, len(p.Blocks))
	fixedNames := make([]string, 0, len(opts.Fixed))
	for name := range opts.Fixed {
		fixedNames = append(fixedNames, name)
	}
	sort.Strings(fixedNames)
	for _, name := range fixedNames {
		loc := opts.Fixed[name]
		id := p.BlockByName(name)
		if id < 0 {
			return nil, fmt.Errorf("place: fixed block %q does not exist", name)
		}
		s := site{loc.X, loc.Y, loc.Sub}
		prev, known := occ[s]
		if !known {
			return nil, fmt.Errorf("place: fixed block %q at illegal site %v", name, loc)
		}
		onX := loc.X == 0 || loc.X == a.Cols+1
		onY := loc.Y == 0 || loc.Y == a.Rows+1
		isIO := onX != onY
		if (p.Blocks[id].Kind == BlockCLB) == isIO {
			return nil, fmt.Errorf("place: fixed %s %q on incompatible site %v", p.Blocks[id].Kind, name, loc)
		}
		if prev >= 0 {
			return nil, fmt.Errorf("place: fixed blocks %q and %q share %v", p.Blocks[prev].Name, name, loc)
		}
		occ[s] = id
		pl.Loc[id] = loc
		fixed[id] = true
	}
	// Random initial placement for the rest.
	rng.Shuffle(len(clbSites), func(i, j int) { clbSites[i], clbSites[j] = clbSites[j], clbSites[i] })
	rng.Shuffle(len(ioSites), func(i, j int) { ioSites[i], ioSites[j] = ioSites[j], ioSites[i] })
	ci, ii := 0, 0
	for _, b := range p.Blocks {
		if fixed[b.ID] {
			continue
		}
		var s site
		if b.Kind == BlockCLB {
			for occ[clbSites[ci]] >= 0 {
				ci++
			}
			s = clbSites[ci]
			ci++
		} else {
			for occ[ioSites[ii]] >= 0 {
				ii++
			}
			s = ioSites[ii]
			ii++
		}
		occ[s] = b.ID
		pl.Loc[b.ID] = Location{s.x, s.y, s.sub}
	}

	cost := 0.0
	netCost := make([]float64, len(p.Nets))
	for i := range p.Nets {
		netCost[i] = p.netBBCost(pl, i)
		cost += netCost[i]
	}

	if opts.FixedSeedOnly || len(p.Nets) == 0 {
		pl.Cost = cost
		publishPlaceMap(p, pl, opts)
		return pl, nil
	}
	tempSteps := 0
	defer func() {
		opts.Obs.Add("place.moves", int64(pl.Moves))
		opts.Obs.Add("place.accepted", int64(pl.Accepted))
		opts.Obs.Add("place.temperature_steps", int64(tempSteps))
	}()

	// deltaFor computes the cost delta of moving block b to site s (swapping
	// with any occupant), without committing.
	siteOf := func(b int) site {
		l := pl.Loc[b]
		return site{l.X, l.Y, l.Sub}
	}
	// affectedNetsInto collects the nets touching b1 (and b2, when the move
	// is a swap) into dst, which is truncated and reused: proposal slots keep
	// their nets buffers across batches so steady-state evaluation allocates
	// nothing.
	affectedNetsInto := func(dst []int, b1, b2 int) []int {
		dst = append(dst[:0], p.Blocks[b1].Nets...)
		if b2 >= 0 {
			for _, n := range p.Blocks[b2].Nets {
				dup := false
				for _, m := range dst {
					if m == n {
						dup = true
						break
					}
				}
				if !dup {
					dst = append(dst, n)
				}
			}
		}
		return dst
	}
	affectedNets := func(b1, b2 int) []int { return affectedNetsInto(nil, b1, b2) }
	apply := func(b int, s site) {
		occ[siteOf(b)] = -1
		occ[s] = b
		pl.Loc[b] = Location{s.x, s.y, s.sub}
	}

	// Initial temperature: 20 x stddev of cost over random trial moves (VPR).
	nBlocks := len(p.Blocks)
	trials := nBlocks
	if trials < 20 {
		trials = 20
	}
	var sum, sum2 float64
	for i := 0; i < trials; i++ {
		b := rng.Intn(nBlocks)
		if fixed[b] {
			continue
		}
		cands := clbSites
		if p.Blocks[b].Kind != BlockCLB {
			cands = ioSites
		}
		s := cands[rng.Intn(len(cands))]
		if other := occ[s]; other >= 0 && fixed[other] {
			continue
		}
		d := p.trialDelta(pl, occ, b, s, netCost, affectedNets, apply, siteOf, true, rng)
		sum += d
		sum2 += d * d
	}
	mean := sum / float64(trials)
	variance := sum2/float64(trials) - mean*mean
	if variance < 0 {
		variance = 0
	}
	temp := 20 * math.Sqrt(variance)
	if temp <= 0 {
		temp = 1
	}

	movesPerT := int(opts.InnerNum * math.Pow(float64(nBlocks), 4.0/3.0))
	if movesPerT < 16 {
		movesPerT = 16
	}
	rlim := float64(max(a.Cols, a.Rows) + 2)
	exitT := 0.005 * cost / float64(len(p.Nets))

	// Snapshot-evaluate / ordered-commit move engine. Proposals are drawn
	// serially from the main RNG against the state left by the previous
	// batch, cost deltas are evaluated concurrently (pure reads — nothing
	// mutates between generation and commit), and commits run serially in
	// proposal order. A proposal whose ingredients were touched by an
	// earlier commit in its own batch is re-evaluated against live state at
	// commit time, so the outcome is independent of worker scheduling: any
	// Workers value yields the bit-identical placement.
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	batch := make([]proposal, 0, moveBatchSize)
	// staleNets is the serial commit loop's scratch for re-evaluated
	// proposals; it grows once and is reused for the rest of the anneal.
	var staleNets []int
	// touched tracks blocks and nets modified by commits in the current
	// batch (epoch-stamped so clearing is O(1) per batch).
	touchedBlock := make([]uint32, nBlocks)
	touchedNet := make([]uint32, len(p.Nets))
	batchEpoch := uint32(0)
	commitSwap := func(b int, s site, other int, cur site) {
		occ[cur] = -1
		occ[s] = b
		pl.Loc[b] = Location{s.x, s.y, s.sub}
		if other >= 0 {
			occ[cur] = other
			pl.Loc[other] = Location{cur.x, cur.y, cur.sub}
		}
	}
	evalProposal := func(pr *proposal) {
		pr.nets = affectedNetsInto(pr.nets, pr.b, pr.other)
		old := 0.0
		for _, n := range pr.nets {
			old += netCost[n]
		}
		newSum := 0.0
		l1 := Location{pr.s.x, pr.s.y, pr.s.sub}
		l2 := Location{pr.cur.x, pr.cur.y, pr.cur.sub}
		for _, n := range pr.nets {
			newSum += p.netBBCostAt(pl, n, pr.b, l1, pr.other, l2)
		}
		pr.delta = newSum - old
	}

	// stepHist times each temperature step (one observation per step, not
	// per move — the hot move loops stay untouched); nil Obs makes the
	// timers inert with no clock reads.
	stepHist := opts.Obs.Histogram("place.step_seconds")
	for temp > exitT {
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, fmt.Errorf("place: %w", err)
			}
		}
		stepTimer := stepHist.StartTimer()
		accepted := 0
		flush := func() {
			if len(batch) == 0 {
				return
			}
			// Parallel evaluation against the frozen state. Fan-out is capped
			// by the work available: spawning a goroutine costs more than
			// evaluating a handful of proposals, so each worker must have at
			// least evalChunkMin proposals to justify its startup (tiny
			// designs therefore evaluate serially — same result, see below).
			w := workers
			if most := len(batch) / evalChunkMin; w > most {
				w = most
			}
			if w <= 1 {
				for i := range batch {
					evalProposal(&batch[i])
				}
			} else {
				var wg sync.WaitGroup
				for k := 0; k < w; k++ {
					wg.Add(1)
					go func(k int) {
						defer wg.Done()
						for i := k; i < len(batch); i += w {
							evalProposal(&batch[i])
						}
					}(k)
				}
				wg.Wait()
			}
			// Ordered commit. A commit that moves a block or re-costs a net
			// stales every later proposal overlapping it; stale proposals are
			// re-evaluated (and re-validated) against live state.
			batchEpoch++
			//fpga:hotloop
			for i := range batch {
				pr := &batch[i]
				pl.Moves++
				stale := touchedBlock[pr.b] == batchEpoch ||
					(pr.other >= 0 && touchedBlock[pr.other] == batchEpoch) ||
					occ[pr.s] != pr.other || siteOf(pr.b) != pr.cur
				if !stale {
					for _, n := range pr.nets {
						if touchedNet[n] == batchEpoch {
							stale = true
							break
						}
					}
				}
				b, s, cur, other, nets, delta := pr.b, pr.s, pr.cur, pr.other, pr.nets, pr.delta
				if stale {
					cur = siteOf(b)
					other = occ[s]
					if s == cur || other == b || (other >= 0 && fixed[other]) {
						continue // degenerate or illegal after earlier commits
					}
					staleNets = affectedNetsInto(staleNets, b, other)
					nets = staleNets
					old := 0.0
					for _, n := range nets {
						old += netCost[n]
					}
					newSum := 0.0
					l1 := Location{s.x, s.y, s.sub}
					l2 := Location{cur.x, cur.y, cur.sub}
					for _, n := range nets {
						newSum += p.netBBCostAt(pl, n, b, l1, other, l2)
					}
					delta = newSum - old
				}
				if delta <= 0 || pr.u < math.Exp(-delta/temp) {
					commitSwap(b, s, other, cur)
					for _, n := range nets {
						netCost[n] = p.netBBCost(pl, n)
						touchedNet[n] = batchEpoch
					}
					touchedBlock[b] = batchEpoch
					if other >= 0 {
						touchedBlock[other] = batchEpoch
					}
					cost += delta
					accepted++
				}
			}
			batch = batch[:0]
		}
		//fpga:hotloop
		for m := 0; m < movesPerT; m++ {
			b := rng.Intn(nBlocks)
			if fixed[b] {
				continue
			}
			s, ok := p.randomSiteNear(pl, b, rlim, clbSites, ioSites, rng)
			if !ok {
				continue
			}
			cur := siteOf(b)
			if s == cur {
				continue
			}
			other := occ[s]
			if other >= 0 && fixed[other] {
				continue // never displace a pinned block
			}
			// Reuse the slot in place (cap is moveBatchSize and flush fires at
			// the cap) so each slot's nets buffer survives across batches.
			batch = batch[:len(batch)+1]
			pr := &batch[len(batch)-1]
			pr.b, pr.s, pr.cur, pr.other, pr.u = b, s, cur, other, rng.Float64()
			if len(batch) == moveBatchSize {
				flush()
			}
		}
		flush()
		pl.Accepted += accepted
		tempSteps++
		stepTimer.ObserveDuration()
		accRate := float64(accepted) / float64(movesPerT)
		stepTemp := temp
		// VPR adaptive schedule.
		var alpha float64
		switch {
		case accRate > 0.96:
			alpha = 0.5
		case accRate > 0.8:
			alpha = 0.9
		case accRate > 0.15:
			alpha = 0.95
		default:
			alpha = 0.8
		}
		temp *= alpha
		rlim *= 1 - 0.44 + accRate
		if rlim < 1 {
			rlim = 1
		}
		if m := float64(max(a.Cols, a.Rows) + 2); rlim > m {
			rlim = m
		}
		if opts.Events.Enabled() {
			opts.Events.Publish(events.Event{Kind: events.KindPlaceStep, PlaceStep: &events.PlaceStep{
				Seed: opts.Seed, Step: tempSteps, Temperature: stepTemp, Cost: cost,
				AcceptRate: accRate, RangeLimit: rlim, Moves: movesPerT,
			}})
		}
	}

	// Recompute exactly to wash out float drift.
	cost = 0
	for i := range p.Nets {
		netCost[i] = p.netBBCost(pl, i)
		cost += netCost[i]
	}
	pl.Cost = cost
	publishPlaceMap(p, pl, opts)
	return pl, pl.Validate()
}

// publishPlaceMap emits the final occupancy map of a placement as a
// place_map event: per-CLB BLE utilization and per-pad-site sub-slot usage
// keyed by grid coordinates (the heatmap's placement half). Sites are
// listed in deterministic order (blocks, then sorted pad sites) so the
// derived heatmap artifact is byte-stable.
func publishPlaceMap(p *Problem, pl *Placement, opts Options) {
	if !opts.Events.Enabled() {
		return
	}
	a := p.Arch
	pm := &events.PlaceMap{Seed: opts.Seed, Cols: a.Cols, Rows: a.Rows, Cost: pl.Cost}
	padUsed := make(map[[2]int]int)
	for _, b := range p.Blocks {
		l := pl.Loc[b.ID]
		if b.Kind == BlockCLB {
			used := 1
			if b.Cluster != nil {
				used = len(b.Cluster.BLEs)
			}
			pm.CLBs = append(pm.CLBs, events.Cell{X: l.X, Y: l.Y, Used: used, Capacity: a.CLB.N})
		} else {
			padUsed[[2]int{l.X, l.Y}]++
		}
	}
	pads := make([][2]int, 0, len(padUsed))
	for xy := range padUsed {
		pads = append(pads, xy)
	}
	sort.Slice(pads, func(i, j int) bool {
		if pads[i][0] != pads[j][0] {
			return pads[i][0] < pads[j][0]
		}
		return pads[i][1] < pads[j][1]
	})
	for _, xy := range pads {
		pm.Pads = append(pm.Pads, events.Cell{X: xy[0], Y: xy[1], Used: padUsed[xy], Capacity: a.IORate})
	}
	opts.Events.Publish(events.Event{Kind: events.KindPlaceMap, PlaceMap: pm})
}

// proposal is one speculative annealer move: block b moves from cur to s,
// swapping with other (the occupant of s at proposal time, -1 for an empty
// site). u is the move's Metropolis acceptance draw, taken from the main
// RNG at proposal time so the random stream never depends on evaluation
// scheduling. nets and delta are filled by the parallel evaluation pass.
type proposal struct {
	b, other int
	s, cur   site
	u        float64
	nets     []int
	delta    float64
}

// moveBatchSize proposals are generated before each parallel evaluation /
// ordered-commit round. Larger batches amortize goroutine fan-out but
// raise the share of proposals that go stale against an earlier commit in
// their own batch and need a serial re-evaluation.
const moveBatchSize = 56

// evalChunkMin is the minimum number of proposals per evaluation worker:
// below it, goroutine startup costs more than the evaluations themselves,
// so the fan-out is capped at len(batch)/evalChunkMin workers regardless
// of Options.Workers. The placement result is identical either way.
const evalChunkMin = 16

// trialDelta measures a move's delta then reverts it (used for the initial
// temperature estimate); commit selects whether to keep the move.
func (p *Problem) trialDelta(pl *Placement, occ map[site]int, b int, s site,
	netCost []float64, affectedNets func(int, int) []int, apply func(int, site), siteOf func(int) site,
	revert bool, rng *rand.Rand) float64 {
	cur := siteOf(b)
	if s == cur {
		return 0
	}
	other := occ[s]
	nets := affectedNets(b, other)
	old := 0.0
	for _, n := range nets {
		old += netCost[n]
	}
	if other >= 0 {
		apply(other, site{-3, -3, -3})
	}
	apply(b, s)
	if other >= 0 {
		apply(other, cur)
	}
	newSum := 0.0
	for _, n := range nets {
		newSum += p.netBBCost(pl, n)
	}
	if revert {
		if other >= 0 {
			apply(other, site{-4, -4, -4})
		}
		apply(b, cur)
		if other >= 0 {
			apply(other, s)
		}
	}
	return newSum - old
}

// randomSiteNear picks a legal site for block b within the range limit.
func (p *Problem) randomSiteNear(pl *Placement, b int, rlim float64, clbSites, ioSites []site, rng *rand.Rand) (site, bool) {
	cands := clbSites
	if p.Blocks[b].Kind != BlockCLB {
		cands = ioSites
	}
	l := pl.Loc[b]
	r := int(rlim)
	for try := 0; try < 12; try++ {
		s := cands[rng.Intn(len(cands))]
		if abs(s.x-l.X) <= r && abs(s.y-l.Y) <= r {
			return s, true
		}
	}
	return site{}, false
}

// netBBCost is the VPR bounding-box cost: q(n) * (bbx + bby), with the
// crossing-count correction q for nets with more than 3 terminals.
func (p *Problem) netBBCost(pl *Placement, netIdx int) float64 {
	n := p.Nets[netIdx]
	minX, maxX := 1<<30, -1
	minY, maxY := 1<<30, -1
	for _, b := range n.Blocks {
		l := pl.Loc[b]
		if l.X < minX {
			minX = l.X
		}
		if l.X > maxX {
			maxX = l.X
		}
		if l.Y < minY {
			minY = l.Y
		}
		if l.Y > maxY {
			maxY = l.Y
		}
	}
	cost := crossingCount(len(n.Blocks)) * float64((maxX-minX)+(maxY-minY)+2)
	if pl.weights != nil {
		cost *= pl.weights[netIdx]
	}
	return cost
}

// netBBCostAt is netBBCost evaluated with two block positions overridden
// (b1 at l1, b2 at l2; b2 may be -1) without mutating the placement. The
// parallel move evaluator uses it to cost hypothetical swaps against the
// frozen state — it must mirror netBBCost exactly.
func (p *Problem) netBBCostAt(pl *Placement, netIdx, b1 int, l1 Location, b2 int, l2 Location) float64 {
	n := p.Nets[netIdx]
	minX, maxX := 1<<30, -1
	minY, maxY := 1<<30, -1
	for _, b := range n.Blocks {
		l := pl.Loc[b]
		if b == b1 {
			l = l1
		} else if b == b2 {
			l = l2
		}
		if l.X < minX {
			minX = l.X
		}
		if l.X > maxX {
			maxX = l.X
		}
		if l.Y < minY {
			minY = l.Y
		}
		if l.Y > maxY {
			maxY = l.Y
		}
	}
	cost := crossingCount(len(n.Blocks)) * float64((maxX-minX)+(maxY-minY)+2)
	if pl.weights != nil {
		cost *= pl.weights[netIdx]
	}
	return cost
}

// crossingCount is the classic Cheng correction table for the expected
// wirelength of multi-terminal nets.
func crossingCount(terminals int) float64 {
	table := []float64{0, 1, 1, 1, 1.0828, 1.1536, 1.2206, 1.2823, 1.3385, 1.3991, 1.4493}
	if terminals < len(table) {
		return table[terminals]
	}
	return 1.4493 + 0.02616*float64(terminals-10)
}

// Validate checks placement legality: every block on a compatible site, no
// two blocks sharing a site/sub-slot, coordinates in range.
func (pl *Placement) Validate() error {
	p := pl.Problem
	a := p.Arch
	used := make(map[Location]int)
	for _, b := range p.Blocks {
		l := pl.Loc[b.ID]
		if prev, dup := used[l]; dup {
			return fmt.Errorf("place: blocks %q and %q share %v", p.Blocks[prev].Name, b.Name, l)
		}
		used[l] = b.ID
		onX := l.X == 0 || l.X == a.Cols+1
		onY := l.Y == 0 || l.Y == a.Rows+1
		switch b.Kind {
		case BlockCLB:
			if l.X < 1 || l.X > a.Cols || l.Y < 1 || l.Y > a.Rows || l.Sub != 0 {
				return fmt.Errorf("place: CLB %q at illegal %v", b.Name, l)
			}
		default:
			if onX == onY || l.Sub < 0 || l.Sub >= a.IORate {
				return fmt.Errorf("place: pad %q at illegal %v", b.Name, l)
			}
		}
	}
	return nil
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
