// Package place implements the placement half of the paper's VPR stage: an
// adaptive simulated-annealing placer with the classic bounding-box
// wirelength cost, range-limited swap moves and the VPR cooling schedule.
package place

import (
	"fmt"
	"sort"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/pack"
)

// BlockKind classifies placeable blocks.
type BlockKind int

const (
	// BlockCLB is a logic cluster.
	BlockCLB BlockKind = iota
	// BlockInpad is a primary-input pad.
	BlockInpad
	// BlockOutpad is a primary-output pad.
	BlockOutpad
)

func (k BlockKind) String() string {
	switch k {
	case BlockCLB:
		return "clb"
	case BlockInpad:
		return "inpad"
	case BlockOutpad:
		return "outpad"
	}
	return fmt.Sprintf("BlockKind(%d)", int(k))
}

// Block is one placeable object.
type Block struct {
	ID   int
	Name string
	Kind BlockKind
	// Cluster is set for BlockCLB.
	Cluster *pack.Cluster
	// Nets are indices into Problem.Nets of nets touching this block.
	Nets []int
}

// Net is a placement net: a source block and sink blocks.
type Net struct {
	Signal string
	// Blocks[0] is the source; the rest are sinks (deduplicated).
	Blocks []int
}

// Problem is a placement instance.
type Problem struct {
	Arch   *arch.Arch
	Blocks []*Block
	Nets   []*Net
	// blockByName finds a block from its name (cluster output signal name
	// for CLBs, signal name for pads).
	blockByName map[string]int
}

// BlockByName returns the block index by name, or -1.
func (p *Problem) BlockByName(name string) int {
	if i, ok := p.blockByName[name]; ok {
		return i
	}
	return -1
}

// NewProblem builds a placement problem from a packing: one block per
// cluster, one inpad per primary input, one outpad per primary output, and
// one net per inter-cluster signal.
func NewProblem(a *arch.Arch, pk *pack.Packing) (*Problem, error) {
	p := &Problem{Arch: a, blockByName: make(map[string]int)}
	clusterBlock := make(map[*pack.Cluster]int)
	for _, c := range pk.Clusters {
		b := &Block{ID: len(p.Blocks), Name: fmt.Sprintf("clb%d", c.ID), Kind: BlockCLB, Cluster: c}
		p.Blocks = append(p.Blocks, b)
		clusterBlock[c] = b.ID
		p.blockByName[b.Name] = b.ID
	}
	for _, in := range pk.Netlist.Inputs {
		b := &Block{ID: len(p.Blocks), Name: in.Name, Kind: BlockInpad}
		p.Blocks = append(p.Blocks, b)
		p.blockByName[in.Name] = b.ID
	}
	for _, o := range pk.Netlist.Outputs {
		name := "out:" + o
		b := &Block{ID: len(p.Blocks), Name: name, Kind: BlockOutpad}
		p.Blocks = append(p.Blocks, b)
		p.blockByName[name] = b.ID
	}

	for _, n := range pk.ExternalNets() {
		var src int
		if n.SourceCluster != nil {
			src = clusterBlock[n.SourceCluster]
		} else {
			i, ok := p.blockByName[n.Signal]
			if !ok {
				return nil, fmt.Errorf("place: net %q has no source", n.Signal)
			}
			src = i
		}
		net := &Net{Signal: n.Signal, Blocks: []int{src}}
		for _, s := range n.SinkClusters {
			net.Blocks = append(net.Blocks, clusterBlock[s])
		}
		if n.IsPrimaryOutput {
			net.Blocks = append(net.Blocks, p.blockByName["out:"+n.Signal])
		}
		if len(net.Blocks) < 2 {
			continue // net never leaves its source; nothing to place for
		}
		idx := len(p.Nets)
		p.Nets = append(p.Nets, net)
		seen := map[int]bool{}
		for _, b := range net.Blocks {
			if !seen[b] {
				seen[b] = true
				p.Blocks[b].Nets = append(p.Blocks[b].Nets, idx)
			}
		}
	}
	sort.Slice(p.Nets, func(i, j int) bool { return p.Nets[i].Signal < p.Nets[j].Signal })
	// Re-link block->net indices after sorting.
	for _, b := range p.Blocks {
		b.Nets = b.Nets[:0]
	}
	for idx, net := range p.Nets {
		seen := map[int]bool{}
		for _, b := range net.Blocks {
			if !seen[b] {
				seen[b] = true
				p.Blocks[b].Nets = append(p.Blocks[b].Nets, idx)
			}
		}
	}
	return p, nil
}

// CountKinds returns the number of CLB and pad blocks.
func (p *Problem) CountKinds() (clbs, pads int) {
	for _, b := range p.Blocks {
		if b.Kind == BlockCLB {
			clbs++
		} else {
			pads++
		}
	}
	return
}

// AutoSize grows the architecture grid to fit the problem.
func (p *Problem) AutoSize() {
	clbs, pads := p.CountKinds()
	p.Arch.SizeGrid(clbs, pads)
}
