package place

import (
	"testing"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/pack"
)

const testBLIF = `
.model t
.inputs a b c d
.outputs o1 o2
.names a b x1
11 1
.names c d x2
10 1
01 1
.names x1 x2 o1
1- 1
-1 1
.names x1 c o2
11 1
.end
`

func buildProblem(t *testing.T, params pack.Params) *Problem {
	t.Helper()
	nl, err := netlist.ParseBLIF(testBLIF)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := pack.Pack(nl, params)
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Paper()
	a.CLB.N, a.CLB.K, a.CLB.I = params.N, params.K, params.I
	p, err := NewProblem(a, pk)
	if err != nil {
		t.Fatal(err)
	}
	p.AutoSize()
	return p
}

func TestNewProblemStructure(t *testing.T) {
	p := buildProblem(t, pack.Params{N: 1, K: 4, I: 4})
	clbs, pads := p.CountKinds()
	if clbs != 4 { // x1 x2 o1 o2, one per cluster at N=1
		t.Errorf("clbs = %d, want 4", clbs)
	}
	if pads != 6 { // 4 in + 2 out
		t.Errorf("pads = %d, want 6", pads)
	}
	// Every net: source first, at least one sink, all block refs valid.
	for _, n := range p.Nets {
		if len(n.Blocks) < 2 {
			t.Errorf("net %s has %d terminals", n.Signal, len(n.Blocks))
		}
		for _, b := range n.Blocks {
			if b < 0 || b >= len(p.Blocks) {
				t.Fatalf("net %s references block %d", n.Signal, b)
			}
		}
	}
	// Block->net back references consistent.
	for _, b := range p.Blocks {
		for _, ni := range b.Nets {
			found := false
			for _, bb := range p.Nets[ni].Blocks {
				if bb == b.ID {
					found = true
				}
			}
			if !found {
				t.Errorf("block %s lists net %d it is not on", b.Name, ni)
			}
		}
	}
}

func TestPlaceLegal(t *testing.T) {
	p := buildProblem(t, pack.Params{N: 1, K: 4, I: 4})
	pl, err := Place(p, Options{Seed: 1, InnerNum: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	if pl.Cost <= 0 {
		t.Errorf("cost = %v", pl.Cost)
	}
}

func TestPlaceDeterministic(t *testing.T) {
	p1 := buildProblem(t, pack.Params{N: 1, K: 4, I: 4})
	p2 := buildProblem(t, pack.Params{N: 1, K: 4, I: 4})
	pl1, err := Place(p1, Options{Seed: 7, InnerNum: 1})
	if err != nil {
		t.Fatal(err)
	}
	pl2, err := Place(p2, Options{Seed: 7, InnerNum: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range pl1.Loc {
		if pl1.Loc[i] != pl2.Loc[i] {
			t.Fatalf("block %d: %v vs %v", i, pl1.Loc[i], pl2.Loc[i])
		}
	}
}

func TestPlaceImprovesOverRandom(t *testing.T) {
	p := buildProblem(t, pack.Params{N: 1, K: 4, I: 4})
	random, err := Place(p, Options{Seed: 3, FixedSeedOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	annealed, err := Place(p, Options{Seed: 3, InnerNum: 2})
	if err != nil {
		t.Fatal(err)
	}
	if annealed.Cost > random.Cost {
		t.Errorf("annealing worsened cost: %.2f -> %.2f", random.Cost, annealed.Cost)
	}
}

func TestPlaceRejectsOverflow(t *testing.T) {
	p := buildProblem(t, pack.Params{N: 1, K: 4, I: 4})
	p.Arch.Rows, p.Arch.Cols = 1, 1 // 1 CLB site for 4 clusters
	if _, err := Place(p, Options{Seed: 1}); err == nil {
		t.Fatal("overfull grid accepted")
	}
}

func TestCrossingCount(t *testing.T) {
	if crossingCount(2) != 1 || crossingCount(3) != 1 {
		t.Error("small nets should have q=1")
	}
	if crossingCount(10) <= crossingCount(4) {
		t.Error("q must grow with terminals")
	}
	if crossingCount(50) <= crossingCount(10) {
		t.Error("q must extrapolate beyond the table")
	}
}

func TestValidateCatchesOverlap(t *testing.T) {
	p := buildProblem(t, pack.Params{N: 1, K: 4, I: 4})
	pl, err := Place(p, Options{Seed: 1, FixedSeedOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	// Force two CLBs onto one site.
	var clbIdx []int
	for _, b := range p.Blocks {
		if b.Kind == BlockCLB {
			clbIdx = append(clbIdx, b.ID)
		}
	}
	pl.Loc[clbIdx[1]] = pl.Loc[clbIdx[0]]
	if err := pl.Validate(); err == nil {
		t.Fatal("overlap not detected")
	}
}

func TestValidateCatchesPadOnLogicSite(t *testing.T) {
	p := buildProblem(t, pack.Params{N: 1, K: 4, I: 4})
	pl, err := Place(p, Options{Seed: 2, FixedSeedOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range p.Blocks {
		if b.Kind == BlockInpad {
			pl.Loc[b.ID] = Location{1, 1, 0}
			break
		}
	}
	if err := pl.Validate(); err == nil {
		t.Fatal("pad on logic site not detected")
	}
}

func TestPackedClustersPlaceTogether(t *testing.T) {
	// With the paper CLB (N=5) the whole test design fits in one cluster;
	// the only nets are pad connections.
	p := buildProblem(t, pack.PaperParams())
	clbs, _ := p.CountKinds()
	if clbs != 1 {
		t.Fatalf("clbs = %d, want 1", clbs)
	}
	pl, err := Place(p, Options{Seed: 1, InnerNum: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalityWeights(t *testing.T) {
	// Build a netlist with one deep chain and one shallow side branch; the
	// chain nets must get larger weights.
	nl, err := netlist.ParseBLIF(`
.model chainy
.inputs a b
.outputs deep shallow
.names a b g1
11 1
.names g1 b g2
10 1
01 1
.names g2 b g3
11 1
.names g3 b deep
1- 1
-1 1
.names a b shallow
-1 1
.end`)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := pack.Pack(nl, pack.Params{N: 1, K: 4, I: 4})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Paper()
	a.CLB.N, a.CLB.I = 1, 4
	p, err := NewProblem(a, pk)
	if err != nil {
		t.Fatal(err)
	}
	w := CriticalityWeights(pk, p, 8)
	if len(w) != len(p.Nets) {
		t.Fatalf("%d weights for %d nets", len(w), len(p.Nets))
	}
	byName := map[string]float64{}
	for i, n := range p.Nets {
		if w[i] < 1 || w[i] > 9 {
			t.Errorf("net %s weight %v out of [1,9]", n.Signal, w[i])
		}
		byName[n.Signal] = w[i]
	}
	if byName["g2"] <= byName["shallow"] {
		t.Errorf("deep net g2 (%.2f) not weighted above shallow (%.2f)",
			byName["g2"], byName["shallow"])
	}
}

func TestTimingDrivenPlacementRuns(t *testing.T) {
	p := buildProblem(t, pack.Params{N: 1, K: 4, I: 4})
	// Weight length mismatch must be rejected.
	if _, err := Place(p, Options{Seed: 1, Weights: []float64{1}}); err == nil {
		t.Fatal("bad weight vector accepted")
	}
	w := make([]float64, len(p.Nets))
	for i := range w {
		w[i] = 1 + float64(i%3)
	}
	pl, err := Place(p, Options{Seed: 1, InnerNum: 1, Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceBestDeterministicAndNoWorse(t *testing.T) {
	p := buildProblem(t, pack.Params{N: 1, K: 4, I: 4})
	single, err := Place(p, Options{Seed: 11, InnerNum: 1})
	if err != nil {
		t.Fatal(err)
	}
	b1, err := PlaceBest(p, Options{Seed: 11, InnerNum: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := PlaceBest(p, Options{Seed: 11, InnerNum: 1}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b1.Cost != b2.Cost {
		t.Fatalf("parallel placement nondeterministic: %v vs %v", b1.Cost, b2.Cost)
	}
	if b1.Cost > single.Cost {
		t.Errorf("best-of-4 cost %.2f worse than single seed %.2f", b1.Cost, single.Cost)
	}
	if err := b1.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFixedBlocks(t *testing.T) {
	p := buildProblem(t, pack.Params{N: 1, K: 4, I: 4})
	fixed := map[string]Location{
		"a":      {0, 1, 0},
		"out:o1": {1, 0, 1},
	}
	pl, err := Place(p, Options{Seed: 4, InnerNum: 2, Fixed: fixed})
	if err != nil {
		t.Fatal(err)
	}
	for name, want := range fixed {
		id := p.BlockByName(name)
		if pl.Loc[id] != want {
			t.Errorf("%s moved to %v, want %v", name, pl.Loc[id], want)
		}
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Errors: unknown block, site collision, wrong site kind.
	if _, err := Place(p, Options{Seed: 1, Fixed: map[string]Location{"ghost": {0, 1, 0}}}); err == nil {
		t.Error("unknown fixed block accepted")
	}
	if _, err := Place(p, Options{Seed: 1, Fixed: map[string]Location{
		"a": {0, 1, 0}, "b": {0, 1, 0}}}); err == nil {
		t.Error("fixed collision accepted")
	}
	if _, err := Place(p, Options{Seed: 1, Fixed: map[string]Location{"a": {1, 1, 0}}}); err == nil {
		t.Error("pad pinned to logic site accepted")
	}
}
