package place

import (
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/pack"
)

// CriticalityWeights computes a per-net weight for timing-driven placement:
// nets whose driving signal lies on long combinational paths of the mapped
// netlist get weights up to 1+alpha, pulling their terminals together during
// annealing (the classic VPR criticality-weighted bounding-box cost).
func CriticalityWeights(pk *pack.Packing, p *Problem, alpha float64) []float64 {
	nl := pk.Netlist
	depth := make(map[*netlist.Node]int, nl.NumNodes())
	topo, err := nl.TopoSort()
	if err != nil {
		topo = nl.Nodes()
	}
	for _, n := range topo {
		if n.Kind != netlist.KindLogic {
			continue
		}
		d := 0
		for _, f := range n.Fanin {
			if depth[f] > d {
				d = depth[f]
			}
		}
		depth[n] = d + 1
	}
	// Height: longest remaining combinational path (walk topo backwards).
	height := make(map[*netlist.Node]int, nl.NumNodes())
	for i := len(topo) - 1; i >= 0; i-- {
		n := topo[i]
		if n.Kind != netlist.KindLogic {
			continue
		}
		for _, f := range n.Fanin {
			if h := height[n] + 1; h > height[f] {
				height[f] = h
			}
		}
	}
	dmax := 0
	for _, n := range topo {
		if t := depth[n] + height[n]; t > dmax {
			dmax = t
		}
	}
	weights := make([]float64, len(p.Nets))
	for i, net := range p.Nets {
		w := 1.0
		if dmax > 0 {
			if n := nl.Node(net.Signal); n != nil {
				crit := float64(depth[n]+height[n]) / float64(dmax)
				// Sharpen like VPR's criticality exponent so only the truly
				// critical nets dominate the cost.
				w = 1 + alpha*crit*crit*crit*crit
			}
		}
		weights[i] = w
	}
	return weights
}
