package place

import "errors"

// ErrNoSpace marks a capacity failure: the design needs more CLB or pad
// sites than the grid offers once defective sites are excluded. It is
// deterministic — re-seeding the annealer cannot recover it; only a larger
// grid or a healthier fabric can. Callers classify with errors.Is.
var ErrNoSpace = errors.New("insufficient placement capacity")
