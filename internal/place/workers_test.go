package place

import (
	"reflect"
	"testing"

	"fpgaflow/internal/pack"
)

// TestPlaceWorkersDeterminism sweeps the annealer's evaluation worker
// count and requires the bit-identical placement from every value: the
// snapshot-evaluate/ordered-commit engine must make Workers a pure
// wall-time knob. Cost, move and acceptance statistics are part of the
// contract too — a drift there means the random stream or the commit
// order leaked scheduling.
func TestPlaceWorkersDeterminism(t *testing.T) {
	for _, n := range []int{1, 2} {
		p := buildProblem(t, pack.Params{N: n, K: 4, I: 4})
		var ref *Placement
		for _, w := range []int{0, 1, 2, 4, 8} {
			pl, err := Place(p, Options{Seed: 7, InnerNum: 2, Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if err := pl.Validate(); err != nil {
				t.Fatalf("workers=%d: %v", w, err)
			}
			if ref == nil {
				ref = pl
				continue
			}
			if !reflect.DeepEqual(ref.Loc, pl.Loc) {
				t.Errorf("N=%d workers=%d: locations differ from workers=0 run", n, w)
			}
			if ref.Cost != pl.Cost || ref.Moves != pl.Moves || ref.Accepted != pl.Accepted {
				t.Errorf("N=%d workers=%d: stats differ: cost %v vs %v, moves %d vs %d, accepted %d vs %d",
					n, w, pl.Cost, ref.Cost, pl.Moves, ref.Moves, pl.Accepted, ref.Accepted)
			}
		}
	}
}
