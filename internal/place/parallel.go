package place

import (
	"fmt"
	"runtime"
	"sync"
)

// PlaceBest anneals nSeeds independent placements concurrently (bounded by
// GOMAXPROCS workers) and returns the one with the lowest cost. Seeds are
// derived deterministically from opts.Seed, so the result is reproducible
// regardless of scheduling.
func PlaceBest(p *Problem, opts Options, nSeeds int) (*Placement, error) {
	if nSeeds < 1 {
		nSeeds = 1
	}
	opts.Obs.Add("place.seeds", int64(nSeeds))
	results := make([]*Placement, nSeeds)
	errs := make([]error, nSeeds)
	var wg sync.WaitGroup
	sem := make(chan struct{}, maxParallel())
	for i := 0; i < nSeeds; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			o := opts
			o.Seed = opts.Seed + int64(i)*7919 // distinct deterministic streams
			results[i], errs[i] = Place(p, o)
		}(i)
	}
	wg.Wait()
	var best *Placement
	var firstErr error
	for i := 0; i < nSeeds; i++ {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("place: seed %d: %w", i, errs[i])
			}
			continue
		}
		if best == nil || results[i].Cost < best.Cost {
			best = results[i]
		}
	}
	if best == nil {
		return nil, firstErr
	}
	return best, nil
}

func maxParallel() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		return 1
	}
	return n
}
