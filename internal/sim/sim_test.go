package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpgaflow/internal/netlist"
)

const adderBLIF = `
.model fadd
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
`

const counterBLIF = `
.model cnt2
.inputs en
.outputs q0 q1
.names en q0 d0
10 1
01 1
.names en q0 q1 d1
110 1
0-1 1
-01 1
.latch d0 q0 re clk 0
.latch d1 q1 re clk 0
.end
`

func TestEvalFullAdder(t *testing.T) {
	nl, err := netlist.ParseBLIF(adderBLIF)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 8; m++ {
		in := map[string]bool{"a": m&1 != 0, "b": m&2 != 0, "cin": m&4 != 0}
		out, err := Eval(nl, in)
		if err != nil {
			t.Fatal(err)
		}
		n := m&1 + m>>1&1 + m>>2&1
		if out["sum"] != (n%2 == 1) || out["cout"] != (n >= 2) {
			t.Errorf("adder(%03b): sum=%v cout=%v", m, out["sum"], out["cout"])
		}
	}
}

func TestSequentialCounter(t *testing.T) {
	nl, err := netlist.ParseBLIF(counterBLIF)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(nl)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for cyc := 0; cyc < 10; cyc++ {
		en := cyc%3 != 0
		out, err := s.Step(map[string]bool{"en": en})
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		if out["q0"] {
			got |= 1
		}
		if out["q1"] {
			got |= 2
		}
		if got != count%4 {
			t.Fatalf("cycle %d: q=%d, want %d", cyc, got, count%4)
		}
		if en {
			count++
		}
	}
	if s.Cycles() != 10 {
		t.Errorf("Cycles = %d", s.Cycles())
	}
}

func TestStepMissingInput(t *testing.T) {
	nl, _ := netlist.ParseBLIF(adderBLIF)
	s, _ := New(nl)
	if _, err := s.Step(map[string]bool{"a": true}); err == nil {
		t.Fatal("missing inputs accepted")
	}
}

func TestEvalRejectsSequential(t *testing.T) {
	nl, _ := netlist.ParseBLIF(counterBLIF)
	if _, err := Eval(nl, map[string]bool{"en": true}); err == nil {
		t.Fatal("Eval on sequential netlist accepted")
	}
}

func TestCheckEquivalentCombinational(t *testing.T) {
	a, _ := netlist.ParseBLIF(adderBLIF)
	b, _ := netlist.ParseBLIF(adderBLIF)
	if err := CheckEquivalent(a, b, 16, 100, 1); err != nil {
		t.Fatalf("identical netlists reported different: %v", err)
	}
	// Break b: flip sum cover to even parity.
	b2, _ := netlist.ParseBLIF(`
.model fadd
.inputs a b cin
.outputs sum cout
.names a b cin sum
000 1
110 1
101 1
011 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end`)
	err := CheckEquivalent(a, b2, 16, 100, 1)
	if err == nil {
		t.Fatal("different netlists reported equivalent")
	}
	if _, ok := err.(*NotEquivalentError); !ok {
		t.Fatalf("want NotEquivalentError, got %T: %v", err, err)
	}
}

func TestCheckEquivalentSequential(t *testing.T) {
	a, _ := netlist.ParseBLIF(counterBLIF)
	b, _ := netlist.ParseBLIF(counterBLIF)
	if err := CheckEquivalent(a, b, 16, 200, 7); err != nil {
		t.Fatalf("identical counters differ: %v", err)
	}
	// A counter with inverted reset state must differ.
	c, _ := netlist.ParseBLIF(counterBLIF)
	c.Node("q0").Init = '1'
	if err := CheckEquivalent(a, c, 16, 200, 7); err == nil {
		t.Fatal("different reset state not detected")
	}
}

func TestCheckEquivalentNameMismatch(t *testing.T) {
	a, _ := netlist.ParseBLIF(adderBLIF)
	b, _ := netlist.ParseBLIF(".model m\n.inputs x y z\n.outputs sum cout\n.names x y z sum\n111 1\n.names x y z cout\n111 1\n.end\n")
	if err := CheckEquivalent(a, b, 16, 10, 1); err == nil {
		t.Fatal("input name mismatch not detected")
	}
}

// TestEquivalenceMatchesTruthTable cross-checks random single-node functions:
// a netlist node against an independently rebuilt minterm cover.
func TestEquivalenceMatchesTruthTable(t *testing.T) {
	f := func(ttRaw uint16) bool {
		tt := make([]bool, 16)
		for i := range tt {
			tt[i] = ttRaw&(1<<uint(i)) != 0
		}
		a := netlist.New("a")
		ins := make([]*netlist.Node, 4)
		names := []string{"i0", "i1", "i2", "i3"}
		for i, nm := range names {
			ins[i], _ = a.AddInput(nm)
		}
		if _, err := a.AddLogic("o", ins, netlist.CoverFromTruthTable(tt, 4)); err != nil {
			return false
		}
		a.MarkOutput("o")
		b := a.Clone()
		return CheckEquivalent(a, b, 16, 0, 1) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(3))}); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateActivity(t *testing.T) {
	nl, err := netlist.ParseBLIF(counterBLIF)
	if err != nil {
		t.Fatal(err)
	}
	act, err := EstimateActivity(nl, 2000, 0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	// q0 toggles on every enabled cycle: density near 0.5 with en toggling
	// half the time -> between 0.2 and 0.8.
	d := act.Density["q0"]
	if d < 0.2 || d > 0.8 {
		t.Errorf("q0 density = %v", d)
	}
	p := act.StaticProb["q0"]
	if p < 0.3 || p > 0.7 {
		t.Errorf("q0 static prob = %v", p)
	}
	for name, dens := range act.Density {
		if dens < 0 || dens > 2 {
			t.Errorf("%s density out of range: %v", name, dens)
		}
	}
}

func TestActivityDeterministicWithSeed(t *testing.T) {
	nl, _ := netlist.ParseBLIF(counterBLIF)
	a1, err := EstimateActivity(nl, 500, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := EstimateActivity(nl, 500, 0.5, 9)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range a1.Density {
		if a2.Density[k] != v {
			t.Fatalf("activity not deterministic for %s", k)
		}
	}
}
