// Package sim provides gate-level functional simulation of netlists:
// cycle-accurate evaluation, combinational and sequential equivalence
// checking, and switching-activity extraction for the power model.
package sim

import (
	"fmt"
	"math/rand"

	"fpgaflow/internal/netlist"
	"fpgaflow/internal/obs"
)

// Simulator evaluates a netlist cycle by cycle. Latches follow BLIF
// semantics: on every Step, combinational logic settles from the current
// latch outputs and primary inputs, then all latches load their D values
// simultaneously.
type Simulator struct {
	nl    *netlist.Netlist
	topo  []*netlist.Node
	value map[*netlist.Node]bool
	next  map[*netlist.Node]bool
	// Transitions counts value changes per node since Reset.
	Transitions map[string]int
	cycles      int
}

// New builds a simulator; the netlist must pass Check.
func New(nl *netlist.Netlist) (*Simulator, error) {
	topo, err := nl.TopoSort()
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		nl:          nl,
		topo:        topo,
		value:       make(map[*netlist.Node]bool, nl.NumNodes()),
		next:        make(map[*netlist.Node]bool),
		Transitions: make(map[string]int, nl.NumNodes()),
	}
	s.Reset()
	return s, nil
}

// Reset sets latches to their initial values ('2'/'3' reset to 0) and
// clears activity counters.
func (s *Simulator) Reset() {
	for n := range s.value {
		delete(s.value, n)
	}
	for _, n := range s.nl.Nodes() {
		if n.Kind == netlist.KindLatch {
			s.value[n] = n.Init == '1'
		}
	}
	s.Transitions = make(map[string]int, s.nl.NumNodes())
	s.cycles = 0
}

// Cycles returns the number of Step calls since Reset.
func (s *Simulator) Cycles() int { return s.cycles }

// Step applies one input vector (keyed by primary-input name), settles the
// combinational logic, captures primary outputs, then clocks all latches.
func (s *Simulator) Step(inputs map[string]bool) (map[string]bool, error) {
	for _, in := range s.nl.Inputs {
		v, ok := inputs[in.Name]
		if !ok {
			return nil, fmt.Errorf("sim: missing value for input %q", in.Name)
		}
		s.set(in, v)
	}
	faninVals := make([]bool, 0, 8)
	for _, n := range s.topo {
		if n.Kind != netlist.KindLogic {
			continue
		}
		faninVals = faninVals[:0]
		for _, f := range n.Fanin {
			faninVals = append(faninVals, s.value[f])
		}
		s.set(n, netlist.EvalCover(n.Cover, faninVals))
	}
	out := make(map[string]bool, len(s.nl.Outputs))
	for _, o := range s.nl.Outputs {
		out[o] = s.value[s.nl.Node(o)]
	}
	for n := range s.next {
		delete(s.next, n)
	}
	for _, n := range s.nl.Nodes() {
		if n.Kind == netlist.KindLatch {
			s.next[n] = s.value[n.Fanin[0]]
		}
	}
	for n, v := range s.next {
		s.set(n, v)
	}
	s.cycles++
	return out, nil
}

func (s *Simulator) set(n *netlist.Node, v bool) {
	if old, seen := s.value[n]; seen && old != v {
		s.Transitions[n.Name]++
	}
	s.value[n] = v
}

// Value returns the current value of the named signal.
func (s *Simulator) Value(name string) (bool, bool) {
	n := s.nl.Node(name)
	if n == nil {
		return false, false
	}
	v, ok := s.value[n]
	return v, ok
}

// Eval evaluates a purely combinational netlist on one input vector.
func Eval(nl *netlist.Netlist, inputs map[string]bool) (map[string]bool, error) {
	if nl.Stats().Latches != 0 {
		return nil, fmt.Errorf("sim: Eval on sequential netlist %s", nl.Name)
	}
	s, err := New(nl)
	if err != nil {
		return nil, err
	}
	return s.Step(inputs)
}

// inputVector builds the input map for minterm m over the named inputs.
func inputVector(names []string, m uint64) map[string]bool {
	in := make(map[string]bool, len(names))
	for i, name := range names {
		in[name] = m&(1<<uint(i)) != 0
	}
	return in
}

// InputNames returns the primary-input names in declaration order.
func InputNames(nl *netlist.Netlist) []string {
	names := make([]string, len(nl.Inputs))
	for i, in := range nl.Inputs {
		names[i] = in.Name
	}
	return names
}

// NotEquivalentError describes a distinguishing input found by an
// equivalence check.
type NotEquivalentError struct {
	Output string
	Inputs map[string]bool
	Cycle  int
	A, B   bool
}

func (e *NotEquivalentError) Error() string {
	return fmt.Sprintf("sim: output %q differs (cycle %d): %v vs %v on %v",
		e.Output, e.Cycle, e.A, e.B, e.Inputs)
}

// CheckEquivalent verifies that two netlists with identical input/output
// names compute the same function. Combinational pairs with at most
// exhaustiveLimit inputs are checked exhaustively; otherwise (and for
// sequential pairs) nVectors random vectors/cycles are applied.
func CheckEquivalent(a, b *netlist.Netlist, exhaustiveLimit, nVectors int, seed int64) error {
	an, bn := InputNames(a), InputNames(b)
	if err := sameNameSet(an, bn); err != nil {
		return fmt.Errorf("sim: input mismatch: %w", err)
	}
	if err := sameNameSet(a.Outputs, b.Outputs); err != nil {
		return fmt.Errorf("sim: output mismatch: %w", err)
	}
	seq := a.Stats().Latches > 0 || b.Stats().Latches > 0
	if !seq && len(an) <= exhaustiveLimit {
		for m := uint64(0); m < 1<<uint(len(an)); m++ {
			in := inputVector(an, m)
			if err := compareOnce(a, b, in, 0); err != nil {
				return err
			}
		}
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	if seq {
		sa, err := New(a)
		if err != nil {
			return err
		}
		sb, err := New(b)
		if err != nil {
			return err
		}
		for cyc := 0; cyc < nVectors; cyc++ {
			in := randomVector(an, rng)
			oa, err := sa.Step(in)
			if err != nil {
				return err
			}
			ob, err := sb.Step(in)
			if err != nil {
				return err
			}
			for _, o := range a.Outputs {
				if oa[o] != ob[o] {
					return &NotEquivalentError{Output: o, Inputs: in, Cycle: cyc, A: oa[o], B: ob[o]}
				}
			}
		}
		return nil
	}
	for v := 0; v < nVectors; v++ {
		if err := compareOnce(a, b, randomVector(an, rng), 0); err != nil {
			return err
		}
	}
	return nil
}

func compareOnce(a, b *netlist.Netlist, in map[string]bool, cycle int) error {
	oa, err := Eval(a, in)
	if err != nil {
		return err
	}
	ob, err := Eval(b, in)
	if err != nil {
		return err
	}
	for _, o := range a.Outputs {
		if oa[o] != ob[o] {
			return &NotEquivalentError{Output: o, Inputs: in, Cycle: cycle, A: oa[o], B: ob[o]}
		}
	}
	return nil
}

func randomVector(names []string, rng *rand.Rand) map[string]bool {
	in := make(map[string]bool, len(names))
	for _, n := range names {
		in[n] = rng.Intn(2) == 1
	}
	return in
}

func sameNameSet(a, b []string) error {
	if len(a) != len(b) {
		return fmt.Errorf("count %d vs %d", len(a), len(b))
	}
	set := make(map[string]bool, len(a))
	for _, n := range a {
		set[n] = true
	}
	for _, n := range b {
		if !set[n] {
			return fmt.Errorf("name %q only on one side", n)
		}
	}
	return nil
}

// Activity holds per-signal switching statistics from a random simulation.
type Activity struct {
	// Density is the average transitions per cycle per signal name.
	Density map[string]float64
	// StaticProb is the fraction of cycles each signal was 1.
	StaticProb map[string]float64
	Cycles     int
}

// EstimateActivity runs nCycles of random inputs and returns per-signal
// transition densities and static probabilities. Input signals toggle with
// probability inputToggle each cycle (0.5 gives uncorrelated inputs).
// Simulation events report to the process-global observability trace.
func EstimateActivity(nl *netlist.Netlist, nCycles int, inputToggle float64, seed int64) (*Activity, error) {
	return EstimateActivityObs(nl, nCycles, inputToggle, seed, obs.Global())
}

// EstimateActivityObs is EstimateActivity reporting simulation counters
// (sim.cycles, sim.transitions, sim.signals) to an explicit trace.
func EstimateActivityObs(nl *netlist.Netlist, nCycles int, inputToggle float64, seed int64, tr *obs.Trace) (*Activity, error) {
	s, err := New(nl)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	names := InputNames(nl)
	in := randomVector(names, rng)
	ones := make(map[string]int, nl.NumNodes())
	for c := 0; c < nCycles; c++ {
		for _, n := range names {
			if rng.Float64() < inputToggle {
				in[n] = !in[n]
			}
		}
		if _, err := s.Step(in); err != nil {
			return nil, err
		}
		for _, n := range nl.Nodes() {
			if v, _ := s.Value(n.Name); v {
				ones[n.Name]++
			}
		}
	}
	act := &Activity{
		Density:    make(map[string]float64, nl.NumNodes()),
		StaticProb: make(map[string]float64, nl.NumNodes()),
		Cycles:     nCycles,
	}
	var transitions int64
	for _, n := range nl.Nodes() {
		act.Density[n.Name] = float64(s.Transitions[n.Name]) / float64(nCycles)
		act.StaticProb[n.Name] = float64(ones[n.Name]) / float64(nCycles)
		transitions += int64(s.Transitions[n.Name])
	}
	tr.Add("sim.cycles", int64(nCycles))
	tr.Add("sim.transitions", transitions)
	tr.Add("sim.signals", int64(nl.NumNodes()))
	return act, nil
}
