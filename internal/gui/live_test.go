package gui

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"fpgaflow/internal/circuits"
	"fpgaflow/internal/obs/events"
)

// TestLiveIntrospection runs a flow through the GUI and checks the three
// introspection surfaces: /heatmap serves the derived fabric document,
// /events replays the run's telemetry over SSE, and /debug/pprof is
// reachable.
func TestLiveIntrospection(t *testing.T) {
	srv, c := newClient(t)

	// Before any run: heatmap is a 404, pprof index already serves.
	resp, err := c.Get(srv.URL + "/heatmap")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/heatmap before any run: status %d, want 404", resp.StatusCode)
	}
	if body := getBody(t, c, srv.URL+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index missing profiles:\n%s", tail(body))
	}

	b := circuits.RippleAdder(4)
	postForm(t, c, srv.URL+"/upload", map[string]string{"source": b.VHDL, "name": b.Name})
	postForm(t, c, srv.URL+"/pnr", map[string]string{"seed": "1"})

	// The heatmap now reflects the placed-and-routed fabric.
	hbody := getBody(t, c, srv.URL+"/heatmap")
	h, err := events.ParseHeatmap([]byte(hbody))
	if err != nil {
		t.Fatalf("/heatmap: %v", err)
	}
	if h.Cols <= 0 || h.Rows <= 0 || len(h.CLBs) == 0 {
		t.Fatalf("heatmap has no fabric: %dx%d, %d CLBs", h.Cols, h.Rows, len(h.CLBs))
	}
	if !h.RouteSuccess {
		t.Fatal("heatmap reports the routed run as unrouted")
	}

	// /events replays the run's stream over SSE. Read until the replay
	// covers the flow: at least one place_step, one route_iter and one
	// stage event must appear.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err = c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("/events Content-Type = %q", ct)
	}
	seen := map[events.Kind]int{}
	var lastSeq uint64
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev events.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE event %q: %v", line, err)
		}
		if err := ev.Validate(); err != nil {
			t.Fatalf("invalid SSE event: %v", err)
		}
		if ev.Seq <= lastSeq {
			t.Fatalf("SSE events out of order: seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq = ev.Seq
		seen[ev.Kind]++
		if seen[events.KindPlaceStep] > 0 && seen[events.KindRouteIter] > 0 && seen[events.KindStage] > 0 {
			break
		}
	}
	for _, k := range []events.Kind{events.KindPlaceStep, events.KindRouteIter, events.KindStage} {
		if seen[k] == 0 {
			t.Errorf("SSE replay missing %s events (saw %v)", k, seen)
		}
	}
}
