package gui

import (
	"net/http"
)

// The paper's "Ease of use" feature (§4.1 v) includes on-line documentation
// alongside the GUI; /docs serves the tool reference.
const docsHTML = `<!DOCTYPE html>
<html><head><title>FPGA Design Framework &mdash; documentation</title>
<style>body { font-family: sans-serif; margin: 2em; max-width: 60em; }
dt { font-weight: bold; margin-top: 0.8em; } code { background: #f4f4f4; }</style>
</head><body>
<h1>On-line documentation</h1>
<p>The framework implements the complete design flow from a VHDL circuit
description down to the FPGA configuration bitstream. Each stage can run
standalone from the command line or through this interface.</p>
<dl>
<dt>VHDL Parser</dt><dd>Syntax and semantic check of the VHDL source against
the supported synthesizable subset (entities, architectures, processes,
generics, generate loops).</dd>
<dt>DIVINER</dt><dd>Behavioural synthesis: elaborates the checked design into
a gate-level netlist and emits it as an EDIF 2.0.0 file.</dd>
<dt>DRUID</dt><dd>Normalizes EDIF produced by a synthesizer so the following
tools can consume it (identifier repair, single-top check).</dd>
<dt>E2FMT</dt><dd>Translates the EDIF netlist to BLIF.</dd>
<dt>SIS</dt><dd>Technology-independent logic optimization (sweep, eliminate,
two-level minimization, structural hashing) followed by depth-optimal
FlowMap technology mapping onto 4-input LUTs.</dd>
<dt>T-VPack</dt><dd>Packs LUTs and flip-flops into Basic Logic Elements and
clusters of N=5 BLEs with I=12 inputs (the platform's CLB).</dd>
<dt>DUTYS</dt><dd>Generates the architecture description file of the target
FPGA platform.</dd>
<dt>VPR</dt><dd>Places the clusters by adaptive simulated annealing and
routes with the PathFinder negotiated-congestion algorithm; reports the
critical path. The <a href="/layout">floorplan</a> shows the placement.</dd>
<dt>PowerModel</dt><dd>Estimates dynamic, short-circuit and leakage power
from simulated switching activities.</dd>
<dt>DAGGER</dt><dd>Generates the configuration bitstream, which is verified
by extraction and functional-equivalence checking before download.</dd>
</dl>
<p>The target platform: island-style fabric, cluster-based CLBs with 4-input
LUTs, double-edge-triggered flip-flops, clock gating at BLE and CLB level,
and pass-transistor routing switches at 10x minimum width on length-1
segments (minimum metal width, double spacing).</p>
<p><a href="/">back to the design flow</a></p>
</body></html>`

func (s *Server) handleDocs(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(docsHTML)) // response write errors are client disconnects
}
