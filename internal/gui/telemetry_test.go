package gui

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	"fpgaflow/internal/jobs"
	"fpgaflow/internal/obs"
)

// waitJobDone polls GET /jobs/{id} until the job is terminal.
func waitJobDone(t *testing.T, url, id string) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		var st jobs.Status
		if err := json.Unmarshal([]byte(getBody(t, http.DefaultClient, url+"/jobs/"+id)), &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s did not finish; state %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMetricsPrometheusScrape is the exposition round-trip gate at the HTTP
// layer: run a job through the farm API, scrape /metrics?format=prom as a
// Prometheus server would, and put the document through the validator. The
// scrape must carry the per-tenant counters and the core latency
// histograms the issue names.
func TestMetricsPrometheusScrape(t *testing.T) {
	srv, _ := newJobsServer(t, nil)
	resp, st := submitJob(t, srv.URL, blifSpec("alice", 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if final := waitJobDone(t, srv.URL, st.ID); final.State != jobs.StateSucceeded {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}

	r, err := http.Get(srv.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q, want the text exposition type", ct)
	}
	body := getBody(t, http.DefaultClient, srv.URL+"/metrics?format=prom")
	if err := obs.ValidatePrometheus(strings.NewReader(body)); err != nil {
		t.Fatalf("scrape fails the validator: %v\n%s", err, body)
	}
	for _, want := range []string{
		"fpgaflow_build_info{",
		`fpgaflow_jobs_submitted_by_tenant_total{tenant="alice"} 1`,
		`fpgaflow_jobs_finished_by_tenant_total{tenant="alice"} 1`,
		"# TYPE fpgaflow_jobs_queue_wait_seconds histogram",
		"# TYPE fpgaflow_jobs_run_seconds histogram",
		"# TYPE fpgaflow_jobs_wal_sync_seconds histogram",
		"# TYPE fpgaflow_http_request_seconds histogram",
		`fpgaflow_http_request_seconds_bucket{route="POST /jobs",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape body:\n%s", body)
	}

	// The JSON view must stay the default.
	r2, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if ct := r2.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("default /metrics Content-Type = %q, want JSON", ct)
	}
}

// TestJobTraceEndpoint drives a real (default core runner) job through the
// HTTP API and checks GET /jobs/{id}/trace serves the full span tree —
// queue wait, the attempt, every flow stage — under one trace ID, and that
// ?format=chrome converts it to a loadable trace-event document.
func TestJobTraceEndpoint(t *testing.T) {
	srv, _ := newJobsServer(t, func(c *jobs.Config) { c.Runner = nil }) // real flow
	resp, st := submitJob(t, srv.URL, blifSpec("alice", 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	if st.TraceID == "" {
		t.Fatal("submit status carries no trace ID")
	}
	if final := waitJobDone(t, srv.URL, st.ID); final.State != jobs.StateSucceeded {
		t.Fatalf("job finished %s: %s", final.State, final.Error)
	}

	body := getBody(t, http.DefaultClient, srv.URL+"/jobs/"+st.ID+"/trace")
	sum, err := obs.ParseSummary([]byte(body))
	if err != nil {
		t.Fatalf("trace endpoint did not serve a summary: %v", err)
	}
	if sum.TraceID != st.TraceID {
		t.Fatalf("trace ID %q != status trace ID %q", sum.TraceID, st.TraceID)
	}
	names := map[string]int{}
	depths := map[string]int{}
	for _, sp := range sum.Spans {
		names[sp.Name]++
		depths[sp.Name] = sp.Depth
	}
	if names["queue wait"] == 0 || depths["queue wait"] != 0 {
		t.Errorf("no top-level queue-wait span: %v", names)
	}
	if names["attempt 1"] == 0 || depths["attempt 1"] != 0 {
		t.Errorf("no top-level attempt span: %v", names)
	}
	for _, stage := range []string{"VPR place", "VPR route"} {
		if names[stage] == 0 {
			t.Errorf("trace missing flow stage %q; spans: %v", stage, names)
		} else if depths[stage] != 1 {
			t.Errorf("stage %q at depth %d, want 1 (nested under its attempt)", stage, depths[stage])
		}
	}

	chrome := getBody(t, http.DefaultClient, srv.URL+"/jobs/"+st.ID+"/trace?format=chrome")
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal([]byte(chrome), &doc); err != nil {
		t.Fatalf("chrome view is not valid JSON: %v", err)
	}
	if doc.OtherData["trace_id"] != st.TraceID {
		t.Errorf("chrome trace lost the trace ID: %v", doc.OtherData)
	}
	var sawStage bool
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" && ev.Name == "VPR route" {
			sawStage = true
		}
	}
	if !sawStage {
		t.Error("chrome trace has no event for the route stage")
	}

	// Unknown jobs 404 like every other job endpoint.
	r, err := http.Get(srv.URL + "/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("trace of unknown job: status %d, want 404", r.StatusCode)
	}
}
