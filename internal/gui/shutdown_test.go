package gui

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestRunShutsDownGracefully boots the real server loop, confirms it
// serves, cancels the context (what SIGINT/SIGTERM do in fpgaweb) and
// requires a prompt, error-free exit.
func TestRunShutsDownGracefully(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close() // free the port for Run (small race, fine for a test)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- NewServer().Run(ctx, addr, 5*time.Second) }()

	// Wait until the server answers.
	up := false
	for i := 0; i < 100; i++ {
		resp, err := http.Get(fmt.Sprintf("http://%s/", addr))
		if err == nil {
			_ = resp.Body.Close()
			up = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !up {
		cancel()
		t.Fatalf("server never came up on %s", addr)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}

	if _, err := http.Get(fmt.Sprintf("http://%s/", addr)); err == nil {
		t.Error("server still answering after shutdown")
	}
}
