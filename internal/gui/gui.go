// Package gui implements the browser-based graphical user interface of the
// paper (§4.2, Fig. 12): six stages — File Upload, Synthesis, Format
// Translation, Power Estimation, Placement and Routing, and FPGA Program —
// drivable from any web browser against a local or remote server, with no
// operating-system knowledge required. The paper's GUI itself ran in a web
// browser; net/http is the direct Go equivalent.
package gui

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"fpgaflow/internal/core"
	"fpgaflow/internal/edif"
	"fpgaflow/internal/jobs"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/obs"
	"fpgaflow/internal/obs/events"
	"fpgaflow/internal/vhdl"
)

// Server holds the GUI state: one design session (source, intermediate
// artifacts, results), mirroring the paper's single-designer workflow.
type Server struct {
	mu sync.Mutex
	// Source is the uploaded design text (VHDL or BLIF).
	Source     string
	SourceName string
	// Result of the last full or partial run.
	Result *core.Result
	// Log accumulates tool output lines.
	Log []string
	// Opts are the flow options edited through the form.
	Opts core.Options
	// LastTrace is the observability trace of the most recent full flow
	// run, served at /metrics.
	LastTrace *obs.Trace
	// Bus is the server-lifetime convergence-telemetry bus: every flow run
	// publishes its iteration events here, and /events (SSE) and /heatmap
	// serve from it live.
	Bus *events.Bus
	// Jobs is the crash-safe job service behind the /jobs lifecycle API
	// (nil = the API is disabled). Run drains it on shutdown.
	Jobs *jobs.Service
	// JobsTrace carries the jobs.* counters and queue gauges; /metrics
	// serves it alongside the last flow run's trace.
	JobsTrace *obs.Trace
	// Obs is the server's own trace: HTTP handler latency histograms
	// (http.request_seconds, labeled by route pattern — a fixed, bounded
	// label set, never raw URLs) and request counters. Served by /metrics
	// in both JSON and Prometheus form.
	Obs *obs.Trace
	// runs counts full flow executions since server start.
	runs int64

	// closing is closed when Run begins its shutdown, waking every live SSE
	// stream so a stuck subscriber cannot hold the drain past its deadline.
	closing   chan struct{}
	closeOnce sync.Once
}

// NewServer returns a GUI server with paper-default options.
func NewServer() *Server {
	return &Server{Opts: core.Options{Seed: 1}, Bus: events.NewBus(0),
		Obs: obs.New("fpgaweb"), closing: make(chan struct{})}
}

// timed wraps a handler with the HTTP latency histogram. The label is the
// route pattern, never the raw URL — cardinality stays bounded by the
// route table no matter what clients request.
func (s *Server) timed(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		t := s.Obs.HistogramVec("http.request_seconds", "route").WithLabel(route).StartTimer()
		defer t.ObserveDuration()
		s.Obs.Add("http.requests", 1)
		h(w, r)
	}
}

// Handler returns the HTTP handler implementing the six GUI stages.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.timed("/", s.handleHome))
	mux.HandleFunc("/upload", s.timed("/upload", s.handleUpload))
	mux.HandleFunc("/synthesize", s.timed("/synthesize", s.stageHandler("Synthesis", s.runSynthesis)))
	mux.HandleFunc("/translate", s.timed("/translate", s.stageHandler("Format Translation", s.runTranslate)))
	mux.HandleFunc("/power", s.timed("/power", s.stageHandler("Power Estimation", s.runFull)))
	mux.HandleFunc("/pnr", s.timed("/pnr", s.stageHandler("Placement and Routing", s.runFull)))
	mux.HandleFunc("/program", s.timed("/program", s.handleProgram))
	mux.HandleFunc("/bitstream.bin", s.timed("/bitstream.bin", s.handleBitstream))
	mux.HandleFunc("/layout", s.timed("/layout", s.handleLayout))
	mux.HandleFunc("/docs", s.timed("/docs", s.handleDocs))
	mux.HandleFunc("/metrics", s.timed("/metrics", s.handleMetrics))
	s.registerJobs(mux)
	s.registerLive(mux)
	return mux
}

var pageTmpl = template.Must(template.New("page").Parse(`<!DOCTYPE html>
<html><head><title>FPGA Design Framework</title>
<style>
body { font-family: sans-serif; margin: 2em; max-width: 70em; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 1.2em; }
.stage { border: 1px solid #999; padding: 0.8em; margin: 0.6em 0; border-radius: 4px; }
.stage h2 { margin: 0 0 0.5em 0; }
pre { background: #f4f4f4; padding: 0.6em; overflow-x: auto; max-height: 20em; }
textarea { width: 100%; height: 12em; font-family: monospace; }
table { border-collapse: collapse; } td, th { border: 1px solid #ccc; padding: 2px 8px; }
.ok { color: #070; } .err { color: #a00; }
</style></head><body>
<h1>Integrated FPGA Design Framework &mdash; VHDL to bitstream</h1>
<p><a href="/docs">on-line documentation</a></p>

<div class="stage"><h2>1. File Upload</h2>
<form method="post" action="/upload">
<textarea name="source" placeholder="Paste VHDL or BLIF here">{{.Source}}</textarea><br>
<input type="text" name="name" value="{{.SourceName}}" placeholder="design name">
<input type="submit" value="Upload">
</form>
{{if .Source}}<p class="ok">design loaded ({{len .Source}} bytes)</p>{{end}}
</div>

<div class="stage"><h2>2. Synthesis (VHDL Parser + DIVINER)</h2>
<form method="post" action="/synthesize"><input type="submit" value="Run synthesis"></form></div>

<div class="stage"><h2>3. Format Translation (DRUID + E2FMT)</h2>
<form method="post" action="/translate"><input type="submit" value="Translate to BLIF"></form></div>

<div class="stage"><h2>4. Power Estimation (PowerModel)</h2>
<form method="post" action="/power">
clock MHz (0 = max from timing): <input type="text" name="clock" value="{{.ClockMHz}}" size="6">
<input type="submit" value="Estimate power"></form>
{{if .Power}}<table><tr><th>component</th><th>mW</th></tr>
<tr><td>routing</td><td>{{printf "%.4f" .Power.Routing}}</td></tr>
<tr><td>logic</td><td>{{printf "%.4f" .Power.Logic}}</td></tr>
<tr><td>clock</td><td>{{printf "%.4f" .Power.Clock}}</td></tr>
<tr><td>short-circuit</td><td>{{printf "%.4f" .Power.SC}}</td></tr>
<tr><td>leakage</td><td>{{printf "%.4f" .Power.Leak}}</td></tr>
<tr><th>total</th><th>{{printf "%.4f" .Power.Total}}</th></tr></table>{{end}}
</div>

<div class="stage"><h2>5. Placement and Routing (T-VPack + DUTYS + VPR)</h2>
<form method="post" action="/pnr">
seed: <input type="text" name="seed" value="{{.Seed}}" size="4">
min channel width: <input type="checkbox" name="minw" {{if .MinW}}checked{{end}}>
<input type="submit" value="Place and route"></form>
{{if .Metrics}}<p>{{.Metrics}} &mdash; <a href="/layout">floorplan</a></p>{{end}}
</div>

<div class="stage"><h2>6. FPGA Program (DAGGER)</h2>
<form method="post" action="/program"><input type="submit" value="Generate bitstream"></form>
{{if .BitstreamReady}}<p class="ok">bitstream ready: <a href="/bitstream.bin">download</a> ({{.BitstreamBytes}} bytes){{if .Verified}} &mdash; verified equivalent to source{{end}}</p>{{end}}
</div>

<h2>Tool log</h2><pre>{{range .Log}}{{.}}
{{end}}</pre>
</body></html>`))

type pageData struct {
	Source, SourceName string
	Log                []string
	ClockMHz           string
	Seed               string
	MinW               bool
	Metrics            string
	BitstreamReady     bool
	BitstreamBytes     int
	Verified           bool
	Power              *powerRow
}

type powerRow struct {
	Routing, Logic, Clock, SC, Leak, Total float64
}

func (s *Server) page() *pageData {
	d := &pageData{
		Source: s.Source, SourceName: s.SourceName, Log: s.Log,
		ClockMHz: fmt.Sprintf("%.0f", s.Opts.ClockHz/1e6),
		Seed:     strconv.FormatInt(s.Opts.Seed, 10),
		MinW:     s.Opts.MinChannelWidth,
	}
	if r := s.Result; r != nil {
		if r.Routed != nil {
			m := r.Metrics
			d.Metrics = fmt.Sprintf("%d LUTs, %d CLBs, %dx%d grid, W=%d, critical path %.2f ns (%.1f MHz clock, %.1f Mb/s DETFF data rate)",
				m.LUTs, m.CLBs, m.GridW, m.GridH, m.ChannelWidth, m.CriticalPath*1e9, m.MaxClockMHz, m.DataRateMbps)
		}
		if r.Power != nil {
			d.Power = &powerRow{
				Routing: r.Power.DynamicRouting * 1e3, Logic: r.Power.DynamicLogic * 1e3,
				Clock: r.Power.DynamicClock * 1e3, SC: r.Power.ShortCircuit * 1e3,
				Leak: r.Power.Leakage * 1e3, Total: r.Power.Total * 1e3,
			}
		}
		if len(r.Encoded) > 0 {
			d.BitstreamReady = true
			d.BitstreamBytes = len(r.Encoded)
			d.Verified = r.Verified
		}
	}
	return d
}

func (s *Server) handleHome(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := pageTmpl.Execute(w, s.page()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// maxUploadBytes bounds an /upload form body: the job spec's source limit
// plus form-encoding slack. Larger posts are rejected before the server
// buffers them.
const maxUploadBytes = jobs.MaxSourceBytes + 64*1024

func (s *Server) handleUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Redirect(w, r, "/", http.StatusSeeOther)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxUploadBytes)
	if err := r.ParseForm(); err != nil {
		http.Error(w, "upload too large or malformed", http.StatusRequestEntityTooLarge)
		return
	}
	s.mu.Lock()
	s.Source = r.FormValue("source")
	s.SourceName = r.FormValue("name")
	s.Result = nil
	s.logf("uploaded %d bytes (%s)", len(s.Source), sourceKind(s.Source))
	s.mu.Unlock()
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func sourceKind(src string) string {
	t := strings.TrimSpace(src)
	switch {
	case strings.HasPrefix(t, ".model"):
		return "BLIF"
	case edif.IsEDIF(t):
		return "EDIF"
	default:
		return "VHDL"
	}
}

// stageHandler wraps a stage action with form parsing, locking and logging.
func (s *Server) stageHandler(name string, fn func(*http.Request) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Redirect(w, r, "/", http.StatusSeeOther)
			return
		}
		s.mu.Lock()
		if err := fn(r); err != nil {
			s.logf("%s: ERROR: %v", name, err)
		} else {
			s.logf("%s: done", name)
		}
		s.mu.Unlock()
		http.Redirect(w, r, "/", http.StatusSeeOther)
	}
}

func (s *Server) logf(format string, args ...interface{}) {
	s.Log = append(s.Log, fmt.Sprintf(format, args...))
	if len(s.Log) > 200 {
		s.Log = s.Log[len(s.Log)-200:]
	}
}

// runSynthesis performs stage 2 only: parse + elaborate, reporting stats.
func (s *Server) runSynthesis(r *http.Request) error {
	if s.Source == "" {
		return fmt.Errorf("no design uploaded")
	}
	if sourceKind(s.Source) != "VHDL" {
		return fmt.Errorf("synthesis needs VHDL input")
	}
	d, err := vhdl.Parse(s.Source)
	if err != nil {
		return err
	}
	nl, err := vhdl.Elaborate(d, "")
	if err != nil {
		return err
	}
	st := nl.Stats()
	s.logf("DIVINER: %s: %d gates, %d FFs, %d inputs, %d outputs",
		nl.Name, st.Logic, st.Latches, st.Inputs, st.Outputs)
	return nil
}

// runTranslate performs the DRUID + E2FMT stages, logging the BLIF size.
func (s *Server) runTranslate(*http.Request) error {
	if s.Source == "" {
		return fmt.Errorf("no design uploaded")
	}
	var nl *netlist.Netlist
	switch sourceKind(s.Source) {
	case "BLIF":
		var err error
		nl, err = netlist.ParseBLIF(s.Source)
		if err != nil {
			return err
		}
	case "EDIF":
		norm, err := edif.Druid(s.Source)
		if err != nil {
			return err
		}
		blif, err := edif.E2FMT(norm)
		if err != nil {
			return err
		}
		s.logf("E2FMT: %d bytes of BLIF", len(blif))
		return nil
	default:
		d, err := vhdl.Parse(s.Source)
		if err != nil {
			return err
		}
		nl, err = vhdl.Elaborate(d, "")
		if err != nil {
			return err
		}
	}
	text, err := edif.Write(nl)
	if err != nil {
		return err
	}
	norm, err := edif.Druid(text)
	if err != nil {
		return err
	}
	blif, err := edif.E2FMT(norm)
	if err != nil {
		return err
	}
	s.logf("DRUID+E2FMT: %d bytes EDIF -> %d bytes BLIF", len(norm), len(blif))
	return nil
}

// runFull executes the complete flow with the current options.
func (s *Server) runFull(r *http.Request) error {
	if s.Source == "" {
		return fmt.Errorf("no design uploaded")
	}
	if v := r.FormValue("seed"); v != "" {
		if seed, err := strconv.ParseInt(v, 10, 64); err == nil {
			s.Opts.Seed = seed
		}
	}
	if v := r.FormValue("clock"); v != "" {
		if mhz, err := strconv.ParseFloat(v, 64); err == nil {
			s.Opts.ClockHz = mhz * 1e6
		}
	}
	s.Opts.MinChannelWidth = r.FormValue("minw") == "on"
	tr := obs.New("fpgaweb")
	s.Opts.Obs = tr
	s.Opts.Events = s.Bus
	s.runs++
	var res *core.Result
	var err error
	if sourceKind(s.Source) == "BLIF" {
		res, err = core.RunBLIF(s.Source, s.Opts)
	} else {
		res, err = core.RunVHDL(s.Source, s.Opts)
	}
	s.LastTrace = tr
	if res != nil {
		for _, st := range res.Stages {
			s.logf("  %-12s %s", st.Tool, st.Detail)
		}
		s.Result = res
	}
	return err
}

func (s *Server) handleProgram(w http.ResponseWriter, r *http.Request) {
	s.stageHandler("FPGA Program", func(r *http.Request) error {
		if s.Result == nil || len(s.Result.Encoded) == 0 {
			return s.runFull(r)
		}
		s.logf("DAGGER: bitstream %d bytes (sha-less preview %s...)",
			len(s.Result.Encoded), base64.StdEncoding.EncodeToString(s.Result.Encoded[:min(12, len(s.Result.Encoded))]))
		return nil
	})(w, r)
}

func (s *Server) handleBitstream(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Result == nil || len(s.Result.Encoded) == 0 {
		http.Error(w, "no bitstream generated", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", "attachment; filename=design.bit")
	_, _ = w.Write(s.Result.Encoded) // response write errors are client disconnects
}

// handleMetrics serves the observability view of the server. The default
// is JSON: the run count plus the full span/counter summary of the last
// flow execution (the same schema fpgaflow -metrics writes).
// `?format=prom` switches to the Prometheus text exposition format,
// aggregating the server's own trace (HTTP latency), the job service's
// trace (queue wait, WAL fsync, per-tenant counters) and the last flow
// run (stage wall times) into one scrapeable document.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prom" {
		s.mu.Lock()
		last := s.LastTrace
		s.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := obs.WritePrometheus(w, s.Obs, s.JobsTrace, last); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	type jobsDoc struct {
		jobs.Stats
		// Counters and Gauges are the jobs.* namespace from the service's
		// trace (jobs.submitted, jobs.queue_depth, ...).
		Counters map[string]int64   `json:"counters,omitempty"`
		Gauges   map[string]float64 `json:"gauges,omitempty"`
	}
	s.mu.Lock()
	doc := struct {
		Runs int64        `json:"runs"`
		Last *obs.Summary `json:"last_run,omitempty"`
		Jobs *jobsDoc     `json:"jobs,omitempty"`
	}{Runs: s.runs, Last: s.LastTrace.Summary()}
	s.mu.Unlock()
	if s.Jobs != nil {
		doc.Jobs = &jobsDoc{Stats: s.Jobs.Snapshot(),
			Counters: s.JobsTrace.Counters(), Gauges: s.JobsTrace.Gauges()}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// httpServer builds the hardened http.Server for the GUI: header, read and
// write deadlines bound every connection (the write timeout is generous
// because a flow run happens inside the request handler), and idle
// keep-alives are reaped.
func (s *Server) httpServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// ListenAndServe starts the GUI on the given address (no shutdown hook;
// prefer Run for signal-aware serving).
func (s *Server) ListenAndServe(addr string) error {
	return s.httpServer(addr).ListenAndServe()
}

// Run serves the GUI until ctx is cancelled (typically by SIGINT/SIGTERM
// through signal.NotifyContext), then shuts down gracefully: in-flight
// requests — including a running flow — get up to grace to finish before
// connections are closed. Returns nil on a clean shutdown.
func (s *Server) Run(ctx context.Context, addr string, grace time.Duration) error {
	srv := s.httpServer(addr)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Shutdown runs after ctx is already done, so the grace window must not
	// inherit its cancellation — only its values.
	sdCtx, cancel := context.WithTimeout(context.WithoutCancel(ctx), grace)
	defer cancel()
	// Wake every live SSE stream before Shutdown: those handlers block on
	// the event bus, not the request body, so a subscriber that never
	// disconnects would otherwise hold Shutdown open for the whole grace
	// window. The drain signal makes them exit immediately.
	s.closeOnce.Do(func() {
		if s.closing != nil {
			close(s.closing)
		}
	})
	err := srv.Shutdown(sdCtx)
	if s.Jobs != nil {
		// Drain the job service under the same deadline: stop admitting,
		// let workers finish or checkpoint, flush the WAL.
		if jerr := s.Jobs.Close(sdCtx); err == nil {
			err = jerr
		}
	}
	if serveErr := <-errc; serveErr != nil && serveErr != http.ErrServerClosed {
		return serveErr
	}
	return err
}
