package gui

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"fpgaflow/internal/circuits"
)

// client wraps the test server with a no-redirect policy so we can follow
// the POST/redirect/GET cycle explicitly.
func newClient(t *testing.T) (*httptest.Server, *http.Client) {
	t.Helper()
	srv := httptest.NewServer(NewServer().Handler())
	t.Cleanup(srv.Close)
	c := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	return srv, c
}

func postForm(t *testing.T, c *http.Client, url string, form map[string]string) {
	t.Helper()
	vals := make(map[string][]string, len(form))
	for k, v := range form {
		vals[k] = []string{v}
	}
	resp, err := c.PostForm(url, vals)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
}

func getBody(t *testing.T, c *http.Client, url string) string {
	t.Helper()
	resp, err := c.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestHomeShowsSixStages(t *testing.T) {
	srv, c := newClient(t)
	body := getBody(t, c, srv.URL+"/")
	for _, stage := range []string{"File Upload", "Synthesis", "Format Translation",
		"Power Estimation", "Placement and Routing", "FPGA Program"} {
		if !strings.Contains(body, stage) {
			t.Errorf("home page missing stage %q", stage)
		}
	}
}

func TestFullGUIWorkflow(t *testing.T) {
	srv, c := newClient(t)
	b := circuits.RippleAdder(4)
	postForm(t, c, srv.URL+"/upload", map[string]string{"source": b.VHDL, "name": b.Name})

	body := getBody(t, c, srv.URL+"/")
	if !strings.Contains(body, "design loaded") {
		t.Fatal("upload not reflected")
	}

	postForm(t, c, srv.URL+"/synthesize", nil)
	body = getBody(t, c, srv.URL+"/")
	if !strings.Contains(body, "DIVINER") || strings.Contains(body, "ERROR") {
		t.Fatalf("synthesis log wrong:\n%s", tail(body))
	}

	postForm(t, c, srv.URL+"/translate", nil)
	body = getBody(t, c, srv.URL+"/")
	if !strings.Contains(body, "E2FMT") {
		t.Fatal("translation log missing")
	}

	postForm(t, c, srv.URL+"/pnr", map[string]string{"seed": "3"})
	body = getBody(t, c, srv.URL+"/")
	if !strings.Contains(body, "critical path") {
		t.Fatalf("place-and-route metrics missing:\n%s", tail(body))
	}
	if !strings.Contains(body, "LUTs") {
		t.Fatal("metrics missing LUT count")
	}

	postForm(t, c, srv.URL+"/program", nil)
	body = getBody(t, c, srv.URL+"/")
	if !strings.Contains(body, "bitstream ready") {
		t.Fatalf("bitstream not offered:\n%s", tail(body))
	}
	if !strings.Contains(body, "verified equivalent") {
		t.Error("verification badge missing")
	}

	// Download the bitstream.
	resp, err := c.Get(srv.URL + "/bitstream.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || len(data) < 16 {
		t.Fatalf("bitstream download: status %d, %d bytes", resp.StatusCode, len(data))
	}
	if string(data[:4]) != "DAGR" {
		t.Error("downloaded bitstream has wrong magic")
	}
}

func TestGUIRejectsRunWithoutUpload(t *testing.T) {
	srv, c := newClient(t)
	postForm(t, c, srv.URL+"/pnr", nil)
	body := getBody(t, c, srv.URL+"/")
	if !strings.Contains(body, "ERROR") {
		t.Fatal("missing error for empty design")
	}
}

func TestGUISynthesisErrorsSurface(t *testing.T) {
	srv, c := newClient(t)
	postForm(t, c, srv.URL+"/upload", map[string]string{"source": "entity broken is port (", "name": "x"})
	postForm(t, c, srv.URL+"/synthesize", nil)
	body := getBody(t, c, srv.URL+"/")
	if !strings.Contains(body, "ERROR") {
		t.Fatal("syntax error not surfaced")
	}
}

func TestGUIAcceptsBLIF(t *testing.T) {
	srv, c := newClient(t)
	blif := ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n"
	postForm(t, c, srv.URL+"/upload", map[string]string{"source": blif, "name": "m"})
	postForm(t, c, srv.URL+"/pnr", map[string]string{"seed": "1"})
	body := getBody(t, c, srv.URL+"/")
	if !strings.Contains(body, "critical path") {
		t.Fatalf("BLIF flow failed:\n%s", tail(body))
	}
}

func TestBitstreamNotFoundBeforeRun(t *testing.T) {
	srv, c := newClient(t)
	resp, err := c.Get(srv.URL + "/bitstream.bin")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func tail(s string) string {
	if i := strings.Index(s, "Tool log"); i >= 0 {
		return s[i:]
	}
	return s
}

func TestLayoutEndpoint(t *testing.T) {
	srv, c := newClient(t)
	// Before a run: 404.
	resp, err := c.Get(srv.URL + "/layout")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pre-run status %d", resp.StatusCode)
	}
	b := circuits.RippleAdder(4)
	postForm(t, c, srv.URL+"/upload", map[string]string{"source": b.VHDL, "name": b.Name})
	postForm(t, c, srv.URL+"/pnr", map[string]string{"seed": "2"})
	body := getBody(t, c, srv.URL+"/layout")
	if !strings.Contains(body, "floorplan") || !strings.Contains(body, "C") {
		t.Fatalf("floorplan missing content:\n%s", body)
	}
	// Every input port must appear in the block legend.
	for _, port := range []string{"cin", "cout"} {
		if !strings.Contains(body, port) {
			t.Errorf("legend missing %s", port)
		}
	}
}

func TestDocsEndpoint(t *testing.T) {
	srv, c := newClient(t)
	body := getBody(t, c, srv.URL+"/docs")
	for _, tool := range []string{"DIVINER", "DRUID", "E2FMT", "T-VPack", "DUTYS", "DAGGER", "PowerModel"} {
		if !strings.Contains(body, tool) {
			t.Errorf("docs missing %s", tool)
		}
	}
	home := getBody(t, c, srv.URL+"/")
	if !strings.Contains(home, "/docs") {
		t.Error("home does not link the documentation")
	}
}
