package gui

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fpgaflow/internal/core"
	"fpgaflow/internal/jobs"
	"fpgaflow/internal/obs"
)

// newJobsServer boots a GUI server with an embedded job service whose
// runner completes instantly.
func newJobsServer(t *testing.T, mod func(*jobs.Config)) (*httptest.Server, *Server) {
	t.Helper()
	s := NewServer()
	tr := obs.New("jobs")
	cfg := jobs.Config{
		Dir: t.TempDir(), Workers: 2, Obs: tr, Events: s.Bus,
		Runner: func(ctx context.Context, spec jobs.Spec) (*core.Result, error) {
			return &core.Result{Encoded: []byte("bits:" + spec.Fingerprint())}, nil
		},
	}
	if mod != nil {
		mod(&cfg)
	}
	svc, err := jobs.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Jobs, s.JobsTrace = svc, tr
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		svc.Close(ctx)
	})
	return srv, s
}

func submitJob(t *testing.T, url string, spec jobs.Spec) (*http.Response, jobs.Status) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st jobs.Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	}
	return resp, st
}

func blifSpec(tenant string, seed int64) jobs.Spec {
	return jobs.Spec{Tenant: tenant, Name: "adder",
		Source:  ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n",
		Options: jobs.FlowOptions{Seed: seed}}
}

// TestJobsAPILifecycle drives one job over HTTP end to end: submit, poll to
// terminal, list artifacts, download one, and observe it in the job list.
func TestJobsAPILifecycle(t *testing.T) {
	srv, _ := newJobsServer(t, nil)
	resp, st := submitJob(t, srv.URL, blifSpec("alice", 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /jobs: status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); loc != "/jobs/"+st.ID {
		t.Fatalf("Location = %q", loc)
	}

	// Poll the status endpoint to a terminal state.
	deadline := time.Now().Add(15 * time.Second)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", st.State)
		}
		time.Sleep(10 * time.Millisecond)
		r, err := http.Get(srv.URL + "/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		st = jobs.Status{}
		err = json.NewDecoder(r.Body).Decode(&st)
		r.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	if st.State != jobs.StateSucceeded {
		t.Fatalf("job finished %s: %s", st.State, st.Error)
	}

	var arts struct {
		Artifacts []string `json:"artifacts"`
	}
	r, err := http.Get(srv.URL + "/jobs/" + st.ID + "/artifacts")
	if err != nil {
		t.Fatal(err)
	}
	err = json.NewDecoder(r.Body).Decode(&arts)
	r.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(arts.Artifacts) == 0 || arts.Artifacts[0] != "design.bit" {
		t.Fatalf("artifacts = %v", arts.Artifacts)
	}
	bits := getBody(t, http.DefaultClient, srv.URL+"/jobs/"+st.ID+"/artifacts/design.bit")
	if !strings.HasPrefix(bits, "bits:") {
		t.Fatalf("artifact bytes = %q", bits)
	}

	list := getBody(t, http.DefaultClient, srv.URL+"/jobs?tenant=alice")
	if !strings.Contains(list, st.ID) {
		t.Fatalf("tenant list missing job:\n%s", list)
	}
}

// TestJobsAPICancel cancels a running job with DELETE.
func TestJobsAPICancel(t *testing.T) {
	started := make(chan struct{}, 1)
	srv, s := newJobsServer(t, func(c *jobs.Config) {
		c.Workers = 1
		c.Runner = func(ctx context.Context, spec jobs.Spec) (*core.Result, error) {
			started <- struct{}{}
			<-ctx.Done()
			return nil, ctx.Err()
		}
	})
	_, st := submitJob(t, srv.URL, blifSpec("alice", 1))
	<-started
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	final, err := s.Jobs.Wait(ctx, st.ID)
	if err != nil || final.State != jobs.StateCanceled {
		t.Fatalf("after DELETE: %+v, %v", final, err)
	}
}

func TestJobsAPIErrors(t *testing.T) {
	srv, _ := newJobsServer(t, nil)
	// Malformed spec -> 400.
	resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(`{"tenant":"UP"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad spec: status %d, want 400", resp.StatusCode)
	}
	// Unknown job -> 404.
	resp, err = http.Get(srv.URL + "/jobs/j999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404", resp.StatusCode)
	}
	// Oversized body -> 413.
	huge := bytes.Repeat([]byte("x"), maxJobBodyBytes+1)
	resp, err = http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}

	// Without a job service the whole API is a clean 404.
	plain := httptest.NewServer(NewServer().Handler())
	defer plain.Close()
	resp, err = http.Post(plain.URL+"/jobs", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("disabled jobs API: status %d, want 404", resp.StatusCode)
	}
}

// TestJobsAPIQuota429 is the backpressure acceptance check: a tenant
// exceeding its quota gets 429 with a Retry-After header while another
// tenant's submissions still go through, and the rejection shows up on the
// jobs.* counters served by /metrics.
func TestJobsAPIQuota429(t *testing.T) {
	srv, _ := newJobsServer(t, func(c *jobs.Config) {
		c.TenantRate = 0.001
		c.TenantBurst = 1
	})
	if resp, _ := submitJob(t, srv.URL, blifSpec("noisy", 1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", resp.StatusCode)
	}
	resp, _ := submitJob(t, srv.URL, blifSpec("noisy", 2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After header")
	}
	// The other tenant is unaffected.
	if resp, _ := submitJob(t, srv.URL, blifSpec("quiet", 1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("other tenant: status %d, want 202", resp.StatusCode)
	}

	// /metrics exposes the jobs namespace: counters and the queue gauge.
	var doc struct {
		Jobs struct {
			Counters map[string]int64   `json:"counters"`
			Gauges   map[string]float64 `json:"gauges"`
		} `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(getBody(t, http.DefaultClient, srv.URL+"/metrics")), &doc); err != nil {
		t.Fatalf("/metrics: %v", err)
	}
	if doc.Jobs.Counters["jobs.submitted"] < 2 {
		t.Fatalf("jobs.submitted = %d", doc.Jobs.Counters["jobs.submitted"])
	}
	if doc.Jobs.Counters["jobs.rejected_quota"] < 1 {
		t.Fatalf("jobs.rejected_quota = %d", doc.Jobs.Counters["jobs.rejected_quota"])
	}
	if _, ok := doc.Jobs.Gauges["jobs.queue_depth"]; !ok {
		t.Fatal("jobs.queue_depth gauge missing from /metrics")
	}
}

// TestUploadBodyBounded: the upload form rejects oversized posts instead of
// buffering them.
func TestUploadBodyBounded(t *testing.T) {
	srv, c := newClient(t)
	huge := strings.NewReader("source=" + strings.Repeat("x", maxUploadBytes+1))
	resp, err := c.Post(srv.URL+"/upload", "application/x-www-form-urlencoded", huge)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: status %d, want 413", resp.StatusCode)
	}
	// A normal upload still works.
	resp, err = c.PostForm(srv.URL+"/upload", map[string][]string{"source": {".model m\n.end\n"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusSeeOther {
		t.Fatalf("normal upload: status %d", resp.StatusCode)
	}
}

// TestSSESubscriberLeak: every departed /events client must unsubscribe
// from the bus — N connects and disconnects leave zero live subscribers.
func TestSSESubscriberLeak(t *testing.T) {
	s := NewServer()
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	const n = 5
	cancels := make([]context.CancelFunc, 0, n)
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		cancels = append(cancels, cancel)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
	}
	// All streams are live: the bus sees the subscribers.
	deadline := time.Now().Add(5 * time.Second)
	for s.Bus.Subscribers() != n {
		if time.Now().After(deadline) {
			t.Fatalf("subscribers = %d, want %d", s.Bus.Subscribers(), n)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, cancel := range cancels {
		cancel()
	}
	deadline = time.Now().Add(5 * time.Second)
	for s.Bus.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("subscriber leak: %d still registered after all clients left", s.Bus.Subscribers())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownWithStuckSSESubscriber: an SSE client that stays connected
// (its handler parked on the event bus) must not hold graceful shutdown for
// the whole grace window — Run's drain signal ends the stream immediately.
func TestShutdownWithStuckSSESubscriber(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()

	s := NewServer()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx, addr, 30*time.Second) }()

	up := false
	for i := 0; i < 100; i++ {
		resp, err := http.Get(fmt.Sprintf("http://%s/", addr))
		if err == nil {
			resp.Body.Close()
			up = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !up {
		t.Fatalf("server never came up on %s", addr)
	}

	// The stuck subscriber: connected, never reading, never leaving.
	resp, err := http.Get(fmt.Sprintf("http://%s/events", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	for s.Bus.Subscribers() == 0 {
		time.Sleep(10 * time.Millisecond)
	}

	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown blocked behind a stuck SSE subscriber")
	}
	if elapsed := time.Since(start); elapsed > 8*time.Second {
		t.Fatalf("shutdown took %v with a 30s grace window; the drain signal should end SSE streams immediately", elapsed)
	}
}
