// Live flow introspection: the GUI server owns a convergence-telemetry bus
// (internal/obs/events) that every flow run publishes into, and exposes it
// over HTTP — /events streams the raw event feed as server-sent events,
// /heatmap serves the fabric heatmap derived from the latest run, and
// /debug/pprof/* gives the standard Go profiling views of the live server.
package gui

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"

	"fpgaflow/internal/obs/events"
)

// maxSSEReplay caps how much buffered history a new /events subscriber is
// sent before going live.
const maxSSEReplay = 512

// registerLive wires the introspection endpoints onto the GUI mux.
func (s *Server) registerLive(mux *http.ServeMux) {
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/heatmap", s.handleHeatmap)
	// The standard pprof handlers, normally registered on
	// http.DefaultServeMux by the net/http/pprof import side effect; the GUI
	// uses its own mux, so wire them explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// handleEvents streams the telemetry feed as server-sent events: first a
// replay of the buffered history (so a client attaching mid-run sees how it
// got here), then live events as the flow publishes them. One `data:` line
// per event, JSON-encoded with the same schema as events.jsonl; the event
// Seq doubles as the SSE id. The stream ends when the client disconnects or
// the server's write timeout expires — EventSource clients reconnect
// automatically.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	id, ch, replay := s.Bus.Subscribe(256)
	defer s.Bus.Unsubscribe(id)
	// Bound the replay: a late subscriber catches up from recent history,
	// not from the bus's entire ring — a large run would otherwise turn
	// every new SSE connection into a multi-megabyte burst.
	if len(replay) > maxSSEReplay {
		replay = replay[len(replay)-maxSSEReplay:]
	}

	write := func(ev events.Event) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, data); err != nil {
			return false
		}
		return true
	}
	for _, ev := range replay {
		if !write(ev) {
			return
		}
	}
	fl.Flush()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.closing:
			// Server shutdown: end the stream now so graceful drain never
			// waits on a subscriber that keeps its connection open.
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if !write(ev) {
				return
			}
			fl.Flush()
		}
	}
}

// handleHeatmap serves the fabric heatmap of the most recent run — the same
// document `fpgaflow -events dir/` writes as heatmap.json, derived from the
// latest place_map/route_congestion events on the bus. 404 until a flow has
// placed something.
func (s *Server) handleHeatmap(w http.ResponseWriter, r *http.Request) {
	h := events.HeatmapFromBus(s.Bus)
	if h == nil {
		http.Error(w, "no flow run yet: upload a design and run placement", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := h.WriteJSON(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
