// Job lifecycle API: the compile-farm face of fpgaweb. The endpoints are a
// thin veneer over internal/jobs — admission, durability, quotas and
// recovery all live in the service; this file only translates HTTP to
// Service calls and typed service errors to status codes:
//
//	POST   /jobs                      submit a job spec (JSON)  -> 202
//	GET    /jobs[?tenant=t]           list jobs                 -> 200
//	GET    /jobs/{id}                 job status                -> 200
//	DELETE /jobs/{id}                 cancel                    -> 200
//	GET    /jobs/{id}/artifacts       artifact names            -> 200
//	GET    /jobs/{id}/artifacts/{name} artifact bytes           -> 200
//
// Error classes: invalid spec -> 400, over quota or backlog -> 429 with
// Retry-After, draining -> 503 with Retry-After, unknown job -> 404.
package gui

import (
	"encoding/json"
	"errors"
	"io"
	"math"
	"net/http"
	"os"
	"strconv"

	"fpgaflow/internal/jobs"
	"fpgaflow/internal/obs"
)

// maxJobBodyBytes bounds a POST /jobs body: the spec's source limit plus
// slack for the JSON envelope. MaxBytesReader enforces it per request, so a
// hostile client cannot buffer unbounded bytes into the server.
const maxJobBodyBytes = jobs.MaxSourceBytes + 64*1024

// registerJobs wires the job lifecycle endpoints onto the GUI mux. Every
// route is wrapped in the latency middleware under its pattern (never the
// raw URL), so the http.request_seconds label set stays bounded.
func (s *Server) registerJobs(mux *http.ServeMux) {
	mux.HandleFunc("POST /jobs", s.timed("POST /jobs", s.withJobs(s.handleJobSubmit)))
	mux.HandleFunc("GET /jobs", s.timed("GET /jobs", s.withJobs(s.handleJobList)))
	mux.HandleFunc("GET /jobs/{id}", s.timed("GET /jobs/{id}", s.withJobs(s.handleJobGet)))
	mux.HandleFunc("DELETE /jobs/{id}", s.timed("DELETE /jobs/{id}", s.withJobs(s.handleJobCancel)))
	mux.HandleFunc("GET /jobs/{id}/artifacts", s.timed("GET /jobs/{id}/artifacts", s.withJobs(s.handleJobArtifacts)))
	mux.HandleFunc("GET /jobs/{id}/artifacts/{name}", s.timed("GET /jobs/{id}/artifacts/{name}", s.withJobs(s.handleJobArtifactFile)))
	mux.HandleFunc("GET /jobs/{id}/trace", s.timed("GET /jobs/{id}/trace", s.withJobs(s.handleJobTrace)))
}

// withJobs gates an endpoint on the job service being configured.
func (s *Server) withJobs(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.Jobs == nil {
			http.Error(w, "job service not enabled (start fpgaweb with -jobs-dir)", http.StatusNotFound)
			return
		}
		h(w, r)
	}
}

// jobError maps the service's typed errors onto HTTP statuses. Quota
// rejections carry the token-bucket's own hint as a Retry-After header, so
// well-behaved clients back off exactly as long as the bucket needs.
func jobError(w http.ResponseWriter, err error) {
	var qe *jobs.QuotaError
	switch {
	case errors.As(err, &qe):
		retry := int(math.Ceil(qe.RetryAfter.Seconds()))
		if retry < 1 {
			retry = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(retry))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, jobs.ErrBadSpec):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, jobs.ErrDraining):
		w.Header().Set("Retry-After", "10")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, jobs.ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // response write errors are client disconnects
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxJobBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			http.Error(w, "job spec exceeds the request size limit", http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	spec, err := jobs.DecodeSpec(body)
	if err != nil {
		jobError(w, err)
		return
	}
	st, err := s.Jobs.Submit(r.Context(), spec)
	if err != nil {
		jobError(w, err)
		return
	}
	w.Header().Set("Location", "/jobs/"+st.ID)
	writeJSON(w, http.StatusAccepted, st)
}

func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Jobs.List(r.URL.Query().Get("tenant")))
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Jobs.Get(r.PathValue("id"))
	if err != nil {
		jobError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	st, err := s.Jobs.Cancel(r.PathValue("id"))
	if err != nil {
		jobError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleJobArtifacts(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	names, err := s.Jobs.ArtifactNames(id)
	if err != nil {
		jobError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		ID        string   `json:"id"`
		Artifacts []string `json:"artifacts"`
	}{ID: id, Artifacts: names})
}

func (s *Server) handleJobArtifactFile(w http.ResponseWriter, r *http.Request) {
	path, err := s.Jobs.ArtifactPath(r.PathValue("id"), r.PathValue("name"))
	if err != nil {
		jobError(w, err)
		return
	}
	http.ServeFile(w, r, path)
}

// handleJobTrace serves a finished job's end-to-end trace. The default is
// the trace.json artifact verbatim (the obs.Summary schema: queue wait,
// every attempt and every flow stage as spans under one trace ID).
// `?format=chrome` converts it on the fly to the Chrome trace-event format
// so it can be dropped straight into Perfetto / chrome://tracing.
func (s *Server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	path, err := s.Jobs.ArtifactPath(r.PathValue("id"), "trace.json")
	if err != nil {
		jobError(w, err)
		return
	}
	if r.URL.Query().Get("format") != "chrome" {
		http.ServeFile(w, r, path)
		return
	}
	data, err := os.ReadFile(path)
	if err != nil {
		jobError(w, jobs.ErrNotFound)
		return
	}
	sum, err := obs.ParseSummary(data)
	if err != nil {
		http.Error(w, "corrupt trace artifact: "+err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteChromeTrace(w, sum); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
