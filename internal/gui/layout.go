package gui

import (
	"fmt"
	"net/http"
	"sort"
	"strings"

	"fpgaflow/internal/place"
)

// FloorplanText renders the placed design as an ASCII grid: '.' empty logic
// site, 'C' occupied CLB, 'i'/'o' input/output pads, blank corners. The
// legend lists every block with its coordinates, mirroring VPR's placement
// display in a browser-friendly form.
func FloorplanText(p *place.Problem, pl *place.Placement) string {
	a := p.Arch
	w, h := a.Cols+2, a.Rows+2
	grid := make([][]byte, w)
	for x := range grid {
		grid[x] = make([]byte, h)
		for y := range grid[x] {
			onX := x == 0 || x == a.Cols+1
			onY := y == 0 || y == a.Rows+1
			switch {
			case onX && onY:
				grid[x][y] = ' '
			case onX || onY:
				grid[x][y] = '-'
			default:
				grid[x][y] = '.'
			}
		}
	}
	type entry struct {
		name string
		loc  place.Location
		kind place.BlockKind
	}
	var entries []entry
	for _, b := range p.Blocks {
		l := pl.Loc[b.ID]
		switch b.Kind {
		case place.BlockCLB:
			grid[l.X][l.Y] = 'C'
		case place.BlockInpad:
			grid[l.X][l.Y] = 'i'
		case place.BlockOutpad:
			grid[l.X][l.Y] = 'o'
		}
		entries = append(entries, entry{b.Name, l, b.Kind})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].name < entries[j].name })

	var sb strings.Builder
	fmt.Fprintf(&sb, "floorplan %dx%d logic grid (y grows downward)\n\n", a.Cols, a.Rows)
	for y := h - 1; y >= 0; y-- {
		sb.WriteString("  ")
		for x := 0; x < w; x++ {
			sb.WriteByte(grid[x][y])
			sb.WriteByte(' ')
		}
		sb.WriteByte('\n')
	}
	sb.WriteString("\nblocks:\n")
	for _, e := range entries {
		fmt.Fprintf(&sb, "  %-7s %-24s (%d,%d) sub %d\n", e.kind, e.name, e.loc.X, e.loc.Y, e.loc.Sub)
	}
	return sb.String()
}

func (s *Server) handleLayout(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Result == nil || s.Result.Placed == nil {
		http.Error(w, "run placement first", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, FloorplanText(s.Result.Problem, s.Result.Placed))
}
