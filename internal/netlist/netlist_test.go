package netlist

import (
	"strings"
	"testing"
)

func mustInput(t *testing.T, nl *Netlist, name string) *Node {
	t.Helper()
	n, err := nl.AddInput(name)
	if err != nil {
		t.Fatalf("AddInput(%s): %v", name, err)
	}
	return n
}

func mustLogic(t *testing.T, nl *Netlist, name string, fanin []*Node, cubes ...string) *Node {
	t.Helper()
	var c Cover
	c.Value = LitOne
	for _, s := range cubes {
		c.Cubes = append(c.Cubes, Cube(s))
	}
	n, err := nl.AddLogic(name, fanin, c)
	if err != nil {
		t.Fatalf("AddLogic(%s): %v", name, err)
	}
	return n
}

func buildAndOr(t *testing.T) *Netlist {
	t.Helper()
	nl := New("andor")
	a := mustInput(t, nl, "a")
	b := mustInput(t, nl, "b")
	c := mustInput(t, nl, "c")
	and := mustLogic(t, nl, "and_ab", []*Node{a, b}, "11")
	mustLogic(t, nl, "out", []*Node{and, c}, "1-", "-1")
	nl.MarkOutput("out")
	return nl
}

func TestBuildAndCheck(t *testing.T) {
	nl := buildAndOr(t)
	if err := nl.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
	s := nl.Stats()
	if s.Inputs != 3 || s.Outputs != 1 || s.Logic != 2 || s.Latches != 0 {
		t.Errorf("Stats = %+v", s)
	}
	if s.Depth != 2 {
		t.Errorf("Depth = %d, want 2", s.Depth)
	}
}

func TestDuplicateDriverRejected(t *testing.T) {
	nl := New("dup")
	mustInput(t, nl, "a")
	if _, err := nl.AddInput("a"); err == nil {
		t.Fatal("duplicate input accepted")
	}
	if _, err := nl.AddLogic("a", nil, Cover{}); err == nil {
		t.Fatal("logic node shadowing input accepted")
	}
}

func TestCubeWidthMismatchRejected(t *testing.T) {
	nl := New("w")
	a := mustInput(t, nl, "a")
	if _, err := nl.AddLogic("x", []*Node{a}, Cover{Cubes: []Cube{Cube("11")}}); err == nil {
		t.Fatal("mismatched cube width accepted")
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	nl := New("cyc")
	a := mustInput(t, nl, "a")
	x := mustLogic(t, nl, "x", []*Node{a}, "1")
	y := mustLogic(t, nl, "y", []*Node{x}, "1")
	// Manually close a cycle x <- y.
	x.Fanin[0] = y
	nl.MarkOutput("y")
	if err := nl.Check(); err == nil {
		t.Fatal("combinational cycle not detected")
	}
}

func TestLatchCycleAllowed(t *testing.T) {
	nl := New("reg")
	a := mustInput(t, nl, "a")
	// q feeds back through logic into its own D: legal.
	nl2 := nl
	q, err := nl2.AddLatch("q", a, '0', "clk")
	if err != nil {
		t.Fatalf("AddLatch: %v", err)
	}
	d := mustLogic(t, nl2, "d", []*Node{q, a}, "10", "01") // q xor a
	q.Fanin[0] = d
	nl2.MarkOutput("q")
	if err := nl2.Check(); err != nil {
		t.Fatalf("latch feedback rejected: %v", err)
	}
}

func TestTopoSortOrder(t *testing.T) {
	nl := buildAndOr(t)
	topo, err := nl.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, n := range topo {
		pos[n.Name] = i
	}
	for _, n := range nl.Nodes() {
		if n.Kind != KindLogic {
			continue
		}
		for _, f := range n.Fanin {
			if pos[f.Name] > pos[n.Name] {
				t.Errorf("fanin %s after %s in topo order", f.Name, n.Name)
			}
		}
	}
}

func TestSweepRemovesDeadLogic(t *testing.T) {
	nl := buildAndOr(t)
	a := nl.Node("a")
	mustLogic(t, nl, "dead", []*Node{a}, "1")
	if got := nl.Sweep(); got != 1 {
		t.Fatalf("Sweep removed %d, want 1", got)
	}
	if nl.Node("dead") != nil {
		t.Fatal("dead node still present")
	}
	if nl.Node("and_ab") == nil {
		t.Fatal("live node removed")
	}
}

func TestSweepKeepsLatchCone(t *testing.T) {
	nl := New("s")
	a := mustInput(t, nl, "a")
	d := mustLogic(t, nl, "d", []*Node{a}, "0")
	q, _ := nl.AddLatch("q", d, '0', "")
	out := mustLogic(t, nl, "out", []*Node{q}, "1")
	_ = out
	nl.MarkOutput("out")
	if got := nl.Sweep(); got != 0 {
		t.Fatalf("Sweep removed %d live nodes", got)
	}
	if nl.Node("d") == nil {
		t.Fatal("latch input cone swept")
	}
}

func TestIsConstBufferInverter(t *testing.T) {
	nl := New("c")
	a := mustInput(t, nl, "a")
	one, _ := nl.AddLogic("one", nil, Cover{Cubes: []Cube{{}}, Value: LitOne})
	zero, _ := nl.AddLogic("zero", nil, Cover{Value: LitOne})
	buf := mustLogic(t, nl, "buf", []*Node{a}, "1")
	inv := mustLogic(t, nl, "inv", []*Node{a}, "0")
	if ok, v := one.IsConst(); !ok || !v {
		t.Error("one not detected as const 1")
	}
	if ok, v := zero.IsConst(); !ok || v {
		t.Error("zero not detected as const 0")
	}
	if !buf.IsBuffer() || buf.IsInverter() {
		t.Error("buffer misdetected")
	}
	if !inv.IsInverter() || inv.IsBuffer() {
		t.Error("inverter misdetected")
	}
}

func TestCloneIsDeep(t *testing.T) {
	nl := buildAndOr(t)
	c := nl.Clone()
	c.Node("and_ab").Cover.Cubes[0][0] = LitZero
	if nl.Node("and_ab").Cover.Cubes[0][0] != LitOne {
		t.Fatal("clone shares cube storage")
	}
	if err := c.Check(); err != nil {
		t.Fatalf("clone Check: %v", err)
	}
	if c.Node("out").Fanin[0] == nl.Node("and_ab") {
		t.Fatal("clone shares node pointers")
	}
}

func TestRenameAndReplaceUses(t *testing.T) {
	nl := buildAndOr(t)
	and := nl.Node("and_ab")
	if err := nl.Rename(and, "conj"); err != nil {
		t.Fatal(err)
	}
	if nl.Node("and_ab") != nil || nl.Node("conj") != and {
		t.Fatal("rename did not update index")
	}
	a := nl.Node("a")
	nl.ReplaceUses(and, a)
	if nl.Node("out").Fanin[0] != a {
		t.Fatal("ReplaceUses missed a reference")
	}
}

func TestFreshName(t *testing.T) {
	nl := buildAndOr(t)
	if got := nl.FreshName("zz"); got != "zz" {
		t.Errorf("FreshName unused prefix = %q", got)
	}
	got := nl.FreshName("a")
	if got == "a" || nl.Node(got) != nil {
		t.Errorf("FreshName collided: %q", got)
	}
}

const sampleBLIF = `
# full adder with registered carry
.model fadd
.inputs a b cin clk
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin x
11- 1
1-1 1
-11 1
.latch x cout re clk 0
.end
`

func TestReadBLIF(t *testing.T) {
	nl, err := ParseBLIF(sampleBLIF)
	if err != nil {
		t.Fatal(err)
	}
	if nl.Name != "fadd" {
		t.Errorf("model = %q", nl.Name)
	}
	if len(nl.Inputs) != 4 || len(nl.Outputs) != 2 {
		t.Fatalf("io = %d/%d", len(nl.Inputs), len(nl.Outputs))
	}
	cout := nl.Node("cout")
	if cout == nil || cout.Kind != KindLatch || cout.Init != '0' || cout.Clock != "clk" {
		t.Fatalf("latch parsed wrong: %+v", cout)
	}
	sum := nl.Node("sum")
	tt, err := TruthTable(sum)
	if err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 8; m++ {
		bits := m&1 + m>>1&1 + m>>2&1
		if tt[m] != (bits%2 == 1) {
			t.Errorf("sum(%03b) = %v", m, tt[m])
		}
	}
}

func TestReadBLIFLineContinuation(t *testing.T) {
	nl, err := ParseBLIF(".model c\n.inputs a \\\nb\n.outputs o\n.names a b o\n11 1\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Inputs) != 2 {
		t.Fatalf("inputs = %d, want 2", len(nl.Inputs))
	}
}

func TestReadBLIFErrors(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"undriven output", ".model m\n.inputs a\n.outputs o\n.end\n"},
		{"undriven fanin", ".model m\n.inputs a\n.outputs o\n.names a q o\n11 1\n.end\n"},
		{"bad literal", ".model m\n.inputs a\n.outputs o\n.names a o\n2 1\n.end\n"},
		{"bad output value", ".model m\n.inputs a\n.outputs o\n.names a o\n1 x\n.end\n"},
		{"cube width", ".model m\n.inputs a\n.outputs o\n.names a o\n11 1\n.end\n"},
		{"mixed phase", ".model m\n.inputs a b\n.outputs o\n.names a b o\n11 1\n00 0\n.end\n"},
		{"duplicate driver", ".model m\n.inputs a\n.outputs o\n.names a o\n1 1\n.names a o\n0 1\n.end\n"},
		{"bad latch init", ".model m\n.inputs a\n.outputs q\n.latch a q 7\n.end\n"},
		{"unknown construct", ".model m\n.gate and2 a=x\n.end\n"},
	}
	for _, tc := range cases {
		if _, err := ParseBLIF(tc.text); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestBLIFRoundTrip(t *testing.T) {
	nl, err := ParseBLIF(sampleBLIF)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatBLIF(nl)
	nl2, err := ParseBLIF(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if FormatBLIF(nl2) != text {
		t.Fatal("BLIF not canonical under roundtrip")
	}
	s1, s2 := nl.Stats(), nl2.Stats()
	if s1 != s2 {
		t.Fatalf("stats changed: %+v vs %+v", s1, s2)
	}
}

func TestConstantsRoundTrip(t *testing.T) {
	nl := New("k")
	nl.MarkOutput("one")
	nl.MarkOutput("zero")
	if _, err := nl.AddLogic("one", nil, Cover{Cubes: []Cube{{}}, Value: LitOne}); err != nil {
		t.Fatal(err)
	}
	if _, err := nl.AddLogic("zero", nil, Cover{Value: LitOne}); err != nil {
		t.Fatal(err)
	}
	nl2, err := ParseBLIF(FormatBLIF(nl))
	if err != nil {
		t.Fatal(err)
	}
	if ok, v := nl2.Node("one").IsConst(); !ok || !v {
		t.Error("const 1 lost in roundtrip")
	}
	if ok, v := nl2.Node("zero").IsConst(); !ok || v {
		t.Error("const 0 lost in roundtrip")
	}
}

func TestOffsetCover(t *testing.T) {
	nl, err := ParseBLIF(".model m\n.inputs a b\n.outputs o\n.names a b o\n11 0\n.end\n")
	if err != nil {
		t.Fatal(err)
	}
	tt, err := TruthTable(nl.Node("o"))
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, true, false} // NAND
	for m, w := range want {
		if tt[m] != w {
			t.Errorf("o(%02b) = %v, want %v", m, tt[m], w)
		}
	}
	// Roundtrip keeps the off-set encoding.
	if !strings.Contains(FormatBLIF(nl), "11 0") {
		t.Error("off-set cover not written back")
	}
}

func TestTruthTable64(t *testing.T) {
	nl := buildAndOr(t)
	v, err := TruthTable64(nl.Node("and_ab"))
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x8 { // AND of 2 inputs: only minterm 3
		t.Errorf("and tt = %#x, want 0x8", v)
	}
}

func TestCoverFromTruthTable(t *testing.T) {
	tt := []bool{false, true, true, false} // XOR
	c := CoverFromTruthTable(tt, 2)
	for m := 0; m < 4; m++ {
		in := []bool{m&1 != 0, m&2 != 0}
		if EvalCover(c, in) != tt[m] {
			t.Errorf("minterm %d mismatch", m)
		}
	}
}

func TestBuildFanout(t *testing.T) {
	nl := buildAndOr(t)
	nl.BuildFanout()
	a := nl.Node("a")
	if len(a.Fanout()) != 1 || a.Fanout()[0].Name != "and_ab" {
		t.Fatalf("fanout(a) = %v", a.Fanout())
	}
	and := nl.Node("and_ab")
	if len(and.Fanout()) != 1 {
		t.Fatalf("fanout(and_ab) = %d", len(and.Fanout()))
	}
}
