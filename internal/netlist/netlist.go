// Package netlist provides the logic-network intermediate representation
// shared by every stage of the flow: a directed acyclic graph of
// single-output logic nodes (sum-of-products covers, as in BLIF .names),
// latches, and primary inputs/outputs.
//
// The same structure represents a generic gate network (after synthesis),
// a K-LUT network (after technology mapping), and the packed view keeps
// referring to it, so equivalence can be checked at any point in the flow.
package netlist

import (
	"fmt"
	"sort"
)

// Kind discriminates the node types of a Netlist.
type Kind int

const (
	// KindInput is a primary input; it has no fanin.
	KindInput Kind = iota
	// KindLogic is a single-output combinational node with an SOP cover.
	KindLogic
	// KindLatch is a D flip-flop (BLIF .latch); fanin[0] is D.
	KindLatch
)

func (k Kind) String() string {
	switch k {
	case KindInput:
		return "input"
	case KindLogic:
		return "logic"
	case KindLatch:
		return "latch"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// LitValue is one position of a cube: 0, 1 or don't-care.
type LitValue byte

const (
	// LitZero requires the input to be 0.
	LitZero LitValue = '0'
	// LitOne requires the input to be 1.
	LitOne LitValue = '1'
	// LitDC ignores the input.
	LitDC LitValue = '-'
)

// Cube is one product term over a node's fanins, one LitValue per fanin.
type Cube []LitValue

// Clone returns an independent copy of the cube.
func (c Cube) Clone() Cube {
	d := make(Cube, len(c))
	copy(d, c)
	return d
}

func (c Cube) String() string { return string(c) }

// Cover is a sum of cubes. An empty cover with Value '1' denotes constant 0
// (no minterm is on); by BLIF convention a node whose cover has a single
// zero-length cube is the constant 1.
type Cover struct {
	Cubes []Cube
	// Value is the output value the cubes produce, '1' for an on-set
	// cover (the default) or '0' for an off-set cover.
	Value LitValue
}

// OnSet returns true when the cover lists the on-set.
func (c Cover) OnSet() bool { return c.Value != LitZero }

// Clone returns a deep copy of the cover.
func (c Cover) Clone() Cover {
	d := Cover{Value: c.Value, Cubes: make([]Cube, len(c.Cubes))}
	for i, cube := range c.Cubes {
		d.Cubes[i] = cube.Clone()
	}
	return d
}

// Node is one vertex of the network. A node drives exactly one signal,
// identified by Name.
type Node struct {
	Name  string
	Kind  Kind
	Fanin []*Node
	// Cover is meaningful for KindLogic only.
	Cover Cover
	// Init is the power-up value of a latch: '0', '1', '2' (don't care)
	// or '3' (unknown), following BLIF.
	Init byte
	// Clock names the latch clock signal ("" for the single global clock).
	Clock string

	// fanout is maintained lazily by Netlist.BuildFanout.
	fanout []*Node
	// flag is scratch space for traversals.
	flag int
}

// NumFanin returns the fanin count.
func (n *Node) NumFanin() int { return len(n.Fanin) }

// Fanout returns the fanout list computed by the last BuildFanout call.
func (n *Node) Fanout() []*Node { return n.fanout }

// IsConst reports whether the node is a constant function, and its value.
func (n *Node) IsConst() (bool, bool) {
	if n.Kind != KindLogic || len(n.Fanin) != 0 {
		return false, false
	}
	if len(n.Cover.Cubes) == 0 {
		return true, !n.Cover.OnSet()
	}
	return true, n.Cover.OnSet()
}

// IsBuffer reports whether the node is a single-input identity function.
func (n *Node) IsBuffer() bool {
	if n.Kind != KindLogic || len(n.Fanin) != 1 {
		return false
	}
	c := n.Cover
	return len(c.Cubes) == 1 && len(c.Cubes[0]) == 1 &&
		((c.OnSet() && c.Cubes[0][0] == LitOne) || (!c.OnSet() && c.Cubes[0][0] == LitZero))
}

// IsInverter reports whether the node is a single-input complement.
func (n *Node) IsInverter() bool {
	if n.Kind != KindLogic || len(n.Fanin) != 1 {
		return false
	}
	c := n.Cover
	return len(c.Cubes) == 1 && len(c.Cubes[0]) == 1 &&
		((c.OnSet() && c.Cubes[0][0] == LitZero) || (!c.OnSet() && c.Cubes[0][0] == LitOne))
}

// Netlist is a named logic network.
type Netlist struct {
	Name string
	// Inputs are the primary inputs in declaration order.
	Inputs []*Node
	// Outputs are the primary-output signal names in declaration order;
	// each must name a node in the network.
	Outputs []string
	// nodes indexes every node by name.
	nodes map[string]*Node
	// order preserves insertion order for deterministic iteration.
	order []*Node
}

// New returns an empty netlist with the given model name.
func New(name string) *Netlist {
	return &Netlist{Name: name, nodes: make(map[string]*Node)}
}

// Node returns the node driving the named signal, or nil.
func (nl *Netlist) Node(name string) *Node { return nl.nodes[name] }

// Nodes returns all nodes in insertion order. The slice must not be mutated.
func (nl *Netlist) Nodes() []*Node { return nl.order }

// NumNodes returns the total node count.
func (nl *Netlist) NumNodes() int { return len(nl.order) }

func (nl *Netlist) add(n *Node) (*Node, error) {
	if _, dup := nl.nodes[n.Name]; dup {
		return nil, fmt.Errorf("netlist %s: duplicate driver for signal %q", nl.Name, n.Name)
	}
	nl.nodes[n.Name] = n
	nl.order = append(nl.order, n)
	return n, nil
}

// AddInput declares a primary input.
func (nl *Netlist) AddInput(name string) (*Node, error) {
	n, err := nl.add(&Node{Name: name, Kind: KindInput})
	if err != nil {
		return nil, err
	}
	nl.Inputs = append(nl.Inputs, n)
	return n, nil
}

// AddLogic adds a combinational node computing the cover over the fanins.
func (nl *Netlist) AddLogic(name string, fanin []*Node, cover Cover) (*Node, error) {
	for _, cube := range cover.Cubes {
		if len(cube) != len(fanin) {
			return nil, fmt.Errorf("netlist %s: node %q cube width %d != fanin count %d",
				nl.Name, name, len(cube), len(fanin))
		}
	}
	if cover.Value == 0 {
		cover.Value = LitOne
	}
	return nl.add(&Node{Name: name, Kind: KindLogic, Fanin: fanin, Cover: cover})
}

// AddLatch adds a D flip-flop driven by d.
func (nl *Netlist) AddLatch(name string, d *Node, init byte, clock string) (*Node, error) {
	if init == 0 {
		init = '3'
	}
	return nl.add(&Node{Name: name, Kind: KindLatch, Fanin: []*Node{d}, Init: init, Clock: clock})
}

// MarkOutput declares the named signal as a primary output.
func (nl *Netlist) MarkOutput(name string) { nl.Outputs = append(nl.Outputs, name) }

// IsOutput reports whether name is a primary output.
func (nl *Netlist) IsOutput(name string) bool {
	for _, o := range nl.Outputs {
		if o == name {
			return true
		}
	}
	return false
}

// Check validates structural invariants: every output and fanin resolves,
// fanins precede nothing circularly (combinational cycles are rejected;
// cycles through latches are fine), and cube widths match fanin counts.
func (nl *Netlist) Check() error {
	for _, o := range nl.Outputs {
		if nl.nodes[o] == nil {
			return fmt.Errorf("netlist %s: output %q has no driver", nl.Name, o)
		}
	}
	for _, n := range nl.order {
		for _, f := range n.Fanin {
			if nl.nodes[f.Name] != f {
				return fmt.Errorf("netlist %s: node %q has foreign fanin %q", nl.Name, n.Name, f.Name)
			}
		}
		for _, cube := range n.Cover.Cubes {
			if n.Kind == KindLogic && len(cube) != len(n.Fanin) {
				return fmt.Errorf("netlist %s: node %q cube width mismatch", nl.Name, n.Name)
			}
		}
		if n.Kind == KindLatch && len(n.Fanin) != 1 {
			return fmt.Errorf("netlist %s: latch %q must have exactly one fanin", nl.Name, n.Name)
		}
	}
	if _, err := nl.TopoSort(); err != nil {
		return err
	}
	return nil
}

// TopoSort returns the combinational nodes in topological order (inputs and
// latch outputs are sources). It fails on a combinational cycle.
func (nl *Netlist) TopoSort() ([]*Node, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	for _, n := range nl.order {
		n.flag = white
	}
	var out []*Node
	var visit func(n *Node) error
	visit = func(n *Node) error {
		if n.flag == black {
			return nil
		}
		if n.flag == gray {
			return fmt.Errorf("netlist %s: combinational cycle through %q", nl.Name, n.Name)
		}
		n.flag = gray
		if n.Kind == KindLogic {
			for _, f := range n.Fanin {
				if err := visit(f); err != nil {
					return err
				}
			}
		}
		n.flag = black
		out = append(out, n)
		return nil
	}
	for _, n := range nl.order {
		if err := visit(n); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// BuildFanout (re)computes every node's fanout list. Latch D-inputs count as
// fanout of their driver.
func (nl *Netlist) BuildFanout() {
	for _, n := range nl.order {
		n.fanout = n.fanout[:0]
	}
	for _, n := range nl.order {
		for _, f := range n.Fanin {
			f.fanout = append(f.fanout, n)
		}
	}
}

// Sweep removes nodes not reachable from any primary output or latch,
// returning the number of removed nodes. Primary inputs are never removed.
func (nl *Netlist) Sweep() int {
	for _, n := range nl.order {
		n.flag = 0
	}
	var mark func(n *Node)
	mark = func(n *Node) {
		if n.flag == 1 {
			return
		}
		n.flag = 1
		for _, f := range n.Fanin {
			mark(f)
		}
	}
	for _, o := range nl.Outputs {
		if n := nl.nodes[o]; n != nil {
			mark(n)
		}
	}
	// Latches are state: keep any latch reachable from outputs, then keep
	// everything those latches depend on, iterating until stable (a latch
	// kept only because another kept latch reads it must keep its cone).
	for {
		changed := false
		for _, n := range nl.order {
			if n.Kind == KindLatch && n.flag == 1 && n.Fanin[0].flag == 0 {
				mark(n.Fanin[0])
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	removed := 0
	keep := nl.order[:0]
	for _, n := range nl.order {
		if n.flag == 1 || n.Kind == KindInput {
			keep = append(keep, n)
		} else {
			delete(nl.nodes, n.Name)
			removed++
		}
	}
	nl.order = keep
	return removed
}

// Stats summarizes a netlist.
type Stats struct {
	Inputs, Outputs, Logic, Latches int
	// MaxFanin is the widest logic node.
	MaxFanin int
	// Depth is the longest combinational path in nodes.
	Depth int
}

// Stats computes summary statistics.
func (nl *Netlist) Stats() Stats {
	s := Stats{Inputs: len(nl.Inputs), Outputs: len(nl.Outputs)}
	depth := make(map[*Node]int, len(nl.order))
	topo, err := nl.TopoSort()
	if err != nil {
		topo = nl.order
	}
	for _, n := range topo {
		switch n.Kind {
		case KindLogic:
			s.Logic++
			if len(n.Fanin) > s.MaxFanin {
				s.MaxFanin = len(n.Fanin)
			}
			d := 0
			for _, f := range n.Fanin {
				if depth[f] > d {
					d = depth[f]
				}
			}
			depth[n] = d + 1
			if d+1 > s.Depth {
				s.Depth = d + 1
			}
		case KindLatch:
			s.Latches++
		}
	}
	return s
}

// Clone returns a deep copy of the netlist.
func (nl *Netlist) Clone() *Netlist {
	c := New(nl.Name)
	c.Outputs = append([]string(nil), nl.Outputs...)
	for _, n := range nl.order {
		cn := &Node{Name: n.Name, Kind: n.Kind, Cover: n.Cover.Clone(), Init: n.Init, Clock: n.Clock}
		c.nodes[cn.Name] = cn
		c.order = append(c.order, cn)
		if n.Kind == KindInput {
			c.Inputs = append(c.Inputs, cn)
		}
	}
	for _, n := range nl.order {
		cn := c.nodes[n.Name]
		for _, f := range n.Fanin {
			cn.Fanin = append(cn.Fanin, c.nodes[f.Name])
		}
	}
	return c
}

// Rename changes a node's signal name, updating the index and output list.
func (nl *Netlist) Rename(n *Node, name string) error {
	if _, dup := nl.nodes[name]; dup {
		return fmt.Errorf("netlist %s: rename %q: %q already driven", nl.Name, n.Name, name)
	}
	delete(nl.nodes, n.Name)
	for i, o := range nl.Outputs {
		if o == n.Name {
			nl.Outputs[i] = name
		}
	}
	n.Name = name
	nl.nodes[name] = n
	return nil
}

// ReplaceUses redirects every fanin reference of old to repl. Output
// markers naming old are left alone (use Rename for that).
func (nl *Netlist) ReplaceUses(old, repl *Node) {
	for _, n := range nl.order {
		for i, f := range n.Fanin {
			if f == old {
				n.Fanin[i] = repl
			}
		}
	}
}

// FreshName returns a signal name based on prefix that is not yet in use.
func (nl *Netlist) FreshName(prefix string) string {
	if _, used := nl.nodes[prefix]; !used {
		return prefix
	}
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s_%d", prefix, i)
		if _, used := nl.nodes[name]; !used {
			return name
		}
	}
}

// SortedNodeNames returns all node names sorted, for deterministic output.
func (nl *Netlist) SortedNodeNames() []string {
	names := make([]string, 0, len(nl.nodes))
	for name := range nl.nodes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
