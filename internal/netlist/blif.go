package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// ReadBLIF parses the first model of a BLIF stream into a Netlist.
// The supported subset covers what the flow produces and consumes:
// .model, .inputs, .outputs, .names, .latch, .end, comments and
// backslash line continuation. Latches accept the optional
// "re <clock>" trigger/clock pair of full BLIF.
func ReadBLIF(r io.Reader) (*Netlist, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)

	var lines []string
	var pending strings.Builder
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if strings.HasSuffix(line, "\\") {
			pending.WriteString(strings.TrimSuffix(line, "\\"))
			pending.WriteByte(' ')
			continue
		}
		pending.WriteString(line)
		full := strings.TrimSpace(pending.String())
		pending.Reset()
		if full != "" {
			lines = append(lines, full)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("blif: read: %w", err)
	}

	nl := New("top")
	// pendingNodes defers construction until all drivers are known, since
	// BLIF permits forward references.
	type rawNames struct {
		signals []string // fanins then output
		cover   Cover
	}
	type rawLatch struct {
		d, q, clock string
		init        byte
	}
	var names []rawNames
	var latches []rawLatch
	type declOrder struct {
		isLatch bool
		idx     int
	}
	var order []declOrder
	seenModel := false

	i := 0
	for i < len(lines) {
		fields := strings.Fields(lines[i])
		i++
		switch fields[0] {
		case ".model":
			if seenModel {
				return nil, fmt.Errorf("blif: multiple models are not supported")
			}
			seenModel = true
			if len(fields) > 1 {
				nl.Name = fields[1]
			}
		case ".inputs":
			for _, in := range fields[1:] {
				if _, err := nl.AddInput(in); err != nil {
					return nil, fmt.Errorf("blif: %w", err)
				}
			}
		case ".outputs":
			for _, out := range fields[1:] {
				nl.MarkOutput(out)
			}
		case ".names":
			rn := rawNames{signals: fields[1:], cover: Cover{Value: LitOne}}
			if len(rn.signals) == 0 {
				return nil, fmt.Errorf("blif: .names with no output")
			}
			width := len(rn.signals) - 1
			valueSet := false
			for i < len(lines) && !strings.HasPrefix(lines[i], ".") {
				row := strings.Fields(lines[i])
				i++
				var cubeStr, valStr string
				switch len(row) {
				case 1:
					if width != 0 {
						return nil, fmt.Errorf("blif: node %s: cube row %q lacks output value", rn.signals[width], row[0])
					}
					cubeStr, valStr = "", row[0]
				case 2:
					cubeStr, valStr = row[0], row[1]
				default:
					return nil, fmt.Errorf("blif: node %s: malformed cube row %q", rn.signals[width], strings.Join(row, " "))
				}
				if len(cubeStr) != width {
					return nil, fmt.Errorf("blif: node %s: cube %q width %d != %d fanins",
						rn.signals[width], cubeStr, len(cubeStr), width)
				}
				cube := make(Cube, width)
				for j := 0; j < width; j++ {
					switch cubeStr[j] {
					case '0':
						cube[j] = LitZero
					case '1':
						cube[j] = LitOne
					case '-':
						cube[j] = LitDC
					default:
						return nil, fmt.Errorf("blif: node %s: bad literal %q", rn.signals[width], cubeStr[j])
					}
				}
				var v LitValue
				switch valStr {
				case "1":
					v = LitOne
				case "0":
					v = LitZero
				default:
					return nil, fmt.Errorf("blif: node %s: bad output value %q", rn.signals[width], valStr)
				}
				if valueSet && v != rn.cover.Value {
					return nil, fmt.Errorf("blif: node %s: mixed on-set and off-set rows", rn.signals[width])
				}
				rn.cover.Value = v
				valueSet = true
				rn.cover.Cubes = append(rn.cover.Cubes, cube)
			}
			order = append(order, declOrder{false, len(names)})
			names = append(names, rn)
		case ".latch":
			if len(fields) < 3 {
				return nil, fmt.Errorf("blif: malformed .latch %q", strings.Join(fields, " "))
			}
			rl := rawLatch{d: fields[1], q: fields[2], init: '3'}
			rest := fields[3:]
			if len(rest) >= 2 && (rest[0] == "re" || rest[0] == "fe" || rest[0] == "ah" || rest[0] == "al" || rest[0] == "as") {
				rl.clock = rest[1]
				rest = rest[2:]
			}
			if len(rest) == 1 {
				switch rest[0] {
				case "0", "1", "2", "3":
					rl.init = rest[0][0]
				default:
					return nil, fmt.Errorf("blif: latch %s: bad init %q", rl.q, rest[0])
				}
			} else if len(rest) > 1 {
				return nil, fmt.Errorf("blif: latch %s: trailing tokens %v", rl.q, rest)
			}
			order = append(order, declOrder{true, len(latches)})
			latches = append(latches, rl)
		case ".end":
			i = len(lines)
		case ".clock":
			// Global clock declaration; the IR keeps clocks by name on latches.
		default:
			return nil, fmt.Errorf("blif: unsupported construct %q", fields[0])
		}
	}

	// First pass: create placeholder entries so forward references resolve.
	// BLIF semantics: any referenced signal without a driver and not a
	// primary input is an error.
	resolve := func(name string) (*Node, error) {
		if n := nl.Node(name); n != nil {
			return n, nil
		}
		return nil, fmt.Errorf("blif: signal %q has no driver", name)
	}
	// Create all nodes as placeholders in declaration order (preserving the
	// author's ordering keeps write-parse-write canonical); fanins are
	// resolved afterwards since BLIF permits forward references.
	for _, it := range order {
		if it.isLatch {
			rl := latches[it.idx]
			if _, err := nl.add(&Node{Name: rl.q, Kind: KindLatch, Init: rl.init, Clock: rl.clock}); err != nil {
				return nil, fmt.Errorf("blif: %w", err)
			}
		} else {
			rn := names[it.idx]
			out := rn.signals[len(rn.signals)-1]
			if _, err := nl.add(&Node{Name: out, Kind: KindLogic, Cover: rn.cover}); err != nil {
				return nil, fmt.Errorf("blif: %w", err)
			}
		}
	}
	for _, rl := range latches {
		d, err := resolve(rl.d)
		if err != nil {
			return nil, err
		}
		nl.Node(rl.q).Fanin = []*Node{d}
	}
	for _, rn := range names {
		out := rn.signals[len(rn.signals)-1]
		node := nl.Node(out)
		for _, in := range rn.signals[:len(rn.signals)-1] {
			f, err := resolve(in)
			if err != nil {
				return nil, err
			}
			node.Fanin = append(node.Fanin, f)
		}
	}
	if err := nl.Check(); err != nil {
		return nil, fmt.Errorf("blif: %w", err)
	}
	return nl, nil
}

// ParseBLIF parses BLIF text.
func ParseBLIF(text string) (*Netlist, error) {
	return ReadBLIF(strings.NewReader(text))
}

// WriteBLIF emits the netlist as BLIF.
func WriteBLIF(w io.Writer, nl *Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", nl.Name)
	fmt.Fprint(bw, ".inputs")
	for _, in := range nl.Inputs {
		fmt.Fprintf(bw, " %s", in.Name)
	}
	fmt.Fprintln(bw)
	fmt.Fprint(bw, ".outputs")
	for _, out := range nl.Outputs {
		fmt.Fprintf(bw, " %s", out)
	}
	fmt.Fprintln(bw)
	for _, n := range nl.Nodes() {
		switch n.Kind {
		case KindLatch:
			clock := ""
			if n.Clock != "" {
				clock = " re " + n.Clock
			}
			fmt.Fprintf(bw, ".latch %s %s%s %c\n", n.Fanin[0].Name, n.Name, clock, n.Init)
		case KindLogic:
			fmt.Fprint(bw, ".names")
			for _, f := range n.Fanin {
				fmt.Fprintf(bw, " %s", f.Name)
			}
			fmt.Fprintf(bw, " %s\n", n.Name)
			val := byte('1')
			if !n.Cover.OnSet() {
				val = '0'
			}
			for _, cube := range n.Cover.Cubes {
				if len(cube) == 0 {
					fmt.Fprintf(bw, "%c\n", val)
				} else {
					fmt.Fprintf(bw, "%s %c\n", cube.String(), val)
				}
			}
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}

// FormatBLIF renders the netlist as a BLIF string.
func FormatBLIF(nl *Netlist) string {
	var sb strings.Builder
	_ = WriteBLIF(&sb, nl)
	return sb.String()
}
