package netlist

import "fmt"

// EvalCube reports whether the cube covers the given input assignment.
func EvalCube(cube Cube, in []bool) bool {
	for i, lit := range cube {
		switch lit {
		case LitOne:
			if !in[i] {
				return false
			}
		case LitZero:
			if in[i] {
				return false
			}
		}
	}
	return true
}

// EvalCover evaluates the cover on the given input assignment.
func EvalCover(c Cover, in []bool) bool {
	hit := false
	for _, cube := range c.Cubes {
		if EvalCube(cube, in) {
			hit = true
			break
		}
	}
	if c.OnSet() {
		return hit
	}
	return !hit
}

// TruthTable returns the function of a logic node as a bit vector indexed by
// the fanin assignment (fanin 0 is bit 0 of the index). Nodes with more than
// 20 fanins are rejected to bound memory.
func TruthTable(n *Node) ([]bool, error) {
	if n.Kind != KindLogic {
		return nil, fmt.Errorf("truth table of non-logic node %q", n.Name)
	}
	k := len(n.Fanin)
	if k > 20 {
		return nil, fmt.Errorf("node %q: %d fanins exceeds truth-table limit", n.Name, k)
	}
	rows := 1 << k
	tt := make([]bool, rows)
	in := make([]bool, k)
	for m := 0; m < rows; m++ {
		for i := 0; i < k; i++ {
			in[i] = m&(1<<i) != 0
		}
		tt[m] = EvalCover(n.Cover, in)
	}
	return tt, nil
}

// TruthTable64 returns the function of a logic node with at most 6 fanins
// packed into a uint64, bit m = f(assignment m).
func TruthTable64(n *Node) (uint64, error) {
	if len(n.Fanin) > 6 {
		return 0, fmt.Errorf("node %q: %d fanins exceeds 6", n.Name, len(n.Fanin))
	}
	tt, err := TruthTable(n)
	if err != nil {
		return 0, err
	}
	var v uint64
	for m, b := range tt {
		if b {
			v |= 1 << uint(m)
		}
	}
	return v, nil
}

// CoverFromTruthTable builds an on-set cover (one cube per minterm) for a
// k-input function. Callers usually minimize it afterwards.
func CoverFromTruthTable(tt []bool, k int) Cover {
	var c Cover
	c.Value = LitOne
	for m, b := range tt {
		if !b {
			continue
		}
		cube := make(Cube, k)
		for i := 0; i < k; i++ {
			if m&(1<<i) != 0 {
				cube[i] = LitOne
			} else {
				cube[i] = LitZero
			}
		}
		c.Cubes = append(c.Cubes, cube)
	}
	return c
}
