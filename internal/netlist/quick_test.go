package netlist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randomNetlist builds a structurally random valid netlist.
func randomNetlist(rng *rand.Rand) *Netlist {
	nl := New("q")
	var pool []*Node
	nIn := 1 + rng.Intn(6)
	for i := 0; i < nIn; i++ {
		in, _ := nl.AddInput(sigName("in", i))
		pool = append(pool, in)
	}
	nNodes := 1 + rng.Intn(20)
	for i := 0; i < nNodes; i++ {
		if rng.Intn(5) == 0 && len(pool) > 0 {
			// Latch with random init.
			inits := []byte{'0', '1', '2', '3'}
			q, _ := nl.AddLatch(sigName("q", i), pool[rng.Intn(len(pool))],
				inits[rng.Intn(len(inits))], "clk")
			pool = append(pool, q)
			continue
		}
		k := 1 + rng.Intn(4)
		if k > len(pool) {
			k = len(pool)
		}
		fanin := make([]*Node, 0, k)
		seen := map[*Node]bool{}
		for len(fanin) < k {
			c := pool[rng.Intn(len(pool))]
			if !seen[c] {
				seen[c] = true
				fanin = append(fanin, c)
			}
		}
		var cover Cover
		cover.Value = LitOne
		if rng.Intn(6) == 0 {
			cover.Value = LitZero
		}
		nCubes := 1 + rng.Intn(4)
		for c := 0; c < nCubes; c++ {
			cube := make(Cube, k)
			for j := range cube {
				cube[j] = []LitValue{LitZero, LitOne, LitDC}[rng.Intn(3)]
			}
			cover.Cubes = append(cover.Cubes, cube)
		}
		n, _ := nl.AddLogic(sigName("n", i), fanin, cover)
		pool = append(pool, n)
	}
	nOut := 1 + rng.Intn(3)
	for i := 0; i < nOut && i < len(pool); i++ {
		cand := pool[len(pool)-1-i]
		if !nl.IsOutput(cand.Name) {
			nl.MarkOutput(cand.Name)
		}
	}
	return nl
}

func sigName(p string, i int) string {
	return p + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

// TestBLIFRoundTripProperty: any valid netlist must survive
// write-parse-write with identical text and identical structure.
func TestBLIFRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := randomNetlist(rng)
		if err := nl.Check(); err != nil {
			t.Logf("generator produced invalid netlist: %v", err)
			return false
		}
		text := FormatBLIF(nl)
		back, err := ParseBLIF(text)
		if err != nil {
			t.Logf("reparse failed: %v\n%s", err, text)
			return false
		}
		if FormatBLIF(back) != text {
			t.Logf("not canonical:\n%s", text)
			return false
		}
		if back.Stats() != nl.Stats() {
			return false
		}
		// Every latch keeps init and clock.
		for _, n := range nl.Nodes() {
			if n.Kind != KindLatch {
				continue
			}
			b := back.Node(n.Name)
			if b == nil || b.Init != n.Init || b.Clock != n.Clock {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBLIFParserNeverPanics mutates valid BLIF text.
func TestBLIFParserNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	base := FormatBLIF(randomNetlist(rng))
	run := func(src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %q: %v", src, r)
			}
		}()
		_, _ = ParseBLIF(src)
	}
	src := base
	for i := 0; i < 300; i++ {
		run(src)
		b := []byte(base)
		switch rng.Intn(3) {
		case 0:
			src = base[:rng.Intn(len(base))]
		case 1:
			b[rng.Intn(len(b))] = byte(rng.Intn(128))
			src = string(b)
		default:
			lines := strings.Split(base, "\n")
			rng.Shuffle(len(lines), func(i, j int) { lines[i], lines[j] = lines[j], lines[i] })
			src = strings.Join(lines, "\n")
		}
	}
}
