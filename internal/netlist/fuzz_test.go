package netlist

import (
	"os"
	"testing"
)

// FuzzParseBLIF drives the BLIF reader with arbitrary text: it must never
// panic or hang, and anything it accepts must survive a format/re-parse
// round trip (otherwise the flow could emit artifacts it cannot reload).
func FuzzParseBLIF(f *testing.F) {
	for _, path := range []string{
		"../../examples/netlists/count2.blif",
		"../../examples/netlists/fulladder.blif",
		"../../examples/netlists/multidriven.blif",
	} {
		if data, err := os.ReadFile(path); err == nil {
			f.Add(string(data))
		}
	}
	f.Add(".model m\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n")
	f.Add(".model m\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n")
	f.Add(".model\n.names\n-\n.end")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 64<<10 {
			t.Skip("oversized input")
		}
		nl, err := ParseBLIF(src)
		if err != nil || nl == nil {
			return
		}
		text := FormatBLIF(nl)
		if _, err := ParseBLIF(text); err != nil {
			t.Fatalf("accepted netlist does not round-trip: %v\n%s", err, text)
		}
	})
}
