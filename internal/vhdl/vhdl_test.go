package vhdl

import (
	"strings"
	"testing"

	"fpgaflow/internal/netlist"
	"fpgaflow/internal/sim"
)

const adderVHDL = `
library ieee;
use ieee.std_logic_1164.all;

entity full_adder is
  port (
    a, b, cin : in std_logic;
    sum, cout : out std_logic
  );
end entity full_adder;

architecture rtl of full_adder is
begin
  sum  <= a xor b xor cin;
  cout <= (a and b) or (a and cin) or (b and cin);
end architecture rtl;
`

func elaborate(t *testing.T, src, top string) *netlist.Netlist {
	t.Helper()
	d, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := Elaborate(d, top)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func evalComb(t *testing.T, nl *netlist.Netlist, in map[string]bool) map[string]bool {
	t.Helper()
	out, err := sim.Eval(nl, in)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFullAdder(t *testing.T) {
	nl := elaborate(t, adderVHDL, "")
	if nl.Name != "full_adder" {
		t.Errorf("top = %q", nl.Name)
	}
	for m := 0; m < 8; m++ {
		in := map[string]bool{"a": m&1 != 0, "b": m&2 != 0, "cin": m&4 != 0}
		out := evalComb(t, nl, in)
		n := m&1 + m>>1&1 + m>>2&1
		if out["sum"] != (n%2 == 1) || out["cout"] != (n >= 2) {
			t.Errorf("adder(%03b): %v", m, out)
		}
	}
}

func TestVectorOpsAndAggregates(t *testing.T) {
	nl := elaborate(t, `
entity vec is
  port (
    a, b : in std_logic_vector(3 downto 0);
    x    : out std_logic_vector(3 downto 0);
    allz : out std_logic
  );
end vec;
architecture rtl of vec is
  signal zero : std_logic_vector(3 downto 0);
begin
  zero <= (others => '0');
  x    <= a xor b;
  allz <= '1' when a = zero else '0';
end rtl;
`, "")
	in := map[string]bool{
		"a[0]": true, "a[1]": false, "a[2]": true, "a[3]": false,
		"b[0]": false, "b[1]": false, "b[2]": true, "b[3]": true,
	}
	out := evalComb(t, nl, in)
	want := map[string]bool{"x[0]": true, "x[1]": false, "x[2]": false, "x[3]": true, "allz": false}
	for k, v := range want {
		if out[k] != v {
			t.Errorf("%s = %v, want %v", k, out[k], v)
		}
	}
	in2 := map[string]bool{
		"a[0]": false, "a[1]": false, "a[2]": false, "a[3]": false,
		"b[0]": false, "b[1]": false, "b[2]": false, "b[3]": false,
	}
	if out2 := evalComb(t, nl, in2); !out2["allz"] {
		t.Error("allz not asserted for zero input")
	}
}

func TestUnsignedAdder(t *testing.T) {
	nl := elaborate(t, `
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
entity add4 is
  port (
    a, b : in std_logic_vector(3 downto 0);
    s    : out std_logic_vector(3 downto 0)
  );
end add4;
architecture rtl of add4 is
begin
  s <= std_logic_vector(unsigned(a) + unsigned(b));
end rtl;
`, "")
	for _, tc := range [][3]int{{3, 5, 8}, {9, 9, 2}, {0, 0, 0}, {15, 1, 0}} {
		in := map[string]bool{}
		for j := 0; j < 4; j++ {
			in["a["+string(rune('0'+j))+"]"] = tc[0]&(1<<j) != 0
			in["b["+string(rune('0'+j))+"]"] = tc[1]&(1<<j) != 0
		}
		out := evalComb(t, nl, in)
		got := 0
		for j := 0; j < 4; j++ {
			if out["s["+string(rune('0'+j))+"]"] {
				got |= 1 << j
			}
		}
		if got != tc[2] {
			t.Errorf("%d + %d = %d, want %d", tc[0], tc[1], got, tc[2])
		}
	}
}

const counterVHDL = `
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity counter is
  port (
    clk, rst, en : in std_logic;
    q : out std_logic_vector(3 downto 0)
  );
end counter;

architecture rtl of counter is
  signal cnt : std_logic_vector(3 downto 0);
begin
  process (clk)
  begin
    if rst = '1' then
      cnt <= (others => '0');
    elsif rising_edge(clk) then
      if en = '1' then
        cnt <= std_logic_vector(unsigned(cnt) + 1);
      end if;
    end if;
  end process;
  q <= cnt;
end rtl;
`

func TestClockedCounter(t *testing.T) {
	nl := elaborate(t, counterVHDL, "")
	st := nl.Stats()
	if st.Latches != 4 {
		t.Fatalf("latches = %d, want 4", st.Latches)
	}
	s, err := sim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	read := func(out map[string]bool) int {
		v := 0
		for j := 0; j < 4; j++ {
			if out["q["+string(rune('0'+j))+"]"] {
				v |= 1 << j
			}
		}
		return v
	}
	// Reset, then count with enable gaps.
	out, _ := s.Step(map[string]bool{"clk": true, "rst": true, "en": false})
	if read(out) != 0 {
		t.Fatalf("after reset q = %d", read(out))
	}
	count := 0
	for cyc := 0; cyc < 20; cyc++ {
		en := cyc%4 != 3
		out, err = s.Step(map[string]bool{"clk": true, "rst": false, "en": en})
		if err != nil {
			t.Fatal(err)
		}
		if en {
			count = (count + 1) % 16
		}
		// Output reflects the pre-clock state; check after stepping.
	}
	// One more idle step to observe the final count.
	out, _ = s.Step(map[string]bool{"clk": true, "rst": false, "en": false})
	if read(out) != count {
		t.Errorf("count = %d, want %d", read(out), count)
	}
}

func TestCaseStatementALU(t *testing.T) {
	nl := elaborate(t, `
entity alu is
  port (
    op   : in std_logic_vector(1 downto 0);
    a, b : in std_logic;
    y    : out std_logic
  );
end alu;
architecture rtl of alu is
begin
  process (op, a, b)
  begin
    case op is
      when "00" => y <= a and b;
      when "01" => y <= a or b;
      when "10" => y <= a xor b;
      when others => y <= not a;
    end case;
  end process;
end rtl;
`, "")
	check := func(op int, a, b, want bool) {
		in := map[string]bool{"op[0]": op&1 != 0, "op[1]": op&2 != 0, "a": a, "b": b}
		if out := evalComb(t, nl, in); out["y"] != want {
			t.Errorf("op=%d a=%v b=%v: y=%v want %v", op, a, b, out["y"], want)
		}
	}
	check(0, true, true, true)
	check(0, true, false, false)
	check(1, true, false, true)
	check(2, true, true, false)
	check(3, true, false, false)
	check(3, false, true, true)
}

func TestWhenElseAndSelected(t *testing.T) {
	nl := elaborate(t, `
entity muxes is
  port (
    s  : in std_logic_vector(1 downto 0);
    d  : in std_logic_vector(3 downto 0);
    y1 : out std_logic;
    y2 : out std_logic
  );
end muxes;
architecture rtl of muxes is
begin
  y1 <= d(0) when s = "00" else
        d(1) when s = "01" else
        d(2) when s = "10" else
        d(3);
  with s select y2 <=
    d(0) when "00",
    d(1) when "01",
    d(2) when "10",
    d(3) when others;
end rtl;
`, "")
	for sVal := 0; sVal < 4; sVal++ {
		for dVal := 0; dVal < 16; dVal++ {
			in := map[string]bool{"s[0]": sVal&1 != 0, "s[1]": sVal&2 != 0}
			for j := 0; j < 4; j++ {
				in["d["+string(rune('0'+j))+"]"] = dVal&(1<<j) != 0
			}
			out := evalComb(t, nl, in)
			want := dVal&(1<<sVal) != 0
			if out["y1"] != want || out["y2"] != want {
				t.Errorf("s=%d d=%04b: y1=%v y2=%v want %v", sVal, dVal, out["y1"], out["y2"], want)
			}
		}
	}
}

func TestHierarchy(t *testing.T) {
	src := adderVHDL + `
entity adder2 is
  port (
    x, y : in std_logic_vector(1 downto 0);
    s    : out std_logic_vector(1 downto 0);
    c    : out std_logic
  );
end adder2;
architecture structural of adder2 is
  signal c0 : std_logic;
  signal gnd : std_logic;
begin
  gnd <= '0';
  fa0: entity work.full_adder port map (a => x(0), b => y(0), cin => gnd, sum => s(0), cout => c0);
  fa1: entity work.full_adder port map (x(1), y(1), c0, s(1), c);
end structural;
`
	nl := elaborate(t, src, "adder2")
	for xa := 0; xa < 4; xa++ {
		for ya := 0; ya < 4; ya++ {
			in := map[string]bool{
				"x[0]": xa&1 != 0, "x[1]": xa&2 != 0,
				"y[0]": ya&1 != 0, "y[1]": ya&2 != 0,
			}
			out := evalComb(t, nl, in)
			got := 0
			if out["s[0]"] {
				got |= 1
			}
			if out["s[1]"] {
				got |= 2
			}
			if out["c"] {
				got |= 4
			}
			if got != xa+ya {
				t.Errorf("%d+%d = %d", xa, ya, got)
			}
		}
	}
}

func TestConcatAndSlice(t *testing.T) {
	nl := elaborate(t, `
entity cs is
  port (
    a : in std_logic_vector(3 downto 0);
    y : out std_logic_vector(3 downto 0)
  );
end cs;
architecture rtl of cs is
begin
  y <= a(1 downto 0) & a(3 downto 2);  -- swap halves
end rtl;
`, "")
	in := map[string]bool{"a[0]": true, "a[1]": false, "a[2]": false, "a[3]": true}
	out := evalComb(t, nl, in)
	// y = a(1:0) & a(3:2): y[3:2] = a[1:0], y[1:0] = a[3:2].
	want := map[string]bool{"y[3]": false, "y[2]": true, "y[1]": true, "y[0]": false}
	for k, v := range want {
		if out[k] != v {
			t.Errorf("%s = %v want %v", k, out[k], v)
		}
	}
}

func TestComparisons(t *testing.T) {
	nl := elaborate(t, `
entity cmp is
  port (
    a, b : in std_logic_vector(2 downto 0);
    lt, ge, gt, le : out std_logic
  );
end cmp;
architecture rtl of cmp is
begin
  lt <= '1' when unsigned(a) < unsigned(b) else '0';
  ge <= '1' when unsigned(a) >= unsigned(b) else '0';
  gt <= '1' when unsigned(a) > unsigned(b) else '0';
  le <= '1' when unsigned(a) <= unsigned(b) else '0';
end rtl;
`, "")
	for av := 0; av < 8; av++ {
		for bv := 0; bv < 8; bv++ {
			in := map[string]bool{}
			for j := 0; j < 3; j++ {
				in["a["+string(rune('0'+j))+"]"] = av&(1<<j) != 0
				in["b["+string(rune('0'+j))+"]"] = bv&(1<<j) != 0
			}
			out := evalComb(t, nl, in)
			if out["lt"] != (av < bv) || out["ge"] != (av >= bv) ||
				out["gt"] != (av > bv) || out["le"] != (av <= bv) {
				t.Errorf("a=%d b=%d: lt=%v ge=%v gt=%v le=%v", av, bv, out["lt"], out["ge"], out["gt"], out["le"])
			}
		}
	}
}

func TestSemanticErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undeclared signal", `
entity e is port (a : in std_logic; y : out std_logic); end e;
architecture r of e is begin y <= a and zz; end r;`, "undeclared"},
		{"assign to input", `
entity e is port (a : in std_logic; y : out std_logic); end e;
architecture r of e is begin a <= '1'; y <= a; end r;`, "input port"},
		{"double driver", `
entity e is port (a : in std_logic; y : out std_logic); end e;
architecture r of e is begin y <= a; y <= not a; end r;`, "already driven"},
		{"undriven output", `
entity e is port (a : in std_logic; y, z : out std_logic); end e;
architecture r of e is begin y <= a; end r;`, "never driven"},
		{"width mismatch", `
entity e is port (a : in std_logic_vector(3 downto 0); y : out std_logic_vector(1 downto 0)); end e;
architecture r of e is begin y <= a; end r;`, "bits"},
		{"index out of range", `
entity e is port (a : in std_logic_vector(3 downto 0); y : out std_logic); end e;
architecture r of e is begin y <= a(7); end r;`, "range"},
		{"unknown entity", `
entity e is port (a : in std_logic; y : out std_logic); end e;
architecture r of e is begin u: entity work.ghost port map (a, y); end r;`, "unknown entity"},
		{"latch inference", `
entity e is port (a, b : in std_logic; y : out std_logic); end e;
architecture r of e is begin
process (a, b) begin if a = '1' then y <= b; end if; end process;
end r;`, "latch"},
		{"arch without entity", `
architecture r of ghost is begin end r;`, "unknown entity"},
	}
	for _, tc := range cases {
		err := CheckSource(tc.src)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		"entity e is port (a : in std_logic) end e;",        // missing ;
		"entity e is port (a : io std_logic); end e;",       // bad direction
		"entity e is port (a : in std_logic); end e; junk;", // trailing garbage
		"architecture r of e is begin y <== a; end r;",      // bad operator
		"entity e is port (a : in magic_type); end e;",      // unknown type
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("accepted: %s", src)
		}
	}
}

func TestClkEventForm(t *testing.T) {
	nl := elaborate(t, `
entity ff is
  port (clk, d : in std_logic; q : out std_logic);
end ff;
architecture rtl of ff is
begin
  process (clk) begin
    if clk'event and clk = '1' then
      q <= d;
    end if;
  end process;
end rtl;
`, "")
	if nl.Stats().Latches != 1 {
		t.Fatalf("latches = %d", nl.Stats().Latches)
	}
	s, _ := sim.New(nl)
	out, _ := s.Step(map[string]bool{"clk": true, "d": true})
	if out["q"] {
		t.Error("q rose combinationally")
	}
	out, _ = s.Step(map[string]bool{"clk": true, "d": false})
	if !out["q"] {
		t.Error("q did not capture d")
	}
}

func TestToRangeVectors(t *testing.T) {
	nl := elaborate(t, `
entity tr is
  port (a : in std_logic_vector(0 to 3); y : out std_logic);
end tr;
architecture rtl of tr is
begin
  y <= a(0);  -- MSB of an ascending range
end rtl;
`, "")
	// a(0) is the leftmost (MSB): node name a[0].
	out := evalComb(t, nl, map[string]bool{"a[0]": true, "a[1]": false, "a[2]": false, "a[3]": false})
	if !out["y"] {
		t.Error("ascending-range indexing wrong")
	}
}

func TestPartialBitDrivers(t *testing.T) {
	// Different concurrent statements may drive different bits of one signal.
	nl := elaborate(t, `
entity pb is
  port (a, b : in std_logic; y : out std_logic_vector(1 downto 0));
end pb;
architecture rtl of pb is
begin
  y(0) <= a;
  y(1) <= b;
end rtl;
`, "")
	out := evalComb(t, nl, map[string]bool{"a": true, "b": false})
	if !out["y[0]"] || out["y[1]"] {
		t.Errorf("partial drivers wrong: %v", out)
	}
}

const genericAdderVHDL = `
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity gadd is
  generic (width : integer := 4);
  port (
    a, b : in std_logic_vector(width - 1 downto 0);
    s    : out std_logic_vector(width - 1 downto 0)
  );
end gadd;
architecture rtl of gadd is
begin
  s <= std_logic_vector(unsigned(a) + unsigned(b));
end rtl;
`

func TestGenericDefault(t *testing.T) {
	nl := elaborate(t, genericAdderVHDL, "")
	if len(nl.Inputs) != 8 { // two 4-bit vectors
		t.Fatalf("inputs = %d, want 8", len(nl.Inputs))
	}
	in := map[string]bool{}
	for j := 0; j < 4; j++ {
		in["a["+string(rune('0'+j))+"]"] = (5>>j)&1 != 0
		in["b["+string(rune('0'+j))+"]"] = (9>>j)&1 != 0
	}
	out := evalComb(t, nl, in)
	got := 0
	for j := 0; j < 4; j++ {
		if out["s["+string(rune('0'+j))+"]"] {
			got |= 1 << j
		}
	}
	if got != (5+9)&15 {
		t.Errorf("5+9 = %d", got)
	}
}

func TestGenericMapOverride(t *testing.T) {
	src := genericAdderVHDL + `
entity top is
  port (
    x, y : in std_logic_vector(1 downto 0);
    z    : out std_logic_vector(1 downto 0)
  );
end top;
architecture rtl of top is
begin
  u: entity work.gadd generic map (width => 2) port map (a => x, b => y, s => z);
end rtl;
`
	nl := elaborate(t, src, "top")
	in := map[string]bool{"x[0]": true, "x[1]": false, "y[0]": true, "y[1]": true}
	out := evalComb(t, nl, in)
	// 1 + 3 = 4 -> 0 mod 4.
	if out["z[0]"] || out["z[1]"] {
		t.Errorf("1+3 mod 4 != 0: %v", out)
	}
}

func TestGenericInExpressions(t *testing.T) {
	nl := elaborate(t, `
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
entity gcnt is
  generic (w : integer := 3);
  port (
    clk : in std_logic;
    v   : in std_logic_vector(w - 1 downto 0);
    hit : out std_logic;
    msb : out std_logic
  );
end gcnt;
architecture rtl of gcnt is
begin
  hit <= '1' when unsigned(v) = to_unsigned(2 * w - 1, w) else '0';
  msb <= v(w - 1);
end rtl;
`, "")
	// w=3: hit when v = 5.
	for v := 0; v < 8; v++ {
		in := map[string]bool{"clk": false}
		for j := 0; j < 3; j++ {
			in["v["+string(rune('0'+j))+"]"] = v&(1<<j) != 0
		}
		out := evalComb(t, nl, in)
		if out["hit"] != (v == 5) {
			t.Errorf("v=%d hit=%v", v, out["hit"])
		}
		if out["msb"] != (v >= 4) {
			t.Errorf("v=%d msb=%v", v, out["msb"])
		}
	}
}

func TestGenericErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"no default at top", `
entity e is generic (n : integer); port (a : in std_logic; y : out std_logic); end e;
architecture r of e is begin y <= a; end r;`, "no default"},
		{"unknown generic in map", genericAdderVHDL + `
entity t2 is port (x, y : in std_logic_vector(3 downto 0); z : out std_logic_vector(3 downto 0)); end t2;
architecture r of t2 is begin
u: entity work.gadd generic map (bogus => 2) port map (x, y, z); end r;`, "no generic"},
		{"non-integer generic", `
entity e is generic (s : string); port (a : in std_logic; y : out std_logic); end e;
architecture r of e is begin y <= a; end r;`, "integer generics"},
		{"descending range", `
entity e is generic (n : integer := 0); port (a : in std_logic_vector(n - 1 downto 0); y : out std_logic); end e;
architecture r of e is begin y <= a(0); end r;`, "ascends"},
	}
	for _, tc := range cases {
		err := CheckSource(tc.src)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestGenerateStatement(t *testing.T) {
	// A generic ripple adder written with for..generate.
	src := `
library ieee;
use ieee.std_logic_1164.all;
entity genadd is
  generic (n : integer := 4);
  port (
    a, b : in std_logic_vector(n - 1 downto 0);
    cin  : in std_logic;
    s    : out std_logic_vector(n - 1 downto 0);
    cout : out std_logic
  );
end genadd;
architecture rtl of genadd is
  signal c : std_logic_vector(n downto 0);
begin
  c(0) <= cin;
  stage: for i in 0 to n - 1 generate
    s(i) <= a(i) xor b(i) xor c(i);
    c(i + 1) <= (a(i) and b(i)) or (a(i) and c(i)) or (b(i) and c(i));
  end generate stage;
  cout <= c(n);
end rtl;
`
	nl := elaborate(t, src, "")
	for av := 0; av < 16; av += 3 {
		for bv := 0; bv < 16; bv += 5 {
			in := map[string]bool{"cin": false}
			for j := 0; j < 4; j++ {
				in["a["+string(rune('0'+j))+"]"] = av&(1<<j) != 0
				in["b["+string(rune('0'+j))+"]"] = bv&(1<<j) != 0
			}
			out := evalComb(t, nl, in)
			got := 0
			for j := 0; j < 4; j++ {
				if out["s["+string(rune('0'+j))+"]"] {
					got |= 1 << j
				}
			}
			if out["cout"] {
				got |= 16
			}
			if got != av+bv {
				t.Errorf("%d+%d = %d", av, bv, got)
			}
		}
	}
}

func TestGenerateWithInstances(t *testing.T) {
	src := adderVHDL + `
entity chain is
  generic (n : integer := 3);
  port (
    a, b : in std_logic_vector(n - 1 downto 0);
    s    : out std_logic_vector(n - 1 downto 0);
    cout : out std_logic
  );
end chain;
architecture structural of chain is
  signal c : std_logic_vector(n downto 0);
begin
  c(0) <= '0';
  fa: for i in 0 to n - 1 generate
    u: entity work.full_adder port map (a(i), b(i), c(i), s(i), c(i + 1));
  end generate;
  cout <= c(n);
end structural;
`
	nl := elaborate(t, src, "chain")
	for av := 0; av < 8; av++ {
		for bv := 0; bv < 8; bv++ {
			in := map[string]bool{}
			for j := 0; j < 3; j++ {
				in["a["+string(rune('0'+j))+"]"] = av&(1<<j) != 0
				in["b["+string(rune('0'+j))+"]"] = bv&(1<<j) != 0
			}
			out := evalComb(t, nl, in)
			got := 0
			for j := 0; j < 3; j++ {
				if out["s["+string(rune('0'+j))+"]"] {
					got |= 1 << j
				}
			}
			if out["cout"] {
				got |= 8
			}
			if got != av+bv {
				t.Errorf("%d+%d = %d", av, bv, got)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := []struct{ name, src, want string }{
		{"unlabelled", `
entity e is port (a : in std_logic; y : out std_logic); end e;
architecture r of e is begin
for i in 0 to 3 generate y <= a; end generate; end r;`, "label"},
		{"huge range", `
entity e is port (a : in std_logic; y : out std_logic_vector(9999 downto 0)); end e;
architecture r of e is begin
g: for i in 0 to 99999 generate y(0) <= a; end generate; end r;`, "too large"},
		{"double drive in loop", `
entity e is port (a : in std_logic; y : out std_logic); end e;
architecture r of e is begin
g: for i in 0 to 1 generate y <= a; end generate; end r;`, "already driven"},
	}
	for _, tc := range cases {
		err := CheckSource(tc.src)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestPickTopSeesThroughGenerate(t *testing.T) {
	src := adderVHDL + `
entity wrap is
  port (a, b, cin : in std_logic; s, cout : out std_logic);
end wrap;
architecture r of wrap is
begin
  g: for i in 0 to 0 generate
    u: entity work.full_adder port map (a, b, cin, s, cout);
  end generate;
end r;
`
	nl := elaborate(t, src, "")
	if nl.Name != "wrap" {
		t.Fatalf("auto top = %q, want wrap", nl.Name)
	}
}

func TestFallingEdgeProcess(t *testing.T) {
	nl := elaborate(t, `
entity fe is
  port (clk, d : in std_logic; q : out std_logic);
end fe;
architecture rtl of fe is
begin
  process (clk) begin
    if falling_edge(clk) then
      q <= d;
    end if;
  end process;
end rtl;
`, "")
	if nl.Stats().Latches != 1 {
		t.Fatalf("latches = %d", nl.Stats().Latches)
	}
}

func TestSlicedTargetInProcess(t *testing.T) {
	nl := elaborate(t, `
library ieee;
use ieee.std_logic_1164.all;
entity sp is
  port (clk : in std_logic; d : in std_logic_vector(1 downto 0);
        q : out std_logic_vector(3 downto 0));
end sp;
architecture rtl of sp is
begin
  process (clk) begin
    if rising_edge(clk) then
      q(1 downto 0) <= d;
      q(3 downto 2) <= not d;
    end if;
  end process;
end rtl;
`, "")
	s, err := sim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(map[string]bool{"clk": true, "d[0]": true, "d[1]": false})
	check := map[string]bool{"q[0]": true, "q[1]": false, "q[2]": false, "q[3]": true}
	for name, want := range check {
		if v, _ := s.Value(name); v != want {
			t.Errorf("%s = %v, want %v", name, v, want)
		}
	}
}

func TestOutPortSliceActual(t *testing.T) {
	src := adderVHDL + `
entity sl is
  port (a, b, cin : in std_logic; r : out std_logic_vector(1 downto 0));
end sl;
architecture rtl of sl is
begin
  u: entity work.full_adder port map (a => a, b => b, cin => cin,
       sum => r(0), cout => r(1));
end rtl;
`
	nl := elaborate(t, src, "sl")
	out := evalComb(t, nl, map[string]bool{"a": true, "b": true, "cin": true})
	if !out["r[0]"] || !out["r[1]"] {
		t.Errorf("1+1+1: %v", out)
	}
}

func TestToUnsignedInSignalContext(t *testing.T) {
	nl := elaborate(t, `
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
entity tu is
  port (a : in std_logic_vector(3 downto 0); y : out std_logic_vector(3 downto 0));
end tu;
architecture rtl of tu is
begin
  y <= std_logic_vector(unsigned(a) + to_unsigned(5, 4));
end rtl;
`, "")
	in := map[string]bool{"a[0]": true, "a[1]": true, "a[2]": false, "a[3]": false} // 3
	out := evalComb(t, nl, in)
	got := 0
	for j := 0; j < 4; j++ {
		if out["y["+string(rune('0'+j))+"]"] {
			got |= 1 << j
		}
	}
	if got != 8 {
		t.Errorf("3+5 = %d", got)
	}
}

func TestBitVectorTypes(t *testing.T) {
	nl := elaborate(t, `
entity bt is
  port (a : in bit_vector(1 downto 0); b : in bit; y : out bit);
end bt;
architecture rtl of bt is
begin
  y <= a(0) and a(1) and b;
end rtl;
`, "")
	out := evalComb(t, nl, map[string]bool{"a[0]": true, "a[1]": true, "b": true})
	if !out["y"] {
		t.Error("bit types broken")
	}
}

func TestNullAndCaseOthers(t *testing.T) {
	nl := elaborate(t, `
entity nc is
  port (s : in std_logic_vector(1 downto 0); y : out std_logic);
end nc;
architecture rtl of nc is
begin
  process (s)
  begin
    y <= '0';
    case s is
      when "11" => y <= '1';
      when others => null;
    end case;
  end process;
end rtl;
`, "")
	for v := 0; v < 4; v++ {
		out := evalComb(t, nl, map[string]bool{"s[0]": v&1 != 0, "s[1]": v&2 != 0})
		if out["y"] != (v == 3) {
			t.Errorf("s=%d y=%v", v, out["y"])
		}
	}
}

func TestMultiChoiceCaseAndSelected(t *testing.T) {
	nl := elaborate(t, `
entity mc is
  port (s : in std_logic_vector(1 downto 0); y1, y2 : out std_logic);
end mc;
architecture rtl of mc is
begin
  process (s)
  begin
    case s is
      when "00" | "11" => y1 <= '1';
      when others => y1 <= '0';
    end case;
  end process;
  with s select y2 <=
    '1' when "00" | "11",
    '0' when others;
end rtl;
`, "")
	for v := 0; v < 4; v++ {
		out := evalComb(t, nl, map[string]bool{"s[0]": v&1 != 0, "s[1]": v&2 != 0})
		want := v == 0 || v == 3
		if out["y1"] != want || out["y2"] != want {
			t.Errorf("s=%d: y1=%v y2=%v want %v", v, out["y1"], out["y2"], want)
		}
	}
}

func TestMoreOperators(t *testing.T) {
	nl := elaborate(t, `
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
entity ops is
  port (
    a, b : in std_logic_vector(2 downto 0);
    nq   : out std_logic;
    sub  : out std_logic_vector(2 downto 0);
    neg  : out std_logic_vector(2 downto 0);
    nn   : out std_logic;
    nr   : out std_logic;
    xn   : out std_logic
  );
end ops;
architecture rtl of ops is
begin
  nq  <= '1' when a /= b else '0';
  sub <= std_logic_vector(unsigned(a) - unsigned(b));
  neg <= std_logic_vector(- unsigned(a));
  nn  <= a(0) nand b(0);
  nr  <= a(0) nor b(0);
  xn  <= a(0) xnor b(0);
end rtl;
`, "")
	for av := 0; av < 8; av++ {
		for bv := 0; bv < 8; bv++ {
			in := map[string]bool{}
			for j := 0; j < 3; j++ {
				in["a["+string(rune('0'+j))+"]"] = av&(1<<j) != 0
				in["b["+string(rune('0'+j))+"]"] = bv&(1<<j) != 0
			}
			out := evalComb(t, nl, in)
			if out["nq"] != (av != bv) {
				t.Errorf("a=%d b=%d nq=%v", av, bv, out["nq"])
			}
			got := 0
			for j := 0; j < 3; j++ {
				if out["sub["+string(rune('0'+j))+"]"] {
					got |= 1 << j
				}
			}
			if got != (av-bv)&7 {
				t.Errorf("%d-%d = %d", av, bv, got)
			}
			gotNeg := 0
			for j := 0; j < 3; j++ {
				if out["neg["+string(rune('0'+j))+"]"] {
					gotNeg |= 1 << j
				}
			}
			if gotNeg != (-av)&7 {
				t.Errorf("-%d = %d", av, gotNeg)
			}
			a0, b0 := av&1 != 0, bv&1 != 0
			if out["nn"] != !(a0 && b0) || out["nr"] != !(a0 || b0) || out["xn"] != (a0 == b0) {
				t.Errorf("a0=%v b0=%v: nand=%v nor=%v xnor=%v", a0, b0, out["nn"], out["nr"], out["xn"])
			}
		}
	}
}

func TestIntegerComparisonContext(t *testing.T) {
	// Integer literal resolves its width from the signal operand.
	nl := elaborate(t, `
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
entity ic is
  port (v : in std_logic_vector(3 downto 0); atmax : out std_logic);
end ic;
architecture rtl of ic is
begin
  atmax <= '1' when unsigned(v) = 15 else '0';
end rtl;
`, "")
	for v := 0; v < 16; v++ {
		in := map[string]bool{}
		for j := 0; j < 4; j++ {
			in["v["+string(rune('0'+j))+"]"] = v&(1<<j) != 0
		}
		out := evalComb(t, nl, in)
		if out["atmax"] != (v == 15) {
			t.Errorf("v=%d atmax=%v", v, out["atmax"])
		}
	}
}

func TestConstantFoldingInAssignment(t *testing.T) {
	// A constant expression with a width context folds to a constant.
	nl := elaborate(t, `
entity cf is port (y : out std_logic_vector(3 downto 0)); end cf;
architecture r of cf is begin y <= 2 + 2; end r;
`, "")
	out := evalComb(t, nl, map[string]bool{})
	got := 0
	for j := 0; j < 4; j++ {
		if out["y["+string(rune('0'+j))+"]"] {
			got |= 1 << j
		}
	}
	if got != 4 {
		t.Errorf("2+2 = %d", got)
	}
}

func TestMoreErrorPaths(t *testing.T) {
	cases := []string{
		// comparison width mismatch
		`entity e is port (a : in std_logic_vector(3 downto 0); b : in std_logic_vector(1 downto 0); y : out std_logic); end e;
architecture r of e is begin y <= '1' when a = b else '0'; end r;`,
		// logical width mismatch
		`entity e is port (a : in std_logic_vector(3 downto 0); b : in std_logic_vector(1 downto 0); y : out std_logic_vector(3 downto 0)); end e;
architecture r of e is begin y <= a and b; end r;`,
		// integer too wide for context
		`entity e is port (y : out std_logic_vector(1 downto 0)); end e;
architecture r of e is begin y <= std_logic_vector(to_unsigned(99, 2)); end r;`,
		// integer with no width context
		`entity e is port (a : in std_logic; y : out std_logic); end e;
architecture r of e is begin y <= 5; end r;`,
		// rising_edge outside a process
		`entity e is port (clk : in std_logic; y : out std_logic); end e;
architecture r of e is begin y <= '1' when rising_edge(clk) else '0'; end r;`,
		// port map to output with an expression actual
		`entity sub is port (a : in std_logic; y : out std_logic); end sub;
architecture r of sub is begin y <= a; end r;
entity top is port (a : in std_logic; y : out std_logic); end top;
architecture r2 of top is begin u: entity work.sub port map (a, y and y); end r2;`,
		// positional + named mix
		`entity sub is port (a, b : in std_logic; y : out std_logic); end sub;
architecture r of sub is begin y <= a and b; end r;
entity top is port (a, b : in std_logic; y : out std_logic); end top;
architecture r2 of top is begin u: entity work.sub port map (a, b => b, y => y); end r2;`,
		// too many positional actuals
		`entity sub is port (a : in std_logic; y : out std_logic); end sub;
architecture r of sub is begin y <= a; end r;
entity top is port (a, b : in std_logic; y : out std_logic); end top;
architecture r2 of top is begin u: entity work.sub port map (a, b, y); end r2;`,
		// port associated twice
		`entity sub is port (a : in std_logic; y : out std_logic); end sub;
architecture r of sub is begin y <= a; end r;
entity top is port (a : in std_logic; y : out std_logic); end top;
architecture r2 of top is begin u: entity work.sub port map (a => a, a => a, y => y); end r2;`,
		// clocked process with else on edge
		`entity e is port (clk, d : in std_logic; q : out std_logic); end e;
architecture r of e is begin
process (clk) begin if rising_edge(clk) then q <= d; else q <= '0'; end if; end process; end r;`,
	}
	for i, src := range cases {
		if err := CheckSource(src); err == nil {
			t.Errorf("case %d accepted:\n%s", i, src)
		}
	}
}
