package vhdl

import (
	"fmt"
	"sort"

	"fpgaflow/internal/netlist"
)

// elabStmt elaborates one concurrent statement.
func (sc *scope) elabStmt(s Stmt) error {
	switch st := s.(type) {
	case *Assign:
		return sc.elabAssign(st)
	case *Selected:
		return sc.elabSelected(st)
	case *Process:
		return sc.elabProcess(st)
	case *Instance:
		return sc.elabInstance(st)
	}
	return fmt.Errorf("vhdl: unknown statement %T", s)
}

func (sc *scope) elabAssign(st *Assign) error {
	name, idxs, err := sc.targetBits(st.Target)
	if err != nil {
		return err
	}
	w := len(idxs)
	val, err := sc.evalExpr(st.Values[len(st.Values)-1], nil, w)
	if err != nil {
		return err
	}
	for i := len(st.Conds) - 1; i >= 0; i-- {
		cond, err := sc.evalCond(st.Conds[i], nil)
		if err != nil {
			return err
		}
		alt, err := sc.evalExpr(st.Values[i], nil, w)
		if err != nil {
			return err
		}
		if len(alt) != len(val) {
			return fmt.Errorf("vhdl: line %d: conditional arms have widths %d and %d", st.Line, len(alt), len(val))
		}
		if val, err = sc.muxVec(cond, alt, val); err != nil {
			return err
		}
	}
	if len(val) != w {
		return fmt.Errorf("vhdl: line %d: assigning %d bits to %d-bit target", st.Line, len(val), w)
	}
	for i, j := range idxs {
		if err := sc.setDriver(name, j, val[i]); err != nil {
			return err
		}
	}
	return nil
}

func (sc *scope) elabSelected(st *Selected) error {
	name, idxs, err := sc.targetBits(st.Target)
	if err != nil {
		return err
	}
	w := len(idxs)
	sel, err := sc.evalExpr(st.Sel, nil, 0)
	if err != nil {
		return err
	}
	// Find the others arm as the default.
	defIdx := -1
	for i, ch := range st.Choices {
		if ch == nil {
			defIdx = i
		}
	}
	if defIdx < 0 {
		return fmt.Errorf("vhdl: line %d: selected assignment needs a \"when others\" arm", st.Line)
	}
	val, err := sc.evalExpr(st.Values[defIdx], nil, w)
	if err != nil {
		return err
	}
	for i := len(st.Values) - 1; i >= 0; i-- {
		if st.Choices[i] == nil {
			continue
		}
		var cond *netlist.Node
		for _, choice := range st.Choices[i] {
			cb, err := sc.evalExpr(choice, nil, len(sel))
			if err != nil {
				return err
			}
			if len(cb) != len(sel) {
				return fmt.Errorf("vhdl: line %d: choice width %d != selector width %d", st.Line, len(cb), len(sel))
			}
			eq, err := sc.compare("=", sel, cb)
			if err != nil {
				return err
			}
			if cond == nil {
				cond = eq
			} else if cond, err = sc.binGate("or", cond, eq); err != nil {
				return err
			}
		}
		arm, err := sc.evalExpr(st.Values[i], nil, w)
		if err != nil {
			return err
		}
		if len(arm) != len(val) {
			return fmt.Errorf("vhdl: line %d: selected arms have widths %d and %d", st.Line, len(arm), len(val))
		}
		if val, err = sc.muxVec(cond, arm, val); err != nil {
			return err
		}
	}
	if len(val) != w {
		return fmt.Errorf("vhdl: line %d: assigning %d bits to %d-bit target", st.Line, len(val), w)
	}
	for i, j := range idxs {
		if err := sc.setDriver(name, j, val[i]); err != nil {
			return err
		}
	}
	return nil
}

// evalCond evaluates a 1-bit condition.
func (sc *scope) evalCond(ex Expr, ev env) (*netlist.Node, error) {
	bits, err := sc.evalExpr(ex, ev, 1)
	if err != nil {
		return nil, err
	}
	if len(bits) != 1 {
		return nil, fmt.Errorf("vhdl: condition is %d bits wide", len(bits))
	}
	return bits[0], nil
}

// edgeCond reports whether an expression is a clock-edge condition.
func edgeCond(ex Expr) (clock string, rising, ok bool) {
	switch x := ex.(type) {
	case *Call:
		if (x.Func == "rising_edge" || x.Func == "falling_edge") && len(x.Args) == 1 {
			if nm, isName := x.Args[0].(*Name); isName {
				return nm.Ident, x.Func == "rising_edge", true
			}
		}
	case *Binary:
		if x.Op != "and" {
			return "", false, false
		}
		// clk'event and clk='1' (either operand order).
		if c, r, ok := eventAndLevel(x.X, x.Y); ok {
			return c, r, true
		}
		return eventAndLevel(x.Y, x.X)
	}
	return "", false, false
}

func eventAndLevel(a, b Expr) (string, bool, bool) {
	attr, ok := a.(*Attribute)
	if !ok || attr.Attr != "event" {
		return "", false, false
	}
	base, ok := attr.Base.(*Name)
	if !ok {
		return "", false, false
	}
	cmp, ok := b.(*Binary)
	if !ok || cmp.Op != "=" {
		return "", false, false
	}
	nm, ok := cmp.X.(*Name)
	if !ok || nm.Ident != base.Ident {
		return "", false, false
	}
	lit, ok := cmp.Y.(*CharLit)
	if !ok {
		return "", false, false
	}
	return base.Ident, lit.Value == '1', true
}

// classifyProcess decides whether a process is clocked and extracts its
// structure: plain clocked (if edge then body), or reset form
// (if rst then resetBody elsif edge then body).
func classifyProcess(p *Process) (clocked bool, clock string, body []SeqStmt, err error) {
	stmts := withoutNulls(p.Body)
	if len(stmts) != 1 {
		return false, "", p.Body, nil // combinational
	}
	ifStmt, ok := stmts[0].(*If)
	if !ok {
		return false, "", p.Body, nil
	}
	if c, _, isEdge := edgeCond(ifStmt.Cond); isEdge {
		if len(withoutNulls(ifStmt.Else)) != 0 {
			return false, "", nil, fmt.Errorf("vhdl: line %d: else branch on a clock-edge condition", ifStmt.Line)
		}
		return true, c, nil, nil
	}
	// Reset form: else must be a single if on an edge.
	els := withoutNulls(ifStmt.Else)
	if len(els) == 1 {
		if inner, ok := els[0].(*If); ok {
			if c, _, isEdge := edgeCond(inner.Cond); isEdge {
				if len(withoutNulls(inner.Else)) != 0 {
					return false, "", nil, fmt.Errorf("vhdl: line %d: else branch on a clock-edge condition", inner.Line)
				}
				return true, c, nil, nil
			}
		}
	}
	return false, "", p.Body, nil
}

func withoutNulls(list []SeqStmt) []SeqStmt {
	var out []SeqStmt
	for _, s := range list {
		if _, isNull := s.(*Null); !isNull {
			out = append(out, s)
		}
	}
	return out
}

func (sc *scope) elabProcess(p *Process) error {
	clocked, clock, _, err := classifyProcess(p)
	if err != nil {
		return err
	}
	targets, err := collectTargets(p.Body)
	if err != nil {
		return err
	}
	if !clocked {
		ev := make(env)
		if err := sc.interpSeq(p.Body, ev, false); err != nil {
			return err
		}
		return sc.commitTargets(targets, ev, p.Line)
	}

	// Clocked: unwrap the structure validated by classifyProcess.
	ifStmt := withoutNulls(p.Body)[0].(*If)
	var dEnv env
	if _, _, isEdge := edgeCond(ifStmt.Cond); isEdge {
		dEnv = make(env)
		if err := sc.interpSeq(ifStmt.Then, dEnv, true); err != nil {
			return err
		}
	} else {
		// Reset form: D = rst ? resetVal : clockedVal (synchronous reset;
		// the fabric's asynchronous Clear is a global CLB signal).
		rst, err := sc.evalCond(ifStmt.Cond, nil)
		if err != nil {
			return err
		}
		evR := make(env)
		if err := sc.interpSeq(ifStmt.Then, evR, true); err != nil {
			return err
		}
		inner := withoutNulls(ifStmt.Else)[0].(*If)
		evC := make(env)
		if err := sc.interpSeq(inner.Then, evC, true); err != nil {
			return err
		}
		dEnv = make(env)
		if err := sc.mergeEnvs(dEnv, rst, evR, evC, nil); err != nil {
			return err
		}
	}
	// Install D inputs and clock on the latch placeholders.
	for _, t := range targets {
		name, idxs, err := sc.targetBits(t)
		if err != nil {
			return err
		}
		bits, ok := dEnv[name]
		if !ok {
			continue // assigned only in an untaken region; keep Q (hold)
		}
		for _, j := range idxs {
			if bits[j] == nil {
				continue
			}
			latch := sc.bits[name][j]
			if latch == nil || latch.Kind != netlist.KindLatch {
				return fmt.Errorf("vhdl: line %d: internal: %s bit %d is not a latch", p.Line, name, j)
			}
			latch.Fanin = []*netlist.Node{bits[j]}
			latch.Clock = clock
		}
	}
	// Hold-only bits: D = Q.
	for _, t := range targets {
		name, idxs, err := sc.targetBits(t)
		if err != nil {
			return err
		}
		for _, j := range idxs {
			latch := sc.bits[name][j]
			if latch != nil && latch.Kind == netlist.KindLatch && len(latch.Fanin) == 0 {
				latch.Fanin = []*netlist.Node{latch}
				latch.Clock = clock
			}
		}
	}
	return nil
}

// commitTargets writes a combinational process's final environment into the
// placeholder nodes.
func (sc *scope) commitTargets(targets []*Target, ev env, line int) error {
	for _, t := range targets {
		name, idxs, err := sc.targetBits(t)
		if err != nil {
			return err
		}
		bits, ok := ev[name]
		if !ok {
			return fmt.Errorf("vhdl: line %d: signal %q driven by process but never assigned", line, name)
		}
		for _, j := range idxs {
			if bits[j] == nil {
				return fmt.Errorf("vhdl: line %d: signal %q bit %d is not assigned on every path (latch inferred)",
					line, name, j)
			}
			if bits[j] == sc.bits[name][j] {
				return fmt.Errorf("vhdl: line %d: signal %q bit %d is not assigned on every path (latch inferred)",
					line, name, j)
			}
			if err := sc.setDriver(name, j, bits[j]); err != nil {
				return err
			}
		}
	}
	return nil
}

// interpSeq symbolically executes a statement list, updating ev.
// In nonblocking mode (clocked processes) expression reads see the
// pre-process signal values (VHDL signal semantics: signals update after
// the process suspends); in blocking mode (combinational processes) reads
// see earlier assignments of the same run, matching the re-execution
// fixpoint a sensitivity-complete process converges to.
func (sc *scope) interpSeq(list []SeqStmt, ev env, nonblocking bool) error {
	readEnv := func() env {
		if nonblocking {
			return nil
		}
		return ev
	}
	for _, s := range list {
		switch st := s.(type) {
		case *Null:
		case *SeqAssign:
			name, idxs, err := sc.targetBits(st.Target)
			if err != nil {
				return err
			}
			val, err := sc.evalExpr(st.Value, readEnv(), len(idxs))
			if err != nil {
				return err
			}
			if len(val) != len(idxs) {
				return fmt.Errorf("vhdl: line %d: assigning %d bits to %d-bit target", st.Line, len(val), len(idxs))
			}
			sc.assignEnv(ev, name, idxs, val)
		case *If:
			cond, err := sc.evalCond(st.Cond, readEnv())
			if err != nil {
				return err
			}
			evT := ev.clone()
			if err := sc.interpSeq(st.Then, evT, nonblocking); err != nil {
				return err
			}
			evE := ev.clone()
			if err := sc.interpSeq(st.Else, evE, nonblocking); err != nil {
				return err
			}
			if err := sc.mergeEnvs(ev, cond, evT, evE, ev); err != nil {
				return err
			}
		case *Case:
			if err := sc.interpCase(st, ev, nonblocking); err != nil {
				return err
			}
		default:
			return fmt.Errorf("vhdl: unknown sequential statement %T", s)
		}
	}
	return nil
}

// assignEnv updates the environment for a (possibly partial) assignment.
func (sc *scope) assignEnv(ev env, name string, idxs []int, val []*netlist.Node) {
	cur, ok := ev[name]
	if !ok {
		// Start from the global bits (nil entries stay nil until assigned).
		global := sc.bits[name]
		cur = make([]*netlist.Node, sc.types[name].Width())
		copy(cur, global)
	} else {
		cur = append([]*netlist.Node(nil), cur...)
	}
	for i, j := range idxs {
		cur[j] = val[i]
	}
	ev[name] = cur
}

// mergeEnvs writes mux(cond, evT, evE) into dst for every signal either
// branch touched. outer provides fallback values ("" entries fall back to
// the signal's global nodes, which for latches means hold).
func (sc *scope) mergeEnvs(dst env, cond *netlist.Node, evT, evE, outer env) error {
	nameSet := map[string]bool{}
	for n := range evT {
		nameSet[n] = true
	}
	for n := range evE {
		nameSet[n] = true
	}
	// Sorted iteration: gate creation order (and with it every generated
	// name downstream) must not depend on map order.
	names := make([]string, 0, len(nameSet))
	for n := range nameSet {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		w := sc.types[name].Width()
		fallback := make([]*netlist.Node, w)
		if outer != nil && outer[name] != nil {
			copy(fallback, outer[name])
		} else {
			copy(fallback, sc.bits[name])
		}
		tb, eb := evT[name], evE[name]
		if tb == nil {
			tb = fallback
		}
		if eb == nil {
			eb = fallback
		}
		merged := make([]*netlist.Node, w)
		for j := 0; j < w; j++ {
			switch {
			case tb[j] == eb[j]:
				merged[j] = tb[j]
			case tb[j] == nil || eb[j] == nil:
				return fmt.Errorf("vhdl: signal %q bit %d assigned on only one branch with no prior value", name, j)
			default:
				m, err := sc.mux(cond, tb[j], eb[j])
				if err != nil {
					return err
				}
				merged[j] = m
			}
		}
		dst[name] = merged
	}
	return nil
}

// interpCase lowers a case statement to an if-else chain over equality
// comparisons.
func (sc *scope) interpCase(st *Case, ev env, nonblocking bool) error {
	readEnv := ev
	if nonblocking {
		readEnv = nil
	}
	sel, err := sc.evalExpr(st.Sel, readEnv, 0)
	if err != nil {
		return err
	}
	var othersBody []SeqStmt
	type arm struct {
		cond *netlist.Node
		body []SeqStmt
	}
	var arms []arm
	seenOthers := false
	for _, a := range st.Arms {
		if a.Choices == nil {
			if seenOthers {
				return fmt.Errorf("vhdl: line %d: multiple others arms", st.Line)
			}
			seenOthers = true
			othersBody = a.Body
			continue
		}
		var cond *netlist.Node
		for _, choice := range a.Choices {
			cb, err := sc.evalExpr(choice, readEnv, len(sel))
			if err != nil {
				return err
			}
			if len(cb) != len(sel) {
				return fmt.Errorf("vhdl: line %d: case choice width %d != selector width %d",
					st.Line, len(cb), len(sel))
			}
			eq, err := sc.compare("=", sel, cb)
			if err != nil {
				return err
			}
			if cond == nil {
				cond = eq
			} else if cond, err = sc.binGate("or", cond, eq); err != nil {
				return err
			}
		}
		arms = append(arms, arm{cond, a.Body})
	}
	// Build nested if: arms[0] cond ? body : (arms[1] ...) : others.
	var build func(i int, ev env) error
	build = func(i int, ev env) error {
		if i >= len(arms) {
			return sc.interpSeq(othersBody, ev, nonblocking)
		}
		evT := ev.clone()
		if err := sc.interpSeq(arms[i].body, evT, nonblocking); err != nil {
			return err
		}
		evE := ev.clone()
		if err := build(i+1, evE); err != nil {
			return err
		}
		return sc.mergeEnvs(ev, arms[i].cond, evT, evE, ev)
	}
	return build(0, ev)
}

func (sc *scope) elabInstance(st *Instance) error {
	ent := sc.e.entOf[st.Entity]
	if ent == nil {
		return fmt.Errorf("vhdl: line %d: unknown entity %q", st.Line, st.Entity)
	}
	assoc, err := associate(ent, st)
	if err != nil {
		return err
	}
	label := sc.genSuffix + st.Label
	if st.Label == "" {
		label = sc.e.nl.FreshName(sc.prefix + sc.genSuffix + "u")
	}
	// Resolve the instance's generics: explicit map entries override
	// defaults; actuals are constant expressions in the OUTER scope.
	childGenerics := make(map[string]int)
	if len(st.GenericActuals) > 0 {
		idx := make(map[string]int, len(ent.Generics))
		for i, g := range ent.Generics {
			idx[g.Name] = i
		}
		for i, actual := range st.GenericActuals {
			name := st.GenericFormals[i]
			if name == "" {
				if i >= len(ent.Generics) {
					return fmt.Errorf("vhdl: line %d: too many generic map actuals", st.Line)
				}
				name = ent.Generics[i].Name
			} else if _, ok := idx[name]; !ok {
				return fmt.Errorf("vhdl: line %d: entity %q has no generic %q", st.Line, ent.Name, name)
			}
			v, err := evalConstExpr(actual, sc.generics)
			if err != nil {
				return fmt.Errorf("vhdl: line %d: generic %q: %v", st.Line, name, err)
			}
			childGenerics[name] = v
		}
	}
	for _, g := range ent.Generics {
		if _, bound := childGenerics[g.Name]; bound {
			continue
		}
		if g.Default == nil {
			return fmt.Errorf("vhdl: line %d: generic %q of %q has no value", st.Line, g.Name, ent.Name)
		}
		v, err := evalConstExpr(g.Default, childGenerics)
		if err != nil {
			return err
		}
		childGenerics[g.Name] = v
	}
	bindings := make(map[string][]*netlist.Node)
	for pi, p := range ent.Ports {
		if p.Dir != DirIn || assoc[pi] == nil {
			continue
		}
		pt, err := resolveType(p.Type, childGenerics, p.Line)
		if err != nil {
			return err
		}
		bits, err := sc.evalExpr(assoc[pi], nil, pt.Width())
		if err != nil {
			return err
		}
		if len(bits) != pt.Width() {
			return fmt.Errorf("vhdl: line %d: port %q expects %d bits, actual has %d",
				st.Line, p.Name, pt.Width(), len(bits))
		}
		bindings[p.Name] = bits
	}
	outBits, err := sc.e.instantiate(sc.prefix+label+".", ent, bindings, childGenerics)
	if err != nil {
		return err
	}
	for pi, p := range ent.Ports {
		if p.Dir != DirOut || assoc[pi] == nil {
			continue
		}
		t, err := actualAsTarget(assoc[pi])
		if err != nil {
			return fmt.Errorf("vhdl: line %d: %v", st.Line, err)
		}
		name, idxs, err := sc.targetBits(t)
		if err != nil {
			return err
		}
		inner := outBits[p.Name]
		if len(inner) != len(idxs) {
			return fmt.Errorf("vhdl: line %d: port %q width %d bound to %d-bit target",
				st.Line, p.Name, len(inner), len(idxs))
		}
		for i, j := range idxs {
			if err := sc.setDriver(name, j, inner[i]); err != nil {
				return err
			}
		}
	}
	return nil
}
