package vhdl

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics drives the front end with mutated sources: every
// outcome must be a clean error or success, never a panic or hang.
func TestParserNeverPanics(t *testing.T) {
	seeds := []string{
		adderVHDL,
		counterVHDL,
		genericAdderVHDL,
		"entity e is port (a : in std_logic); end e;",
	}
	rng := rand.New(rand.NewSource(99))
	mutate := func(s string) string {
		b := []byte(s)
		if len(b) == 0 {
			return s
		}
		switch rng.Intn(4) {
		case 0: // truncate
			return s[:rng.Intn(len(b))]
		case 1: // flip a byte
			b[rng.Intn(len(b))] = byte(rng.Intn(128))
			return string(b)
		case 2: // duplicate a slice
			i := rng.Intn(len(b))
			j := i + rng.Intn(len(b)-i)
			return s[:j] + s[i:j] + s[j:]
		default: // delete a slice
			i := rng.Intn(len(b))
			j := i + rng.Intn(len(b)-i)
			return s[:i] + s[j:]
		}
	}
	run := func(src string) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on input %q: %v", src, r)
			}
		}()
		_ = CheckSource(src)
	}
	for _, seed := range seeds {
		src := seed
		for i := 0; i < 150; i++ {
			run(src)
			src = mutate(src)
			if len(src) > 4*len(seed) {
				src = seed
			}
		}
	}
	// Pathological token streams.
	for _, src := range []string{
		strings.Repeat("(", 500),
		strings.Repeat("entity e is ", 100),
		"\"" + strings.Repeat("a", 1000),
		"'" + strings.Repeat("'", 99),
		"-- comment only\n",
		"",
	} {
		run(src)
	}
}

// TestDeepNestingBounded guards the recursive-descent parser against
// stack abuse from deeply nested expressions.
func TestDeepNestingBounded(t *testing.T) {
	depth := 2000
	expr := strings.Repeat("(", depth) + "a" + strings.Repeat(")", depth)
	src := "entity e is port (a : in std_logic; y : out std_logic); end e;\n" +
		"architecture r of e is begin y <= " + expr + "; end r;"
	done := make(chan struct{})
	go func() {
		defer func() { recover(); close(done) }()
		_ = CheckSource(src)
	}()
	<-done
}
