package vhdl

import (
	"testing"
)

// FuzzParse hammers the VHDL front end with arbitrary text. The parser
// must reject garbage with a *ParseError (or accept it), never panic or
// spin — it is the first thing untrusted user input reaches in the flow.
func FuzzParse(f *testing.F) {
	f.Add("entity e is port (a : in std_logic; y : out std_logic); end e;\n" +
		"architecture rtl of e is begin y <= not a; end rtl;")
	f.Add("entity c is generic (w : integer := 4); port (clk : in std_logic;\n" +
		"q : out std_logic_vector(w-1 downto 0)); end c;")
	f.Add("-- comment only")
	f.Add("entity broken is port (a : in std_logic)")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 64<<10 {
			t.Skip("oversized input")
		}
		d, err := Parse(src)
		if err == nil && d == nil {
			t.Fatal("Parse returned nil design with nil error")
		}
	})
}
