package vhdl

import (
	"fmt"
	"sort"

	"fpgaflow/internal/netlist"
)

// Elaborate synthesizes the design into a gate-level netlist (the DIVINER
// tool). top names the top-level entity; pass "" to auto-select (the only
// entity, or the only one never instantiated).
func Elaborate(d *Design, top string) (*netlist.Netlist, error) {
	e := &elaborator{
		design: d,
		entOf:  make(map[string]*Entity),
		archOf: make(map[string]*Architecture),
	}
	for _, ent := range d.Entities {
		if _, dup := e.entOf[ent.Name]; dup {
			return nil, fmt.Errorf("vhdl: line %d: duplicate entity %q", ent.Line, ent.Name)
		}
		e.entOf[ent.Name] = ent
	}
	for _, a := range d.Architectures {
		if e.entOf[a.Of] == nil {
			return nil, fmt.Errorf("vhdl: line %d: architecture %q of unknown entity %q", a.Line, a.Name, a.Of)
		}
		if _, dup := e.archOf[a.Of]; dup {
			return nil, fmt.Errorf("vhdl: line %d: entity %q has multiple architectures", a.Line, a.Of)
		}
		e.archOf[a.Of] = a
	}
	if top == "" {
		var err error
		top, err = e.pickTop()
		if err != nil {
			return nil, err
		}
	}
	ent := e.entOf[top]
	if ent == nil {
		return nil, fmt.Errorf("vhdl: no entity %q", top)
	}
	e.nl = netlist.New(top)

	// Top-level generics take their default values.
	generics := make(map[string]int)
	for _, g := range ent.Generics {
		if g.Default == nil {
			return nil, fmt.Errorf("vhdl: line %d: top-level generic %q has no default value", g.Line, g.Name)
		}
		v, err := evalConstExpr(g.Default, generics)
		if err != nil {
			return nil, err
		}
		generics[g.Name] = v
	}
	// Top-level ports become primary inputs / outputs.
	bindings := make(map[string][]*netlist.Node)
	for _, port := range ent.Ports {
		if port.Dir != DirIn {
			continue
		}
		t, err := resolveType(port.Type, generics, port.Line)
		if err != nil {
			return nil, err
		}
		w := t.Width()
		bits := make([]*netlist.Node, w)
		for j := 0; j < w; j++ {
			n, err := e.nl.AddInput(bitName("", port.Name, t, j))
			if err != nil {
				return nil, err
			}
			bits[j] = n
		}
		bindings[port.Name] = bits
	}
	outBits, err := e.instantiate("", ent, bindings, generics)
	if err != nil {
		return nil, err
	}
	for _, port := range ent.Ports {
		if port.Dir != DirOut {
			continue
		}
		for _, b := range outBits[port.Name] {
			e.nl.MarkOutput(b.Name)
		}
	}
	e.nl.Sweep()
	if err := e.nl.Check(); err != nil {
		return nil, fmt.Errorf("vhdl: elaborated netlist invalid (combinational loop or inferred latch?): %w", err)
	}
	return e.nl, nil
}

// CheckSource is the "VHDL Parser" tool: parse and semantically check a
// source file, returning the first error or nil.
func CheckSource(src string) error {
	d, err := Parse(src)
	if err != nil {
		return err
	}
	_, err = Elaborate(d, "")
	return err
}

type elaborator struct {
	design *Design
	entOf  map[string]*Entity
	archOf map[string]*Architecture
	nl     *netlist.Netlist
	consts [2]*netlist.Node
	depth  int
}

func (e *elaborator) pickTop() (string, error) {
	instantiated := make(map[string]bool)
	var mark func(stmts []Stmt)
	mark = func(stmts []Stmt) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *Instance:
				instantiated[st.Entity] = true
			case *GenerateFor:
				mark(st.Body)
			}
		}
	}
	for _, a := range e.design.Architectures {
		mark(a.Stmts)
	}
	var tops []string
	for name := range e.entOf {
		if !instantiated[name] {
			tops = append(tops, name)
		}
	}
	sort.Strings(tops)
	if len(tops) == 1 {
		return tops[0], nil
	}
	if len(e.entOf) == 1 {
		for name := range e.entOf {
			return name, nil
		}
	}
	return "", fmt.Errorf("vhdl: cannot determine top entity (candidates %v)", tops)
}

// bitName returns the node name of numeric bit j (LSB-first) of a signal.
func bitName(prefix, sig string, t Type, j int) string {
	if !t.Vector {
		return prefix + sig
	}
	var idx int
	if t.Downto {
		idx = t.Lo + j
	} else {
		// Declared "(L to H)" stores Hi=L (left bound), Lo=H (right bound);
		// the rightmost index H is the LSB.
		idx = t.Lo - j
	}
	return fmt.Sprintf("%s%s[%d]", prefix, sig, idx)
}

// scope holds one instance's signal environment.
type scope struct {
	e         *elaborator
	prefix    string
	generics  map[string]int
	genSuffix string
	types     map[string]Type
	dirs      map[string]PortDir // ports only
	isPort    map[string]bool
	// bits maps each signal to its node per numeric bit. Driven bits hold
	// placeholder nodes filled during statement elaboration.
	bits map[string][]*netlist.Node
	// driverLine records which line drives each bit (multi-driver check).
	driverLine map[string][]int
	// latchBit marks bits driven by clocked processes.
	latchBit map[string][]bool
}

// instantiate elaborates one entity/architecture instance. bindings provides
// the nodes driving each IN port; the returned map gives the nodes of each
// OUT port.
func (e *elaborator) instantiate(prefix string, ent *Entity, bindings map[string][]*netlist.Node, generics map[string]int) (map[string][]*netlist.Node, error) {
	e.depth++
	defer func() { e.depth-- }()
	if e.depth > 64 {
		return nil, fmt.Errorf("vhdl: instantiation depth exceeded (recursive entities?)")
	}
	arch := e.archOf[ent.Name]
	if arch == nil {
		return nil, fmt.Errorf("vhdl: entity %q has no architecture", ent.Name)
	}
	if generics == nil {
		generics = make(map[string]int)
	}
	sc := &scope{
		e: e, prefix: prefix, generics: generics,
		types:      make(map[string]Type),
		dirs:       make(map[string]PortDir),
		isPort:     make(map[string]bool),
		bits:       make(map[string][]*netlist.Node),
		driverLine: make(map[string][]int),
		latchBit:   make(map[string][]bool),
	}
	declare := func(name string, t Type, line int) error {
		if _, dup := sc.types[name]; dup {
			return fmt.Errorf("vhdl: line %d: duplicate declaration of %q", line, name)
		}
		if _, isGen := sc.generics[name]; isGen {
			return fmt.Errorf("vhdl: line %d: %q shadows a generic", line, name)
		}
		rt, err := resolveType(t, sc.generics, line)
		if err != nil {
			return err
		}
		t = rt
		sc.types[name] = t
		sc.driverLine[name] = make([]int, t.Width())
		sc.latchBit[name] = make([]bool, t.Width())
		return nil
	}
	for _, p := range ent.Ports {
		if err := declare(p.Name, p.Type, p.Line); err != nil {
			return nil, err
		}
		sc.dirs[p.Name] = p.Dir
		sc.isPort[p.Name] = true
	}
	for _, s := range arch.Signals {
		if err := declare(s.Name, s.Type, s.Line); err != nil {
			return nil, err
		}
	}

	// IN ports: bind the provided nodes.
	for _, p := range ent.Ports {
		if p.Dir != DirIn {
			continue
		}
		b := bindings[p.Name]
		if len(b) != sc.types[p.Name].Width() {
			return nil, fmt.Errorf("vhdl: instance %q port %q: width %d bound to %d bits",
				prefix, p.Name, sc.types[p.Name].Width(), len(b))
		}
		sc.bits[p.Name] = b
	}

	// Expand generate statements into per-iteration bound statements, then
	// pre-scan drivers: which bits does each statement drive, and how.
	bound, err := sc.expandStmts(arch.Stmts, nil, "")
	if err != nil {
		return nil, err
	}
	for _, bs := range bound {
		if err := sc.withVars(bs.vars, bs.suffix, func() error { return sc.scanDrivers(bs.s) }); err != nil {
			return nil, err
		}
	}
	// Create placeholder nodes for every driven bit; report undriven out
	// ports later.
	for name, t := range sc.types {
		if sc.dirs[name] == DirIn && sc.isPort[name] {
			continue
		}
		w := t.Width()
		nodes := make([]*netlist.Node, w)
		for j := 0; j < w; j++ {
			if sc.driverLine[name][j] == 0 {
				continue // undriven: error only if read or an out port
			}
			nn := bitName(prefix, name, t, j)
			var node *netlist.Node
			var err error
			if sc.latchBit[name][j] {
				node, err = e.nl.AddLatch(nn, nil, '0', "")
			} else {
				node, err = e.nl.AddLogic(nn, nil, netlist.Cover{Value: netlist.LitOne})
			}
			if err != nil {
				return nil, err
			}
			nodes[j] = node
		}
		sc.bits[name] = nodes
	}

	// Elaborate statements.
	for _, bs := range bound {
		if err := sc.withVars(bs.vars, bs.suffix, func() error { return sc.elabStmt(bs.s) }); err != nil {
			return nil, err
		}
	}

	// Collect OUT ports.
	out := make(map[string][]*netlist.Node)
	for _, p := range ent.Ports {
		if p.Dir != DirOut {
			continue
		}
		bits := sc.bits[p.Name]
		for j := 0; j < sc.types[p.Name].Width(); j++ {
			if j >= len(bits) || bits[j] == nil {
				return nil, fmt.Errorf("vhdl: line %d: output port %q bit %d of %q is never driven",
					p.Line, p.Name, j, ent.Name)
			}
		}
		out[p.Name] = bits
	}
	return out, nil
}

// boundStmt is a concurrent statement with generate-loop variable bindings.
type boundStmt struct {
	s      Stmt
	vars   map[string]int
	suffix string // label disambiguation for instances inside generates
}

// expandStmts flattens generate loops into bound statement instances.
func (sc *scope) expandStmts(stmts []Stmt, vars map[string]int, suffix string) ([]boundStmt, error) {
	var out []boundStmt
	for _, s := range stmts {
		g, isGen := s.(*GenerateFor)
		if !isGen {
			out = append(out, boundStmt{s, vars, suffix})
			continue
		}
		// Bounds may reference generics and enclosing generate variables.
		env := make(map[string]int, len(sc.generics)+len(vars))
		for k, v := range sc.generics {
			env[k] = v
		}
		for k, v := range vars {
			env[k] = v
		}
		from, err := evalConstExpr(g.From, env)
		if err != nil {
			return nil, fmt.Errorf("vhdl: line %d: generate bound: %v", g.Line, err)
		}
		to, err := evalConstExpr(g.To, env)
		if err != nil {
			return nil, fmt.Errorf("vhdl: line %d: generate bound: %v", g.Line, err)
		}
		if to-from > 4096 {
			return nil, fmt.Errorf("vhdl: line %d: generate range %d..%d too large", g.Line, from, to)
		}
		if _, dup := env[g.Var]; dup {
			return nil, fmt.Errorf("vhdl: line %d: generate variable %q shadows a generic", g.Line, g.Var)
		}
		for v := from; v <= to; v++ {
			iterVars := make(map[string]int, len(vars)+1)
			for k, x := range vars {
				iterVars[k] = x
			}
			iterVars[g.Var] = v
			inner, err := sc.expandStmts(g.Body, iterVars, fmt.Sprintf("%s%s_%d.", suffix, g.Label, v))
			if err != nil {
				return nil, err
			}
			out = append(out, inner...)
		}
	}
	return out, nil
}

// withVars runs fn with the generate-loop variables visible as generics and
// the instance-label suffix applied.
func (sc *scope) withVars(vars map[string]int, suffix string, fn func() error) error {
	if len(vars) == 0 && suffix == "" {
		return fn()
	}
	savedSuffix := sc.genSuffix
	sc.genSuffix = suffix
	var saved []func()
	for k, v := range vars {
		if old, had := sc.generics[k]; had {
			k, old := k, old
			saved = append(saved, func() { sc.generics[k] = old })
		} else {
			k := k
			saved = append(saved, func() { delete(sc.generics, k) })
		}
		sc.generics[k] = v
	}
	err := fn()
	for _, restore := range saved {
		restore()
	}
	sc.genSuffix = savedSuffix
	return err
}

// targetBits resolves a target to (signal, numeric bit range).
func (sc *scope) targetBits(t *Target) (string, []int, error) {
	ty, ok := sc.types[t.Name]
	if !ok {
		return "", nil, fmt.Errorf("vhdl: line %d: assignment to undeclared signal %q", t.Line, t.Name)
	}
	if sc.isPort[t.Name] && sc.dirs[t.Name] == DirIn {
		return "", nil, fmt.Errorf("vhdl: line %d: assignment to input port %q", t.Line, t.Name)
	}
	switch {
	case t.Index != nil:
		idx, err := evalConstExpr(t.Index, sc.generics)
		if err != nil {
			return "", nil, fmt.Errorf("vhdl: line %d: target index of %q must be constant: %v", t.Line, t.Name, err)
		}
		j, err := numericBit(ty, idx)
		if err != nil {
			return "", nil, fmt.Errorf("vhdl: line %d: %v", t.Line, err)
		}
		return t.Name, []int{j}, nil
	case t.HasSlice:
		hi, err := evalConstExpr(t.SliceHi, sc.generics)
		if err != nil {
			return "", nil, fmt.Errorf("vhdl: line %d: %v", t.Line, err)
		}
		lo, err := evalConstExpr(t.SliceLo, sc.generics)
		if err != nil {
			return "", nil, fmt.Errorf("vhdl: line %d: %v", t.Line, err)
		}
		j1, err := numericBit(ty, hi)
		if err != nil {
			return "", nil, fmt.Errorf("vhdl: line %d: %v", t.Line, err)
		}
		j2, err := numericBit(ty, lo)
		if err != nil {
			return "", nil, fmt.Errorf("vhdl: line %d: %v", t.Line, err)
		}
		jlo, jhi := j1, j2
		if jlo > jhi {
			jlo, jhi = jhi, jlo
		}
		var out []int
		for j := jlo; j <= jhi; j++ {
			out = append(out, j)
		}
		return t.Name, out, nil
	default:
		w := ty.Width()
		out := make([]int, w)
		for j := range out {
			out[j] = j
		}
		return t.Name, out, nil
	}
}

// numericBit converts a declared index to the LSB-first position.
func numericBit(t Type, idx int) (int, error) {
	if !t.Vector {
		return 0, fmt.Errorf("indexing a scalar signal")
	}
	lo, hi := t.Lo, t.Hi
	if !t.Downto {
		lo, hi = t.Hi, t.Lo // declared (L to H): numeric range [L..H]
	}
	min, max := lo, hi
	if min > max {
		min, max = max, min
	}
	if idx < min || idx > max {
		return 0, fmt.Errorf("index %d outside range", idx)
	}
	if t.Downto {
		return idx - t.Lo, nil
	}
	return t.Lo - idx, nil
}

// evalConstExpr evaluates an elaboration-time integer expression over the
// instance's generics.
func evalConstExpr(e Expr, generics map[string]int) (int, error) {
	switch x := e.(type) {
	case *IntLit:
		return x.Value, nil
	case *Name:
		if v, ok := generics[x.Ident]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("vhdl: line %d: %q is not a generic or integer constant", x.Line, x.Ident)
	case *Unary:
		if x.Op == "-" {
			v, err := evalConstExpr(x.X, generics)
			return -v, err
		}
	case *Binary:
		a, err := evalConstExpr(x.X, generics)
		if err != nil {
			return 0, err
		}
		b, err := evalConstExpr(x.Y, generics)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "+":
			return a + b, nil
		case "-":
			return a - b, nil
		case "*":
			return a * b, nil
		case "/":
			if b == 0 {
				return 0, fmt.Errorf("vhdl: division by zero in constant expression")
			}
			return a / b, nil
		}
	}
	return 0, fmt.Errorf("vhdl: expression is not an integer constant")
}

// resolveType evaluates generic-dependent bounds to a concrete Type.
func resolveType(t Type, generics map[string]int, line int) (Type, error) {
	if t.Resolved() {
		return t, nil
	}
	hi, err := evalConstExpr(t.HiE, generics)
	if err != nil {
		return Type{}, fmt.Errorf("vhdl: line %d: %v", line, err)
	}
	lo, err := evalConstExpr(t.LoE, generics)
	if err != nil {
		return Type{}, fmt.Errorf("vhdl: line %d: %v", line, err)
	}
	if t.Downto && hi < lo {
		return Type{}, fmt.Errorf("vhdl: line %d: downto range (%d downto %d) ascends", line, hi, lo)
	}
	if !t.Downto && hi > lo {
		return Type{}, fmt.Errorf("vhdl: line %d: to range (%d to %d) descends", line, hi, lo)
	}
	return Type{Vector: t.Vector, Hi: hi, Lo: lo, Downto: t.Downto}, nil
}

// scanDrivers records drivers and latch classification for one statement.
func (sc *scope) scanDrivers(s Stmt) error {
	mark := func(t *Target, line int, latch bool) error {
		name, bits, err := sc.targetBits(t)
		if err != nil {
			return err
		}
		for _, j := range bits {
			if prev := sc.driverLine[name][j]; prev != 0 {
				return fmt.Errorf("vhdl: line %d: signal %q bit %d already driven at line %d",
					line, name, j, prev)
			}
			sc.driverLine[name][j] = line
			sc.latchBit[name][j] = latch
		}
		return nil
	}
	switch st := s.(type) {
	case *Assign:
		return mark(st.Target, st.Line, false)
	case *Selected:
		return mark(st.Target, st.Line, false)
	case *Process:
		clocked, _, _, err := classifyProcess(st)
		if err != nil {
			return err
		}
		targets, err := collectTargets(st.Body)
		if err != nil {
			return err
		}
		// A process may assign overlapping targets (e.g. a full-vector
		// reset plus per-bit updates); union the bits before marking.
		bitsOf := make(map[string]map[int]bool)
		for _, t := range targets {
			name, bits, err := sc.targetBits(t)
			if err != nil {
				return err
			}
			if bitsOf[name] == nil {
				bitsOf[name] = make(map[int]bool)
			}
			for _, j := range bits {
				bitsOf[name][j] = true
			}
		}
		for name, set := range bitsOf {
			for j := range set {
				if prev := sc.driverLine[name][j]; prev != 0 {
					return fmt.Errorf("vhdl: line %d: signal %q bit %d already driven at line %d",
						st.Line, name, j, prev)
				}
				sc.driverLine[name][j] = st.Line
				sc.latchBit[name][j] = clocked
			}
		}
		return nil
	case *Instance:
		ent := sc.e.entOf[st.Entity]
		if ent == nil {
			return fmt.Errorf("vhdl: line %d: instantiation of unknown entity %q", st.Line, st.Entity)
		}
		assoc, err := associate(ent, st)
		if err != nil {
			return err
		}
		for pi, actual := range assoc {
			if ent.Ports[pi].Dir != DirOut || actual == nil {
				continue
			}
			t, err := actualAsTarget(actual)
			if err != nil {
				return fmt.Errorf("vhdl: line %d: %v", st.Line, err)
			}
			if err := mark(t, st.Line, false); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("vhdl: unknown statement type %T", s)
}

// collectTargets gathers all assignment targets in a statement list.
func collectTargets(body []SeqStmt) ([]*Target, error) {
	seen := make(map[string]*Target)
	var order []string
	var walk func(list []SeqStmt) error
	walk = func(list []SeqStmt) error {
		for _, s := range list {
			switch st := s.(type) {
			case *SeqAssign:
				key := targetKey(st.Target)
				if _, dup := seen[key]; !dup {
					seen[key] = st.Target
					order = append(order, key)
				}
			case *If:
				if err := walk(st.Then); err != nil {
					return err
				}
				if err := walk(st.Else); err != nil {
					return err
				}
			case *Case:
				for _, arm := range st.Arms {
					if err := walk(arm.Body); err != nil {
						return err
					}
				}
			case *Null:
			default:
				return fmt.Errorf("vhdl: unknown sequential statement %T", s)
			}
		}
		return nil
	}
	if err := walk(body); err != nil {
		return nil, err
	}
	out := make([]*Target, len(order))
	for i, k := range order {
		out[i] = seen[k]
	}
	return out, nil
}

func targetKey(t *Target) string {
	switch {
	case t.Index != nil:
		return fmt.Sprintf("%s[%s]", t.Name, exprKey(t.Index))
	case t.HasSlice:
		return fmt.Sprintf("%s[%s:%s]", t.Name, exprKey(t.SliceHi), exprKey(t.SliceLo))
	default:
		return t.Name
	}
}

// exprKey renders a constant expression for deduplication keys.
func exprKey(e Expr) string {
	switch x := e.(type) {
	case *IntLit:
		return fmt.Sprintf("%d", x.Value)
	case *Name:
		return x.Ident
	case *Unary:
		return x.Op + exprKey(x.X)
	case *Binary:
		return "(" + exprKey(x.X) + x.Op + exprKey(x.Y) + ")"
	default:
		return fmt.Sprintf("%T", e)
	}
}

// associate resolves an instance's port map to per-port actuals.
func associate(ent *Entity, st *Instance) ([]Expr, error) {
	out := make([]Expr, len(ent.Ports))
	named := false
	for i := range st.Actuals {
		if st.Formals[i] != "" {
			named = true
		}
	}
	if named {
		idx := make(map[string]int, len(ent.Ports))
		for i, p := range ent.Ports {
			idx[p.Name] = i
		}
		for i, f := range st.Formals {
			if f == "" {
				return nil, fmt.Errorf("vhdl: line %d: mixing named and positional association", st.Line)
			}
			pi, ok := idx[f]
			if !ok {
				return nil, fmt.Errorf("vhdl: line %d: entity %q has no port %q", st.Line, ent.Name, f)
			}
			if out[pi] != nil {
				return nil, fmt.Errorf("vhdl: line %d: port %q associated twice", st.Line, f)
			}
			out[pi] = st.Actuals[i]
		}
	} else {
		if len(st.Actuals) > len(ent.Ports) {
			return nil, fmt.Errorf("vhdl: line %d: too many port map actuals", st.Line)
		}
		copy(out, st.Actuals)
	}
	for i, p := range ent.Ports {
		if out[i] == nil && p.Dir == DirIn {
			return nil, fmt.Errorf("vhdl: line %d: input port %q not associated", st.Line, p.Name)
		}
	}
	return out, nil
}

// actualAsTarget converts an out-port actual into a Target.
func actualAsTarget(e Expr) (*Target, error) {
	switch x := e.(type) {
	case *Name:
		return &Target{Name: x.Ident, Line: x.Line}, nil
	case *IndexExpr:
		base, ok := x.Base.(*Name)
		if !ok {
			return nil, fmt.Errorf("output port actual must be a signal")
		}
		return &Target{Name: base.Ident, Index: x.Index, Line: x.Line}, nil
	case *SliceExpr:
		base, ok := x.Base.(*Name)
		if !ok {
			return nil, fmt.Errorf("output port actual must be a signal")
		}
		return &Target{Name: base.Ident, HasSlice: true, SliceHi: x.Hi, SliceLo: x.Lo,
			SliceDownto: x.Downto, Line: x.Line}, nil
	default:
		return nil, fmt.Errorf("output port actual must be a signal, index or slice")
	}
}

// setDriver fills a placeholder bit with its final value.
func (sc *scope) setDriver(name string, j int, value *netlist.Node) error {
	node := sc.bits[name][j]
	if node == nil {
		return fmt.Errorf("vhdl: internal: no placeholder for %s bit %d", name, j)
	}
	switch node.Kind {
	case netlist.KindLatch:
		node.Fanin = []*netlist.Node{value}
	case netlist.KindLogic:
		node.Fanin = []*netlist.Node{value}
		node.Cover = netlist.Cover{Cubes: []netlist.Cube{{netlist.LitOne}}, Value: netlist.LitOne}
	default:
		return fmt.Errorf("vhdl: internal: driving %s node", node.Kind)
	}
	return nil
}
