package vhdl

import (
	"fmt"
	"strconv"
)

// ParseError is a syntax or semantic error with source position.
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("vhdl: line %d:%d: %s", e.Line, e.Col, e.Msg)
}

type parser struct {
	toks []token
	pos  int
}

// Parse lexes and parses a VHDL source file (the "VHDL Parser" tool's
// syntax-check stage). Semantic checking is a separate step (Check).
func Parse(src string) (*Design, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	d := &Design{}
	for !p.at(tokEOF, "") {
		switch {
		case p.atKw("library"), p.atKw("use"):
			// Consume through the terminating semicolon.
			for !p.at(tokSymbol, ";") && !p.at(tokEOF, "") {
				p.next()
			}
			if _, err := p.expectSym(";"); err != nil {
				return nil, err
			}
		case p.atKw("entity"):
			e, err := p.parseEntity()
			if err != nil {
				return nil, err
			}
			d.Entities = append(d.Entities, e)
		case p.atKw("architecture"):
			a, err := p.parseArchitecture()
			if err != nil {
				return nil, err
			}
			d.Architectures = append(d.Architectures, a)
		default:
			return nil, p.errHere("expected entity, architecture, library or use")
		}
	}
	return d, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) next() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}
func (p *parser) atKw(kw string) bool { return p.at(tokKeyword, kw) }
func (p *parser) atSym(s string) bool { return p.at(tokSymbol, s) }

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) (token, error) {
	if !p.atKw(kw) {
		return token{}, p.errHere("expected %q, found %s", kw, p.cur())
	}
	return p.next(), nil
}

func (p *parser) expectSym(s string) (token, error) {
	if !p.atSym(s) {
		return token{}, p.errHere("expected %q, found %s", s, p.cur())
	}
	return p.next(), nil
}

func (p *parser) expectIdent() (token, error) {
	if !p.at(tokIdent, "") {
		return token{}, p.errHere("expected identifier, found %s", p.cur())
	}
	return p.next(), nil
}

func (p *parser) errHere(format string, args ...interface{}) error {
	t := p.cur()
	return &ParseError{t.line, t.col, fmt.Sprintf(format, args...)}
}

// parseEntity parses "entity NAME is [port (...);] end [entity] [NAME];".
func (p *parser) parseEntity() (*Entity, error) {
	kw, err := p.expectKw("entity")
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKw("is"); err != nil {
		return nil, err
	}
	e := &Entity{Name: name.text, Line: kw.line}
	if p.atKw("generic") {
		p.next()
		if _, err := p.expectSym("("); err != nil {
			return nil, err
		}
		for {
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectSym(":"); err != nil {
				return nil, err
			}
			ty, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if ty.text != "integer" && ty.text != "natural" && ty.text != "positive" {
				return nil, &ParseError{ty.line, ty.col, "only integer generics are supported"}
			}
			g := &Generic{Name: id.text, Line: id.line}
			if p.accept(tokSymbol, ":=") {
				def, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				g.Default = def
			}
			e.Generics = append(e.Generics, g)
			if p.accept(tokSymbol, ";") {
				continue
			}
			break
		}
		if _, err := p.expectSym(")"); err != nil {
			return nil, err
		}
		if _, err := p.expectSym(";"); err != nil {
			return nil, err
		}
	}
	if p.atKw("port") {
		p.next()
		if _, err := p.expectSym("("); err != nil {
			return nil, err
		}
		for {
			group, err := p.parsePortGroup()
			if err != nil {
				return nil, err
			}
			e.Ports = append(e.Ports, group...)
			if p.accept(tokSymbol, ";") {
				continue
			}
			break
		}
		if _, err := p.expectSym(")"); err != nil {
			return nil, err
		}
		if _, err := p.expectSym(";"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expectKw("end"); err != nil {
		return nil, err
	}
	p.accept(tokKeyword, "entity")
	p.accept(tokIdent, e.Name)
	if _, err := p.expectSym(";"); err != nil {
		return nil, err
	}
	return e, nil
}

// parsePortGroup parses "a, b, c : in std_logic_vector(3 downto 0)".
func (p *parser) parsePortGroup() ([]*Port, error) {
	var names []token
	for {
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		names = append(names, id)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expectSym(":"); err != nil {
		return nil, err
	}
	dir := DirIn
	switch {
	case p.accept(tokKeyword, "in"):
	case p.accept(tokKeyword, "out"):
		dir = DirOut
	case p.atKw("inout") || p.atKw("buffer"):
		return nil, p.errHere("inout/buffer ports are not supported by this subset")
	}
	ty, err := p.parseType()
	if err != nil {
		return nil, err
	}
	ports := make([]*Port, len(names))
	for i, nm := range names {
		ports[i] = &Port{Name: nm.text, Dir: dir, Type: ty, Line: nm.line}
	}
	return ports, nil
}

// parseType parses std_logic, bit, std_logic_vector(H downto L), etc.
func (p *parser) parseType() (Type, error) {
	id, err := p.expectIdent()
	if err != nil {
		return Type{}, err
	}
	switch id.text {
	case "std_logic", "std_ulogic", "bit":
		return Type{}, nil
	case "std_logic_vector", "std_ulogic_vector", "bit_vector", "unsigned", "signed":
		if _, err := p.expectSym("("); err != nil {
			return Type{}, err
		}
		a, err := p.parseExpr()
		if err != nil {
			return Type{}, err
		}
		downto := false
		switch {
		case p.accept(tokKeyword, "downto"):
			downto = true
		case p.accept(tokKeyword, "to"):
		default:
			return Type{}, p.errHere("expected downto or to")
		}
		b, err := p.parseExpr()
		if err != nil {
			return Type{}, err
		}
		if _, err := p.expectSym(")"); err != nil {
			return Type{}, err
		}
		t := Type{Vector: true, HiE: a, LoE: b, Downto: downto}
		// Fold literal bounds immediately so generic-free code keeps its
		// early range diagnostics.
		av, aok := a.(*IntLit)
		bv, bok := b.(*IntLit)
		if aok && bok {
			if downto && av.Value < bv.Value {
				return Type{}, &ParseError{id.line, id.col, "downto range with ascending bounds"}
			}
			if !downto && av.Value > bv.Value {
				return Type{}, &ParseError{id.line, id.col, "to range with descending bounds"}
			}
			t.Hi, t.Lo, t.HiE, t.LoE = av.Value, bv.Value, nil, nil
		}
		return t, nil
	default:
		return Type{}, &ParseError{id.line, id.col, fmt.Sprintf("unsupported type %q", id.text)}
	}
}

// parseArchitecture parses an architecture body.
func (p *parser) parseArchitecture() (*Architecture, error) {
	kw, err := p.expectKw("architecture")
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKw("of"); err != nil {
		return nil, err
	}
	of, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKw("is"); err != nil {
		return nil, err
	}
	a := &Architecture{Name: name.text, Of: of.text, Line: kw.line}
	// Declarations.
	for {
		if p.atKw("signal") {
			p.next()
			var names []token
			for {
				id, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				names = append(names, id)
				if !p.accept(tokSymbol, ",") {
					break
				}
			}
			if _, err := p.expectSym(":"); err != nil {
				return nil, err
			}
			ty, err := p.parseType()
			if err != nil {
				return nil, err
			}
			// Optional default value is ignored for synthesis.
			if p.accept(tokSymbol, ":=") {
				if _, err := p.parseExpr(); err != nil {
					return nil, err
				}
			}
			if _, err := p.expectSym(";"); err != nil {
				return nil, err
			}
			for _, nm := range names {
				a.Signals = append(a.Signals, &Signal{Name: nm.text, Type: ty, Line: nm.line})
			}
			continue
		}
		if p.atKw("constant") || p.atKw("component") || p.atKw("type") || p.atKw("attribute") {
			return nil, p.errHere("%s declarations are not supported by this subset", p.cur().text)
		}
		break
	}
	if _, err := p.expectKw("begin"); err != nil {
		return nil, err
	}
	for !p.atKw("end") {
		s, err := p.parseConcurrent()
		if err != nil {
			return nil, err
		}
		a.Stmts = append(a.Stmts, s)
	}
	p.next() // end
	p.accept(tokKeyword, "architecture")
	p.accept(tokIdent, a.Name)
	if _, err := p.expectSym(";"); err != nil {
		return nil, err
	}
	return a, nil
}

// parseConcurrent parses one concurrent statement.
func (p *parser) parseConcurrent() (Stmt, error) {
	// with ... select
	if p.atKw("with") {
		return p.parseSelected()
	}
	// Optional label.
	label := ""
	if p.at(tokIdent, "") && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == ":" {
		label = p.next().text
		p.next() // :
	}
	if p.atKw("process") {
		return p.parseProcess(label)
	}
	if p.atKw("entity") {
		return p.parseInstance(label)
	}
	if p.atKw("for") {
		if label == "" {
			return nil, p.errHere("generate statements require a label")
		}
		return p.parseGenerate(label)
	}
	if label != "" {
		return nil, p.errHere("only process, entity instantiation and generate may be labelled here")
	}
	return p.parseAssign()
}

// parseTarget parses an assignment destination.
func (p *parser) parseTarget() (*Target, error) {
	id, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	t := &Target{Name: id.text, Line: id.line}
	if p.accept(tokSymbol, "(") {
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.atKw("downto") || p.atKw("to") {
			downto := p.next().text == "downto"
			lo, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			t.HasSlice, t.SliceHi, t.SliceLo, t.SliceDownto = true, first, lo, downto
		} else {
			t.Index = first
		}
		if _, err := p.expectSym(")"); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// parseAssign parses "target <= e [when c else e2 ...];".
func (p *parser) parseAssign() (Stmt, error) {
	tgt, err := p.parseTarget()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectSym("<="); err != nil {
		return nil, err
	}
	a := &Assign{Target: tgt, Line: tgt.Line}
	for {
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		a.Values = append(a.Values, v)
		if p.accept(tokKeyword, "when") {
			c, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			a.Conds = append(a.Conds, c)
			if _, err := p.expectKw("else"); err != nil {
				return nil, err
			}
			continue
		}
		break
	}
	if len(a.Values) != len(a.Conds)+1 {
		return nil, p.errHere("conditional assignment missing final else value")
	}
	if _, err := p.expectSym(";"); err != nil {
		return nil, err
	}
	return a, nil
}

// parseSelected parses "with sel select target <= v when c, ...;".
func (p *parser) parseSelected() (Stmt, error) {
	kw, _ := p.expectKw("with")
	sel, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKw("select"); err != nil {
		return nil, err
	}
	tgt, err := p.parseTarget()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectSym("<="); err != nil {
		return nil, err
	}
	s := &Selected{Target: tgt, Sel: sel, Line: kw.line}
	for {
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectKw("when"); err != nil {
			return nil, err
		}
		if p.accept(tokKeyword, "others") {
			s.Values = append(s.Values, v)
			s.Choices = append(s.Choices, nil)
		} else {
			var choices []Expr
			for {
				c, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				choices = append(choices, c)
				if !p.accept(tokSymbol, "|") {
					break
				}
			}
			s.Values = append(s.Values, v)
			s.Choices = append(s.Choices, choices)
		}
		if p.accept(tokSymbol, ",") {
			continue
		}
		break
	}
	if _, err := p.expectSym(";"); err != nil {
		return nil, err
	}
	return s, nil
}

// parseProcess parses a process statement.
func (p *parser) parseProcess(label string) (Stmt, error) {
	kw, _ := p.expectKw("process")
	pr := &Process{Label: label, Line: kw.line}
	if p.accept(tokSymbol, "(") {
		for {
			id, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			pr.Sensitivity = append(pr.Sensitivity, id.text)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expectSym(")"); err != nil {
			return nil, err
		}
	}
	p.accept(tokKeyword, "is")
	if p.atKw("variable") {
		return nil, p.errHere("process variables are not supported by this subset")
	}
	if _, err := p.expectKw("begin"); err != nil {
		return nil, err
	}
	body, err := p.parseSeqList("end")
	if err != nil {
		return nil, err
	}
	pr.Body = body
	if _, err := p.expectKw("end"); err != nil {
		return nil, err
	}
	if _, err := p.expectKw("process"); err != nil {
		return nil, err
	}
	if label != "" {
		p.accept(tokIdent, label)
	}
	if _, err := p.expectSym(";"); err != nil {
		return nil, err
	}
	return pr, nil
}

// parseInstance parses "label: entity work.name port map (...);".
func (p *parser) parseInstance(label string) (Stmt, error) {
	kw, _ := p.expectKw("entity")
	lib, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	entName := lib.text
	if p.accept(tokSymbol, ".") {
		id, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		entName = id.text
	}
	inst := &Instance{Label: label, Entity: entName, Line: kw.line}
	if p.atKw("generic") {
		p.next()
		if _, err := p.expectKw("map"); err != nil {
			return nil, err
		}
		if _, err := p.expectSym("("); err != nil {
			return nil, err
		}
		for {
			formal := ""
			if p.at(tokIdent, "") && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "=>" {
				formal = p.next().text
				p.next() // =>
			}
			actual, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			inst.GenericFormals = append(inst.GenericFormals, formal)
			inst.GenericActuals = append(inst.GenericActuals, actual)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expectSym(")"); err != nil {
			return nil, err
		}
	}
	if _, err := p.expectKw("port"); err != nil {
		return nil, err
	}
	if _, err := p.expectKw("map"); err != nil {
		return nil, err
	}
	if _, err := p.expectSym("("); err != nil {
		return nil, err
	}
	for {
		// Named association "formal => actual" or positional "actual".
		formal := ""
		if p.at(tokIdent, "") && p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "=>" {
			formal = p.next().text
			p.next() // =>
		}
		actual, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		inst.Formals = append(inst.Formals, formal)
		inst.Actuals = append(inst.Actuals, actual)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expectSym(")"); err != nil {
		return nil, err
	}
	if _, err := p.expectSym(";"); err != nil {
		return nil, err
	}
	return inst, nil
}

// parseGenerate parses "label: for i in A to B generate ... end generate;".
func (p *parser) parseGenerate(label string) (Stmt, error) {
	kw, _ := p.expectKw("for")
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKw("in"); err != nil {
		return nil, err
	}
	from, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKw("to"); err != nil {
		return nil, err
	}
	to, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKw("generate"); err != nil {
		return nil, err
	}
	g := &GenerateFor{Label: label, Var: v.text, From: from, To: to, Line: kw.line}
	for !p.atKw("end") {
		st, err := p.parseConcurrent()
		if err != nil {
			return nil, err
		}
		g.Body = append(g.Body, st)
	}
	p.next() // end
	if _, err := p.expectKw("generate"); err != nil {
		return nil, err
	}
	p.accept(tokIdent, label)
	if _, err := p.expectSym(";"); err != nil {
		return nil, err
	}
	return g, nil
}

// parseSeqList parses sequential statements until one of the stop keywords.
func (p *parser) parseSeqList(stops ...string) ([]SeqStmt, error) {
	stopSet := make(map[string]bool, len(stops))
	for _, s := range stops {
		stopSet[s] = true
	}
	var out []SeqStmt
	for {
		t := p.cur()
		if t.kind == tokKeyword && stopSet[t.text] {
			return out, nil
		}
		if t.kind == tokEOF {
			return nil, p.errHere("unexpected end of file in statement list")
		}
		s, err := p.parseSeq()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) parseSeq() (SeqStmt, error) {
	switch {
	case p.atKw("if"):
		return p.parseIf()
	case p.atKw("case"):
		return p.parseCase()
	case p.atKw("null"):
		p.next()
		if _, err := p.expectSym(";"); err != nil {
			return nil, err
		}
		return &Null{}, nil
	case p.atKw("wait"), p.atKw("for"), p.atKw("while"), p.atKw("loop"):
		return nil, p.errHere("%s statements are not supported by this subset", p.cur().text)
	default:
		tgt, err := p.parseTarget()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectSym("<="); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expectSym(";"); err != nil {
			return nil, err
		}
		return &SeqAssign{Target: tgt, Value: v, Line: tgt.Line}, nil
	}
}

func (p *parser) parseIf() (SeqStmt, error) {
	kw, _ := p.expectKw("if")
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKw("then"); err != nil {
		return nil, err
	}
	then, err := p.parseSeqList("elsif", "else", "end")
	if err != nil {
		return nil, err
	}
	node := &If{Cond: cond, Then: then, Line: kw.line}
	switch {
	case p.atKw("elsif"):
		// Rewrite elsif as nested if; reuse parseIf by substituting the
		// keyword.
		p.toks[p.pos].text = "if"
		inner, err := p.parseIf()
		if err != nil {
			return nil, err
		}
		node.Else = []SeqStmt{inner}
		return node, nil
	case p.atKw("else"):
		p.next()
		els, err := p.parseSeqList("end")
		if err != nil {
			return nil, err
		}
		node.Else = els
	}
	if _, err := p.expectKw("end"); err != nil {
		return nil, err
	}
	if _, err := p.expectKw("if"); err != nil {
		return nil, err
	}
	if _, err := p.expectSym(";"); err != nil {
		return nil, err
	}
	return node, nil
}

// parseIf for the elsif branch consumes through "end if ;" inside the inner
// call, so the outer must not expect them again.
func (p *parser) parseCase() (SeqStmt, error) {
	kw, _ := p.expectKw("case")
	sel, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expectKw("is"); err != nil {
		return nil, err
	}
	c := &Case{Sel: sel, Line: kw.line}
	for p.atKw("when") {
		p.next()
		var choices []Expr
		if p.accept(tokKeyword, "others") {
			choices = nil
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				choices = append(choices, e)
				if !p.accept(tokSymbol, "|") {
					break
				}
			}
		}
		if _, err := p.expectSym("=>"); err != nil {
			return nil, err
		}
		body, err := p.parseSeqList("when", "end")
		if err != nil {
			return nil, err
		}
		c.Arms = append(c.Arms, CaseArm{Choices: choices, Body: body})
	}
	if _, err := p.expectKw("end"); err != nil {
		return nil, err
	}
	if _, err := p.expectKw("case"); err != nil {
		return nil, err
	}
	if _, err := p.expectSym(";"); err != nil {
		return nil, err
	}
	return c, nil
}

// Expression parsing with precedence:
//
//	logical (and or nand nor xor xnor)  [lowest]
//	relational (= /= < <= > >=)
//	additive (+ - &)
//	unary (not, -)
//	primary
func (p *parser) parseExpr() (Expr, error) { return p.parseLogical() }

func (p *parser) parseLogical() (Expr, error) {
	x, err := p.parseRelational()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokKeyword {
			return x, nil
		}
		switch t.text {
		case "and", "or", "nand", "nor", "xor", "xnor":
			p.next()
			y, err := p.parseRelational()
			if err != nil {
				return nil, err
			}
			x = &Binary{Op: t.text, X: x, Y: y, Line: t.line}
		default:
			return x, nil
		}
	}
}

func (p *parser) parseRelational() (Expr, error) {
	x, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokSymbol {
		switch t.text {
		case "=", "/=", "<", "<=", ">", ">=":
			p.next()
			y, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &Binary{Op: t.text, X: x, Y: y, Line: t.line}, nil
		}
	}
	return x, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	x, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokSymbol {
			return x, nil
		}
		switch t.text {
		case "+", "-", "&":
			p.next()
			y, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			x = &Binary{Op: t.text, X: x, Y: y, Line: t.line}
		default:
			return x, nil
		}
	}
}

// parseMultiplicative parses * and / (constant-expression contexts only;
// elaboration rejects them on signals).
func (p *parser) parseMultiplicative() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokSymbol || (t.text != "*" && t.text != "/") {
			return x, nil
		}
		p.next()
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: t.text, X: x, Y: y, Line: t.line}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.kind == tokKeyword && t.text == "not" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "not", X: x, Line: t.line}, nil
	}
	if t.kind == tokSymbol && t.text == "-" {
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x, Line: t.line}, nil
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.atSym("'"):
			p.next()
			attr, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			x = &Attribute{Base: x, Attr: attr.text, Line: attr.line}
		case p.atSym("("):
			// Index, slice or call on a name.
			open := p.cur()
			p.next()
			if nm, isName := x.(*Name); isName && isFunc(nm.Ident) {
				call := &Call{Func: nm.Ident, Line: nm.Line}
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(tokSymbol, ",") {
						break
					}
				}
				if _, err := p.expectSym(")"); err != nil {
					return nil, err
				}
				x = call
				continue
			}
			first, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if p.atKw("downto") || p.atKw("to") {
				downto := p.next().text == "downto"
				lo, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expectSym(")"); err != nil {
					return nil, err
				}
				x = &SliceExpr{Base: x, Hi: first, Lo: lo, Downto: downto, Line: open.line}
				continue
			}
			if _, err := p.expectSym(")"); err != nil {
				return nil, err
			}
			x = &IndexExpr{Base: x, Index: first, Line: open.line}
		default:
			return x, nil
		}
	}
}

// isFunc recognises supported function/conversion names.
func isFunc(name string) bool {
	switch name {
	case "rising_edge", "falling_edge", "unsigned", "signed", "std_logic_vector",
		"to_unsigned", "to_integer", "conv_std_logic_vector", "conv_integer":
		return true
	}
	return false
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokIdent:
		p.next()
		return &Name{Ident: t.text, Line: t.line}, nil
	case tokCharLit:
		p.next()
		if t.text != "0" && t.text != "1" {
			return nil, &ParseError{t.line, t.col, fmt.Sprintf("unsupported std_logic value '%s' (only '0'/'1')", t.text)}
		}
		return &CharLit{Value: t.text[0], Line: t.line}, nil
	case tokStrLit:
		p.next()
		for _, ch := range t.text {
			if ch != '0' && ch != '1' {
				return nil, &ParseError{t.line, t.col, fmt.Sprintf("unsupported bit value %q in string literal", ch)}
			}
		}
		return &StrLit{Value: t.text, Line: t.line}, nil
	case tokNumber:
		p.next()
		v, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, &ParseError{t.line, t.col, "bad integer"}
		}
		return &IntLit{Value: v, Line: t.line}, nil
	case tokSymbol:
		if t.text == "(" {
			p.next()
			// Aggregate (others => e) or parenthesised expression.
			if p.atKw("others") {
				p.next()
				if _, err := p.expectSym("=>"); err != nil {
					return nil, err
				}
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				if _, err := p.expectSym(")"); err != nil {
					return nil, err
				}
				return &Aggregate{Others: e, Line: t.line}, nil
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expectSym(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errHere("unexpected token %s in expression", p.cur())
}
