package vhdl

// AST for the supported VHDL subset.

// Design is a parsed source file: entities and architectures.
type Design struct {
	Entities      []*Entity
	Architectures []*Architecture
}

// PortDir is a port direction.
type PortDir int

const (
	DirIn PortDir = iota
	DirOut
)

func (d PortDir) String() string {
	if d == DirOut {
		return "out"
	}
	return "in"
}

// Type is a (possibly vector) signal type.
type Type struct {
	// Vector is true for std_logic_vector / bit_vector.
	Vector bool
	// Hi, Lo are the resolved bounds; Downto records the direction. For
	// scalars all are zero. HiE/LoE hold unresolved bound expressions
	// (generic-dependent); elaboration resolves them per instance.
	Hi, Lo   int
	HiE, LoE Expr
	Downto   bool
}

// Resolved reports whether the bounds are concrete integers.
func (t Type) Resolved() bool { return t.HiE == nil && t.LoE == nil }

// Width returns the number of bits (resolved types only).
func (t Type) Width() int {
	if !t.Vector {
		return 1
	}
	if t.Hi >= t.Lo {
		return t.Hi - t.Lo + 1
	}
	return t.Lo - t.Hi + 1
}

// Port is one entity port.
type Port struct {
	Name string
	Dir  PortDir
	Type Type
	Line int
}

// Generic is one entity generic (integer-valued).
type Generic struct {
	Name string
	// Default is nil when the generic has no default value.
	Default Expr
	Line    int
}

// Entity is an entity declaration.
type Entity struct {
	Name     string
	Generics []*Generic
	Ports    []*Port
	Line     int
}

// Signal is an architecture-level signal declaration.
type Signal struct {
	Name string
	Type Type
	Line int
}

// Architecture is an architecture body.
type Architecture struct {
	Name    string
	Of      string
	Signals []*Signal
	Stmts   []Stmt
	Line    int
}

// Stmt is a concurrent statement.
type Stmt interface{ stmtNode() }

// Assign is a concurrent signal assignment, possibly conditional:
// target <= Values[0] when Conds[0] else Values[1] when ... else Values[n].
type Assign struct {
	Target *Target
	// Values has one more entry than Conds for the trailing else; a plain
	// assignment has one value and no conds.
	Values []Expr
	Conds  []Expr
	Line   int
}

// Selected is "with Sel select target <= v1 when c1, ... vD when others;".
type Selected struct {
	Target  *Target
	Sel     Expr
	Values  []Expr
	Choices [][]Expr // literal choices per value; nil = others
	Line    int
}

// Process is a process statement.
type Process struct {
	Label       string
	Sensitivity []string
	Body        []SeqStmt
	Line        int
}

// Instance is a direct entity instantiation.
type Instance struct {
	Label  string
	Entity string
	// GenericFormals/GenericActuals carry the generic map associations.
	GenericFormals []string
	GenericActuals []Expr
	// Formals/Actuals are the port map associations (named form); for
	// positional maps Formals entries are empty.
	Formals []string
	Actuals []Expr
	Line    int
}

// GenerateFor is "label: for i in A to B generate stmts end generate;".
type GenerateFor struct {
	Label    string
	Var      string
	From, To Expr
	Body     []Stmt
	Line     int
}

func (*Assign) stmtNode()      {}
func (*Selected) stmtNode()    {}
func (*Process) stmtNode()     {}
func (*Instance) stmtNode()    {}
func (*GenerateFor) stmtNode() {}

// SeqStmt is a sequential (process body) statement.
type SeqStmt interface{ seqNode() }

// SeqAssign is "target <= expr;".
type SeqAssign struct {
	Target *Target
	Value  Expr
	Line   int
}

// If is if/elsif/else.
type If struct {
	Cond Expr
	Then []SeqStmt
	Else []SeqStmt // may contain a single If for elsif chains
	Line int
}

// Case is case/when.
type Case struct {
	Sel  Expr
	Arms []CaseArm
	Line int
}

// CaseArm is one "when choices => stmts" arm; nil Choices = others.
type CaseArm struct {
	Choices []Expr
	Body    []SeqStmt
}

// Null is the null statement.
type Null struct{}

func (*SeqAssign) seqNode() {}
func (*If) seqNode()        {}
func (*Case) seqNode()      {}
func (*Null) seqNode()      {}

// Target is an assignment destination: a signal, an indexed element or a
// slice.
type Target struct {
	Name string
	// Index is non-nil for x(i) targets.
	Index Expr
	// SliceHi/SliceLo are the bound expressions of x(h downto l) targets.
	HasSlice         bool
	SliceHi, SliceLo Expr
	SliceDownto      bool
	Line             int
}

// Expr is an expression node.
type Expr interface{ exprNode() }

// Name references a signal or port (whole object).
type Name struct {
	Ident string
	Line  int
}

// IndexExpr is x(i) with a constant or computed index.
type IndexExpr struct {
	Base  Expr
	Index Expr
	Line  int
}

// SliceExpr is x(h downto l); the bounds are constant expressions.
type SliceExpr struct {
	Base   Expr
	Hi, Lo Expr
	Downto bool
	Line   int
}

// CharLit is '0' or '1'.
type CharLit struct {
	Value byte
	Line  int
}

// StrLit is a bit-string literal "0101".
type StrLit struct {
	Value string
	Line  int
}

// IntLit is an integer literal.
type IntLit struct {
	Value int
	Line  int
}

// Unary is "not x" or "- x".
type Unary struct {
	Op   string
	X    Expr
	Line int
}

// Binary is a binary operation: and or nand nor xor xnor & + - = /= < <= >
// >= .
type Binary struct {
	Op   string
	X, Y Expr
	Line int
}

// Call is a function call / conversion: rising_edge(clk), unsigned(x),
// std_logic_vector(x), to_unsigned(v, w), conv_std_logic_vector(v, w).
type Call struct {
	Func string
	Args []Expr
	Line int
}

// Attribute is x'event etc.
type Attribute struct {
	Base Expr
	Attr string
	Line int
}

// Aggregate is (others => expr).
type Aggregate struct {
	Others Expr
	Line   int
}

func (*Name) exprNode()      {}
func (*IndexExpr) exprNode() {}
func (*SliceExpr) exprNode() {}
func (*CharLit) exprNode()   {}
func (*StrLit) exprNode()    {}
func (*IntLit) exprNode()    {}
func (*Unary) exprNode()     {}
func (*Binary) exprNode()    {}
func (*Call) exprNode()      {}
func (*Attribute) exprNode() {}
func (*Aggregate) exprNode() {}
