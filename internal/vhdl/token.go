// Package vhdl implements the front end of the paper's flow: the VHDL
// Parser tool (lexing, parsing and semantic checking of a synthesizable
// VHDL-93 subset) and the DIVINER behavioural synthesizer (elaboration of
// the checked design into a gate-level netlist).
//
// Supported subset: entity/architecture pairs; std_logic, std_logic_vector,
// bit and bit_vector ports and signals; concurrent, conditional ("when
// else") and selected ("with select") signal assignments; processes with
// if/elsif/case control flow, rising_edge/falling_edge clocked processes
// with optional synchronous reset; logic operators, comparisons, unsigned
// +/- arithmetic, concatenation, indexing, slicing, aggregates
// ((others => '0')) and entity instantiation.
package vhdl

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokCharLit // '0'
	tokStrLit  // "0101"
	tokSymbol  // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // keywords and identifiers are lowercased
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.text)
}

var keywords = map[string]bool{
	"abs": true, "access": true, "after": true, "alias": true, "all": true,
	"and": true, "architecture": true, "array": true, "assert": true,
	"attribute": true, "begin": true, "block": true, "body": true,
	"buffer": true, "bus": true, "case": true, "component": true,
	"configuration": true, "constant": true, "disconnect": true,
	"downto": true, "else": true, "elsif": true, "end": true, "entity": true,
	"exit": true, "file": true, "for": true, "function": true,
	"generate": true, "generic": true, "group": true, "guarded": true,
	"if": true, "impure": true, "in": true, "inertial": true, "inout": true,
	"is": true, "label": true, "library": true, "linkage": true,
	"literal": true, "loop": true, "map": true, "mod": true, "nand": true,
	"new": true, "next": true, "nor": true, "not": true, "null": true,
	"of": true, "on": true, "open": true, "or": true, "others": true,
	"out": true, "package": true, "port": true, "postponed": true,
	"procedure": true, "process": true, "pure": true, "range": true,
	"record": true, "register": true, "reject": true, "rem": true,
	"report": true, "return": true, "rol": true, "ror": true, "select": true,
	"severity": true, "signal": true, "shared": true, "sla": true,
	"sll": true, "sra": true, "srl": true, "subtype": true, "then": true,
	"to": true, "transport": true, "type": true, "unaffected": true,
	"units": true, "until": true, "use": true, "variable": true, "wait": true,
	"when": true, "while": true, "with": true, "xnor": true, "xor": true,
}

// lexError is a lexical error with position.
type lexError struct {
	line, col int
	msg       string
}

func (e *lexError) Error() string {
	return fmt.Sprintf("vhdl: line %d:%d: %s", e.line, e.col, e.msg)
}

// lex tokenizes VHDL source.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}
	for i < n {
		c := src[i]
		switch {
		case c == '-' && i+1 < n && src[i+1] == '-':
			// Comment to end of line.
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case unicode.IsLetter(rune(c)):
			start := i
			sl, sc := line, col
			for i < n && (isIdentChar(src[i])) {
				advance(1)
			}
			word := strings.ToLower(src[start:i])
			kind := tokIdent
			if keywords[word] {
				kind = tokKeyword
			}
			toks = append(toks, token{kind, word, sl, sc})
		case unicode.IsDigit(rune(c)):
			start := i
			sl, sc := line, col
			for i < n && (unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				advance(1)
			}
			toks = append(toks, token{tokNumber, strings.ReplaceAll(src[start:i], "_", ""), sl, sc})
		case c == '\'':
			// Character literal or attribute tick. 'x' only when a single
			// char followed by closing quote AND the previous token is not
			// an identifier/closing paren (which would be an attribute).
			if i+2 < n && src[i+2] == '\'' && !prevIsValue(toks) {
				toks = append(toks, token{tokCharLit, string(src[i+1]), line, col})
				advance(3)
			} else {
				toks = append(toks, token{tokSymbol, "'", line, col})
				advance(1)
			}
		case c == '"':
			sl, sc := line, col
			advance(1)
			start := i
			for i < n && src[i] != '"' {
				if src[i] == '\n' {
					return nil, &lexError{sl, sc, "unterminated string literal"}
				}
				advance(1)
			}
			if i >= n {
				return nil, &lexError{sl, sc, "unterminated string literal"}
			}
			toks = append(toks, token{tokStrLit, src[start:i], sl, sc})
			advance(1)
		default:
			sl, sc := line, col
			// Multi-char symbols first.
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "<=", ">=", "=>", ":=", "/=", "**", "<>":
				toks = append(toks, token{tokSymbol, two, sl, sc})
				advance(2)
				continue
			}
			switch c {
			case '(', ')', ';', ':', ',', '.', '&', '+', '-', '*', '/', '=', '<', '>', '|':
				toks = append(toks, token{tokSymbol, string(c), sl, sc})
				advance(1)
			default:
				return nil, &lexError{sl, sc, fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, token{tokEOF, "", line, col})
	return toks, nil
}

func isIdentChar(c byte) bool {
	return unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c)) || c == '_'
}

// prevIsValue reports whether the previous token could end a value
// expression (so a following tick is an attribute, as in clk'event).
func prevIsValue(toks []token) bool {
	if len(toks) == 0 {
		return false
	}
	t := toks[len(toks)-1]
	return t.kind == tokIdent || (t.kind == tokSymbol && t.text == ")")
}
