package vhdl

import (
	"fmt"

	"fpgaflow/internal/netlist"
)

// Gate construction helpers. Every synthesized gate gets a fresh name under
// the instance prefix.

func (sc *scope) newGate(hint string, fanin []*netlist.Node, cubes ...string) (*netlist.Node, error) {
	var c netlist.Cover
	c.Value = netlist.LitOne
	for _, s := range cubes {
		c.Cubes = append(c.Cubes, netlist.Cube(s))
	}
	return sc.e.nl.AddLogic(sc.e.nl.FreshName(sc.prefix+hint), fanin, c)
}

func (sc *scope) constBit(v bool) (*netlist.Node, error) {
	i := 0
	if v {
		i = 1
	}
	if sc.e.consts[i] != nil {
		return sc.e.consts[i], nil
	}
	var cover netlist.Cover
	cover.Value = netlist.LitOne
	name := "const0"
	if v {
		cover.Cubes = []netlist.Cube{{}}
		name = "const1"
	}
	n, err := sc.e.nl.AddLogic(sc.e.nl.FreshName(name), nil, cover)
	if err != nil {
		return nil, err
	}
	sc.e.consts[i] = n
	return n, nil
}

func (sc *scope) notGate(x *netlist.Node) (*netlist.Node, error) {
	return sc.newGate("not", []*netlist.Node{x}, "0")
}

func (sc *scope) binGate(op string, x, y *netlist.Node) (*netlist.Node, error) {
	switch op {
	case "and":
		return sc.newGate("and", []*netlist.Node{x, y}, "11")
	case "or":
		return sc.newGate("or", []*netlist.Node{x, y}, "1-", "-1")
	case "nand":
		return sc.newGate("nand", []*netlist.Node{x, y}, "0-", "-0")
	case "nor":
		return sc.newGate("nor", []*netlist.Node{x, y}, "00")
	case "xor":
		return sc.newGate("xor", []*netlist.Node{x, y}, "10", "01")
	case "xnor":
		return sc.newGate("xnor", []*netlist.Node{x, y}, "00", "11")
	}
	return nil, fmt.Errorf("vhdl: internal: gate op %q", op)
}

// mux returns sel ? a : b.
func (sc *scope) mux(sel, a, b *netlist.Node) (*netlist.Node, error) {
	return sc.newGate("mux", []*netlist.Node{sel, a, b}, "11-", "0-1")
}

func (sc *scope) muxVec(sel *netlist.Node, a, b []*netlist.Node) ([]*netlist.Node, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("vhdl: mux arms have widths %d and %d", len(a), len(b))
	}
	out := make([]*netlist.Node, len(a))
	for i := range a {
		m, err := sc.mux(sel, a[i], b[i])
		if err != nil {
			return nil, err
		}
		out[i] = m
	}
	return out, nil
}

// env is the symbolic signal environment during process interpretation.
type env map[string][]*netlist.Node

func (v env) clone() env {
	c := make(env, len(v))
	for k, bits := range v {
		c[k] = append([]*netlist.Node(nil), bits...)
	}
	return c
}

// readSignal returns the current bits of a signal: the process-local value
// if assigned earlier in the process, otherwise the global nodes.
func (sc *scope) readSignal(name string, ev env, line int) ([]*netlist.Node, error) {
	if ev != nil {
		if bits, ok := ev[name]; ok {
			return bits, nil
		}
	}
	t, ok := sc.types[name]
	if !ok {
		return nil, fmt.Errorf("vhdl: line %d: reference to undeclared signal %q", line, name)
	}
	bits, ok := sc.bits[name]
	if !ok || bits == nil {
		return nil, fmt.Errorf("vhdl: line %d: signal %q is read but never driven", line, name)
	}
	for j := 0; j < t.Width(); j++ {
		if bits[j] == nil {
			return nil, fmt.Errorf("vhdl: line %d: signal %q bit %d is read but never driven", line, name, j)
		}
	}
	return bits, nil
}

// evalExpr synthesizes an expression to a bit vector (LSB first). want is
// the expected width for integer literals and aggregates (0 = unknown).
func (sc *scope) evalExpr(ex Expr, ev env, want int) ([]*netlist.Node, error) {
	switch x := ex.(type) {
	case *Name:
		if v, isGen := sc.generics[x.Ident]; isGen {
			if want <= 0 {
				return nil, fmt.Errorf("vhdl: line %d: generic %q needs a width context", x.Line, x.Ident)
			}
			return sc.constVector(v, want, x.Line)
		}
		return sc.readSignal(x.Ident, ev, x.Line)
	case *CharLit:
		n, err := sc.constBit(x.Value == '1')
		if err != nil {
			return nil, err
		}
		return []*netlist.Node{n}, nil
	case *StrLit:
		w := len(x.Value)
		out := make([]*netlist.Node, w)
		for j := 0; j < w; j++ {
			// Leftmost literal character is the MSB.
			n, err := sc.constBit(x.Value[w-1-j] == '1')
			if err != nil {
				return nil, err
			}
			out[j] = n
		}
		return out, nil
	case *IntLit:
		if want <= 0 {
			return nil, fmt.Errorf("vhdl: line %d: integer literal %d needs a width context", x.Line, x.Value)
		}
		return sc.constVector(x.Value, want, x.Line)
	case *Aggregate:
		if want <= 0 {
			return nil, fmt.Errorf("vhdl: line %d: aggregate needs a width context", x.Line)
		}
		bit, err := sc.evalExpr(x.Others, ev, 1)
		if err != nil {
			return nil, err
		}
		if len(bit) != 1 {
			return nil, fmt.Errorf("vhdl: line %d: aggregate element must be one bit", x.Line)
		}
		out := make([]*netlist.Node, want)
		for j := range out {
			out[j] = bit[0]
		}
		return out, nil
	case *IndexExpr:
		base, ok := x.Base.(*Name)
		if !ok {
			return nil, fmt.Errorf("vhdl: line %d: indexing is only supported on signals", x.Line)
		}
		idx, err := evalConstExpr(x.Index, sc.generics)
		if err != nil {
			return nil, fmt.Errorf("vhdl: line %d: dynamic indexing is not supported; use a case statement (%v)", x.Line, err)
		}
		t, declared := sc.types[base.Ident]
		if !declared {
			return nil, fmt.Errorf("vhdl: line %d: reference to undeclared signal %q", x.Line, base.Ident)
		}
		j, err := numericBit(t, idx)
		if err != nil {
			return nil, fmt.Errorf("vhdl: line %d: %v", x.Line, err)
		}
		bits, err := sc.readSignal(base.Ident, ev, x.Line)
		if err != nil {
			return nil, err
		}
		return []*netlist.Node{bits[j]}, nil
	case *SliceExpr:
		base, ok := x.Base.(*Name)
		if !ok {
			return nil, fmt.Errorf("vhdl: line %d: slicing is only supported on signals", x.Line)
		}
		t, declared := sc.types[base.Ident]
		if !declared {
			return nil, fmt.Errorf("vhdl: line %d: reference to undeclared signal %q", x.Line, base.Ident)
		}
		hiV, err := evalConstExpr(x.Hi, sc.generics)
		if err != nil {
			return nil, fmt.Errorf("vhdl: line %d: %v", x.Line, err)
		}
		loV, err := evalConstExpr(x.Lo, sc.generics)
		if err != nil {
			return nil, fmt.Errorf("vhdl: line %d: %v", x.Line, err)
		}
		j1, err := numericBit(t, hiV)
		if err != nil {
			return nil, fmt.Errorf("vhdl: line %d: %v", x.Line, err)
		}
		j2, err := numericBit(t, loV)
		if err != nil {
			return nil, fmt.Errorf("vhdl: line %d: %v", x.Line, err)
		}
		lo, hi := j1, j2
		if lo > hi {
			lo, hi = hi, lo
		}
		bits, err := sc.readSignal(base.Ident, ev, x.Line)
		if err != nil {
			return nil, err
		}
		return append([]*netlist.Node(nil), bits[lo:hi+1]...), nil
	case *Unary:
		switch x.Op {
		case "not":
			v, err := sc.evalExpr(x.X, ev, want)
			if err != nil {
				return nil, err
			}
			out := make([]*netlist.Node, len(v))
			for i, b := range v {
				n, err := sc.notGate(b)
				if err != nil {
					return nil, err
				}
				out[i] = n
			}
			return out, nil
		case "-":
			v, err := sc.evalExpr(x.X, ev, want)
			if err != nil {
				return nil, err
			}
			zero, err := sc.constVector(0, len(v), x.Line)
			if err != nil {
				return nil, err
			}
			diff, _, err := sc.addSub(zero, v, true)
			return diff, err
		}
		return nil, fmt.Errorf("vhdl: line %d: unsupported unary %q", x.Line, x.Op)
	case *Binary:
		if v, err := evalConstExpr(x, sc.generics); err == nil {
			if want <= 0 {
				return nil, fmt.Errorf("vhdl: line %d: constant expression needs a width context", x.Line)
			}
			return sc.constVector(v, want, x.Line)
		}
		return sc.evalBinary(x, ev, want)
	case *Call:
		return sc.evalCall(x, ev, want)
	case *Attribute:
		return nil, fmt.Errorf("vhdl: line %d: attribute '%s outside a clock condition", x.Line, x.Attr)
	}
	return nil, fmt.Errorf("vhdl: unsupported expression %T", ex)
}

// isConstExpr reports whether the expression folds to an integer constant
// (an integer literal, a generic, or arithmetic over them).
func (sc *scope) isConstExpr(e Expr) bool {
	switch e.(type) {
	case *CharLit, *StrLit, *Aggregate:
		return false
	}
	_, err := evalConstExpr(e, sc.generics)
	return err == nil
}

func (sc *scope) constVector(v, w, line int) ([]*netlist.Node, error) {
	if v < 0 || (w < 63 && v >= 1<<uint(w)) {
		return nil, fmt.Errorf("vhdl: line %d: integer %d does not fit in %d bits", line, v, w)
	}
	out := make([]*netlist.Node, w)
	for j := 0; j < w; j++ {
		n, err := sc.constBit(v&(1<<uint(j)) != 0)
		if err != nil {
			return nil, err
		}
		out[j] = n
	}
	return out, nil
}

// pairWidths evaluates both operands, resolving integer-literal widths from
// the other side.
func (sc *scope) pairWidths(x, y Expr, ev env, want int) ([]*netlist.Node, []*netlist.Node, error) {
	xInt := sc.isConstExpr(x)
	yInt := sc.isConstExpr(y)
	if xInt && yInt {
		return nil, nil, fmt.Errorf("vhdl: constant-only binary expression; fold it manually")
	}
	if xInt {
		b, err := sc.evalExpr(y, ev, want)
		if err != nil {
			return nil, nil, err
		}
		a, err := sc.evalExpr(x, ev, len(b))
		return a, b, err
	}
	a, err := sc.evalExpr(x, ev, want)
	if err != nil {
		return nil, nil, err
	}
	b, err := sc.evalExpr(y, ev, len(a))
	return a, b, err
}

func (sc *scope) evalBinary(x *Binary, ev env, want int) ([]*netlist.Node, error) {
	switch x.Op {
	case "and", "or", "nand", "nor", "xor", "xnor":
		a, b, err := sc.pairWidths(x.X, x.Y, ev, want)
		if err != nil {
			return nil, err
		}
		if len(a) != len(b) {
			return nil, fmt.Errorf("vhdl: line %d: operands of %q have widths %d and %d",
				x.Line, x.Op, len(a), len(b))
		}
		out := make([]*netlist.Node, len(a))
		for i := range a {
			g, err := sc.binGate(x.Op, a[i], b[i])
			if err != nil {
				return nil, err
			}
			out[i] = g
		}
		return out, nil
	case "&":
		// Concatenation: left operand supplies the MSBs.
		b, err := sc.evalExpr(x.Y, ev, 0)
		if err != nil {
			return nil, err
		}
		a, err := sc.evalExpr(x.X, ev, 0)
		if err != nil {
			return nil, err
		}
		return append(append([]*netlist.Node(nil), b...), a...), nil
	case "+", "-":
		a, b, err := sc.pairWidths(x.X, x.Y, ev, want)
		if err != nil {
			return nil, err
		}
		if len(a) != len(b) {
			return nil, fmt.Errorf("vhdl: line %d: operands of %q have widths %d and %d",
				x.Line, x.Op, len(a), len(b))
		}
		sum, _, err := sc.addSub(a, b, x.Op == "-")
		return sum, err
	case "=", "/=", "<", "<=", ">", ">=":
		a, b, err := sc.pairWidths(x.X, x.Y, ev, 0)
		if err != nil {
			return nil, err
		}
		if len(a) != len(b) {
			return nil, fmt.Errorf("vhdl: line %d: comparison operands have widths %d and %d",
				x.Line, len(a), len(b))
		}
		bit, err := sc.compare(x.Op, a, b)
		if err != nil {
			return nil, err
		}
		return []*netlist.Node{bit}, nil
	}
	return nil, fmt.Errorf("vhdl: line %d: unsupported operator %q", x.Line, x.Op)
}

// addSub builds a ripple-carry adder/subtractor; returns (result, carryOut).
func (sc *scope) addSub(a, b []*netlist.Node, sub bool) ([]*netlist.Node, *netlist.Node, error) {
	carry, err := sc.constBit(sub)
	if err != nil {
		return nil, nil, err
	}
	out := make([]*netlist.Node, len(a))
	for i := range a {
		bi := b[i]
		if sub {
			if bi, err = sc.notGate(b[i]); err != nil {
				return nil, nil, err
			}
		}
		// sum = a ^ b ^ c; carry = majority(a, b, c).
		s, err := sc.newGate("sum", []*netlist.Node{a[i], bi, carry},
			"100", "010", "001", "111")
		if err != nil {
			return nil, nil, err
		}
		c, err := sc.newGate("carry", []*netlist.Node{a[i], bi, carry},
			"11-", "1-1", "-11")
		if err != nil {
			return nil, nil, err
		}
		out[i] = s
		carry = c
	}
	return out, carry, nil
}

// compare builds an unsigned comparator.
func (sc *scope) compare(op string, a, b []*netlist.Node) (*netlist.Node, error) {
	switch op {
	case "=", "/=":
		var eq *netlist.Node
		for i := range a {
			bitEq, err := sc.binGate("xnor", a[i], b[i])
			if err != nil {
				return nil, err
			}
			if eq == nil {
				eq = bitEq
			} else if eq, err = sc.binGate("and", eq, bitEq); err != nil {
				return nil, err
			}
		}
		if eq == nil {
			return sc.constBit(true)
		}
		if op == "/=" {
			return sc.notGate(eq)
		}
		return eq, nil
	case "<", ">=", ">", "<=":
		// a < b, MSB down: lt = (!a & b) | (eq & ltBelow).
		lt, err := sc.constBit(false)
		if err != nil {
			return nil, err
		}
		for i := 0; i < len(a); i++ { // LSB to MSB; rebuild as we go up
			bitLt, err := sc.newGate("lt", []*netlist.Node{a[i], b[i]}, "01")
			if err != nil {
				return nil, err
			}
			bitEq, err := sc.binGate("xnor", a[i], b[i])
			if err != nil {
				return nil, err
			}
			keep, err := sc.binGate("and", bitEq, lt)
			if err != nil {
				return nil, err
			}
			if lt, err = sc.binGate("or", bitLt, keep); err != nil {
				return nil, err
			}
		}
		switch op {
		case "<":
			return lt, nil
		case ">=":
			return sc.notGate(lt)
		case ">":
			// a > b == b < a: recompute with swapped operands.
			return sc.compare("<", b, a)
		case "<=":
			gt, err := sc.compare("<", b, a)
			if err != nil {
				return nil, err
			}
			return sc.notGate(gt)
		}
	}
	return nil, fmt.Errorf("vhdl: internal: comparator op %q", op)
}

func (sc *scope) evalCall(x *Call, ev env, want int) ([]*netlist.Node, error) {
	switch x.Func {
	case "unsigned", "signed", "std_logic_vector":
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("vhdl: line %d: %s takes one argument", x.Line, x.Func)
		}
		return sc.evalExpr(x.Args[0], ev, want)
	case "to_unsigned", "conv_std_logic_vector":
		if len(x.Args) != 2 {
			return nil, fmt.Errorf("vhdl: line %d: %s takes (value, width)", x.Line, x.Func)
		}
		w, err := evalConstExpr(x.Args[1], sc.generics)
		if err != nil {
			return nil, fmt.Errorf("vhdl: line %d: %s width must be constant: %v", x.Line, x.Func, err)
		}
		if v, cerr := evalConstExpr(x.Args[0], sc.generics); cerr == nil {
			return sc.constVector(v, w, x.Line)
		}
		return sc.evalExpr(x.Args[0], ev, w)
	case "to_integer", "conv_integer":
		if len(x.Args) != 1 {
			return nil, fmt.Errorf("vhdl: line %d: %s takes one argument", x.Line, x.Func)
		}
		return sc.evalExpr(x.Args[0], ev, want)
	case "rising_edge", "falling_edge":
		return nil, fmt.Errorf("vhdl: line %d: %s may only appear as a process clock condition", x.Line, x.Func)
	}
	return nil, fmt.Errorf("vhdl: line %d: unsupported function %q", x.Line, x.Func)
}
