package arch

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteFile emits the DUTYS architecture file format: a line-oriented
// keyword format similar in spirit to VPR's architecture files.
func WriteFile(w io.Writer, a *Arch) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# DUTYS architecture file\n")
	fmt.Fprintf(bw, "name %s\n", a.Name)
	fmt.Fprintf(bw, "clb N %d K %d I %d clocks %d gated_clock %t detff %t\n",
		a.CLB.N, a.CLB.K, a.CLB.I, a.CLB.ClockPins, a.CLB.GatedClock, a.CLB.DoubleEdgeFF)
	fmt.Fprintf(bw, "grid rows %d cols %d io_rate %d\n", a.Rows, a.Cols, a.IORate)
	fmt.Fprintf(bw, "routing W %d seg %d Fs %d Fc_in %g Fc_out %g switch %s switch_width %g wire_width %g wire_spacing %g\n",
		a.Routing.ChannelWidth, a.Routing.SegmentLength, a.Routing.Fs,
		a.Routing.FcIn, a.Routing.FcOut, a.Routing.Switch,
		a.Routing.SwitchWidthMult, a.Routing.WireWidthMult, a.Routing.WireSpacingMult)
	t := a.Tech
	fmt.Fprintf(bw, "tech name %s vdd %g wmin %g lmin %g ron %g cgate %g cdiff %g leak %g tile %g\n",
		t.Name, t.Vdd, t.WMin, t.LMin, t.RonMin, t.CGateMin, t.CDiffMin, t.LeakMin, t.TileLen)
	fmt.Fprintf(bw, "metal r %g c_area %g c_fringe %g c_coup %g\n",
		t.MetalRPerM, t.MetalCAreaPerM, t.MetalCFringePerM, t.MetalCCoupPerM)
	fmt.Fprintf(bw, "delay lut %g mux %g clk_q %g setup %g inpad %g outpad %g sc_frac %g\n",
		t.LUTDelay, t.LocalMuxDelay, t.FFClkToQ, t.FFSetup, t.InPadDelay, t.OutPadDelay, t.ShortCircuitFrac)
	return bw.Flush()
}

// Format renders the architecture file as a string.
func Format(a *Arch) string {
	var sb strings.Builder
	_ = WriteFile(&sb, a)
	return sb.String()
}

// ReadFile parses a DUTYS architecture file.
func ReadFile(r io.Reader) (*Arch, error) {
	a := Paper() // defaults, overridden by the file
	sc := bufio.NewScanner(r)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] == "name" {
			if len(fields) != 2 {
				return nil, fmt.Errorf("arch: line %d: name wants one value", lineno)
			}
			a.Name = fields[1]
			continue
		}
		kv, err := pairs(fields[1:])
		if err != nil {
			return nil, fmt.Errorf("arch: line %d: %w", lineno, err)
		}
		switch fields[0] {
		case "clb":
			if err := applyCLB(&a.CLB, kv); err != nil {
				return nil, fmt.Errorf("arch: line %d: %w", lineno, err)
			}
		case "grid":
			if err := applyGrid(a, kv); err != nil {
				return nil, fmt.Errorf("arch: line %d: %w", lineno, err)
			}
		case "routing":
			if err := applyRouting(&a.Routing, kv); err != nil {
				return nil, fmt.Errorf("arch: line %d: %w", lineno, err)
			}
		case "tech":
			if err := applyTech(&a.Tech, kv); err != nil {
				return nil, fmt.Errorf("arch: line %d: %w", lineno, err)
			}
		case "metal":
			if err := applyMetal(&a.Tech, kv); err != nil {
				return nil, fmt.Errorf("arch: line %d: %w", lineno, err)
			}
		case "delay":
			if err := applyDelay(&a.Tech, kv); err != nil {
				return nil, fmt.Errorf("arch: line %d: %w", lineno, err)
			}
		default:
			return nil, fmt.Errorf("arch: line %d: unknown section %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return a, nil
}

// Parse parses architecture text.
func Parse(text string) (*Arch, error) { return ReadFile(strings.NewReader(text)) }

func pairs(fields []string) (map[string]string, error) {
	if len(fields)%2 != 0 {
		return nil, fmt.Errorf("odd key/value list %v", fields)
	}
	kv := make(map[string]string, len(fields)/2)
	for i := 0; i < len(fields); i += 2 {
		kv[fields[i]] = fields[i+1]
	}
	return kv, nil
}

func getInt(kv map[string]string, key string, dst *int) error {
	s, ok := kv[key]
	if !ok {
		return nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return fmt.Errorf("key %s: %w", key, err)
	}
	*dst = v
	return nil
}

func getFloat(kv map[string]string, key string, dst *float64) error {
	s, ok := kv[key]
	if !ok {
		return nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return fmt.Errorf("key %s: %w", key, err)
	}
	*dst = v
	return nil
}

func getBool(kv map[string]string, key string, dst *bool) error {
	s, ok := kv[key]
	if !ok {
		return nil
	}
	v, err := strconv.ParseBool(s)
	if err != nil {
		return fmt.Errorf("key %s: %w", key, err)
	}
	*dst = v
	return nil
}

func applyCLB(c *CLB, kv map[string]string) error {
	if err := getInt(kv, "N", &c.N); err != nil {
		return err
	}
	if err := getInt(kv, "K", &c.K); err != nil {
		return err
	}
	if err := getInt(kv, "I", &c.I); err != nil {
		return err
	}
	if err := getInt(kv, "clocks", &c.ClockPins); err != nil {
		return err
	}
	if err := getBool(kv, "gated_clock", &c.GatedClock); err != nil {
		return err
	}
	return getBool(kv, "detff", &c.DoubleEdgeFF)
}

func applyGrid(a *Arch, kv map[string]string) error {
	if err := getInt(kv, "rows", &a.Rows); err != nil {
		return err
	}
	if err := getInt(kv, "cols", &a.Cols); err != nil {
		return err
	}
	return getInt(kv, "io_rate", &a.IORate)
}

func applyRouting(r *Routing, kv map[string]string) error {
	if err := getInt(kv, "W", &r.ChannelWidth); err != nil {
		return err
	}
	if err := getInt(kv, "seg", &r.SegmentLength); err != nil {
		return err
	}
	if err := getInt(kv, "Fs", &r.Fs); err != nil {
		return err
	}
	if err := getFloat(kv, "Fc_in", &r.FcIn); err != nil {
		return err
	}
	if err := getFloat(kv, "Fc_out", &r.FcOut); err != nil {
		return err
	}
	if s, ok := kv["switch"]; ok {
		switch s {
		case "pass_transistor":
			r.Switch = SwitchPassTransistor
		case "tristate":
			r.Switch = SwitchTriState
		default:
			return fmt.Errorf("unknown switch kind %q", s)
		}
	}
	if err := getFloat(kv, "switch_width", &r.SwitchWidthMult); err != nil {
		return err
	}
	if err := getFloat(kv, "wire_width", &r.WireWidthMult); err != nil {
		return err
	}
	return getFloat(kv, "wire_spacing", &r.WireSpacingMult)
}

func applyTech(t *Tech, kv map[string]string) error {
	if s, ok := kv["name"]; ok {
		t.Name = s
	}
	for key, dst := range map[string]*float64{
		"vdd": &t.Vdd, "wmin": &t.WMin, "lmin": &t.LMin, "ron": &t.RonMin,
		"cgate": &t.CGateMin, "cdiff": &t.CDiffMin, "leak": &t.LeakMin, "tile": &t.TileLen,
	} {
		if err := getFloat(kv, key, dst); err != nil {
			return err
		}
	}
	return nil
}

func applyMetal(t *Tech, kv map[string]string) error {
	for key, dst := range map[string]*float64{
		"r": &t.MetalRPerM, "c_area": &t.MetalCAreaPerM,
		"c_fringe": &t.MetalCFringePerM, "c_coup": &t.MetalCCoupPerM,
	} {
		if err := getFloat(kv, key, dst); err != nil {
			return err
		}
	}
	return nil
}

func applyDelay(t *Tech, kv map[string]string) error {
	for key, dst := range map[string]*float64{
		"lut": &t.LUTDelay, "mux": &t.LocalMuxDelay, "clk_q": &t.FFClkToQ,
		"setup": &t.FFSetup, "inpad": &t.InPadDelay, "outpad": &t.OutPadDelay,
		"sc_frac": &t.ShortCircuitFrac,
	} {
		if err := getFloat(kv, key, dst); err != nil {
			return err
		}
	}
	return nil
}
