// Package arch models the paper's island-style FPGA platform and implements
// the DUTYS tool: generation and parsing of the architecture description
// consumed by placement, routing, timing, power estimation and bitstream
// generation.
//
// The platform (paper §3): cluster-based CLBs of N=5 BLEs with 4-input LUTs,
// 12 cluster inputs and 5 outputs, fully connected local interconnect
// (17-to-1 muxes per LUT input), one clock and one asynchronous clear per
// CLB, double-edge-triggered flip-flops with clock gating at BLE and CLB
// level, and an SRAM-based island-style routing fabric with disjoint switch
// boxes (Fs=3), connection-box flexibility Fc, and pass-transistor routing
// switches sized 10x minimum driving length-1 segments in metal 3 with
// minimum width and double spacing.
package arch

import (
	"fmt"
	"math"
)

// SwitchKind is the routing-switch circuit style.
type SwitchKind int

const (
	// SwitchPassTransistor joins segments through a single NMOS pass gate
	// (the paper's selected option).
	SwitchPassTransistor SwitchKind = iota
	// SwitchTriState joins segments through back-to-back tri-state buffers.
	SwitchTriState
)

func (s SwitchKind) String() string {
	if s == SwitchTriState {
		return "tristate"
	}
	return "pass_transistor"
}

// CLB describes the configurable logic block.
type CLB struct {
	N int // BLEs per cluster
	K int // LUT inputs
	I int // distinct cluster input pins
	// ClockPins is 1: one clock per CLB (paper feature i).
	ClockPins int
	// GatedClock enables the BLE- and CLB-level clock gating circuitry.
	GatedClock bool
	// DoubleEdgeFF selects double-edge-triggered flip-flops, halving the
	// clock frequency needed for a given data rate.
	DoubleEdgeFF bool
}

// Outputs returns the number of cluster outputs (all BLE outputs are visible).
func (c CLB) Outputs() int { return c.N }

// Routing describes the interconnect fabric.
type Routing struct {
	// ChannelWidth is the number of tracks per routing channel (W).
	ChannelWidth int
	// SegmentLength is the logical wire length in CLBs spanned (paper: 1).
	SegmentLength int
	// Fs is the switch-box flexibility; 3 = disjoint topology.
	Fs int
	// FcIn is the fraction of tracks each CLB input pin can connect to.
	FcIn float64
	// FcOut is the fraction of tracks each CLB output pin can connect to.
	FcOut float64
	// Switch selects the routing-switch circuit.
	Switch SwitchKind
	// SwitchWidthMult is the routing switch width in multiples of the
	// minimum contactable transistor width (paper: 10).
	SwitchWidthMult float64
	// WireWidthMult and WireSpacingMult select the metal-3 geometry
	// (paper: minimum width, double spacing).
	WireWidthMult   float64
	WireSpacingMult float64
}

// Arch is a complete architecture instance.
type Arch struct {
	Name    string
	CLB     CLB
	Routing Routing
	// Rows, Cols are the logic-grid dimensions (CLBs); the I/O ring adds
	// one tile on each side.
	Rows, Cols int
	// IORate is the number of pads per I/O tile.
	IORate int
	Tech   Tech
}

// Paper returns the architecture selected in the paper with a placeholder
// 8x8 grid; use SizeGrid or Fit to match a design.
func Paper() *Arch {
	return &Arch{
		Name: "amdrel-lp",
		CLB: CLB{
			N: 5, K: 4, I: 12,
			ClockPins:    1,
			GatedClock:   true,
			DoubleEdgeFF: true,
		},
		Routing: Routing{
			ChannelWidth:    16,
			SegmentLength:   1,
			Fs:              3,
			FcIn:            1.0,
			FcOut:           1.0,
			Switch:          SwitchPassTransistor,
			SwitchWidthMult: 10,
			WireWidthMult:   1,
			WireSpacingMult: 2,
		},
		Rows: 8, Cols: 8,
		IORate: 2,
		Tech:   STM018(),
	}
}

// Validate checks parameter sanity.
func (a *Arch) Validate() error {
	c := a.CLB
	if c.N < 1 || c.K < 2 || c.I < c.K || c.ClockPins < 0 {
		return fmt.Errorf("arch: bad CLB %+v", c)
	}
	r := a.Routing
	if r.ChannelWidth < 1 || r.SegmentLength < 1 || r.Fs < 1 {
		return fmt.Errorf("arch: bad routing %+v", r)
	}
	if r.FcIn <= 0 || r.FcIn > 1 || r.FcOut <= 0 || r.FcOut > 1 {
		return fmt.Errorf("arch: Fc out of (0,1]: in=%v out=%v", r.FcIn, r.FcOut)
	}
	if a.Rows < 1 || a.Cols < 1 || a.IORate < 1 {
		return fmt.Errorf("arch: bad grid %dx%d io %d", a.Rows, a.Cols, a.IORate)
	}
	// Upper bounds keep hostile inputs (e.g. corrupted bitstream headers)
	// from requesting absurd allocations.
	if c.K > 16 || c.N > 1024 || c.I > 4096 || c.ClockPins > 64 {
		return fmt.Errorf("arch: CLB parameters out of range %+v", c)
	}
	if r.ChannelWidth > 4096 || r.SegmentLength > 1024 || r.Fs > 64 {
		return fmt.Errorf("arch: routing parameters out of range %+v", r)
	}
	if a.Rows > 2048 || a.Cols > 2048 || a.IORate > 256 {
		return fmt.Errorf("arch: grid out of range %dx%d io %d", a.Rows, a.Cols, a.IORate)
	}
	if err := a.Tech.Validate(); err != nil {
		return err
	}
	return nil
}

// LogicCapacity is the number of CLB sites.
func (a *Arch) LogicCapacity() int { return a.Rows * a.Cols }

// IOCapacity is the number of pad sites on the perimeter ring.
func (a *Arch) IOCapacity() int { return 2 * (a.Rows + a.Cols) * a.IORate }

// SizeGrid chooses the smallest near-square grid fitting nCLB logic blocks
// and nIO pads, mirroring VPR's auto-sizing.
func (a *Arch) SizeGrid(nCLB, nIO int) {
	side := int(math.Ceil(math.Sqrt(float64(nCLB))))
	if side < 1 {
		side = 1
	}
	a.Rows, a.Cols = side, side
	for a.LogicCapacity() < nCLB || a.IOCapacity() < nIO {
		if a.Cols <= a.Rows {
			a.Cols++
		} else {
			a.Rows++
		}
	}
}

// Clone returns a copy of the architecture.
func (a *Arch) Clone() *Arch {
	b := *a
	return &b
}

// PinsPerCLB returns the pin count of one CLB tile: I inputs, N outputs,
// clock pins.
func (a *Arch) PinsPerCLB() int { return a.CLB.I + a.CLB.Outputs() + a.CLB.ClockPins }
