package arch

import (
	"math"
	"strings"
	"testing"
)

func TestPaperArchValid(t *testing.T) {
	a := Paper()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Paper §3.1 selected CLB: N=5, K=4, I=12, 5 outputs, one clock.
	if a.CLB.N != 5 || a.CLB.K != 4 || a.CLB.I != 12 || a.CLB.Outputs() != 5 || a.CLB.ClockPins != 1 {
		t.Errorf("CLB = %+v", a.CLB)
	}
	if !a.CLB.GatedClock || !a.CLB.DoubleEdgeFF {
		t.Error("gated clock / DETFF not enabled")
	}
	// §3.3: disjoint switch box Fs=3, Fc=1 worst case, pass transistors at
	// 10x minimum, length-1 wires, min width double spacing.
	r := a.Routing
	if r.Fs != 3 || r.FcIn != 1 || r.FcOut != 1 || r.Switch != SwitchPassTransistor {
		t.Errorf("routing = %+v", r)
	}
	if r.SwitchWidthMult != 10 || r.SegmentLength != 1 || r.WireWidthMult != 1 || r.WireSpacingMult != 2 {
		t.Errorf("sizing = %+v", r)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	mut := []func(*Arch){
		func(a *Arch) { a.CLB.N = 0 },
		func(a *Arch) { a.CLB.K = 1 },
		func(a *Arch) { a.CLB.I = 1 },
		func(a *Arch) { a.Routing.ChannelWidth = 0 },
		func(a *Arch) { a.Routing.FcIn = 0 },
		func(a *Arch) { a.Routing.FcOut = 1.5 },
		func(a *Arch) { a.Rows = 0 },
		func(a *Arch) { a.IORate = 0 },
		func(a *Arch) { a.Tech.Vdd = -1 },
		func(a *Arch) { a.Tech.ShortCircuitFrac = 2 },
	}
	for i, m := range mut {
		a := Paper()
		m(a)
		if err := a.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestSizeGrid(t *testing.T) {
	a := Paper()
	a.SizeGrid(10, 10)
	if a.LogicCapacity() < 10 || a.IOCapacity() < 10 {
		t.Fatalf("grid %dx%d too small", a.Rows, a.Cols)
	}
	if a.Rows > 5 || a.Cols > 5 {
		t.Errorf("grid %dx%d oversized for 10 CLBs", a.Rows, a.Cols)
	}
	// IO-bound design: needs perimeter growth beyond sqrt(nCLB).
	b := Paper()
	b.IORate = 1
	b.SizeGrid(1, 50)
	if b.IOCapacity() < 50 {
		t.Errorf("io capacity %d < 50", b.IOCapacity())
	}
}

func TestFileRoundTrip(t *testing.T) {
	a := Paper()
	a.Name = "roundtrip"
	a.Rows, a.Cols = 12, 9
	a.Routing.ChannelWidth = 24
	a.Routing.Switch = SwitchTriState
	a.CLB.GatedClock = false
	text := Format(a)
	b, err := Parse(text)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, text)
	}
	if *b != *a {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", b, a)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"bogus x 1\n",
		"clb N\n",
		"clb N five\n",
		"routing switch quantum\n",
		"grid rows 0 cols 0\n",
	}
	for _, text := range cases {
		if _, err := Parse(text); err == nil {
			t.Errorf("accepted %q", strings.TrimSpace(text))
		}
	}
}

func TestParseAppliesDefaults(t *testing.T) {
	a, err := Parse("name tiny\ngrid rows 2 cols 2 io_rate 1\n")
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != "tiny" || a.Rows != 2 {
		t.Errorf("overrides lost: %+v", a)
	}
	if a.CLB.N != 5 || a.Routing.Fs != 3 {
		t.Errorf("defaults lost: %+v", a)
	}
}

func TestWireModels(t *testing.T) {
	tech := STM018()
	// Resistance scales with tiles and inversely with width.
	r1 := tech.WireRes(1, 1)
	r8 := tech.WireRes(8, 1)
	if math.Abs(r8-8*r1) > 1e-9 {
		t.Errorf("R(8) = %g, want %g", r8, 8*r1)
	}
	if rw := tech.WireRes(1, 2); math.Abs(rw-r1/2) > 1e-9 {
		t.Errorf("double width R = %g, want %g", rw, r1/2)
	}
	// Double spacing must reduce capacitance (less coupling).
	cMin := tech.WireCap(1, 1, 1)
	cDS := tech.WireCap(1, 1, 2)
	if cDS >= cMin {
		t.Errorf("double spacing cap %g >= min spacing %g", cDS, cMin)
	}
	// Double width must increase capacitance at fixed spacing.
	cDW := tech.WireCap(1, 2, 1)
	if cDW <= cMin {
		t.Errorf("double width cap %g <= min width %g", cDW, cMin)
	}
	// Switch scaling.
	if tech.SwitchRon(10) >= tech.SwitchRon(1) {
		t.Error("wider switch should have lower Ron")
	}
	if tech.SwitchCDiff(10) <= tech.SwitchCDiff(1) {
		t.Error("wider switch should load the wire more")
	}
}

func TestTransistorArea(t *testing.T) {
	if TransistorArea(1) != 1 {
		t.Errorf("area(1) = %g", TransistorArea(1))
	}
	if TransistorArea(10) != 5.5 {
		t.Errorf("area(10) = %g", TransistorArea(10))
	}
}

func TestSwitchEnergy(t *testing.T) {
	tech := STM018()
	e := tech.SwitchEnergy(1e-15)
	want := 1e-15 * 1.8 * 1.8
	if math.Abs(e-want) > 1e-20 {
		t.Errorf("E = %g, want %g", e, want)
	}
}

func TestPinsPerCLB(t *testing.T) {
	a := Paper()
	if got := a.PinsPerCLB(); got != 12+5+1 {
		t.Errorf("pins = %d, want 18", got)
	}
}

func TestValidateRejectsAbsurdSizes(t *testing.T) {
	mut := []func(*Arch){
		func(a *Arch) { a.Rows = 1 << 20 },
		func(a *Arch) { a.Cols = 1 << 20 },
		func(a *Arch) { a.CLB.K = 40 },
		func(a *Arch) { a.CLB.N = 1 << 16 },
		func(a *Arch) { a.Routing.ChannelWidth = 1 << 20 },
		func(a *Arch) { a.IORate = 1 << 16 },
	}
	for i, m := range mut {
		a := Paper()
		m(a)
		if err := a.Validate(); err == nil {
			t.Errorf("absurd mutation %d accepted", i)
		}
	}
}
