package arch

import "fmt"

// Tech holds the process constants of the target technology. The defaults
// model the paper's STM 0.18 um 6-metal CMOS process at first order: the
// absolute values are calibrated, not extracted, but every relative effect
// the paper's experiments turn on (gate/diffusion capacitance scaling with
// transistor width, metal-3 wire RC scaling with length, width and spacing,
// clock-network loading) is represented. Units are SI: volts, ohms, farads,
// seconds, meters.
type Tech struct {
	Name string
	// Vdd is the supply voltage.
	Vdd float64
	// WMin is the minimum contactable transistor width (paper: 0.28 um).
	WMin float64
	// LMin is the drawn channel length (0.18 um).
	LMin float64
	// RonMin is the on-resistance of a minimum-width NMOS pass transistor;
	// Ron(w) = RonMin / widthMult.
	RonMin float64
	// CGateMin is the gate capacitance of a minimum-width transistor;
	// scales linearly with width.
	CGateMin float64
	// CDiffMin is the source/drain junction capacitance of a minimum-width
	// transistor; scales linearly with width.
	CDiffMin float64
	// LeakMin is the subthreshold leakage current of a minimum-width
	// transistor at Vdd.
	LeakMin float64
	// TileLen is the physical CLB pitch (routing wire length per logical
	// length unit).
	TileLen float64
	// MetalRPerM is metal-3 sheet-derived resistance per meter at minimum
	// width; R scales 1/widthMult.
	MetalRPerM float64
	// MetalCAreaPerM is the area (parallel-plate) capacitance per meter at
	// minimum width; scales with widthMult.
	MetalCAreaPerM float64
	// MetalCFringePerM is the fringe capacitance per meter (width
	// independent).
	MetalCFringePerM float64
	// MetalCCoupPerM is the coupling capacitance per meter to neighbours at
	// minimum spacing; scales 1/spacingMult.
	MetalCCoupPerM float64
	// ShortCircuitFrac is the short-circuit energy as a fraction of
	// switched-capacitance energy.
	ShortCircuitFrac float64

	// Timing abstractions for the placed-and-routed delay model.
	// LUTDelay is input-to-output delay of the K-input LUT.
	LUTDelay float64
	// LocalMuxDelay is the CLB-internal (I+N)-to-1 input mux delay.
	LocalMuxDelay float64
	// FFClkToQ and FFSetup are the flip-flop timing parameters.
	FFClkToQ float64
	FFSetup  float64
	// InPadDelay/OutPadDelay model the I/O pads.
	InPadDelay  float64
	OutPadDelay float64
}

// STM018 returns the 0.18 um constants used throughout the paper's
// experiments.
func STM018() Tech {
	return Tech{
		Name:             "stm018",
		Vdd:              1.8,
		WMin:             0.28e-6,
		LMin:             0.18e-6,
		RonMin:           10e3,
		CGateMin:         0.7e-15,
		CDiffMin:         0.8e-15,
		LeakMin:          30e-12,
		TileLen:          116e-6,
		MetalRPerM:       75e3,    // 0.075 ohm/um
		MetalCAreaPerM:   60e-12,  // 0.060 fF/um
		MetalCFringePerM: 40e-12,  // 0.040 fF/um
		MetalCCoupPerM:   100e-12, // 0.100 fF/um at min spacing
		ShortCircuitFrac: 0.10,
		LUTDelay:         450e-12,
		LocalMuxDelay:    250e-12,
		FFClkToQ:         200e-12,
		FFSetup:          150e-12,
		InPadDelay:       300e-12,
		OutPadDelay:      300e-12,
	}
}

// Validate rejects non-physical constants.
func (t Tech) Validate() error {
	pos := []struct {
		name string
		v    float64
	}{
		{"Vdd", t.Vdd}, {"WMin", t.WMin}, {"RonMin", t.RonMin},
		{"CGateMin", t.CGateMin}, {"CDiffMin", t.CDiffMin},
		{"TileLen", t.TileLen}, {"MetalRPerM", t.MetalRPerM},
		{"LUTDelay", t.LUTDelay}, {"FFClkToQ", t.FFClkToQ},
	}
	for _, p := range pos {
		if p.v <= 0 {
			return fmt.Errorf("arch: tech %s: %s must be positive, got %v", t.Name, p.name, p.v)
		}
	}
	if t.ShortCircuitFrac < 0 || t.ShortCircuitFrac > 1 {
		return fmt.Errorf("arch: tech %s: short-circuit fraction %v out of [0,1]", t.Name, t.ShortCircuitFrac)
	}
	return nil
}

// SwitchRon returns the on-resistance of a routing switch of the given
// width multiple.
func (t Tech) SwitchRon(widthMult float64) float64 { return t.RonMin / widthMult }

// SwitchCDiff returns the diffusion capacitance loading a wire per attached
// switch of the given width multiple.
func (t Tech) SwitchCDiff(widthMult float64) float64 { return t.CDiffMin * widthMult }

// SwitchCGate returns the gate capacitance of a switch of the given width.
func (t Tech) SwitchCGate(widthMult float64) float64 { return t.CGateMin * widthMult }

// WireRes returns the resistance of a wire spanning the given number of
// logic tiles at the given width multiple.
func (t Tech) WireRes(tiles float64, widthMult float64) float64 {
	return t.MetalRPerM * t.TileLen * tiles / widthMult
}

// WireCap returns the capacitance of a wire spanning the given number of
// logic tiles with the given width and spacing multiples: area capacitance
// grows with width, coupling capacitance shrinks with spacing.
func (t Tech) WireCap(tiles, widthMult, spacingMult float64) float64 {
	perM := t.MetalCAreaPerM*widthMult + t.MetalCFringePerM + t.MetalCCoupPerM/spacingMult
	return perM * t.TileLen * tiles
}

// SwitchEnergy returns the energy for one full-swing transition of the given
// capacitance: E = C * Vdd^2 (both edges of a cycle together switch C once
// up and once down; callers account per-transition).
func (t Tech) SwitchEnergy(c float64) float64 { return c * t.Vdd * t.Vdd }

// TransistorArea returns the layout area of a transistor of the given width
// multiple in units of minimum-width transistor areas, following the VPR
// model: area = 0.5 + 0.5*widthMult.
func TransistorArea(widthMult float64) float64 { return 0.5 + 0.5*widthMult }
