package circuit

import (
	"fmt"
	"math"

	"fpgaflow/internal/arch"
)

// This file reproduces the interconnect sizing study of paper §3.3 (Figs
// 8-10 and the tri-state buffer exploration): the Fig. 7 circuit drives a
// signal from a CLB output through a chain of routing wire segments joined
// by routing switches, and measures the energy-delay-area product as a
// function of switch width for different wire lengths and metal geometries.

// WireConfig selects the metal-3 geometry of a sweep.
type WireConfig struct {
	Name        string
	WidthMult   float64
	SpacingMult float64
}

// Paper's three configurations (Figs 8, 9, 10).
func MinWidthMinSpacing() WireConfig { return WireConfig{"min width, min spacing", 1, 1} }
func MinWidthDblSpacing() WireConfig { return WireConfig{"min width, double spacing", 1, 2} }
func DblWidthDblSpacing() WireConfig { return WireConfig{"double width, double spacing", 2, 2} }

// SweepWidths is the switch-width axis of Figs 8-10 (multiples of the
// minimum contactable width).
func SweepWidths() []float64 {
	return []float64{1, 2, 4, 6, 8, 10, 12, 16, 24, 32, 48, 64}
}

// WireLengths is the logical-length axis (CLBs spanned per segment).
func WireLengths() []int { return []int{1, 2, 4, 8} }

// SizingPoint is one point of a sweep.
type SizingPoint struct {
	SwitchWidth float64
	// Energy per transition of the whole Fig. 7 path, joules.
	Energy float64
	// Delay is the Elmore delay from driver to far end, seconds.
	Delay float64
	// Area is the switch area in minimum-width transistor areas.
	Area float64
	// EDA = Energy * Delay * Area, the paper's figure of merit.
	EDA float64
}

const (
	// fig7Segments is the number of wire segments in the Fig. 7 circuit
	// (a connection spanning four CLBs).
	fig7Segments = 4
	// parasiticSwitchesPerSegment counts the off-path routing switches and
	// output-pin pass transistors loading each wire (disjoint switch box
	// plus CLB pin connections, paper §3.3.1).
	parasiticSwitchesPerSegment = 1.0
	// diffusionShare is the effective number of width-scaled diffusion
	// capacitances each wire sees (series switch plus the reverse-biased
	// parasitics; sharing halves the raw count).
	diffusionShare = 0.8
	// driverWidthMult sizes the CLB output buffer feeding the path.
	driverWidthMult = 10.0
	// tileAreaBase approximates the fixed per-segment share of tile area
	// (CLB plus config SRAM) against which switch growth is weighed, in
	// minimum-width transistor areas.
	tileAreaBase = 25.0
)

// PassTransistorPoint evaluates one (config, wireLen, switchWidth) point of
// the pass-transistor sweep analytically: the Fig. 7 RC ladder with
// width-dependent switch resistance and diffusion loading.
func PassTransistorPoint(tech arch.Tech, cfg WireConfig, wireLen int, w float64) SizingPoint {
	rDrv := tech.RonMin / driverWidthMult
	rSw := tech.SwitchRon(w)
	// Each segment: wire capacitance for wireLen tiles plus the diffusion
	// of the series switch (both ends) and the parasitic attached switches.
	cSeg := tech.WireCap(float64(wireLen), cfg.WidthMult, cfg.SpacingMult) +
		diffusionShare*tech.SwitchCDiff(w)
	rWire := tech.WireRes(float64(wireLen), cfg.WidthMult)
	// Far-end load: the input buffer of the destination CLB.
	cLoad := 4 * tech.CGateMin

	// Elmore delay over the ladder.
	delay := 0.0
	rUp := rDrv
	for i := 0; i < fig7Segments; i++ {
		rUp += rSw + rWire/2
		delay += rUp * cSeg
		rUp += rWire / 2
	}
	delay += rUp * cLoad

	energy := tech.SwitchEnergy(float64(fig7Segments)*cSeg + cLoad)
	// Switch area: series switch + parasitic switches per segment; wire
	// metal does not add transistor area but the fixed tile area is
	// amortized per segment.
	area := float64(fig7Segments) * ((1 + parasiticSwitchesPerSegment) * arch.TransistorArea(w))
	area += tileAreaBase * float64(fig7Segments)
	return SizingPoint{
		SwitchWidth: w,
		Energy:      energy,
		Delay:       delay,
		Area:        area,
		EDA:         energy * delay * area,
	}
}

// PassTransistorSweep runs the sweep of Figs 8-10 for one wire geometry and
// logical length.
func PassTransistorSweep(tech arch.Tech, cfg WireConfig, wireLen int) []SizingPoint {
	pts := make([]SizingPoint, 0, len(SweepWidths()))
	for _, w := range SweepWidths() {
		pts = append(pts, PassTransistorPoint(tech, cfg, wireLen, w))
	}
	return pts
}

// OptimalWidth returns the switch width minimizing EDA in the sweep.
func OptimalWidth(pts []SizingPoint) float64 {
	best := pts[0]
	for _, p := range pts[1:] {
		if p.EDA < best.EDA {
			best = p
		}
	}
	return best.SwitchWidth
}

// NormalizeEDA scales a sweep so its minimum EDA is 1 (the paper's plots are
// relative).
func NormalizeEDA(pts []SizingPoint) []SizingPoint {
	min := math.Inf(1)
	for _, p := range pts {
		if p.EDA < min {
			min = p.EDA
		}
	}
	out := make([]SizingPoint, len(pts))
	for i, p := range pts {
		p.EDA /= min
		out[i] = p
	}
	return out
}

// TriStatePoint evaluates the tri-state buffer alternative (§3.3.2): each
// segment is driven by a two-stage buffer (minimum-width first stage for
// logic threshold adjustment, w-width second stage), so segments regenerate
// instead of accumulating resistance.
func TriStatePoint(tech arch.Tech, cfg WireConfig, wireLen int, w float64) SizingPoint {
	rBuf := tech.RonMin / w
	rDrv := tech.RonMin / driverWidthMult
	// Segment load: wire + next buffer's first-stage input + parasitic
	// off-state tri-state diffusion (two buffers per switch, one per
	// direction, paper §3.3).
	cSeg := tech.WireCap(float64(wireLen), cfg.WidthMult, cfg.SpacingMult) +
		tech.CGateMin + 1.5*tech.SwitchCDiff(w)
	// Internal node of each two-stage buffer.
	cInt := tech.CGateMin*w + tech.CDiffMin
	delay := rDrv * cSeg
	for i := 1; i < fig7Segments; i++ {
		delay += tech.RonMin*cInt + rBuf*cSeg // first stage (min) + second stage
	}
	delay += rBuf * 4 * tech.CGateMin
	energy := tech.SwitchEnergy(float64(fig7Segments)*cSeg + float64(fig7Segments-1)*cInt + 4*tech.CGateMin)
	// Two tri-state buffers (one per direction) replace each switch; each
	// has a min first stage and a w second stage, twice the transistors of
	// a pass switch.
	area := float64(fig7Segments) * 2 * (arch.TransistorArea(1) + 2*arch.TransistorArea(w))
	area += tileAreaBase * float64(fig7Segments)
	return SizingPoint{SwitchWidth: w, Energy: energy, Delay: delay, Area: area, EDA: energy * delay * area}
}

// TriStateSweep runs the buffer sweep; widths beyond 16x are excluded as in
// the paper ("energy dissipation becomes prohibitive beyond this size").
func TriStateSweep(tech arch.Tech, cfg WireConfig, wireLen int) []SizingPoint {
	var pts []SizingPoint
	for _, w := range SweepWidths() {
		if w > 16 {
			break
		}
		pts = append(pts, TriStatePoint(tech, cfg, wireLen, w))
	}
	return pts
}

// Fig8 returns the four-curve family of Fig. 8 (min width, min spacing).
func Fig8(tech arch.Tech) map[int][]SizingPoint { return sweepAll(tech, MinWidthMinSpacing()) }

// Fig9 returns Fig. 9 (min width, double spacing).
func Fig9(tech arch.Tech) map[int][]SizingPoint { return sweepAll(tech, MinWidthDblSpacing()) }

// Fig10 returns Fig. 10 (double width, double spacing).
func Fig10(tech arch.Tech) map[int][]SizingPoint { return sweepAll(tech, DblWidthDblSpacing()) }

func sweepAll(tech arch.Tech, cfg WireConfig) map[int][]SizingPoint {
	out := make(map[int][]SizingPoint, len(WireLengths()))
	for _, l := range WireLengths() {
		out[l] = PassTransistorSweep(tech, cfg, l)
	}
	return out
}

// ValidateSweep sanity-checks a sweep's physics: positive values, energy
// and area monotonically increasing with width, and delay improving when
// moving off the minimum width (at very large widths the switch's own
// diffusion loading may turn delay back up, which is physical).
func ValidateSweep(pts []SizingPoint) error {
	if len(pts) < 3 {
		return fmt.Errorf("circuit: sweep too short")
	}
	for i, p := range pts {
		if p.Energy <= 0 || p.Delay <= 0 || p.Area <= 0 {
			return fmt.Errorf("circuit: non-positive metrics at width %g", p.SwitchWidth)
		}
		if i > 0 {
			if p.Energy <= pts[i-1].Energy {
				return fmt.Errorf("circuit: energy not increasing at width %g", p.SwitchWidth)
			}
			if p.Area <= pts[i-1].Area {
				return fmt.Errorf("circuit: area not increasing at width %g", p.SwitchWidth)
			}
		}
	}
	if pts[1].Delay >= pts[0].Delay {
		return fmt.Errorf("circuit: widening the switch off minimum did not reduce delay")
	}
	return nil
}
