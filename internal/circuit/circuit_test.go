package circuit

import (
	"fmt"
	"testing"

	"fpgaflow/internal/arch"
)

func tech() arch.Tech { return arch.STM018() }

func TestInverterChain(t *testing.T) {
	c := New(tech())
	in := c.AddNode("in", 0)
	mid := c.AddNode("mid", 0)
	out := c.AddNode("out", 0)
	c.Inverter(1, in, mid)
	c.Inverter(1, mid, out)
	_ = in
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	c.Set("in", true)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if !c.Node("out").V || c.Node("mid").V {
		t.Fatalf("chain: mid=%v out=%v", c.Node("mid").V, c.Node("out").V)
	}
	if c.Energy <= 0 {
		t.Error("no energy recorded")
	}
	if c.Transitions("out") != 1 {
		t.Errorf("out transitions = %d", c.Transitions("out"))
	}
}

func TestNandGate(t *testing.T) {
	c := New(tech())
	a := c.AddNode("a", 0)
	b := c.AddNode("b", 0)
	o := c.AddNode("o", 0)
	c.NAND(1, a, b, o)
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ a, b, want bool }{
		{false, false, true}, {true, false, true}, {false, true, true}, {true, true, false},
	}
	for _, tc := range cases {
		c.Set("a", tc.a)
		c.Set("b", tc.b)
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
		if c.Node("o").V != tc.want {
			t.Errorf("nand(%v,%v) = %v", tc.a, tc.b, c.Node("o").V)
		}
	}
}

func TestTriStateHolds(t *testing.T) {
	c := New(tech())
	d := c.AddNode("d", 0)
	en := c.AddNode("en", 0)
	o := c.AddNode("o", 0)
	c.AddGate(TriInv, 1, []*Node{d}, en, o)
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	c.Set("en", true)
	c.Set("d", false)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if !c.Node("o").V {
		t.Fatal("tri-inv did not drive")
	}
	c.Set("en", false)
	c.Set("d", true) // must not propagate
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	if !c.Node("o").V {
		t.Fatal("disabled tri-inv changed its output")
	}
}

func TestEnergyProportionalToCap(t *testing.T) {
	c := New(tech())
	small := c.AddNode("small", 1e-15)
	big := c.AddNode("big", 10e-15)
	_ = small
	_ = big
	c.Set("small", true)
	eSmall := c.Energy
	c.ResetEnergy()
	c.Set("big", true)
	if c.Energy <= eSmall*5 {
		t.Errorf("energy not proportional to cap: %g vs %g", c.Energy, eSmall)
	}
}

func TestDETFFFunctional(t *testing.T) {
	for _, k := range AllDETFFs() {
		ok, err := checkDoubleEdgeCapture(tech(), k)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if !ok {
			t.Errorf("%s: failed double-edge capture", k)
		}
	}
}

func TestTable1Reproduction(t *testing.T) {
	rows, err := Table1(tech())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	byKind := map[DETFFKind]*DETFFResult{}
	for _, r := range rows {
		byKind[r.Kind] = r
		if !r.Functional {
			t.Errorf("%s not functional", r.Kind)
		}
		if r.Energy <= 0 || r.Delay <= 0 {
			t.Errorf("%s: E=%g D=%g", r.Kind, r.Energy, r.Delay)
		}
		// Plausibility: femtojoule energies, picosecond-to-nanosecond delays.
		if r.Energy < 1e-16 || r.Energy > 1e-12 {
			t.Errorf("%s: energy %g J implausible", r.Kind, r.Energy)
		}
		if r.Delay < 1e-12 || r.Delay > 2e-9 {
			t.Errorf("%s: delay %g s implausible", r.Kind, r.Delay)
		}
	}
	// Paper's conclusions: Llopis1 has the lowest total energy; Chung2 the
	// lowest energy-delay product; Llopis1 has the simplest structure.
	for k, r := range byKind {
		if k != Llopis1 && r.Energy <= byKind[Llopis1].Energy {
			t.Errorf("%s energy %g <= Llopis1 %g", k, r.Energy, byKind[Llopis1].Energy)
		}
		if k != Chung2 && r.EDP <= byKind[Chung2].EDP {
			t.Errorf("%s EDP %g <= Chung2 %g", k, r.EDP, byKind[Chung2].EDP)
		}
		if k != Llopis1 && r.Transistors < byKind[Llopis1].Transistors {
			t.Errorf("%s has fewer transistors than Llopis1", k)
		}
	}
}

func TestTable2Reproduction(t *testing.T) {
	rows, err := Table2(tech())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	single, gatedOn, gatedOff := rows[0].Energy, rows[1].Energy, rows[2].Energy
	// Paper: ~77% saving with enable low; small (~6%) penalty with enable
	// high. Assert the robust shape.
	if gatedOff >= 0.5*single {
		t.Errorf("idle gated energy %g not far below single %g", gatedOff, single)
	}
	if gatedOn <= single {
		t.Errorf("active gated energy %g should exceed single %g (gate overhead)", gatedOn, single)
	}
	if gatedOn > 1.6*single {
		t.Errorf("gate overhead too large: %g vs %g", gatedOn, single)
	}
}

func TestTable3Reproduction(t *testing.T) {
	rows, err := Table3(tech(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	idle, one, all := rows[0], rows[1], rows[2]
	// Idle: gating removes most of the local clock network energy (-83% in
	// the paper).
	if idle.GatedClock >= 0.4*idle.SingleClock {
		t.Errorf("idle: gated %g vs single %g", idle.GatedClock, idle.SingleClock)
	}
	// Active: gating costs extra (paper: +33% one on, +29% all on).
	if one.GatedClock <= one.SingleClock {
		t.Errorf("one on: gated %g should exceed single %g", one.GatedClock, one.SingleClock)
	}
	if all.GatedClock <= all.SingleClock {
		t.Errorf("all on: gated %g should exceed single %g", all.GatedClock, all.SingleClock)
	}
	if all.GatedClock > 1.6*all.SingleClock {
		t.Errorf("all on overhead too large: %g vs %g", all.GatedClock, all.SingleClock)
	}
	// Energy grows with activity in both styles.
	if !(idle.SingleClock < one.SingleClock && one.SingleClock < all.SingleClock) {
		t.Error("single clock energy not increasing with activity")
	}
	// Break-even idle probability in a sane band around the paper's 1/3.
	p, err := GatingBreakEven(rows)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 || p >= 0.8 {
		t.Errorf("break-even probability %g out of range", p)
	}
}

func TestPassTransistorSweepPhysics(t *testing.T) {
	for _, cfg := range []WireConfig{MinWidthMinSpacing(), MinWidthDblSpacing(), DblWidthDblSpacing()} {
		for _, l := range WireLengths() {
			pts := PassTransistorSweep(tech(), cfg, l)
			if err := ValidateSweep(pts); err != nil {
				t.Errorf("%s L=%d: %v", cfg.Name, l, err)
			}
		}
	}
}

func TestFig8to10Optima(t *testing.T) {
	// Paper's conclusions: the EDA optimum is ~10x minimum width for wire
	// lengths 1, 2 and 4 in every geometry, and substantially larger for
	// length 8.
	for _, fig := range []struct {
		name string
		data map[int][]SizingPoint
	}{
		{"fig8", Fig8(tech())}, {"fig9", Fig9(tech())}, {"fig10", Fig10(tech())},
	} {
		var shortOpt float64
		for _, l := range []int{1, 2, 4} {
			opt := OptimalWidth(fig.data[l])
			if opt < 6 || opt > 16 {
				t.Errorf("%s L=%d: optimum %g outside [6,16]", fig.name, l, opt)
			}
			if l == 1 {
				shortOpt = opt
			}
		}
		longOpt := OptimalWidth(fig.data[8])
		if longOpt < 16 {
			t.Errorf("%s L=8: optimum %g < 16", fig.name, longOpt)
		}
		if longOpt <= shortOpt {
			t.Errorf("%s: L=8 optimum %g not larger than L=1 optimum %g", fig.name, longOpt, shortOpt)
		}
	}
}

func TestDoubleSpacingImprovesEDA(t *testing.T) {
	// Paper §3.3.1: min width + double spacing beats min width + min
	// spacing at every point (lower coupling capacitance).
	t8 := tech()
	for _, l := range WireLengths() {
		minmin := PassTransistorSweep(t8, MinWidthMinSpacing(), l)
		mindbl := PassTransistorSweep(t8, MinWidthDblSpacing(), l)
		for i := range minmin {
			if mindbl[i].EDA >= minmin[i].EDA {
				t.Errorf("L=%d W=%g: double spacing EDA %g >= min spacing %g",
					l, minmin[i].SwitchWidth, mindbl[i].EDA, minmin[i].EDA)
			}
		}
	}
}

func TestNormalizeEDA(t *testing.T) {
	pts := PassTransistorSweep(tech(), MinWidthMinSpacing(), 1)
	norm := NormalizeEDA(pts)
	min := norm[0].EDA
	for _, p := range norm {
		if p.EDA < min {
			min = p.EDA
		}
	}
	if min != 1 {
		t.Errorf("normalized minimum = %g", min)
	}
}

func TestTriStateSweep(t *testing.T) {
	pts := TriStateSweep(tech(), MinWidthDblSpacing(), 1)
	for _, p := range pts {
		if p.SwitchWidth > 16 {
			t.Errorf("width %g beyond the paper's 16x cap", p.SwitchWidth)
		}
		if p.Energy <= 0 || p.Delay <= 0 || p.Area <= 0 {
			t.Errorf("bad point %+v", p)
		}
	}
	// Buffers cost roughly twice the area of pass transistors at the same
	// width (two per switch, two stages).
	pass := PassTransistorPoint(tech(), MinWidthDblSpacing(), 1, 10)
	buf := TriStatePoint(tech(), MinWidthDblSpacing(), 1, 10)
	if buf.Area <= pass.Area {
		t.Errorf("tri-state area %g <= pass transistor area %g", buf.Area, pass.Area)
	}
}

func TestPaperSelectionIsPassTransistorLen1(t *testing.T) {
	// §3.3.2: pass transistors with length-1 wires at min width double
	// spacing were selected. At the paper's 10x width, the pass transistor
	// must beat the tri-state buffer on energy for short wires.
	pass := PassTransistorPoint(tech(), MinWidthDblSpacing(), 1, 10)
	buf := TriStatePoint(tech(), MinWidthDblSpacing(), 1, 10)
	if pass.Energy >= buf.Energy {
		t.Errorf("pass transistor energy %g >= tri-state %g", pass.Energy, buf.Energy)
	}
}

func TestOscillationDetected(t *testing.T) {
	c := New(tech())
	a := c.AddNode("a", 0)
	b := c.AddNode("b", 0)
	c.Inverter(1, a, b)
	c.Inverter(1, b, a) // combinational loop: ring oscillator
	c.Set("a", true)
	// A two-inverter loop set inconsistently will oscillate; Run must bound.
	c.Node("b").V = true // force inconsistent state
	c.apply(c.Node("a"), false)
	if err := c.Run(c.Now + 1e-9); err == nil {
		// Either it settles (valid latch state) or errors; both acceptable,
		// but it must not hang. Reaching here means it settled.
		t.Log("loop settled into a stable state")
	}
}

func TestTransistorCount(t *testing.T) {
	c := New(tech())
	d := c.AddNode("d", 0)
	clk := c.AddNode("clk", 0)
	q := c.AddNode("q", 0)
	if err := BuildDETFF(c, Llopis1, "ff.", d, clk, q); err != nil {
		t.Fatal(err)
	}
	n := c.TransistorCount()
	if n < 10 || n > 40 {
		t.Errorf("Llopis1 transistors = %d", n)
	}
}

func TestLUTFunctional(t *testing.T) {
	// A 4-LUT configured as AND must compute AND for every input vector.
	c := New(tech())
	in := make([]*Node, 4)
	for i := range in {
		in[i] = c.AddNode("i"+string(rune('0'+i)), 0)
	}
	out := c.AddNode("out", 0)
	bits := make([]bool, 16)
	bits[15] = true
	if err := BuildLUT(c, "l.", 4, bits, in, out); err != nil {
		t.Fatal(err)
	}
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	for m := 0; m < 16; m++ {
		for i := 0; i < 4; i++ {
			c.Set("i"+string(rune('0'+i)), m&(1<<i) != 0)
		}
		if err := c.Settle(); err != nil {
			t.Fatal(err)
		}
		if c.Node("out").V != (m == 15) {
			t.Errorf("lut(%04b) = %v", m, c.Node("out").V)
		}
	}
}

func TestMeasureLUTGroundsTimingConstants(t *testing.T) {
	te := tech()
	res, err := MeasureLUT(te, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.WorstDelay <= 0 || res.AvgEnergy <= 0 {
		t.Fatalf("bad measurement %+v", res)
	}
	// The architecture's abstract LUTDelay must agree with the circuit
	// substrate within a factor of 3 (same order of magnitude).
	lo, hi := te.LUTDelay/3, te.LUTDelay*3
	if res.WorstDelay < lo || res.WorstDelay > hi {
		t.Errorf("circuit LUT delay %.0f ps vs arch constant %.0f ps (outside 3x band)",
			res.WorstDelay*1e12, te.LUTDelay*1e12)
	}
	// Bigger LUTs are slower and hungrier.
	res6, err := MeasureLUT(te, 6)
	if err != nil {
		t.Fatal(err)
	}
	if res6.WorstDelay <= res.WorstDelay {
		t.Errorf("6-LUT delay %v <= 4-LUT %v", res6.WorstDelay, res.WorstDelay)
	}
	if res6.Transistors <= res.Transistors {
		t.Error("6-LUT not larger than 4-LUT")
	}
}

func TestEventModelMatchesElmoreOnFig7(t *testing.T) {
	// Build the Fig. 7 pass-transistor ladder in the event-driven simulator
	// and compare its end-to-end delay with the analytical Elmore model
	// behind Figs 8-10: the two substrates must agree within 3x.
	te := tech()
	cfg := MinWidthDblSpacing()
	const wMult = 10.0
	analytic := PassTransistorPoint(te, cfg, 1, wMult).Delay

	c := New(te)
	drv := c.AddNode("drv", 0)
	prev := c.AddNode("buf", 0)
	c.AddGate(Inv, driverWidthMult, []*Node{drv}, nil, prev)
	en := c.AddNode("en", 0)
	en.V = true
	wireCap := te.WireCap(1, cfg.WidthMult, cfg.SpacingMult) + diffusionShare*te.SwitchCDiff(wMult)
	var last *Node
	for i := 0; i < fig7Segments; i++ {
		seg := c.AddNode(fmt.Sprintf("seg%d", i), wireCap)
		c.AddGate(TGate, wMult, []*Node{prev}, en, seg)
		prev = seg
		last = seg
	}
	if err := c.Init(); err != nil {
		t.Fatal(err)
	}
	start := c.Now + 1e-9
	c.Now = start
	c.Set("drv", true)
	if err := c.Settle(); err != nil {
		t.Fatal(err)
	}
	lc, ok := c.LastChange[last.Name]
	if !ok || lc <= start {
		t.Fatal("far end never switched")
	}
	event := lc - start
	ratio := event / analytic
	if ratio < 1.0/3 || ratio > 3 {
		t.Errorf("event-driven delay %.0f ps vs Elmore %.0f ps (ratio %.2f outside [1/3,3])",
			event*1e12, analytic*1e12, ratio)
	}
}
