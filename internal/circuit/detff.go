package circuit

import (
	"fmt"

	"fpgaflow/internal/arch"
)

// DETFFKind selects one of the five double-edge-triggered flip-flop designs
// compared in Table 1 of the paper.
type DETFFKind int

const (
	// Chung1 is the transmission-gate DETFF of Lo/Chung/Sachdev with the
	// type-(a) tri-state feedback inverter.
	Chung1 DETFFKind = iota
	// Chung2 is the same structure with the type-(b) tri-state inverter
	// and wider data path (fast, best energy-delay product).
	Chung2
	// Llopis1 is the low-power C2MOS DETFF of Llopis/Sachdev with dynamic
	// storage: the fewest clocked transistors (lowest energy, chosen by
	// the paper).
	Llopis1
	// Llopis2 staticizes Llopis1 with weak feedback tri-states.
	Llopis2
	// Strollo is the pulse-generator DETFF of Strollo/Napoli/Cimino.
	Strollo
)

var detffNames = map[DETFFKind]string{
	Chung1: "Chung 1", Chung2: "Chung 2", Llopis1: "Llopis 1", Llopis2: "Llopis 2", Strollo: "Strollo",
}

func (k DETFFKind) String() string { return detffNames[k] }

// AllDETFFs lists the designs in the paper's Table 1 order.
func AllDETFFs() []DETFFKind { return []DETFFKind{Chung1, Chung2, Llopis1, Llopis2, Strollo} }

// BuildDETFF instantiates the flip-flop between existing d, clk and q nodes.
// Internal node names are prefixed.
func BuildDETFF(c *Circuit, kind DETFFKind, prefix string, d, clk, q *Node) error {
	n := func(s string) *Node { return c.AddNode(prefix+s, 0) }
	switch kind {
	case Chung1, Chung2:
		// Chung2 uses the type-(b) tri-state feedback and taps the storage
		// nodes directly through a widened output pass-mux (no extra
		// inverter stage): noticeably faster clock-to-Q at an energy
		// premium, which gives it the best energy-delay product in Table 1.
		a1, a2 := n("a1"), n("a2")
		b1, b2 := n("b1"), n("b2")
		// Latch A: transparent while clk=0, holds while clk=1.
		c.AddGate(TGateN, 1, []*Node{d}, clk, a1)
		c.AddGate(Inv, 1, []*Node{a1}, nil, a2)
		if kind == Chung1 {
			// Type (a) feedback: clocked tri-state inverter.
			c.AddGate(TriInv, 1, []*Node{a2}, clk, a1)
		} else {
			// Type (b) feedback: inverter + clocked transmission gate.
			a3 := n("a3")
			c.AddGate(Inv, 1, []*Node{a2}, nil, a3)
			c.AddGate(TGate, 1, []*Node{a3}, clk, a1)
		}
		// Latch B: transparent while clk=1.
		c.AddGate(TGate, 1, []*Node{d}, clk, b1)
		c.AddGate(Inv, 1, []*Node{b1}, nil, b2)
		if kind == Chung1 {
			c.AddGate(TriInvN, 1, []*Node{b2}, clk, b1)
		} else {
			b3 := n("b3")
			c.AddGate(Inv, 1, []*Node{b2}, nil, b3)
			c.AddGate(TGateN, 1, []*Node{b3}, clk, b1)
		}
		// Output: pick the opaque latch.
		if kind == Chung1 {
			qb := n("qb")
			c.AddGate(Mux2, 1, []*Node{b2, a2}, clk, qb)
			c.AddGate(Inv, 1, []*Node{qb}, nil, q)
		} else {
			c.AddGate(Mux2, 2, []*Node{b1, a1}, clk, q)
		}

	case Llopis1:
		// Two C2MOS branches with dynamic storage, minimal clock load.
		a1, b1 := n("a1"), n("b1")
		qb := n("qb")
		c.AddGate(TriInvN, 1, []*Node{d}, clk, a1) // drives while clk=0
		c.AddGate(TriInv, 1, []*Node{d}, clk, b1)  // drives while clk=1
		c.AddGate(Mux2, 1, []*Node{b1, a1}, clk, qb)
		c.AddGate(Inv, 1, []*Node{qb}, nil, q)

	case Llopis2:
		a1, b1 := n("a1"), n("b1")
		qb := n("qb")
		c.AddGate(TriInvN, 1, []*Node{d}, clk, a1)
		c.AddGate(TriInv, 1, []*Node{d}, clk, b1)
		// Staticizing feedback (testability variant): weak keepers at half
		// the minimum drive strength.
		af, bf := n("af"), n("bf")
		c.AddGate(Inv, 0.5, []*Node{a1}, nil, af)
		c.AddGate(TriInv, 0.5, []*Node{af}, clk, a1)
		c.AddGate(Inv, 0.5, []*Node{b1}, nil, bf)
		c.AddGate(TriInvN, 0.5, []*Node{bf}, clk, b1)
		c.AddGate(Mux2, 1, []*Node{b1, a1}, clk, qb)
		c.AddGate(Inv, 1, []*Node{qb}, nil, q)

	case Strollo:
		// Pulse generator: pulse = clk XOR delayed(clk), one latch.
		d1, d2, d3 := n("d1"), n("d2"), n("d3")
		c.AddGate(Inv, 1, []*Node{clk}, nil, d1)
		c.AddGate(Inv, 1, []*Node{d1}, nil, d2)
		c.AddGate(Inv, 1, []*Node{d2}, nil, d3)
		// XOR from four NAND gates: pulses on both clock edges.
		x1, x2, x3, pulse := n("x1"), n("x2"), n("x3"), n("pulse")
		c.AddGate(Nand2, 1, []*Node{clk, d3}, nil, x1)
		c.AddGate(Nand2, 1, []*Node{clk, x1}, nil, x2)
		c.AddGate(Nand2, 1, []*Node{d3, x1}, nil, x3)
		c.AddGate(Nand2, 1, []*Node{x2, x3}, nil, pulse)
		// Latch transparent during the brief pulse after each edge.
		s1, s2 := n("s1"), n("s2")
		c.AddGate(TGate, 1, []*Node{d}, pulse, s1)
		c.AddGate(Inv, 1, []*Node{s1}, nil, s2)
		c.AddGate(TriInvN, 1, []*Node{s2}, pulse, s1)
		c.AddGate(Inv, 1, []*Node{s2}, nil, q)

	default:
		return fmt.Errorf("circuit: unknown DETFF kind %d", int(kind))
	}
	return nil
}

// DETFFResult is one row of Table 1.
type DETFFResult struct {
	Kind DETFFKind
	// Energy is the total energy over the Fig. 4 input sequence, joules.
	Energy float64
	// Delay is the worst-case clock-edge-to-Q delay, seconds.
	Delay float64
	// EDP is Energy * Delay.
	EDP float64
	// Transistors counts the cell's devices.
	Transistors int
	// Functional is false if the FF failed double-edge capture checks.
	Functional bool
}

// detffHarness builds one FF with its clock/data drive and returns the sim.
func detffHarness(tech arch.Tech, kind DETFFKind) (*Circuit, error) {
	c := New(tech)
	d := c.AddNode("d", 0)
	clk := c.AddNode("clk", 0)
	q := c.AddNode("q", tech.CGateMin*4) // output load: next-stage gates
	if err := BuildDETFF(c, kind, "ff.", d, clk, q); err != nil {
		return nil, err
	}
	if err := c.Init(); err != nil {
		return nil, err
	}
	return c, nil
}

// fig4Sequence drives the paper's Fig. 4 stimulus: a regular clock with the
// data input exercising every transition combination (change before rising
// edge, before falling edge, stable high, stable low). It returns the times
// of every clock edge.
func fig4Sequence(c *Circuit, period float64) ([]float64, error) {
	dPattern := []int{1, 1, 0, 1, 0, 0, 1, 0, 1, 1, 0, 0, 1, 0, 1, 0}
	var edges []float64
	t := c.Now
	for i, dv := range dPattern {
		// Data changes at the half-period midpoint before the clock edge.
		c.Set("d", dv == 1)
		if err := c.Run(t + period/4); err != nil {
			return nil, err
		}
		c.Now = t + period/4
		c.Set("clk", i%2 == 0) // rising on even steps, falling on odd
		edges = append(edges, c.Now)
		if err := c.Run(t + period/2); err != nil {
			return nil, err
		}
		t += period / 2
		c.Now = t
	}
	return edges, nil
}

// MeasureDETFF runs the Table 1 experiment for one design.
func MeasureDETFF(tech arch.Tech, kind DETFFKind) (*DETFFResult, error) {
	c, err := detffHarness(tech, kind)
	if err != nil {
		return nil, err
	}
	// Initialize: run one full clock cycle to set internal state, then
	// clear the energy counter.
	c.Set("d", false)
	c.Set("clk", false)
	if err := c.Settle(); err != nil {
		return nil, err
	}
	c.Set("clk", true)
	if err := c.Settle(); err != nil {
		return nil, err
	}
	c.Set("clk", false)
	if err := c.Settle(); err != nil {
		return nil, err
	}
	c.ResetEnergy()

	const period = 4e-9 // 250 MHz clock
	qBefore := c.Node("q").V
	edges, err := fig4Sequence(c, period)
	if err != nil {
		return nil, err
	}
	res := &DETFFResult{Kind: kind, Energy: c.Energy, Transistors: c.TransistorCount(), Functional: true}

	// Worst-case clk->q delay: for each edge where q changed after it,
	// measure the settle time.
	qChanges := c.Transitions("q")
	_ = qBefore
	if qChanges == 0 {
		res.Functional = false
	}
	for _, et := range edges {
		if lc, ok := c.LastChange["q"]; ok && lc > et && lc-et < period/2 {
			if d := lc - et; d > res.Delay {
				res.Delay = d
			}
		}
	}
	// Separate precise delay measurement: single rising and falling edge
	// with opposing data.
	dmax, err := worstCaseDelay(tech, kind)
	if err != nil {
		return nil, err
	}
	if dmax > res.Delay {
		res.Delay = dmax
	}
	res.EDP = res.Energy * res.Delay

	// Functional check: q must track d at every clock edge.
	ok, err := checkDoubleEdgeCapture(tech, kind)
	if err != nil {
		return nil, err
	}
	res.Functional = res.Functional && ok
	return res, nil
}

// worstCaseDelay measures clk-edge-to-q over the four edge/data cases.
func worstCaseDelay(tech arch.Tech, kind DETFFKind) (float64, error) {
	worst := 0.0
	for _, rising := range []bool{true, false} {
		for _, dv := range []bool{true, false} {
			c, err := detffHarness(tech, kind)
			if err != nil {
				return 0, err
			}
			c.Set("clk", !rising)
			c.Set("d", !dv)
			if err := c.Settle(); err != nil {
				return 0, err
			}
			// Let the transparent latch capture the opposite value, then
			// flip d and clock it in.
			c.Set("d", dv)
			if err := c.Settle(); err != nil {
				return 0, err
			}
			start := c.Now + 1e-9
			c.Now = start
			c.Set("clk", rising)
			if err := c.Settle(); err != nil {
				return 0, err
			}
			if lc, ok := c.LastChange["q"]; ok && lc > start {
				if d := lc - start; d > worst {
					worst = d
				}
			}
		}
	}
	return worst, nil
}

// checkDoubleEdgeCapture verifies q equals the d value present at each clock
// edge, for both edges.
func checkDoubleEdgeCapture(tech arch.Tech, kind DETFFKind) (bool, error) {
	c, err := detffHarness(tech, kind)
	if err != nil {
		return false, err
	}
	c.Set("clk", false)
	c.Set("d", false)
	if err := c.Settle(); err != nil {
		return false, err
	}
	pattern := []bool{true, false, true, true, false, true, false, false}
	clk := false
	for _, dv := range pattern {
		c.Set("d", dv)
		if err := c.Settle(); err != nil {
			return false, err
		}
		clk = !clk
		c.Set("clk", clk)
		if err := c.Settle(); err != nil {
			return false, err
		}
		if c.Node("q").V != dv {
			return false, nil
		}
	}
	return true, nil
}

// Table1 reproduces the paper's Table 1: energy, delay and energy-delay
// product of the five DETFF designs.
func Table1(tech arch.Tech) ([]*DETFFResult, error) {
	var out []*DETFFResult
	for _, k := range AllDETFFs() {
		r, err := MeasureDETFF(tech, k)
		if err != nil {
			return nil, fmt.Errorf("detff %s: %w", k, err)
		}
		out = append(out, r)
	}
	return out, nil
}
