// Package circuit is the transistor-level substrate of the reproduction: an
// event-driven switch/gate-level simulator with per-node capacitance,
// RC-derived gate delays and switched-capacitance energy accounting,
// calibrated to the 0.18 um process constants in internal/arch. It stands in
// for the paper's Cadence/STM 0.18 um simulations and regenerates Tables 1-3
// (DETFF selection, clock gating at BLE and CLB level) and Figures 8-10
// (routing switch sizing vs. wire geometry).
package circuit

import (
	"fmt"
	"sort"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/obs"
)

// Node is an electrical net with a lumped capacitance.
type Node struct {
	Name string
	// Cap is the total capacitance on the node in farads (gate loads are
	// added automatically as gates attach).
	Cap float64
	// V is the current logic value.
	V bool

	id     int
	fanout []int // gate indices
}

// GateKind enumerates the primitive cells.
type GateKind int

const (
	// Inv is a static CMOS inverter.
	Inv GateKind = iota
	// Nand2 is a 2-input NAND.
	Nand2
	// Nor2 is a 2-input NOR.
	Nor2
	// TriInv is a tri-state inverter: out = !in when en=1, else hold
	// (high-impedance keeps the node value).
	TriInv
	// TriInvN is the complementary-enable tri-state inverter (conducts when
	// en=0), the second tri-state type of the paper's Fig. 3.
	TriInvN
	// TGate is a transmission gate passing in -> out when en=1.
	TGate
	// TGateN passes when en=0.
	TGateN
	// Mux2 drives out = s ? b : a.
	Mux2
)

// Gate is one primitive cell instance.
type Gate struct {
	Kind GateKind
	// In holds the data inputs (1 for Inv/TriInv/TGate, 2 for Nand2/Nor2,
	// 2 for Mux2: a, b).
	In []*Node
	// En is the enable/clock input for tri-state and transmission gates,
	// and the select for Mux2.
	En  *Node
	Out *Node
	// W is the transistor width in multiples of minimum.
	W float64
}

// Circuit is a gate network plus simulation state.
type Circuit struct {
	Tech   arch.Tech
	nodes  []*Node
	gates  []*Gate
	byName map[string]*Node

	// Energy accumulates C*Vdd^2 per node transition.
	Energy float64
	// Now is the current simulation time in seconds.
	Now float64

	queue   eventQueue
	seq     int
	pending map[int]*event // latest scheduled event per node
	// LastChange records the most recent transition time per node.
	LastChange  map[string]float64
	transitions map[string]int
}

// event is a scheduled node value change.
type event struct {
	t    float64
	seq  int
	node *Node
	v    bool
	dead bool
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)  { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) push(e *event) { *q = append(*q, e); up(*q, len(*q)-1) }
func (q *eventQueue) pop() *event {
	old := *q
	e := old[0]
	n := len(old)
	old[0] = old[n-1]
	*q = old[:n-1]
	if len(*q) > 0 {
		down(*q, 0)
	}
	return e
}

func up(q eventQueue, i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !q.Less(i, p) {
			break
		}
		q.Swap(i, p)
		i = p
	}
}

func down(q eventQueue, i int) {
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < len(q) && q.Less(l, m) {
			m = l
		}
		if r < len(q) && q.Less(r, m) {
			m = r
		}
		if m == i {
			return
		}
		q.Swap(i, m)
		i = m
	}
}

// New creates an empty circuit on the given technology.
func New(tech arch.Tech) *Circuit {
	return &Circuit{
		Tech:        tech,
		byName:      make(map[string]*Node),
		pending:     make(map[int]*event),
		LastChange:  make(map[string]float64),
		transitions: make(map[string]int),
	}
}

// AddNode creates a named node with the given extra (wire) capacitance.
func (c *Circuit) AddNode(name string, wireCap float64) *Node {
	if _, dup := c.byName[name]; dup {
		panic(fmt.Sprintf("circuit: duplicate node %q", name))
	}
	n := &Node{Name: name, Cap: wireCap, id: len(c.nodes)}
	c.nodes = append(c.nodes, n)
	c.byName[name] = n
	return n
}

// Node returns a node by name.
func (c *Circuit) Node(name string) *Node { return c.byName[name] }

// AddGate instantiates a primitive. Input gate capacitance (scaled by width)
// is added to the input and enable nodes; output diffusion capacitance to
// the output node.
func (c *Circuit) AddGate(kind GateKind, w float64, in []*Node, en, out *Node) *Gate {
	if w <= 0 {
		w = 1
	}
	g := &Gate{Kind: kind, In: in, En: en, Out: out, W: w}
	gi := len(c.gates)
	c.gates = append(c.gates, g)
	cg := c.Tech.CGateMin * w
	for _, n := range in {
		n.Cap += cg
		n.fanout = append(n.fanout, gi)
	}
	if en != nil {
		// Enable typically drives two transistor gates (N and P).
		en.Cap += 2 * cg
		en.fanout = append(en.fanout, gi)
	}
	out.Cap += c.Tech.CDiffMin * w
	return g
}

// Convenience constructors.
func (c *Circuit) Inverter(w float64, in, out *Node) *Gate {
	return c.AddGate(Inv, w, []*Node{in}, nil, out)
}
func (c *Circuit) NAND(w float64, a, b, out *Node) *Gate {
	return c.AddGate(Nand2, w, []*Node{a, b}, nil, out)
}

// delay returns the gate's propagation delay: output resistance (scaled by
// width) times total output load.
func (c *Circuit) delay(g *Gate) float64 {
	r := c.Tech.RonMin / g.W
	switch g.Kind {
	case Nand2, Nor2:
		r *= 1.4 // stacked transistors
	case TriInv, TriInvN:
		r *= 1.3
	case TGate, TGateN:
		// Unbuffered pass chains suffer body effect and degraded swing;
		// the effective resistance is well above a driven inverter's.
		r *= 2.0
	}
	return r * g.Out.Cap
}

// eval computes the gate's output for current input values; drive=false
// means high impedance (keep node value).
func (g *Gate) eval() (v, drive bool) {
	switch g.Kind {
	case Inv:
		return !g.In[0].V, true
	case Nand2:
		return !(g.In[0].V && g.In[1].V), true
	case Nor2:
		return !(g.In[0].V || g.In[1].V), true
	case TriInv:
		if g.En.V {
			return !g.In[0].V, true
		}
		return false, false
	case TriInvN:
		if !g.En.V {
			return !g.In[0].V, true
		}
		return false, false
	case TGate:
		if g.En.V {
			return g.In[0].V, true
		}
		return false, false
	case TGateN:
		if !g.En.V {
			return g.In[0].V, true
		}
		return false, false
	case Mux2:
		if g.En.V {
			return g.In[1].V, true
		}
		return g.In[0].V, true
	}
	return false, false
}

// schedule queues a value change on a node after delay d.
func (c *Circuit) schedule(n *Node, v bool, d float64) {
	t := c.Now + d
	if prev, ok := c.pending[n.id]; ok {
		if prev.v == v {
			return // already heading there
		}
		prev.dead = true // inertial cancellation
		delete(c.pending, n.id)
	}
	if v == n.V {
		return
	}
	c.seq++
	e := &event{t: t, seq: c.seq, node: n, v: v}
	c.pending[n.id] = e
	c.queue.push(e)
}

// Set forces an input node to a value now (no delay, counts energy).
func (c *Circuit) Set(name string, v bool) {
	n := c.byName[name]
	if n == nil {
		panic("circuit: unknown node " + name)
	}
	if n.V == v {
		return
	}
	c.apply(n, v)
}

func (c *Circuit) apply(n *Node, v bool) {
	if n.V == v {
		return
	}
	n.V = v
	c.Energy += n.Cap * c.Tech.Vdd * c.Tech.Vdd / 2 // per-edge: C*V^2/2 average
	c.LastChange[n.Name] = c.Now
	c.transitions[n.Name]++
	for _, gi := range n.fanout {
		g := c.gates[gi]
		v, drive := g.eval()
		if drive {
			c.schedule(g.Out, v, c.delay(g))
		}
	}
}

// Init establishes a consistent initial state: every gate is evaluated and
// outputs settle, then energy and transition counters are cleared. Call
// after construction and initial input Sets, before measuring.
func (c *Circuit) Init() error {
	for _, g := range c.gates {
		v, drive := g.eval()
		if drive {
			c.schedule(g.Out, v, c.delay(g))
		}
	}
	if err := c.Settle(); err != nil {
		return err
	}
	c.ResetEnergy()
	c.transitions = make(map[string]int)
	c.LastChange = make(map[string]float64)
	return nil
}

// Run advances simulation until the event queue drains or the time limit.
// Applied events report to the process-global observability trace as
// circuit.events.
func (c *Circuit) Run(until float64) error {
	steps := 0
	defer func() { obs.C("circuit.events").Add(int64(steps)) }()
	for len(c.queue) > 0 {
		e := c.queue.pop()
		if e.dead {
			continue
		}
		delete(c.pending, e.node.id)
		if e.t > until {
			return fmt.Errorf("circuit: simulation exceeded %g s (oscillation?)", until)
		}
		c.Now = e.t
		c.apply(e.node, e.v)
		steps++
		if steps > 1_000_000 {
			return fmt.Errorf("circuit: event limit reached (oscillation)")
		}
	}
	return nil
}

// Settle runs with a generous time bound relative to now.
func (c *Circuit) Settle() error { return c.Run(c.Now + 1e-3) }

// Transitions returns the transition count of a node since construction.
func (c *Circuit) Transitions(name string) int { return c.transitions[name] }

// ResetEnergy zeroes the energy accumulator (e.g. after initialization).
func (c *Circuit) ResetEnergy() { c.Energy = 0 }

// NodeNames returns all node names, sorted.
func (c *Circuit) NodeNames() []string {
	names := make([]string, 0, len(c.nodes))
	for _, n := range c.nodes {
		names = append(names, n.Name)
	}
	sort.Strings(names)
	return names
}

// TransistorCount reports the total transistors in the circuit.
func (c *Circuit) TransistorCount() int {
	total := 0
	for _, g := range c.gates {
		switch g.Kind {
		case Inv:
			total += 2
		case Nand2, Nor2:
			total += 4
		case TriInv, TriInvN:
			total += 4
		case TGate, TGateN:
			total += 2
		case Mux2:
			total += 6
		}
	}
	return total
}
