package circuit

import (
	"fmt"

	"fpgaflow/internal/arch"
)

// This file realizes the paper's Fig. 2: the K-input LUT built as an
// SRAM-driven pass-transistor multiplexer tree with minimum-sized devices.
// Measuring its delay and energy grounds the architecture-level timing
// constants (arch.Tech.LUTDelay) in the same circuit substrate that the
// DETFF and interconnect experiments use.

// BuildLUT builds a K-input LUT: 2^K configuration nodes (SRAM cell
// outputs, modelled as driven constants) selected by a binary tree of
// transmission gates controlled by the inputs, with an output buffer.
// bits[m] is the configured value for input assignment m (input 0 = LSB).
func BuildLUT(c *Circuit, prefix string, k int, bits []bool, in []*Node, out *Node) error {
	if k < 1 || k > 6 {
		return fmt.Errorf("circuit: LUT size %d out of range", k)
	}
	if len(bits) != 1<<uint(k) || len(in) != k {
		return fmt.Errorf("circuit: LUT wants %d bits and %d inputs", 1<<uint(k), k)
	}
	// Complemented selects for the N-side gates.
	nin := make([]*Node, k)
	for i, input := range in {
		nin[i] = c.AddNode(fmt.Sprintf("%sinb%d", prefix, i), 0)
		c.Inverter(1, input, nin[i])
	}
	// Leaf nodes: the SRAM cell contents.
	level := make([]*Node, len(bits))
	for m := range bits {
		n := c.AddNode(fmt.Sprintf("%ss%d", prefix, m), 0)
		n.V = bits[m]
		level[m] = n
	}
	// Mux tree: stage i selects on input i; pairs (m, m+2^i) merge.
	for i := 0; i < k; i++ {
		next := make([]*Node, len(level)/2)
		for j := range next {
			m := c.AddNode(fmt.Sprintf("%sm%d_%d", prefix, i, j), 0)
			// in[i]=0 passes the even branch, =1 the odd branch.
			c.AddGate(TGateN, 1, []*Node{level[2*j]}, in[i], m)
			c.AddGate(TGate, 1, []*Node{level[2*j+1]}, in[i], m)
			next[j] = m
		}
		level = next
	}
	// Output buffer restores the degraded pass-transistor level.
	mid := c.AddNode(prefix+"qb", 0)
	c.Inverter(1, level[0], mid)
	c.AddGate(Inv, 2, []*Node{mid}, nil, out)
	return nil
}

// LUTResult reports the measured LUT characteristics.
type LUTResult struct {
	K int
	// WorstDelay is the slowest input-to-output transition observed.
	WorstDelay float64
	// AvgEnergy is the mean energy per input transition.
	AvgEnergy float64
	// Transistors counts the cell's devices.
	Transistors int
}

// MeasureLUT characterizes a K-input LUT configured as a parity function
// (every input change flips the output: the worst case for both delay and
// energy).
func MeasureLUT(tech arch.Tech, k int) (*LUTResult, error) {
	c := New(tech)
	in := make([]*Node, k)
	for i := range in {
		in[i] = c.AddNode(fmt.Sprintf("i%d", i), 0)
	}
	out := c.AddNode("out", tech.CGateMin*4)
	bits := make([]bool, 1<<uint(k))
	for m := range bits {
		ones := 0
		for b := 0; b < k; b++ {
			ones += m >> b & 1
		}
		bits[m] = ones%2 == 1
	}
	if err := BuildLUT(c, "lut.", k, bits, in, out); err != nil {
		return nil, err
	}
	if err := c.Init(); err != nil {
		return nil, err
	}
	res := &LUTResult{K: k, Transistors: c.TransistorCount()}
	transitions := 0
	for i := 0; i < k; i++ {
		for _, v := range []bool{true, false} {
			start := c.Now + 1e-9
			c.Now = start
			before := c.Energy
			c.Set(fmt.Sprintf("i%d", i), v)
			if err := c.Settle(); err != nil {
				return nil, err
			}
			if lc, ok := c.LastChange["out"]; ok && lc > start {
				if d := lc - start; d > res.WorstDelay {
					res.WorstDelay = d
				}
			}
			res.AvgEnergy += c.Energy - before
			transitions++
		}
	}
	res.AvgEnergy /= float64(transitions)
	if res.WorstDelay == 0 {
		return nil, fmt.Errorf("circuit: LUT output never switched")
	}
	return res, nil
}
