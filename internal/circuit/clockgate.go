package circuit

import (
	"fmt"

	"fpgaflow/internal/arch"
)

// This file reproduces the clock-gating experiments of the paper:
// Table 2 (single vs. gated clock at BLE level, Fig. 5) and Table 3
// (single vs. gated clock at CLB level, Fig. 6). The flip-flop is the
// Llopis-1 DETFF selected in Section 3.

// bleClockHarness builds one BLE's clock path: an inverter chain modelling
// the clock driver (the paper's shaded inverters measure the gate's input
// capacitance effect), optionally a NAND clock gate, and the flip-flop.
func bleClockHarness(tech arch.Tech, gated bool) (*Circuit, error) {
	c := New(tech)
	clkIn := c.AddNode("clk_in", 0)
	n1 := c.AddNode("n1", 0)
	n2 := c.AddNode("n2", 0)
	c.Inverter(2, clkIn, n1)
	c.Inverter(2, n1, n2)
	d := c.AddNode("d", 0)
	q := c.AddNode("q", tech.CGateMin*4)
	var ffClk *Node
	if gated {
		en := c.AddNode("enable", 0)
		ng := c.AddNode("nand_out", 0)
		nb := c.AddNode("ff_clk", 0)
		c.NAND(2, n2, en, ng)
		c.Inverter(2, ng, nb) // restore clock polarity
		ffClk = nb
	} else {
		ffClk = c.AddNode("ff_clk", 0)
		c.Inverter(2, n2, ffClk)
	}
	if err := BuildDETFF(c, Llopis1, "ff.", d, ffClk, q); err != nil {
		return nil, err
	}
	return c, nil // caller sets enable, then Init
}

// Table2Row is one condition of the BLE-level experiment.
type Table2Row struct {
	Config string
	// Enable is meaningful for the gated rows.
	Enable bool
	// Energy is the average energy for one positive plus one negative
	// output transition worth of clocking, joules.
	Energy float64
}

// Table2 reproduces the paper's Table 2: energy of the single-clock BLE
// versus the gated-clock BLE with enable high and low.
func Table2(tech arch.Tech) ([]*Table2Row, error) {
	single, err := measureBLEClock(tech, false, true)
	if err != nil {
		return nil, err
	}
	gatedOn, err := measureBLEClock(tech, true, true)
	if err != nil {
		return nil, err
	}
	gatedOff, err := measureBLEClock(tech, true, false)
	if err != nil {
		return nil, err
	}
	return []*Table2Row{
		{Config: "single clock", Enable: true, Energy: single},
		{Config: "gated clock", Enable: true, Energy: gatedOn},
		{Config: "gated clock", Enable: false, Energy: gatedOff},
	}, nil
}

// measureBLEClock runs two full clock cycles with the data toggling so the
// output makes one positive and one negative transition (when enabled), and
// returns the average energy per output-transition pair.
func measureBLEClock(tech arch.Tech, gated, enable bool) (float64, error) {
	c, err := bleClockHarness(tech, gated)
	if err != nil {
		return 0, err
	}
	if gated {
		c.Set("enable", enable)
	}
	if err := c.Init(); err != nil {
		return 0, err
	}
	const half = 2e-9
	// Two cycles: d goes 1 (q rises on an edge), then 0 (q falls). An idle
	// BLE's data input is static: its own LUT output is not switching.
	pattern := []bool{true, true, false, false}
	clk := false
	for _, dv := range pattern {
		if !gated || enable {
			c.Set("d", dv)
		}
		if err := c.Run(c.Now + half/2); err != nil {
			return 0, err
		}
		c.Now += half / 2
		clk = !clk
		c.Set("clk_in", clk)
		if err := c.Run(c.Now + half/2); err != nil {
			return 0, err
		}
		c.Now += half / 2
	}
	// Average over the two cycles -> energy per (positive+negative) pair.
	return c.Energy / 2, nil
}

// Table3Row is one condition of the CLB-level experiment.
type Table3Row struct {
	Condition string
	// ActiveFFs is how many of the N flip-flops have their BLE enable high.
	ActiveFFs int
	// SingleClock and GatedClock are the per-cycle energies of the two
	// clock network styles, joules.
	SingleClock float64
	GatedClock  float64
}

// Table3 reproduces the paper's Table 3: the CLB-level clock gate versus a
// plain buffer for a cluster of n BLEs with all flip-flops idle, one
// active, and all active.
func Table3(tech arch.Tech, n int) ([]*Table3Row, error) {
	if n < 1 {
		return nil, fmt.Errorf("circuit: cluster of %d FFs", n)
	}
	conditions := []struct {
		name   string
		active int
	}{
		{`all F/Fs "OFF"`, 0},
		{`one F/F "ON"`, 1},
		{`all F/Fs "ON"`, n},
	}
	var rows []*Table3Row
	for _, cond := range conditions {
		single, err := measureCLBClock(tech, n, cond.active, false)
		if err != nil {
			return nil, err
		}
		gated, err := measureCLBClock(tech, n, cond.active, true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, &Table3Row{
			Condition: cond.name, ActiveFFs: cond.active,
			SingleClock: single, GatedClock: gated,
		})
	}
	return rows, nil
}

// GatingBreakEven returns the idle probability above which the CLB-level
// clock gate saves energy, from the Table 3 rows: gating pays off when
// P(all off) * saving_idle > (1 - P) * overhead_active (the paper finds
// roughly 1/3).
func GatingBreakEven(rows []*Table3Row) (float64, error) {
	var idle, allOn *Table3Row
	for _, r := range rows {
		if r.ActiveFFs == 0 {
			idle = r
		}
		if allOn == nil || r.ActiveFFs > allOn.ActiveFFs {
			allOn = r
		}
	}
	if idle == nil || allOn == nil || idle == allOn {
		return 0, fmt.Errorf("circuit: need idle and active rows")
	}
	saving := idle.SingleClock - idle.GatedClock
	overhead := allOn.GatedClock - allOn.SingleClock
	if saving <= 0 {
		return 0, fmt.Errorf("circuit: gating does not save when idle (%g)", saving)
	}
	if overhead <= 0 {
		return 0, nil // gating always wins
	}
	return overhead / (saving + overhead), nil
}

// measureCLBClock builds the Fig. 6 circuit. Single clock (a): a two-stage
// buffer drives the CLB's local clock wire with all n flip-flops hanging on
// it. Gated clock (b): a wide CLB NAND replaces the buffer's first stage,
// silencing the whole local network when every flip-flop is idle. "ON"
// flip-flops have toggling data. Returns the energy of one full clock cycle.
func measureCLBClock(tech arch.Tech, n, active int, clbGated bool) (float64, error) {
	c := New(tech)
	clkIn := c.AddNode("clk_in", 0)
	// Local clock network wire inside the CLB.
	wire := c.AddNode("clk_wire", tech.WireCap(0.5, 1, 1))
	mid := c.AddNode("clk_mid", 0)
	if clbGated {
		enCLB := c.AddNode("en_clb", 0)
		c.Set("en_clb", active > 0)
		// The CLB NAND is sized up to drive the buffer through its stacked
		// pull-down, costing extra input capacitance on the clock.
		c.NAND(8, clkIn, enCLB, mid)
		c.Inverter(4, mid, wire)
	} else {
		c.Inverter(4, clkIn, mid)
		c.Inverter(4, mid, wire)
	}
	for i := 0; i < n; i++ {
		p := fmt.Sprintf("ble%d.", i)
		d := c.AddNode(p+"d", 0)
		q := c.AddNode(p+"q", tech.CGateMin*4)
		if err := BuildDETFF(c, Llopis1, p+"ff.", d, wire, q); err != nil {
			return 0, err
		}
	}
	if err := c.Init(); err != nil {
		return 0, err
	}
	const half = 2e-9
	// One full clock cycle with active FFs toggling data.
	for cyc, clk := 0, false; cyc < 2; cyc++ {
		for i := 0; i < active; i++ {
			c.Set(fmt.Sprintf("ble%d.d", i), cyc%2 == 0)
		}
		if err := c.Run(c.Now + half/2); err != nil {
			return 0, err
		}
		c.Now += half / 2
		clk = !clk
		c.Set("clk_in", clk)
		if err := c.Run(c.Now + half/2); err != nil {
			return 0, err
		}
		c.Now += half / 2
	}
	return c.Energy, nil
}
