package obs

import (
	"encoding/json"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format (the JSON
// array flavor Perfetto and chrome://tracing load). Field order follows
// the spec's examples; ts/dur are microseconds.
type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace renders a run summary as a Chrome trace-event document
// ({"traceEvents": [...]}): one complete ("X") event per span with its
// recorded start offset and wall time, preceded by process/thread name
// metadata. Load the output in Perfetto (ui.perfetto.dev) or
// chrome://tracing to see the whole run — queue wait, every attempt,
// every flow stage — on a timeline. Output is deterministic for a given
// summary.
func WriteChromeTrace(w io.Writer, sum *Summary) error {
	if sum == nil {
		return nil
	}
	events := make([]chromeEvent, 0, len(sum.Spans)+2)
	procName := sum.Name
	if procName == "" {
		procName = "fpgaflow"
	}
	events = append(events,
		chromeEvent{Name: "process_name", Phase: "M", PID: 1, TID: 1,
			Args: map[string]any{"name": procName}},
		chromeEvent{Name: "thread_name", Phase: "M", PID: 1, TID: 1,
			Args: map[string]any{"name": "flow"}},
	)
	for _, s := range sum.Spans {
		args := map[string]any{"path": s.Path}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		if sum.TraceID != "" {
			args["trace_id"] = sum.TraceID
		}
		if s.CPUNS > 0 {
			args["cpu_us"] = float64(s.CPUNS) / 1e3
		}
		events = append(events, chromeEvent{
			Name:  s.Name,
			Cat:   "flow",
			Phase: "X",
			TS:    float64(s.StartNS) / 1e3,
			Dur:   float64(s.WallNS) / 1e3,
			PID:   1,
			TID:   1,
			Args:  args,
		})
	}
	doc := struct {
		TraceEvents     []chromeEvent  `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData,omitempty"`
	}{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
	}
	if sum.TraceID != "" {
		doc.OtherData = map[string]any{"trace_id": sum.TraceID}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
