package obs

import (
	"bytes"
	"strings"
	"testing"
)

// promTestTrace builds a trace with one of everything the exposition
// writer handles.
func promTestTrace() *Trace {
	tr := New("t")
	tr.Add("jobs.finished", 3)
	tr.SetGauge("queue.depth", 2)
	tr.Observe("jobs.queue_wait_seconds", 0.004)
	tr.Observe("jobs.queue_wait_seconds", 0.2)
	tr.CounterVec("jobs.submitted_by_tenant", "tenant").Add("acme", 5)
	tr.CounterVec("jobs.submitted_by_tenant", "tenant").Add(`we"ird\ten`, 1)
	tr.HistogramVec("flow.stage_seconds", "stage").Observe("VPR route", 1.5)
	return tr
}

// TestWritePrometheusRoundTrip is the satellite round-trip gate: the
// writer's own output must pass the validator, carry every expected
// family, and be byte-stable across renders of the same state.
func TestWritePrometheusRoundTrip(t *testing.T) {
	tr := promTestTrace()
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, tr); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if err := ValidatePrometheus(strings.NewReader(out)); err != nil {
		t.Fatalf("writer output fails its own validator: %v\n%s", err, out)
	}
	for _, want := range []string{
		"# TYPE fpgaflow_build_info gauge",
		"fpgaflow_build_info{go_version=",
		"# TYPE fpgaflow_jobs_finished_total counter",
		"fpgaflow_jobs_finished_total 3",
		"# TYPE fpgaflow_queue_depth gauge",
		"fpgaflow_queue_depth 2",
		"# TYPE fpgaflow_jobs_queue_wait_seconds histogram",
		`fpgaflow_jobs_queue_wait_seconds_bucket{le="+Inf"} 2`,
		"fpgaflow_jobs_queue_wait_seconds_count 2",
		`fpgaflow_jobs_submitted_by_tenant_total{tenant="acme"} 5`,
		`fpgaflow_jobs_submitted_by_tenant_total{tenant="we\"ird\\ten"} 1`,
		`fpgaflow_flow_stage_seconds_bucket{stage="VPR route",le="+Inf"} 1`,
		`fpgaflow_flow_stage_seconds_count{stage="VPR route"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	var buf2 bytes.Buffer
	if err := WritePrometheus(&buf2, tr); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("two renders of the same state differ; output must be byte-stable")
	}
}

// TestWritePrometheusAggregatesTraces checks the multi-trace view /metrics
// serves: counters sum, histograms merge, gauges last-wins, nils skipped.
func TestWritePrometheusAggregatesTraces(t *testing.T) {
	a, b := New("a"), New("b")
	a.Add("c", 1)
	b.Add("c", 2)
	a.SetGauge("g", 1)
	b.SetGauge("g", 9)
	a.Observe("h_seconds", 0.01)
	b.Observe("h_seconds", 0.02)
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, a, nil, b); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"fpgaflow_c_total 3",
		"fpgaflow_g 9",
		"fpgaflow_h_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("aggregate missing %q\n%s", want, out)
		}
	}
	if err := ValidatePrometheus(strings.NewReader(out)); err != nil {
		t.Fatal(err)
	}
}

// TestValidatePrometheusRejects feeds the validator each class of broken
// document it exists to catch.
func TestValidatePrometheusRejects(t *testing.T) {
	cases := map[string]string{
		"sample without TYPE": "x_total 1\n",
		"TYPE after samples":  "# TYPE x gauge\nx 1\n# TYPE x gauge\n",
		"unknown type":        "# TYPE x frobnicator\nx 1\n",
		"malformed TYPE":      "# TYPE x\n",
		"bad value":           "# TYPE x gauge\nx notafloat\n",
		"unquoted label":      "# TYPE x gauge\nx{l=v} 1\n",
		"unterminated label":  "# TYPE x gauge\nx{l=\"v} 1\n",
		"bad escape":          "# TYPE x gauge\nx{l=\"a\\q\"} 1\n",
		"bucket without le":   "# TYPE h histogram\nh_bucket{a=\"b\"} 1\n",
		"non-monotone buckets": "# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 5\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_count 5\n",
		"le out of order": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"0.1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_count 2\n",
		"missing +Inf": "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_count 1\n",
		"+Inf != count": "# TYPE h histogram\n" +
			"h_bucket{le=\"1\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_count 2\n",
	}
	for name, doc := range cases {
		if err := ValidatePrometheus(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: validator accepted\n%s", name, doc)
		}
	}
	// And the things that look suspicious but are legal.
	good := "# TYPE route_overuse_sum_total counter\nroute_overuse_sum_total 7\n" +
		"# TYPE x gauge\nx{l=\"a\\\\b\\\"c\\nd\"} 1 1700000000\n"
	if err := ValidatePrometheus(strings.NewReader(good)); err != nil {
		t.Errorf("validator rejected a legal document: %v", err)
	}
}

// TestPromNameAndEscape pins the sanitizer rules the exposition format
// requires.
func TestPromNameAndEscape(t *testing.T) {
	if got := promName("jobs.queue wait-9"); got != "fpgaflow_jobs_queue_wait_9" {
		t.Errorf("promName = %q", got)
	}
	if got := promEscape("a\\b\nc"); got != `a\\b\nc` {
		t.Errorf("promEscape = %q", got)
	}
}
