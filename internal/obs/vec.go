package obs

import "sync"

// DefaultVecCap bounds the number of distinct label values a vec tracks
// before new values collapse into the OverflowLabel child. The cap is the
// memory-safety contract for labels fed by external input (tenant IDs): a
// hostile tenant set costs at most cap+1 children, never unbounded growth.
const DefaultVecCap = 32

// OverflowLabel is the label value that absorbs observations once a vec
// reaches its cardinality cap.
const OverflowLabel = "other"

// CounterVec is a family of Counters keyed by one label (tenant, stage,
// profile, ...) with an explicit cardinality cap. All methods are safe for
// concurrent use and no-ops on nil.
type CounterVec struct {
	label string
	cap   int

	mu       sync.RWMutex
	children map[string]*Counter
}

// Label returns the vec's label key ("" on nil).
func (v *CounterVec) Label() string {
	if v == nil {
		return ""
	}
	return v.label
}

// WithLabel returns the child counter for the label value, creating it on
// first use. Past the cardinality cap, unseen values share the
// OverflowLabel child. Returns nil on a nil vec.
func (v *CounterVec) WithLabel(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	c := v.children[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c := v.children[value]; c != nil {
		return c
	}
	if len(v.children) >= v.cap {
		value = OverflowLabel
		if c := v.children[value]; c != nil {
			return c
		}
	}
	c = &Counter{}
	v.children[value] = c
	return c
}

// Add is shorthand for WithLabel(value).Add(n).
func (v *CounterVec) Add(value string, n int64) { v.WithLabel(value).Add(n) }

// Values returns a snapshot of every child's count keyed by label value.
func (v *CounterVec) Values() map[string]int64 {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]int64, len(v.children))
	for k, c := range v.children {
		out[k] = c.Value()
	}
	return out
}

// HistogramVec is a family of Histograms keyed by one label, with the same
// cardinality cap and overflow contract as CounterVec.
type HistogramVec struct {
	label string
	cap   int

	mu       sync.RWMutex
	children map[string]*Histogram
}

// Label returns the vec's label key ("" on nil).
func (v *HistogramVec) Label() string {
	if v == nil {
		return ""
	}
	return v.label
}

// WithLabel returns the child histogram for the label value, creating it
// on first use; past the cap, unseen values share the OverflowLabel child.
// Returns nil on a nil vec.
func (v *HistogramVec) WithLabel(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	h := v.children[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h := v.children[value]; h != nil {
		return h
	}
	if len(v.children) >= v.cap {
		value = OverflowLabel
		if h := v.children[value]; h != nil {
			return h
		}
	}
	h = &Histogram{}
	v.children[value] = h
	return h
}

// Observe is shorthand for WithLabel(value).Observe(x).
func (v *HistogramVec) Observe(value string, x float64) { v.WithLabel(value).Observe(x) }

// Snapshots returns a snapshot of every non-empty child keyed by label
// value.
func (v *HistogramVec) Snapshots() map[string]HistogramSnapshot {
	if v == nil {
		return nil
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]HistogramSnapshot, len(v.children))
	for k, h := range v.children {
		if h.Count() > 0 {
			out[k] = h.Snapshot()
		}
	}
	return out
}

// CounterVec returns (creating on first use, with DefaultVecCap) the named
// counter family; nil on a nil trace. The label key is fixed at first use.
func (t *Trace) CounterVec(name, label string) *CounterVec {
	if t == nil {
		return nil
	}
	if v, ok := t.counterVecs.Load(name); ok {
		return v.(*CounterVec)
	}
	v, _ := t.counterVecs.LoadOrStore(name,
		&CounterVec{label: label, cap: DefaultVecCap, children: map[string]*Counter{}})
	return v.(*CounterVec)
}

// HistogramVec returns (creating on first use, with DefaultVecCap) the
// named histogram family; nil on a nil trace.
func (t *Trace) HistogramVec(name, label string) *HistogramVec {
	if t == nil {
		return nil
	}
	if v, ok := t.histogramVecs.Load(name); ok {
		return v.(*HistogramVec)
	}
	v, _ := t.histogramVecs.LoadOrStore(name,
		&HistogramVec{label: label, cap: DefaultVecCap, children: map[string]*Histogram{}})
	return v.(*HistogramVec)
}

// CounterVecs snapshots every counter family: name -> (label key, values).
func (t *Trace) CounterVecs() map[string]VecSnapshot[int64] {
	if t == nil {
		return nil
	}
	out := make(map[string]VecSnapshot[int64])
	t.counterVecs.Range(func(k, v interface{}) bool {
		cv := v.(*CounterVec)
		out[k.(string)] = VecSnapshot[int64]{Label: cv.Label(), Values: cv.Values()}
		return true
	})
	return out
}

// HistogramVecs snapshots every histogram family: name -> (label key,
// per-value snapshots). Empty children are omitted.
func (t *Trace) HistogramVecs() map[string]VecSnapshot[HistogramSnapshot] {
	if t == nil {
		return nil
	}
	out := make(map[string]VecSnapshot[HistogramSnapshot])
	t.histogramVecs.Range(func(k, v interface{}) bool {
		hv := v.(*HistogramVec)
		out[k.(string)] = VecSnapshot[HistogramSnapshot]{Label: hv.Label(), Values: hv.Snapshots()}
		return true
	})
	return out
}

// VecSnapshot is the serializable state of one labeled metric family.
type VecSnapshot[V any] struct {
	Label  string       `json:"label"`
	Values map[string]V `json:"values"`
}
