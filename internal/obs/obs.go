// Package obs is the flow-wide observability layer: hierarchical spans with
// wall/CPU time and allocation deltas, monotonic counters and gauges safe
// for concurrent use, and pluggable sinks (human-readable text, JSON Lines,
// and a single-run metrics.json summary).
//
// The API is nil-safe end to end: every method on a nil *Trace, *Span,
// *Counter or *Gauge is a no-op, so instrumentation sites never need to
// guard on whether observability is enabled. A disabled call costs one nil
// check.
//
// Typical use from a command:
//
//	tr := obs.New("fpgaflow")
//	obs.SetGlobal(tr) // libraries without an explicit handle report here
//	sp := tr.Start("VPR place")
//	tr.Counter("place.moves").Add(n)
//	sp.End()
//	tr.WriteJSON(f) // metrics.json
package obs

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonic (or at least additive) integer metric. Add is safe
// from any number of goroutines.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter; no-op on nil.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value-wins float metric, safe for concurrent use. The
// value and its "has been set" state live behind a single atomic pointer
// (nil = never set), so Set and Max observe both as one unit — a separate
// value/flag pair would let a concurrent first Set be clobbered by a
// smaller Max that read the flag before the store landed.
type Gauge struct {
	p atomic.Pointer[float64]
}

// Set records the gauge value; no-op on nil.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.p.Store(&v)
}

// Max raises the gauge to v if v is larger than the current value (or the
// gauge was never set).
func (g *Gauge) Max(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.p.Load()
		if old != nil && *old >= v {
			return
		}
		if g.p.CompareAndSwap(old, &v) {
			return
		}
	}
}

// Value returns the gauge value (0 on nil or never set).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	p := g.p.Load()
	if p == nil {
		return 0
	}
	return *p
}

// isSet reports whether the gauge has ever been written.
func (g *Gauge) isSet() bool { return g != nil && g.p.Load() != nil }

// Span is one timed region of the run. Spans nest: a span started while
// another is open becomes its child. Spans are intended for the sequential
// stage structure of the flow (start and end on one goroutine); concurrent
// work inside a span reports through counters instead.
type Span struct {
	tr *Trace

	// Name is the span label (e.g. the flow tool name).
	Name string
	// Path is the slash-joined ancestry, e.g. "flow/VPR place".
	Path string
	// Depth is 0 for root spans.
	Depth int
	// Detail is a free-form annotation (the stage report line).
	Detail string

	start      time.Time
	startOff   time.Duration // offset from trace start
	cpuStart   time.Duration
	allocStart uint64
	mallocs0   uint64

	// Wall, CPU, AllocBytes and Mallocs are populated by End.
	Wall       time.Duration
	CPU        time.Duration
	AllocBytes uint64
	Mallocs    uint64

	ended bool
}

// SetDetail annotates the span; no-op on nil.
func (s *Span) SetDetail(format string, args ...interface{}) {
	if s == nil {
		return
	}
	s.tr.mu.Lock()
	s.Detail = fmt.Sprintf(format, args...)
	s.tr.mu.Unlock()
}

// End closes the span, recording wall time, process CPU time delta and
// allocation deltas. Ending twice or on nil is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	wall := time.Since(s.start)
	cpu := processCPUTime()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)

	t := s.tr
	t.mu.Lock()
	defer t.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.Wall = wall
	if cpu > s.cpuStart {
		s.CPU = cpu - s.cpuStart
	}
	if ms.TotalAlloc > s.allocStart {
		s.AllocBytes = ms.TotalAlloc - s.allocStart
	}
	if ms.Mallocs > s.mallocs0 {
		s.Mallocs = ms.Mallocs - s.mallocs0
	}
	// Pop this span (and anything left dangling above it) off the stack.
	for i := len(t.stack) - 1; i >= 0; i-- {
		if t.stack[i] == s {
			t.stack = t.stack[:i]
			break
		}
	}
	if t.sink != nil {
		t.sink.SpanEnd(s)
	}
}

// Sink receives live observability events (see JSONLSink).
type Sink interface {
	// SpanEnd is called under the trace lock when a span closes.
	SpanEnd(s *Span)
}

// Trace is the root collector for one run: a tree of spans plus named
// counters and gauges. All methods are safe for concurrent use and safe on
// a nil receiver.
type Trace struct {
	name  string
	start time.Time
	cpu0  time.Duration

	mu      sync.Mutex
	traceID string
	spans   []*Span // completed-or-open spans in start order
	stack   []*Span // currently open spans (innermost last)
	sink    Sink

	counters      sync.Map // string -> *Counter
	gauges        sync.Map // string -> *Gauge
	histograms    sync.Map // string -> *Histogram
	counterVecs   sync.Map // string -> *CounterVec
	histogramVecs sync.Map // string -> *HistogramVec
}

// New creates a trace named after the run (tool or design name).
func New(name string) *Trace {
	return &Trace{name: name, start: time.Now(), cpu0: processCPUTime()}
}

// Name returns the trace name ("" on nil).
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// SetTraceID stamps the trace with a correlation ID (the per-job trace ID
// carried through the farm); no-op on nil.
func (t *Trace) SetTraceID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.traceID = id
	t.mu.Unlock()
}

// TraceID returns the correlation ID ("" on nil or unset).
func (t *Trace) TraceID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traceID
}

// MergeFrom folds o's metrics into t: counters and histograms add,
// labeled families merge child-by-child, and gauges from o win (last
// writer semantics). Spans are not merged — span trees stay per-run; the
// farm persists a job's span tree separately and merges only the
// aggregable metrics into the service-wide trace. No-op when either side
// is nil.
func (t *Trace) MergeFrom(o *Trace) {
	if t == nil || o == nil {
		return
	}
	for name, v := range o.Counters() {
		t.Counter(name).Add(v)
	}
	for name, v := range o.Gauges() {
		t.Gauge(name).Set(v)
	}
	o.histograms.Range(func(k, v interface{}) bool {
		t.Histogram(k.(string)).Merge(v.(*Histogram))
		return true
	})
	o.counterVecs.Range(func(k, v interface{}) bool {
		src := v.(*CounterVec)
		dst := t.CounterVec(k.(string), src.Label())
		for value, n := range src.Values() {
			dst.Add(value, n)
		}
		return true
	})
	o.histogramVecs.Range(func(k, v interface{}) bool {
		src := v.(*HistogramVec)
		dst := t.HistogramVec(k.(string), src.Label())
		src.mu.RLock()
		children := make(map[string]*Histogram, len(src.children))
		for value, h := range src.children {
			children[value] = h
		}
		src.mu.RUnlock()
		for value, h := range children {
			dst.WithLabel(value).Merge(h)
		}
		return true
	})
}

// SetSink installs a live event sink (e.g. a JSONLSink); no-op on nil.
func (t *Trace) SetSink(s Sink) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.sink = s
	t.mu.Unlock()
}

// Start opens a span as a child of the innermost open span. Returns nil on
// a nil trace (and every Span method tolerates that).
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := &Span{
		tr:         t,
		Name:       name,
		start:      time.Now(),
		cpuStart:   processCPUTime(),
		allocStart: ms.TotalAlloc,
		mallocs0:   ms.Mallocs,
	}
	s.startOff = s.start.Sub(t.start)
	t.mu.Lock()
	if n := len(t.stack); n > 0 {
		parent := t.stack[n-1]
		s.Path = parent.Path + "/" + name
		s.Depth = parent.Depth + 1
	} else {
		s.Path = name
	}
	t.spans = append(t.spans, s)
	t.stack = append(t.stack, s)
	t.mu.Unlock()
	return s
}

// Counter returns (creating on first use) the named counter; nil on a nil
// trace.
func (t *Trace) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	if c, ok := t.counters.Load(name); ok {
		return c.(*Counter)
	}
	c, _ := t.counters.LoadOrStore(name, &Counter{})
	return c.(*Counter)
}

// Add is shorthand for Counter(name).Add(n).
func (t *Trace) Add(name string, n int64) { t.Counter(name).Add(n) }

// Gauge returns (creating on first use) the named gauge; nil on a nil
// trace.
func (t *Trace) Gauge(name string) *Gauge {
	if t == nil {
		return nil
	}
	if g, ok := t.gauges.Load(name); ok {
		return g.(*Gauge)
	}
	g, _ := t.gauges.LoadOrStore(name, &Gauge{})
	return g.(*Gauge)
}

// SetGauge is shorthand for Gauge(name).Set(v).
func (t *Trace) SetGauge(name string, v float64) { t.Gauge(name).Set(v) }

// Counters returns a name-sorted snapshot of all counters.
func (t *Trace) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	out := make(map[string]int64)
	t.counters.Range(func(k, v interface{}) bool {
		out[k.(string)] = v.(*Counter).Value()
		return true
	})
	return out
}

// Gauges returns a snapshot of all gauges that have been set.
func (t *Trace) Gauges() map[string]float64 {
	if t == nil {
		return nil
	}
	out := make(map[string]float64)
	t.gauges.Range(func(k, v interface{}) bool {
		g := v.(*Gauge)
		if g.isSet() {
			out[k.(string)] = g.Value()
		}
		return true
	})
	return out
}

// Spans returns the spans in start order (completed spans carry their
// timings; open spans have zero Wall).
func (t *Trace) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Span(nil), t.spans...)
}

// MemSnapshot captures the current allocation state (runtime.ReadMemStats)
// into gauges: mem.heap_alloc_bytes, mem.total_alloc_bytes, mem.sys_bytes,
// mem.num_gc.
func (t *Trace) MemSnapshot() {
	if t == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.SetGauge("mem.heap_alloc_bytes", float64(ms.HeapAlloc))
	t.SetGauge("mem.total_alloc_bytes", float64(ms.TotalAlloc))
	t.SetGauge("mem.sys_bytes", float64(ms.Sys))
	t.SetGauge("mem.num_gc", float64(ms.NumGC))
}

// sortedKeys returns map keys in sorted order (stable sink output).
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// global is the process-wide default trace used by library code that has no
// explicit handle (e.g. the switch-level circuit simulator). It is nil — a
// universal no-op — until a main installs one with SetGlobal.
var global atomic.Pointer[Trace]

// SetGlobal installs tr as the process default trace (nil clears it).
func SetGlobal(tr *Trace) { global.Store(tr) }

// Global returns the process default trace, possibly nil.
func Global() *Trace { return global.Load() }

// C returns the named counter on the global trace (nil-safe no-op counter
// when no global trace is installed).
func C(name string) *Counter { return Global().Counter(name) }
