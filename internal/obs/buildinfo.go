package obs

import (
	"flag"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo is the provenance header stamped into every metrics.json
// document and printed by the -version flag of every cmd tool: which
// toolchain and which commit produced the numbers, so QoR artifacts are
// attributable long after the run.
type BuildInfo struct {
	// GoVersion is the toolchain that built the binary (runtime.Version).
	GoVersion string `json:"go_version"`
	// Module is the main module path ("" outside module builds).
	Module string `json:"module,omitempty"`
	// ModuleVersion is the main module version ("(devel)" for source builds).
	ModuleVersion string `json:"module_version,omitempty"`
	// Revision is the VCS commit hash ("" when the build had no VCS stamp,
	// e.g. `go run` or a test binary).
	Revision string `json:"vcs_revision,omitempty"`
	// Time is the commit timestamp (RFC3339).
	Time string `json:"vcs_time,omitempty"`
	// Modified is true when the working tree was dirty at build time.
	Modified bool `json:"vcs_modified,omitempty"`
}

var buildInfoOnce = sync.OnceValue(func() BuildInfo {
	bi := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	if info.GoVersion != "" {
		bi.GoVersion = info.GoVersion
	}
	bi.Module = info.Main.Path
	bi.ModuleVersion = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.Revision = s.Value
		case "vcs.time":
			bi.Time = s.Value
		case "vcs.modified":
			bi.Modified = s.Value == "true"
		}
	}
	return bi
})

// ReadBuild returns the process build provenance (cached after first call).
func ReadBuild() BuildInfo { return buildInfoOnce() }

// VersionFlag declares the standard -version flag on fs. Mains check the
// returned pointer after flag.Parse and call PrintVersion + return when
// set:
//
//	showVersion := obs.VersionFlag(flag.CommandLine)
//	flag.Parse()
//	if *showVersion {
//		obs.PrintVersion(os.Stdout, "fpgaflow")
//		return
//	}
func VersionFlag(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print build information and exit")
}

// PrintVersion writes the tool's provenance line(s): tool name, module
// version, toolchain, and the VCS stamp when present.
func PrintVersion(w io.Writer, tool string) {
	bi := ReadBuild()
	fmt.Fprintf(w, "%s %s %s", tool, orDevel(bi.ModuleVersion), bi.GoVersion)
	if bi.Revision != "" {
		dirty := ""
		if bi.Modified {
			dirty = "+dirty"
		}
		fmt.Fprintf(w, " %s%s", shortRev(bi.Revision), dirty)
		if bi.Time != "" {
			fmt.Fprintf(w, " (%s)", bi.Time)
		}
	}
	fmt.Fprintln(w)
}

func orDevel(v string) string {
	if v == "" {
		return "(devel)"
	}
	return v
}

func shortRev(rev string) string {
	if len(rev) > 12 {
		return rev[:12]
	}
	return rev
}
