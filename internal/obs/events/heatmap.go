package events

import (
	"encoding/json"
	"fmt"
	"io"
)

// Heatmap is the machine-readable fabric utilization artifact
// (heatmap.json): per-CLB placement utilization and per-channel-segment
// routing congestion, keyed by the same structural coordinates
// internal/fault uses, derived from the place_map and route_congestion
// events of one run. Either half may be absent when the corresponding
// stage did not complete.
type Heatmap struct {
	Cols int `json:"cols"`
	Rows int `json:"rows"`
	// ChannelWidth is the routed channel width (0 when routing is absent).
	ChannelWidth int `json:"channel_width,omitempty"`

	// CLBs and Pads are the placement half (occupied sites only).
	CLBs []Cell `json:"clbs,omitempty"`
	Pads []Cell `json:"pads,omitempty"`
	// PlaceCost is the final placement cost.
	PlaceCost float64 `json:"place_cost,omitempty"`

	// Channels is the congestion half (occupied wire segments only).
	Channels []Segment `json:"channels,omitempty"`
	// RouteSuccess is true when the routing converged overuse-free.
	RouteSuccess bool `json:"route_success,omitempty"`
	// RouteIterations is how many PathFinder iterations the routing took.
	RouteIterations int `json:"route_iterations,omitempty"`

	// MaxChannelUsage and Overused summarize the congestion half for
	// renderers: the hottest segment's usage and the count of segments
	// above capacity.
	MaxChannelUsage int `json:"max_channel_usage,omitempty"`
	Overused        int `json:"overused,omitempty"`
}

// BuildHeatmap folds a placement map and a congestion map (either may be
// nil) into one heatmap. Returns nil when both are nil.
func BuildHeatmap(pm *PlaceMap, rc *RouteCongestion) *Heatmap {
	if pm == nil && rc == nil {
		return nil
	}
	h := &Heatmap{}
	if pm != nil {
		h.Cols, h.Rows = pm.Cols, pm.Rows
		h.CLBs = append([]Cell(nil), pm.CLBs...)
		h.Pads = append([]Cell(nil), pm.Pads...)
		h.PlaceCost = pm.Cost
	}
	if rc != nil {
		h.ChannelWidth = rc.Width
		h.RouteSuccess = rc.Success
		h.RouteIterations = rc.Iterations
		h.Channels = append([]Segment(nil), rc.Segments...)
		for _, s := range rc.Segments {
			if s.Usage > h.MaxChannelUsage {
				h.MaxChannelUsage = s.Usage
			}
			if s.Usage > s.Capacity {
				h.Overused++
			}
			// Routing may run on a fabric the placement half never saw
			// (standalone route runs); grow the extent from segment keys.
			if s.X > h.Cols {
				h.Cols = s.X
			}
			if s.Y > h.Rows {
				h.Rows = s.Y
			}
		}
	}
	return h
}

// HeatmapFromBus derives the heatmap from a bus's event stream: the latest
// place_map and route_congestion events win. Returns nil when the stream
// holds neither (nothing to map).
func HeatmapFromBus(b *Bus) *Heatmap {
	var pm *PlaceMap
	var rc *RouteCongestion
	if ev, ok := b.Latest(KindPlaceMap); ok {
		pm = ev.PlaceMap
	}
	if ev, ok := b.Latest(KindRouteCongestion); ok {
		rc = ev.RouteCongestion
	}
	return BuildHeatmap(pm, rc)
}

// WriteJSON writes the heatmap.json document.
func (h *Heatmap) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(h)
}

// ParseHeatmap decodes a heatmap.json document (round-trip of WriteJSON).
func ParseHeatmap(data []byte) (*Heatmap, error) {
	var h Heatmap
	if err := json.Unmarshal(data, &h); err != nil {
		return nil, fmt.Errorf("events: bad heatmap JSON: %w", err)
	}
	return &h, nil
}
