// Package events is the iteration-level telemetry layer of the flow: a
// typed, low-overhead event stream published from the CAD hot loops (one
// event per annealing temperature step, one per PathFinder iteration, one
// per flow stage or hardened-runner decision) plus fabric heatmaps derived
// from the same stream.
//
// The package sits below internal/obs on purpose: payloads are pure data
// (structural coordinates and numbers, the same keys internal/fault uses),
// so the place, route and core packages can publish without import cycles,
// and consumers — the fpgaflow -events sink, cmd/qorviz, the fpgaweb SSE
// endpoint — can replay, persist and render the stream without touching CAD
// types.
//
// Publishing is gated by an atomic enabled flag: a disabled or nil *Bus
// costs one nil check plus one atomic load per call site, so the hot loops
// carry the instrumentation unconditionally (benchgate's QoR gate and
// BenchmarkRoute hold the no-subscriber overhead under 2%).
package events

import (
	"encoding/json"
	"fmt"
)

// Kind discriminates event payloads. Exactly one payload pointer on Event
// is non-nil, and it is the one matching the Kind.
type Kind string

const (
	// KindPlaceStep is one annealing temperature step (place_step).
	KindPlaceStep Kind = "place_step"
	// KindPlaceMap is the final placement occupancy map (place_map).
	KindPlaceMap Kind = "place_map"
	// KindRouteIter is one PathFinder rip-up-and-reroute iteration
	// (route_iter).
	KindRouteIter Kind = "route_iter"
	// KindRouteCongestion is the per-channel-segment usage map at the end
	// of a routing run (route_congestion).
	KindRouteCongestion Kind = "route_congestion"
	// KindStage marks a flow stage starting or ending (stage).
	KindStage Kind = "stage"
	// KindFlow is a hardened-runner decision: attempt, retry, escalation
	// (flow).
	KindFlow Kind = "flow"
	// KindJob is a job-service lifecycle transition: submitted, start,
	// requeued, cancel, done, recovered (job).
	KindJob Kind = "job"
	// KindQoR is the end-of-flow quality-of-results record: channel width,
	// wirelength, critical-path delay and energy per cycle, tagged with
	// the optimization profile that produced them (qor).
	KindQoR Kind = "qor"
)

// PlaceStep is the annealer's per-temperature telemetry: where the VPR
// adaptive schedule is on its cooling curve and how placement cost is
// converging.
type PlaceStep struct {
	// Seed identifies the annealing run (PlaceBest anneals several seeds
	// concurrently into one stream).
	Seed int64 `json:"seed"`
	// Step is the 1-based temperature step index.
	Step int `json:"step"`
	// Temperature is the annealing temperature for this step.
	Temperature float64 `json:"temperature"`
	// Cost is the bounding-box cost after the step's moves.
	Cost float64 `json:"cost"`
	// AcceptRate is the fraction of attempted moves accepted this step.
	AcceptRate float64 `json:"accept_rate"`
	// RangeLimit is the move range limit (rlim) after this step's update.
	RangeLimit float64 `json:"range_limit"`
	// Moves is the number of moves attempted this step.
	Moves int `json:"moves"`
}

// Cell is one grid site's utilization, keyed by structural coordinates
// (the same keys internal/fault.SiteRef uses).
type Cell struct {
	X int `json:"x"`
	Y int `json:"y"`
	// Used is the occupied capacity: BLEs in the cluster for a logic site,
	// pad sub-slots in use for an I/O site.
	Used int `json:"used"`
	// Capacity is the site's total capacity (cluster size N, or IORate).
	Capacity int `json:"capacity"`
}

// PlaceMap is the final placement occupancy of the fabric.
type PlaceMap struct {
	Seed int64 `json:"seed"`
	Cols int   `json:"cols"`
	Rows int   `json:"rows"`
	// Cost is the final placement cost.
	Cost float64 `json:"cost"`
	// CLBs lists every occupied logic site.
	CLBs []Cell `json:"clbs"`
	// Pads lists every I/O site with at least one pad placed.
	Pads []Cell `json:"pads,omitempty"`
}

// RouteIter is PathFinder's per-iteration telemetry: the overuse decay
// curve that decides whether a routing converges and how hard it works.
type RouteIter struct {
	// Iter is the 1-based rip-up-and-reroute iteration.
	Iter int `json:"iter"`
	// Overused counts nodes above capacity after the iteration.
	Overused int `json:"overused"`
	// OveruseSum is the total units of overuse (sum of usage-capacity over
	// overused nodes).
	OveruseSum int `json:"overuse_sum"`
	// PresFac is the present-congestion factor the iteration searched with.
	PresFac float64 `json:"pres_fac"`
	// Wirelength is the wire segments occupied after the iteration.
	Wirelength int `json:"wirelength"`
	// HeapPops is the priority-queue pops spent this iteration (search
	// effort).
	HeapPops int64 `json:"heap_pops"`
	// DirtyNets is how many nets were rerouted this iteration.
	DirtyNets int `json:"dirty_nets"`
}

// Segment is one channel wire segment's usage, keyed by the same
// structural coordinates internal/fault.WireRef uses: low tile coordinate
// of the segment plus track.
type Segment struct {
	// Vertical selects a CHANY wire; false means CHANX.
	Vertical bool `json:"vertical"`
	X        int  `json:"x"`
	Y        int  `json:"y"`
	Track    int  `json:"track"`
	// Usage is the number of nets occupying the segment.
	Usage int `json:"usage"`
	// Capacity is the segment's legal capacity (usually 1).
	Capacity int `json:"capacity"`
}

// RouteCongestion is the routing congestion map at the end of a Route run
// (successful or not — an unroutable map shows where the pressure is).
type RouteCongestion struct {
	// Width is the channel width routed against.
	Width int `json:"width"`
	// Iterations is how many PathFinder iterations ran.
	Iterations int `json:"iterations"`
	// Success is true when no resource ended overused.
	Success bool `json:"success"`
	// Segments lists every occupied channel wire segment.
	Segments []Segment `json:"segments"`
}

// StageEvent marks a flow stage boundary.
type StageEvent struct {
	// Stage is the flow tool name ("VPR place", "DAGGER", ...).
	Stage string `json:"stage"`
	// Phase is "start" or "end".
	Phase string `json:"phase"`
	// Err is the stage's failure message ("" on success); only meaningful
	// on the end event.
	Err string `json:"err,omitempty"`
	// WallNS is the stage's wall time; only set on the end event.
	WallNS int64 `json:"wall_ns,omitempty"`
}

// FlowEvent is a hardened-runner decision.
type FlowEvent struct {
	// Action is "attempt", "retry" or "escalate".
	Action string `json:"action"`
	// Attempt is the 1-based flow attempt the action belongs to.
	Attempt int `json:"attempt"`
	// Seed is the placement seed the attempt runs with.
	Seed int64 `json:"seed,omitempty"`
	// Reason annotates retries and escalations with the failure that
	// triggered them.
	Reason string `json:"reason,omitempty"`
}

// JobEvent is one job-service lifecycle transition (internal/jobs): the
// compile farm publishes these alongside the convergence telemetry of the
// flows it runs, so one SSE stream shows both the farm and the CAD.
type JobEvent struct {
	// ID is the job identifier ("j000042").
	ID string `json:"id"`
	// Tenant is the submitting principal.
	Tenant string `json:"tenant"`
	// Action is the transition: "submitted", "start", "requeued",
	// "cancel", "done", "recovered".
	Action string `json:"action"`
	// State is the job state after the transition.
	State string `json:"state"`
	// Attempt is the execution attempt the transition belongs to.
	Attempt int `json:"attempt,omitempty"`
	// Reason annotates failures and cancellations.
	Reason string `json:"reason,omitempty"`
}

// QoREvent is the end-of-flow quality-of-results summary: one per
// completed flow, carrying exactly the numbers the golden QoR suite and
// benchgate's regression gates compare (so telemetry consumers see the
// same delay/energy figures the gates enforce).
type QoREvent struct {
	// Design is the netlist's top model name.
	Design string `json:"design"`
	// Profile is the optimization profile ("" = balanced, "min-delay",
	// "min-energy", "min-area").
	Profile string `json:"profile,omitempty"`
	// ChannelWidth is the routed channel width.
	ChannelWidth int `json:"channel_width"`
	// Wirelength is the wire segments occupied by the final routing.
	Wirelength int `json:"wirelength"`
	// CriticalPathNS is the critical-path delay in nanoseconds.
	CriticalPathNS float64 `json:"critical_path_ns"`
	// PowerMW is the estimated total power in milliwatts.
	PowerMW float64 `json:"power_mw"`
	// EnergyPJ is the energy per clock cycle in picojoules.
	EnergyPJ float64 `json:"energy_pj"`
}

// Event is one element of the telemetry stream. Seq and TimeNS are stamped
// by the bus at publish time; exactly one payload field is non-nil.
type Event struct {
	// Seq is the bus-wide publication sequence number (1-based).
	Seq uint64 `json:"seq"`
	// TimeNS is the offset from bus creation, in nanoseconds.
	TimeNS int64 `json:"t_ns"`
	Kind   Kind  `json:"kind"`

	PlaceStep       *PlaceStep       `json:"place_step,omitempty"`
	PlaceMap        *PlaceMap        `json:"place_map,omitempty"`
	RouteIter       *RouteIter       `json:"route_iter,omitempty"`
	RouteCongestion *RouteCongestion `json:"route_congestion,omitempty"`
	Stage           *StageEvent      `json:"stage,omitempty"`
	Flow            *FlowEvent       `json:"flow,omitempty"`
	Job             *JobEvent        `json:"job,omitempty"`
	QoR             *QoREvent        `json:"qor,omitempty"`
}

// Validate checks the Kind/payload pairing invariant.
func (e *Event) Validate() error {
	var want Kind
	set := 0
	if e.PlaceStep != nil {
		want, set = KindPlaceStep, set+1
	}
	if e.PlaceMap != nil {
		want, set = KindPlaceMap, set+1
	}
	if e.RouteIter != nil {
		want, set = KindRouteIter, set+1
	}
	if e.RouteCongestion != nil {
		want, set = KindRouteCongestion, set+1
	}
	if e.Stage != nil {
		want, set = KindStage, set+1
	}
	if e.Flow != nil {
		want, set = KindFlow, set+1
	}
	if e.Job != nil {
		want, set = KindJob, set+1
	}
	if e.QoR != nil {
		want, set = KindQoR, set+1
	}
	if set != 1 {
		return fmt.Errorf("events: %d payloads set (want exactly 1)", set)
	}
	if want != e.Kind {
		return fmt.Errorf("events: kind %q does not match payload %q", e.Kind, want)
	}
	return nil
}

// Decode parses one JSON event (the inverse of json.Marshal on Event) and
// validates the kind/payload pairing.
func Decode(data []byte) (Event, error) {
	var e Event
	if err := json.Unmarshal(data, &e); err != nil {
		return Event{}, fmt.Errorf("events: bad event JSON: %w", err)
	}
	if err := e.Validate(); err != nil {
		return Event{}, err
	}
	return e, nil
}
