package events

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultCapacity is the ring-buffer size NewBus uses when given a
// non-positive capacity: enough for the full convergence history of a
// large run (hundreds of temperature steps plus tens of router iterations)
// with room for stage and flow events.
const DefaultCapacity = 4096

// Bus is a bounded, concurrency-safe event stream: publishers stamp events
// into a ring buffer and fan them out to sinks (synchronous callbacks,
// e.g. a JSONL writer) and subscribers (buffered channels, e.g. SSE
// clients; a slow subscriber drops events rather than blocking the flow).
//
// All methods are safe on a nil *Bus, and Publish on a disabled bus is a
// single atomic load — instrumentation sites never need to guard.
type Bus struct {
	enabled atomic.Bool
	seq     atomic.Uint64
	dropped atomic.Int64
	start   time.Time

	mu     sync.Mutex
	ring   []Event
	next   int // ring write index
	count  int // elements in ring (<= len(ring))
	latest map[Kind]Event
	sinks  []func(Event)
	subs   map[int]chan Event
	subID  int
}

// NewBus creates an enabled bus with the given ring capacity (<= 0 selects
// DefaultCapacity).
func NewBus(capacity int) *Bus {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	b := &Bus{
		start:  time.Now(),
		ring:   make([]Event, capacity),
		latest: make(map[Kind]Event),
		subs:   make(map[int]chan Event),
	}
	b.enabled.Store(true)
	return b
}

// Enabled reports whether publishing is live. Hot loops use it to skip
// payload construction entirely: false on a nil bus.
func (b *Bus) Enabled() bool {
	return b != nil && b.enabled.Load()
}

// SetEnabled flips the publish gate; no-op on nil.
func (b *Bus) SetEnabled(on bool) {
	if b != nil {
		b.enabled.Store(on)
	}
}

// Dropped returns how many events were lost to slow subscribers (the ring
// and sinks never drop).
func (b *Bus) Dropped() int64 {
	if b == nil {
		return 0
	}
	return b.dropped.Load()
}

// Publish stamps the event (Seq, TimeNS) and delivers it to the ring,
// every sink, and every subscriber. No-op on a nil or disabled bus.
// Sinks run under the bus lock, so their observed order matches Seq.
func (b *Bus) Publish(ev Event) {
	if !b.Enabled() {
		return
	}
	ev.Seq = b.seq.Add(1)
	ev.TimeNS = time.Since(b.start).Nanoseconds()

	b.mu.Lock()
	b.ring[b.next] = ev
	b.next = (b.next + 1) % len(b.ring)
	if b.count < len(b.ring) {
		b.count++
	}
	b.latest[ev.Kind] = ev
	for _, sink := range b.sinks {
		sink(ev)
	}
	for _, ch := range b.subs {
		select {
		case ch <- ev:
		default:
			b.dropped.Add(1)
		}
	}
	b.mu.Unlock()
}

// AddSink registers a synchronous per-event callback (e.g. a JSONL
// writer). Sinks must be fast: they run on the publishing goroutine.
func (b *Bus) AddSink(fn func(Event)) {
	if b == nil || fn == nil {
		return
	}
	b.mu.Lock()
	b.sinks = append(b.sinks, fn)
	b.mu.Unlock()
}

// Subscribe registers a live subscriber: the returned channel receives
// every event published after the call (dropping, not blocking, when more
// than buffer events back up), and replay holds the ring contents at
// subscription time in publication order, so late subscribers see history.
func (b *Bus) Subscribe(buffer int) (id int, ch <-chan Event, replay []Event) {
	if b == nil {
		return 0, nil, nil
	}
	if buffer < 1 {
		buffer = 64
	}
	c := make(chan Event, buffer)
	b.mu.Lock()
	b.subID++
	id = b.subID
	b.subs[id] = c
	replay = b.snapshotLocked()
	b.mu.Unlock()
	return id, c, replay
}

// Unsubscribe removes a subscriber and closes its channel.
func (b *Bus) Unsubscribe(id int) {
	if b == nil {
		return
	}
	b.mu.Lock()
	if ch, ok := b.subs[id]; ok {
		delete(b.subs, id)
		close(ch)
	}
	b.mu.Unlock()
}

// Subscribers reports the number of live subscribers (leak tests use it to
// verify every departed SSE client unsubscribed).
func (b *Bus) Subscribers() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// Snapshot returns the ring contents, oldest first.
func (b *Bus) Snapshot() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.snapshotLocked()
}

func (b *Bus) snapshotLocked() []Event {
	out := make([]Event, 0, b.count)
	start := b.next - b.count
	if start < 0 {
		start += len(b.ring)
	}
	for i := 0; i < b.count; i++ {
		out = append(out, b.ring[(start+i)%len(b.ring)])
	}
	return out
}

// Latest returns the most recent event of the given kind, surviving ring
// wrap-around (heatmap building relies on this: a long convergence tail
// must not evict the placement map).
func (b *Bus) Latest(kind Kind) (Event, bool) {
	if b == nil {
		return Event{}, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	ev, ok := b.latest[kind]
	return ev, ok
}

// Len returns the number of events currently held in the ring.
func (b *Bus) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.count
}

// JSONLWriter appends one JSON object per event to an io.Writer; install
// with Bus.AddSink. Writes are best-effort (a failed write must not abort
// the flow producing the event) but never interleaved: the bus serializes
// sink calls.
type JSONLWriter struct {
	enc *json.Encoder
}

// NewJSONLWriter wraps w.
func NewJSONLWriter(w io.Writer) *JSONLWriter {
	return &JSONLWriter{enc: json.NewEncoder(w)}
}

// Write encodes one event as a JSON line.
func (j *JSONLWriter) Write(ev Event) {
	_ = j.enc.Encode(ev)
}
