package events

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// sampleEvents returns one fully-populated event of every kind.
func sampleEvents() []Event {
	return []Event{
		{Kind: KindPlaceStep, PlaceStep: &PlaceStep{
			Seed: 7, Step: 3, Temperature: 1.25, Cost: 92.5,
			AcceptRate: 0.44, RangeLimit: 6, Moves: 256,
		}},
		{Kind: KindPlaceMap, PlaceMap: &PlaceMap{
			Seed: 7, Cols: 4, Rows: 4, Cost: 80.25,
			CLBs: []Cell{{X: 1, Y: 2, Used: 3, Capacity: 5}},
			Pads: []Cell{{X: 0, Y: 1, Used: 1, Capacity: 2}},
		}},
		{Kind: KindRouteIter, RouteIter: &RouteIter{
			Iter: 17, Overused: 9, OveruseSum: 12, PresFac: 3.4,
			Wirelength: 180, HeapPops: 12345, DirtyNets: 21,
		}},
		{Kind: KindRouteCongestion, RouteCongestion: &RouteCongestion{
			Width: 8, Iterations: 17, Success: true,
			Segments: []Segment{
				{Vertical: false, X: 1, Y: 0, Track: 2, Usage: 1, Capacity: 1},
				{Vertical: true, X: 2, Y: 3, Track: 0, Usage: 2, Capacity: 1},
			},
		}},
		{Kind: KindStage, Stage: &StageEvent{Stage: "VPR route", Phase: "end", WallNS: 1e6}},
		{Kind: KindFlow, Flow: &FlowEvent{Action: "retry", Attempt: 2, Seed: 104730, Reason: "route: unroutable"}},
		{Kind: KindJob, Job: &JobEvent{
			ID: "j000042", Tenant: "alice", Action: "done",
			State: "failed", Attempt: 3, Reason: "VPR route: unroutable",
		}},
		{Kind: KindQoR, QoR: &QoREvent{
			Design: "rand64", Profile: "min-delay", ChannelWidth: 16,
			Wirelength: 552, CriticalPathNS: 12.49, PowerMW: 1.59, EnergyPJ: 19.86,
		}},
	}
}

// TestEventSchemaRoundTrip encodes every event kind to JSON, decodes it
// back, and requires deep equality — the schema contract consumers
// (qorviz, fpgaweb, external tooling) rely on.
func TestEventSchemaRoundTrip(t *testing.T) {
	for _, ev := range sampleEvents() {
		ev.Seq = 42
		ev.TimeNS = 9001
		data, err := json.Marshal(ev)
		if err != nil {
			t.Fatalf("%s: marshal: %v", ev.Kind, err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", ev.Kind, err)
		}
		if !reflect.DeepEqual(ev, got) {
			t.Errorf("%s: round trip mismatch:\n in: %+v\nout: %+v", ev.Kind, ev, got)
		}
	}
}

func TestDecodeRejectsMismatchedKind(t *testing.T) {
	if _, err := Decode([]byte(`{"kind":"route_iter","place_step":{"step":1}}`)); err == nil {
		t.Fatal("mismatched kind/payload accepted")
	}
	if _, err := Decode([]byte(`{"kind":"route_iter"}`)); err == nil {
		t.Fatal("payload-less event accepted")
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestBusDisabledAndNilAreNoOps(t *testing.T) {
	var nilBus *Bus
	if nilBus.Enabled() {
		t.Fatal("nil bus enabled")
	}
	nilBus.Publish(Event{Kind: KindStage, Stage: &StageEvent{Stage: "x", Phase: "start"}})
	nilBus.SetEnabled(true)
	nilBus.Unsubscribe(1)
	if nilBus.Snapshot() != nil || nilBus.Len() != 0 || nilBus.Dropped() != 0 {
		t.Fatal("nil bus not empty")
	}
	if _, ok := nilBus.Latest(KindStage); ok {
		t.Fatal("nil bus has a latest event")
	}

	b := NewBus(8)
	b.SetEnabled(false)
	b.Publish(Event{Kind: KindStage, Stage: &StageEvent{Stage: "x", Phase: "start"}})
	if b.Len() != 0 {
		t.Fatal("disabled publish reached the ring")
	}
	b.SetEnabled(true)
	b.Publish(Event{Kind: KindStage, Stage: &StageEvent{Stage: "x", Phase: "start"}})
	if b.Len() != 1 {
		t.Fatal("enabled publish lost")
	}
}

func TestBusRingWrapKeepsLatest(t *testing.T) {
	b := NewBus(4)
	b.Publish(Event{Kind: KindPlaceMap, PlaceMap: &PlaceMap{Cols: 3, Rows: 3}})
	for i := 1; i <= 10; i++ {
		b.Publish(Event{Kind: KindRouteIter, RouteIter: &RouteIter{Iter: i}})
	}
	snap := b.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(snap))
	}
	// Oldest-first, and only the newest four survive.
	for i, ev := range snap {
		if want := 7 + i; ev.RouteIter == nil || ev.RouteIter.Iter != want {
			t.Fatalf("snapshot[%d] = %+v, want route_iter %d", i, ev, want)
		}
		if i > 0 && snap[i].Seq != snap[i-1].Seq+1 {
			t.Fatalf("snapshot seq not contiguous: %d then %d", snap[i-1].Seq, snap[i].Seq)
		}
	}
	// The evicted place_map is still reachable for heatmap building.
	ev, ok := b.Latest(KindPlaceMap)
	if !ok || ev.PlaceMap.Cols != 3 {
		t.Fatal("latest place_map lost to ring wrap")
	}
}

func TestBusSubscribeReplayAndLive(t *testing.T) {
	b := NewBus(16)
	b.Publish(Event{Kind: KindRouteIter, RouteIter: &RouteIter{Iter: 1}})
	id, ch, replay := b.Subscribe(4)
	defer b.Unsubscribe(id)
	if len(replay) != 1 || replay[0].RouteIter.Iter != 1 {
		t.Fatalf("replay = %+v, want the pre-subscription event", replay)
	}
	b.Publish(Event{Kind: KindRouteIter, RouteIter: &RouteIter{Iter: 2}})
	got := <-ch
	if got.RouteIter.Iter != 2 {
		t.Fatalf("live event iter = %d, want 2", got.RouteIter.Iter)
	}
	// A full subscriber buffer drops instead of blocking the publisher.
	for i := 0; i < 10; i++ {
		b.Publish(Event{Kind: KindRouteIter, RouteIter: &RouteIter{Iter: 3 + i}})
	}
	if b.Dropped() == 0 {
		t.Fatal("overfull subscriber did not drop")
	}
}

func TestBusUnsubscribeClosesChannel(t *testing.T) {
	b := NewBus(4)
	id, ch, _ := b.Subscribe(1)
	b.Unsubscribe(id)
	if _, open := <-ch; open {
		t.Fatal("channel still open after Unsubscribe")
	}
	b.Unsubscribe(id) // double unsubscribe is fine
	// Publishing after unsubscribe must not panic on the closed channel.
	b.Publish(Event{Kind: KindRouteIter, RouteIter: &RouteIter{Iter: 1}})
}

// TestBusConcurrentPublish hammers the bus from several goroutines (run
// under -race in CI) and checks that the JSONL sink saw every event in
// strict sequence order.
func TestBusConcurrentPublish(t *testing.T) {
	b := NewBus(64)
	var buf bytes.Buffer
	w := NewJSONLWriter(&buf)
	b.AddSink(w.Write)
	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				b.Publish(Event{Kind: KindPlaceStep, PlaceStep: &PlaceStep{Seed: int64(g), Step: i}})
			}
		}(g)
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != goroutines*per {
		t.Fatalf("sink saw %d events, want %d", len(lines), goroutines*per)
	}
	for i, line := range lines {
		ev, err := Decode([]byte(line))
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if ev.Seq != uint64(i+1) {
			t.Fatalf("line %d has seq %d: sink order diverged from sequence", i, ev.Seq)
		}
	}
}

func TestHeatmapBuildAndRoundTrip(t *testing.T) {
	pm := &PlaceMap{Cols: 4, Rows: 4, Cost: 10,
		CLBs: []Cell{{X: 1, Y: 1, Used: 2, Capacity: 5}}}
	rc := &RouteCongestion{Width: 6, Iterations: 3, Success: true,
		Segments: []Segment{
			{X: 1, Y: 0, Track: 0, Usage: 1, Capacity: 1},
			{Vertical: true, X: 2, Y: 1, Track: 3, Usage: 3, Capacity: 1},
		}}
	h := BuildHeatmap(pm, rc)
	if h.Cols != 4 || h.Rows != 4 || h.ChannelWidth != 6 {
		t.Fatalf("extent = %dx%d W=%d", h.Cols, h.Rows, h.ChannelWidth)
	}
	if h.MaxChannelUsage != 3 || h.Overused != 1 {
		t.Fatalf("max usage %d overused %d, want 3 and 1", h.MaxChannelUsage, h.Overused)
	}
	var buf bytes.Buffer
	if err := h.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseHeatmap(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, back) {
		t.Fatalf("heatmap round trip mismatch:\n in: %+v\nout: %+v", h, back)
	}

	if BuildHeatmap(nil, nil) != nil {
		t.Fatal("empty heatmap not nil")
	}
	if got := BuildHeatmap(nil, rc); got.Cols < 2 {
		t.Fatalf("route-only heatmap extent not grown from segments: %+v", got)
	}
}

func TestHeatmapFromBus(t *testing.T) {
	b := NewBus(8)
	if HeatmapFromBus(b) != nil {
		t.Fatal("heatmap from empty bus not nil")
	}
	b.Publish(Event{Kind: KindPlaceMap, PlaceMap: &PlaceMap{Cols: 2, Rows: 2,
		CLBs: []Cell{{X: 1, Y: 1, Used: 1, Capacity: 5}}}})
	b.Publish(Event{Kind: KindRouteCongestion, RouteCongestion: &RouteCongestion{
		Width: 4, Success: true, Segments: []Segment{{X: 1, Y: 0, Usage: 1, Capacity: 1}}}})
	h := HeatmapFromBus(b)
	if h == nil || len(h.CLBs) != 1 || len(h.Channels) != 1 || !h.RouteSuccess {
		t.Fatalf("heatmap = %+v", h)
	}
}
