package obs

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"fpgaflow/internal/obs/events"
)

// TestCLIFlagsProfiles exercises the -cpuprofile and -memprofile paths end
// to end: both files must exist after finish and carry the gzip magic that
// every pprof profile starts with.
func TestCLIFlagsProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	c := &CLIFlags{CPUProfile: cpu, MemProfile: mem}
	if !c.Enabled() {
		t.Fatal("profile flags should enable observability")
	}
	tr, finish := c.Start("test")
	if tr == nil {
		t.Fatal("Start returned nil trace with profiling on")
	}
	// Some profiled work so the CPU profile is non-degenerate.
	sink := 0
	for i := 0; i < 1e6; i++ {
		sink += i * i
	}
	_ = sink
	tr.Start("work").End()
	if err := finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	for _, path := range []string{cpu, mem} {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
			t.Errorf("%s: not a gzipped pprof profile (starts %x)", path, b[:min(2, len(b))])
		}
	}
}

// TestCLIFlagsEventsDir checks the -events wiring: Start creates the bus
// with a JSONL sink, finish disables it and derives heatmap.json from the
// stream.
func TestCLIFlagsEventsDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "ev")
	c := &CLIFlags{Events: dir}
	_, finish := c.Start("test")
	if c.Bus == nil || !c.Bus.Enabled() {
		t.Fatal("Start did not create an enabled event bus")
	}
	c.Bus.Publish(events.Event{Kind: events.KindPlaceMap, PlaceMap: &events.PlaceMap{
		Cols: 2, Rows: 2, CLBs: []events.Cell{{X: 1, Y: 1, Used: 3, Capacity: 4}},
	}})
	if err := finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if c.Bus.Enabled() {
		t.Error("finish left the bus enabled after closing its sink")
	}
	if _, err := os.Stat(filepath.Join(dir, "events.jsonl")); err != nil {
		t.Errorf("events.jsonl missing: %v", err)
	}
	hb, err := os.ReadFile(filepath.Join(dir, "heatmap.json"))
	if err != nil {
		t.Fatalf("heatmap.json missing: %v", err)
	}
	h, err := events.ParseHeatmap(hb)
	if err != nil {
		t.Fatalf("heatmap.json invalid: %v", err)
	}
	if h.Cols != 2 || h.Rows != 2 || len(h.CLBs) != 1 {
		t.Errorf("heatmap = %dx%d with %d CLBs, want 2x2 with 1", h.Cols, h.Rows, len(h.CLBs))
	}
}

// TestCLIFlagsContentionProfiles exercises -blockprofile and -mutexprofile:
// Start must raise the runtime sampling rates, finish must reset them and
// write gzipped pprof files.
func TestCLIFlagsContentionProfiles(t *testing.T) {
	dir := t.TempDir()
	blk := filepath.Join(dir, "block.pprof")
	mtx := filepath.Join(dir, "mutex.pprof")
	c := &CLIFlags{BlockProfile: blk, MutexProfile: mtx}
	if !c.Enabled() {
		t.Fatal("contention profile flags should enable observability")
	}
	tr, finish := c.Start("test")
	// Some lock traffic so the profiles have something to sample.
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				mu.Lock()
				mu.Unlock() //nolint:staticcheck // contention on purpose
			}
		}()
	}
	wg.Wait()
	tr.Start("work").End()
	if err := finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	for _, path := range []string{blk, mtx} {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if len(b) < 2 || b[0] != 0x1f || b[1] != 0x8b {
			t.Errorf("%s: not a gzipped pprof profile (starts %x)", path, b[:min(2, len(b))])
		}
	}
	if runtime.SetMutexProfileFraction(-1) != 0 {
		t.Error("finish left the mutex profile fraction raised")
	}
}

// TestCLIFlagsChromeTrace checks -chrometrace writes a loadable
// trace-event document covering the run's spans.
func TestCLIFlagsChromeTrace(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.chrome.json")
	c := &CLIFlags{ChromeTrace: path}
	if !c.Enabled() {
		t.Fatal("-chrometrace should enable observability")
	}
	tr, finish := c.Start("test")
	tr.Start("stage-a").End()
	if err := finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("chrome trace not written: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name == "stage-a" {
			found = true
		}
	}
	if !found {
		t.Errorf("chrome trace has no event for the run's span: %s", b)
	}
}

// TestRegisterCLIFlags checks the flag surface parses, including the two
// new flags, and that Enabled stays false for an empty set.
func TestRegisterCLIFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := RegisterCLIFlags(fs)
	ver := VersionFlag(fs)
	if err := fs.Parse([]string{"-memprofile", "m.pprof", "-events", "evdir", "-version"}); err != nil {
		t.Fatal(err)
	}
	if c.MemProfile != "m.pprof" || c.Events != "evdir" || !*ver {
		t.Fatalf("flags not bound: %+v version=%v", c, *ver)
	}
	if !(&CLIFlags{}).Enabled() == false {
		t.Error("zero CLIFlags must report disabled")
	}
}

// TestBuildInfo checks the provenance values are present and stable.
func TestBuildInfo(t *testing.T) {
	bi := ReadBuild()
	if bi.GoVersion == "" {
		t.Error("BuildInfo.GoVersion empty")
	}
	if bi != ReadBuild() {
		t.Error("ReadBuild not stable across calls")
	}
	// The metrics summary must carry the header.
	sum := New("t").Summary()
	if sum.Build == nil || sum.Build.GoVersion != bi.GoVersion {
		t.Errorf("Summary build header = %+v, want %+v", sum.Build, bi)
	}
}
