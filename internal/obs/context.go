package obs

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
)

// traceCtxKey keys the per-request trace in a context.
type traceCtxKey struct{}

// ContextWithTrace attaches a trace to the context so work scheduled on
// behalf of one request (a farm job crossing admission, queue, worker and
// the hardened runner) reports into that request's trace. A nil trace
// returns ctx unchanged.
func ContextWithTrace(ctx context.Context, tr *Trace) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, tr)
}

// TraceFromContext returns the trace attached by ContextWithTrace, or nil.
func TraceFromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	tr, _ := ctx.Value(traceCtxKey{}).(*Trace)
	return tr
}

// DeriveTraceID builds a deterministic 16-hex-digit trace ID from the
// given parts (e.g. job ID + input fingerprint). Determinism keeps replays
// and the golden suites byte-stable: the same submission always carries
// the same trace ID.
func DeriveTraceID(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		_, _ = h.Write([]byte(p)) // hash.Hash.Write never errors
		_, _ = h.Write([]byte{0}) // NUL separator: ("ab","c") != ("a","bc")
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}
