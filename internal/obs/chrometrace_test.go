package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestWriteChromeTrace checks the Perfetto export end to end: a nested
// span tree renders as a valid trace-event document with metadata events,
// one complete event per span, microsecond timestamps and the trace ID
// threaded through.
func TestWriteChromeTrace(t *testing.T) {
	tr := New("job abc")
	tr.SetTraceID("deadbeef00112233")
	q := tr.Start("queue wait")
	q.End()
	a := tr.Start("attempt 1")
	st := tr.Start("VPR route")
	st.SetDetail("W=12")
	st.End()
	a.End()
	sum := tr.Summary()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, sum); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			PID   int            `json:"pid"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", doc.DisplayTimeUnit)
	}
	if doc.OtherData["trace_id"] != "deadbeef00112233" {
		t.Errorf("otherData.trace_id = %v", doc.OtherData["trace_id"])
	}
	if len(doc.TraceEvents) != 2+3 {
		t.Fatalf("got %d events, want 2 metadata + 3 spans", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Phase != "M" || doc.TraceEvents[0].Name != "process_name" ||
		doc.TraceEvents[0].Args["name"] != "job abc" {
		t.Errorf("first event is not the process_name metadata: %+v", doc.TraceEvents[0])
	}
	byName := map[string]int{}
	for i, ev := range doc.TraceEvents[2:] {
		if ev.Phase != "X" {
			t.Errorf("span event %d phase = %q, want X", i, ev.Phase)
		}
		if ev.Args["trace_id"] != "deadbeef00112233" {
			t.Errorf("span %q lost the trace ID", ev.Name)
		}
		byName[ev.Name] = i
	}
	for _, want := range []string{"queue wait", "attempt 1", "VPR route"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("no event for span %q", want)
		}
	}
	stage := doc.TraceEvents[2+byName["VPR route"]]
	if stage.Args["detail"] != "W=12" {
		t.Errorf("stage event lost its detail: %v", stage.Args)
	}
	if stage.Args["path"] != "attempt 1/VPR route" {
		t.Errorf("stage path = %v, want attempt 1/VPR route", stage.Args["path"])
	}

	// Nil summary writes nothing rather than a broken document.
	var empty bytes.Buffer
	if err := WriteChromeTrace(&empty, nil); err != nil || empty.Len() != 0 {
		t.Errorf("nil summary: err=%v len=%d, want silent no-op", err, empty.Len())
	}
}
