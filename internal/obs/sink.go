package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// SpanRecord is the serialized form of one span.
type SpanRecord struct {
	Name       string `json:"name"`
	Path       string `json:"path"`
	Depth      int    `json:"depth"`
	Detail     string `json:"detail,omitempty"`
	StartNS    int64  `json:"start_ns"`
	WallNS     int64  `json:"wall_ns"`
	CPUNS      int64  `json:"cpu_ns,omitempty"`
	AllocBytes uint64 `json:"alloc_bytes,omitempty"`
	Mallocs    uint64 `json:"mallocs,omitempty"`
}

// Summary is the machine-readable single-run report (metrics.json schema).
type Summary struct {
	Name string `json:"name"`
	// TraceID correlates this summary with the farm job that produced it
	// (empty for plain CLI runs).
	TraceID string `json:"trace_id,omitempty"`
	// Build is the provenance header: toolchain and VCS stamp of the
	// binary that produced the numbers (see ReadBuild).
	Build         *BuildInfo                                `json:"build,omitempty"`
	WallNS        int64                                     `json:"wall_ns"`
	CPUNS         int64                                     `json:"cpu_ns,omitempty"`
	Spans         []SpanRecord                              `json:"spans"`
	Counters      map[string]int64                          `json:"counters"`
	Gauges        map[string]float64                        `json:"gauges"`
	Histograms    map[string]HistogramSnapshot              `json:"histograms,omitempty"`
	CounterVecs   map[string]VecSnapshot[int64]             `json:"counter_vecs,omitempty"`
	HistogramVecs map[string]VecSnapshot[HistogramSnapshot] `json:"histogram_vecs,omitempty"`
}

func (s *Span) record() SpanRecord {
	return SpanRecord{
		Name:       s.Name,
		Path:       s.Path,
		Depth:      s.Depth,
		Detail:     s.Detail,
		StartNS:    s.startOff.Nanoseconds(),
		WallNS:     s.Wall.Nanoseconds(),
		CPUNS:      s.CPU.Nanoseconds(),
		AllocBytes: s.AllocBytes,
		Mallocs:    s.Mallocs,
	}
}

// Summary snapshots the trace into its serializable form.
func (t *Trace) Summary() *Summary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]SpanRecord, len(t.spans))
	for i, s := range t.spans {
		spans[i] = s.record()
	}
	name := t.name
	traceID := t.traceID
	start := t.start
	cpu0 := t.cpu0
	t.mu.Unlock()
	build := ReadBuild()
	sum := &Summary{
		Name:     name,
		TraceID:  traceID,
		Build:    &build,
		WallNS:   time.Since(start).Nanoseconds(),
		Spans:    spans,
		Counters: t.Counters(),
		Gauges:   t.Gauges(),
	}
	if h := t.Histograms(); len(h) > 0 {
		sum.Histograms = h
	}
	if cv := t.CounterVecs(); len(cv) > 0 {
		sum.CounterVecs = cv
	}
	if hv := t.HistogramVecs(); len(hv) > 0 {
		sum.HistogramVecs = hv
	}
	if cpu := processCPUTime(); cpu > cpu0 {
		sum.CPUNS = (cpu - cpu0).Nanoseconds()
	}
	return sum
}

// WriteJSON writes the metrics.json summary document.
func (t *Trace) WriteJSON(w io.Writer) error {
	if t == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Summary())
}

// WriteText renders the human-readable report: the span tree with wall/CPU
// time and allocations, followed by sorted counters and gauges.
func (t *Trace) WriteText(w io.Writer) error {
	if t == nil {
		return nil
	}
	sum := t.Summary()
	fmt.Fprintf(w, "trace %s: wall %.2fms cpu %.2fms\n",
		sum.Name, float64(sum.WallNS)/1e6, float64(sum.CPUNS)/1e6)
	for _, s := range sum.Spans {
		indent := strings.Repeat("  ", s.Depth+1)
		fmt.Fprintf(w, "%s%-*s %9.2fms", indent, 28-2*s.Depth, s.Name, float64(s.WallNS)/1e6)
		if s.CPUNS > 0 {
			fmt.Fprintf(w, " cpu %8.2fms", float64(s.CPUNS)/1e6)
		}
		if s.AllocBytes > 0 {
			fmt.Fprintf(w, " alloc %8s", byteSize(s.AllocBytes))
		}
		if s.Detail != "" {
			fmt.Fprintf(w, "  %s", s.Detail)
		}
		fmt.Fprintln(w)
	}
	if len(sum.Counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, k := range sortedKeys(sum.Counters) {
			fmt.Fprintf(w, "  %-32s %d\n", k, sum.Counters[k])
		}
	}
	if len(sum.Gauges) > 0 {
		fmt.Fprintln(w, "gauges:")
		for _, k := range sortedKeys(sum.Gauges) {
			fmt.Fprintf(w, "  %-32s %g\n", k, sum.Gauges[k])
		}
	}
	if len(sum.Histograms) > 0 {
		fmt.Fprintln(w, "histograms:")
		for _, k := range sortedKeys(sum.Histograms) {
			h := sum.Histograms[k]
			fmt.Fprintf(w, "  %-32s n=%d sum=%.4gs p50=%.4gs p99=%.4gs\n",
				k, h.Count, h.Sum, h.Quantile(0.5), h.Quantile(0.99))
		}
	}
	return nil
}

func byteSize(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// JSONLSink streams one JSON object per line as events happen: a "span"
// event per span end, and a final "summary" event on Close. It is safe for
// concurrent use.
type JSONLSink struct {
	w   io.Writer
	enc *json.Encoder
}

// NewJSONLSink wraps w; install with Trace.SetSink.
func NewJSONLSink(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w, enc: json.NewEncoder(w)}
}

type jsonlEvent struct {
	Event string      `json:"ev"`
	Span  *SpanRecord `json:"span,omitempty"`
	Sum   *Summary    `json:"summary,omitempty"`
}

// SpanEnd implements Sink. The trace serializes calls (span End holds the
// trace lock), so no extra locking is needed for trace-driven events.
func (j *JSONLSink) SpanEnd(s *Span) {
	rec := s.record()
	// Streaming sinks are best-effort; a failed event write must not abort
	// the flow producing it.
	_ = j.enc.Encode(jsonlEvent{Event: "span", Span: &rec})
}

// Close writes the closing summary event for the trace.
func (j *JSONLSink) Close(t *Trace) error {
	if t == nil {
		return nil
	}
	return j.enc.Encode(jsonlEvent{Event: "summary", Sum: t.Summary()})
}

// ParseSummary decodes a metrics.json document (round-trip of WriteJSON).
func ParseSummary(data []byte) (*Summary, error) {
	var s Summary
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("obs: bad metrics JSON: %w", err)
	}
	return &s, nil
}
