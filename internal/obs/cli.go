package obs

import (
	"flag"
	"fmt"
	"os"
	"runtime/pprof"
)

// CLIFlags bundles the standard observability flags every cmd tool exposes:
//
//	-metrics out.json   write the machine-readable run summary
//	-trace              print the span tree + counters to stderr on exit
//	-jsonl out.jsonl    stream span events as JSON Lines
//	-cpuprofile out.pprof  capture a pprof CPU profile of the run
type CLIFlags struct {
	Metrics    string
	TraceText  bool
	JSONL      string
	CPUProfile string
}

// RegisterCLIFlags declares the observability flags on fs (use
// flag.CommandLine from a main).
func RegisterCLIFlags(fs *flag.FlagSet) *CLIFlags {
	c := &CLIFlags{}
	fs.StringVar(&c.Metrics, "metrics", "", "write machine-readable run metrics to this JSON file")
	fs.BoolVar(&c.TraceText, "trace", false, "print the span/counter trace to stderr on exit")
	fs.StringVar(&c.JSONL, "jsonl", "", "stream span events to this JSON Lines file")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	return c
}

// Enabled reports whether any observability output was requested.
func (c *CLIFlags) Enabled() bool {
	return c.Metrics != "" || c.TraceText || c.JSONL != "" || c.CPUProfile != ""
}

// Start creates the run trace (also installed as the process global so
// library-level counters report into it), starts profiling and sinks, and
// returns a finish func that must run before exit — it stops the profile
// and writes every requested output. When no observability flag was given
// it returns a nil trace (all instrumentation no-ops) and a no-op finish.
func (c *CLIFlags) Start(name string) (*Trace, func() error) {
	if !c.Enabled() {
		return nil, func() error { return nil }
	}
	tr := New(name)
	SetGlobal(tr)

	var closers []func() error
	fail := func(err error) (*Trace, func() error) {
		for _, f := range closers {
			_ = f() // already failing; the original error wins
		}
		return nil, func() error { return err }
	}
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return fail(fmt.Errorf("obs: start cpu profile: %w", err))
		}
		closers = append(closers, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	var jsonl *JSONLSink
	var jsonlFile *os.File
	if c.JSONL != "" {
		f, err := os.Create(c.JSONL)
		if err != nil {
			return fail(err)
		}
		jsonlFile = f
		jsonl = NewJSONLSink(f)
		tr.SetSink(jsonl)
	}

	finish := func() error {
		tr.MemSnapshot()
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		for _, f := range closers {
			keep(f())
		}
		if jsonl != nil {
			keep(jsonl.Close(tr))
			keep(jsonlFile.Close())
		}
		if c.Metrics != "" {
			f, err := os.Create(c.Metrics)
			if err != nil {
				keep(err)
			} else {
				keep(tr.WriteJSON(f))
				keep(f.Close())
			}
		}
		if c.TraceText {
			keep(tr.WriteText(os.Stderr))
		}
		return firstErr
	}
	return tr, finish
}
