package obs

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"fpgaflow/internal/obs/events"
)

// CLIFlags bundles the standard observability flags every cmd tool exposes:
//
//	-metrics out.json     write the machine-readable run summary
//	-trace                print the span tree + counters to stderr on exit
//	-jsonl out.jsonl      stream span events as JSON Lines
//	-cpuprofile out.pprof capture a pprof CPU profile of the run
//	-memprofile out.pprof write a pprof heap profile at flow exit
//	-blockprofile out.pprof
//	                      write a pprof blocking profile (lock/chan waits)
//	-mutexprofile out.pprof
//	                      write a pprof mutex-contention profile
//	-chrometrace out.json write the span tree as a Chrome trace-event file
//	                      (load in Perfetto / chrome://tracing)
//	-events dir           stream iteration-level telemetry to dir/events.jsonl
//	                      and derive dir/heatmap.json at exit
type CLIFlags struct {
	Metrics      string
	TraceText    bool
	JSONL        string
	CPUProfile   string
	MemProfile   string
	BlockProfile string
	MutexProfile string
	ChromeTrace  string
	Events       string

	// Bus is the live event bus Start creates when -events is set; mains
	// hand it to the flow (core.Options.Events, place/route Options.Events).
	// nil when events were not requested — every publish site tolerates
	// that.
	Bus *events.Bus
}

// RegisterCLIFlags declares the observability flags on fs (use
// flag.CommandLine from a main).
func RegisterCLIFlags(fs *flag.FlagSet) *CLIFlags {
	c := &CLIFlags{}
	fs.StringVar(&c.Metrics, "metrics", "", "write machine-readable run metrics to this JSON file")
	fs.BoolVar(&c.TraceText, "trace", false, "print the span/counter trace to stderr on exit")
	fs.StringVar(&c.JSONL, "jsonl", "", "stream span events to this JSON Lines file")
	fs.StringVar(&c.CPUProfile, "cpuprofile", "", "write a pprof CPU profile to this file")
	fs.StringVar(&c.MemProfile, "memprofile", "", "write a pprof heap profile to this file at exit")
	fs.StringVar(&c.BlockProfile, "blockprofile", "", "write a pprof blocking (lock/chan wait) profile to this file at exit")
	fs.StringVar(&c.MutexProfile, "mutexprofile", "", "write a pprof mutex-contention profile to this file at exit")
	fs.StringVar(&c.ChromeTrace, "chrometrace", "", "write the span tree as a Chrome trace-event JSON file (Perfetto-loadable)")
	fs.StringVar(&c.Events, "events", "", "write iteration-level telemetry (events.jsonl + heatmap.json) into this directory")
	return c
}

// Enabled reports whether any observability output was requested.
func (c *CLIFlags) Enabled() bool {
	return c.Metrics != "" || c.TraceText || c.JSONL != "" ||
		c.CPUProfile != "" || c.MemProfile != "" ||
		c.BlockProfile != "" || c.MutexProfile != "" ||
		c.ChromeTrace != "" || c.Events != ""
}

// Start creates the run trace (also installed as the process global so
// library-level counters report into it), starts profiling and sinks, and
// returns a finish func that must run before exit — it stops the profiles
// and writes every requested output. When -events is set, Start also
// creates the live event bus (c.Bus) with a JSONL sink under the events
// directory; finish derives heatmap.json from the stream. When no
// observability flag was given it returns a nil trace (all instrumentation
// no-ops) and a no-op finish.
func (c *CLIFlags) Start(name string) (*Trace, func() error) {
	if !c.Enabled() {
		return nil, func() error { return nil }
	}
	tr := New(name)
	SetGlobal(tr)

	var closers []func() error
	fail := func(err error) (*Trace, func() error) {
		for _, f := range closers {
			_ = f() // already failing; the original error wins
		}
		return nil, func() error { return err }
	}
	if c.CPUProfile != "" {
		f, err := os.Create(c.CPUProfile)
		if err != nil {
			return fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return fail(fmt.Errorf("obs: start cpu profile: %w", err))
		}
		closers = append(closers, func() error {
			pprof.StopCPUProfile()
			return f.Close()
		})
	}
	if c.BlockProfile != "" {
		// Rate 1 records every blocking event — the full-fidelity setting
		// for an opted-in diagnosis run; finish resets the rate to 0.
		runtime.SetBlockProfileRate(1)
	}
	if c.MutexProfile != "" {
		runtime.SetMutexProfileFraction(1)
	}
	var jsonl *JSONLSink
	var jsonlFile *os.File
	if c.JSONL != "" {
		f, err := os.Create(c.JSONL)
		if err != nil {
			return fail(err)
		}
		jsonlFile = f
		jsonl = NewJSONLSink(f)
		tr.SetSink(jsonl)
	}
	var eventsFile *os.File
	if c.Events != "" {
		if err := os.MkdirAll(c.Events, 0o755); err != nil {
			return fail(err)
		}
		f, err := os.Create(filepath.Join(c.Events, "events.jsonl"))
		if err != nil {
			return fail(err)
		}
		eventsFile = f
		c.Bus = events.NewBus(0)
		c.Bus.AddSink(events.NewJSONLWriter(f).Write)
	}

	finish := func() error {
		tr.MemSnapshot()
		var firstErr error
		keep := func(err error) {
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		for _, f := range closers {
			keep(f())
		}
		if jsonl != nil {
			keep(jsonl.Close(tr))
			keep(jsonlFile.Close())
		}
		if eventsFile != nil {
			// Stop publishers before the sink's file goes away, then derive
			// the heatmap artifact from the stream.
			c.Bus.SetEnabled(false)
			if h := events.HeatmapFromBus(c.Bus); h != nil {
				f, err := os.Create(filepath.Join(c.Events, "heatmap.json"))
				if err != nil {
					keep(err)
				} else {
					keep(h.WriteJSON(f))
					keep(f.Close())
				}
			}
			keep(eventsFile.Close())
		}
		if c.MemProfile != "" {
			f, err := os.Create(c.MemProfile)
			if err != nil {
				keep(err)
			} else {
				runtime.GC() // materialize the final live-heap picture
				keep(pprof.Lookup("heap").WriteTo(f, 0))
				keep(f.Close())
			}
		}
		if c.BlockProfile != "" {
			runtime.SetBlockProfileRate(0) // stop sampling before the dump
			f, err := os.Create(c.BlockProfile)
			if err != nil {
				keep(err)
			} else {
				keep(pprof.Lookup("block").WriteTo(f, 0))
				keep(f.Close())
			}
		}
		if c.MutexProfile != "" {
			runtime.SetMutexProfileFraction(0)
			f, err := os.Create(c.MutexProfile)
			if err != nil {
				keep(err)
			} else {
				keep(pprof.Lookup("mutex").WriteTo(f, 0))
				keep(f.Close())
			}
		}
		if c.ChromeTrace != "" {
			f, err := os.Create(c.ChromeTrace)
			if err != nil {
				keep(err)
			} else {
				keep(WriteChromeTrace(f, tr.Summary()))
				keep(f.Close())
			}
		}
		if c.Metrics != "" {
			f, err := os.Create(c.Metrics)
			if err != nil {
				keep(err)
			} else {
				keep(tr.WriteJSON(f))
				keep(f.Close())
			}
		}
		if c.TraceText {
			keep(tr.WriteText(os.Stderr))
		}
		return firstErr
	}
	return tr, finish
}
