package obs

import (
	"fmt"
	"sync"
	"testing"
)

// TestCounterVecCardinalityCap is the bounded-cardinality contract: a
// hostile stream of distinct label values (tenant IDs) must collapse into
// the overflow child once the cap is hit, never grow the map unbounded,
// and never lose a count doing so.
func TestCounterVecCardinalityCap(t *testing.T) {
	tr := New("t")
	v := tr.CounterVec("jobs.submitted_by_tenant", "tenant")
	if v.Label() != "tenant" {
		t.Fatalf("Label = %q, want tenant", v.Label())
	}
	const distinct = 3 * DefaultVecCap
	for i := 0; i < distinct; i++ {
		v.Add(fmt.Sprintf("tenant-%03d", i), 1)
	}
	vals := v.Values()
	if len(vals) > DefaultVecCap+1 {
		t.Fatalf("vec grew to %d children, cap is %d (+1 overflow)", len(vals), DefaultVecCap)
	}
	var total, overflow int64
	for k, n := range vals {
		total += n
		if k == OverflowLabel {
			overflow = n
		}
	}
	if total != distinct {
		t.Errorf("counts total %d, want %d (no count may be dropped at the cap)", total, distinct)
	}
	if overflow != distinct-DefaultVecCap {
		t.Errorf("overflow child has %d, want %d", overflow, distinct-DefaultVecCap)
	}
	// A value seen before the cap keeps its own child afterwards.
	v.Add("tenant-000", 5)
	if got := v.Values()["tenant-000"]; got != 6 {
		t.Errorf("pre-cap tenant child = %d, want 6", got)
	}
}

// TestHistogramVecCapAndMerge mirrors the cap contract for histogram
// families and checks the overflow child aggregates observations.
func TestHistogramVecCapAndMerge(t *testing.T) {
	tr := New("t")
	v := tr.HistogramVec("http.request_seconds", "route")
	for i := 0; i < DefaultVecCap+10; i++ {
		v.Observe(fmt.Sprintf("route-%d", i), 0.01)
	}
	snaps := v.Snapshots()
	if len(snaps) > DefaultVecCap+1 {
		t.Fatalf("vec grew to %d children, cap is %d (+1 overflow)", len(snaps), DefaultVecCap)
	}
	if snaps[OverflowLabel].Count != 10 {
		t.Errorf("overflow child count = %d, want 10", snaps[OverflowLabel].Count)
	}
	var total uint64
	for _, s := range snaps {
		total += s.Count
	}
	if total != DefaultVecCap+10 {
		t.Errorf("observations total %d, want %d", total, DefaultVecCap+10)
	}
}

// TestVecNilSafetyAndRegistry checks nil traces and nil vecs stay inert,
// and that a vec's identity (and label key) is fixed at first use.
func TestVecNilSafetyAndRegistry(t *testing.T) {
	var nilTr *Trace
	nilTr.CounterVec("x", "l").Add("a", 1)
	nilTr.HistogramVec("x", "l").Observe("a", 1)
	if nilTr.CounterVecs() != nil || nilTr.HistogramVecs() != nil {
		t.Error("nil trace must snapshot to nil")
	}
	var nilCV *CounterVec
	nilCV.Add("a", 1)
	if nilCV.Values() != nil || nilCV.Label() != "" {
		t.Error("nil CounterVec must be inert")
	}
	var nilHV *HistogramVec
	nilHV.Observe("a", 1)
	if nilHV.Snapshots() != nil {
		t.Error("nil HistogramVec must be inert")
	}

	tr := New("t")
	a := tr.CounterVec("fam", "tenant")
	b := tr.CounterVec("fam", "ignored-second-label")
	if a != b || b.Label() != "tenant" {
		t.Error("vec registry must return the same family with its first-use label")
	}
}

// TestVecConcurrent hammers one family from many goroutines across more
// values than the cap; totals must be exact. Run under -race in CI.
func TestVecConcurrent(t *testing.T) {
	tr := New("t")
	v := tr.CounterVec("c", "k")
	var wg sync.WaitGroup
	const workers, per = 8, 500
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				v.Add(fmt.Sprintf("v%d", i%(2*DefaultVecCap)), 1)
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, n := range v.Values() {
		total += n
	}
	if total != workers*per {
		t.Errorf("total = %d, want %d", total, workers*per)
	}
}

// TestTraceMergeFrom checks the per-job-into-service fold: counters add,
// gauges last-wins, histograms and vecs merge, spans stay put.
func TestTraceMergeFrom(t *testing.T) {
	svc, job := New("svc"), New("job")
	svc.Add("jobs.finished", 1)
	job.Add("jobs.finished", 2)
	job.SetGauge("g", 7)
	job.Observe("h_seconds", 0.5)
	job.CounterVec("by_tenant", "tenant").Add("acme", 3)
	job.HistogramVec("hv_seconds", "stage").Observe("route", 0.25)
	job.Start("span").End()

	svc.MergeFrom(job)
	if got := svc.Counters()["jobs.finished"]; got != 3 {
		t.Errorf("merged counter = %d, want 3", got)
	}
	if got := svc.Gauges()["g"]; got != 7 {
		t.Errorf("merged gauge = %g, want 7", got)
	}
	if got := svc.Histograms()["h_seconds"].Count; got != 1 {
		t.Errorf("merged histogram count = %d, want 1", got)
	}
	if got := svc.CounterVecs()["by_tenant"].Values["acme"]; got != 3 {
		t.Errorf("merged counter vec = %d, want 3", got)
	}
	if got := svc.HistogramVecs()["hv_seconds"].Values["route"].Count; got != 1 {
		t.Errorf("merged histogram vec count = %d, want 1", got)
	}
	if n := len(svc.Summary().Spans); n != 0 {
		t.Errorf("MergeFrom copied %d spans; spans must not merge", n)
	}
}
