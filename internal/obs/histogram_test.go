package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketLayoutFixed pins the histogram layout the whole system depends
// on: the hardcoded bucket array must match the computed ladder, the bounds
// must be strictly increasing, and the ladder must span ns to ks.
func TestBucketLayoutFixed(t *testing.T) {
	var h Histogram
	if len(h.buckets) != numBuckets {
		t.Fatalf("Histogram.buckets has %d slots, layout needs %d — resize the array",
			len(h.buckets), numBuckets)
	}
	b := BucketBounds()
	if len(b) != numBuckets-1 {
		t.Fatalf("BucketBounds returned %d bounds, want %d", len(b), numBuckets-1)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Errorf("bounds not strictly increasing at %d: %g <= %g", i, b[i], b[i-1])
		}
	}
	if b[0] > 1e-9 || b[len(b)-1] < 1e3 {
		t.Errorf("ladder [%g, %g] does not span 1ns..1000s", b[0], b[len(b)-1])
	}
	// Mutating the returned slice must not corrupt the shared layout.
	b[0] = 999
	if BucketBounds()[0] == 999 {
		t.Error("BucketBounds returned the shared slice, not a copy")
	}
}

// TestHistogramQuantileAgainstReference is the property test for the
// tentpole: for randomly drawn sample sets, every quantile estimate must
// land inside the bucket that contains the exact quantile computed from
// the sorted sample slice. (A log-bucketed histogram can never do better
// than bucket resolution, but it must never do worse.)
func TestHistogramQuantileAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	bounds := BucketBounds()
	// bucketRange returns the [lo, hi] bucket envelope of value v.
	bucketRange := func(v float64) (float64, float64) {
		i := sort.SearchFloat64s(bounds, v)
		if i >= len(bounds) {
			return bounds[len(bounds)-1], math.Inf(1)
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		return lo, bounds[i]
	}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(400)
		samples := make([]float64, n)
		var h Histogram
		for i := range samples {
			// Log-uniform over the ladder's span, the shape the buckets target.
			v := math.Pow(10, -9+12*rng.Float64())
			samples[i] = v
			h.Observe(v)
		}
		sort.Float64s(samples)
		for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.99, 1} {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			exact := samples[rank-1]
			lo, hi := bucketRange(exact)
			got := h.Quantile(q)
			if got < lo || got > hi {
				t.Fatalf("trial %d n=%d q=%g: estimate %g outside bucket [%g, %g] of exact %g",
					trial, n, q, got, lo, hi, exact)
			}
		}
		if got, want := h.Count(), uint64(n); got != want {
			t.Fatalf("trial %d: Count = %d, want %d", trial, got, want)
		}
	}
}

// TestHistogramMergeMatchesCombinedStream checks that merging two
// histograms is exactly equivalent to observing both streams into one:
// same buckets, same count, same sum, hence identical quantiles.
func TestHistogramMergeMatchesCombinedStream(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, both Histogram
	for i := 0; i < 500; i++ {
		v := math.Pow(10, -8+10*rng.Float64())
		if i%3 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
		both.Observe(v)
	}
	a.Merge(&b)
	sa, sb := a.Snapshot(), both.Snapshot()
	if sa.Count != sb.Count {
		t.Fatalf("merged count %d != combined %d", sa.Count, sb.Count)
	}
	if math.Abs(sa.Sum-sb.Sum) > 1e-9*math.Abs(sb.Sum) {
		t.Fatalf("merged sum %g != combined %g", sa.Sum, sb.Sum)
	}
	for i := range sa.Counts {
		if sa.Counts[i] != sb.Counts[i] {
			t.Fatalf("bucket %d: merged %d != combined %d", i, sa.Counts[i], sb.Counts[i])
		}
	}
	// Snapshot-level merge must agree with histogram-level merge.
	var sc HistogramSnapshot
	sc.Merge(b.Snapshot())
	if sc.Count != b.Count() {
		t.Errorf("snapshot merge count %d, want %d", sc.Count, b.Count())
	}
}

// TestHistogramEdgeCases pins the documented corner behavior: nil safety,
// empty quantiles, NaN drop, negative clamp, overflow capping.
func TestHistogramEdgeCases(t *testing.T) {
	var nilH *Histogram
	nilH.Observe(1) // must not panic
	nilH.Merge(&Histogram{})
	if nilH.Quantile(0.5) != 0 || nilH.Count() != 0 || nilH.Sum() != 0 {
		t.Error("nil histogram must read as empty")
	}
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile must be 0")
	}
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Error("NaN observation must be dropped")
	}
	h.Observe(-5)
	if s := h.Snapshot(); s.Counts[0] != 1 {
		t.Error("negative observation must land in the first bucket")
	}
	h.Observe(1e12) // far past the ladder: overflow bucket
	top := BucketBounds()[numBuckets-2]
	if got := h.Quantile(1); got != top {
		t.Errorf("overflow quantile = %g, want top finite bound %g", got, top)
	}
}

// TestHistogramConcurrentObserve hammers one histogram from many
// goroutines; count and sum must be exact (the loss modes of non-atomic
// accumulation would show up here, especially under -race).
func TestHistogramConcurrentObserve(t *testing.T) {
	const workers, per = 8, 2000
	var h Histogram
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got, want := h.Count(), uint64(workers*per); got != want {
		t.Errorf("Count = %d, want %d", got, want)
	}
	if got, want := h.Sum(), float64(workers*per)*0.001; math.Abs(got-want) > 1e-6 {
		t.Errorf("Sum = %g, want %g", got, want)
	}
}

// TestGaugeMaxConcurrent is the regression test for the Set/Max data race:
// concurrent Max calls must settle on the true maximum and concurrent
// Set/Max must never lose the set-ness bit. Run under -race in CI.
func TestGaugeMaxConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				g.Max(float64(w*per + i))
				if i%97 == 0 {
					g.Set(-1) // Set racing Max must not corrupt state
				}
			}
		}(w)
	}
	wg.Wait()
	got := g.Value()
	max := float64(workers*per - 1)
	// A Set(-1) may land anywhere in the Max stream, so the final value is
	// only bounded: it must be some argument that was actually passed, never
	// a torn or stale mixture of the two.
	if got < -1 || got > max {
		t.Errorf("after concurrent Max/Set, Value = %g; want within [-1, %g]", got, max)
	}
	// With Max alone the result must be exact.
	var m Gauge
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Max(float64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if m.Value() != max {
		t.Errorf("concurrent Max settled on %g, want %g", m.Value(), max)
	}
}

// TestTimerObservesIntoHistogram checks the walltime-safe timing path: the
// timer must record one observation, and the inert (nil-histogram) form
// must do nothing.
func TestTimerObservesIntoHistogram(t *testing.T) {
	tr := New("t")
	h := tr.Histogram("x_seconds")
	tm := h.StartTimer()
	time.Sleep(time.Millisecond)
	if d := tm.ObserveDuration(); d <= 0 {
		t.Errorf("ObserveDuration = %v, want > 0", d)
	}
	if h.Count() != 1 {
		t.Errorf("Count = %d after one timed section, want 1", h.Count())
	}
	var nilH *Histogram
	if d := nilH.StartTimer().ObserveDuration(); d != 0 {
		t.Errorf("inert timer returned %v, want 0", d)
	}
	// Trace-level shorthand and snapshot plumbing.
	tr.Observe("x_seconds", 0.5)
	if snaps := tr.Histograms(); snaps["x_seconds"].Count != 2 {
		t.Errorf("Histograms snapshot = %+v, want count 2", snaps["x_seconds"])
	}
}
