package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// promNamespace prefixes every exposed metric so scrapes from mixed fleets
// stay distinguishable.
const promNamespace = "fpgaflow_"

// WritePrometheus renders every metric of the given traces in the
// Prometheus text exposition format (version 0.0.4), dependency-free:
//
//   - counters as `<ns><name>_total` counter samples (summed across traces)
//   - gauges as gauge samples (later traces win on name collisions)
//   - histograms as `_bucket`/`_sum`/`_count` families (merged exactly —
//     all histograms share one fixed bucket layout)
//   - labeled families with their one label key, cardinality already
//     bounded at the vec layer
//   - a `<ns>build_info` gauge carrying build provenance as labels
//
// Metric names are sanitized (every non-[a-zA-Z0-9_:] rune becomes `_`)
// and output is fully sorted, so the document is byte-stable for a given
// metric state and safe to golden-test. Nil traces are skipped.
func WritePrometheus(w io.Writer, traces ...*Trace) error {
	agg := aggregate(traces)
	bw := bufio.NewWriter(w)

	bi := ReadBuild()
	fmt.Fprintf(bw, "# HELP %sbuild_info Build provenance of the exposing process (value is always 1).\n", promNamespace)
	fmt.Fprintf(bw, "# TYPE %sbuild_info gauge\n", promNamespace)
	fmt.Fprintf(bw, "%sbuild_info{go_version=\"%s\",module_version=\"%s\",revision=\"%s\",modified=\"%s\"} 1\n",
		promNamespace, promEscape(bi.GoVersion), promEscape(orDevel(bi.ModuleVersion)),
		promEscape(bi.Revision), promEscape(strconv.FormatBool(bi.Modified)))

	for _, name := range sortedKeys(agg.counters) {
		m := promName(name) + "_total"
		fmt.Fprintf(bw, "# HELP %s Counter %s.\n", m, name)
		fmt.Fprintf(bw, "# TYPE %s counter\n", m)
		fmt.Fprintf(bw, "%s %d\n", m, agg.counters[name])
	}
	for _, name := range sortedKeys(agg.counterVecs) {
		vec := agg.counterVecs[name]
		m := promName(name) + "_total"
		label := promLabelName(vec.Label)
		fmt.Fprintf(bw, "# HELP %s Counter %s by %s.\n", m, name, vec.Label)
		fmt.Fprintf(bw, "# TYPE %s counter\n", m)
		for _, lv := range sortedKeys(vec.Values) {
			fmt.Fprintf(bw, "%s{%s=\"%s\"} %d\n", m, label, promEscape(lv), vec.Values[lv])
		}
	}
	for _, name := range sortedKeys(agg.gauges) {
		m := promName(name)
		fmt.Fprintf(bw, "# HELP %s Gauge %s.\n", m, name)
		fmt.Fprintf(bw, "# TYPE %s gauge\n", m)
		fmt.Fprintf(bw, "%s %s\n", m, promFloat(agg.gauges[name]))
	}
	for _, name := range sortedKeys(agg.histograms) {
		writePromHistogramHeader(bw, name)
		writePromHistogram(bw, name, "", "", agg.histograms[name])
	}
	for _, name := range sortedKeys(agg.histogramVecs) {
		vec := agg.histogramVecs[name]
		// Metadata once per family, then every labeled child: the format
		// forbids a second # TYPE for a family once its samples started.
		writePromHistogramHeader(bw, name)
		for _, lv := range sortedKeys(vec.Values) {
			writePromHistogram(bw, name, vec.Label, lv, vec.Values[lv])
		}
	}
	return bw.Flush()
}

// writePromHistogramHeader emits the HELP/TYPE block of one histogram
// family.
func writePromHistogramHeader(w io.Writer, name string) {
	m := promName(name)
	fmt.Fprintf(w, "# HELP %s Histogram %s (seconds).\n", m, name)
	fmt.Fprintf(w, "# TYPE %s histogram\n", m)
}

// writePromHistogram emits the sample lines of one histogram family (or of
// one labeled child of it).
func writePromHistogram(w io.Writer, name, label, labelValue string, s HistogramSnapshot) {
	m := promName(name)
	sel := ""
	selAnd := ""
	if label != "" {
		sel = fmt.Sprintf("{%s=\"%s\"}", promLabelName(label), promEscape(labelValue))
		selAnd = fmt.Sprintf("%s=\"%s\",", promLabelName(label), promEscape(labelValue))
	}
	cum := uint64(0)
	for i, bound := range bucketBounds {
		if i < len(s.Counts) {
			cum += s.Counts[i]
		}
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", m, selAnd, promFloat(bound), cum)
	}
	if len(s.Counts) >= numBuckets {
		cum += s.Counts[numBuckets-1]
	}
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", m, selAnd, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", m, sel, promFloat(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", m, sel, cum)
}

// promAgg is the merged view of several traces.
type promAgg struct {
	counters      map[string]int64
	gauges        map[string]float64
	histograms    map[string]HistogramSnapshot
	counterVecs   map[string]VecSnapshot[int64]
	histogramVecs map[string]VecSnapshot[HistogramSnapshot]
}

func aggregate(traces []*Trace) promAgg {
	agg := promAgg{
		counters:      map[string]int64{},
		gauges:        map[string]float64{},
		histograms:    map[string]HistogramSnapshot{},
		counterVecs:   map[string]VecSnapshot[int64]{},
		histogramVecs: map[string]VecSnapshot[HistogramSnapshot]{},
	}
	for _, tr := range traces {
		if tr == nil {
			continue
		}
		for name, v := range tr.Counters() {
			agg.counters[name] += v
		}
		for name, v := range tr.Gauges() {
			agg.gauges[name] = v
		}
		for name, s := range tr.Histograms() {
			cur := agg.histograms[name]
			cur.Merge(s)
			agg.histograms[name] = cur
		}
		for name, vec := range tr.CounterVecs() {
			cur, ok := agg.counterVecs[name]
			if !ok {
				cur = VecSnapshot[int64]{Label: vec.Label, Values: map[string]int64{}}
			}
			for lv, n := range vec.Values {
				cur.Values[lv] += n
			}
			agg.counterVecs[name] = cur
		}
		for name, vec := range tr.HistogramVecs() {
			cur, ok := agg.histogramVecs[name]
			if !ok {
				cur = VecSnapshot[HistogramSnapshot]{Label: vec.Label, Values: map[string]HistogramSnapshot{}}
			}
			for lv, s := range vec.Values {
				c := cur.Values[lv]
				c.Merge(s)
				cur.Values[lv] = c
			}
			agg.histogramVecs[name] = cur
		}
	}
	return agg
}

// promName sanitizes a dotted metric name into the exposition charset and
// applies the namespace prefix.
func promName(name string) string {
	return promNamespace + promLabelName(name)
}

// promLabelName sanitizes a label key (no namespace prefix — label keys
// are scoped by their metric already).
func promLabelName(name string) string {
	var b strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			b.WriteRune(r)
		case r >= '0' && r <= '9' && i > 0:
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promEscape escapes a label value per the text format: backslash, double
// quote and newline. Callers wrap the result in plain double quotes (never
// %q, which would escape the backslashes a second time).
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// promFloat renders a float the way Prometheus expects (shortest
// round-trippable form).
func promFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// ValidatePrometheus checks a text-exposition document for the properties
// scrapers depend on: every line is a well-formed comment or sample, label
// values are quoted with no unescaped quote/newline, every sample's family
// has a preceding # TYPE, histogram bucket counts are monotone
// nondecreasing in le order, and every histogram carries an le="+Inf"
// bucket equal to its _count. It is the CI gate behind
// `/metrics?format=prom` (cmd/promlint).
func ValidatePrometheus(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	types := map[string]string{} // family -> declared type
	sampled := map[string]bool{} // family -> has samples
	type histState struct {
		lastLe   float64
		lastCum  uint64
		sawInf   bool
		infCount uint64
	}
	hists := map[string]*histState{} // family+label selector (minus le) -> bucket state
	counts := map[string]uint64{}    // family+selector -> _count value
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && fields[1] == "TYPE" {
				if len(fields) < 4 {
					return fmt.Errorf("line %d: malformed # TYPE", lineNo)
				}
				family, typ := fields[2], fields[3]
				switch typ {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
				}
				if sampled[family] {
					return fmt.Errorf("line %d: # TYPE %s after its samples", lineNo, family)
				}
				types[family] = typ
			}
			continue
		}
		name, labels, value, err := parsePromSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		family := promFamily(name)
		if _, ok := types[family]; !ok {
			// A gauge or counter whose own name happens to end in a
			// histogram suffix is still fine if declared under its full name.
			if _, ok := types[name]; ok {
				family = name
			} else {
				return fmt.Errorf("line %d: sample %s without a preceding # TYPE %s", lineNo, name, family)
			}
		}
		sampled[family] = true

		if strings.HasSuffix(name, "_bucket") {
			le, ok := labels["le"]
			if !ok {
				return fmt.Errorf("line %d: %s has no le label", lineNo, name)
			}
			sel := histKey(name[:len(name)-len("_bucket")], labels)
			st := hists[sel]
			if st == nil {
				st = &histState{lastLe: -1e308}
				hists[sel] = st
			}
			cum := uint64(value)
			if le == "+Inf" {
				st.sawInf = true
				st.infCount = cum
			} else {
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("line %d: bad le value %q", lineNo, le)
				}
				if bound <= st.lastLe {
					return fmt.Errorf("line %d: %s buckets out of le order", lineNo, name)
				}
				st.lastLe = bound
			}
			if cum < st.lastCum {
				return fmt.Errorf("line %d: %s bucket counts not monotone", lineNo, name)
			}
			st.lastCum = cum
		} else if strings.HasSuffix(name, "_count") {
			counts[histKey(name[:len(name)-len("_count")], labels)] = uint64(value)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for sel, st := range hists {
		if !st.sawInf {
			return fmt.Errorf("histogram %s: no le=\"+Inf\" bucket", sel)
		}
		if c, ok := counts[sel]; ok && c != st.infCount {
			return fmt.Errorf("histogram %s: _count %d != +Inf bucket %d", sel, c, st.infCount)
		}
	}
	return nil
}

// promFamily strips the histogram/summary sample suffixes back to the
// family name # TYPE declares.
func promFamily(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count", "_total"} {
		if strings.HasSuffix(name, suf) {
			base := name[:len(name)-len(suf)]
			if suf == "_total" {
				return name // counters are declared with the _total suffix
			}
			return base
		}
	}
	return name
}

// histKey identifies one histogram series: base name plus every label
// except le, sorted.
func histKey(base string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		if k != "le" {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(base)
	for _, k := range keys {
		fmt.Fprintf(&b, "{%s=%q}", k, labels[k])
	}
	return b.String()
}

// parsePromSample parses `name{label="value",...} 1.5` (labels optional).
func parsePromSample(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	i := 0
	for i < len(line) && isPromNameRune(line[i], i) {
		i++
	}
	if i == 0 {
		return "", nil, 0, fmt.Errorf("no metric name in %q", line)
	}
	name = line[:i]
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end := -1
		inQuote := false
		for j := 1; j < len(rest); j++ {
			switch {
			case inQuote && rest[j] == '\\':
				j++ // skip the escaped rune
			case rest[j] == '"':
				inQuote = !inQuote
			case !inQuote && rest[j] == '}':
				end = j
			}
			if end >= 0 {
				break
			}
		}
		if end < 0 {
			return "", nil, 0, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parsePromLabels(rest[1:end], labels); err != nil {
			return "", nil, 0, err
		}
		rest = rest[end+1:]
	}
	rest = strings.TrimSpace(rest)
	// A timestamp after the value is legal; take the first field.
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		rest = rest[:sp]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad sample value in %q: %v", line, err)
	}
	return name, labels, v, nil
}

func parsePromLabels(s string, out map[string]string) error {
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return fmt.Errorf("malformed label pair in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label %s value not quoted", key)
		}
		var b strings.Builder
		j := 1
		closed := false
		for j < len(s) {
			c := s[j]
			if c == '\\' {
				if j+1 >= len(s) {
					return fmt.Errorf("label %s: dangling escape", key)
				}
				switch s[j+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return fmt.Errorf("label %s: bad escape \\%c", key, s[j+1])
				}
				j += 2
				continue
			}
			if c == '"' {
				closed = true
				j++
				break
			}
			if c == '\n' {
				return fmt.Errorf("label %s: unescaped newline", key)
			}
			b.WriteByte(c)
			j++
		}
		if !closed {
			return fmt.Errorf("label %s: unterminated value", key)
		}
		out[key] = b.String()
		s = s[j:]
		if len(s) > 0 {
			if s[0] != ',' {
				return fmt.Errorf("label %s: expected , got %q", key, s)
			}
			s = s[1:]
		}
	}
	return nil
}

func isPromNameRune(c byte, pos int) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		return true
	case c >= '0' && c <= '9':
		return pos > 0
	}
	return false
}
