package obs

import (
	"context"
	"testing"
)

// TestTraceContextRoundTrip checks the context plumbing the job workers use
// to hand a per-job trace down to the flow runner.
func TestTraceContextRoundTrip(t *testing.T) {
	if got := TraceFromContext(context.Background()); got != nil {
		t.Errorf("empty context yielded trace %v", got)
	}
	tr := New("job")
	ctx := ContextWithTrace(context.Background(), tr)
	if got := TraceFromContext(ctx); got != tr {
		t.Error("trace did not round-trip through the context")
	}
	// A nil trace must not shadow an inherited one.
	if got := TraceFromContext(ContextWithTrace(ctx, nil)); got != tr {
		t.Error("ContextWithTrace(nil) clobbered the inherited trace")
	}
}

// TestDeriveTraceID pins the ID contract: deterministic, 16 lowercase hex
// chars, sensitive to every part and to part boundaries.
func TestDeriveTraceID(t *testing.T) {
	id := DeriveTraceID("job-1", "fp")
	if id != DeriveTraceID("job-1", "fp") {
		t.Error("DeriveTraceID not deterministic")
	}
	if len(id) != 16 {
		t.Errorf("trace ID %q has length %d, want 16", id, len(id))
	}
	for _, r := range id {
		if !(r >= '0' && r <= '9' || r >= 'a' && r <= 'f') {
			t.Errorf("trace ID %q is not lowercase hex", id)
			break
		}
	}
	if DeriveTraceID("job-1", "fp") == DeriveTraceID("job-1", "fq") {
		t.Error("trace ID ignores later parts")
	}
	if DeriveTraceID("ab", "c") == DeriveTraceID("a", "bc") {
		t.Error("trace ID must separate parts (\"ab\",\"c\" vs \"a\",\"bc\")")
	}

	// SetTraceID/TraceID surface on the trace and its summary.
	tr := New("t")
	tr.SetTraceID(id)
	if tr.TraceID() != id || tr.Summary().TraceID != id {
		t.Error("trace ID not carried into the summary")
	}
}
