package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// bucketBounds is the fixed upper-bound ladder every Histogram uses: a
// 1/2.5/5 log ladder spanning 1ns to 5000s (in seconds). A fixed layout
// means any two histograms merge bucket-for-bucket and snapshots are
// deterministic across processes — no per-instance configuration to drift.
var bucketBounds = func() []float64 {
	b := make([]float64, 0, 3*13)
	for e := -9; e <= 3; e++ {
		p := math.Pow(10, float64(e))
		b = append(b, 1*p, 2.5*p, 5*p)
	}
	return b
}()

// numBuckets is len(bucketBounds) plus the +Inf overflow bucket.
var numBuckets = len(bucketBounds) + 1

// BucketBounds returns the shared upper-bound ladder (exclusive of +Inf).
// The slice is a copy; the layout itself is fixed.
func BucketBounds() []float64 {
	return append([]float64(nil), bucketBounds...)
}

// Histogram is a lock-free log-bucketed distribution metric. Observe is
// wait-free on the bucket counters (one atomic add each for bucket and
// count, a CAS loop for the sum) and allocation-free, so it is safe to call
// from hot loops. Like Counter and Gauge, every method is a no-op on nil.
type Histogram struct {
	buckets [40]atomic.Uint64 // numBuckets; last is the +Inf overflow
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample. NaN samples are dropped; negative samples
// land in the first bucket. No-op on nil.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Binary search for the first bound >= v; misses fall in overflow.
	lo, hi := 0, len(bucketBounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if bucketBounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Merge adds every bucket, the count and the sum of o into h. Histograms
// share one fixed bucket layout, so the merge is exact. No-op when either
// side is nil.
func (h *Histogram) Merge(o *Histogram) {
	if h == nil || o == nil {
		return
	}
	for i := range o.buckets {
		if n := o.buckets[i].Load(); n > 0 {
			h.buckets[i].Add(n)
		}
	}
	if n := o.count.Load(); n > 0 {
		h.count.Add(n)
	}
	if s := o.Sum(); s != 0 {
		for {
			old := h.sumBits.Load()
			new := math.Float64bits(math.Float64frombits(old) + s)
			if h.sumBits.CompareAndSwap(old, new) {
				break
			}
		}
	}
}

// Quantile estimates the q-quantile (0 <= q <= 1) by locating the bucket
// holding the rank and interpolating linearly inside it. Returns 0 on nil
// or an empty histogram; overflow-bucket ranks return the top finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	snap := h.Snapshot()
	return snap.Quantile(q)
}

// Snapshot captures a consistent-enough point-in-time copy of the
// histogram (bucket loads are individually atomic; concurrent observers
// may land between loads, which is the usual monitoring contract).
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if h == nil {
		return s
	}
	s.Counts = make([]uint64, numBuckets)
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.Sum()
	return s
}

// HistogramSnapshot is the serializable point-in-time state of a
// Histogram. Counts is per-bucket (not cumulative), aligned with
// BucketBounds plus a final +Inf overflow slot.
type HistogramSnapshot struct {
	Counts []uint64 `json:"counts"`
	Sum    float64  `json:"sum"`
	Count  uint64   `json:"count"`
}

// Quantile estimates the q-quantile of the snapshot (see
// Histogram.Quantile).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := uint64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the sample the quantile names.
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	cum := uint64(0)
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		cum += c
		if cum < rank {
			continue
		}
		if i >= len(bucketBounds) {
			// Overflow bucket: the best bounded answer is the top finite edge.
			return bucketBounds[len(bucketBounds)-1]
		}
		lower := 0.0
		if i > 0 {
			lower = bucketBounds[i-1]
		}
		upper := bucketBounds[i]
		// Linear interpolation of the rank's position within this bucket.
		into := float64(rank-(cum-c)) / float64(c)
		return lower + (upper-lower)*into
	}
	return bucketBounds[len(bucketBounds)-1]
}

// Merge adds o into s bucket-for-bucket (both must carry the fixed
// layout; short slices are tolerated).
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	if len(s.Counts) < numBuckets {
		c := make([]uint64, numBuckets)
		copy(c, s.Counts)
		s.Counts = c
	}
	for i, c := range o.Counts {
		if i < len(s.Counts) {
			s.Counts[i] += c
		}
	}
	s.Sum += o.Sum
	s.Count += o.Count
}

// Timer measures one duration into a histogram without the caller touching
// the clock (flow-stage packages are barred from raw time.Now by the
// walltime analyzer; this helper keeps the time read inside obs).
type Timer struct {
	h     *Histogram
	start time.Time
}

// StartTimer begins timing one observation. On a nil histogram it returns
// an inert Timer and never reads the clock.
func (h *Histogram) StartTimer() Timer {
	if h == nil {
		return Timer{}
	}
	return Timer{h: h, start: time.Now()}
}

// ObserveDuration records the elapsed time in seconds and returns it.
// Inert timers (nil histogram) return 0 without reading the clock.
func (t Timer) ObserveDuration() time.Duration {
	if t.h == nil {
		return 0
	}
	d := time.Since(t.start)
	t.h.Observe(d.Seconds())
	return d
}

// Histogram returns (creating on first use) the named histogram; nil on a
// nil trace.
func (t *Trace) Histogram(name string) *Histogram {
	if t == nil {
		return nil
	}
	if h, ok := t.histograms.Load(name); ok {
		return h.(*Histogram)
	}
	h, _ := t.histograms.LoadOrStore(name, &Histogram{})
	return h.(*Histogram)
}

// Observe is shorthand for Histogram(name).Observe(v).
func (t *Trace) Observe(name string, v float64) { t.Histogram(name).Observe(v) }

// Histograms returns a snapshot of every non-empty histogram.
func (t *Trace) Histograms() map[string]HistogramSnapshot {
	if t == nil {
		return nil
	}
	out := make(map[string]HistogramSnapshot)
	t.histograms.Range(func(k, v interface{}) bool {
		h := v.(*Histogram)
		if h.Count() > 0 {
			out[k.(string)] = h.Snapshot()
		}
		return true
	})
	return out
}
