package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNestingAndOrdering(t *testing.T) {
	tr := New("test")
	a := tr.Start("A")
	b := tr.Start("B")
	time.Sleep(time.Millisecond)
	b.End()
	c := tr.Start("C")
	c.End()
	a.End()
	d := tr.Start("D")
	d.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	wantOrder := []string{"A", "B", "C", "D"}
	wantPath := []string{"A", "A/B", "A/C", "D"}
	wantDepth := []int{0, 1, 1, 0}
	for i, s := range spans {
		if s.Name != wantOrder[i] {
			t.Errorf("span %d name %q, want %q", i, s.Name, wantOrder[i])
		}
		if s.Path != wantPath[i] {
			t.Errorf("span %d path %q, want %q", i, s.Path, wantPath[i])
		}
		if s.Depth != wantDepth[i] {
			t.Errorf("span %d depth %d, want %d", i, s.Depth, wantDepth[i])
		}
	}
	if spans[1].Wall <= 0 {
		t.Errorf("span B wall %v, want > 0", spans[1].Wall)
	}
	if spans[0].Wall < spans[1].Wall {
		t.Errorf("parent wall %v shorter than child wall %v", spans[0].Wall, spans[1].Wall)
	}
}

func TestSpanDoubleEndIsStable(t *testing.T) {
	tr := New("test")
	s := tr.Start("once")
	s.End()
	wall := s.Wall
	time.Sleep(time.Millisecond)
	s.End()
	if s.Wall != wall {
		t.Fatalf("second End changed Wall from %v to %v", wall, s.Wall)
	}
}

func TestCounterConcurrentAggregation(t *testing.T) {
	tr := New("test")
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Counter("work.items").Add(1)
				tr.Gauge("work.level").Max(float64(i))
			}
		}()
	}
	wg.Wait()
	if got := tr.Counter("work.items").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := tr.Gauge("work.level").Value(); got != perWorker-1 {
		t.Fatalf("gauge max = %g, want %d", got, perWorker-1)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Trace
	sp := tr.Start("nope")
	sp.SetDetail("x %d", 1)
	sp.End()
	tr.Counter("c").Add(5)
	tr.Add("c", 1)
	tr.Gauge("g").Set(2)
	tr.SetGauge("g", 3)
	tr.MemSnapshot()
	if tr.Summary() != nil {
		t.Fatal("nil trace Summary should be nil")
	}
	if err := tr.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if got := tr.Counters(); got != nil {
		t.Fatalf("nil trace Counters = %v", got)
	}
	// No global installed: C must be a safe no-op.
	SetGlobal(nil)
	C("whatever").Add(1)
}

func TestJSONRoundTrip(t *testing.T) {
	tr := New("roundtrip")
	s := tr.Start("stage1")
	s.SetDetail("did %d things", 3)
	s.End()
	inner := tr.Start("stage2")
	tr.Start("stage2.1").End()
	inner.End()
	tr.Add("items", 42)
	tr.SetGauge("ratio", 0.75)

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ParseSummary(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "roundtrip" {
		t.Errorf("name %q", got.Name)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(got.Spans))
	}
	if got.Spans[0].Detail != "did 3 things" {
		t.Errorf("detail %q", got.Spans[0].Detail)
	}
	if got.Spans[2].Path != "stage2/stage2.1" {
		t.Errorf("nested path %q", got.Spans[2].Path)
	}
	if got.Counters["items"] != 42 {
		t.Errorf("counter %d", got.Counters["items"])
	}
	if got.Gauges["ratio"] != 0.75 {
		t.Errorf("gauge %g", got.Gauges["ratio"])
	}
	// Encoding the parsed summary again must yield identical structure.
	again, err := json.Marshal(got)
	if err != nil {
		t.Fatal(err)
	}
	var a, b Summary
	if err := json.Unmarshal(buf.Bytes(), &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(again, &b); err != nil {
		t.Fatal(err)
	}
	if a.Name != b.Name || len(a.Spans) != len(b.Spans) ||
		a.Counters["items"] != b.Counters["items"] || a.Gauges["ratio"] != b.Gauges["ratio"] {
		t.Fatal("round-trip mismatch")
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	tr := New("jsonl")
	sink := NewJSONLSink(&buf)
	tr.SetSink(sink)
	tr.Start("a").End()
	tr.Start("b").End()
	tr.Add("n", 7)
	if err := sink.Close(tr); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d JSONL lines, want 3 (2 spans + summary):\n%s", len(lines), buf.String())
	}
	for i, line := range lines[:2] {
		var ev struct {
			Event string      `json:"ev"`
			Span  *SpanRecord `json:"span"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if ev.Event != "span" || ev.Span == nil {
			t.Fatalf("line %d: %+v", i, ev)
		}
	}
	var last struct {
		Event string   `json:"ev"`
		Sum   *Summary `json:"summary"`
	}
	if err := json.Unmarshal([]byte(lines[2]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Event != "summary" || last.Sum == nil || last.Sum.Counters["n"] != 7 {
		t.Fatalf("summary line: %+v", last)
	}
}

func TestWriteTextMentionsEverything(t *testing.T) {
	tr := New("text")
	s := tr.Start("Pack")
	s.SetDetail("2 CLBs")
	s.End()
	tr.Add("pack.clusters", 2)
	tr.SetGauge("pack.fill", 0.9)
	var buf bytes.Buffer
	if err := tr.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"trace text", "Pack", "2 CLBs", "pack.clusters", "pack.fill"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestGlobalTrace(t *testing.T) {
	tr := New("global")
	SetGlobal(tr)
	defer SetGlobal(nil)
	C("hits").Add(3)
	if got := tr.Counter("hits").Value(); got != 3 {
		t.Fatalf("global counter = %d, want 3", got)
	}
	if Global() != tr {
		t.Fatal("Global() did not return the installed trace")
	}
}

func TestMemSnapshot(t *testing.T) {
	tr := New("mem")
	tr.MemSnapshot()
	g := tr.Gauges()
	if g["mem.total_alloc_bytes"] <= 0 {
		t.Fatalf("mem.total_alloc_bytes = %g, want > 0", g["mem.total_alloc_bytes"])
	}
}
