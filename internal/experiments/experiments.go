// Package experiments regenerates every table and figure of the paper's
// evaluation, plus the architecture explorations that section 3 cites.
// Each function returns the data and can render the paper's rows to a
// writer; cmd/experiments and the root bench harness drive them.
package experiments

import (
	"fmt"
	"io"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/circuit"
)

// Table1 reproduces "Table 1: Energy consumption, delay and energy delay
// product of DET F/Fs".
func Table1(w io.Writer) ([]*circuit.DETFFResult, error) {
	rows, err := circuit.Table1(arch.STM018())
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Table 1: DETFF energy, delay, energy-delay product (STM 0.18um model)\n")
	fmt.Fprintf(w, "%-10s %14s %12s %18s %12s\n", "Cell", "Total Energy", "Delay", "EnergyDelayProd", "Transistors")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %11.2f fJ %9.1f ps %15.3g J*s %12d\n",
			r.Kind, r.Energy*1e15, r.Delay*1e12, r.EDP, r.Transistors)
	}
	best := pickDETFF(rows)
	fmt.Fprintf(w, "-> lowest energy: %s; lowest EDP: %s; selected: %s (simplest structure)\n",
		best.minEnergy, best.minEDP, best.minEnergy)
	return rows, nil
}

type detffPick struct{ minEnergy, minEDP string }

func pickDETFF(rows []*circuit.DETFFResult) detffPick {
	var p detffPick
	var bestE, bestEDP float64
	for i, r := range rows {
		if i == 0 || r.Energy < bestE {
			bestE = r.Energy
			p.minEnergy = r.Kind.String()
		}
		if i == 0 || r.EDP < bestEDP {
			bestEDP = r.EDP
			p.minEDP = r.Kind.String()
		}
	}
	return p
}

// Table2 reproduces "Table 2: Energy consumption for single and gated
// clock" at BLE level.
func Table2(w io.Writer) ([]*circuit.Table2Row, error) {
	rows, err := circuit.Table2(arch.STM018())
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Table 2: single vs gated clock at BLE level\n")
	single := rows[0].Energy
	for _, r := range rows {
		label := r.Config
		if r.Config == "gated clock" {
			if r.Enable {
				label += ` (clock_enable "1")`
			} else {
				label += ` (clock_enable "0")`
			}
		}
		fmt.Fprintf(w, "  %-28s E = %6.2f fJ (%+.1f%% vs single)\n",
			label, r.Energy*1e15, 100*(r.Energy-single)/single)
	}
	return rows, nil
}

// Table3 reproduces "Table 3: Energy consumption for single and gated clock
// at CLB level" for the paper's 5-BLE cluster.
func Table3(w io.Writer) ([]*circuit.Table3Row, error) {
	rows, err := circuit.Table3(arch.STM018(), 5)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(w, "Table 3: single vs gated clock at CLB level (N=5)\n")
	fmt.Fprintf(w, "  %-16s %14s %14s %10s\n", "Condition", "Single Clock", "Gated Clock", "delta")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-16s %11.2f fJ %11.2f fJ %+9.1f%%\n",
			r.Condition, r.SingleClock*1e15, r.GatedClock*1e15,
			100*(r.GatedClock-r.SingleClock)/r.SingleClock)
	}
	if p, err := circuit.GatingBreakEven(rows); err == nil {
		fmt.Fprintf(w, "-> CLB gating pays off when P(all F/Fs idle) > %.2f (paper: ~1/3)\n", p)
	}
	return rows, nil
}

// SizingFigure renders one of Figs 8-10: normalized energy-delay-area
// product vs routing pass-transistor width for each wire length.
func SizingFigure(w io.Writer, figName string, data map[int][]circuit.SizingPoint) {
	fmt.Fprintf(w, "%s: normalized E*D*A vs pass transistor width\n", figName)
	fmt.Fprintf(w, "  %8s", "width")
	for _, wd := range circuit.SweepWidths() {
		fmt.Fprintf(w, " %7.0fx", wd)
	}
	fmt.Fprintln(w)
	for _, l := range circuit.WireLengths() {
		pts := circuit.NormalizeEDA(data[l])
		fmt.Fprintf(w, "  len=%-4d", l)
		for _, p := range pts {
			fmt.Fprintf(w, " %8.2f", p.EDA)
		}
		fmt.Fprintf(w, "   optimum %gx\n", circuit.OptimalWidth(pts))
	}
}

// Fig8 reproduces Figure 8 (min width, min spacing).
func Fig8(w io.Writer) map[int][]circuit.SizingPoint {
	data := circuit.Fig8(arch.STM018())
	SizingFigure(w, "Fig 8 (min width, min spacing)", data)
	return data
}

// Fig9 reproduces Figure 9 (min width, double spacing).
func Fig9(w io.Writer) map[int][]circuit.SizingPoint {
	data := circuit.Fig9(arch.STM018())
	SizingFigure(w, "Fig 9 (min width, double spacing)", data)
	return data
}

// Fig10 reproduces Figure 10 (double width, double spacing).
func Fig10(w io.Writer) map[int][]circuit.SizingPoint {
	data := circuit.Fig10(arch.STM018())
	SizingFigure(w, "Fig 10 (double width, double spacing)", data)
	return data
}

// TriState reproduces the tri-state buffer sizing exploration of §3.3.2
// (results the paper omitted for space): buffer width sweep at the selected
// wire geometry, compared against the chosen pass-transistor design point.
func TriState(w io.Writer) []circuit.SizingPoint {
	tech := arch.STM018()
	cfg := circuit.MinWidthDblSpacing()
	pts := circuit.TriStateSweep(tech, cfg, 1)
	fmt.Fprintf(w, "Tri-state buffer sizing (len-1 wires, min width double spacing)\n")
	for _, p := range pts {
		fmt.Fprintf(w, "  %4.0fx  E=%7.2f fJ  D=%7.1f ps  A=%6.1f  EDA=%.3g\n",
			p.SwitchWidth, p.Energy*1e15, p.Delay*1e12, p.Area, p.EDA)
	}
	pass := circuit.PassTransistorPoint(tech, cfg, 1, 10)
	fmt.Fprintf(w, "-> selected pass transistor 10x: E=%.2f fJ D=%.1f ps (buffers omitted: pass transistors win on energy)\n",
		pass.Energy*1e15, pass.Delay*1e12)
	return pts
}
