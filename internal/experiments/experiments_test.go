package experiments

import (
	"io"
	"strings"
	"testing"

	"fpgaflow/internal/circuit"
	"fpgaflow/internal/circuits"
)

func TestTable1Report(t *testing.T) {
	var sb strings.Builder
	rows, err := Table1(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	out := sb.String()
	for _, cell := range []string{"Chung 1", "Chung 2", "Llopis 1", "Llopis 2", "Strollo"} {
		if !strings.Contains(out, cell) {
			t.Errorf("report missing %s", cell)
		}
	}
	if !strings.Contains(out, "lowest energy: Llopis 1") {
		t.Errorf("paper conclusion missing:\n%s", out)
	}
	if !strings.Contains(out, "lowest EDP: Chung 2") {
		t.Errorf("paper conclusion missing:\n%s", out)
	}
}

func TestTable2Report(t *testing.T) {
	var sb strings.Builder
	rows, err := Table2(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatal("want 3 rows")
	}
	// Idle saving must be large and negative in the rendered delta.
	if !strings.Contains(sb.String(), "-") {
		t.Error("no negative delta rendered")
	}
}

func TestTable3Report(t *testing.T) {
	var sb strings.Builder
	rows, err := Table3(&sb)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatal("want 3 conditions")
	}
	if !strings.Contains(sb.String(), "pays off") {
		t.Error("break-even line missing")
	}
}

func TestFigures(t *testing.T) {
	for name, fn := range map[string]func(io.Writer) map[int][]circuit.SizingPoint{
		"fig8": Fig8, "fig9": Fig9, "fig10": Fig10,
	} {
		var sb strings.Builder
		data := fn(&sb)
		if len(data) != 4 {
			t.Errorf("%s: %d wire lengths", name, len(data))
		}
		if !strings.Contains(sb.String(), "optimum") {
			t.Errorf("%s: no optimum reported", name)
		}
	}
}

func TestTriStateReport(t *testing.T) {
	var sb strings.Builder
	pts := TriState(&sb)
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	if !strings.Contains(sb.String(), "pass transistor") {
		t.Error("selection conclusion missing")
	}
}

// fastSuite keeps exploration tests quick.
func fastSuite() []circuits.Benchmark {
	return []circuits.Benchmark{
		circuits.RippleAdder(4),
		circuits.Counter(4),
		circuits.ParityTree(8),
	}
}

func TestExploreClusterInputs(t *testing.T) {
	var sb strings.Builder
	pts, err := ExploreClusterInputs(&sb, fastSuite())
	if err != nil {
		t.Fatal(err)
	}
	// Utilization must be non-decreasing in I and high at I=12.
	var at12, at4 float64
	for _, p := range pts {
		if p.I == 12 {
			at12 = p.Utilization
		}
		if p.I == 4 {
			at4 = p.Utilization
		}
	}
	if at12 < at4 {
		t.Errorf("utilization at I=12 (%.2f) below I=4 (%.2f)", at12, at4)
	}
	if at12 < 0.5 {
		t.Errorf("utilization at the paper's I too low: %.2f", at12)
	}
}

func TestExploreLUTSize(t *testing.T) {
	if testing.Short() {
		t.Skip("flow sweep")
	}
	var sb strings.Builder
	pts, err := ExploreLUTSize(&sb, fastSuite(), 1)
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if len(pts) != 6 {
		t.Fatalf("%d points", len(pts))
	}
	best := argminPower(pts)
	if best < 3 || best > 5 {
		t.Errorf("optimal K=%d outside [3,5] (paper: 4)\n%s", best, sb.String())
	}
	byK := map[int]SweepPoint{}
	for _, p := range pts {
		byK[p.Param] = p
	}
	if byK[4].PowerMW >= byK[7].PowerMW {
		t.Errorf("K=4 (%.3f mW) not better than K=7 (%.3f mW)", byK[4].PowerMW, byK[7].PowerMW)
	}
}

func TestExploreClusterSize(t *testing.T) {
	if testing.Short() {
		t.Skip("flow sweep")
	}
	var sb strings.Builder
	pts, err := ExploreClusterSize(&sb, fastSuite(), 1)
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	best := argminPower(pts)
	if best < 3 || best > 8 {
		t.Errorf("optimal N=%d outside [3,8] (paper: 5)\n%s", best, sb.String())
	}
}

func TestFullFlowTable(t *testing.T) {
	if testing.Short() {
		t.Skip("flow sweep")
	}
	var sb strings.Builder
	rows, err := FullFlow(&sb, fastSuite(), 1, true)
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	for _, r := range rows {
		if !r.Verified {
			t.Errorf("%s: not verified", r.Metrics.Name)
		}
		if r.Metrics.LUTs == 0 || r.Metrics.PowerTotalMW <= 0 {
			t.Errorf("%s: incomplete metrics %+v", r.Metrics.Name, r.Metrics)
		}
	}
}

func TestExploreSegmentLength(t *testing.T) {
	if testing.Short() {
		t.Skip("flow sweep")
	}
	var sb strings.Builder
	rows, err := ExploreSegmentLength(&sb, fastSuite(), 1)
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MinW <= 0 || r.CriticalNS <= 0 || r.PowerMW <= 0 {
			t.Errorf("L=%d incomplete: %+v", r.SegmentLength, r)
		}
	}
}

func TestUtilizationSuiteReaches90Percent(t *testing.T) {
	if testing.Short() {
		t.Skip("large circuits")
	}
	var sb strings.Builder
	pts, err := ExploreClusterInputs(&sb, UtilizationSuite())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		if p.I == 12 && p.Utilization < 0.85 {
			t.Errorf("utilization at I=12 on large circuits: %.1f%%\n%s", 100*p.Utilization, sb.String())
		}
	}
}

func TestPaperVsBaseline(t *testing.T) {
	if testing.Short() {
		t.Skip("flow sweep")
	}
	var sb strings.Builder
	rows, err := PaperVsBaseline(&sb, fastSuite(), 1)
	if err != nil {
		t.Fatalf("%v\n%s", err, sb.String())
	}
	// Sequential designs must show a clock-power advantage; overall power
	// must not be worse.
	totP, totB := 0.0, 0.0
	for _, r := range rows {
		totP += r.PaperMW
		totB += r.BaseMW
	}
	if totP >= totB {
		t.Errorf("paper platform not cheaper: %.4f vs %.4f mW\n%s", totP, totB, sb.String())
	}
	for _, r := range rows {
		if r.Name == "count4" && r.ClockPaper >= r.ClockBase {
			t.Errorf("counter clock power not reduced: %.4f vs %.4f", r.ClockPaper, r.ClockBase)
		}
	}
}
