package experiments

import (
	"fmt"
	"io"
	"sync"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/circuits"
	"fpgaflow/internal/core"
	"fpgaflow/internal/logic"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/pack"
	"fpgaflow/internal/power"
	"fpgaflow/internal/techmap"
	"fpgaflow/internal/vhdl"
)

// explorationClock is the common clock for energy comparisons across
// architecture points (comparing at each point's own fmax would conflate
// speed with energy).
const explorationClock = 100e6

// SweepPoint is one architecture point of an exploration.
type SweepPoint struct {
	Param        int
	PowerMW      float64
	AreaUnits    float64
	CriticalNS   float64
	LUTs, CLBs   int
	ChannelWidth int
	Failures     int
}

// runSuiteAt runs the benchmark suite through the flow on the given
// architecture (each design on its own goroutine; results reduced in
// deterministic benchmark order) and averages the metrics.
func runSuiteAt(a *arch.Arch, suite []circuits.Benchmark, seed int64) (SweepPoint, error) {
	type one struct {
		res *core.Result
		err error
	}
	results := make([]one, len(suite))
	var wg sync.WaitGroup
	for i, b := range suite {
		wg.Add(1)
		go func(i int, b circuits.Benchmark) {
			defer wg.Done()
			res, err := core.RunVHDL(b.VHDL, core.Options{
				Arch: a, AutoSizeGrid: true, Seed: seed, SkipVerify: true,
				ClockHz: explorationClock, ActivityCycles: 200,
			})
			results[i] = one{res, err}
		}(i, b)
	}
	wg.Wait()
	var pt SweepPoint
	ran := 0
	for _, r := range results {
		if r.err != nil {
			pt.Failures++
			continue
		}
		res := r.res
		pt.PowerMW += res.Power.Total * 1e3
		pt.AreaUnits += power.FabricAreaMinWidthUnits(res.Arch)
		pt.CriticalNS += res.Timing.CriticalPath * 1e9
		pt.LUTs += res.Metrics.LUTs
		pt.CLBs += res.Metrics.CLBs
		pt.ChannelWidth += res.Metrics.ChannelWidth
		ran++
	}
	if ran == 0 {
		return pt, fmt.Errorf("experiments: every benchmark failed")
	}
	pt.PowerMW /= float64(ran)
	pt.AreaUnits /= float64(ran)
	pt.CriticalNS /= float64(ran)
	pt.LUTs /= ran
	pt.CLBs /= ran
	pt.ChannelWidth /= ran
	return pt, nil
}

// ExploreLUTSize reproduces the §3.1 LUT-size exploration: K in [2,7] with
// I = (K/2)(N+1), measuring average power at a fixed clock. The paper (via
// [24]) finds K=4 minimizes energy.
func ExploreLUTSize(w io.Writer, suite []circuits.Benchmark, seed int64) ([]SweepPoint, error) {
	fmt.Fprintf(w, "LUT size exploration (N=5, I=(K/2)(N+1), %d benchmarks, %.0f MHz)\n",
		len(suite), explorationClock/1e6)
	var out []SweepPoint
	for k := 2; k <= 7; k++ {
		a := arch.Paper()
		a.CLB.K = k
		a.CLB.I = pack.InputsForUtilization(k, a.CLB.N)
		pt, err := runSuiteAt(a, suite, seed)
		if err != nil {
			return nil, fmt.Errorf("K=%d: %w", k, err)
		}
		pt.Param = k
		out = append(out, pt)
		fmt.Fprintf(w, "  K=%d: %7.3f mW  %9.0f area  %6.2f ns  %4d LUTs  %3d CLBs\n",
			k, pt.PowerMW, pt.AreaUnits, pt.CriticalNS, pt.LUTs, pt.CLBs)
	}
	fmt.Fprintf(w, "-> minimum power at K=%d (paper: K=4)\n", argminPower(out))
	return out, nil
}

// ExploreClusterSize reproduces the §3.1 cluster-size exploration: N in
// [1,10]; the paper finds N=5 minimizes energy.
func ExploreClusterSize(w io.Writer, suite []circuits.Benchmark, seed int64) ([]SweepPoint, error) {
	fmt.Fprintf(w, "Cluster size exploration (K=4, I=(K/2)(N+1), %d benchmarks, %.0f MHz)\n",
		len(suite), explorationClock/1e6)
	var out []SweepPoint
	for n := 1; n <= 10; n++ {
		a := arch.Paper()
		a.CLB.N = n
		a.CLB.I = pack.InputsForUtilization(a.CLB.K, n)
		pt, err := runSuiteAt(a, suite, seed)
		if err != nil {
			return nil, fmt.Errorf("N=%d: %w", n, err)
		}
		pt.Param = n
		out = append(out, pt)
		fmt.Fprintf(w, "  N=%2d: %7.3f mW  %9.0f area  %6.2f ns  %4d LUTs  %3d CLBs\n",
			n, pt.PowerMW, pt.AreaUnits, pt.CriticalNS, pt.LUTs, pt.CLBs)
	}
	fmt.Fprintf(w, "-> minimum power at N=%d (paper: N=5)\n", argminPower(out))
	return out, nil
}

func argminPower(pts []SweepPoint) int {
	best := pts[0]
	for _, p := range pts[1:] {
		if p.PowerMW < best.PowerMW {
			best = p
		}
	}
	return best.Param
}

// UtilizationPoint is one I value of the cluster-input exploration.
type UtilizationPoint struct {
	I           int
	Utilization float64
}

// ExploreClusterInputs reproduces Eq. (1) of §3.1: BLE utilization versus
// the number of cluster inputs I at K=4, N=5. The paper's I=(K/2)(N+1)=12
// achieves ~98% utilization.
func ExploreClusterInputs(w io.Writer, suite []circuits.Benchmark) ([]UtilizationPoint, error) {
	fmt.Fprintf(w, "Cluster input exploration (K=4, N=5)\n")
	var out []UtilizationPoint
	for i := 4; i <= 20; i += 2 {
		totalUtil, runs := 0.0, 0
		for _, b := range suite {
			d, err := vhdl.Parse(b.VHDL)
			if err != nil {
				return nil, err
			}
			nl, err := vhdl.Elaborate(d, "")
			if err != nil {
				return nil, err
			}
			mapped, err := techmap.FlowMap(decomposed(nl), 4)
			if err != nil {
				return nil, err
			}
			pk, err := pack.Pack(mapped.Netlist, pack.Params{N: 5, K: 4, I: i})
			if err != nil {
				return nil, err
			}
			totalUtil += pk.Utilization()
			runs++
		}
		u := totalUtil / float64(runs)
		out = append(out, UtilizationPoint{I: i, Utilization: u})
		marker := ""
		if i == pack.InputsForUtilization(4, 5) {
			marker = "  <- I=(K/2)(N+1)"
		}
		fmt.Fprintf(w, "  I=%2d: %5.1f%% BLE utilization%s\n", i, 100*u, marker)
	}
	return out, nil
}

func decomposed(nl *netlist.Netlist) *netlist.Netlist {
	// Decompose fails only on malformed networks; the generated benchmarks
	// are well-formed by construction.
	if err := logic.Decompose(nl); err != nil {
		panic(err)
	}
	return nl
}

// FlowRow is one benchmark's end-to-end metrics (the per-design report the
// paper's GUI log shows; the paper itself prints no flow table).
type FlowRow struct {
	Metrics  core.Metrics
	Verified bool
}

// FullFlow runs the complete benchmark suite through the whole flow,
// producing the per-design metric table.
func FullFlow(w io.Writer, suite []circuits.Benchmark, seed int64, verify bool) ([]FlowRow, error) {
	fmt.Fprintf(w, "Full flow (VHDL -> bitstream) on %d benchmarks\n", len(suite))
	fmt.Fprintf(w, "  %-12s %6s %6s %6s %7s %4s %9s %9s %9s %10s %9s\n",
		"design", "gates", "LUTs", "depth", "CLBs", "W", "crit(ns)", "fmax(MHz)", "power(mW)", "bits", "verified")
	var rows []FlowRow
	for _, b := range suite {
		res, err := core.RunVHDL(b.VHDL, core.Options{
			Seed: seed, SkipVerify: !verify, ClockHz: explorationClock,
			MinChannelWidth: true, ActivityCycles: 200,
		})
		if err != nil {
			return nil, fmt.Errorf("%s: %w", b.Name, err)
		}
		m := res.Metrics
		fmt.Fprintf(w, "  %-12s %6d %6d %6d %7d %4d %9.2f %9.1f %9.3f %10d %9v\n",
			m.Name, m.SourceGates, m.LUTs, m.Depth, m.CLBs, m.ChannelWidth,
			m.CriticalPath*1e9, m.MaxClockMHz, m.PowerTotalMW, m.BitstreamBits, res.Verified)
		rows = append(rows, FlowRow{Metrics: m, Verified: res.Verified})
	}
	return rows, nil
}

// SegmentRow is one wire-length point of the flow-level segment exploration.
type SegmentRow struct {
	SegmentLength int
	MinW          int
	Wirelength    int
	CriticalNS    float64
	PowerMW       float64
}

// ExploreSegmentLength connects the Figs 8-10 conclusion to the flow: it
// runs the suite on fabrics with length-1/2/4 wire segments and reports
// minimum channel width, wirelength, delay and power.
func ExploreSegmentLength(w io.Writer, suite []circuits.Benchmark, seed int64) ([]SegmentRow, error) {
	fmt.Fprintf(w, "Segment length exploration (%d benchmarks, min channel width)\n", len(suite))
	var out []SegmentRow
	for _, seg := range []int{1, 2, 4} {
		var row SegmentRow
		row.SegmentLength = seg
		ran := 0
		for _, b := range suite {
			a := arch.Paper()
			a.Routing.SegmentLength = seg
			res, err := core.RunVHDL(b.VHDL, core.Options{
				Arch: a, AutoSizeGrid: true, Seed: seed, SkipVerify: true,
				ClockHz: explorationClock, MinChannelWidth: true, ActivityCycles: 200,
			})
			if err != nil {
				return nil, fmt.Errorf("seg=%d %s: %w", seg, b.Name, err)
			}
			row.MinW += res.Metrics.ChannelWidth
			row.Wirelength += res.Metrics.WirelengthUsed
			row.CriticalNS += res.Timing.CriticalPath * 1e9
			row.PowerMW += res.Power.Total * 1e3
			ran++
		}
		row.MinW /= ran
		row.Wirelength /= ran
		row.CriticalNS /= float64(ran)
		row.PowerMW /= float64(ran)
		out = append(out, row)
		fmt.Fprintf(w, "  L=%d: avg min-W %2d, wirelength %4d, crit %6.2f ns, power %7.3f mW\n",
			seg, row.MinW, row.Wirelength, row.CriticalNS, row.PowerMW)
	}
	fmt.Fprintf(w, "-> the paper selects L=1 for energy (shortest switched wires)\n")
	return out, nil
}

// UtilizationSuite returns larger circuits for the Eq. (1) experiment (the
// paper's ~98%% utilization figure needs designs with many BLEs so the last
// partially-filled cluster is amortized).
func UtilizationSuite() []circuits.Benchmark {
	return []circuits.Benchmark{
		circuits.RandomLogic(16, 150, 11),
		circuits.ArrayMultiplier(6),
		circuits.RippleAdder(24),
	}
}

// BaselineArch is a conventional-FPGA reference point: single-edge
// flip-flops, no clock gating (the architecture the paper's platform is
// designed to beat on energy).
func BaselineArch() *arch.Arch {
	a := arch.Paper()
	a.Name = "baseline-setff"
	a.CLB.DoubleEdgeFF = false
	a.CLB.GatedClock = false
	return a
}

// HeadlineRow compares the paper architecture against the baseline on one
// benchmark.
type HeadlineRow struct {
	Name                  string
	PaperMW, BaseMW       float64
	ClockPaper, ClockBase float64
}

// PaperVsBaseline runs the suite on the paper's low-energy platform and on
// the conventional baseline at the same data rate, reporting the energy
// advantage the paper's architecture decisions (DETFF + clock gating) buy.
func PaperVsBaseline(w io.Writer, suite []circuits.Benchmark, seed int64) ([]HeadlineRow, error) {
	fmt.Fprintf(w, "Paper platform vs conventional baseline (%.0f MHz data rate)\n", explorationClock/1e6)
	fmt.Fprintf(w, "  %-12s %12s %12s %8s %14s %14s\n",
		"design", "paper(mW)", "base(mW)", "saving", "clk-paper(mW)", "clk-base(mW)")
	var rows []HeadlineRow
	totP, totB := 0.0, 0.0
	for _, b := range suite {
		run := func(a *arch.Arch) (*core.Result, error) {
			return core.RunVHDL(b.VHDL, core.Options{
				Arch: a, AutoSizeGrid: true, Seed: seed, SkipVerify: true,
				ClockHz: explorationClock, ActivityCycles: 200,
			})
		}
		rp, err := run(arch.Paper())
		if err != nil {
			return nil, fmt.Errorf("%s (paper): %w", b.Name, err)
		}
		rb, err := run(BaselineArch())
		if err != nil {
			return nil, fmt.Errorf("%s (baseline): %w", b.Name, err)
		}
		row := HeadlineRow{
			Name: b.Name, PaperMW: rp.Power.Total * 1e3, BaseMW: rb.Power.Total * 1e3,
			ClockPaper: rp.Power.DynamicClock * 1e3, ClockBase: rb.Power.DynamicClock * 1e3,
		}
		rows = append(rows, row)
		totP += row.PaperMW
		totB += row.BaseMW
		fmt.Fprintf(w, "  %-12s %12.4f %12.4f %7.1f%% %14.4f %14.4f\n",
			row.Name, row.PaperMW, row.BaseMW, 100*(row.BaseMW-row.PaperMW)/row.BaseMW,
			row.ClockPaper, row.ClockBase)
	}
	fmt.Fprintf(w, "-> overall: paper platform uses %.1f%% less power than the SETFF/ungated baseline\n",
		100*(totB-totP)/totB)
	return rows, nil
}
