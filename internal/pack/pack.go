// Package pack implements the T-VPack stage of the flow: it groups each LUT
// with an optional flip-flop into a Basic Logic Element (BLE), then packs
// BLEs into clusters (CLBs) of size N with at most I distinct external
// inputs and one clock, using the greedy attraction-based algorithm of
// Betz/Marquardt. The paper's CLB is N=5, K=4, I=12 with a fully connected
// local network, so any BLE output can feed any LUT input inside a cluster.
package pack

import (
	"fmt"
	"sort"

	"fpgaflow/internal/netlist"
	"fpgaflow/internal/obs"
)

// BLE is one basic logic element: a LUT, a flip-flop, or a LUT whose output
// is registered by the flip-flop (Fig. 1a of the paper).
type BLE struct {
	// LUT is the combinational node, nil for a route-through register.
	LUT *netlist.Node
	// FF is the latch node, nil for a purely combinational BLE.
	FF *netlist.Node
}

// Name returns the BLE's output signal name.
func (b *BLE) Name() string {
	if b.FF != nil {
		return b.FF.Name
	}
	return b.LUT.Name
}

// InputSignals returns the signal names the BLE consumes.
func (b *BLE) InputSignals() []string {
	if b.LUT != nil {
		in := make([]string, len(b.LUT.Fanin))
		for i, f := range b.LUT.Fanin {
			in[i] = f.Name
		}
		return in
	}
	return []string{b.FF.Fanin[0].Name}
}

// Registered reports whether the BLE output comes from the flip-flop.
func (b *BLE) Registered() bool { return b.FF != nil }

// Cluster is one CLB: up to N BLEs sharing I external inputs and one clock.
type Cluster struct {
	ID   int
	BLEs []*BLE
	// Inputs are the distinct external input signals, sorted.
	Inputs []string
	// Clock is the clock signal name ("" when no BLE is registered).
	Clock string
}

// Outputs returns the BLE output signal names in BLE order.
func (c *Cluster) Outputs() []string {
	out := make([]string, len(c.BLEs))
	for i, b := range c.BLEs {
		out[i] = b.Name()
	}
	return out
}

// Params are the CLB architecture parameters.
type Params struct {
	N int // cluster size (BLEs per CLB)
	K int // LUT inputs
	I int // distinct cluster inputs
	// GroupGated enables power-aware attraction: registered BLEs prefer
	// clusters that already hold flip-flops and purely combinational BLEs
	// prefer FF-free clusters. Each CLB's clock tree is gated as a unit,
	// so concentrating the registers into fewer clusters lets more of the
	// clock network stay dark (the power model charges clock power per
	// cluster containing at least one FF).
	GroupGated bool
}

// PaperParams returns the CLB selected in the paper: N=5, K=4, I=12
// (I = (K/2)*(N+1), Eq. 1).
func PaperParams() Params { return Params{N: 5, K: 4, I: 12} }

// InputsForUtilization applies the paper's Eq. (1): I = (K/2)(N+1).
func InputsForUtilization(k, n int) int { return k * (n + 1) / 2 }

// Packing is the result of clustering a mapped netlist.
type Packing struct {
	Netlist  *netlist.Netlist
	Params   Params
	BLEs     []*BLE
	Clusters []*Cluster
	// bleOf maps a BLE output signal name to its cluster.
	bleCluster map[string]*Cluster
}

// ClusterOf returns the cluster producing the named signal, or nil for
// primary inputs.
func (p *Packing) ClusterOf(signal string) *Cluster { return p.bleCluster[signal] }

// Utilization is the fraction of BLE slots in use across all clusters.
func (p *Packing) Utilization() float64 {
	if len(p.Clusters) == 0 {
		return 1
	}
	return float64(len(p.BLEs)) / float64(len(p.Clusters)*p.Params.N)
}

// ClockedClusters counts the clusters containing at least one flip-flop —
// the clusters whose clock tree segment must toggle. Power-aware packing
// (Params.GroupGated) exists to minimize this number.
func (p *Packing) ClockedClusters() int {
	n := 0
	for _, c := range p.Clusters {
		if c.Clock != "" {
			n++
		}
	}
	return n
}

// Record emits the packing's cluster-fill metrics to an observability
// trace: pack.clusters, pack.bles, pack.registered_bles, pack.clocked_clusters,
// pack.cluster_inputs and the pack.ble_fill gauge. nil trace is a no-op.
func (p *Packing) Record(tr *obs.Trace) {
	if tr == nil {
		return
	}
	tr.Add("pack.clusters", int64(len(p.Clusters)))
	tr.Add("pack.bles", int64(len(p.BLEs)))
	var registered, inputs int64
	for _, b := range p.BLEs {
		if b.Registered() {
			registered++
		}
	}
	for _, c := range p.Clusters {
		inputs += int64(len(c.Inputs))
	}
	tr.Add("pack.registered_bles", registered)
	tr.Add("pack.clocked_clusters", int64(p.ClockedClusters()))
	tr.Add("pack.cluster_inputs", inputs)
	tr.Gauge("pack.ble_fill").Set(p.Utilization())
}

// Pack clusters a K-LUT netlist. Every logic node must have at most K
// fanins; latches must share a single clock.
func Pack(nl *netlist.Netlist, params Params) (*Packing, error) {
	if params.N < 1 || params.K < 2 || params.I < params.K {
		return nil, fmt.Errorf("pack: implausible params %+v", params)
	}
	for _, n := range nl.Nodes() {
		if n.Kind == netlist.KindLogic && len(n.Fanin) > params.K {
			return nil, fmt.Errorf("pack: node %q has %d > K=%d inputs", n.Name, len(n.Fanin), params.K)
		}
	}
	bles, err := formBLEs(nl)
	if err != nil {
		return nil, err
	}
	p := &Packing{
		Netlist:    nl,
		Params:     params,
		BLEs:       bles,
		bleCluster: make(map[string]*Cluster),
	}
	if err := p.cluster(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// formBLEs pairs each latch with its driving LUT when the LUT's only fanout
// is the latch; otherwise latch and LUT become separate BLEs.
func formBLEs(nl *netlist.Netlist) ([]*BLE, error) {
	nl.BuildFanout()
	used := make(map[*netlist.Node]bool)
	var bles []*BLE
	for _, n := range nl.Nodes() {
		if n.Kind != netlist.KindLatch {
			continue
		}
		d := n.Fanin[0]
		if d.Kind == netlist.KindLogic && len(d.Fanout()) == 1 && !nl.IsOutput(d.Name) && !used[d] {
			bles = append(bles, &BLE{LUT: d, FF: n})
			used[d] = true
		} else {
			bles = append(bles, &BLE{FF: n}) // route-through register
		}
		used[n] = true
	}
	for _, n := range nl.Nodes() {
		if n.Kind == netlist.KindLogic && !used[n] {
			bles = append(bles, &BLE{LUT: n})
			used[n] = true
		}
	}
	return bles, nil
}

// cluster runs the greedy seed-and-attract packing.
func (p *Packing) cluster() error {
	producer := make(map[string]*BLE, len(p.BLEs))
	for _, b := range p.BLEs {
		producer[b.Name()] = b
	}
	clustered := make(map[*BLE]bool, len(p.BLEs))

	// Order seeds by number of inputs (desc) as T-VPack does, then by name
	// for determinism.
	seeds := append([]*BLE(nil), p.BLEs...)
	sort.Slice(seeds, func(i, j int) bool {
		ni, nj := len(seeds[i].InputSignals()), len(seeds[j].InputSignals())
		if ni != nj {
			return ni > nj
		}
		return seeds[i].Name() < seeds[j].Name()
	})

	for _, seed := range seeds {
		if clustered[seed] {
			continue
		}
		c := &Cluster{ID: len(p.Clusters)}
		if err := p.tryAdd(c, seed); err != nil {
			return fmt.Errorf("pack: seed %q does not fit an empty cluster: %w", seed.Name(), err)
		}
		clustered[seed] = true
		for len(c.BLEs) < p.Params.N {
			best := p.bestAttraction(c, clustered, producer)
			if best == nil {
				break
			}
			if err := p.tryAdd(c, best); err != nil {
				break
			}
			clustered[best] = true
		}
		p.Clusters = append(p.Clusters, c)
		for _, b := range c.BLEs {
			p.bleCluster[b.Name()] = c
		}
	}
	return nil
}

// bestAttraction returns the unclustered BLE sharing the most nets with the
// cluster that still fits, or nil.
func (p *Packing) bestAttraction(c *Cluster, clustered map[*BLE]bool, producer map[string]*BLE) *BLE {
	inCluster := make(map[string]bool)
	for _, b := range c.BLEs {
		inCluster[b.Name()] = true
		for _, in := range b.InputSignals() {
			inCluster[in] = true
		}
	}
	var best *BLE
	bestScore := -1
	clusterClocked := c.Clock != ""
	for _, cand := range p.BLEs {
		if clustered[cand] {
			continue
		}
		score := 0
		if inCluster[cand.Name()] {
			score += 2 // candidate feeds the cluster: absorbing removes an input
		}
		for _, in := range cand.InputSignals() {
			if inCluster[in] {
				score++
			}
		}
		if p.Params.GroupGated && cand.Registered() == clusterClocked {
			score += 2 // share the gated clock enable (or keep the cluster dark)
		}
		// First-best wins on ties; BLE order is deterministic. Like T-VPack,
		// a zero-attraction BLE still fills the cluster when nothing related
		// fits: full clusters (~98% utilization at I=(K/2)(N+1), paper Eq. 1)
		// beat spilling unrelated logic into extra CLBs.
		if score > bestScore && p.fits(c, cand) {
			best, bestScore = cand, score
		}
	}
	return best
}

// fits reports whether adding cand keeps the cluster within N, I and clock
// constraints.
func (p *Packing) fits(c *Cluster, cand *BLE) bool {
	if len(c.BLEs) >= p.Params.N {
		return false
	}
	if cand.FF != nil && c.Clock != "" && clockOf(cand) != c.Clock {
		return false
	}
	return len(p.externalInputs(append(c.BLEs[:len(c.BLEs):len(c.BLEs)], cand))) <= p.Params.I
}

// tryAdd adds the BLE, failing if constraints break.
func (p *Packing) tryAdd(c *Cluster, b *BLE) error {
	if !p.fits(c, b) {
		return fmt.Errorf("BLE %q does not fit cluster %d", b.Name(), c.ID)
	}
	c.BLEs = append(c.BLEs, b)
	if b.FF != nil && c.Clock == "" {
		c.Clock = clockOf(b)
	}
	c.Inputs = p.externalInputs(c.BLEs)
	return nil
}

func clockOf(b *BLE) string {
	if b.FF == nil {
		return ""
	}
	if b.FF.Clock == "" {
		return "clk" // single implicit global clock
	}
	return b.FF.Clock
}

// ExternalInputsOf returns the sorted distinct signals the BLE set consumes
// that no member produces. The stage-boundary checker (internal/check) uses
// it to recompute cluster input lists independently of the stored ones.
func (p *Packing) ExternalInputsOf(bles []*BLE) []string { return p.externalInputs(bles) }

// externalInputs returns the sorted distinct signals consumed by the BLE set
// that no member produces.
func (p *Packing) externalInputs(bles []*BLE) []string {
	local := make(map[string]bool, len(bles))
	for _, b := range bles {
		local[b.Name()] = true
	}
	set := make(map[string]bool)
	for _, b := range bles {
		for _, in := range b.InputSignals() {
			if !local[in] {
				set[in] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Validate checks every packing invariant: each BLE in exactly one cluster,
// cluster sizes <= N, inputs <= I, single clock per cluster, and the union
// of BLEs covering exactly the netlist's LUTs and latches.
func (p *Packing) Validate() error {
	seen := make(map[*BLE]*Cluster)
	for _, c := range p.Clusters {
		if len(c.BLEs) > p.Params.N {
			return fmt.Errorf("pack: cluster %d has %d > N=%d BLEs", c.ID, len(c.BLEs), p.Params.N)
		}
		if len(c.Inputs) > p.Params.I {
			return fmt.Errorf("pack: cluster %d has %d > I=%d inputs", c.ID, len(c.Inputs), p.Params.I)
		}
		want := p.externalInputs(c.BLEs)
		if len(want) != len(c.Inputs) {
			return fmt.Errorf("pack: cluster %d input list stale", c.ID)
		}
		clock := ""
		for _, b := range c.BLEs {
			if prev, dup := seen[b]; dup {
				return fmt.Errorf("pack: BLE %q in clusters %d and %d", b.Name(), prev.ID, c.ID)
			}
			seen[b] = c
			if b.FF != nil {
				ck := clockOf(b)
				if clock == "" {
					clock = ck
				} else if clock != ck {
					return fmt.Errorf("pack: cluster %d mixes clocks %q and %q", c.ID, clock, ck)
				}
			}
		}
	}
	if len(seen) != len(p.BLEs) {
		return fmt.Errorf("pack: %d of %d BLEs clustered", len(seen), len(p.BLEs))
	}
	covered := make(map[string]bool)
	for _, b := range p.BLEs {
		if b.LUT != nil {
			covered[b.LUT.Name] = true
		}
		if b.FF != nil {
			covered[b.FF.Name] = true
		}
	}
	for _, n := range p.Netlist.Nodes() {
		if n.Kind == netlist.KindInput {
			continue
		}
		if !covered[n.Name] {
			return fmt.Errorf("pack: node %q not covered by any BLE", n.Name)
		}
	}
	return nil
}

// Net is an inter-cluster (or I/O) net: one source signal and the clusters
// and primary outputs that consume it.
type Net struct {
	Signal string
	// SourceCluster is nil when a primary input drives the net.
	SourceCluster *Cluster
	// SinkClusters lists consuming clusters (deduplicated, by ID order).
	SinkClusters []*Cluster
	// IsPrimaryOutput marks nets that also leave through an output pad.
	IsPrimaryOutput bool
}

// ExternalNets computes the nets that must be routed between clusters and
// pads. Cluster-internal connections (both endpoints in one cluster and the
// signal not a primary output) do not appear.
func (p *Packing) ExternalNets() []*Net {
	nets := make(map[string]*Net)
	ensure := func(signal string) *Net {
		n, ok := nets[signal]
		if !ok {
			n = &Net{Signal: signal, SourceCluster: p.bleCluster[signal]}
			nets[signal] = n
		}
		return n
	}
	for _, c := range p.Clusters {
		for _, in := range c.Inputs {
			n := ensure(in)
			if n.SourceCluster == c {
				continue
			}
			dup := false
			for _, s := range n.SinkClusters {
				if s == c {
					dup = true
					break
				}
			}
			if !dup {
				n.SinkClusters = append(n.SinkClusters, c)
			}
		}
	}
	for _, o := range p.Netlist.Outputs {
		ensure(o).IsPrimaryOutput = true
	}
	out := make([]*Net, 0, len(nets))
	for _, n := range nets {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Signal < out[j].Signal })
	for _, n := range out {
		sort.Slice(n.SinkClusters, func(i, j int) bool { return n.SinkClusters[i].ID < n.SinkClusters[j].ID })
	}
	return out
}
