package pack

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpgaflow/internal/netlist"
)

const mappedBLIF = `
.model m
.inputs a b c d clk_unused
.outputs o1 o2 q
.names a b c d t1
1111 1
.names a b t2
10 1
01 1
.names t1 t2 o1
11 1
.names t2 c o2
1- 1
-1 1
.names o1 o2 dq
11 1
.latch dq q re clk 0
.end
`

func parse(t *testing.T, text string) *netlist.Netlist {
	t.Helper()
	nl, err := netlist.ParseBLIF(text)
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestFormBLEsPairsLUTWithFF(t *testing.T) {
	nl := parse(t, mappedBLIF)
	bles, err := formBLEs(nl)
	if err != nil {
		t.Fatal(err)
	}
	// dq feeds only latch q -> one merged BLE named q.
	var merged *BLE
	for _, b := range bles {
		if b.Name() == "q" {
			merged = b
		}
	}
	if merged == nil || merged.LUT == nil || merged.LUT.Name != "dq" || !merged.Registered() {
		t.Fatalf("LUT+FF not merged: %+v", merged)
	}
	// 5 LUTs + 1 latch, one pair merged -> 5 BLEs.
	if len(bles) != 5 {
		t.Fatalf("BLE count = %d, want 5", len(bles))
	}
}

func TestFormBLEsKeepsSharedLUTSeparate(t *testing.T) {
	nl := parse(t, `
.model s
.inputs a b
.outputs q x
.names a b d
11 1
.names d b x
10 1
.latch d q re clk 0
.end`)
	bles, err := formBLEs(nl)
	if err != nil {
		t.Fatal(err)
	}
	// d has fanout 2 (latch q and x): cannot merge -> 3 BLEs.
	if len(bles) != 3 {
		t.Fatalf("BLE count = %d, want 3", len(bles))
	}
	for _, b := range bles {
		if b.Name() == "q" && b.LUT != nil {
			t.Fatal("shared LUT merged into FF BLE")
		}
	}
}

func TestFormBLEsKeepsOutputLUTSeparate(t *testing.T) {
	nl := parse(t, `
.model s
.inputs a b
.outputs q d
.names a b d
11 1
.latch d q re clk 0
.end`)
	bles, err := formBLEs(nl)
	if err != nil {
		t.Fatal(err)
	}
	// d is a primary output: merging would hide the combinational signal.
	if len(bles) != 2 {
		t.Fatalf("BLE count = %d, want 2", len(bles))
	}
}

func TestPackRespectsConstraints(t *testing.T) {
	nl := parse(t, mappedBLIF)
	p, err := Pack(nl, PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range p.Clusters {
		total += len(c.BLEs)
		if len(c.BLEs) > 5 || len(c.Inputs) > 12 {
			t.Errorf("cluster %d: %d BLEs, %d inputs", c.ID, len(c.BLEs), len(c.Inputs))
		}
	}
	if total != len(p.BLEs) {
		t.Errorf("clustered %d of %d BLEs", total, len(p.BLEs))
	}
}

func TestPackTinyClusterForcesSplit(t *testing.T) {
	nl := parse(t, mappedBLIF)
	p, err := Pack(nl, Params{N: 1, K: 4, I: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Clusters) != len(p.BLEs) {
		t.Fatalf("N=1 must give one BLE per cluster: %d clusters, %d BLEs", len(p.Clusters), len(p.BLEs))
	}
}

func TestPackRejectsWideLUT(t *testing.T) {
	nl := parse(t, `
.model w
.inputs a b c d e
.outputs o
.names a b c d e o
11111 1
.end`)
	if _, err := Pack(nl, PaperParams()); err == nil {
		t.Fatal("5-input LUT accepted at K=4")
	}
}

func TestPackRejectsBadParams(t *testing.T) {
	nl := parse(t, mappedBLIF)
	for _, bad := range []Params{{N: 0, K: 4, I: 12}, {N: 5, K: 1, I: 12}, {N: 5, K: 4, I: 2}} {
		if _, err := Pack(nl, bad); err == nil {
			t.Errorf("params %+v accepted", bad)
		}
	}
}

func TestInputsForUtilization(t *testing.T) {
	// Paper Eq. (1): K=4, N=5 -> I=12.
	if got := InputsForUtilization(4, 5); got != 12 {
		t.Errorf("I(4,5) = %d, want 12", got)
	}
	if got := InputsForUtilization(4, 7); got != 16 {
		t.Errorf("I(4,7) = %d, want 16", got)
	}
}

func TestExternalNets(t *testing.T) {
	nl := parse(t, mappedBLIF)
	p, err := Pack(nl, PaperParams())
	if err != nil {
		t.Fatal(err)
	}
	nets := p.ExternalNets()
	bySignal := make(map[string]*Net)
	for _, n := range nets {
		bySignal[n.Signal] = n
	}
	for _, in := range []string{"a", "b", "c", "d"} {
		n := bySignal[in]
		if n == nil {
			t.Fatalf("no net for input %s", in)
		}
		if n.SourceCluster != nil {
			t.Errorf("input %s has a source cluster", in)
		}
	}
	for _, o := range []string{"o1", "o2", "q"} {
		n := bySignal[o]
		if n == nil || !n.IsPrimaryOutput {
			t.Errorf("output %s missing or unmarked", o)
		}
		if n != nil && n.SourceCluster == nil {
			t.Errorf("output %s has no source cluster", o)
		}
	}
}

// TestPackPropertyRandom checks packing invariants across random K-LUT
// netlists and parameter combinations.
func TestPackPropertyRandom(t *testing.T) {
	f := func(seed int64, nRaw, iRaw uint8) bool {
		n := 1 + int(nRaw)%8
		k := 4
		i := k + int(iRaw)%(k*(n+1)/2+1)
		nl := randomLUTNetlist(seed, 8, 30, k)
		p, err := Pack(nl, Params{N: n, K: k, I: i})
		if err != nil {
			return false
		}
		return p.Validate() == nil && p.Utilization() > 0 && p.Utilization() <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(5))}); err != nil {
		t.Fatal(err)
	}
}

func randomLUTNetlist(seed int64, nIn, nLUT, k int) *netlist.Netlist {
	rng := rand.New(rand.NewSource(seed))
	nl := netlist.New("rnd")
	var pool []*netlist.Node
	for i := 0; i < nIn; i++ {
		in, _ := nl.AddInput(sig("i", i))
		pool = append(pool, in)
	}
	for i := 0; i < nLUT; i++ {
		nf := 1 + rng.Intn(k)
		fanin := make([]*netlist.Node, 0, nf)
		seen := map[*netlist.Node]bool{}
		for len(fanin) < nf {
			c := pool[rng.Intn(len(pool))]
			if !seen[c] {
				seen[c] = true
				fanin = append(fanin, c)
			}
		}
		tt := make([]bool, 1<<uint(nf))
		for j := range tt {
			tt[j] = rng.Intn(2) == 1
		}
		tt[0] = false
		tt[len(tt)-1] = true
		n, _ := nl.AddLogic(sig("l", i), fanin, netlist.CoverFromTruthTable(tt, nf))
		pool = append(pool, n)
		if rng.Intn(4) == 0 {
			q, _ := nl.AddLatch(sig("q", i), n, '0', "clk")
			pool = append(pool, q)
		}
	}
	for i := 0; i < 3; i++ {
		nl.MarkOutput(pool[len(pool)-1-i].Name)
	}
	return nl
}

func sig(p string, i int) string {
	return p + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

func TestUtilizationEquationGives98Percent(t *testing.T) {
	// The paper claims I=(K/2)(N+1) achieves ~98% BLE utilization. On random
	// netlists the greedy packer should fill clusters well; assert a softer
	// bound (>= 70%) to keep the test robust, and assert that shrinking I
	// strictly below the equation value reduces utilization.
	var utilEq, utilSmall float64
	runs := 0
	for seed := int64(0); seed < 5; seed++ {
		nl := randomLUTNetlist(seed, 10, 60, 4)
		pEq, err := Pack(nl.Clone(), Params{N: 5, K: 4, I: 12})
		if err != nil {
			t.Fatal(err)
		}
		pSmall, err := Pack(nl.Clone(), Params{N: 5, K: 4, I: 5})
		if err != nil {
			t.Fatal(err)
		}
		utilEq += pEq.Utilization()
		utilSmall += pSmall.Utilization()
		runs++
	}
	utilEq /= float64(runs)
	utilSmall /= float64(runs)
	if utilEq < 0.70 {
		t.Errorf("utilization at I=12: %.2f", utilEq)
	}
	if utilSmall >= utilEq {
		t.Errorf("starving inputs did not reduce utilization: %.2f vs %.2f", utilSmall, utilEq)
	}
}

// TestGroupGatedConcentratesRegisters checks the power-aware attraction:
// with GroupGated set, packing random register-heavy netlists must never
// spread flip-flops over more clusters than the baseline packer does, and
// must strictly reduce the clocked-cluster count on at least one instance
// (so the bonus demonstrably changes packing decisions). All other packing
// invariants must keep holding.
func TestGroupGatedConcentratesRegisters(t *testing.T) {
	improved := false
	for seed := int64(0); seed < 8; seed++ {
		nl := randomLUTNetlist(seed, 10, 60, 4)
		base, err := Pack(nl.Clone(), Params{N: 5, K: 4, I: 12})
		if err != nil {
			t.Fatal(err)
		}
		gated, err := Pack(nl.Clone(), Params{N: 5, K: 4, I: 12, GroupGated: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := gated.Validate(); err != nil {
			t.Fatalf("seed %d: gated packing invalid: %v", seed, err)
		}
		b, g := base.ClockedClusters(), gated.ClockedClusters()
		if g > b {
			t.Errorf("seed %d: GroupGated raised clocked clusters %d -> %d", seed, b, g)
		}
		if g < b {
			improved = true
		}
		// Registered BLEs must be conserved: grouping moves FFs, never
		// drops or duplicates them.
		count := func(p *Packing) int {
			n := 0
			for _, ble := range p.BLEs {
				if ble.Registered() {
					n++
				}
			}
			return n
		}
		if count(base) != count(gated) {
			t.Errorf("seed %d: registered BLE count changed %d -> %d", seed, count(base), count(gated))
		}
	}
	if !improved {
		t.Error("GroupGated never reduced clocked clusters on any seed; bonus has no effect")
	}
}

// TestGroupGatedDeterministic packs the same netlist twice with GroupGated
// and requires identical cluster assignments.
func TestGroupGatedDeterministic(t *testing.T) {
	nl := randomLUTNetlist(3, 10, 60, 4)
	a, err := Pack(nl.Clone(), Params{N: 5, K: 4, I: 12, GroupGated: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Pack(nl.Clone(), Params{N: 5, K: 4, I: 12, GroupGated: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Clusters) != len(b.Clusters) {
		t.Fatalf("cluster counts differ: %d vs %d", len(a.Clusters), len(b.Clusters))
	}
	for i := range a.Clusters {
		ca, cb := a.Clusters[i], b.Clusters[i]
		if len(ca.BLEs) != len(cb.BLEs) {
			t.Fatalf("cluster %d sizes differ", i)
		}
		for j := range ca.BLEs {
			if ca.BLEs[j].Name() != cb.BLEs[j].Name() {
				t.Fatalf("cluster %d BLE %d differs: %q vs %q", i, j, ca.BLEs[j].Name(), cb.BLEs[j].Name())
			}
		}
	}
}
