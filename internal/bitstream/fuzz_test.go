package bitstream

import (
	"os"
	"testing"

	"fpgaflow/internal/fault"
)

// FuzzDecode feeds the bitstream decoder arbitrary bytes. A configuration
// file is exactly the artifact that gets corrupted in storage or
// transfer, so the decoder must fail typed on any mangling — no panics,
// no unbounded allocation from a forged geometry header.
func FuzzDecode(f *testing.F) {
	if data, err := os.ReadFile("../../examples/netlists/fulladder.bit"); err == nil {
		f.Add(data)
		// Classic corruption shapes as extra seeds.
		f.Add(fault.FlipBits(data, 8, 1))
		f.Add(fault.Truncate(data, 0.5))
	}
	f.Add([]byte("DAGR"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64<<10 {
			t.Skip("oversized input")
		}
		bs, err := Decode(data)
		if err == nil && bs == nil {
			t.Fatal("Decode returned nil bitstream with nil error")
		}
	})
}
