// Package bitstream implements the DAGGER stage of the flow: generation of
// the FPGA configuration bitstream from a packed, placed and routed design,
// a binary codec for the frame format, and extraction of the configured
// netlist back out of a bitstream for verification.
package bitstream

import (
	"fmt"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/pack"
	"fpgaflow/internal/place"
	"fpgaflow/internal/route"
	"fpgaflow/internal/rrgraph"
)

// BLEConfig is the configuration of one basic logic element.
type BLEConfig struct {
	// LUT holds the 2^K truth-table bits, index = input assignment with
	// LUT input 0 as bit 0.
	LUT []bool
	// Registered selects the flip-flop path through the BLE output mux.
	Registered bool
	// Init is the flip-flop power-up value.
	Init bool
	// ClockEnabled drives the BLE-level clock gate.
	ClockEnabled bool
	// InputSel selects the source of each LUT input: values in [0, I) pick
	// cluster input pins, [I, I+N) pick BLE outputs (feedback).
	InputSel []int
}

// CLBConfig is the configuration of one logic tile.
type CLBConfig struct {
	BLEs []BLEConfig
	// OutputSel maps each cluster output pin to the BLE driving it.
	OutputSel []int
	// ClockEnabled drives the CLB-level clock gate.
	ClockEnabled bool
}

// PadConfig describes one I/O pad sub-slot.
type PadConfig struct {
	Used bool
	// Input is true for pads driving the fabric (primary inputs).
	Input bool
	// Name is the port name carried alongside the configuration (the pad
	// map file of a conventional flow).
	Name string
	// PinIdx is the local OPin (for inputs) or IPin (for outputs) index of
	// the site that the pad's net was routed through. Unused pads keep 0.
	PinIdx int
}

// Bitstream is the full device configuration.
type Bitstream struct {
	Arch      *arch.Arch
	ModelName string
	// CLBs is indexed [x-1][y-1] over logic tiles.
	CLBs [][]*CLBConfig
	// Pads is keyed by (x, y, sub).
	Pads map[[3]int]*PadConfig
	// SwitchOn holds enabled wire<->wire switches as canonical (min,max)
	// node-ID pairs.
	SwitchOn map[[2]int]bool
	// OPinOn holds enabled output-pin->wire connections.
	OPinOn map[[2]int]bool
	// IPinOn holds enabled wire->input-pin connections.
	IPinOn map[[2]int]bool
}

func newBitstream(a *arch.Arch, model string) *Bitstream {
	bs := &Bitstream{
		Arch:      a,
		ModelName: model,
		CLBs:      make([][]*CLBConfig, a.Cols),
		Pads:      make(map[[3]int]*PadConfig),
		SwitchOn:  make(map[[2]int]bool),
		OPinOn:    make(map[[2]int]bool),
		IPinOn:    make(map[[2]int]bool),
	}
	for x := range bs.CLBs {
		bs.CLBs[x] = make([]*CLBConfig, a.Rows)
		for y := range bs.CLBs[x] {
			bs.CLBs[x][y] = emptyCLB(a)
		}
	}
	return bs
}

func emptyCLB(a *arch.Arch) *CLBConfig {
	c := &CLBConfig{
		BLEs:      make([]BLEConfig, a.CLB.N),
		OutputSel: make([]int, a.CLB.Outputs()),
	}
	for i := range c.BLEs {
		c.BLEs[i].LUT = make([]bool, 1<<uint(a.CLB.K))
		c.BLEs[i].InputSel = make([]int, a.CLB.K)
	}
	return c
}

// CLBAt returns the config of the logic tile at grid coordinates (x, y).
func (bs *Bitstream) CLBAt(x, y int) (*CLBConfig, error) {
	if x < 1 || x > bs.Arch.Cols || y < 1 || y > bs.Arch.Rows {
		return nil, fmt.Errorf("bitstream: (%d,%d) is not a logic tile", x, y)
	}
	return bs.CLBs[x-1][y-1], nil
}

// Generate builds the configuration for a routed design.
func Generate(pk *pack.Packing, p *place.Problem, pl *place.Placement, r *route.Result) (*Bitstream, error) {
	a := p.Arch
	g := r.Graph
	if !r.Success {
		return nil, fmt.Errorf("bitstream: routing was not successful")
	}
	if err := r.Validate(p, pl); err != nil {
		return nil, err
	}
	bs := newBitstream(a, pk.Netlist.Name)

	// Routing configuration and per-connection pin bookkeeping.
	type connKey struct {
		signal string
		block  int
	}
	inPinOf := make(map[connKey]int) // (signal, sink block) -> IPin pin index
	outPinOf := make(map[string]int) // signal -> OPin pin index at its source
	outSubOf := make(map[string]int) // pad-driven signal -> pad sub (OPin pin)
	for ni, nr := range r.Routes {
		net := p.Nets[ni]
		for si, path := range nr.Paths {
			sinkBlock := net.Blocks[si+1]
			for i := 0; i+1 < len(path); i++ {
				from, to := g.Nodes[path[i]], g.Nodes[path[i+1]]
				fw := from.Type == rrgraph.ChanX || from.Type == rrgraph.ChanY
				tw := to.Type == rrgraph.ChanX || to.Type == rrgraph.ChanY
				switch {
				case fw && tw:
					key := [2]int{path[i], path[i+1]}
					if key[0] > key[1] {
						key[0], key[1] = key[1], key[0]
					}
					bs.SwitchOn[key] = true
				case from.Type == rrgraph.OPin && tw:
					bs.OPinOn[[2]int{path[i], path[i+1]}] = true
				case fw && to.Type == rrgraph.IPin:
					bs.IPinOn[[2]int{path[i], path[i+1]}] = true
				}
			}
			// Record pin usage at both ends.
			if len(path) >= 2 && g.Nodes[path[1]].Type == rrgraph.OPin {
				op := g.Nodes[path[1]]
				if g.Kind(op.X, op.Y) == rrgraph.SiteCLB {
					outPinOf[net.Signal] = op.Pin - a.CLB.I
				} else {
					outSubOf[net.Signal] = op.Pin
				}
			}
			if len(path) >= 2 && g.Nodes[path[len(path)-2]].Type == rrgraph.IPin {
				ip := g.Nodes[path[len(path)-2]]
				inPinOf[connKey{net.Signal, sinkBlock}] = ip.Pin
			}
		}
	}

	// Pad table: pads stay at their placement sub-slots; PinIdx records the
	// physical pin their routed net used.
	for _, b := range p.Blocks {
		l := pl.Loc[b.ID]
		key := [3]int{l.X, l.Y, l.Sub}
		switch b.Kind {
		case place.BlockInpad:
			pin, driven := outSubOf[b.Name]
			bs.Pads[key] = &PadConfig{Used: driven, Input: true, Name: b.Name, PinIdx: pin}
		case place.BlockOutpad:
			signal := b.Name[len("out:"):]
			pin, ok := inPinOf[connKey{signal, b.ID}]
			if !ok {
				return nil, fmt.Errorf("bitstream: output %q not routed to its pad", signal)
			}
			bs.Pads[key] = &PadConfig{Used: true, Input: false, Name: signal, PinIdx: pin}
		}
	}

	// CLB configuration.
	clusterBlockID := make(map[*pack.Cluster]int)
	for _, b := range p.Blocks {
		if b.Kind == place.BlockCLB {
			clusterBlockID[b.Cluster] = b.ID
		}
	}
	for _, b := range p.Blocks {
		if b.Kind != place.BlockCLB {
			continue
		}
		l := pl.Loc[b.ID]
		cfg, err := bs.CLBAt(l.X, l.Y)
		if err != nil {
			return nil, err
		}
		c := b.Cluster
		bleIndex := make(map[string]int, len(c.BLEs))
		for i, ble := range c.BLEs {
			bleIndex[ble.Name()] = i
		}
		anyFF := false
		for i, ble := range c.BLEs {
			bc := &cfg.BLEs[i]
			if err := fillBLE(bc, ble, a); err != nil {
				return nil, err
			}
			if bc.Registered {
				anyFF = true
			}
			// Input selects.
			for k, src := range bleInputs(ble) {
				if j, internal := bleIndex[src]; internal {
					bc.InputSel[k] = a.CLB.I + j
					continue
				}
				pin, ok := inPinOf[connKey{src, b.ID}]
				if !ok {
					return nil, fmt.Errorf("bitstream: cluster %d input %q has no routed pin", c.ID, src)
				}
				bc.InputSel[k] = pin
			}
		}
		cfg.ClockEnabled = anyFF
		// Output crossbar: route-derived pin assignment.
		for sig, pin := range outPinOf {
			if pk.ClusterOf(sig) != c {
				continue
			}
			j, ok := bleIndex[sig]
			if !ok {
				return nil, fmt.Errorf("bitstream: signal %q sourced at cluster %d but no BLE", sig, c.ID)
			}
			if pin < 0 || pin >= len(cfg.OutputSel) {
				return nil, fmt.Errorf("bitstream: output pin %d out of range", pin)
			}
			cfg.OutputSel[pin] = j
		}
	}
	return bs, nil
}

// bleInputs returns the LUT input signals of a BLE (the D signal for a
// route-through register).
func bleInputs(b *pack.BLE) []string {
	return b.InputSignals()
}

// ExpectedLUT computes the 2^k-entry LUT mask a BLE must carry: the node's
// truth table replicated over the unused high inputs, or the identity on
// input 0 for a route-through register. The stage-boundary checker
// (internal/check) uses it to cross-check decoded bitstreams against the
// packed netlist.
func ExpectedLUT(b *pack.BLE, k int) ([]bool, error) {
	lut := make([]bool, 1<<uint(k))
	if b.LUT != nil {
		nf := len(b.LUT.Fanin)
		if nf > k {
			return nil, fmt.Errorf("bitstream: LUT %q has %d > K=%d inputs", b.LUT.Name, nf, k)
		}
		tt, err := netlist.TruthTable(b.LUT)
		if err != nil {
			return nil, err
		}
		mask := (1 << uint(nf)) - 1
		for m := range lut {
			lut[m] = tt[m&mask]
		}
	} else {
		// Route-through register: LUT passes input 0.
		for m := range lut {
			lut[m] = m&1 != 0
		}
	}
	return lut, nil
}

// fillBLE writes the LUT truth table, register mux and clock gate bits.
func fillBLE(bc *BLEConfig, b *pack.BLE, a *arch.Arch) error {
	lut, err := ExpectedLUT(b, a.CLB.K)
	if err != nil {
		return err
	}
	copy(bc.LUT, lut)
	bc.Registered = b.FF != nil
	bc.ClockEnabled = b.FF != nil
	if b.FF != nil {
		bc.Init = b.FF.Init == '1'
	}
	return nil
}
