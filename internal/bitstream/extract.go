package bitstream

import (
	"fmt"
	"sort"

	"fpgaflow/internal/logic"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/rrgraph"
)

// Extract reconstructs the configured logic as a netlist: it traces the
// enabled routing switches into electrical nets, decodes every CLB's LUT
// masks, input muxes and register bits, and names primary inputs/outputs
// from the pad table. The result is functionally equivalent to the design
// the bitstream was generated from (internal BLE signals get synthetic
// names).
func Extract(bs *Bitstream) (*netlist.Netlist, error) {
	g, err := rrgraph.Build(bs.Arch)
	if err != nil {
		return nil, err
	}
	a := bs.Arch

	// Electrical nets: union-find over wires joined by enabled switches.
	parent := make([]int, len(g.Nodes))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) { parent[find(x)] = find(y) }
	for sw := range bs.SwitchOn {
		if err := checkWireEdge(g, sw[0], sw[1]); err != nil {
			return nil, err
		}
		union(sw[0], sw[1])
	}

	// Drivers: enabled OPin->wire connections.
	driverOPin := make(map[int]int) // net root -> opin node
	for conn := range bs.OPinOn {
		op, wire := conn[0], conn[1]
		if g.Nodes[op].Type != rrgraph.OPin || !isWire(g, wire) {
			return nil, fmt.Errorf("bitstream: invalid opin connection %v", conn)
		}
		root := find(wire)
		if prev, dup := driverOPin[root]; dup && prev != op {
			return nil, fmt.Errorf("bitstream: net contention: opins %d and %d drive one net", prev, op)
		}
		driverOPin[root] = op
	}

	// Loads: wire->IPin.
	ipinNet := make(map[int]int) // ipin node -> net root
	for conn := range bs.IPinOn {
		wire, ip := conn[0], conn[1]
		if !isWire(g, wire) || g.Nodes[ip].Type != rrgraph.IPin {
			return nil, fmt.Errorf("bitstream: invalid ipin connection %v", conn)
		}
		if prev, dup := ipinNet[ip]; dup && prev != find(wire) {
			return nil, fmt.Errorf("bitstream: input pin %d driven by two nets", ip)
		}
		ipinNet[ip] = find(wire)
	}

	nl := netlist.New(bs.ModelName + "_extracted")

	// Pads: inputs become primary inputs; outputs remembered for later.
	type outPad struct {
		name string
		ipin int
	}
	var outputs []outPad
	opinSignal := make(map[int]string) // opin node -> driving signal name
	padKeys := make([][3]int, 0, len(bs.Pads))
	for k := range bs.Pads {
		padKeys = append(padKeys, k)
	}
	sort.Slice(padKeys, func(i, j int) bool {
		a, b := padKeys[i], padKeys[j]
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	for _, key := range padKeys {
		pad := bs.Pads[key]
		x, y := key[0], key[1]
		if pad.Input {
			if _, err := nl.AddInput(pad.Name); err != nil {
				return nil, err
			}
			if pad.Used {
				ops := g.OPins(x, y)
				if pad.PinIdx < 0 || pad.PinIdx >= len(ops) {
					return nil, fmt.Errorf("bitstream: pad %q pin %d out of range", pad.Name, pad.PinIdx)
				}
				opinSignal[ops[pad.PinIdx]] = pad.Name
			}
			continue
		}
		ips := g.IPins(x, y)
		if pad.PinIdx < 0 || pad.PinIdx >= len(ips) {
			return nil, fmt.Errorf("bitstream: pad %q pin %d out of range", pad.Name, pad.PinIdx)
		}
		outputs = append(outputs, outPad{pad.Name, ips[pad.PinIdx]})
	}

	// CLB outputs: synthetic signal names per (x, y, output pin).
	bleOut := func(x, y, i int) string { return fmt.Sprintf("ble_%d_%d_%d", x, y, i) }
	for x := 1; x <= a.Cols; x++ {
		for y := 1; y <= a.Rows; y++ {
			cfg := bs.CLBs[x-1][y-1]
			for _, op := range g.OPins(x, y) {
				pin := g.Nodes[op].Pin - a.CLB.I
				if pin < 0 || pin >= len(cfg.OutputSel) {
					return nil, fmt.Errorf("bitstream: clb (%d,%d) opin %d", x, y, pin)
				}
				opinSignal[op] = bleOut(x, y, cfg.OutputSel[pin])
			}
		}
	}

	// netSignal resolves the signal name arriving at an input pin.
	var gndNode *netlist.Node
	ground := func() (*netlist.Node, error) {
		if gndNode != nil {
			return gndNode, nil
		}
		n, err := nl.AddLogic(nl.FreshName("gnd"), nil, netlist.Cover{Value: netlist.LitOne})
		if err != nil {
			return nil, err
		}
		gndNode = n
		return n, nil
	}
	signalAtIPin := func(ip int) (string, bool) {
		root, ok := ipinNet[ip]
		if !ok {
			return "", false
		}
		op, ok := driverOPin[root]
		if !ok {
			return "", false
		}
		sig, ok := opinSignal[op]
		return sig, ok
	}

	// Create BLE nodes. Two passes: declare latches and logic names first
	// (feedback), then connect fanins.
	type pending struct {
		x, y, i int
		cfg     *BLEConfig
	}
	var pend []pending
	for x := 1; x <= a.Cols; x++ {
		for y := 1; y <= a.Rows; y++ {
			cfg := bs.CLBs[x-1][y-1]
			for i := range cfg.BLEs {
				pend = append(pend, pending{x, y, i, &cfg.BLEs[i]})
			}
		}
	}
	// First pass: declare every BLE output node so intra-cluster feedback
	// (combinational or registered, in any BLE order) resolves.
	for _, pd := range pend {
		name := bleOut(pd.x, pd.y, pd.i)
		if pd.cfg.Registered {
			init := byte('0')
			if pd.cfg.Init {
				init = '1'
			}
			q, err := nl.AddLatch(name, nil, init, "")
			if err != nil {
				return nil, err
			}
			q.Fanin = nil
		} else {
			if _, err := nl.AddLogic(name, nil, netlist.Cover{Value: netlist.LitOne}); err != nil {
				return nil, err
			}
		}
	}
	for _, pd := range pend {
		name := bleOut(pd.x, pd.y, pd.i)
		k := a.CLB.K
		fanin := make([]*netlist.Node, 0, k)
		for _, sel := range pd.cfg.InputSel {
			var src *netlist.Node
			switch {
			case sel < 0 || sel >= a.CLB.I+a.CLB.N:
				return nil, fmt.Errorf("bitstream: input select %d out of range", sel)
			case sel < a.CLB.I:
				ips := g.IPins(pd.x, pd.y)
				sig, ok := signalAtIPin(ips[sel])
				if ok {
					src = nl.Node(sig)
					if src == nil {
						return nil, fmt.Errorf("bitstream: signal %q referenced before creation", sig)
					}
				} else {
					gnd, err := ground()
					if err != nil {
						return nil, err
					}
					src = gnd
				}
			default:
				src = nl.Node(bleOut(pd.x, pd.y, sel-a.CLB.I))
				if src == nil {
					return nil, fmt.Errorf("bitstream: feedback to missing BLE %d", sel-a.CLB.I)
				}
			}
			fanin = append(fanin, src)
		}
		cover := logic.MinimizeTruthTable(pd.cfg.LUT, k)
		// Unused LUT inputs have all-don't-care columns; their input-mux
		// selects are meaningless configuration leftovers and may point
		// anywhere (even at signals that depend on this BLE). Drop them so
		// the reconstructed netlist has no spurious structural cycles.
		fanin, cover = pruneDontCareInputs(fanin, cover)
		if pd.cfg.Registered {
			dname := nl.FreshName(name + "_d")
			d, err := nl.AddLogic(dname, fanin, cover)
			if err != nil {
				return nil, err
			}
			nl.Node(name).Fanin = []*netlist.Node{d}
		} else {
			n := nl.Node(name)
			n.Fanin = fanin
			n.Cover = cover
		}
	}

	// Primary outputs: buffers named by the pad table.
	for _, op := range outputs {
		sig, ok := signalAtIPin(op.ipin)
		if !ok {
			return nil, fmt.Errorf("bitstream: output pad %q has no driving net", op.name)
		}
		src := nl.Node(sig)
		if src == nil {
			return nil, fmt.Errorf("bitstream: output %q driver %q missing", op.name, sig)
		}
		if src.Name != op.name {
			// Rename the pad's view of the net with a buffer.
			if _, err := nl.AddLogic(op.name, []*netlist.Node{src},
				netlist.Cover{Cubes: []netlist.Cube{{netlist.LitOne}}, Value: netlist.LitOne}); err != nil {
				return nil, err
			}
		}
		nl.MarkOutput(op.name)
	}

	nl.Sweep()
	if err := nl.Check(); err != nil {
		return nil, fmt.Errorf("bitstream: extracted netlist invalid: %w", err)
	}
	return nl, nil
}

// pruneDontCareInputs removes fanin positions that are don't-care in every
// cube of the cover.
func pruneDontCareInputs(fanin []*netlist.Node, c netlist.Cover) ([]*netlist.Node, netlist.Cover) {
	used := make([]bool, len(fanin))
	for _, cube := range c.Cubes {
		for i, lit := range cube {
			if lit != netlist.LitDC {
				used[i] = true
			}
		}
	}
	all := true
	for _, u := range used {
		if !u {
			all = false
		}
	}
	if all {
		return fanin, c
	}
	var keepIdx []int
	var newFanin []*netlist.Node
	for i, u := range used {
		if u {
			keepIdx = append(keepIdx, i)
			newFanin = append(newFanin, fanin[i])
		}
	}
	newCover := netlist.Cover{Value: c.Value}
	for _, cube := range c.Cubes {
		nc := make(netlist.Cube, len(keepIdx))
		for j, i := range keepIdx {
			nc[j] = cube[i]
		}
		newCover.Cubes = append(newCover.Cubes, nc)
	}
	return newFanin, newCover
}

func isWire(g *rrgraph.Graph, id int) bool {
	if id < 0 || id >= len(g.Nodes) {
		return false
	}
	t := g.Nodes[id].Type
	return t == rrgraph.ChanX || t == rrgraph.ChanY
}

func checkWireEdge(g *rrgraph.Graph, a, b int) error {
	if !isWire(g, a) || !isWire(g, b) {
		return fmt.Errorf("bitstream: switch between non-wires %d,%d", a, b)
	}
	for _, e := range g.Nodes[a].Edges {
		if e == b {
			return nil
		}
	}
	return fmt.Errorf("bitstream: no switch exists between nodes %d and %d", a, b)
}
