package bitstream

import "fmt"

// bitWriter packs bits MSB-first into a byte slice.
type bitWriter struct {
	buf  []byte
	nbit int
}

func (w *bitWriter) WriteBit(b bool) {
	if w.nbit%8 == 0 {
		w.buf = append(w.buf, 0)
	}
	if b {
		w.buf[len(w.buf)-1] |= 1 << uint(7-w.nbit%8)
	}
	w.nbit++
}

// WriteUint writes the low n bits of v, most significant first.
func (w *bitWriter) WriteUint(v uint64, n int) {
	for i := n - 1; i >= 0; i-- {
		w.WriteBit(v&(1<<uint(i)) != 0)
	}
}

func (w *bitWriter) Bytes() []byte { return w.buf }
func (w *bitWriter) Len() int      { return w.nbit }

// bitReader consumes bits MSB-first.
type bitReader struct {
	buf  []byte
	nbit int
}

func (r *bitReader) ReadBit() (bool, error) {
	if r.nbit >= 8*len(r.buf) {
		return false, fmt.Errorf("bitstream: truncated at bit %d", r.nbit)
	}
	b := r.buf[r.nbit/8]&(1<<uint(7-r.nbit%8)) != 0
	r.nbit++
	return b, nil
}

func (r *bitReader) ReadUint(n int) (uint64, error) {
	var v uint64
	for i := 0; i < n; i++ {
		b, err := r.ReadBit()
		if err != nil {
			return 0, err
		}
		v <<= 1
		if b {
			v |= 1
		}
	}
	return v, nil
}

// bitsFor returns the bits needed to encode values in [0, n).
func bitsFor(n int) int {
	b := 0
	for 1<<uint(b) < n {
		b++
	}
	return b
}
