package bitstream

import (
	"fmt"
	"reflect"
)

// Partial reconfiguration support: Diff computes the configuration delta
// between two bitstreams for the same architecture, and Apply patches a
// device configuration in place. Reconfiguring only the changed tiles and
// switches is how a deployed design is updated without a full reload.

// Delta is the difference between two configurations.
type Delta struct {
	ModelName string
	// CLBs holds replacement configs for changed logic tiles, keyed (x, y).
	CLBs map[[2]int]*CLBConfig
	// Pads holds replacement pad entries (nil value = remove).
	Pads map[[3]int]*PadConfig
	// SwitchSet / OPinSet / IPinSet give the new on/off state of changed
	// routing connections.
	SwitchSet map[[2]int]bool
	OPinSet   map[[2]int]bool
	IPinSet   map[[2]int]bool
}

// Empty reports whether the delta changes nothing.
func (d *Delta) Empty() bool {
	return len(d.CLBs) == 0 && len(d.Pads) == 0 &&
		len(d.SwitchSet) == 0 && len(d.OPinSet) == 0 && len(d.IPinSet) == 0
}

// Size counts changed items (tiles + pads + connections).
func (d *Delta) Size() int {
	return len(d.CLBs) + len(d.Pads) + len(d.SwitchSet) + len(d.OPinSet) + len(d.IPinSet)
}

// archCompatible checks the fields the configuration layout depends on.
func archCompatible(a, b *Bitstream) error {
	x, y := a.Arch, b.Arch
	if x.Rows != y.Rows || x.Cols != y.Cols || x.IORate != y.IORate {
		return fmt.Errorf("bitstream: grids differ: %dx%d vs %dx%d", x.Cols, x.Rows, y.Cols, y.Rows)
	}
	if x.CLB != y.CLB {
		return fmt.Errorf("bitstream: CLB parameters differ")
	}
	if x.Routing != y.Routing {
		return fmt.Errorf("bitstream: routing parameters differ")
	}
	return nil
}

// Diff returns the delta that turns configuration a into configuration b.
// Both must target the same architecture.
func Diff(a, b *Bitstream) (*Delta, error) {
	if err := archCompatible(a, b); err != nil {
		return nil, err
	}
	d := &Delta{
		ModelName: b.ModelName,
		CLBs:      make(map[[2]int]*CLBConfig),
		Pads:      make(map[[3]int]*PadConfig),
		SwitchSet: make(map[[2]int]bool),
		OPinSet:   make(map[[2]int]bool),
		IPinSet:   make(map[[2]int]bool),
	}
	for x := 1; x <= a.Arch.Cols; x++ {
		for y := 1; y <= a.Arch.Rows; y++ {
			ca, _ := a.CLBAt(x, y)
			cb, _ := b.CLBAt(x, y)
			if !reflect.DeepEqual(ca, cb) {
				d.CLBs[[2]int{x, y}] = cloneCLB(cb)
			}
		}
	}
	for key, pb := range b.Pads {
		if pa, ok := a.Pads[key]; !ok || *pa != *pb {
			cp := *pb
			d.Pads[key] = &cp
		}
	}
	for key := range a.Pads {
		if _, ok := b.Pads[key]; !ok {
			d.Pads[key] = nil
		}
	}
	diffSet := func(sa, sb map[[2]int]bool, out map[[2]int]bool) {
		for k := range sb {
			if !sa[k] {
				out[k] = true
			}
		}
		for k := range sa {
			if !sb[k] {
				out[k] = false
			}
		}
	}
	diffSet(a.SwitchOn, b.SwitchOn, d.SwitchSet)
	diffSet(a.OPinOn, b.OPinOn, d.OPinSet)
	diffSet(a.IPinOn, b.IPinOn, d.IPinSet)
	return d, nil
}

// Apply patches the configuration in place with the delta.
func Apply(bs *Bitstream, d *Delta) error {
	for key, cfg := range d.CLBs {
		if key[0] < 1 || key[0] > bs.Arch.Cols || key[1] < 1 || key[1] > bs.Arch.Rows {
			return fmt.Errorf("bitstream: delta tile (%d,%d) outside grid", key[0], key[1])
		}
		bs.CLBs[key[0]-1][key[1]-1] = cloneCLB(cfg)
	}
	for key, pad := range d.Pads {
		if pad == nil {
			delete(bs.Pads, key)
		} else {
			cp := *pad
			bs.Pads[key] = &cp
		}
	}
	applySet := func(dst map[[2]int]bool, changes map[[2]int]bool) {
		for k, on := range changes {
			if on {
				dst[k] = true
			} else {
				delete(dst, k)
			}
		}
	}
	applySet(bs.SwitchOn, d.SwitchSet)
	applySet(bs.OPinOn, d.OPinSet)
	applySet(bs.IPinOn, d.IPinSet)
	if d.ModelName != "" {
		bs.ModelName = d.ModelName
	}
	return nil
}

// Clone deep-copies a bitstream.
func (bs *Bitstream) Clone() *Bitstream {
	out := newBitstream(bs.Arch, bs.ModelName)
	for x := range bs.CLBs {
		for y := range bs.CLBs[x] {
			out.CLBs[x][y] = cloneCLB(bs.CLBs[x][y])
		}
	}
	for k, p := range bs.Pads {
		cp := *p
		out.Pads[k] = &cp
	}
	for k := range bs.SwitchOn {
		out.SwitchOn[k] = true
	}
	for k := range bs.OPinOn {
		out.OPinOn[k] = true
	}
	for k := range bs.IPinOn {
		out.IPinOn[k] = true
	}
	return out
}

func cloneCLB(c *CLBConfig) *CLBConfig {
	out := &CLBConfig{
		BLEs:         make([]BLEConfig, len(c.BLEs)),
		OutputSel:    append([]int(nil), c.OutputSel...),
		ClockEnabled: c.ClockEnabled,
	}
	for i, b := range c.BLEs {
		out.BLEs[i] = BLEConfig{
			LUT:          append([]bool(nil), b.LUT...),
			Registered:   b.Registered,
			Init:         b.Init,
			ClockEnabled: b.ClockEnabled,
			InputSel:     append([]int(nil), b.InputSel...),
		}
	}
	return out
}
