package bitstream

import (
	"bytes"
	"testing"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/pack"
	"fpgaflow/internal/place"
	"fpgaflow/internal/route"
	"fpgaflow/internal/rrgraph"
	"fpgaflow/internal/sim"
)

// generateOn builds a bitstream for the design on a FIXED grid so two
// designs share an architecture (partial reconfiguration requires that).
func generateOn(t *testing.T, blif string, a *arch.Arch) (*netlist.Netlist, *Bitstream) {
	t.Helper()
	nl, err := netlist.ParseBLIF(blif)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := pack.Pack(nl, pack.Params{N: a.CLB.N, K: a.CLB.K, I: a.CLB.I})
	if err != nil {
		t.Fatal(err)
	}
	p, err := place.NewProblem(a, pk)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(p, place.Options{Seed: 3, InnerNum: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := rrgraph.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	r, err := route.Route(p, pl, g, route.Options{})
	if err != nil || !r.Success {
		t.Fatalf("route: %v", err)
	}
	bs, err := Generate(pk, p, pl, r)
	if err != nil {
		t.Fatal(err)
	}
	return nl, bs
}

func fixedArch() *arch.Arch {
	a := arch.Paper()
	a.CLB.N, a.CLB.I = 2, 8
	a.Rows, a.Cols = 4, 4
	a.Routing.ChannelWidth = 10
	return a
}

const designA = `
.model alpha
.inputs a b c
.outputs y
.names a b t
11 1
.names t c y
1- 1
-1 1
.end
`

const designB = `
.model beta
.inputs a b c
.outputs y
.names a b t
10 1
01 1
.names t c y
11 1
.end
`

func TestDiffApplyRoundTrip(t *testing.T) {
	_, bsA := generateOn(t, designA, fixedArch())
	nlB, bsB := generateOn(t, designB, fixedArch())
	d, err := Diff(bsA, bsB)
	if err != nil {
		t.Fatal(err)
	}
	if d.Empty() {
		t.Fatal("different designs produced an empty delta")
	}
	patched := bsA.Clone()
	if err := Apply(patched, d); err != nil {
		t.Fatal(err)
	}
	// Byte-identical configurations after patching.
	ea, err := Encode(patched)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := Encode(bsB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Fatal("patched bitstream differs from target")
	}
	// And functionally equivalent to design B.
	ex, err := Extract(patched)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckEquivalent(nlB, ex, 10, 0, 4); err != nil {
		t.Fatalf("patched device wrong: %v", err)
	}
}

func TestDiffSelfIsEmpty(t *testing.T) {
	_, bs := generateOn(t, designA, fixedArch())
	d, err := Diff(bs, bs)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() || d.Size() != 0 {
		t.Fatalf("self-diff not empty: %d changes", d.Size())
	}
}

func TestDiffIsSmallerThanFullConfig(t *testing.T) {
	// A one-LUT tweak must touch far fewer items than the whole fabric.
	_, bsA := generateOn(t, designA, fixedArch())
	bsB := bsA.Clone()
	cfg, _ := bsB.CLBAt(1, 1)
	cfg.BLEs[0].LUT[0] = !cfg.BLEs[0].LUT[0]
	d, err := Diff(bsA, bsB)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 1 {
		t.Fatalf("one-bit change produced %d delta items", d.Size())
	}
}

func TestDiffRejectsDifferentArch(t *testing.T) {
	_, bsA := generateOn(t, designA, fixedArch())
	other := fixedArch()
	other.Rows = 5
	_, bsB := generateOn(t, designB, other)
	if _, err := Diff(bsA, bsB); err == nil {
		t.Fatal("mismatched architectures accepted")
	}
}

func TestApplyRejectsOutOfGrid(t *testing.T) {
	_, bs := generateOn(t, designA, fixedArch())
	d := &Delta{CLBs: map[[2]int]*CLBConfig{{99, 99}: emptyCLB(bs.Arch)}}
	if err := Apply(bs.Clone(), d); err == nil {
		t.Fatal("out-of-grid tile accepted")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	_, bs := generateOn(t, designA, fixedArch())
	cp := bs.Clone()
	cfg, _ := cp.CLBAt(1, 1)
	cfg.BLEs[0].LUT[0] = !cfg.BLEs[0].LUT[0]
	orig, _ := bs.CLBAt(1, 1)
	if orig.BLEs[0].LUT[0] == cfg.BLEs[0].LUT[0] {
		t.Fatal("clone shares LUT storage")
	}
}
