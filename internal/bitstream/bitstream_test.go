package bitstream

import (
	"testing"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/pack"
	"fpgaflow/internal/place"
	"fpgaflow/internal/route"
	"fpgaflow/internal/rrgraph"
	"fpgaflow/internal/sim"
)

const combBLIF = `
.model comb
.inputs a b c d
.outputs o1 o2
.names a b x1
11 1
.names c d x2
10 1
01 1
.names x1 x2 o1
1- 1
-1 1
.names x1 c o2
11 1
.end
`

const seqBLIF = `
.model seq
.inputs a b
.outputs o q
.names a b x
11 1
.names x q dq
10 1
01 1
.names q x o
1- 1
-1 1
.latch dq q re clk 1
.end
`

func generate(t *testing.T, blif string, params pack.Params) (*netlist.Netlist, *Bitstream) {
	t.Helper()
	nl, err := netlist.ParseBLIF(blif)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := pack.Pack(nl, params)
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Paper()
	a.CLB.N, a.CLB.K, a.CLB.I = params.N, params.K, params.I
	a.Routing.ChannelWidth = 10
	p, err := place.NewProblem(a, pk)
	if err != nil {
		t.Fatal(err)
	}
	p.AutoSize()
	pl, err := place.Place(p, place.Options{Seed: 5, InnerNum: 1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := rrgraph.Build(a)
	if err != nil {
		t.Fatal(err)
	}
	r, err := route.Route(p, pl, g, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !r.Success {
		t.Fatal("routing failed")
	}
	bs, err := Generate(pk, p, pl, r)
	if err != nil {
		t.Fatal(err)
	}
	return nl, bs
}

func TestGenerateAndExtractCombinational(t *testing.T) {
	nl, bs := generate(t, combBLIF, pack.Params{N: 2, K: 4, I: 8})
	ex, err := Extract(bs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckEquivalent(nl, ex, 10, 0, 1); err != nil {
		t.Fatalf("extracted netlist differs: %v", err)
	}
}

func TestGenerateAndExtractSequential(t *testing.T) {
	nl, bs := generate(t, seqBLIF, pack.Params{N: 2, K: 4, I: 8})
	ex, err := Extract(bs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckEquivalent(nl, ex, 10, 300, 2); err != nil {
		t.Fatalf("extracted netlist differs: %v", err)
	}
}

func TestGenerateAndExtractMinimalClusters(t *testing.T) {
	nl, bs := generate(t, combBLIF, pack.Params{N: 1, K: 4, I: 4})
	ex, err := Extract(bs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckEquivalent(nl, ex, 10, 0, 3); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	nl, bs := generate(t, seqBLIF, pack.Params{N: 2, K: 4, I: 8})
	data, err := Encode(bs)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 16 {
		t.Fatalf("bitstream only %d bytes", len(data))
	}
	bs2, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if bs2.ModelName != bs.ModelName {
		t.Errorf("model %q != %q", bs2.ModelName, bs.ModelName)
	}
	if len(bs2.SwitchOn) != len(bs.SwitchOn) || len(bs2.OPinOn) != len(bs.OPinOn) || len(bs2.IPinOn) != len(bs.IPinOn) {
		t.Fatalf("routing config lost: %d/%d/%d vs %d/%d/%d",
			len(bs2.SwitchOn), len(bs2.OPinOn), len(bs2.IPinOn),
			len(bs.SwitchOn), len(bs.OPinOn), len(bs.IPinOn))
	}
	ex, err := Extract(bs2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckEquivalent(nl, ex, 10, 300, 4); err != nil {
		t.Fatalf("decoded bitstream differs: %v", err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not a bitstream")); err == nil {
		t.Fatal("garbage accepted")
	}
	_, bs := generate(t, combBLIF, pack.Params{N: 2, K: 4, I: 8})
	data, err := Encode(bs)
	if err != nil {
		t.Fatal(err)
	}
	// Truncation must be caught.
	if _, err := Decode(data[:len(data)/2]); err == nil {
		t.Fatal("truncated bitstream accepted")
	}
	// Version tampering must be caught.
	bad := append([]byte(nil), data...)
	bad[4] = 99
	if _, err := Decode(bad); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestBitFlipChangesExtraction(t *testing.T) {
	// Flipping a LUT bit in the encoded stream must change the function or
	// be detected; it must never be silently equal AND structurally lost.
	nl, bs := generate(t, combBLIF, pack.Params{N: 2, K: 4, I: 8})
	// Find a used cluster and flip a meaningful LUT bit directly.
	flipped := false
	for x := 1; x <= bs.Arch.Cols && !flipped; x++ {
		for y := 1; y <= bs.Arch.Rows && !flipped; y++ {
			cfg, _ := bs.CLBAt(x, y)
			for i := range cfg.BLEs {
				any := false
				for _, b := range cfg.BLEs[i].LUT {
					if b {
						any = true
					}
				}
				if any {
					cfg.BLEs[i].LUT[0] = !cfg.BLEs[i].LUT[0]
					flipped = true
					break
				}
			}
		}
	}
	if !flipped {
		t.Fatal("no used LUT found")
	}
	ex, err := Extract(bs)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.CheckEquivalent(nl, ex, 10, 0, 5); err == nil {
		t.Fatal("flipped LUT bit produced an equivalent design")
	}
}

func TestExtractDetectsContention(t *testing.T) {
	_, bs := generate(t, combBLIF, pack.Params{N: 2, K: 4, I: 8})
	g, err := rrgraph.Build(bs.Arch)
	if err != nil {
		t.Fatal(err)
	}
	// Enable a second OPin driving a wire already driven by another net.
	var wire int = -1
	for conn := range bs.OPinOn {
		wire = conn[1]
		break
	}
	if wire < 0 {
		t.Skip("no opin connections")
	}
	for _, n := range g.Nodes {
		if n.Type != rrgraph.OPin {
			continue
		}
		if bs.OPinOn[[2]int{n.ID, wire}] {
			continue
		}
		if hasEdgeTo(g, n.ID, wire) {
			bs.OPinOn[[2]int{n.ID, wire}] = true
			if _, err := Extract(bs); err == nil {
				t.Fatal("net contention not detected")
			}
			return
		}
	}
	t.Skip("no second opin reaches the wire")
}

func hasEdgeTo(g *rrgraph.Graph, from, to int) bool {
	for _, e := range g.Nodes[from].Edges {
		if e == to {
			return true
		}
	}
	return false
}

func TestNumConfigBits(t *testing.T) {
	a := arch.Paper()
	a.Rows, a.Cols = 4, 4
	a.Routing.ChannelWidth = 8
	n, err := NumConfigBits(a)
	if err != nil {
		t.Fatal(err)
	}
	if n <= 0 {
		t.Fatalf("config bits = %d", n)
	}
	// More tracks means more configuration.
	b := arch.Paper()
	b.Rows, b.Cols = 4, 4
	b.Routing.ChannelWidth = 16
	n2, err := NumConfigBits(b)
	if err != nil {
		t.Fatal(err)
	}
	if n2 <= n {
		t.Errorf("W=16 bits %d <= W=8 bits %d", n2, n)
	}
}

func TestGenerateRejectsFailedRouting(t *testing.T) {
	nl, err := netlist.ParseBLIF(combBLIF)
	if err != nil {
		t.Fatal(err)
	}
	pk, err := pack.Pack(nl, pack.Params{N: 2, K: 4, I: 8})
	if err != nil {
		t.Fatal(err)
	}
	a := arch.Paper()
	a.CLB.N, a.CLB.I = 2, 8
	p, _ := place.NewProblem(a, pk)
	p.AutoSize()
	pl, _ := place.Place(p, place.Options{Seed: 1, FixedSeedOnly: true})
	g, _ := rrgraph.Build(p.Arch)
	r := &route.Result{Graph: g, Routes: make([]*route.NetRoute, len(p.Nets)), Success: false}
	if _, err := Generate(pk, p, pl, r); err == nil {
		t.Fatal("failed routing accepted")
	}
}
