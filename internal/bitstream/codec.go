package bitstream

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/rrgraph"
)

// Binary format:
//
//	magic "DAGR", version u8
//	model name (u16 len + bytes)
//	arch parameters needed to rebuild the routing graph
//	pad table (u32 count, entries: x,y,sub u16; flags u8; pin u16; name)
//	CLB frames in (x, y) order, bit-packed
//	routing frame: one bit per configurable connection in canonical
//	graph order (wire-wire switches counted once with from < to)
//	trailing u32 bit count (integrity check)
const (
	magic   = "DAGR"
	version = 1
)

// Encode serializes the bitstream.
func Encode(bs *Bitstream) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(magic)
	buf.WriteByte(version)
	writeString(&buf, bs.ModelName)

	a := bs.Arch
	hdr := []uint32{
		uint32(a.Rows), uint32(a.Cols), uint32(a.IORate),
		uint32(a.CLB.N), uint32(a.CLB.K), uint32(a.CLB.I), uint32(a.CLB.ClockPins),
		boolBit(a.CLB.GatedClock), boolBit(a.CLB.DoubleEdgeFF),
		uint32(a.Routing.ChannelWidth), uint32(a.Routing.SegmentLength), uint32(a.Routing.Fs),
		uint32(a.Routing.Switch),
	}
	// binary.Write into a bytes.Buffer cannot fail.
	for _, v := range hdr {
		_ = binary.Write(&buf, binary.BigEndian, v)
	}
	for _, f := range []float64{a.Routing.FcIn, a.Routing.FcOut,
		a.Routing.SwitchWidthMult, a.Routing.WireWidthMult, a.Routing.WireSpacingMult} {
		_ = binary.Write(&buf, binary.BigEndian, math.Float64bits(f))
	}

	// Pad table.
	_ = binary.Write(&buf, binary.BigEndian, uint32(len(bs.Pads)))
	for _, key := range sortedPadKeys(bs) {
		pad := bs.Pads[key]
		_ = binary.Write(&buf, binary.BigEndian, uint16(key[0]))
		_ = binary.Write(&buf, binary.BigEndian, uint16(key[1]))
		_ = binary.Write(&buf, binary.BigEndian, uint16(key[2]))
		flags := byte(0)
		if pad.Used {
			flags |= 1
		}
		if pad.Input {
			flags |= 2
		}
		buf.WriteByte(flags)
		_ = binary.Write(&buf, binary.BigEndian, uint16(pad.PinIdx))
		writeString(&buf, pad.Name)
	}

	// Configuration bits.
	g, err := rrgraph.Build(a)
	if err != nil {
		return nil, err
	}
	w := &bitWriter{}
	encodeCLBs(w, bs)
	encodeRouting(w, bs, g)
	_ = binary.Write(&buf, binary.BigEndian, uint32(w.Len()))
	buf.Write(w.Bytes())
	return buf.Bytes(), nil
}

// Decode parses a bitstream produced by Encode. The technology section of
// the architecture is restored from the defaults (the configuration itself
// is technology independent, paper §4.1 feature i).
func Decode(data []byte) (*Bitstream, error) {
	buf := bytes.NewReader(data)
	head := make([]byte, 5)
	if _, err := io.ReadFull(buf, head); err != nil || string(head[:4]) != magic {
		return nil, fmt.Errorf("bitstream: bad magic")
	}
	if head[4] != version {
		return nil, fmt.Errorf("bitstream: unsupported version %d", head[4])
	}
	model, err := readString(buf)
	if err != nil {
		return nil, err
	}
	var hdr [13]uint32
	for i := range hdr {
		if err := binary.Read(buf, binary.BigEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("bitstream: header: %w", err)
		}
	}
	var floats [5]float64
	for i := range floats {
		var b uint64
		if err := binary.Read(buf, binary.BigEndian, &b); err != nil {
			return nil, fmt.Errorf("bitstream: header floats: %w", err)
		}
		floats[i] = math.Float64frombits(b)
	}
	a := arch.Paper()
	a.Rows, a.Cols, a.IORate = int(hdr[0]), int(hdr[1]), int(hdr[2])
	a.CLB.N, a.CLB.K, a.CLB.I, a.CLB.ClockPins = int(hdr[3]), int(hdr[4]), int(hdr[5]), int(hdr[6])
	a.CLB.GatedClock, a.CLB.DoubleEdgeFF = hdr[7] != 0, hdr[8] != 0
	a.Routing.ChannelWidth, a.Routing.SegmentLength, a.Routing.Fs = int(hdr[9]), int(hdr[10]), int(hdr[11])
	a.Routing.Switch = arch.SwitchKind(hdr[12])
	a.Routing.FcIn, a.Routing.FcOut = floats[0], floats[1]
	a.Routing.SwitchWidthMult, a.Routing.WireWidthMult, a.Routing.WireSpacingMult = floats[2], floats[3], floats[4]
	if err := a.Validate(); err != nil {
		return nil, fmt.Errorf("bitstream: %w", err)
	}
	// Size sanity before any geometry-sized allocation: the CLB frames alone
	// need clbFrameBits bits, so a stream with fewer remaining bytes is
	// corrupt no matter what its pad table says. Without this gate a forged
	// header (huge grid, large N/K) makes newBitstream/rrgraph.Build allocate
	// gigabytes for a kilobyte-sized input.
	if need := clbFrameBits(a); int64(buf.Len())*8 < need {
		return nil, fmt.Errorf("bitstream: header declares a fabric needing >= %d config bits, %d bytes remain", need, buf.Len())
	}
	bs := newBitstream(a, model)

	var nPads uint32
	if err := binary.Read(buf, binary.BigEndian, &nPads); err != nil {
		return nil, err
	}
	for i := uint32(0); i < nPads; i++ {
		var x, y, sub, pin uint16
		var flags byte
		if err := binary.Read(buf, binary.BigEndian, &x); err != nil {
			return nil, err
		}
		// Previously these two reads dropped their errors, so a stream
		// truncated mid-pad-entry decoded to a pad at a wrong site instead
		// of failing (latent bug found by the droppederror analyzer).
		if err := binary.Read(buf, binary.BigEndian, &y); err != nil {
			return nil, err
		}
		if err := binary.Read(buf, binary.BigEndian, &sub); err != nil {
			return nil, err
		}
		flags, err = buf.ReadByte()
		if err != nil {
			return nil, err
		}
		if err := binary.Read(buf, binary.BigEndian, &pin); err != nil {
			return nil, err
		}
		name, err := readString(buf)
		if err != nil {
			return nil, err
		}
		onX := int(x) == 0 || int(x) == a.Cols+1
		onY := int(y) == 0 || int(y) == a.Rows+1
		if int(x) > a.Cols+1 || int(y) > a.Rows+1 || onX == onY {
			return nil, fmt.Errorf("bitstream: pad %q at (%d,%d) is not an I/O site", name, x, y)
		}
		if int(sub) >= a.IORate || int(pin) >= a.IORate {
			return nil, fmt.Errorf("bitstream: pad %q sub/pin %d/%d exceeds IO rate %d", name, sub, pin, a.IORate)
		}
		bs.Pads[[3]int{int(x), int(y), int(sub)}] = &PadConfig{
			Used: flags&1 != 0, Input: flags&2 != 0, Name: name, PinIdx: int(pin),
		}
	}

	var nbits uint32
	if err := binary.Read(buf, binary.BigEndian, &nbits); err != nil {
		return nil, err
	}
	rest := make([]byte, buf.Len())
	if _, err := io.ReadFull(buf, rest); err != nil {
		return nil, err
	}
	if len(rest)*8 < int(nbits) {
		return nil, fmt.Errorf("bitstream: %d config bits declared, %d available", nbits, len(rest)*8)
	}
	r := &bitReader{buf: rest}
	g, err := rrgraph.Build(a)
	if err != nil {
		return nil, err
	}
	if err := decodeCLBs(r, bs); err != nil {
		return nil, err
	}
	if err := decodeRouting(r, bs, g); err != nil {
		return nil, err
	}
	if r.nbit != int(nbits) {
		return nil, fmt.Errorf("bitstream: consumed %d bits, declared %d", r.nbit, nbits)
	}
	return bs, nil
}

func encodeCLBs(w *bitWriter, bs *Bitstream) {
	a := bs.Arch
	selBits := bitsFor(a.CLB.I + a.CLB.N)
	outBits := bitsFor(a.CLB.N)
	for x := 0; x < a.Cols; x++ {
		for y := 0; y < a.Rows; y++ {
			cfg := bs.CLBs[x][y]
			for i := range cfg.BLEs {
				b := &cfg.BLEs[i]
				for _, bit := range b.LUT {
					w.WriteBit(bit)
				}
				w.WriteBit(b.Registered)
				w.WriteBit(b.Init)
				w.WriteBit(b.ClockEnabled)
				for _, sel := range b.InputSel {
					w.WriteUint(uint64(sel), selBits)
				}
			}
			for _, sel := range cfg.OutputSel {
				w.WriteUint(uint64(sel), outBits)
			}
			w.WriteBit(cfg.ClockEnabled)
		}
	}
}

func decodeCLBs(r *bitReader, bs *Bitstream) error {
	a := bs.Arch
	selBits := bitsFor(a.CLB.I + a.CLB.N)
	outBits := bitsFor(a.CLB.N)
	for x := 0; x < a.Cols; x++ {
		for y := 0; y < a.Rows; y++ {
			cfg := bs.CLBs[x][y]
			for i := range cfg.BLEs {
				b := &cfg.BLEs[i]
				for j := range b.LUT {
					bit, err := r.ReadBit()
					if err != nil {
						return err
					}
					b.LUT[j] = bit
				}
				var err error
				if b.Registered, err = r.ReadBit(); err != nil {
					return err
				}
				if b.Init, err = r.ReadBit(); err != nil {
					return err
				}
				if b.ClockEnabled, err = r.ReadBit(); err != nil {
					return err
				}
				for j := range b.InputSel {
					v, err := r.ReadUint(selBits)
					if err != nil {
						return err
					}
					b.InputSel[j] = int(v)
				}
			}
			for j := range cfg.OutputSel {
				v, err := r.ReadUint(outBits)
				if err != nil {
					return err
				}
				cfg.OutputSel[j] = int(v)
			}
			var err error
			if cfg.ClockEnabled, err = r.ReadBit(); err != nil {
				return err
			}
		}
	}
	return nil
}

// configurableEdges enumerates every programmable connection in canonical
// order: wire-wire switches once (from < to), then OPin->wire, then
// wire->IPin, all in node/edge order.
func configurableEdges(g *rrgraph.Graph) [][3]int {
	var out [][3]int // kind(0=sw,1=opin,2=ipin), from, to
	for _, n := range g.Nodes {
		for _, e := range n.Edges {
			to := g.Nodes[e]
			fw := n.Type == rrgraph.ChanX || n.Type == rrgraph.ChanY
			tw := to.Type == rrgraph.ChanX || to.Type == rrgraph.ChanY
			switch {
			case fw && tw:
				if n.ID < e {
					out = append(out, [3]int{0, n.ID, e})
				}
			case n.Type == rrgraph.OPin && tw:
				out = append(out, [3]int{1, n.ID, e})
			case fw && to.Type == rrgraph.IPin:
				out = append(out, [3]int{2, n.ID, e})
			}
		}
	}
	return out
}

func encodeRouting(w *bitWriter, bs *Bitstream, g *rrgraph.Graph) {
	for _, ce := range configurableEdges(g) {
		key := [2]int{ce[1], ce[2]}
		var on bool
		switch ce[0] {
		case 0:
			on = bs.SwitchOn[key]
		case 1:
			on = bs.OPinOn[key]
		default:
			on = bs.IPinOn[key]
		}
		w.WriteBit(on)
	}
}

func decodeRouting(r *bitReader, bs *Bitstream, g *rrgraph.Graph) error {
	for _, ce := range configurableEdges(g) {
		on, err := r.ReadBit()
		if err != nil {
			return err
		}
		if !on {
			continue
		}
		key := [2]int{ce[1], ce[2]}
		switch ce[0] {
		case 0:
			bs.SwitchOn[key] = true
		case 1:
			bs.OPinOn[key] = true
		default:
			bs.IPinOn[key] = true
		}
	}
	return nil
}

// clbFrameBits computes, in constant time, the exact number of bits the
// CLB frames of an architecture occupy (a lower bound on the whole
// configuration, which adds the routing frame on top). Kept in int64:
// with Validate's bounds the worst case is ~2^48, past int32.
func clbFrameBits(a *arch.Arch) int64 {
	selBits := int64(bitsFor(a.CLB.I + a.CLB.N))
	outBits := int64(bitsFor(a.CLB.N))
	perBLE := int64(1)<<uint(a.CLB.K) + 3 + int64(a.CLB.K)*selBits
	perTile := int64(a.CLB.N)*perBLE + int64(a.CLB.Outputs())*outBits + 1
	return int64(a.Cols) * int64(a.Rows) * perTile
}

// NumConfigBits reports the size of the configuration for an architecture.
func NumConfigBits(a *arch.Arch) (int, error) {
	g, err := rrgraph.Build(a)
	if err != nil {
		return 0, err
	}
	bs := newBitstream(a, "")
	w := &bitWriter{}
	encodeCLBs(w, bs)
	encodeRouting(w, bs, g)
	return w.Len(), nil
}

func writeString(buf *bytes.Buffer, s string) {
	_ = binary.Write(buf, binary.BigEndian, uint16(len(s)))
	buf.WriteString(s)
}

func readString(buf *bytes.Reader) (string, error) {
	var n uint16
	if err := binary.Read(buf, binary.BigEndian, &n); err != nil {
		return "", err
	}
	// bytes.Reader.Read returns a short count without error on truncated
	// input; ReadFull turns that into ErrUnexpectedEOF instead of a
	// silently zero-padded name.
	b := make([]byte, n)
	if _, err := io.ReadFull(buf, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func boolBit(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func sortedPadKeys(bs *Bitstream) [][3]int {
	keys := make([][3]int, 0, len(bs.Pads))
	for k := range bs.Pads {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && lessPad(keys[j], keys[j-1]); j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

func lessPad(a, b [3]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	return a[2] < b[2]
}
