package bitstream

import (
	"math/rand"
	"testing"

	"fpgaflow/internal/pack"
)

// TestDecodeNeverPanics feeds the decoder random garbage and corrupted
// valid bitstreams; it must always return an error or a decodable result,
// never panic or index out of range.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	decode := func(data []byte) {
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("panic on %d-byte input: %v", len(data), r)
			}
		}()
		bs, err := Decode(data)
		if err == nil && bs != nil {
			// A successfully decoded stream must also extract cleanly or
			// fail with an error, not a panic.
			_, _ = Extract(bs)
		}
	}
	// Pure garbage.
	for i := 0; i < 60; i++ {
		n := rng.Intn(400)
		data := make([]byte, n)
		rng.Read(data)
		decode(data)
	}
	// Garbage with a valid magic.
	for i := 0; i < 60; i++ {
		n := 5 + rng.Intn(400)
		data := make([]byte, n)
		rng.Read(data)
		copy(data, "DAGR\x01")
		decode(data)
	}
	// Corrupted valid stream: every prefix and random single-byte flips.
	_, bs := generate(t, combBLIF, pack.Params{N: 2, K: 4, I: 8})
	valid, err := Encode(bs)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(valid); cut += 7 {
		decode(valid[:cut])
	}
	for i := 0; i < 200; i++ {
		mut := append([]byte(nil), valid...)
		mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
		decode(mut)
	}
}

// TestExtractNeverPanicsOnRandomConfig builds syntactically valid but
// semantically random configurations: extraction must reject or succeed
// gracefully.
func TestExtractNeverPanicsOnRandomConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	_, bs := generate(t, combBLIF, pack.Params{N: 2, K: 4, I: 8})
	for trial := 0; trial < 30; trial++ {
		// Randomize CLB configs in place.
		for x := 1; x <= bs.Arch.Cols; x++ {
			for y := 1; y <= bs.Arch.Rows; y++ {
				cfg, _ := bs.CLBAt(x, y)
				for i := range cfg.BLEs {
					b := &cfg.BLEs[i]
					for j := range b.LUT {
						b.LUT[j] = rng.Intn(2) == 1
					}
					b.Registered = rng.Intn(2) == 1
					for j := range b.InputSel {
						b.InputSel[j] = rng.Intn(bs.Arch.CLB.I + bs.Arch.CLB.N)
					}
				}
				for j := range cfg.OutputSel {
					cfg.OutputSel[j] = rng.Intn(bs.Arch.CLB.N)
				}
			}
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on random config: %v", r)
				}
			}()
			_, _ = Extract(bs)
		}()
	}
}
