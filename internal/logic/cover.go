// Package logic implements the technology-independent optimization stage of
// the flow (the role SIS plays in the paper): two-level minimization of node
// covers (Quine–McCluskey with greedy prime selection), cube containment and
// merging for wide nodes, node elimination/collapsing, structural hashing,
// constant propagation, and decomposition into two-input gates ahead of LUT
// mapping.
package logic

import (
	"fmt"
	"sort"

	"fpgaflow/internal/netlist"
)

// qmLimit is the widest function minimized exactly; wider covers get the
// cheap cube-merging pass instead.
const qmLimit = 10

// implicant is a cube in (value, mask) form: mask bit 1 = don't care.
type implicant struct {
	value, mask uint32
}

func (im implicant) covers(minterm uint32) bool {
	return (minterm &^ im.mask) == im.value
}

// MinimizeCover returns a minimal (exact primes, greedy selection) on-set
// cover equivalent to the input cover over k variables. Functions wider
// than qmLimit variables are reduced by cube containment and distance-1
// merging only.
func MinimizeCover(c netlist.Cover, k int) netlist.Cover {
	if k > qmLimit {
		return reduceWide(c, k)
	}
	tt := truthTableOfCover(c, k)
	return MinimizeTruthTable(tt, k)
}

// MinimizeTruthTable builds a minimal on-set cover for the function given as
// a truth table over k variables (k <= qmLimit).
func MinimizeTruthTable(tt []bool, k int) netlist.Cover {
	out := netlist.Cover{Value: netlist.LitOne}
	var minterms []uint32
	for m, b := range tt {
		if b {
			minterms = append(minterms, uint32(m))
		}
	}
	if len(minterms) == 0 {
		return out // constant 0: empty on-set
	}
	if len(minterms) == 1<<uint(k) {
		out.Cubes = []netlist.Cube{make(netlist.Cube, k)}
		for i := range out.Cubes[0] {
			out.Cubes[0][i] = netlist.LitDC
		}
		if k == 0 {
			out.Cubes = []netlist.Cube{{}}
		}
		return out
	}
	primes := primeImplicants(minterms, k)
	chosen := selectCover(primes, minterms)
	for _, im := range chosen {
		out.Cubes = append(out.Cubes, implicantToCube(im, k))
	}
	sortCubes(out.Cubes)
	return out
}

// primeImplicants runs the Quine–McCluskey combining step.
func primeImplicants(minterms []uint32, k int) []implicant {
	type key struct{ value, mask uint32 }
	current := make(map[key]implicant, len(minterms))
	for _, m := range minterms {
		current[key{m, 0}] = implicant{m, 0}
	}
	var primes []implicant
	for len(current) > 0 {
		combined := make(map[key]bool, len(current))
		next := make(map[key]implicant)
		list := make([]implicant, 0, len(current))
		for _, im := range current {
			list = append(list, im)
		}
		// Group by popcount of value for the classic adjacent-group scan;
		// with map-based dedup a full pairwise scan is simpler and still
		// fine at k <= 10.
		for i := 0; i < len(list); i++ {
			for j := i + 1; j < len(list); j++ {
				a, b := list[i], list[j]
				if a.mask != b.mask {
					continue
				}
				diff := a.value ^ b.value
				if diff != 0 && diff&(diff-1) == 0 { // single differing bit
					nk := key{a.value &^ diff, a.mask | diff}
					next[nk] = implicant{nk.value, nk.mask}
					combined[key{a.value, a.mask}] = true
					combined[key{b.value, b.mask}] = true
				}
			}
		}
		for _, im := range list {
			if !combined[key{im.value, im.mask}] {
				primes = append(primes, im)
			}
		}
		current = next
	}
	return primes
}

// selectCover picks essential primes then greedily covers the rest.
func selectCover(primes []implicant, minterms []uint32) []implicant {
	sort.Slice(primes, func(i, j int) bool {
		if primes[i].mask != primes[j].mask {
			return primes[i].mask > primes[j].mask // wider cubes first
		}
		return primes[i].value < primes[j].value
	})
	coveredBy := make(map[uint32][]int, len(minterms))
	for _, m := range minterms {
		for pi, p := range primes {
			if p.covers(m) {
				coveredBy[m] = append(coveredBy[m], pi)
			}
		}
	}
	selected := make(map[int]bool)
	covered := make(map[uint32]bool, len(minterms))
	// Essential primes.
	for _, m := range minterms {
		if len(coveredBy[m]) == 1 {
			selected[coveredBy[m][0]] = true
		}
	}
	for pi := range selected {
		for _, m := range minterms {
			if primes[pi].covers(m) {
				covered[m] = true
			}
		}
	}
	// Greedy set cover for the remainder.
	for len(covered) < len(minterms) {
		best, bestGain := -1, 0
		for pi, p := range primes {
			if selected[pi] {
				continue
			}
			gain := 0
			for _, m := range minterms {
				if !covered[m] && p.covers(m) {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = pi, gain
			}
		}
		if best < 0 {
			break // unreachable: primes cover all minterms by construction
		}
		selected[best] = true
		for _, m := range minterms {
			if primes[best].covers(m) {
				covered[m] = true
			}
		}
	}
	out := make([]implicant, 0, len(selected))
	for pi := range selected {
		out = append(out, primes[pi])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].value != out[j].value {
			return out[i].value < out[j].value
		}
		return out[i].mask < out[j].mask
	})
	return out
}

func implicantToCube(im implicant, k int) netlist.Cube {
	cube := make(netlist.Cube, k)
	for i := 0; i < k; i++ {
		bit := uint32(1) << uint(i)
		switch {
		case im.mask&bit != 0:
			cube[i] = netlist.LitDC
		case im.value&bit != 0:
			cube[i] = netlist.LitOne
		default:
			cube[i] = netlist.LitZero
		}
	}
	return cube
}

func truthTableOfCover(c netlist.Cover, k int) []bool {
	rows := 1 << uint(k)
	tt := make([]bool, rows)
	in := make([]bool, k)
	for m := 0; m < rows; m++ {
		for i := 0; i < k; i++ {
			in[i] = m&(1<<uint(i)) != 0
		}
		tt[m] = netlist.EvalCover(c, in)
	}
	return tt
}

// reduceWide removes contained cubes and merges distance-1 cube pairs for
// functions too wide for exact minimization. It preserves the cover's phase.
func reduceWide(c netlist.Cover, k int) netlist.Cover {
	cubes := make([]netlist.Cube, len(c.Cubes))
	for i, cube := range c.Cubes {
		cubes[i] = cube.Clone()
	}
	changed := true
	for changed {
		changed = false
		// Distance-1 merge: cubes differing in exactly one literal position
		// with complementary values merge to a DC at that position.
		for i := 0; i < len(cubes) && !changed; i++ {
			for j := i + 1; j < len(cubes); j++ {
				if pos, ok := mergeable(cubes[i], cubes[j]); ok {
					cubes[i][pos] = netlist.LitDC
					cubes = append(cubes[:j], cubes[j+1:]...)
					changed = true
					break
				}
			}
		}
		// Containment removal.
		for i := 0; i < len(cubes); i++ {
			for j := 0; j < len(cubes); j++ {
				if i != j && cubeContains(cubes[j], cubes[i]) {
					cubes = append(cubes[:i], cubes[i+1:]...)
					i--
					changed = true
					break
				}
			}
		}
	}
	sortCubes(cubes)
	return netlist.Cover{Cubes: cubes, Value: c.Value}
}

// mergeable reports whether a and b differ only in one position with 0/1
// values (all other positions identical), returning that position.
func mergeable(a, b netlist.Cube) (int, bool) {
	if len(a) != len(b) {
		return 0, false
	}
	pos := -1
	for i := range a {
		if a[i] == b[i] {
			continue
		}
		if a[i] == netlist.LitDC || b[i] == netlist.LitDC || pos >= 0 {
			return 0, false
		}
		pos = i
	}
	if pos < 0 {
		return 0, false
	}
	return pos, true
}

// cubeContains reports whether big covers every assignment small covers.
func cubeContains(big, small netlist.Cube) bool {
	if len(big) != len(small) {
		return false
	}
	for i := range big {
		if big[i] == netlist.LitDC {
			continue
		}
		if big[i] != small[i] {
			return false
		}
	}
	return true
}

func sortCubes(cubes []netlist.Cube) {
	sort.Slice(cubes, func(i, j int) bool { return string(cubes[i]) < string(cubes[j]) })
}

// CanonicalCover returns a canonical string form used for structural hashing.
func CanonicalCover(c netlist.Cover) string {
	cubes := make([]string, len(c.Cubes))
	for i, cube := range c.Cubes {
		cubes[i] = string(cube)
	}
	sort.Strings(cubes)
	phase := "+"
	if !c.OnSet() {
		phase = "-"
	}
	s := phase
	for _, c := range cubes {
		s += "|" + c
	}
	return s
}

// Literals counts the literal (non-DC) positions across the cover, the usual
// SIS cost metric.
func Literals(c netlist.Cover) int {
	n := 0
	for _, cube := range c.Cubes {
		for _, lit := range cube {
			if lit != netlist.LitDC {
				n++
			}
		}
	}
	return n
}

// checkWidth verifies all cubes have width k (defensive; callers pass
// covers straight off netlist nodes).
func checkWidth(c netlist.Cover, k int) error {
	for _, cube := range c.Cubes {
		if len(cube) != k {
			return fmt.Errorf("logic: cube width %d != %d", len(cube), k)
		}
	}
	return nil
}
