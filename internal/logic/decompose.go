package logic

import (
	"fmt"

	"fpgaflow/internal/netlist"
)

// Decompose rewrites every logic node into a tree of at-most-2-input
// AND/OR/NOT nodes (the "tech_decomp -a 2 -o 2" step before LUT mapping).
// The transformation is functionality-preserving: each SOP cover becomes an
// OR tree over AND trees of its (possibly inverted) literals. Inverters are
// shared per source signal.
func Decompose(nl *netlist.Netlist) error {
	inverters := make(map[*netlist.Node]*netlist.Node)
	invert := func(src *netlist.Node) (*netlist.Node, error) {
		if inv, ok := inverters[src]; ok {
			return inv, nil
		}
		inv, err := nl.AddLogic(nl.FreshName(src.Name+"_n"), []*netlist.Node{src},
			netlist.Cover{Cubes: []netlist.Cube{{netlist.LitZero}}, Value: netlist.LitOne})
		if err != nil {
			return nil, err
		}
		inverters[src] = inv
		return inv, nil
	}
	and2 := netlist.Cover{Cubes: []netlist.Cube{{netlist.LitOne, netlist.LitOne}}, Value: netlist.LitOne}
	or2 := netlist.Cover{Cubes: []netlist.Cube{
		{netlist.LitOne, netlist.LitDC}, {netlist.LitDC, netlist.LitOne}}, Value: netlist.LitOne}

	// buildTree folds terms pairwise with the given 2-input gate cover.
	buildTree := func(terms []*netlist.Node, cover netlist.Cover, prefix string) (*netlist.Node, error) {
		for len(terms) > 1 {
			var next []*netlist.Node
			for i := 0; i+1 < len(terms); i += 2 {
				g, err := nl.AddLogic(nl.FreshName(prefix), []*netlist.Node{terms[i], terms[i+1]}, cover.Clone())
				if err != nil {
					return nil, err
				}
				next = append(next, g)
			}
			if len(terms)%2 == 1 {
				next = append(next, terms[len(terms)-1])
			}
			terms = next
		}
		return terms[0], nil
	}

	// Snapshot: new nodes are appended while we iterate.
	targets := make([]*netlist.Node, 0, nl.NumNodes())
	for _, n := range nl.Nodes() {
		if n.Kind == netlist.KindLogic && len(n.Fanin) > 2 {
			targets = append(targets, n)
		}
	}
	for _, n := range targets {
		var cubeRoots []*netlist.Node
		for _, cube := range n.Cover.Cubes {
			var lits []*netlist.Node
			for i, lit := range cube {
				switch lit {
				case netlist.LitOne:
					lits = append(lits, n.Fanin[i])
				case netlist.LitZero:
					inv, err := invert(n.Fanin[i])
					if err != nil {
						return err
					}
					lits = append(lits, inv)
				}
			}
			if len(lits) == 0 {
				return fmt.Errorf("logic: node %s has a tautology cube over >2 fanins", n.Name)
			}
			root, err := buildTree(lits, and2, n.Name+"_and")
			if err != nil {
				return err
			}
			cubeRoots = append(cubeRoots, root)
		}
		if len(cubeRoots) == 0 {
			// Constant-0 on-set (or constant-1 off-set): make it a constant.
			n.Fanin = nil
			if n.Cover.OnSet() {
				n.Cover = netlist.Cover{Value: netlist.LitOne}
			} else {
				n.Cover = netlist.Cover{Cubes: []netlist.Cube{{}}, Value: netlist.LitOne}
			}
			continue
		}
		root, err := buildTree(cubeRoots, or2, n.Name+"_or")
		if err != nil {
			return err
		}
		// Rewrite n as buffer or inverter of the tree root, preserving its name.
		phase := netlist.LitOne
		if !n.Cover.OnSet() {
			phase = netlist.LitZero
		}
		n.Fanin = []*netlist.Node{root}
		n.Cover = netlist.Cover{Cubes: []netlist.Cube{{phase}}, Value: netlist.LitOne}
	}
	nl.Sweep()
	return nl.Check()
}

// MaxFanin returns the widest logic-node fanin in the netlist.
func MaxFanin(nl *netlist.Netlist) int {
	max := 0
	for _, n := range nl.Nodes() {
		if n.Kind == netlist.KindLogic && len(n.Fanin) > max {
			max = len(n.Fanin)
		}
	}
	return max
}
