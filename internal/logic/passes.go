package logic

import (
	"fmt"
	"strings"

	"fpgaflow/internal/netlist"
)

// Options tunes the optimization script.
type Options struct {
	// EliminateMaxSupport bounds the combined support of a collapse; nodes
	// whose merge would exceed it are kept. Default 10.
	EliminateMaxSupport int
	// EliminateMaxFanout bounds the fanout of nodes considered for
	// elimination (SIS's value threshold). Default 3.
	EliminateMaxFanout int
	// Iterations of the full script. Default 2.
	Iterations int
}

func (o *Options) fill() {
	if o.EliminateMaxSupport == 0 {
		o.EliminateMaxSupport = 10
	}
	if o.EliminateMaxFanout == 0 {
		o.EliminateMaxFanout = 3
	}
	if o.Iterations == 0 {
		o.Iterations = 2
	}
}

// Optimize runs the full technology-independent script, a compact analogue
// of SIS's script.rugged: constant propagation and buffer removal, node
// elimination, per-node two-level minimization, structural hashing, sweep.
func Optimize(nl *netlist.Netlist, opts Options) error {
	opts.fill()
	for it := 0; it < opts.Iterations; it++ {
		if err := PropagateConstants(nl); err != nil {
			return err
		}
		RemoveBuffers(nl)
		if err := Eliminate(nl, opts.EliminateMaxSupport, opts.EliminateMaxFanout); err != nil {
			return err
		}
		if err := SimplifyNodes(nl); err != nil {
			return err
		}
		MergeDuplicates(nl)
		nl.Sweep()
	}
	return nl.Check()
}

// SimplifyNodes minimizes every logic node's cover in place.
func SimplifyNodes(nl *netlist.Netlist) error {
	for _, n := range nl.Nodes() {
		if n.Kind != netlist.KindLogic {
			continue
		}
		if err := checkWidth(n.Cover, len(n.Fanin)); err != nil {
			return fmt.Errorf("node %s: %w", n.Name, err)
		}
		min := MinimizeCover(n.Cover, len(n.Fanin))
		// Drop fanins that became irrelevant (all-DC columns).
		n.Cover = min
		pruneUnusedFanins(n)
	}
	return nil
}

// pruneUnusedFanins removes fanin positions that are don't-care in every cube.
func pruneUnusedFanins(n *netlist.Node) {
	if n.Kind != netlist.KindLogic || len(n.Fanin) == 0 {
		return
	}
	used := make([]bool, len(n.Fanin))
	for _, cube := range n.Cover.Cubes {
		for i, lit := range cube {
			if lit != netlist.LitDC {
				used[i] = true
			}
		}
	}
	keepAll := true
	for _, u := range used {
		if !u {
			keepAll = false
		}
	}
	if keepAll {
		return
	}
	var newFanin []*netlist.Node
	idx := make([]int, 0, len(n.Fanin))
	for i, u := range used {
		if u {
			idx = append(idx, i)
			newFanin = append(newFanin, n.Fanin[i])
		}
	}
	newCubes := make([]netlist.Cube, len(n.Cover.Cubes))
	for ci, cube := range n.Cover.Cubes {
		nc := make(netlist.Cube, len(idx))
		for j, i := range idx {
			nc[j] = cube[i]
		}
		newCubes[ci] = nc
	}
	n.Fanin = newFanin
	n.Cover.Cubes = newCubes
}

// PropagateConstants replaces uses of constant nodes by specializing the
// consuming covers, iterating to a fixed point.
func PropagateConstants(nl *netlist.Netlist) error {
	for {
		changed := false
		for _, n := range nl.Nodes() {
			if n.Kind != netlist.KindLogic {
				continue
			}
			for i := 0; i < len(n.Fanin); i++ {
				cn, ok := constValue(n.Fanin[i])
				if !ok {
					continue
				}
				specialize(n, i, cn)
				changed = true
				i-- // positions shifted
			}
		}
		if !changed {
			return nil
		}
	}
}

func constValue(n *netlist.Node) (bool, bool) {
	ok, v := n.IsConst()
	return v, ok
}

// specialize fixes fanin position i of n to value v and removes the fanin.
func specialize(n *netlist.Node, i int, v bool) {
	lit := netlist.LitZero
	if v {
		lit = netlist.LitOne
	}
	var cubes []netlist.Cube
	for _, cube := range n.Cover.Cubes {
		if cube[i] != netlist.LitDC && cube[i] != lit {
			continue // cube cannot fire
		}
		nc := make(netlist.Cube, 0, len(cube)-1)
		nc = append(nc, cube[:i]...)
		nc = append(nc, cube[i+1:]...)
		cubes = append(cubes, nc)
	}
	n.Cover.Cubes = cubes
	n.Fanin = append(n.Fanin[:i], n.Fanin[i+1:]...)
}

// RemoveBuffers redirects uses of buffer nodes to their sources. Inverter
// chains of even length collapse transitively through repeated passes.
// Buffers feeding primary outputs are kept when removing them would merge
// two output names onto one node.
func RemoveBuffers(nl *netlist.Netlist) int {
	removed := 0
	for _, n := range nl.Nodes() {
		if !n.IsBuffer() {
			continue
		}
		src := n.Fanin[0]
		nl.ReplaceUses(n, src)
		if nl.IsOutput(n.Name) {
			continue // keep: the node still names an output signal
		}
		removed++
	}
	nl.Sweep()
	return removed
}

// Eliminate collapses logic nodes with fanout <= maxFanout into their
// consumers when the merged support stays within maxSupport and the merged
// cover does not blow up (the SIS "eliminate" value check: two-level
// collapsing of XOR/parity chains is exponential and must be refused).
// Primary outputs and latch D-drivers keep their nodes.
func Eliminate(nl *netlist.Netlist, maxSupport, maxFanout int) error {
	nl.BuildFanout()
	for _, g := range nl.Nodes() {
		if g.Kind != netlist.KindLogic || len(g.Fanin) == 0 {
			continue
		}
		if nl.IsOutput(g.Name) {
			continue
		}
		fanout := g.Fanout()
		if len(fanout) == 0 || len(fanout) > maxFanout {
			continue
		}
		collapsible := true
		merged := make([]collapsed, 0, len(fanout))
		for _, f := range fanout {
			if f.Kind != netlist.KindLogic {
				collapsible = false
				break
			}
			if supportAfterMerge(f, g) > maxSupport {
				collapsible = false
				break
			}
			m, err := mergedFunction(f, g)
			if err != nil {
				return err
			}
			// Value check: refuse collapses that grow the literal count
			// beyond the two nodes' combined cost.
			if Literals(m.cover) > Literals(f.Cover)+Literals(g.Cover)+2 {
				collapsible = false
				break
			}
			merged = append(merged, m)
		}
		if !collapsible {
			continue
		}
		for i, f := range fanout {
			f.Fanin = merged[i].fanin
			f.Cover = merged[i].cover
			pruneUnusedFanins(f)
		}
		nl.BuildFanout()
	}
	nl.Sweep()
	return nil
}

func supportAfterMerge(f, g *netlist.Node) int {
	set := make(map[*netlist.Node]bool, len(f.Fanin)+len(g.Fanin))
	for _, x := range f.Fanin {
		if x != g {
			set[x] = true
		}
	}
	for _, x := range g.Fanin {
		set[x] = true
	}
	return len(set)
}

// collapsed is a candidate merged node body.
type collapsed struct {
	fanin []*netlist.Node
	cover netlist.Cover
}

// mergedFunction computes the result of substituting g into f without
// mutating either node.
func mergedFunction(f, g *netlist.Node) (collapsed, error) {
	var fanin []*netlist.Node
	pos := make(map[*netlist.Node]int)
	for _, x := range f.Fanin {
		if x == g {
			continue
		}
		if _, seen := pos[x]; !seen {
			pos[x] = len(fanin)
			fanin = append(fanin, x)
		}
	}
	for _, x := range g.Fanin {
		if _, seen := pos[x]; !seen {
			pos[x] = len(fanin)
			fanin = append(fanin, x)
		}
	}
	k := len(fanin)
	if k > qmLimit {
		return collapsed{}, fmt.Errorf("logic: collapse of %s into %s needs %d-input table", g.Name, f.Name, k)
	}
	rows := 1 << uint(k)
	tt := make([]bool, rows)
	fin := make([]bool, len(f.Fanin))
	gin := make([]bool, len(g.Fanin))
	for m := 0; m < rows; m++ {
		val := func(x *netlist.Node) bool { return m&(1<<uint(pos[x])) != 0 }
		for i, x := range g.Fanin {
			gin[i] = val(x)
		}
		gv := netlist.EvalCover(g.Cover, gin)
		for i, x := range f.Fanin {
			if x == g {
				fin[i] = gv
			} else {
				fin[i] = val(x)
			}
		}
		tt[m] = netlist.EvalCover(f.Cover, fin)
	}
	return collapsed{fanin: fanin, cover: MinimizeTruthTable(tt, k)}, nil
}

// collapseInto substitutes g's function into f.
func collapseInto(f, g *netlist.Node) error {
	m, err := mergedFunction(f, g)
	if err != nil {
		return err
	}
	f.Fanin = m.fanin
	f.Cover = m.cover
	pruneUnusedFanins(f)
	return nil
}

// MergeDuplicates performs structural hashing: logic nodes with identical
// fanin lists and canonical covers are merged, keeping the first. Returns
// the number of merged nodes.
func MergeDuplicates(nl *netlist.Netlist) int {
	merged := 0
	for {
		seen := make(map[string]*netlist.Node, nl.NumNodes())
		victim := 0
		for _, n := range nl.Nodes() {
			if n.Kind != netlist.KindLogic {
				continue
			}
			key := hashKey(n)
			if first, dup := seen[key]; dup {
				nl.ReplaceUses(n, first)
				if !nl.IsOutput(n.Name) {
					victim++
				}
				continue
			}
			seen[key] = n
		}
		if victim == 0 {
			break
		}
		merged += nl.Sweep()
	}
	return merged
}

func hashKey(n *netlist.Node) string {
	var sb strings.Builder
	for _, f := range n.Fanin {
		sb.WriteString(f.Name)
		sb.WriteByte(',')
	}
	sb.WriteByte(';')
	sb.WriteString(CanonicalCover(n.Cover))
	return sb.String()
}
