package logic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fpgaflow/internal/netlist"
	"fpgaflow/internal/sim"
)

func ttOf(c netlist.Cover, k int) []bool { return truthTableOfCover(c, k) }

func sameFunction(a, b netlist.Cover, k int) bool {
	ta, tb := ttOf(a, k), ttOf(b, k)
	for i := range ta {
		if ta[i] != tb[i] {
			return false
		}
	}
	return true
}

func TestMinimizeXor(t *testing.T) {
	c := netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("01"), netlist.Cube("10")}, Value: netlist.LitOne}
	m := MinimizeCover(c, 2)
	if len(m.Cubes) != 2 {
		t.Fatalf("XOR minimized to %d cubes", len(m.Cubes))
	}
	if !sameFunction(c, m, 2) {
		t.Fatal("function changed")
	}
}

func TestMinimizeMergesAdjacent(t *testing.T) {
	// f = a (independent of b): minterms 01,11 over (a,b) with a = bit 0.
	c := netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("10"), netlist.Cube("11")}, Value: netlist.LitOne}
	m := MinimizeCover(c, 2)
	if len(m.Cubes) != 1 || m.Cubes[0][0] != netlist.LitOne || m.Cubes[0][1] != netlist.LitDC {
		t.Fatalf("got %v", m.Cubes)
	}
}

func TestMinimizeConstants(t *testing.T) {
	zero := MinimizeCover(netlist.Cover{Value: netlist.LitOne}, 3)
	if len(zero.Cubes) != 0 {
		t.Errorf("const0: %v", zero.Cubes)
	}
	all := netlist.Cover{Value: netlist.LitOne}
	for m := 0; m < 8; m++ {
		cube := make(netlist.Cube, 3)
		for i := 0; i < 3; i++ {
			if m&(1<<i) != 0 {
				cube[i] = netlist.LitOne
			} else {
				cube[i] = netlist.LitZero
			}
		}
		all.Cubes = append(all.Cubes, cube)
	}
	one := MinimizeCover(all, 3)
	if len(one.Cubes) != 1 {
		t.Errorf("const1 cubes: %v", one.Cubes)
	}
	for _, lit := range one.Cubes[0] {
		if lit != netlist.LitDC {
			t.Errorf("const1 cube not all-DC: %v", one.Cubes[0])
		}
	}
}

func TestMinimizeOffsetCover(t *testing.T) {
	// NAND given as off-set.
	c := netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("11")}, Value: netlist.LitZero}
	m := MinimizeCover(c, 2)
	if !m.OnSet() {
		t.Fatal("minimized cover should be on-set")
	}
	if !sameFunction(c, m, 2) {
		t.Fatal("NAND function changed")
	}
}

// TestMinimizePreservesFunction is the core property test: QM + greedy
// selection must be exact on random functions.
func TestMinimizePreservesFunction(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 5} {
		k := k
		f := func(raw uint32) bool {
			rows := 1 << uint(k)
			tt := make([]bool, rows)
			for i := 0; i < rows; i++ {
				tt[i] = raw&(1<<uint(i%32)) != 0
			}
			orig := netlist.CoverFromTruthTable(tt, k)
			m := MinimizeCover(orig, k)
			if !sameFunction(orig, m, k) {
				return false
			}
			// Never more cubes than minterms.
			return len(m.Cubes) <= len(orig.Cubes) || len(orig.Cubes) == 0
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(int64(k)))}); err != nil {
			t.Errorf("k=%d: %v", k, err)
		}
	}
}

func TestReduceWidePreservesFunction(t *testing.T) {
	// 12 inputs forces the wide path; use a sparse random cover.
	rng := rand.New(rand.NewSource(11))
	const k = 12
	var c netlist.Cover
	c.Value = netlist.LitOne
	for i := 0; i < 30; i++ {
		cube := make(netlist.Cube, k)
		for j := range cube {
			switch rng.Intn(3) {
			case 0:
				cube[j] = netlist.LitZero
			case 1:
				cube[j] = netlist.LitOne
			default:
				cube[j] = netlist.LitDC
			}
		}
		c.Cubes = append(c.Cubes, cube)
	}
	m := MinimizeCover(c, k)
	if len(m.Cubes) > len(c.Cubes) {
		t.Fatalf("wide reduction grew cover: %d -> %d", len(c.Cubes), len(m.Cubes))
	}
	in := make([]bool, k)
	for v := 0; v < 2000; v++ {
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		if netlist.EvalCover(c, in) != netlist.EvalCover(m, in) {
			t.Fatalf("wide reduction changed function on %v", in)
		}
	}
}

func TestLiterals(t *testing.T) {
	c := netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("1-0"), netlist.Cube("--1")}, Value: netlist.LitOne}
	if got := Literals(c); got != 3 {
		t.Errorf("Literals = %d, want 3", got)
	}
}

func buildRandomNetlist(t *testing.T, seed int64, nInputs, nNodes int) *netlist.Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nl := netlist.New("rand")
	var pool []*netlist.Node
	for i := 0; i < nInputs; i++ {
		in, err := nl.AddInput(nameOf("i", i))
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, in)
	}
	for i := 0; i < nNodes; i++ {
		k := 1 + rng.Intn(3)
		fanin := make([]*netlist.Node, 0, k)
		seen := map[*netlist.Node]bool{}
		for len(fanin) < k {
			c := pool[rng.Intn(len(pool))]
			if !seen[c] {
				seen[c] = true
				fanin = append(fanin, c)
			}
		}
		rows := 1 << uint(len(fanin))
		tt := make([]bool, rows)
		nonConst := false
		for j := range tt {
			tt[j] = rng.Intn(2) == 1
		}
		for j := 1; j < rows; j++ {
			if tt[j] != tt[0] {
				nonConst = true
			}
		}
		if !nonConst {
			tt[0] = !tt[0]
		}
		n, err := nl.AddLogic(nameOf("n", i), fanin, netlist.CoverFromTruthTable(tt, len(fanin)))
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, n)
	}
	// Mark the last few nodes as outputs.
	for i := 0; i < 4 && i < nNodes; i++ {
		nl.MarkOutput(pool[len(pool)-1-i].Name)
	}
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
	return nl
}

func nameOf(p string, i int) string {
	return p + string(rune('a'+i/26)) + string(rune('a'+i%26))
}

func TestOptimizePreservesFunction(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		nl := buildRandomNetlist(t, seed, 6, 25)
		ref := nl.Clone()
		if err := Optimize(nl, Options{}); err != nil {
			t.Fatalf("seed %d: Optimize: %v", seed, err)
		}
		if err := sim.CheckEquivalent(ref, nl, 8, 500, seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		after := nl.Stats()
		before := ref.Stats()
		if after.Logic > before.Logic {
			t.Errorf("seed %d: optimization grew netlist %d -> %d", seed, before.Logic, after.Logic)
		}
	}
}

func TestPropagateConstants(t *testing.T) {
	nl := netlist.New("k")
	a, _ := nl.AddInput("a")
	one, _ := nl.AddLogic("one", nil, netlist.Cover{Cubes: []netlist.Cube{{}}, Value: netlist.LitOne})
	// out = a AND one -> must become buffer of a after const prop + simplify.
	if _, err := nl.AddLogic("out", []*netlist.Node{a, one},
		netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("11")}, Value: netlist.LitOne}); err != nil {
		t.Fatal(err)
	}
	nl.MarkOutput("out")
	if err := PropagateConstants(nl); err != nil {
		t.Fatal(err)
	}
	out := nl.Node("out")
	if len(out.Fanin) != 1 || out.Fanin[0] != a {
		t.Fatalf("const not propagated: fanin=%v", out.Fanin)
	}
	if !out.IsBuffer() {
		t.Fatalf("expected buffer, cover=%v", out.Cover)
	}
}

func TestRemoveBuffers(t *testing.T) {
	nl := netlist.New("b")
	a, _ := nl.AddInput("a")
	buf, _ := nl.AddLogic("buf", []*netlist.Node{a},
		netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("1")}, Value: netlist.LitOne})
	if _, err := nl.AddLogic("out", []*netlist.Node{buf},
		netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("0")}, Value: netlist.LitOne}); err != nil {
		t.Fatal(err)
	}
	nl.MarkOutput("out")
	if removed := RemoveBuffers(nl); removed != 1 {
		t.Fatalf("removed %d buffers", removed)
	}
	if nl.Node("out").Fanin[0] != a {
		t.Fatal("use not redirected to source")
	}
}

func TestRemoveBuffersKeepsOutputName(t *testing.T) {
	nl := netlist.New("b")
	a, _ := nl.AddInput("a")
	nl.AddLogic("o", []*netlist.Node{a},
		netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("1")}, Value: netlist.LitOne})
	nl.MarkOutput("o")
	RemoveBuffers(nl)
	if nl.Node("o") == nil {
		t.Fatal("output buffer removed, output signal lost")
	}
}

func TestEliminateCollapsesChain(t *testing.T) {
	nl := netlist.New("e")
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	c, _ := nl.AddInput("c")
	and1, _ := nl.AddLogic("and1", []*netlist.Node{a, b},
		netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("11")}, Value: netlist.LitOne})
	nl.AddLogic("out", []*netlist.Node{and1, c},
		netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("11")}, Value: netlist.LitOne})
	nl.MarkOutput("out")
	ref := nl.Clone()
	if err := Eliminate(nl, 10, 3); err != nil {
		t.Fatal(err)
	}
	if nl.Node("and1") != nil {
		t.Fatal("and1 not eliminated")
	}
	if got := len(nl.Node("out").Fanin); got != 3 {
		t.Fatalf("out fanin = %d, want 3", got)
	}
	if err := sim.CheckEquivalent(ref, nl, 8, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestMergeDuplicates(t *testing.T) {
	nl := netlist.New("d")
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	and := netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("11")}, Value: netlist.LitOne}
	x, _ := nl.AddLogic("x", []*netlist.Node{a, b}, and.Clone())
	y, _ := nl.AddLogic("y", []*netlist.Node{a, b}, and.Clone())
	or := netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("1-"), netlist.Cube("-1")}, Value: netlist.LitOne}
	nl.AddLogic("out", []*netlist.Node{x, y}, or)
	nl.MarkOutput("out")
	if merged := MergeDuplicates(nl); merged != 1 {
		t.Fatalf("merged %d, want 1", merged)
	}
	out := nl.Node("out")
	if out.Fanin[0] != out.Fanin[1] {
		t.Fatal("duplicate uses not redirected to one node")
	}
}

func TestDecomposeBoundsFanin(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		nl := buildRandomNetlist(t, 100+seed, 8, 20)
		ref := nl.Clone()
		if err := Decompose(nl); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if got := MaxFanin(nl); got > 2 {
			t.Fatalf("seed %d: max fanin %d after decompose", seed, got)
		}
		if err := sim.CheckEquivalent(ref, nl, 8, 500, seed); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestDecomposeWideNode(t *testing.T) {
	nl := netlist.New("w")
	var fanin []*netlist.Node
	for i := 0; i < 7; i++ {
		in, _ := nl.AddInput(nameOf("i", i))
		fanin = append(fanin, in)
	}
	// 7-input AND with one complemented literal.
	cube := make(netlist.Cube, 7)
	for i := range cube {
		cube[i] = netlist.LitOne
	}
	cube[3] = netlist.LitZero
	nl.AddLogic("out", fanin, netlist.Cover{Cubes: []netlist.Cube{cube}, Value: netlist.LitOne})
	nl.MarkOutput("out")
	ref := nl.Clone()
	if err := Decompose(nl); err != nil {
		t.Fatal(err)
	}
	if MaxFanin(nl) > 2 {
		t.Fatal("fanin not bounded")
	}
	if err := sim.CheckEquivalent(ref, nl, 8, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestCanonicalCoverStable(t *testing.T) {
	c1 := netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("10"), netlist.Cube("01")}, Value: netlist.LitOne}
	c2 := netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("01"), netlist.Cube("10")}, Value: netlist.LitOne}
	if CanonicalCover(c1) != CanonicalCover(c2) {
		t.Fatal("cube order affects canonical form")
	}
	c3 := netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("01"), netlist.Cube("10")}, Value: netlist.LitZero}
	if CanonicalCover(c1) == CanonicalCover(c3) {
		t.Fatal("phase ignored in canonical form")
	}
}
