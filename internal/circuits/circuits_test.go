package circuits

import (
	"testing"

	"fpgaflow/internal/netlist"
	"fpgaflow/internal/sim"
	"fpgaflow/internal/vhdl"
)

func elaborate(t *testing.T, b Benchmark) *netlist.Netlist {
	t.Helper()
	d, err := vhdl.Parse(b.VHDL)
	if err != nil {
		t.Fatalf("%s: parse: %v\n%s", b.Name, err, b.VHDL)
	}
	nl, err := vhdl.Elaborate(d, "")
	if err != nil {
		t.Fatalf("%s: elaborate: %v", b.Name, err)
	}
	return nl
}

func TestAllBenchmarksElaborate(t *testing.T) {
	for _, b := range append(Suite(), SmallSuite()...) {
		nl := elaborate(t, b)
		st := nl.Stats()
		if st.Logic == 0 {
			t.Errorf("%s: no logic", b.Name)
		}
		if b.Sequential != (st.Latches > 0) {
			t.Errorf("%s: sequential=%v but latches=%d", b.Name, b.Sequential, st.Latches)
		}
	}
}

func vecIn(prefix string, v, w int) map[string]bool {
	m := map[string]bool{}
	for j := 0; j < w; j++ {
		m[prefix+"["+itoa(j)+"]"] = v&(1<<j) != 0
	}
	return m
}

func itoa(v int) string {
	if v < 10 {
		return string(rune('0' + v))
	}
	return string(rune('0'+v/10)) + string(rune('0'+v%10))
}

func vecOut(out map[string]bool, prefix string, w int) int {
	v := 0
	for j := 0; j < w; j++ {
		if out[prefix+"["+itoa(j)+"]"] {
			v |= 1 << j
		}
	}
	return v
}

func merge(ms ...map[string]bool) map[string]bool {
	out := map[string]bool{}
	for _, m := range ms {
		for k, v := range m {
			out[k] = v
		}
	}
	return out
}

func TestRippleAdderFunction(t *testing.T) {
	nl := elaborate(t, RippleAdder(4))
	for a := 0; a < 16; a += 3 {
		for b := 0; b < 16; b += 5 {
			for c := 0; c < 2; c++ {
				in := merge(vecIn("a", a, 4), vecIn("b", b, 4))
				in["cin"] = c == 1
				out, err := sim.Eval(nl, in)
				if err != nil {
					t.Fatal(err)
				}
				got := vecOut(out, "s", 4)
				if out["cout"] {
					got |= 16
				}
				if got != a+b+c {
					t.Errorf("%d+%d+%d = %d", a, b, c, got)
				}
			}
		}
	}
}

func TestCarrySelectAdderFunction(t *testing.T) {
	nl := elaborate(t, CarrySelectAdder(8))
	for _, tc := range [][2]int{{0, 0}, {1, 1}, {100, 55}, {200, 100}, {255, 255}, {15, 16}, {127, 129}} {
		in := merge(vecIn("a", tc[0], 8), vecIn("b", tc[1], 8))
		out, err := sim.Eval(nl, in)
		if err != nil {
			t.Fatal(err)
		}
		got := vecOut(out, "s", 8)
		if out["cout"] {
			got |= 256
		}
		if got != tc[0]+tc[1] {
			t.Errorf("%d+%d = %d", tc[0], tc[1], got)
		}
	}
}

func TestArrayMultiplierFunction(t *testing.T) {
	nl := elaborate(t, ArrayMultiplier(4))
	for a := 0; a < 16; a += 3 {
		for b := 0; b < 16; b += 7 {
			in := merge(vecIn("a", a, 4), vecIn("b", b, 4))
			out, err := sim.Eval(nl, in)
			if err != nil {
				t.Fatal(err)
			}
			if got := vecOut(out, "p", 8); got != a*b {
				t.Errorf("%d*%d = %d", a, b, got)
			}
		}
	}
}

func TestALUFunction(t *testing.T) {
	nl := elaborate(t, ALU(4))
	a, b := 12, 5
	cases := map[int]int{
		0: (a + b) & 15, 1: (a - b) & 15, 2: a & b, 3: a | b,
		4: a ^ b, 5: ^a & 15, 6: 0, 7: b,
	}
	for op, want := range cases {
		in := merge(vecIn("a", a, 4), vecIn("b", b, 4), vecIn("op", op, 3))
		out, err := sim.Eval(nl, in)
		if err != nil {
			t.Fatal(err)
		}
		if got := vecOut(out, "y", 4); got != want {
			t.Errorf("op %d: got %d want %d", op, got, want)
		}
		if out["zero"] != (want == 0) {
			t.Errorf("op %d: zero flag %v", op, out["zero"])
		}
	}
}

func TestCounterCounts(t *testing.T) {
	nl := elaborate(t, Counter(4))
	s, err := sim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(map[string]bool{"clk": true, "rst": true, "en": false})
	var last int
	for i := 0; i < 10; i++ {
		out, _ := s.Step(map[string]bool{"clk": true, "rst": false, "en": true})
		last = vecOut(out, "q", 4)
	}
	if last != 9 {
		t.Errorf("count after 10 enabled cycles = %d, want 9", last)
	}
}

func TestLFSRCyclesThroughStates(t *testing.T) {
	nl := elaborate(t, LFSR(4))
	s, err := sim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(map[string]bool{"clk": true, "rst": true})
	seen := map[int]bool{}
	for i := 0; i < 20; i++ {
		out, _ := s.Step(map[string]bool{"clk": true, "rst": false})
		seen[vecOut(out, "q", 4)] = true
	}
	// An XNOR 4-bit LFSR visits 15 states.
	if len(seen) < 8 {
		t.Errorf("LFSR visited only %d states", len(seen))
	}
}

func TestParityTreeFunction(t *testing.T) {
	nl := elaborate(t, ParityTree(8))
	for v := 0; v < 256; v += 17 {
		out, err := sim.Eval(nl, vecIn("d", v, 8))
		if err != nil {
			t.Fatal(err)
		}
		bits := 0
		for j := 0; j < 8; j++ {
			bits += v >> j & 1
		}
		if out["p"] != (bits%2 == 1) {
			t.Errorf("parity(%08b) = %v", v, out["p"])
		}
	}
}

func TestMajorityTreeFunction(t *testing.T) {
	nl := elaborate(t, MajorityTree(5))
	for v := 0; v < 32; v++ {
		out, err := sim.Eval(nl, vecIn("d", v, 5))
		if err != nil {
			t.Fatal(err)
		}
		bits := 0
		for j := 0; j < 5; j++ {
			bits += v >> j & 1
		}
		if out["m"] != (bits >= 3) {
			t.Errorf("maj(%05b) = %v (ones=%d)", v, out["m"], bits)
		}
	}
}

func TestGrayCounterAdjacentStatesDifferByOneBit(t *testing.T) {
	nl := elaborate(t, GrayCounter(4))
	s, err := sim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(map[string]bool{"clk": true, "rst": true})
	prev := -1
	for i := 0; i < 20; i++ {
		out, _ := s.Step(map[string]bool{"clk": true, "rst": false})
		g := vecOut(out, "g", 4)
		if prev >= 0 {
			diff := g ^ prev
			if diff == 0 || diff&(diff-1) != 0 {
				t.Fatalf("gray step %d: %04b -> %04b", i, prev, g)
			}
		}
		prev = g
	}
}

func TestRandomLogicDeterministic(t *testing.T) {
	a := RandomLogic(10, 30, 5)
	b := RandomLogic(10, 30, 5)
	if a.VHDL != b.VHDL {
		t.Fatal("same seed produced different source")
	}
	c := RandomLogic(10, 30, 6)
	if a.VHDL == c.VHDL {
		t.Fatal("different seeds produced identical source")
	}
	elaborate(t, a)
}

func TestCRC8KnownVector(t *testing.T) {
	nl := elaborate(t, CRC8())
	s, err := sim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(map[string]bool{"clk": true, "rst": true, "din": false})
	// Shift in 0x01 MSB-first (8 bits: 0000 0001).
	for i := 7; i >= 0; i-- {
		if _, err := s.Step(map[string]bool{"clk": true, "rst": false, "din": i == 0}); err != nil {
			t.Fatal(err)
		}
	}
	// Step outputs are sampled before the clock edge; read the register
	// state directly for the post-edge value.
	got := 0
	for j := 0; j < 8; j++ {
		if v, ok := s.Value("r[" + itoa(j) + "]"); ok && v {
			got |= 1 << j
		}
	}
	// CRC-8 (x^8+x^2+x+1) of a single 0x01 byte is 0x07.
	if got != 0x07 {
		t.Errorf("crc8(0x01) = %#02x, want 0x07", got)
	}
}

func TestAccumulatorGeneric(t *testing.T) {
	nl := elaborate(t, Accumulator(4))
	s, err := sim.New(nl)
	if err != nil {
		t.Fatal(err)
	}
	s.Step(merge(map[string]bool{"clk": true, "rst": true, "en": false}, vecIn("d", 0, 4)))
	total := 0
	for _, add := range []int{3, 5, 7} {
		if _, err := s.Step(merge(map[string]bool{"clk": true, "rst": false, "en": true}, vecIn("d", add, 4))); err != nil {
			t.Fatal(err)
		}
		total = (total + add) & 15
	}
	got := 0
	for j := 0; j < 4; j++ {
		if v, ok := s.Value("acc[" + itoa(j) + "]"); ok && v {
			got |= 1 << j
		}
	}
	if got != total {
		t.Errorf("accumulated %d, want %d", got, total)
	}
}
