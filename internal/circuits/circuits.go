// Package circuits generates the benchmark designs used by the experiments,
// standing in for the MCNC LGSynth93 suite the paper references: arithmetic
// (ripple and carry-select adders, an array multiplier, an ALU), sequential
// blocks (counters, LFSRs, shift registers, a CRC unit), trees (parity,
// majority) and Rent-rule random logic. Every benchmark is emitted as VHDL
// source so the full front end is exercised.
package circuits

import (
	"fmt"
	"math/rand"
	"strings"
)

// Benchmark is one generated design.
type Benchmark struct {
	Name string
	VHDL string
	// Sequential is true when the design contains registers.
	Sequential bool
}

// Suite returns the default benchmark set used by the flow experiments.
func Suite() []Benchmark {
	return []Benchmark{
		RippleAdder(8),
		CarrySelectAdder(8),
		ArrayMultiplier(4),
		ALU(4),
		Counter(8),
		LFSR(8),
		ShiftRegister(8),
		CRC8(),
		ParityTree(16),
		MajorityTree(9),
		GrayCounter(6),
		Accumulator(6),
		RandomLogic(12, 40, 7),
	}
}

// SmallSuite returns a faster subset for parameter sweeps.
func SmallSuite() []Benchmark {
	return []Benchmark{
		RippleAdder(4),
		ALU(2),
		Counter(4),
		ParityTree(8),
		RandomLogic(8, 20, 3),
	}
}

// RippleAdder generates a w-bit ripple-carry adder with carry out.
func RippleAdder(w int) Benchmark {
	var sb strings.Builder
	name := fmt.Sprintf("radd%d", w)
	fmt.Fprintf(&sb, `library ieee;
use ieee.std_logic_1164.all;
entity %s is
  port (
    a, b : in std_logic_vector(%d downto 0);
    cin  : in std_logic;
    s    : out std_logic_vector(%d downto 0);
    cout : out std_logic
  );
end %s;
architecture rtl of %s is
  signal c : std_logic_vector(%d downto 0);
begin
`, name, w-1, w-1, name, name, w)
	sb.WriteString("  c(0) <= cin;\n")
	for i := 0; i < w; i++ {
		fmt.Fprintf(&sb, "  s(%d) <= a(%d) xor b(%d) xor c(%d);\n", i, i, i, i)
		fmt.Fprintf(&sb, "  c(%d) <= (a(%d) and b(%d)) or (a(%d) and c(%d)) or (b(%d) and c(%d));\n",
			i+1, i, i, i, i, i, i)
	}
	fmt.Fprintf(&sb, "  cout <= c(%d);\nend rtl;\n", w)
	return Benchmark{Name: name, VHDL: sb.String()}
}

// CarrySelectAdder generates a w-bit adder split in two carry-select halves.
func CarrySelectAdder(w int) Benchmark {
	half := w / 2
	var sb strings.Builder
	name := fmt.Sprintf("csadd%d", w)
	fmt.Fprintf(&sb, `library ieee;
use ieee.std_logic_1164.all;
entity %s is
  port (
    a, b : in std_logic_vector(%d downto 0);
    s    : out std_logic_vector(%d downto 0);
    cout : out std_logic
  );
end %s;
architecture rtl of %s is
  signal cl : std_logic_vector(%d downto 0);
  signal s0, s1 : std_logic_vector(%d downto %d);
  signal c0, c1 : std_logic_vector(%d downto %d);
  signal csel : std_logic;
begin
`, name, w-1, w-1, name, name, half, w-1, half, w, half)
	sb.WriteString("  cl(0) <= '0';\n")
	for i := 0; i < half; i++ {
		fmt.Fprintf(&sb, "  s(%d) <= a(%d) xor b(%d) xor cl(%d);\n", i, i, i, i)
		fmt.Fprintf(&sb, "  cl(%d) <= (a(%d) and b(%d)) or (a(%d) and cl(%d)) or (b(%d) and cl(%d));\n",
			i+1, i, i, i, i, i, i)
	}
	fmt.Fprintf(&sb, "  csel <= cl(%d);\n", half)
	// Upper half computed for carry-in 0 and 1, selected by csel.
	fmt.Fprintf(&sb, "  c0(%d) <= '0';\n  c1(%d) <= '1';\n", half, half)
	for i := half; i < w; i++ {
		fmt.Fprintf(&sb, "  s0(%d) <= a(%d) xor b(%d) xor c0(%d);\n", i, i, i, i)
		fmt.Fprintf(&sb, "  c0(%d) <= (a(%d) and b(%d)) or (a(%d) and c0(%d)) or (b(%d) and c0(%d));\n",
			i+1, i, i, i, i, i, i)
		fmt.Fprintf(&sb, "  s1(%d) <= a(%d) xor b(%d) xor c1(%d);\n", i, i, i, i)
		fmt.Fprintf(&sb, "  c1(%d) <= (a(%d) and b(%d)) or (a(%d) and c1(%d)) or (b(%d) and c1(%d));\n",
			i+1, i, i, i, i, i, i)
		fmt.Fprintf(&sb, "  s(%d) <= s1(%d) when csel = '1' else s0(%d);\n", i, i, i)
	}
	fmt.Fprintf(&sb, "  cout <= c1(%d) when csel = '1' else c0(%d);\nend rtl;\n", w, w)
	return Benchmark{Name: name, VHDL: sb.String()}
}

// ArrayMultiplier generates a w x w combinational array multiplier.
func ArrayMultiplier(w int) Benchmark {
	var sb strings.Builder
	name := fmt.Sprintf("mult%d", w)
	fmt.Fprintf(&sb, `library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
entity %s is
  port (
    a, b : in std_logic_vector(%d downto 0);
    p    : out std_logic_vector(%d downto 0)
  );
end %s;
architecture rtl of %s is
`, name, w-1, 2*w-1, name, name)
	// Partial products and row sums.
	for i := 0; i < w; i++ {
		fmt.Fprintf(&sb, "  signal pp%d : std_logic_vector(%d downto 0);\n", i, 2*w-1)
	}
	for i := 1; i < w; i++ {
		fmt.Fprintf(&sb, "  signal acc%d : std_logic_vector(%d downto 0);\n", i, 2*w-1)
	}
	sb.WriteString("begin\n")
	for i := 0; i < w; i++ {
		for j := 0; j < 2*w; j++ {
			if j >= i && j < i+w {
				fmt.Fprintf(&sb, "  pp%d(%d) <= a(%d) and b(%d);\n", i, j, j-i, i)
			} else {
				fmt.Fprintf(&sb, "  pp%d(%d) <= '0';\n", i, j)
			}
		}
	}
	prev := "pp0"
	for i := 1; i < w; i++ {
		fmt.Fprintf(&sb, "  acc%d <= std_logic_vector(unsigned(%s) + unsigned(pp%d));\n", i, prev, i)
		prev = fmt.Sprintf("acc%d", i)
	}
	fmt.Fprintf(&sb, "  p <= %s;\nend rtl;\n", prev)
	return Benchmark{Name: name, VHDL: sb.String()}
}

// ALU generates a w-bit ALU with 8 operations selected by a 3-bit opcode.
func ALU(w int) Benchmark {
	name := fmt.Sprintf("alu%d", w)
	vhdl := fmt.Sprintf(`library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
entity %s is
  port (
    op   : in std_logic_vector(2 downto 0);
    a, b : in std_logic_vector(%d downto 0);
    y    : out std_logic_vector(%d downto 0);
    zero : out std_logic
  );
end %s;
architecture rtl of %s is
  signal r : std_logic_vector(%d downto 0);
  signal zs : std_logic_vector(%d downto 0);
begin
  process (op, a, b)
  begin
    case op is
      when "000" => r <= std_logic_vector(unsigned(a) + unsigned(b));
      when "001" => r <= std_logic_vector(unsigned(a) - unsigned(b));
      when "010" => r <= a and b;
      when "011" => r <= a or b;
      when "100" => r <= a xor b;
      when "101" => r <= not a;
      when "110" => r <= (others => '0');
      when others => r <= b;
    end case;
  end process;
  zs <= (others => '0');
  zero <= '1' when r = zs else '0';
  y <= r;
end rtl;
`, name, w-1, w-1, name, name, w-1, w-1)
	return Benchmark{Name: name, VHDL: vhdl}
}

// Counter generates a w-bit up counter with enable and synchronous reset.
func Counter(w int) Benchmark {
	name := fmt.Sprintf("count%d", w)
	vhdl := fmt.Sprintf(`library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
entity %s is
  port (
    clk, rst, en : in std_logic;
    q : out std_logic_vector(%d downto 0)
  );
end %s;
architecture rtl of %s is
  signal cnt : std_logic_vector(%d downto 0);
begin
  process (clk)
  begin
    if rst = '1' then
      cnt <= (others => '0');
    elsif rising_edge(clk) then
      if en = '1' then
        cnt <= std_logic_vector(unsigned(cnt) + 1);
      end if;
    end if;
  end process;
  q <= cnt;
end rtl;
`, name, w-1, name, name, w-1)
	return Benchmark{Name: name, VHDL: vhdl, Sequential: true}
}

// LFSR generates a Fibonacci LFSR with taps at the two top bits.
func LFSR(w int) Benchmark {
	name := fmt.Sprintf("lfsr%d", w)
	var sb strings.Builder
	fmt.Fprintf(&sb, `library ieee;
use ieee.std_logic_1164.all;
entity %s is
  port (
    clk, rst : in std_logic;
    q : out std_logic_vector(%d downto 0)
  );
end %s;
architecture rtl of %s is
  signal r : std_logic_vector(%d downto 0);
  signal fb : std_logic;
begin
  fb <= r(%d) xnor r(%d);
  process (clk)
  begin
    if rst = '1' then
      r <= (others => '0');
    elsif rising_edge(clk) then
      r <= r(%d downto 0) & fb;
    end if;
  end process;
  q <= r;
end rtl;
`, name, w-1, name, name, w-1, w-1, w-2, w-2)
	return Benchmark{Name: name, VHDL: sb.String(), Sequential: true}
}

// ShiftRegister generates a serial-in parallel-out shift register.
func ShiftRegister(w int) Benchmark {
	name := fmt.Sprintf("shift%d", w)
	vhdl := fmt.Sprintf(`library ieee;
use ieee.std_logic_1164.all;
entity %s is
  port (
    clk, din : in std_logic;
    q : out std_logic_vector(%d downto 0)
  );
end %s;
architecture rtl of %s is
  signal r : std_logic_vector(%d downto 0);
begin
  process (clk)
  begin
    if rising_edge(clk) then
      r <= r(%d downto 0) & din;
    end if;
  end process;
  q <= r;
end rtl;
`, name, w-1, name, name, w-1, w-2)
	return Benchmark{Name: name, VHDL: vhdl, Sequential: true}
}

// CRC8 generates a serial CRC-8 (polynomial x^8+x^2+x+1) unit.
func CRC8() Benchmark {
	vhdl := `library ieee;
use ieee.std_logic_1164.all;
entity crc8 is
  port (
    clk, rst, din : in std_logic;
    crc : out std_logic_vector(7 downto 0)
  );
end crc8;
architecture rtl of crc8 is
  signal r : std_logic_vector(7 downto 0);
  signal fb : std_logic;
begin
  fb <= r(7) xor din;
  process (clk)
  begin
    if rst = '1' then
      r <= (others => '0');
    elsif rising_edge(clk) then
      r(0) <= fb;
      r(1) <= r(0) xor fb;
      r(2) <= r(1) xor fb;
      r(3) <= r(2);
      r(4) <= r(3);
      r(5) <= r(4);
      r(6) <= r(5);
      r(7) <= r(6);
    end if;
  end process;
  crc <= r;
end rtl;
`
	return Benchmark{Name: "crc8", VHDL: vhdl, Sequential: true}
}

// ParityTree generates a w-input parity function.
func ParityTree(w int) Benchmark {
	name := fmt.Sprintf("parity%d", w)
	var sb strings.Builder
	fmt.Fprintf(&sb, `library ieee;
use ieee.std_logic_1164.all;
entity %s is
  port (
    d : in std_logic_vector(%d downto 0);
    p : out std_logic
  );
end %s;
architecture rtl of %s is
begin
  p <= `, name, w-1, name, name)
	for i := 0; i < w; i++ {
		if i > 0 {
			sb.WriteString(" xor ")
		}
		fmt.Fprintf(&sb, "d(%d)", i)
	}
	sb.WriteString(";\nend rtl;\n")
	return Benchmark{Name: name, VHDL: sb.String()}
}

// MajorityTree generates a w-input majority function via popcount compare.
func MajorityTree(w int) Benchmark {
	name := fmt.Sprintf("maj%d", w)
	var sb strings.Builder
	bits := 1
	for 1<<bits <= w {
		bits++
	}
	fmt.Fprintf(&sb, `library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
entity %s is
  port (
    d : in std_logic_vector(%d downto 0);
    m : out std_logic
  );
end %s;
architecture rtl of %s is
`, name, w-1, name, name)
	for i := 0; i < w; i++ {
		fmt.Fprintf(&sb, "  signal e%d : std_logic_vector(%d downto 0);\n", i, bits-1)
	}
	for i := 1; i < w; i++ {
		fmt.Fprintf(&sb, "  signal sum%d : std_logic_vector(%d downto 0);\n", i, bits-1)
	}
	sb.WriteString("begin\n")
	for i := 0; i < w; i++ {
		fmt.Fprintf(&sb, "  e%d(0) <= d(%d);\n", i, i)
		for j := 1; j < bits; j++ {
			fmt.Fprintf(&sb, "  e%d(%d) <= '0';\n", i, j)
		}
	}
	prev := "e0"
	for i := 1; i < w; i++ {
		fmt.Fprintf(&sb, "  sum%d <= std_logic_vector(unsigned(%s) + unsigned(e%d));\n", i, prev, i)
		prev = fmt.Sprintf("sum%d", i)
	}
	fmt.Fprintf(&sb, "  m <= '1' when unsigned(%s) > to_unsigned(%d, %d) else '0';\nend rtl;\n",
		prev, w/2, bits)
	return Benchmark{Name: name, VHDL: sb.String()}
}

// GrayCounter generates a w-bit Gray-code counter.
func GrayCounter(w int) Benchmark {
	name := fmt.Sprintf("gray%d", w)
	var sb strings.Builder
	fmt.Fprintf(&sb, `library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
entity %s is
  port (
    clk, rst : in std_logic;
    g : out std_logic_vector(%d downto 0)
  );
end %s;
architecture rtl of %s is
  signal bin : std_logic_vector(%d downto 0);
begin
  process (clk)
  begin
    if rst = '1' then
      bin <= (others => '0');
    elsif rising_edge(clk) then
      bin <= std_logic_vector(unsigned(bin) + 1);
    end if;
  end process;
  g(%d) <= bin(%d);
`, name, w-1, name, name, w-1, w-1, w-1)
	for i := 0; i < w-1; i++ {
		fmt.Fprintf(&sb, "  g(%d) <= bin(%d) xor bin(%d);\n", i, i+1, i)
	}
	sb.WriteString("end rtl;\n")
	return Benchmark{Name: name, VHDL: sb.String(), Sequential: true}
}

// RandomLogic generates a reproducible random combinational network with a
// Rent-like structure: later gates prefer recent signals as inputs.
func RandomLogic(nIn, nGates int, seed int64) Benchmark {
	rng := rand.New(rand.NewSource(seed))
	name := fmt.Sprintf("rand%d_%d", nIn, nGates)
	var sb strings.Builder
	fmt.Fprintf(&sb, `library ieee;
use ieee.std_logic_1164.all;
entity %s is
  port (
    x : in std_logic_vector(%d downto 0);
    y : out std_logic_vector(3 downto 0)
  );
end %s;
architecture rtl of %s is
`, name, nIn-1, name, name)
	for i := 0; i < nGates; i++ {
		fmt.Fprintf(&sb, "  signal g%d : std_logic;\n", i)
	}
	sb.WriteString("begin\n")
	ops := []string{"and", "or", "xor", "nand", "nor", "xnor"}
	pick := func(i int) string {
		// Rent-like locality: prefer recent gates over primary inputs.
		pool := nIn + i
		r := pool - 1 - rng.Intn(min(pool, nIn/2+8))
		if r < nIn {
			return fmt.Sprintf("x(%d)", r)
		}
		return fmt.Sprintf("g%d", r-nIn)
	}
	for i := 0; i < nGates; i++ {
		op := ops[rng.Intn(len(ops))]
		a, b := pick(i), pick(i)
		for b == a {
			b = pick(i)
		}
		if rng.Intn(5) == 0 {
			fmt.Fprintf(&sb, "  g%d <= not (%s %s %s);\n", i, a, op, b)
		} else {
			fmt.Fprintf(&sb, "  g%d <= %s %s %s;\n", i, a, op, b)
		}
	}
	for j := 0; j < 4; j++ {
		fmt.Fprintf(&sb, "  y(%d) <= g%d;\n", j, nGates-1-j)
	}
	sb.WriteString("end rtl;\n")
	return Benchmark{Name: name, VHDL: sb.String()}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Accumulator generates a generic-width accumulating register (exercises
// VHDL generics through the whole flow).
func Accumulator(w int) Benchmark {
	name := fmt.Sprintf("accum%d", w)
	vhdl := fmt.Sprintf(`library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;
entity %s is
  generic (width : integer := %d);
  port (
    clk, rst, en : in std_logic;
    d   : in std_logic_vector(width - 1 downto 0);
    sum : out std_logic_vector(width - 1 downto 0)
  );
end %s;
architecture rtl of %s is
  signal acc : std_logic_vector(width - 1 downto 0);
begin
  process (clk)
  begin
    if rst = '1' then
      acc <= (others => '0');
    elsif rising_edge(clk) then
      if en = '1' then
        acc <= std_logic_vector(unsigned(acc) + unsigned(d));
      end if;
    end if;
  end process;
  sum <= acc;
end rtl;
`, name, w, name, name)
	return Benchmark{Name: name, VHDL: vhdl, Sequential: true}
}
