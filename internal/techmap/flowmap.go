// Package techmap maps a fanin-bounded logic network onto K-input LUTs.
// The primary mapper is FlowMap (Cong & Ding, 1994): depth-optimal K-LUT
// covering via max-flow K-feasible cut computation. A greedy
// maximum-fanout-free-cone mapper is provided as the area-oriented baseline.
// This is the "SIS LUT mapping" stage of the paper's flow.
package techmap

import (
	"fmt"
	"sort"

	"fpgaflow/internal/logic"
	"fpgaflow/internal/netlist"
)

// Result describes a mapping.
type Result struct {
	Netlist *netlist.Netlist
	// Depth is the maximum LUT depth of the mapped network.
	Depth int
	// LUTs is the number of LUTs created.
	LUTs int
}

// FlowMap maps nl onto K-input LUTs with optimal depth. The input network's
// logic nodes must have fanin <= K (run logic.Decompose first for K >= 2).
func FlowMap(nl *netlist.Netlist, k int) (*Result, error) {
	if k < 2 {
		return nil, fmt.Errorf("techmap: K must be >= 2, got %d", k)
	}
	if mf := logic.MaxFanin(nl); mf > k {
		return nil, fmt.Errorf("techmap: network has %d-input node, exceeds K=%d; decompose first", mf, k)
	}
	topo, err := nl.TopoSort()
	if err != nil {
		return nil, err
	}

	label := make(map[*netlist.Node]int, nl.NumNodes())
	cut := make(map[*netlist.Node][]*netlist.Node, nl.NumNodes())
	for _, n := range topo {
		if n.Kind != netlist.KindLogic {
			label[n] = 0
			continue
		}
		if len(n.Fanin) == 0 { // constant: a zero-input LUT at depth 0
			label[n] = 0
			cut[n] = nil
			continue
		}
		p := 0
		for _, f := range n.Fanin {
			if label[f] > p {
				p = label[f]
			}
		}
		cone := collectCone(n)
		label[n] = p // tentative: t always joins the sink cluster
		cutNodes, feasible := kFeasibleCut(n, cone, label, p, k)
		if feasible {
			label[n] = p
			cut[n] = cutNodes
		} else {
			label[n] = p + 1
			cut[n] = append([]*netlist.Node(nil), n.Fanin...)
		}
	}
	return buildMapped(nl, k, cut, label)
}

// collectCone returns the combinational transitive fanin of t including t.
// Inputs and latches are not cone members (they are cut candidates).
func collectCone(t *netlist.Node) map[*netlist.Node]bool {
	cone := make(map[*netlist.Node]bool)
	var walk func(n *netlist.Node)
	walk = func(n *netlist.Node) {
		if cone[n] || n.Kind != netlist.KindLogic {
			return
		}
		cone[n] = true
		for _, f := range n.Fanin {
			walk(f)
		}
	}
	walk(t)
	return cone
}

// kFeasibleCut tests whether cone(t) has a K-feasible cut of height p-1 and
// returns the cut node set (the LUT inputs) if so. Following FlowMap, nodes
// in the cone with label == p are collapsed into the sink; unit node
// capacities make max-flow <= K equivalent to a K-feasible node cut.
func kFeasibleCut(t *netlist.Node, cone map[*netlist.Node]bool, label map[*netlist.Node]int, p, k int) ([]*netlist.Node, bool) {
	// Flow network: source -> each cone input (node outside cone feeding a
	// cone node); internal cone nodes (label < p) split in/out with cap 1;
	// nodes with label == p merge into the sink.
	type arc struct {
		to  int
		cap int
		rev int // index of reverse arc in adj[to]
	}
	var adj [][]arc
	addNode := func() int {
		adj = append(adj, nil)
		return len(adj) - 1
	}
	addArc := func(u, v, c int) {
		adj[u] = append(adj[u], arc{to: v, cap: c, rev: len(adj[v])})
		adj[v] = append(adj[v], arc{to: u, cap: 0, rev: len(adj[u]) - 1})
	}
	// A cone input already at height p (e.g. a primary input when p == 0)
	// would have to sit on the sink side of any height-(p-1) cut, which is
	// impossible: no such cut exists.
	for n := range cone {
		for _, f := range n.Fanin {
			if label[f] == p && !cone[f] {
				return nil, false
			}
		}
	}

	src := addNode()
	sink := addNode()

	inV := make(map[*netlist.Node]int)  // entry vertex of a cut-candidate node
	outV := make(map[*netlist.Node]int) // exit vertex
	vertexOf := func(n *netlist.Node, out bool) int {
		if label[n] == p {
			// Nodes at the current height can never be cut nodes: a cut
			// through them would give height p, not p-1. They merge into
			// the sink (cone inputs at height p make the cut infeasible).
			return sink
		}
		if out {
			if v, ok := outV[n]; ok {
				return v
			}
		} else {
			if v, ok := inV[n]; ok {
				return v
			}
		}
		vin, vout := addNode(), addNode()
		inV[n], outV[n] = vin, vout
		addArc(vin, vout, 1)
		if !cone[n] { // cone input: unlimited supply from source
			addArc(src, vin, k+1)
		}
		if out {
			return vout
		}
		return vin
	}
	for n := range cone {
		if label[n] == p {
			// Collapsed into sink; its fanins feed the sink directly.
			for _, f := range n.Fanin {
				if label[f] == p {
					continue
				}
				addArc(vertexOf(f, true), sink, k+1)
			}
			continue
		}
		nv := vertexOf(n, false)
		for _, f := range n.Fanin {
			// Labels are monotone along edges, so a fanin at height p of a
			// node below p cannot occur; guard anyway.
			if label[f] == p {
				continue
			}
			addArc(vertexOf(f, true), nv, k+1)
		}
	}
	_ = t

	// BFS max-flow, stop once flow exceeds k.
	flow := 0
	for flow <= k {
		parent := make([]int, len(adj))
		parentArc := make([]int, len(adj))
		for i := range parent {
			parent[i] = -1
		}
		parent[src] = src
		queue := []int{src}
		for len(queue) > 0 && parent[sink] < 0 {
			u := queue[0]
			queue = queue[1:]
			for ai, a := range adj[u] {
				if a.cap > 0 && parent[a.to] < 0 {
					parent[a.to] = u
					parentArc[a.to] = ai
					queue = append(queue, a.to)
				}
			}
		}
		if parent[sink] < 0 {
			break
		}
		// Unit augmentation (all bottleneck capacities along node-splitting
		// arcs are 1; source/sink arcs are wide).
		v := sink
		for v != src {
			u := parent[v]
			a := &adj[u][parentArc[v]]
			a.cap--
			adj[v][a.rev].cap++
			v = u
		}
		flow++
	}
	if flow > k {
		return nil, false
	}
	// Min cut: nodes whose in-vertex is reachable from src in the residual
	// graph but out-vertex is not.
	reach := make([]bool, len(adj))
	reach[src] = true
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, a := range adj[u] {
			if a.cap > 0 && !reach[a.to] {
				reach[a.to] = true
				queue = append(queue, a.to)
			}
		}
	}
	var cutNodes []*netlist.Node
	for n, vin := range inV {
		if reach[vin] && !reach[outV[n]] {
			cutNodes = append(cutNodes, n)
		}
	}
	sort.Slice(cutNodes, func(i, j int) bool { return cutNodes[i].Name < cutNodes[j].Name })
	if len(cutNodes) > k {
		// Defensive: should not happen when flow <= k.
		return nil, false
	}
	return cutNodes, true
}

// buildMapped constructs the LUT netlist from the chosen cuts.
func buildMapped(nl *netlist.Netlist, k int, cut map[*netlist.Node][]*netlist.Node, label map[*netlist.Node]int) (*Result, error) {
	out := netlist.New(nl.Name)
	made := make(map[*netlist.Node]*netlist.Node, nl.NumNodes())

	for _, in := range nl.Inputs {
		n, err := out.AddInput(in.Name)
		if err != nil {
			return nil, err
		}
		made[in] = n
	}
	// Latches first (as placeholders) so feedback resolves; D fanin fixed later.
	for _, n := range nl.Nodes() {
		if n.Kind == netlist.KindLatch {
			q, err := out.AddLatch(n.Name, nil, n.Init, n.Clock)
			if err != nil {
				return nil, err
			}
			q.Fanin = nil
			made[n] = q
		}
	}

	var emit func(n *netlist.Node) (*netlist.Node, error)
	emit = func(n *netlist.Node) (*netlist.Node, error) {
		if m, ok := made[n]; ok {
			return m, nil
		}
		if n.Kind != netlist.KindLogic {
			return nil, fmt.Errorf("techmap: unexpected %s node %q during emission", n.Kind, n.Name)
		}
		inputs := cut[n]
		mappedIn := make([]*netlist.Node, len(inputs))
		for i, f := range inputs {
			m, err := emit(f)
			if err != nil {
				return nil, err
			}
			mappedIn[i] = m
		}
		tt, err := coneTruthTable(n, inputs)
		if err != nil {
			return nil, err
		}
		cover := logic.MinimizeTruthTable(tt, len(inputs))
		lut, err := out.AddLogic(n.Name, mappedIn, cover)
		if err != nil {
			return nil, err
		}
		made[n] = lut
		return lut, nil
	}

	// Required roots: primary outputs and latch D inputs.
	for _, o := range nl.Outputs {
		n := nl.Node(o)
		if n == nil {
			return nil, fmt.Errorf("techmap: output %q missing", o)
		}
		if _, err := emit(n); err != nil {
			return nil, err
		}
		out.MarkOutput(o)
	}
	for _, n := range nl.Nodes() {
		if n.Kind != netlist.KindLatch {
			continue
		}
		d, err := emit(n.Fanin[0])
		if err != nil {
			return nil, err
		}
		made[n].Fanin = []*netlist.Node{d}
	}
	out.Sweep()
	// Area recovery: overlapping cuts duplicate cone logic; structurally
	// identical LUTs merge back into one.
	logic.MergeDuplicates(out)
	if err := out.Check(); err != nil {
		return nil, err
	}
	st := out.Stats()
	return &Result{Netlist: out, Depth: st.Depth, LUTs: st.Logic}, nil
}

// coneTruthTable evaluates the function of node t over the given cut inputs
// by simulating the cone for every input assignment.
func coneTruthTable(t *netlist.Node, inputs []*netlist.Node) ([]bool, error) {
	k := len(inputs)
	if k > 16 {
		return nil, fmt.Errorf("techmap: cut of %d inputs too wide", k)
	}
	isInput := make(map[*netlist.Node]int, k)
	for i, in := range inputs {
		isInput[in] = i
	}
	rows := 1 << uint(k)
	tt := make([]bool, rows)
	val := make(map[*netlist.Node]bool)
	var eval func(n *netlist.Node) (bool, error)
	eval = func(n *netlist.Node) (bool, error) {
		if v, ok := val[n]; ok {
			return v, nil
		}
		if n.Kind != netlist.KindLogic {
			return false, fmt.Errorf("techmap: cone of %q escapes cut at %q", t.Name, n.Name)
		}
		in := make([]bool, len(n.Fanin))
		for i, f := range n.Fanin {
			v, err := eval(f)
			if err != nil {
				return false, err
			}
			in[i] = v
		}
		v := netlist.EvalCover(n.Cover, in)
		val[n] = v
		return v, nil
	}
	for m := 0; m < rows; m++ {
		for n := range val {
			delete(val, n)
		}
		for i, in := range inputs {
			val[in] = m&(1<<uint(i)) != 0
		}
		v, err := eval(t)
		if err != nil {
			return nil, err
		}
		tt[m] = v
	}
	return tt, nil
}
