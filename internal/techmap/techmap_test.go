package techmap

import (
	"math/rand"
	"testing"

	"fpgaflow/internal/logic"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/sim"
)

func and2() netlist.Cover {
	return netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("11")}, Value: netlist.LitOne}
}
func or2() netlist.Cover {
	return netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("1-"), netlist.Cube("-1")}, Value: netlist.LitOne}
}
func xor2() netlist.Cover {
	return netlist.Cover{Cubes: []netlist.Cube{netlist.Cube("10"), netlist.Cube("01")}, Value: netlist.LitOne}
}

// buildChain makes a linear chain of n 2-input gates over two rotating inputs.
func buildChain(t *testing.T, n int) *netlist.Netlist {
	t.Helper()
	nl := netlist.New("chain")
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	cur := a
	covers := []func() netlist.Cover{and2, or2, xor2}
	for i := 0; i < n; i++ {
		g, err := nl.AddLogic(gname(i), []*netlist.Node{cur, b}, covers[i%3]())
		if err != nil {
			t.Fatal(err)
		}
		cur = g
	}
	nl.MarkOutput(cur.Name)
	return nl
}

func gname(i int) string { return "g" + string(rune('a'+i/26)) + string(rune('a'+i%26)) }

func buildRandom2Bounded(t *testing.T, seed int64, nIn, nGates int) *netlist.Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	nl := netlist.New("r2")
	var pool []*netlist.Node
	for i := 0; i < nIn; i++ {
		in, _ := nl.AddInput("i" + gname(i))
		pool = append(pool, in)
	}
	covers := []func() netlist.Cover{and2, or2, xor2}
	for i := 0; i < nGates; i++ {
		x := pool[rng.Intn(len(pool))]
		y := pool[rng.Intn(len(pool))]
		for y == x {
			y = pool[rng.Intn(len(pool))]
		}
		g, err := nl.AddLogic(gname(i), []*netlist.Node{x, y}, covers[rng.Intn(3)]())
		if err != nil {
			t.Fatal(err)
		}
		pool = append(pool, g)
	}
	for i := 0; i < 3; i++ {
		nl.MarkOutput(pool[len(pool)-1-i].Name)
	}
	return nl
}

func checkMapped(t *testing.T, ref *netlist.Netlist, res *Result, k int, seed int64) {
	t.Helper()
	for _, n := range res.Netlist.Nodes() {
		if n.Kind == netlist.KindLogic && len(n.Fanin) > k {
			t.Fatalf("LUT %q has %d inputs > K=%d", n.Name, len(n.Fanin), k)
		}
	}
	if err := sim.CheckEquivalent(ref, res.Netlist, 10, 500, seed); err != nil {
		t.Fatalf("mapping changed function: %v", err)
	}
}

func TestFlowMapChainDepth(t *testing.T) {
	// A 9-gate chain over 2 live signals: each 4-LUT can absorb several
	// levels; depth must shrink well below 9 and function must hold.
	nl := buildChain(t, 9)
	ref := nl.Clone()
	res, err := FlowMap(nl, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkMapped(t, ref, res, 4, 1)
	if res.Depth >= 9 {
		t.Errorf("FlowMap did not reduce depth: %d", res.Depth)
	}
	if res.Depth > 4 {
		t.Errorf("chain depth %d too deep for K=4", res.Depth)
	}
}

func TestFlowMapSingleGate(t *testing.T) {
	nl := netlist.New("g")
	a, _ := nl.AddInput("a")
	b, _ := nl.AddInput("b")
	nl.AddLogic("o", []*netlist.Node{a, b}, xor2())
	nl.MarkOutput("o")
	ref := nl.Clone()
	res, err := FlowMap(nl, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.LUTs != 1 || res.Depth != 1 {
		t.Errorf("LUTs=%d depth=%d, want 1/1", res.LUTs, res.Depth)
	}
	checkMapped(t, ref, res, 4, 2)
}

func TestFlowMapRejectsWideNodes(t *testing.T) {
	nl := netlist.New("w")
	var fanin []*netlist.Node
	for i := 0; i < 6; i++ {
		in, _ := nl.AddInput("i" + gname(i))
		fanin = append(fanin, in)
	}
	cube := make(netlist.Cube, 6)
	for i := range cube {
		cube[i] = netlist.LitOne
	}
	nl.AddLogic("o", fanin, netlist.Cover{Cubes: []netlist.Cube{cube}, Value: netlist.LitOne})
	nl.MarkOutput("o")
	if _, err := FlowMap(nl, 4); err == nil {
		t.Fatal("6-input node accepted at K=4")
	}
}

func TestFlowMapRandomEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		for _, k := range []int{3, 4, 5} {
			nl := buildRandom2Bounded(t, seed, 6, 40)
			ref := nl.Clone()
			res, err := FlowMap(nl, k)
			if err != nil {
				t.Fatalf("seed %d K=%d: %v", seed, k, err)
			}
			checkMapped(t, ref, res, k, seed)
		}
	}
}

func TestFlowMapSequential(t *testing.T) {
	// 3-bit LFSR: x0 <- x2, x1 <- x0 xor x2, x2 <- x1.
	nl := netlist.New("lfsr")
	q0, _ := nl.AddLatch("q0", nil, '1', "clk")
	q1, _ := nl.AddLatch("q1", nil, '0', "clk")
	q2, _ := nl.AddLatch("q2", nil, '0', "clk")
	x, _ := nl.AddLogic("x", []*netlist.Node{q0, q2}, xor2())
	q0.Fanin = []*netlist.Node{q2}
	q1.Fanin = []*netlist.Node{x}
	q2.Fanin = []*netlist.Node{q1}
	nl.MarkOutput("q2")
	if err := nl.Check(); err != nil {
		t.Fatal(err)
	}
	ref := nl.Clone()
	res, err := FlowMap(nl, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Netlist.Stats()
	if st.Latches != 3 {
		t.Fatalf("latches = %d, want 3", st.Latches)
	}
	if err := sim.CheckEquivalent(ref, res.Netlist, 10, 100, 3); err != nil {
		t.Fatal(err)
	}
}

func TestFlowMapDepthOptimalVsGreedy(t *testing.T) {
	// FlowMap is depth-optimal: on every random instance its depth must be
	// <= the greedy mapper's depth.
	for seed := int64(10); seed < 16; seed++ {
		nl := buildRandom2Bounded(t, seed, 8, 60)
		fm, err := FlowMap(nl.Clone(), 4)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := MapGreedy(nl.Clone(), 4)
		if err != nil {
			t.Fatal(err)
		}
		if fm.Depth > gr.Depth {
			t.Errorf("seed %d: FlowMap depth %d > greedy depth %d", seed, fm.Depth, gr.Depth)
		}
	}
}

func TestMapGreedyEquivalence(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		nl := buildRandom2Bounded(t, seed, 6, 40)
		ref := nl.Clone()
		res, err := MapGreedy(nl, 4)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		checkMapped(t, ref, res, 4, seed)
	}
}

func TestMapConstantNode(t *testing.T) {
	nl := netlist.New("k")
	a, _ := nl.AddInput("a")
	one, _ := nl.AddLogic("one", nil, netlist.Cover{Cubes: []netlist.Cube{{}}, Value: netlist.LitOne})
	nl.AddLogic("o", []*netlist.Node{a, one}, and2())
	nl.MarkOutput("o")
	ref := nl.Clone()
	res, err := FlowMap(nl, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkMapped(t, ref, res, 4, 4)
}

func TestFlowMapAfterDecompose(t *testing.T) {
	// Full pre-mapping pipeline on a wide-node netlist.
	nl := netlist.New("wide")
	var fanin []*netlist.Node
	for i := 0; i < 9; i++ {
		in, _ := nl.AddInput("i" + gname(i))
		fanin = append(fanin, in)
	}
	// Majority-ish: at least positions 0,1 or 3,4,5 or 6,7,8 set.
	nl.AddLogic("o", fanin, netlist.Cover{Cubes: []netlist.Cube{
		netlist.Cube("11-------"),
		netlist.Cube("---111---"),
		netlist.Cube("------111"),
	}, Value: netlist.LitOne})
	nl.MarkOutput("o")
	ref := nl.Clone()
	if err := logic.Decompose(nl); err != nil {
		t.Fatal(err)
	}
	res, err := FlowMap(nl, 4)
	if err != nil {
		t.Fatal(err)
	}
	checkMapped(t, ref, res, 4, 5)
	if res.Depth > 3 {
		t.Errorf("depth %d for 9-input 3-cube SOP at K=4", res.Depth)
	}
}

func TestFlowMapOutputIsInput(t *testing.T) {
	// An output directly driven by an input needs no LUT.
	nl := netlist.New("pass")
	nl.AddInput("a")
	nl.MarkOutput("a")
	res, err := FlowMap(nl, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.LUTs != 0 {
		t.Errorf("LUTs = %d for wire-through", res.LUTs)
	}
}
