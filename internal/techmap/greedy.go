package techmap

import (
	"fmt"

	"fpgaflow/internal/logic"
	"fpgaflow/internal/netlist"
)

// MapGreedy is the area-oriented baseline mapper: it grows a cone for each
// required root by repeatedly absorbing the fanin whose absorption keeps the
// cut within K inputs, preferring fanins that are not shared with other
// cones (maximum-fanout-free-cone flavoured). Depth is not optimized.
func MapGreedy(nl *netlist.Netlist, k int) (*Result, error) {
	if k < 2 {
		return nil, fmt.Errorf("techmap: K must be >= 2, got %d", k)
	}
	if mf := logic.MaxFanin(nl); mf > k {
		return nil, fmt.Errorf("techmap: network has %d-input node, exceeds K=%d; decompose first", mf, k)
	}
	if _, err := nl.TopoSort(); err != nil {
		return nil, err
	}
	nl.BuildFanout()

	// required marks nodes that must become LUT roots.
	required := make(map[*netlist.Node]bool)
	var queue []*netlist.Node
	addRoot := func(n *netlist.Node) {
		if n.Kind == netlist.KindLogic && !required[n] {
			required[n] = true
			queue = append(queue, n)
		}
	}
	for _, o := range nl.Outputs {
		addRoot(nl.Node(o))
	}
	for _, n := range nl.Nodes() {
		if n.Kind == netlist.KindLatch {
			addRoot(n.Fanin[0])
		}
	}

	cut := make(map[*netlist.Node][]*netlist.Node)
	for len(queue) > 0 {
		root := queue[0]
		queue = queue[1:]
		inCone := map[*netlist.Node]bool{root: root.Kind == netlist.KindLogic}
		cutSet := make(map[*netlist.Node]bool)
		for _, f := range root.Fanin {
			cutSet[f] = true
		}
		// Greedily absorb cut nodes while the cut stays K-feasible.
		for {
			var best *netlist.Node
			bestDelta := 1 << 30
			for c := range cutSet {
				if c.Kind != netlist.KindLogic || len(c.Fanin) == 0 {
					continue
				}
				// Absorbing a node whose fanout escapes the cone duplicates
				// logic; allow it only when it frees cut capacity anyway.
				delta := -1 // removing c from the cut
				for _, f := range c.Fanin {
					if !cutSet[f] && !inCone[f] {
						delta++
					}
				}
				shared := false
				for _, fo := range c.Fanout() {
					if !inCone[fo] {
						shared = true
						break
					}
				}
				if shared {
					delta += 1 // bias against duplication
				}
				if len(cutSet)+delta <= k && delta < bestDelta {
					best, bestDelta = c, delta
				}
			}
			if best == nil {
				break
			}
			delete(cutSet, best)
			inCone[best] = true
			for _, f := range best.Fanin {
				if !inCone[f] {
					cutSet[f] = true
				}
			}
			if len(cutSet) > k {
				// Revert is messy; stop absorbing (can only happen with
				// delta bias; guard defensively).
				break
			}
		}
		inputs := make([]*netlist.Node, 0, len(cutSet))
		for c := range cutSet {
			inputs = append(inputs, c)
		}
		sortByName(inputs)
		cut[root] = inputs
		for _, in := range inputs {
			addRoot(in)
		}
	}
	return buildGreedy(nl, cut)
}

func sortByName(nodes []*netlist.Node) {
	for i := 1; i < len(nodes); i++ {
		for j := i; j > 0 && nodes[j].Name < nodes[j-1].Name; j-- {
			nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
		}
	}
}

func buildGreedy(nl *netlist.Netlist, cut map[*netlist.Node][]*netlist.Node) (*Result, error) {
	out := netlist.New(nl.Name)
	made := make(map[*netlist.Node]*netlist.Node, nl.NumNodes())
	for _, in := range nl.Inputs {
		n, err := out.AddInput(in.Name)
		if err != nil {
			return nil, err
		}
		made[in] = n
	}
	for _, n := range nl.Nodes() {
		if n.Kind == netlist.KindLatch {
			q, err := out.AddLatch(n.Name, nil, n.Init, n.Clock)
			if err != nil {
				return nil, err
			}
			q.Fanin = nil
			made[n] = q
		}
	}
	var emit func(n *netlist.Node) (*netlist.Node, error)
	emit = func(n *netlist.Node) (*netlist.Node, error) {
		if m, ok := made[n]; ok {
			return m, nil
		}
		inputs, ok := cut[n]
		if !ok {
			return nil, fmt.Errorf("techmap: node %q required but not covered", n.Name)
		}
		mappedIn := make([]*netlist.Node, len(inputs))
		for i, f := range inputs {
			m, err := emit(f)
			if err != nil {
				return nil, err
			}
			mappedIn[i] = m
		}
		tt, err := coneTruthTable(n, inputs)
		if err != nil {
			return nil, err
		}
		lut, err := out.AddLogic(n.Name, mappedIn, logic.MinimizeTruthTable(tt, len(inputs)))
		if err != nil {
			return nil, err
		}
		made[n] = lut
		return lut, nil
	}
	for _, o := range nl.Outputs {
		if _, err := emit(nl.Node(o)); err != nil {
			return nil, err
		}
		out.MarkOutput(o)
	}
	for _, n := range nl.Nodes() {
		if n.Kind != netlist.KindLatch {
			continue
		}
		d, err := emit(n.Fanin[0])
		if err != nil {
			return nil, err
		}
		made[n].Fanin = []*netlist.Node{d}
	}
	out.Sweep()
	logic.MergeDuplicates(out)
	if err := out.Check(); err != nil {
		return nil, err
	}
	st := out.Stats()
	return &Result{Netlist: out, Depth: st.Depth, LUTs: st.Logic}, nil
}
