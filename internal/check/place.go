package check

import (
	"fpgaflow/internal/place"
)

// Place-stage rules: legality of a VPR placement against the grid — no two
// blocks on one site, CLBs inside the logic array, pads on the I/O
// perimeter ring with valid sub-slots.

func hasPlacement(a *Artifacts) bool {
	return a.Problem != nil && a.Placement != nil && len(a.Placement.Loc) == len(a.Problem.Blocks)
}

func init() {
	register(Rule{
		ID:       "place/overlap",
		Stage:    StagePlace,
		Severity: Error,
		Doc:      "two blocks occupy the same grid site and sub-slot",
		Applies:  hasPlacement,
		Run:      runOverlap,
	})
	register(Rule{
		ID:       "place/out-of-grid",
		Stage:    StagePlace,
		Severity: Error,
		Doc:      "a CLB sits outside the logic array or on a non-zero sub-slot",
		Applies:  hasPlacement,
		Run:      runOutOfGrid,
	})
	register(Rule{
		ID:       "place/io-perimeter",
		Stage:    StagePlace,
		Severity: Error,
		Doc:      "an I/O pad is off the perimeter ring or uses an out-of-range pad sub-slot",
		Applies:  hasPlacement,
		Run:      runIOPerimeter,
	})
}

func runOverlap(a *Artifacts, rep *reporter) {
	p, pl := a.Problem, a.Placement
	used := map[place.Location]int{}
	for _, b := range p.Blocks {
		l := pl.Loc[b.ID]
		if prev, dup := used[l]; dup {
			rep.add(b.Name, "shares site (%d,%d,%d) with block %q",
				l.X, l.Y, l.Sub, p.Blocks[prev].Name)
			continue
		}
		used[l] = b.ID
	}
}

func runOutOfGrid(a *Artifacts, rep *reporter) {
	p, pl := a.Problem, a.Placement
	ar := p.Arch
	for _, b := range p.Blocks {
		if b.Kind != place.BlockCLB {
			continue
		}
		l := pl.Loc[b.ID]
		if l.X < 1 || l.X > ar.Cols || l.Y < 1 || l.Y > ar.Rows {
			rep.add(b.Name, "CLB at (%d,%d) outside the %dx%d logic array", l.X, l.Y, ar.Cols, ar.Rows)
		} else if l.Sub != 0 {
			rep.add(b.Name, "CLB on sub-slot %d (logic sites have one slot)", l.Sub)
		}
	}
}

func runIOPerimeter(a *Artifacts, rep *reporter) {
	p, pl := a.Problem, a.Placement
	ar := p.Arch
	for _, b := range p.Blocks {
		if b.Kind == place.BlockCLB {
			continue
		}
		l := pl.Loc[b.ID]
		onX := l.X == 0 || l.X == ar.Cols+1
		onY := l.Y == 0 || l.Y == ar.Rows+1
		inGrid := l.X >= 0 && l.X <= ar.Cols+1 && l.Y >= 0 && l.Y <= ar.Rows+1
		if !inGrid || onX == onY {
			// onX == onY is a corner (both true) or an interior site (both
			// false); neither carries pads.
			rep.add(b.Name, "%s at (%d,%d) is not on the I/O perimeter ring", b.Kind, l.X, l.Y)
			continue
		}
		if l.Sub < 0 || l.Sub >= ar.IORate {
			rep.add(b.Name, "pad sub-slot %d outside [0,%d)", l.Sub, ar.IORate)
		}
	}
}
