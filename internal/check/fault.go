package check

import (
	"fmt"

	"fpgaflow/internal/place"
)

// Defect-aware rules: when a run carries a fault.DefectMap (or routes over
// a masked RR graph), verify that no configured resource lands on a
// defect. These are the flow's guarantee that "defect-aware" is not just a
// cost tweak: a placement on a bad site, a route through a dead wire or a
// truth table fighting a stuck configuration bit all fail the stage.

func hasDefects(a *Artifacts) bool { return a.Defects != nil && a.Defects.Count() > 0 }

func init() {
	register(Rule{
		ID:       "place/defective-site",
		Stage:    StagePlace,
		Severity: Error,
		Doc:      "a block is placed on a site the defect map marks defective",
		Applies:  func(a *Artifacts) bool { return hasPlacement(a) && hasDefects(a) },
		Run:      runDefectiveSite,
	})
	register(Rule{
		ID:       "route/dead-resource",
		Stage:    StageRoute,
		Severity: Error,
		Doc:      "a net's route tree uses an RR node masked dead by the defect map",
		Applies: func(a *Artifacts) bool {
			return hasRouting(a) && a.Routing.Graph.DeadCount() > 0
		},
		Run: runDeadResource,
	})
	register(Rule{
		ID:       "bitstream/stuck-bit",
		Stage:    StageBitstream,
		Severity: Error,
		Doc:      "a used BLE's truth table disagrees with a stuck LUT configuration bit at its site",
		Applies: func(a *Artifacts) bool {
			return hasDefects(a) && len(a.Defects.StuckBits) > 0 &&
				a.Bitstream != nil && a.Problem != nil && a.Placement != nil
		},
		Run: runStuckBit,
	})
}

func runDefectiveSite(a *Artifacts, rep *reporter) {
	bad := a.Defects.BadSiteSet()
	if bad == nil {
		return
	}
	p, pl := a.Problem, a.Placement
	for _, b := range p.Blocks {
		l := pl.Loc[b.ID]
		if bad[[2]int{l.X, l.Y}] {
			rep.add(b.Name, "%s placed on defective site (%d,%d)", b.Kind, l.X, l.Y)
		}
	}
}

func runDeadResource(a *Artifacts, rep *reporter) {
	r, p := a.Routing, a.Problem
	g := r.Graph
	for ni, nr := range r.Routes {
		if nr == nil {
			continue
		}
		signal := fmt.Sprintf("net#%d", ni)
		if ni < len(p.Nets) {
			signal = p.Nets[ni].Signal
		}
		for id := range nr.Nodes() {
			if id >= 0 && id < len(g.Nodes) && g.Dead(id) {
				rep.add(signal, "route uses dead resource %s", rrNodeName(g.Nodes[id]))
			}
		}
	}
}

// runStuckBit compares every used BLE's configured truth table against the
// stuck bits recorded for its site. Only BLEs actually occupied by the
// placed cluster are checked: an empty BLE's configuration is never read
// by the design, so a stuck bit there is harmless.
func runStuckBit(a *Artifacts, rep *reporter) {
	p, pl, bs := a.Problem, a.Placement, a.Bitstream
	for _, b := range p.Blocks {
		if b.Kind != place.BlockCLB || b.Cluster == nil {
			continue
		}
		l := pl.Loc[b.ID]
		cfg, err := bs.CLBAt(l.X, l.Y)
		if err != nil {
			continue // out-of-grid placement is place/out-of-grid's finding
		}
		for _, sb := range a.Defects.StuckBitsAt(l.X, l.Y) {
			if sb.BLE >= len(b.Cluster.BLEs) || sb.BLE >= len(cfg.BLEs) {
				continue // defect in an unoccupied BLE
			}
			lut := cfg.BLEs[sb.BLE].LUT
			if sb.Bit >= len(lut) {
				continue
			}
			if lut[sb.Bit] != sb.Value {
				rep.add(b.Name, "BLE %d LUT bit %d needs %v but is stuck at %v on site (%d,%d)",
					sb.BLE, sb.Bit, lut[sb.Bit], sb.Value, l.X, l.Y)
			}
		}
	}
}
