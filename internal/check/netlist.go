package check

import (
	"fmt"
	"sort"
	"strings"

	"fpgaflow/internal/netlist"
)

// Netlist-stage rules: lint on the logic network entering and leaving the
// SIS / LUT-mapping stages, plus a text-level scan of raw BLIF for the one
// violation the IR cannot represent (a multi-driven net: the parser rejects
// the second driver before a network exists).

func hasNetlist(a *Artifacts) bool { return a.Netlist != nil }

func init() {
	register(Rule{
		ID:       "net/multi-driven",
		Stage:    StageNetlist,
		Severity: Error,
		Doc:      "a signal is driven by more than one .names/.latch/.inputs declaration in the BLIF text",
		Applies:  func(a *Artifacts) bool { return a.BLIF != "" },
		Run:      runMultiDriven,
	})
	register(Rule{
		ID:       "net/undriven",
		Stage:    StageNetlist,
		Severity: Error,
		Doc:      "a primary output or a fanin reference has no driver in the network",
		Applies:  hasNetlist,
		Run:      runUndriven,
	})
	register(Rule{
		ID:       "net/comb-loop",
		Stage:    StageNetlist,
		Severity: Error,
		Doc:      "a combinational cycle (strongly connected component not broken by a latch)",
		Applies:  hasNetlist,
		Run:      runCombLoop,
	})
	register(Rule{
		ID:       "net/cube-width",
		Stage:    StageNetlist,
		Severity: Error,
		Doc:      "a logic node's cube width disagrees with its fanin count",
		Applies:  hasNetlist,
		Run:      runCubeWidth,
	})
	register(Rule{
		ID:       "net/lut-arity",
		Stage:    StageNetlist,
		Severity: Error,
		Doc:      "a logic node has more fanins than the architecture's LUT size K",
		Applies:  func(a *Artifacts) bool { return a.Netlist != nil && a.K > 0 },
		Run:      runLUTArity,
	})
	register(Rule{
		ID:       "net/dangling",
		Stage:    StageNetlist,
		Severity: Warn,
		Doc:      "a logic node or latch drives nothing: it has no fanout and is not a primary output",
		Applies:  hasNetlist,
		Run:      runDangling,
	})
	register(Rule{
		ID:       "net/unused-input",
		Stage:    StageNetlist,
		Severity: Warn,
		Doc:      "a primary input feeds no node and no output",
		Applies:  hasNetlist,
		Run:      runUnusedInput,
	})
	register(Rule{
		ID:       "net/floating-lut-input",
		Stage:    StageNetlist,
		Severity: Warn,
		Doc:      "a LUT input is don't-care in every cube (a physically connected but logically unused pin)",
		Applies:  func(a *Artifacts) bool { return a.Netlist != nil && a.K > 0 },
		Run:      runFloatingLUTInput,
	})
}

// runMultiDriven scans BLIF text for two declarations driving one signal.
// It mirrors the parser's line handling (comments, backslash continuation)
// without building a network, so it can diagnose input the parser rejects.
func runMultiDriven(a *Artifacts, rep *reporter) {
	driver := map[string]string{} // signal -> declaration kind
	claim := func(signal, kind string) {
		if prev, dup := driver[signal]; dup {
			rep.add(signal, "driven by %s and %s", prev, kind)
			return
		}
		driver[signal] = kind
	}
	var pending strings.Builder
	for _, line := range strings.Split(a.BLIF, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if strings.HasSuffix(line, "\\") {
			pending.WriteString(strings.TrimSuffix(line, "\\"))
			pending.WriteByte(' ')
			continue
		}
		pending.WriteString(line)
		full := strings.TrimSpace(pending.String())
		pending.Reset()
		if full == "" {
			continue
		}
		fields := strings.Fields(full)
		switch fields[0] {
		case ".inputs":
			for _, in := range fields[1:] {
				claim(in, ".inputs "+in)
			}
		case ".names":
			if len(fields) >= 2 {
				claim(fields[len(fields)-1], ".names")
			}
		case ".latch":
			if len(fields) >= 3 {
				claim(fields[2], ".latch")
			}
		}
	}
}

func runUndriven(a *Artifacts, rep *reporter) {
	nl := a.Netlist
	for _, o := range nl.Outputs {
		if nl.Node(o) == nil {
			rep.add(o, "primary output has no driver")
		}
	}
	for _, n := range nl.Nodes() {
		for _, f := range n.Fanin {
			if nl.Node(f.Name) != f {
				rep.add(n.Name, "fanin %q is not driven in this network", f.Name)
			}
		}
		if n.Kind == netlist.KindLatch && len(n.Fanin) != 1 {
			rep.add(n.Name, "latch has %d fanins, want exactly 1", len(n.Fanin))
		}
	}
}

// runCombLoop finds combinational cycles with Tarjan's SCC algorithm over
// the logic nodes (latches break cycles by construction). Unlike a plain
// topological sort it reports every loop, each once, with its full member
// list.
func runCombLoop(a *Artifacts, rep *reporter) {
	nl := a.Netlist
	index := map[*netlist.Node]int{}
	low := map[*netlist.Node]int{}
	onStack := map[*netlist.Node]bool{}
	var stack []*netlist.Node
	next := 0

	// Iterative Tarjan: frame tracks the fanin cursor per node.
	type frame struct {
		n *netlist.Node
		i int
	}
	var visit func(root *netlist.Node)
	visit = func(root *netlist.Node) {
		frames := []frame{{n: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.n.Kind == netlist.KindLogic && f.i < len(f.n.Fanin) {
				w := f.n.Fanin[f.i]
				f.i++
				if w.Kind != netlist.KindLogic {
					continue
				}
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{n: w})
				} else if onStack[w] && index[w] < low[f.n] {
					low[f.n] = index[w]
				}
				continue
			}
			// All fanins done: pop an SCC if f.n is a root.
			if low[f.n] == index[f.n] {
				var scc []string
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w.Name)
					if w == f.n {
						break
					}
				}
				if len(scc) > 1 || selfLoop(f.n) {
					sort.Strings(scc)
					rep.add(scc[0], "combinational loop through %s", strings.Join(scc, ", "))
				}
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].n
				if low[f.n] < low[p] {
					low[p] = low[f.n]
				}
			}
		}
	}
	for _, n := range nl.Nodes() {
		if n.Kind != netlist.KindLogic {
			continue
		}
		if _, seen := index[n]; !seen {
			visit(n)
		}
	}
}

func selfLoop(n *netlist.Node) bool {
	for _, f := range n.Fanin {
		if f == n {
			return true
		}
	}
	return false
}

func runCubeWidth(a *Artifacts, rep *reporter) {
	for _, n := range a.Netlist.Nodes() {
		if n.Kind != netlist.KindLogic {
			continue
		}
		for _, cube := range n.Cover.Cubes {
			if len(cube) != len(n.Fanin) {
				rep.add(n.Name, "cube %q has width %d, node has %d fanins",
					cube, len(cube), len(n.Fanin))
				break
			}
		}
	}
}

func runLUTArity(a *Artifacts, rep *reporter) {
	for _, n := range a.Netlist.Nodes() {
		if n.Kind == netlist.KindLogic && len(n.Fanin) > a.K {
			rep.add(n.Name, "%d fanins exceed K=%d LUT inputs", len(n.Fanin), a.K)
		}
	}
}

func runDangling(a *Artifacts, rep *reporter) {
	nl := a.Netlist
	nl.BuildFanout()
	for _, n := range nl.Nodes() {
		if n.Kind == netlist.KindInput {
			continue
		}
		if len(n.Fanout()) == 0 && !nl.IsOutput(n.Name) {
			rep.add(n.Name, "%s drives nothing (dead logic)", n.Kind)
		}
	}
}

func runUnusedInput(a *Artifacts, rep *reporter) {
	nl := a.Netlist
	nl.BuildFanout()
	for _, in := range nl.Inputs {
		if len(in.Fanout()) == 0 && !nl.IsOutput(in.Name) {
			rep.add(in.Name, "primary input feeds nothing")
		}
	}
}

func runFloatingLUTInput(a *Artifacts, rep *reporter) {
	for _, n := range a.Netlist.Nodes() {
		if n.Kind != netlist.KindLogic || len(n.Cover.Cubes) == 0 {
			continue
		}
		for i := range n.Fanin {
			used := false
			for _, cube := range n.Cover.Cubes {
				if i < len(cube) && cube[i] != netlist.LitDC {
					used = true
					break
				}
			}
			if !used {
				rep.add(n.Name, "LUT input %d (%s) is don't-care in every cube", i, faninName(n, i))
			}
		}
	}
}

func faninName(n *netlist.Node, i int) string {
	if i < len(n.Fanin) {
		return n.Fanin[i].Name
	}
	return fmt.Sprintf("#%d", i)
}
