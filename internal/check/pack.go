package check

import (
	"strconv"

	"fpgaflow/internal/netlist"
	"fpgaflow/internal/pack"
)

// Pack-stage rules: legality of the T-VPack clustering against the CLB
// architecture (N BLEs, I distinct inputs, one clock) and coverage of the
// mapped netlist. These overlap pack.Packing.Validate deliberately: the
// producer's self-check can rot with the producer, the checker recomputes
// everything from the raw cluster contents.

func hasPacking(a *Artifacts) bool { return a.Packing != nil }

func init() {
	register(Rule{
		ID:       "pack/cluster-size",
		Stage:    StagePack,
		Severity: Error,
		Doc:      "a cluster holds more BLEs than the architecture's cluster size N",
		Applies:  hasPacking,
		Run:      runClusterSize,
	})
	register(Rule{
		ID:       "pack/cluster-inputs",
		Stage:    StagePack,
		Severity: Error,
		Doc:      "a cluster's recomputed distinct external inputs exceed I, or its input list is stale",
		Applies:  hasPacking,
		Run:      runClusterInputs,
	})
	register(Rule{
		ID:       "pack/coverage",
		Stage:    StagePack,
		Severity: Error,
		Doc:      "a BLE appears in two clusters, or a netlist LUT/latch is not covered by any BLE",
		Applies:  hasPacking,
		Run:      runCoverage,
	})
	register(Rule{
		ID:       "pack/clock",
		Stage:    StagePack,
		Severity: Error,
		Doc:      "a cluster mixes two clock domains (one clock net per CLB)",
		Applies:  hasPacking,
		Run:      runClock,
	})
}

func runClusterSize(a *Artifacts, rep *reporter) {
	p := a.Packing
	for _, c := range p.Clusters {
		if len(c.BLEs) > p.Params.N {
			rep.add(clusterName(c), "%d BLEs exceed N=%d", len(c.BLEs), p.Params.N)
		}
	}
}

func runClusterInputs(a *Artifacts, rep *reporter) {
	p := a.Packing
	for _, c := range p.Clusters {
		want := p.ExternalInputsOf(c.BLEs)
		if len(want) > p.Params.I {
			rep.add(clusterName(c), "%d distinct external inputs exceed I=%d", len(want), p.Params.I)
		}
		if !sameStrings(want, c.Inputs) {
			rep.add(clusterName(c), "stored input list %v disagrees with recomputed %v", c.Inputs, want)
		}
	}
}

func runCoverage(a *Artifacts, rep *reporter) {
	p := a.Packing
	seen := map[*pack.BLE]*pack.Cluster{}
	for _, c := range p.Clusters {
		for _, b := range c.BLEs {
			if prev, dup := seen[b]; dup {
				rep.add(b.Name(), "BLE in clusters %s and %s", clusterName(prev), clusterName(c))
				continue
			}
			seen[b] = c
		}
	}
	covered := map[string]bool{}
	for _, b := range p.BLEs {
		if _, clustered := seen[b]; !clustered {
			rep.add(b.Name(), "BLE not assigned to any cluster")
		}
		if b.LUT != nil {
			covered[b.LUT.Name] = true
		}
		if b.FF != nil {
			covered[b.FF.Name] = true
		}
	}
	for _, n := range p.Netlist.Nodes() {
		if n.Kind != netlist.KindInput && !covered[n.Name] {
			rep.add(n.Name, "netlist %s not covered by any BLE", n.Kind)
		}
	}
}

func runClock(a *Artifacts, rep *reporter) {
	for _, c := range a.Packing.Clusters {
		clock := ""
		for _, b := range c.BLEs {
			if b.FF == nil {
				continue
			}
			ck := b.FF.Clock
			if ck == "" {
				ck = "clk"
			}
			if clock == "" {
				clock = ck
			} else if clock != ck {
				rep.add(clusterName(c), "mixes clocks %q and %q", clock, ck)
			}
		}
	}
}

func clusterName(c *pack.Cluster) string {
	if c == nil {
		return "cluster?"
	}
	return "clb" + strconv.Itoa(c.ID)
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
