// Package check is the flow-wide static verification engine: a registry of
// named design-rule checks over the flow's intermediate artifacts (netlist,
// packing, placement, routing, bitstream), each producing structured
// diagnostics. Real CAD flows interpose DRC/ERC-style checks between stages
// so a packing or routing bug surfaces at the stage that caused it rather
// than as a garbled bitstream; this package reproduces that discipline for
// the paper's VHDL -> SIS -> T-VPack -> VPR -> DAGGER pipeline.
//
// The engine is wired in three ways: internal/core runs the relevant rule
// set after every stage (failing fast on error-severity diagnostics),
// cmd/fpgalint checks artifacts standalone, and every run reports
// diagnostic counts through internal/obs. docs/CHECKS.md lists every rule.
package check

import (
	"fmt"
	"sort"
	"strings"

	"fpgaflow/internal/arch"
	"fpgaflow/internal/bitstream"
	"fpgaflow/internal/fault"
	"fpgaflow/internal/netlist"
	"fpgaflow/internal/obs"
	"fpgaflow/internal/pack"
	"fpgaflow/internal/place"
	"fpgaflow/internal/route"
	"fpgaflow/internal/rrgraph"
)

// Severity ranks a diagnostic.
type Severity int

const (
	// Info is advisory: reported, never fatal.
	Info Severity = iota
	// Warn flags a suspicious construct that is still legal.
	Warn
	// Error is a legality violation; the flow fails fast on it.
	Error
)

func (s Severity) String() string {
	switch s {
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	}
	return fmt.Sprintf("Severity(%d)", int(s))
}

// Stage names the flow stage a rule audits the output of.
type Stage string

// The five checked stage boundaries of the flow.
const (
	StageNetlist   Stage = "netlist"
	StagePack      Stage = "pack"
	StagePlace     Stage = "place"
	StageRoute     Stage = "route"
	StageBitstream Stage = "bitstream"
)

// Stages returns every checked stage in flow order.
func Stages() []Stage {
	return []Stage{StageNetlist, StagePack, StagePlace, StageRoute, StageBitstream}
}

// Diagnostic is one finding of one rule.
type Diagnostic struct {
	Stage    Stage    `json:"stage"`
	Rule     string   `json:"rule"`
	Severity Severity `json:"-"`
	// SeverityName serializes the severity for -json consumers.
	SeverityName string `json:"severity"`
	// Object names the offending net, block, node or cluster ("" when the
	// finding is design-wide).
	Object  string `json:"object,omitempty"`
	Message string `json:"message"`
}

func (d Diagnostic) String() string {
	obj := ""
	if d.Object != "" {
		obj = " " + d.Object
	}
	return fmt.Sprintf("%s: %s [%s]%s: %s", d.Stage, d.Severity, d.Rule, obj, d.Message)
}

// Artifacts bundles whatever intermediate results are available to check.
// Rules only run when the artifacts they need are present, so a partially
// filled struct (e.g. just a netlist from a standalone BLIF file) is fine.
type Artifacts struct {
	// BLIF is the raw BLIF text entering the SIS stage; text-level rules
	// (multi-driven nets) run on it because the IR cannot represent the
	// violation (the parser rejects duplicate drivers outright).
	BLIF string
	// Netlist is the current logic network.
	Netlist *netlist.Netlist
	// K bounds logic-node fanin (LUT arity); 0 disables arity rules
	// (pre-mapping networks are allowed arbitrary fanin).
	K int
	// Arch is the target platform (grid bounds, CLB geometry).
	Arch *arch.Arch
	// Packing is the T-VPack output.
	Packing *pack.Packing
	// Problem and Placement are the VPR placement instance and solution.
	Problem   *place.Problem
	Placement *place.Placement
	// Graph is the routing-resource graph; Routing the PathFinder result.
	Graph   *rrgraph.Graph
	Routing *route.Result
	// Bitstream and Encoded are the DAGGER output and its binary form.
	Bitstream *bitstream.Bitstream
	Encoded   []byte
	// Defects is the injected fabric defect map, when the run has one; the
	// defect-aware rules verify no configured resource lands on a defect.
	Defects *fault.DefectMap
	// Disable lists rule IDs to skip (see docs/CHECKS.md on suppression).
	Disable []string
}

func (a *Artifacts) disabled(id string) bool {
	for _, d := range a.Disable {
		if d == id {
			return true
		}
	}
	return false
}

// Rule is one named check.
type Rule struct {
	// ID is the stable rule identifier, "<stage-prefix>/<name>".
	ID string
	// Stage is the stage boundary the rule belongs to.
	Stage Stage
	// Severity of the rule's diagnostics.
	Severity Severity
	// Doc is a one-line description of what the rule catches.
	Doc string
	// Applies reports whether the artifacts carry what the rule needs.
	Applies func(*Artifacts) bool
	// Run inspects the artifacts and reports findings.
	Run func(*Artifacts, *reporter)
}

// reporter collects diagnostics for the rule currently running.
type reporter struct {
	rule  *Rule
	diags *[]Diagnostic
}

func (r *reporter) add(object, format string, args ...interface{}) {
	*r.diags = append(*r.diags, Diagnostic{
		Stage:        r.rule.Stage,
		Rule:         r.rule.ID,
		Severity:     r.rule.Severity,
		SeverityName: r.rule.Severity.String(),
		Object:       object,
		Message:      fmt.Sprintf(format, args...),
	})
}

// registry holds every rule, keyed by ID.
var registry = map[string]*Rule{}

func register(r Rule) {
	if _, dup := registry[r.ID]; dup {
		panic("check: duplicate rule " + r.ID)
	}
	rr := r
	registry[r.ID] = &rr
}

// Rules returns every registered rule sorted by stage (flow order) then ID.
func Rules() []*Rule {
	out := make([]*Rule, 0, len(registry))
	for _, r := range registry {
		out = append(out, r)
	}
	stageOrder := map[Stage]int{}
	for i, s := range Stages() {
		stageOrder[s] = i
	}
	sort.Slice(out, func(i, j int) bool {
		if a, b := stageOrder[out[i].Stage], stageOrder[out[j].Stage]; a != b {
			return a < b
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// RuleByID returns the rule with the given ID, or nil.
func RuleByID(id string) *Rule { return registry[id] }

// Report is the outcome of a check run.
type Report struct {
	Diags []Diagnostic
	// RulesRun counts the rules whose Applies condition held.
	RulesRun int
}

// RunStage runs every applicable rule of one stage.
func RunStage(stage Stage, a *Artifacts) *Report {
	rep := &Report{}
	for _, r := range Rules() {
		if r.Stage != stage || a.disabled(r.ID) || !r.Applies(a) {
			continue
		}
		rep.RulesRun++
		r.Run(a, &reporter{rule: r, diags: &rep.Diags})
	}
	return rep
}

// RunAll runs every applicable rule of every stage, in flow order.
func RunAll(a *Artifacts) *Report {
	rep := &Report{}
	for _, stage := range Stages() {
		sub := RunStage(stage, a)
		rep.Diags = append(rep.Diags, sub.Diags...)
		rep.RulesRun += sub.RulesRun
	}
	return rep
}

// Count returns the number of diagnostics at exactly the given severity.
func (rep *Report) Count(s Severity) int {
	n := 0
	for _, d := range rep.Diags {
		if d.Severity == s {
			n++
		}
	}
	return n
}

// Err returns a non-nil error when the report holds error-severity
// diagnostics, naming the first one (the fail-fast signal for the flow).
func (rep *Report) Err() error {
	var first *Diagnostic
	n := 0
	for i := range rep.Diags {
		if rep.Diags[i].Severity == Error {
			if first == nil {
				first = &rep.Diags[i]
			}
			n++
		}
	}
	if first == nil {
		return nil
	}
	more := ""
	if n > 1 {
		more = fmt.Sprintf(" (and %d more)", n-1)
	}
	obj := ""
	if first.Object != "" {
		obj = " " + first.Object
	}
	return fmt.Errorf("check %s%s: %s%s", first.Rule, obj, first.Message, more)
}

// Record emits the report's diagnostic counts to an observability trace:
// check.rules_run, check.errors, check.warnings, check.infos and a
// per-stage check.<stage>.diags counter. A nil trace is a no-op.
func (rep *Report) Record(tr *obs.Trace) {
	if tr == nil {
		return
	}
	tr.Add("check.rules_run", int64(rep.RulesRun))
	tr.Add("check.errors", int64(rep.Count(Error)))
	tr.Add("check.warnings", int64(rep.Count(Warn)))
	tr.Add("check.infos", int64(rep.Count(Info)))
	for _, d := range rep.Diags {
		tr.Add("check."+string(d.Stage)+".diags", 1)
	}
}

// Format renders the diagnostics one per line ("" when clean).
func (rep *Report) Format() string {
	if len(rep.Diags) == 0 {
		return ""
	}
	var sb strings.Builder
	for _, d := range rep.Diags {
		sb.WriteString(d.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
